#include "osl/cma.hpp"

#include <cstring>

#include "common/error.hpp"

namespace cbmpi::osl::cma {

const char* to_string(Result result) {
  switch (result) {
    case Result::Ok: return "ok";
    case Result::PermissionDenied: return "permission-denied (EPERM)";
    case Result::RemoteHost: return "no-such-pid (ESRCH)";
  }
  return "?";
}

Result check(const SimProcess& caller, const SimProcess& target) {
  if (!caller.same_host(target)) return Result::RemoteHost;
  if (!caller.namespaces().shares(NamespaceType::Pid, target.namespaces()))
    return Result::PermissionDenied;
  return Result::Ok;
}

Result read(const SimProcess& caller, const SimProcess& target,
            std::span<std::byte> dst, std::span<const std::byte> src) {
  CBMPI_REQUIRE(dst.size() == src.size(), "cma read size mismatch");
  const Result r = check(caller, target);
  if (r != Result::Ok) return r;
  if (!dst.empty()) std::memcpy(dst.data(), src.data(), dst.size());
  return Result::Ok;
}

Result write(const SimProcess& caller, const SimProcess& target,
             std::span<const std::byte> src, std::span<std::byte> dst) {
  CBMPI_REQUIRE(dst.size() == src.size(), "cma write size mismatch");
  const Result r = check(caller, target);
  if (r != Result::Ok) return r;
  if (!dst.empty()) std::memcpy(dst.data(), src.data(), dst.size());
  return Result::Ok;
}

}  // namespace cbmpi::osl::cma
