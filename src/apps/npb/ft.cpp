// FT: 3-D FFT time stepping, slab-partitioned along z.
//
// Forward transform: per-slab 2-D FFTs (x then y), a global z<->x transpose
// via MPI_Alltoall, then 1-D FFTs along z. Each timestep evolves the spectrum
// and inverse-transforms it (another alltoall), producing the alltoall-heavy
// communication profile of NPB FT. Verification: timestep 0 uses unit evolve
// factors, so the inverse transform must reproduce the initial field.
#include "apps/npb/npb.hpp"

#include <cmath>
#include <numbers>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace cbmpi::apps::npb {

void fft_inplace(std::span<std::complex<double>> data, bool inverse) {
  const std::size_t n = data.size();
  CBMPI_REQUIRE(n != 0 && (n & (n - 1)) == 0, "FFT length must be a power of two");
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const auto u = data[i + k];
        const auto v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (auto& value : data) value *= scale;
  }
}

namespace {

using Complex = std::complex<double>;

struct FtGrid {
  int nx, ny, nz;
  int local_nz;  ///< z slab on this rank (z layout)
  int local_nx;  ///< x slab on this rank (x layout, after transpose)
};

/// z-layout index: [z][y][x] with z local.
std::size_t zidx(const FtGrid& g, int z, int y, int x) {
  return (static_cast<std::size_t>(z) * static_cast<std::size_t>(g.ny) +
          static_cast<std::size_t>(y)) *
             static_cast<std::size_t>(g.nx) +
         static_cast<std::size_t>(x);
}

/// x-layout index: [x][y][z] with x local.
std::size_t xidx(const FtGrid& g, int x, int y, int z) {
  return (static_cast<std::size_t>(x) * static_cast<std::size_t>(g.ny) +
          static_cast<std::size_t>(y)) *
             static_cast<std::size_t>(g.nz) +
         static_cast<std::size_t>(z);
}

class FtTransposer {
 public:
  FtTransposer(mpi::Process& p, const FtGrid& g) : p_(&p), g_(g) {
    const auto n = static_cast<std::size_t>(p.world().size());
    const std::size_t block = static_cast<std::size_t>(g.local_nz) *
                              static_cast<std::size_t>(g.local_nx) *
                              static_cast<std::size_t>(g.ny);
    send_.resize(block * n);
    recv_.resize(block * n);
  }

  /// z-layout -> x-layout.
  void forward(const std::vector<Complex>& zdata, std::vector<Complex>& xdata) {
    auto& comm = p_->world();
    const int nranks = comm.size();
    const std::size_t block = send_.size() / static_cast<std::size_t>(nranks);
    // Pack: destination r gets my z-planes restricted to its x-slab.
    for (int r = 0; r < nranks; ++r) {
      std::size_t cursor = block * static_cast<std::size_t>(r);
      const int x0 = r * g_.local_nx;
      for (int z = 0; z < g_.local_nz; ++z)
        for (int y = 0; y < g_.ny; ++y)
          for (int x = 0; x < g_.local_nx; ++x)
            send_[cursor++] = zdata[zidx(g_, z, y, x0 + x)];
    }
    comm.alltoall(std::span<const Complex>(send_), std::span<Complex>(recv_));
    // Unpack: block from rank r holds its z-planes of my x-slab.
    for (int r = 0; r < nranks; ++r) {
      std::size_t cursor = block * static_cast<std::size_t>(r);
      const int z0 = r * g_.local_nz;
      for (int z = 0; z < g_.local_nz; ++z)
        for (int y = 0; y < g_.ny; ++y)
          for (int x = 0; x < g_.local_nx; ++x)
            xdata[xidx(g_, x, y, z0 + z)] = recv_[cursor++];
    }
    p_->compute(static_cast<double>(send_.size()) * 2.0);
  }

  /// x-layout -> z-layout.
  void backward(const std::vector<Complex>& xdata, std::vector<Complex>& zdata) {
    auto& comm = p_->world();
    const int nranks = comm.size();
    const std::size_t block = send_.size() / static_cast<std::size_t>(nranks);
    for (int r = 0; r < nranks; ++r) {
      std::size_t cursor = block * static_cast<std::size_t>(r);
      const int z0 = r * g_.local_nz;
      for (int z = 0; z < g_.local_nz; ++z)
        for (int y = 0; y < g_.ny; ++y)
          for (int x = 0; x < g_.local_nx; ++x)
            send_[cursor++] = xdata[xidx(g_, x, y, z0 + z)];
    }
    comm.alltoall(std::span<const Complex>(send_), std::span<Complex>(recv_));
    for (int r = 0; r < nranks; ++r) {
      std::size_t cursor = block * static_cast<std::size_t>(r);
      const int x0 = r * g_.local_nx;
      for (int z = 0; z < g_.local_nz; ++z)
        for (int y = 0; y < g_.ny; ++y)
          for (int x = 0; x < g_.local_nx; ++x)
            zdata[zidx(g_, z, y, x0 + x)] = recv_[cursor++];
    }
    p_->compute(static_cast<double>(send_.size()) * 2.0);
  }

 private:
  mpi::Process* p_;
  FtGrid g_;
  std::vector<Complex> send_, recv_;
};

/// 2-D FFTs over each local z-plane (x rows, then y columns).
void fft_planes_xy(mpi::Process& p, const FtGrid& g, std::vector<Complex>& zdata,
                   bool inverse, double ops_per_point) {
  std::vector<Complex> column(static_cast<std::size_t>(g.ny));
  for (int z = 0; z < g.local_nz; ++z) {
    for (int y = 0; y < g.ny; ++y)
      fft_inplace(std::span<Complex>(&zdata[zidx(g, z, y, 0)],
                                     static_cast<std::size_t>(g.nx)),
                  inverse);
    for (int x = 0; x < g.nx; ++x) {
      for (int y = 0; y < g.ny; ++y) column[static_cast<std::size_t>(y)] =
          zdata[zidx(g, z, y, x)];
      fft_inplace(std::span<Complex>(column), inverse);
      for (int y = 0; y < g.ny; ++y)
        zdata[zidx(g, z, y, x)] = column[static_cast<std::size_t>(y)];
    }
  }
  p.compute(static_cast<double>(g.local_nz) * static_cast<double>(g.nx) *
            static_cast<double>(g.ny) * ops_per_point);
}

/// 1-D FFTs along z in x-layout (z contiguous).
void fft_lines_z(mpi::Process& p, const FtGrid& g, std::vector<Complex>& xdata,
                 bool inverse, double ops_per_point) {
  for (int x = 0; x < g.local_nx; ++x)
    for (int y = 0; y < g.ny; ++y)
      fft_inplace(std::span<Complex>(&xdata[xidx(g, x, y, 0)],
                                     static_cast<std::size_t>(g.nz)),
                  inverse);
  p.compute(static_cast<double>(g.local_nx) * static_cast<double>(g.ny) *
            static_cast<double>(g.nz) * ops_per_point);
}

}  // namespace

KernelResult run_ft(mpi::Process& p, const FtParams& params) {
  auto& comm = p.world();
  const int nranks = comm.size();
  CBMPI_REQUIRE(params.nz % nranks == 0 && params.nx % nranks == 0,
                "FT nx and nz must divide evenly across ranks");

  FtGrid g{params.nx, params.ny, params.nz, params.nz / nranks,
           params.nx / nranks};
  const std::size_t local_points = static_cast<std::size_t>(g.local_nz) *
                                   static_cast<std::size_t>(g.ny) *
                                   static_cast<std::size_t>(g.nx);

  // Deterministic initial field.
  std::vector<Complex> original(local_points);
  {
    auto rng = p.make_rng(0xF7);
    for (auto& value : original)
      value = Complex(rng.uniform() - 0.5, rng.uniform() - 0.5);
  }

  comm.barrier();
  p.sync_time();
  const Micros start = p.now();

  FtTransposer transposer(p, g);
  std::vector<Complex> zdata = original;
  std::vector<Complex> spectrum(static_cast<std::size_t>(g.local_nx) *
                                static_cast<std::size_t>(g.ny) *
                                static_cast<std::size_t>(g.nz));

  // Forward 3-D FFT.
  fft_planes_xy(p, g, zdata, false, params.ops_per_point);
  transposer.forward(zdata, spectrum);
  fft_lines_z(p, g, spectrum, false, params.ops_per_point);

  double checksum = 0.0;
  bool roundtrip_ok = true;
  std::vector<Complex> work(spectrum.size());
  std::vector<Complex> field(local_points);

  for (int t = 0; t < params.timesteps; ++t) {
    // Evolve in frequency space; t = 0 keeps the spectrum intact so the
    // inverse transform must reproduce the original field.
    work = spectrum;
    if (t > 0) {
      const double alpha = 1e-4 * static_cast<double>(t);
      for (int x = 0; x < g.local_nx; ++x) {
        const int gx = comm.rank() * g.local_nx + x;
        for (int y = 0; y < g.ny; ++y) {
          for (int z = 0; z < g.nz; ++z) {
            const double k2 = static_cast<double>(gx * gx + y * y + z * z);
            work[xidx(g, x, y, z)] *= std::exp(-alpha * k2);
          }
        }
      }
      p.compute(static_cast<double>(work.size()) * 6.0);
    }

    // Inverse 3-D FFT.
    fft_lines_z(p, g, work, true, params.ops_per_point);
    transposer.backward(work, field);
    fft_planes_xy(p, g, field, true, params.ops_per_point);

    if (t == 0) {
      double err = 0.0;
      for (std::size_t i = 0; i < local_points; ++i)
        err = std::max(err, std::abs(field[i] - original[i]));
      roundtrip_ok = comm.allreduce_value(err, mpi::ReduceOp::Max) < 1e-9;
    }

    Complex local_sum = 0.0;
    for (const auto& value : field) local_sum += value;
    double parts[2] = {local_sum.real(), local_sum.imag()};
    double total[2] = {};
    comm.allreduce(std::span<const double>(parts, 2), std::span<double>(total, 2),
                   mpi::ReduceOp::Sum);
    checksum += std::abs(Complex(total[0], total[1]));
  }

  KernelResult result;
  result.name = "FT";
  result.time = comm.allreduce_value(p.now() - start, mpi::ReduceOp::Max);
  result.checksum = checksum;
  result.verified = roundtrip_ok && std::isfinite(checksum);
  return result;
}

}  // namespace cbmpi::apps::npb
