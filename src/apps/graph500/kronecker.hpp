// Graph 500 Kronecker (R-MAT) edge generator.
//
// Reference parameters A=0.57, B=0.19, C=0.19 (D = 1-A-B-C = 0.05). Every
// edge is generated from a counter-seeded hash stream, so the global edge
// list is a pure function of (seed, scale, edgefactor) — independent of the
// rank count — and each rank can generate its share without communication.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace cbmpi::apps::graph500 {

struct EdgeListParams {
  int scale = 16;        ///< 2^scale vertices
  int edgefactor = 16;   ///< edges = edgefactor * vertices
  std::uint64_t seed = 1;

  std::uint64_t num_vertices() const { return std::uint64_t{1} << scale; }
  std::uint64_t num_edges() const {
    return num_vertices() * static_cast<std::uint64_t>(edgefactor);
  }
};

struct Edge {
  std::uint64_t u;
  std::uint64_t v;
};

/// Generates edge `index` of the global list.
Edge kronecker_edge(const EdgeListParams& params, std::uint64_t index);

/// Generates the contiguous slice [first, last) of the global edge list.
std::vector<Edge> kronecker_slice(const EdgeListParams& params, std::uint64_t first,
                                  std::uint64_t last);

/// Deterministically selects `count` distinct BFS roots with degree >= 1
/// (endpoints of generated edges, skipping self-loops), as the Graph 500
/// spec requires search keys to be connected. Pure function of the params —
/// every rank computes the same roots with no communication.
std::vector<std::uint64_t> choose_roots(const EdgeListParams& params, int count);

}  // namespace cbmpi::apps::graph500
