// Table I: counts of message transfer operations per channel (CMA / SHM /
// HCA) during Graph 500 BFS, for Native / 1 / 2 / 4 container scenarios under
// the default MPI library.
//
// Expected shape (paper, scale 20 / 16 procs): native and 1-container are
// identical with zero HCA operations and CMA dominant (full 8K coalescing
// buffers ride the rendezvous path); with 2 and 4 containers a growing share
// of operations shifts onto HCA while the total stays constant.
#include "bench_util.hpp"

#include "apps/graph500/bfs.hpp"

using namespace cbmpi;
using namespace cbmpi::bench;

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const int scale = static_cast<int>(opts.get_int("scale", 16, "Graph500 scale (paper: 20)"));
  const int procs = static_cast<int>(opts.get_int("procs", 16, "MPI processes"));
  const int nbfs = static_cast<int>(opts.get_int("nbfs", 2, "BFS roots summed"));
  if (opts.finish("Table I: channel transfer-operation counts during BFS")) return 0;

  print_banner("Table I", "message transfer operations per channel",
               "HCA ops: 0 / 0 / large / larger across Native,1,2,4 containers; "
               "total ops constant; CMA dominant when co-resident");

  struct Counts {
    std::uint64_t cma, shm, hca;
    std::uint64_t total() const { return cma + shm + hca; }
  };
  std::vector<std::pair<std::string, Counts>> rows;

  const apps::graph500::EdgeListParams params{scale, 16, 1};
  for (int containers : {0, 1, 2, 4}) {
    mpi::JobConfig config;
    config.deployment = containers == 0
                            ? container::DeploymentSpec::native_hosts(1, procs)
                            : container::DeploymentSpec::containers(1, containers, procs);
    config.policy = fabric::LocalityPolicy::HostnameBased;
    // Flat collectives keep the total exactly invariant across scenarios.
    config.tuning.two_level_collectives = false;
    const auto result = mpi::run_job(config, [&](mpi::Process& p) {
      const auto graph = apps::graph500::build_graph(p, params);
      for (const auto root : apps::graph500::choose_roots(params, nbfs))
        apps::graph500::run_bfs(p, graph, root);
    });
    const auto& total = result.profile.total;
    rows.emplace_back(config.deployment.label(),
                      Counts{total.channel_ops(fabric::ChannelKind::Cma),
                             total.channel_ops(fabric::ChannelKind::Shm),
                             total.channel_ops(fabric::ChannelKind::Hca)});
  }

  Table table({"channel", "Native", "1-Container", "2-Containers", "4-Containers"});
  auto row_of = [&](const std::string& name, auto getter) {
    std::vector<std::string> cells{name};
    for (const auto& [label, counts] : rows) cells.push_back(std::to_string(getter(counts)));
    table.add_row(std::move(cells));
  };
  row_of("CMA", [](const Counts& c) { return c.cma; });
  row_of("SHM", [](const Counts& c) { return c.shm; });
  row_of("HCA", [](const Counts& c) { return c.hca; });
  row_of("total", [](const Counts& c) { return c.total(); });
  table.print(std::cout);

  const auto& native = rows[0].second;
  const auto& one = rows[1].second;
  const auto& two = rows[2].second;
  const auto& four = rows[3].second;
  print_shape_check(native.hca == 0 && one.hca == 0,
                    "no HCA operations on native and 1-container");
  print_shape_check(native.cma == one.cma && native.shm == one.shm,
                    "native equals 1-container exactly");
  print_shape_check(two.hca > 0 && four.hca > two.hca,
                    "HCA operations grow with container count");
  print_shape_check(native.total() == two.total() && native.total() == four.total(),
                    "total transfer operations invariant across scenarios");
  print_shape_check(native.cma > native.shm,
                    "CMA dominant (full coalescing buffers ride rendezvous)");
  return 0;
}
