file(REMOVE_RECURSE
  "CMakeFiles/container_scaling.dir/container_scaling.cpp.o"
  "CMakeFiles/container_scaling.dir/container_scaling.cpp.o.d"
  "container_scaling"
  "container_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/container_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
