// mpiP-style profiling: per-MPI-call virtual time, per-channel transfer
// operation counters, and the communication/computation breakdown used by
// the paper's bottleneck analysis (Fig. 3a and Table I).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "fabric/message.hpp"
#include "mpi/coll/types.hpp"

namespace cbmpi::prof {

enum class CallKind : std::uint8_t {
  Send, Recv, Isend, Irecv, Test, Wait, Probe,
  Barrier, Bcast, Reduce, Allreduce, Gather, Allgather, Scatter,
  Alltoall, Alltoallv, AllgatherV, Gatherv, Scatterv,
  ReduceScatter, Scan, Exscan,
  Put, Get, Accumulate, Fence, Flush, WinCreate,
  Count_,
};

inline constexpr std::size_t kCallKinds = static_cast<std::size_t>(CallKind::Count_);

const char* to_string(CallKind kind);

struct CallStats {
  std::uint64_t count = 0;
  Micros time = 0.0;
};

/// Per-rank accumulator; owned and written by exactly one rank thread.
class RankProfile {
 public:
  void add_call(CallKind kind, Micros elapsed);
  void add_channel_op(fabric::ChannelKind channel, Bytes bytes);
  /// One user-level collective resolved to `algo` (TwoLevel for hierarchical
  /// paths; never Auto). Pairs with the channel counters so placement quality
  /// and algorithm quality are observable together.
  void add_coll_algo(coll::Coll coll, coll::Algo algo);
  void add_compute(Micros elapsed);
  /// Virtual time spent recovering from injected faults (retry backoff,
  /// fallback detection) — reported separately from comm/compute.
  void add_recovery(Micros elapsed);

  const CallStats& call(CallKind kind) const;
  /// How many calls of `coll` ran with `algo` on this rank.
  std::uint64_t coll_algo(coll::Coll coll, coll::Algo algo) const;
  std::uint64_t channel_ops(fabric::ChannelKind channel) const;
  Bytes channel_bytes(fabric::ChannelKind channel) const;
  Micros comm_time() const;    ///< sum over all MPI calls
  Micros compute_time() const;
  Micros recovery_time() const;

  void merge(const RankProfile& other);

 private:
  std::array<CallStats, kCallKinds> calls_{};
  std::array<std::array<std::uint64_t, coll::kAlgos>, coll::kColls> coll_algos_{};
  std::array<std::uint64_t, fabric::kChannelKinds> channel_ops_{};
  std::array<Bytes, fabric::kChannelKinds> channel_bytes_{};
  Micros compute_time_ = 0.0;
  Micros recovery_time_ = 0.0;
};

/// Job-wide aggregate (sum over ranks).
struct JobProfile {
  RankProfile total;
  int ranks = 0;

  void merge_rank(const RankProfile& rank_profile);

  /// Fraction of (comm + compute) time spent communicating, as mpiP reports.
  double comm_fraction() const;

  /// Renders an mpiP-like report for humans / EXPERIMENTS.md.
  std::string report() const;
};

}  // namespace cbmpi::prof
