#include "osl/machine.hpp"

#include "common/error.hpp"

namespace cbmpi::osl {

HostOs::HostOs(Machine& machine, const topo::Host& host)
    : machine_(&machine), host_(&host) {
  for (auto type : {NamespaceType::Pid, NamespaceType::Ipc, NamespaceType::Uts,
                    NamespaceType::Net})
    root_ns_.set(type, machine_->allocate_namespace_id());
  set_hostname(root_ns_.get(NamespaceType::Uts), host_->name());
}

const topo::MachineProfile& HostOs::profile() const { return machine_->profile(); }

NamespaceId HostOs::make_namespace(NamespaceType) {
  return machine_->allocate_namespace_id();
}

void HostOs::set_hostname(NamespaceId uts_ns, std::string name) {
  const std::scoped_lock lock(hostnames_mutex_);
  hostnames_[uts_ns.value] = std::move(name);
}

std::string HostOs::hostname(NamespaceId uts_ns) const {
  const std::scoped_lock lock(hostnames_mutex_);
  const auto it = hostnames_.find(uts_ns.value);
  CBMPI_REQUIRE(it != hostnames_.end(), "unknown UTS namespace ", uts_ns.value,
                " on ", host_->name());
  return it->second;
}

Pid HostOs::allocate_pid() { return next_pid_.fetch_add(1, std::memory_order_relaxed); }

NamespaceId HostOs::ivshmem_namespace() {
  const std::scoped_lock lock(ivshmem_mutex_);
  if (!ivshmem_ns_) ivshmem_ns_ = machine_->allocate_namespace_id();
  return *ivshmem_ns_;
}

Machine::Machine(topo::Cluster cluster, topo::MachineProfile profile)
    : cluster_(std::move(cluster)), profile_(profile) {
  hosts_.reserve(static_cast<std::size_t>(cluster_.num_hosts()));
  for (const auto& host : cluster_.hosts())
    hosts_.push_back(std::make_unique<HostOs>(*this, host));
}

HostOs& Machine::host_os(topo::HostId id) {
  CBMPI_REQUIRE(id >= 0 && id < num_hosts(), "host id out of range: ", id);
  return *hosts_[static_cast<std::size_t>(id)];
}

const HostOs& Machine::host_os(topo::HostId id) const {
  CBMPI_REQUIRE(id >= 0 && id < num_hosts(), "host id out of range: ", id);
  return *hosts_[static_cast<std::size_t>(id)];
}

NamespaceId Machine::allocate_namespace_id() {
  return NamespaceId{next_ns_id_.fetch_add(1, std::memory_order_relaxed)};
}

}  // namespace cbmpi::osl
