// Pin-down (memory-registration) cache tests: LRU bookkeeping invariants of
// fabric::RegistrationCache, analytic hit/miss accounting through the full
// runtime, the pipelined-rendezvous speedups the model must produce, SR-IOV
// VF capacity sharing, and the bit-identical-rerun claim with the cache
// enabled (DESIGN.md §15).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fabric/reg_cache.hpp"
#include "mpi/runtime.hpp"
#include "net/fabric.hpp"
#include "obs/report.hpp"

namespace cbmpi {
namespace {

using container::DeploymentSpec;
using fabric::RegistrationCache;
using mpi::JobConfig;
using mpi::run_job;

// --- cache unit tests -------------------------------------------------------

TEST(RegCache, LruEvictsLeastRecentlyUsed) {
  RegistrationCache cache({1000});
  EXPECT_FALSE(cache.lookup(0, /*buffer_id=*/0, 400).hit);
  EXPECT_FALSE(cache.lookup(0, 1, 400).hit);
  // Touch 0 so 1 becomes the LRU entry.
  EXPECT_TRUE(cache.lookup(0, 0, 400).hit);

  const auto third = cache.lookup(0, 2, 400);
  EXPECT_FALSE(third.hit);
  EXPECT_EQ(third.evictions, 1u);
  EXPECT_EQ(third.evicted_bytes, 400u);

  EXPECT_TRUE(cache.lookup(0, 0, 400).hit);   // survived
  EXPECT_FALSE(cache.lookup(0, 1, 400).hit);  // was the victim
}

TEST(RegCache, OversizedBufferIsTransient) {
  RegistrationCache cache({100});
  const auto look = cache.lookup(0, 0, 200);
  EXPECT_FALSE(look.hit);
  EXPECT_FALSE(look.cached);
  EXPECT_EQ(look.registered, 200u);
  EXPECT_EQ(look.evictions, 0u);
  EXPECT_EQ(cache.pinned(0), 0u);
  // And it never turns into a hit.
  EXPECT_FALSE(cache.lookup(0, 0, 200).hit);
}

TEST(RegCache, GrownBufferReRegisters) {
  RegistrationCache cache({1000});
  EXPECT_FALSE(cache.lookup(0, 0, 100).hit);
  // A smaller request is covered by the standing registration...
  EXPECT_TRUE(cache.lookup(0, 0, 50).hit);
  // ...but a larger one invalidates it: old pin dropped, new one taken.
  const auto grown = cache.lookup(0, 0, 300);
  EXPECT_FALSE(grown.hit);
  EXPECT_EQ(grown.evictions, 1u);
  EXPECT_EQ(grown.evicted_bytes, 100u);
  EXPECT_EQ(cache.pinned(0), 300u);
  EXPECT_TRUE(cache.lookup(0, 0, 300).hit);
}

TEST(RegCache, PinnedNeverExceedsCapacityAndStatsAddUp) {
  RegistrationCache cache({1000, 500});
  for (int i = 0; i < 40; ++i) {
    const int rank = i % 2;
    cache.lookup(rank, static_cast<std::uint64_t>(i % 7),
                 150u + 37u * static_cast<Bytes>(i % 5));
    EXPECT_LE(cache.pinned(rank), cache.capacity(rank));
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 40u);
  EXPECT_EQ(stats.capacity_bytes, 1500u);
  EXPECT_LE(stats.pinned_bytes, stats.peak_pinned_bytes);
  EXPECT_LE(stats.peak_pinned_bytes, stats.capacity_bytes);
  EXPECT_LE(stats.evictions, stats.misses);
  EXPECT_GE(stats.registered_bytes, stats.pinned_bytes);
}

// --- runtime accounting -----------------------------------------------------

JobConfig pair_config(bool reg_model, Bytes cache_bytes = 64_MiB) {
  JobConfig config;
  config.deployment = DeploymentSpec::native_hosts(2, 1);
  config.tuning.reg_model = reg_model;
  config.tuning.reg_cache_bytes = cache_bytes;
  return config;
}

void send_repeated(mpi::Process& p, Bytes bytes, int repeats) {
  std::vector<std::uint8_t> buf(bytes);
  for (int i = 0; i < repeats; ++i) {
    if (p.rank() == 0)
      p.world().send(std::span<const std::uint8_t>(buf), 1);
    else
      p.world().recv(std::span<std::uint8_t>(buf), 0);
  }
}

TEST(RegCacheJob, HitMissAccountingMatchesAnalyticExpectation) {
  // 5 rendezvous sends reusing one buffer per side: first send misses on
  // both endpoints, the other four hit on both.
  auto config = pair_config(true);
  config.observe = true;
  const auto result = run_job(config, [](mpi::Process& p) {
    send_repeated(p, 256_KiB, 5);
  });
  ASSERT_TRUE(result.reg_cache.enabled);
  EXPECT_EQ(result.reg_cache.misses, 2u);
  EXPECT_EQ(result.reg_cache.hits, 8u);
  EXPECT_EQ(result.reg_cache.evictions, 0u);
  EXPECT_EQ(result.reg_cache.registered_bytes, 2u * 256_KiB);
  EXPECT_EQ(result.reg_cache.pinned_bytes, 2u * 256_KiB);
  EXPECT_EQ(result.reg_cache.peak_pinned_bytes, 2u * 256_KiB);

  // The ADI3 counters must tell the same story as the cache's own stats.
  std::uint64_t hits = 0, misses = 0;
  for (const auto& [name, value] : result.metrics.counters) {
    if (name == "hca.reg_cache.hits") hits = value;
    if (name == "hca.reg_cache.misses") misses = value;
  }
  EXPECT_EQ(hits, result.reg_cache.hits);
  EXPECT_EQ(misses, result.reg_cache.misses);
}

TEST(RegCacheJob, EvictionsUnderPinnedBytePressure) {
  // Two 192 KiB buffers alternating through a 256 KiB budget: only one fits
  // at a time, so every reuse re-registers after evicting the other.
  auto config = pair_config(true, 256_KiB);
  const auto result = run_job(config, [](mpi::Process& p) {
    std::vector<std::uint8_t> a(192_KiB), b(192_KiB);
    for (int i = 0; i < 3; ++i) {
      if (p.rank() == 0) {
        p.world().send(std::span<const std::uint8_t>(a), 1);
        p.world().send(std::span<const std::uint8_t>(b), 1);
      } else {
        p.world().recv(std::span<std::uint8_t>(a), 0);
        p.world().recv(std::span<std::uint8_t>(b), 0);
      }
    }
  });
  ASSERT_TRUE(result.reg_cache.enabled);
  EXPECT_EQ(result.reg_cache.hits, 0u);
  EXPECT_EQ(result.reg_cache.misses, 12u);
  // Every miss except the very first per rank evicted the standing entry.
  EXPECT_EQ(result.reg_cache.evictions, 10u);
  EXPECT_LE(result.reg_cache.pinned_bytes, result.reg_cache.capacity_bytes);
}

TEST(RegCacheJob, WarmCacheBeatsColdCache) {
  // reg_cache_bytes = 0 keeps the model on but caches nothing — the
  // cold-registration baseline every transfer pays.
  const auto body = [](mpi::Process& p) { send_repeated(p, 1_MiB, 4); };
  const auto warm = run_job(pair_config(true), body);
  const auto cold = run_job(pair_config(true, 0), body);
  EXPECT_LT(warm.job_time, cold.job_time);
  EXPECT_EQ(cold.reg_cache.hits, 0u);
  EXPECT_EQ(cold.reg_cache.pinned_bytes, 0u);
}

TEST(RegCacheJob, PipeliningBeatsSerialRegistration) {
  // One cold 4 MiB rendezvous. Chunked: only the first 256 KiB registration
  // is exposed, the rest hides behind the RDMA of the previous chunk.
  // Serial (chunk >= message) pays the whole 4 MiB registration up front.
  const auto body = [](mpi::Process& p) { send_repeated(p, 4_MiB, 1); };
  auto pipelined = pair_config(true);
  pipelined.tuning.rndv_chunk = 256_KiB;
  auto serial = pair_config(true);
  serial.tuning.rndv_chunk = 1_GiB;
  const auto fast = run_job(pipelined, body);
  const auto slow = run_job(serial, body);
  EXPECT_LT(fast.job_time, slow.job_time);
}

TEST(RegCacheJob, EagerTrafficIsUntouchedByTheModel) {
  // 1 KiB sends stay eager (copy-based, unregistered): enabling the model
  // must not move a single timestamp.
  const auto body = [](mpi::Process& p) { send_repeated(p, 1_KiB, 8); };
  const auto off = run_job(pair_config(false), body);
  const auto on = run_job(pair_config(true), body);
  EXPECT_EQ(off.job_time, on.job_time);
  ASSERT_EQ(off.rank_times.size(), on.rank_times.size());
  for (std::size_t r = 0; r < off.rank_times.size(); ++r)
    EXPECT_EQ(off.rank_times[r], on.rank_times[r]);
  ASSERT_TRUE(on.reg_cache.enabled);
  EXPECT_EQ(on.reg_cache.hits + on.reg_cache.misses, 0u);
}

TEST(RegCacheJob, ModelOffReportsNothing) {
  const auto result = run_job(pair_config(false), [](mpi::Process& p) {
    send_repeated(p, 256_KiB, 2);
  });
  EXPECT_FALSE(result.reg_cache.enabled);
  obs::ReportContext ctx;
  ctx.app = "reg-cache-test";
  ctx.deployment = "2x1";
  ctx.policy = "aware";
  const std::string json = obs::run_report_json(ctx, result);
  EXPECT_EQ(json.find("\"reg_cache\""), std::string::npos);
}

TEST(RegCacheJob, EnabledRerunIsByteIdentical) {
  auto config = pair_config(true, 1_MiB);
  config.observe = true;
  const auto body = [](mpi::Process& p) { send_repeated(p, 512_KiB, 6); };
  const auto first = run_job(config, body);
  const auto second = run_job(config, body);
  EXPECT_EQ(first.job_time, second.job_time);
  ASSERT_EQ(first.rank_times.size(), second.rank_times.size());
  for (std::size_t r = 0; r < first.rank_times.size(); ++r)
    EXPECT_EQ(first.rank_times[r], second.rank_times[r]);

  obs::ReportContext ctx;
  ctx.app = "reg-cache-test";
  ctx.deployment = "2x1";
  ctx.policy = "aware";
  const std::string a = obs::run_report_json(ctx, first);
  const std::string b = obs::run_report_json(ctx, second);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"reg_cache\""), std::string::npos);
  EXPECT_NE(a.find("\"version\":6"), std::string::npos);
}

// --- SR-IOV VF capacity sharing ---------------------------------------------

TEST(RegCacheJob, VfShareShrinksThePinnedBudget) {
  // Two containers per host provision two VFs; --vf-limit=1 halves each
  // VF's share of the HCA, registration resources included: the 768 KiB
  // budget drops to 384 KiB, below the 512 KiB message, so nothing caches.
  auto config = [](int vf_limit) {
    JobConfig c;
    c.deployment = DeploymentSpec::containers(2, 2, 2);
    c.fabric = net::FabricConfig::parse("flat");
    c.fabric.vf_limit = vf_limit;
    c.tuning.reg_model = true;
    c.tuning.reg_cache_bytes = 768_KiB;
    return c;
  };
  const auto body = [](mpi::Process& p) {
    std::vector<std::uint8_t> buf(512_KiB);
    for (int i = 0; i < 3; ++i) {
      if (p.rank() == 0)
        p.world().send(std::span<const std::uint8_t>(buf), 2);
      else if (p.rank() == 2)
        p.world().recv(std::span<std::uint8_t>(buf), 0);
    }
  };
  const auto unlimited = run_job(config(0), body);
  const auto limited = run_job(config(1), body);
  ASSERT_TRUE(unlimited.reg_cache.enabled);
  ASSERT_TRUE(limited.reg_cache.enabled);
  EXPECT_EQ(unlimited.reg_cache.hits, 4u);  // 2 endpoints x 2 reuses
  EXPECT_EQ(limited.reg_cache.hits, 0u);    // budget below the message size
  EXPECT_EQ(limited.reg_cache.misses, 6u);
  EXPECT_LT(limited.reg_cache.capacity_bytes,
            unlimited.reg_cache.capacity_bytes);
}

}  // namespace
}  // namespace cbmpi
