// Per-rank message matcher: the unexpected-message queue.
//
// Senders (other threads) deliver envelopes; the owning rank matches them
// against receives by (source, tag, communicator). Matching preserves the
// MPI non-overtaking rule: envelopes from one sender are scanned in delivery
// order, which equals that sender's program order. For wildcard receives the
// match picks the candidate with the earliest virtual availability (ties
// broken by source rank, then sequence number) to keep simulations as
// deterministic as possible.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "fabric/message.hpp"
#include "mpi/types.hpp"

namespace cbmpi::mpi {

class Matcher {
 public:
  /// Called by sender threads.
  void deliver(fabric::Envelope envelope);

  /// Removes and returns the first envelope matching (src, tag, comm);
  /// src/tag may be wildcards. Returns nullopt if nothing matches now.
  std::optional<fabric::Envelope> try_match(int src_world, int tag,
                                            std::uint64_t comm_id);

  /// Non-destructive variant for MPI_Iprobe.
  std::optional<Status> peek(int src_world, int tag, std::uint64_t comm_id) const;

  /// Monotone counter incremented on every delivery; used by blocking ops to
  /// sleep until something new arrives.
  std::uint64_t version() const;

  /// Blocks (wall-clock) until version() != seen, or ~20 ms elapse (the
  /// timeout lets blocked ranks observe a job abort).
  void wait_past(std::uint64_t seen) const;

  /// Wakes all waiters without delivering anything (abort propagation).
  void poke();

  std::size_t pending() const;

 private:
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  std::deque<fabric::Envelope> unexpected_;
  std::uint64_t version_ = 0;
};

}  // namespace cbmpi::mpi
