// Tests for the extended collectives: v-variants, reduce_scatter, prefix
// scans, and the size-based algorithm switches (van de Geijn broadcast,
// Rabenseifner allreduce).
#include <gtest/gtest.h>

#include <numeric>

#include "mpi/runtime.hpp"

namespace cbmpi {
namespace {

using container::DeploymentSpec;
using fabric::LocalityPolicy;
using mpi::JobConfig;
using mpi::ReduceOp;
using mpi::run_job;

struct ExtCase {
  int hosts;
  int containers;
  int procs_per_host;
  LocalityPolicy policy;
};

class ExtCollectives : public testing::TestWithParam<ExtCase> {
 protected:
  JobConfig config() const {
    const auto& c = GetParam();
    JobConfig cfg;
    cfg.deployment =
        c.containers == 0
            ? DeploymentSpec::native_hosts(c.hosts, c.procs_per_host)
            : DeploymentSpec::containers(c.hosts, c.containers, c.procs_per_host);
    cfg.policy = c.policy;
    return cfg;
  }
  int nranks() const { return GetParam().hosts * GetParam().procs_per_host; }
};

TEST_P(ExtCollectives, GathervVariableBlocks) {
  const int n = nranks();
  run_job(config(), [n](mpi::Process& p) {
    // Rank r contributes r+1 copies of r.
    std::vector<int> counts(static_cast<std::size_t>(n)), displs(counts.size());
    int total = 0;
    for (int r = 0; r < n; ++r) {
      counts[static_cast<std::size_t>(r)] = r + 1;
      displs[static_cast<std::size_t>(r)] = total;
      total += r + 1;
    }
    std::vector<int> mine(static_cast<std::size_t>(p.rank() + 1), p.rank());
    std::vector<int> all(static_cast<std::size_t>(total), -1);
    p.world().gatherv(std::span<const int>(mine), std::span<int>(all),
                      std::span<const int>(counts), std::span<const int>(displs),
                      n - 1);
    if (p.rank() == n - 1) {
      for (int r = 0; r < n; ++r)
        for (int k = 0; k <= r; ++k)
          ASSERT_EQ(all[static_cast<std::size_t>(
                        displs[static_cast<std::size_t>(r)] + k)],
                    r);
    }
  });
}

TEST_P(ExtCollectives, ScattervRoundTripsGatherv) {
  const int n = nranks();
  run_job(config(), [n](mpi::Process& p) {
    std::vector<int> counts(static_cast<std::size_t>(n)), displs(counts.size());
    int total = 0;
    for (int r = 0; r < n; ++r) {
      counts[static_cast<std::size_t>(r)] = (r % 3) + 1;
      displs[static_cast<std::size_t>(r)] = total;
      total += (r % 3) + 1;
    }
    std::vector<int> all(static_cast<std::size_t>(total));
    if (p.rank() == 0) std::iota(all.begin(), all.end(), 100);
    std::vector<int> mine(static_cast<std::size_t>((p.rank() % 3) + 1), -1);
    p.world().scatterv(std::span<const int>(all), std::span<const int>(counts),
                       std::span<const int>(displs), std::span<int>(mine), 0);
    for (std::size_t k = 0; k < mine.size(); ++k)
      ASSERT_EQ(mine[k],
                100 + displs[static_cast<std::size_t>(p.rank())] + static_cast<int>(k));

    // Round-trip back with gatherv.
    std::vector<int> regathered(static_cast<std::size_t>(total), -1);
    p.world().gatherv(std::span<const int>(mine), std::span<int>(regathered),
                      std::span<const int>(counts), std::span<const int>(displs), 0);
    if (p.rank() == 0) {
      for (int k = 0; k < total; ++k)
        ASSERT_EQ(regathered[static_cast<std::size_t>(k)], 100 + k);
    }
  });
}

TEST_P(ExtCollectives, AllgathervAssemblesInRankOrder) {
  const int n = nranks();
  run_job(config(), [n](mpi::Process& p) {
    std::vector<int> counts(static_cast<std::size_t>(n)), displs(counts.size());
    int total = 0;
    for (int r = 0; r < n; ++r) {
      counts[static_cast<std::size_t>(r)] = r % 2 == 0 ? 2 : 3;
      displs[static_cast<std::size_t>(r)] = total;
      total += counts[static_cast<std::size_t>(r)];
    }
    std::vector<int> mine(
        static_cast<std::size_t>(counts[static_cast<std::size_t>(p.rank())]),
        p.rank() * 11);
    std::vector<int> all(static_cast<std::size_t>(total), -1);
    p.world().allgatherv(std::span<const int>(mine), std::span<int>(all),
                         std::span<const int>(counts), std::span<const int>(displs));
    for (int r = 0; r < n; ++r)
      for (int k = 0; k < counts[static_cast<std::size_t>(r)]; ++k)
        ASSERT_EQ(all[static_cast<std::size_t>(displs[static_cast<std::size_t>(r)] + k)],
                  r * 11);
  });
}

TEST_P(ExtCollectives, ReduceScatterBlockSumsPerBlock) {
  const int n = nranks();
  run_job(config(), [n](mpi::Process& p) {
    constexpr std::size_t kBlock = 5;
    std::vector<std::int64_t> in(kBlock * static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < in.size(); ++i)
      in[i] = p.rank() + static_cast<std::int64_t>(i);
    std::vector<std::int64_t> out(kBlock, -1);
    p.world().reduce_scatter_block(std::span<const std::int64_t>(in),
                                   std::span<std::int64_t>(out), ReduceOp::Sum);
    const std::int64_t rank_sum = static_cast<std::int64_t>(n) * (n - 1) / 2;
    for (std::size_t k = 0; k < kBlock; ++k) {
      const auto idx = static_cast<std::int64_t>(
          kBlock * static_cast<std::size_t>(p.rank()) + k);
      ASSERT_EQ(out[k], rank_sum + idx * n);
    }
  });
}

TEST_P(ExtCollectives, ScanIsInclusivePrefix) {
  const int n = nranks();
  run_job(config(), [n](mpi::Process& p) {
    (void)n;
    const std::int64_t mine[2] = {p.rank() + 1, 10};
    std::int64_t out[2] = {0, 0};
    p.world().scan(std::span<const std::int64_t>(mine, 2),
                   std::span<std::int64_t>(out, 2), ReduceOp::Sum);
    const std::int64_t r = p.rank();
    ASSERT_EQ(out[0], (r + 1) * (r + 2) / 2);
    ASSERT_EQ(out[1], 10 * (r + 1));
    ASSERT_EQ(p.world().scan_value<std::int64_t>(1, ReduceOp::Sum), r + 1);
  });
}

TEST_P(ExtCollectives, ExscanIsExclusivePrefix) {
  run_job(config(), [](mpi::Process& p) {
    const std::int64_t mine = p.rank() + 1;
    std::int64_t out = -1;
    p.world().exscan(std::span<const std::int64_t>(&mine, 1),
                     std::span<std::int64_t>(&out, 1), ReduceOp::Sum);
    const std::int64_t r = p.rank();
    if (r == 0)
      ASSERT_EQ(out, 0);  // value-initialized by our convention
    else
      ASSERT_EQ(out, r * (r + 1) / 2);
    ASSERT_EQ(p.world().exscan_value<std::int64_t>(2, ReduceOp::Sum), 2 * r);
  });
}

TEST_P(ExtCollectives, ScanMaxAndProd) {
  run_job(config(), [](mpi::Process& p) {
    const std::int64_t v = (p.rank() % 3) + 1;
    const auto mx = p.world().scan_value(v, ReduceOp::Max);
    std::int64_t expect = 0;
    for (int r = 0; r <= p.rank(); ++r) expect = std::max<std::int64_t>(expect, (r % 3) + 1);
    ASSERT_EQ(mx, expect);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Deployments, ExtCollectives,
    testing::Values(ExtCase{1, 0, 4, LocalityPolicy::HostnameBased},
                    ExtCase{1, 2, 4, LocalityPolicy::ContainerAware},
                    ExtCase{2, 2, 4, LocalityPolicy::ContainerAware},
                    ExtCase{3, 1, 3, LocalityPolicy::HostnameBased}));

TEST(LargeAlgorithms, BcastVanDeGeijnMatchesBinomial) {
  // Same payload, thresholds flipped: results must be identical, and the
  // ring-based algorithm should be faster for large payloads.
  auto run_with = [&](Bytes threshold) {
    JobConfig cfg;
    cfg.deployment = DeploymentSpec::native_hosts(4, 2);
    cfg.coll_tuning = {};  // empty table: Auto heuristic, honours the threshold
    cfg.tuning.bcast_large_threshold = threshold;
    Micros time = 0.0;
    std::uint64_t checksum = 0;
    run_job(cfg, [&](mpi::Process& p) {
      std::vector<std::uint64_t> data(64 * 1024);  // 512 KiB
      if (p.rank() == 0)
        for (std::size_t i = 0; i < data.size(); ++i) data[i] = i * 7 + 3;
      p.sync_time();
      const Micros start = p.now();
      p.world().bcast(std::span<std::uint64_t>(data), 0);
      const Micros elapsed =
          p.world().allreduce_value(p.now() - start, ReduceOp::Max);
      std::uint64_t sum = 0;
      for (const auto v : data) sum += v;
      if (p.rank() == p.size() - 1) {
        time = elapsed;
        checksum = sum;
      }
    });
    return std::pair{time, checksum};
  };
  const auto [ring_time, ring_sum] = run_with(64_KiB);       // van de Geijn
  const auto [tree_time, tree_sum] = run_with(1_GiB);        // binomial only
  EXPECT_EQ(ring_sum, tree_sum);
  EXPECT_LT(ring_time, tree_time)
      << "scatter+allgather must beat the binomial tree at 512 KiB";
}

TEST(LargeAlgorithms, AllreduceRabenseifnerMatchesRecursiveDoubling) {
  auto run_with = [&](Bytes threshold) {
    JobConfig cfg;
    cfg.deployment = DeploymentSpec::native_hosts(4, 2);
    cfg.coll_tuning = {};  // empty table: Auto heuristic, honours the threshold
    cfg.tuning.allreduce_large_threshold = threshold;
    Micros time = 0.0;
    double checksum = 0.0;
    run_job(cfg, [&](mpi::Process& p) {
      std::vector<double> in(32 * 1024);  // 256 KiB
      for (std::size_t i = 0; i < in.size(); ++i)
        in[i] = static_cast<double>(p.rank()) + static_cast<double>(i) * 0.25;
      std::vector<double> out(in.size());
      p.sync_time();
      const Micros start = p.now();
      p.world().allreduce(std::span<const double>(in), std::span<double>(out),
                          ReduceOp::Sum);
      const Micros elapsed =
          p.world().allreduce_value(p.now() - start, ReduceOp::Max);
      if (p.rank() == 0) {
        time = elapsed;
        checksum = out[12345];
      }
    });
    return std::pair{time, checksum};
  };
  const auto [raben_time, raben_sum] = run_with(32_KiB);
  const auto [recdbl_time, recdbl_sum] = run_with(1_GiB);
  EXPECT_DOUBLE_EQ(raben_sum, recdbl_sum);
  EXPECT_LT(raben_time, recdbl_time)
      << "reduce-scatter + allgather must beat recursive doubling at 256 KiB";
}

TEST(LargeAlgorithms, RabenseifnerSkipsNonZeroIdentityOps) {
  // Min with large payload must still be correct (falls back internally).
  JobConfig cfg;
  cfg.deployment = DeploymentSpec::native_hosts(4, 1);
  run_job(cfg, [](mpi::Process& p) {
    std::vector<std::int64_t> in(16 * 1024, p.rank() + 5);
    std::vector<std::int64_t> out(in.size());
    p.world().allreduce(std::span<const std::int64_t>(in),
                        std::span<std::int64_t>(out), ReduceOp::Min);
    for (const auto v : out) ASSERT_EQ(v, 5);
  });
}

}  // namespace
}  // namespace cbmpi
