// Distributed graph construction for Graph 500.
//
// 1-D vertex partition: vertex v is owned by rank v % P (the mpi-simple
// convention). Construction generates each rank's slice of the Kronecker
// edge list, exchanges endpoints with alltoallv so both endpoints' owners
// learn each edge, and builds a local CSR over global vertex ids.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/graph500/kronecker.hpp"
#include "mpi/runtime.hpp"

namespace cbmpi::apps::graph500 {

class DistGraph {
 public:
  std::uint64_t num_global_vertices = 0;
  int nranks = 1;
  int my_rank = 0;

  /// CSR over local vertices; columns hold *global* vertex ids.
  std::vector<std::uint64_t> row_ptr;  ///< local_vertices + 1
  std::vector<std::uint64_t> adjacency;

  int owner(std::uint64_t v) const {
    return static_cast<int>(v % static_cast<std::uint64_t>(nranks));
  }

  std::uint64_t to_local(std::uint64_t v) const {
    return v / static_cast<std::uint64_t>(nranks);
  }

  std::uint64_t to_global(std::uint64_t local) const {
    return local * static_cast<std::uint64_t>(nranks) +
           static_cast<std::uint64_t>(my_rank);
  }

  std::uint64_t local_vertices() const { return row_ptr.size() - 1; }

  std::span<const std::uint64_t> neighbors(std::uint64_t local) const {
    return {adjacency.data() + row_ptr[local],
            adjacency.data() + row_ptr[local + 1]};
  }

  std::uint64_t local_edges() const { return adjacency.size(); }
};

/// Collective: builds the distributed graph (both edge directions stored).
DistGraph build_graph(mpi::Process& p, const EdgeListParams& params);

}  // namespace cbmpi::apps::graph500
