#!/usr/bin/env python3
"""Validates cbmpirun observability output, run by the CI `reports` job.

Checks a run report (--report) and/or a Perfetto trace (--trace-out):

report:
  * schema/version header and the section keys DESIGN.md §12 promises
  * v2 recovery section: checkpoint events monotone in virtual time and
    round, restarts <= crashes, recovery counters non-negative
  * v3 net section (when present): utilizations in [0, 1] with mean <= peak,
    hop histogram sums to the transfer count, congested <= transfers
  * v4 reg_cache section (when present): pinned <= peak <= capacity,
    pinned <= registered, and the headline hit/miss/eviction counts agree
    with the hca.reg_cache.* metrics counters
  * v5 analysis section (when present, single and per schedule job): blame
    times non-negative and summing to the critical path, fractions in
    [0, 1], segments/top_segments inside [0, critical_path], wait-state
    and coll-group times non-negative
  * v6 migration section (when present): a known policy, executed moves a
    subset of accepted proposals, one record per executed move with a
    positive quiesce round, a non-negative pause consistent with the
    headline total, and non-negative locality/pin-down deltas
    (--expect-migration additionally requires the section to be present)
  * comm_fraction and every other fraction in [0, 1]
  * histogram bucket counts sum to the histogram's count, bucket upper
    bounds strictly ascending, sum consistent with the bucket ranges,
    and (v5) p50 <= p95 <= p99 with each a valid bucket upper bound
  * counter/profile consistency: per-channel op counters equal the
    profile's channel table (Table-I path), eager + rndv sends equal the
    channel-op total
  * spans.by_category counts sum to spans.count

trace:
  * the document is a Chrome/Perfetto trace: {"traceEvents": [...]}
  * every event has ph in {X, i, M, s, f}, ts >= 0 and (for X) dur >= 0
  * X timestamps are monotone in file order per (pid, tid) track
  * duration events nest properly on every rank track (pid < 1000):
    a span that begins inside an open span must end within it
  * flow events ('s' -> 'f') pair up by id: every flow finish has a
    matching start and ids are not reused

Usage:
  tools/check_report.py --report report.json --trace trace.json

Exit status is the number of problems found; each problem is printed as
`file: message`.
"""

import argparse
import json
import sys

CHANNEL_PID_BASE = 1000
REQUIRED_TOP_KEYS = ["schema", "version", "mode", "job", "result", "profile",
                     "metrics", "spans", "faults", "recovery"]
RECOVERY_COUNTERS = ["crashes", "requeues", "restarts_from_checkpoint",
                     "checkpoints", "jobs_failed", "blacklisted_hosts"]
JOB_OUTCOMES = ("completed", "crashed", "failed")
REQUIRED_PROFILE_KEYS = ["ranks", "comm_fraction", "comm_time_us",
                         "compute_time_us", "recovery_time_us", "calls",
                         "channels", "coll_algos"]

problems = []


def problem(path, message):
    problems.append(f"{path}: {message}")


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        problem(path, f"cannot parse: {exc}")
        return None


def check_fraction(path, name, value):
    if not isinstance(value, (int, float)) or not 0.0 <= value <= 1.0:
        problem(path, f"{name} = {value!r} is not a fraction in [0, 1]")


def check_histogram(path, hist):
    name = hist.get("name", "?")
    count = hist.get("count", 0)
    buckets = hist.get("buckets", [])
    total = sum(b.get("count", 0) for b in buckets)
    if total != count:
        problem(path, f"histogram {name}: bucket counts sum to {total}, "
                      f"count says {count}")
    uppers = [b.get("le", 0) for b in buckets]
    if uppers != sorted(uppers) or len(set(uppers)) != len(uppers):
        problem(path, f"histogram {name}: bucket bounds not strictly ascending")
    # The sum must be achievable from the bucket ranges: every bucket's
    # values lie in (previous upper, upper].
    lo = 0
    max_sum = 0
    prev_upper = -1
    for b in buckets:
        upper = b.get("le", 0)
        n = b.get("count", 0)
        lo += n * max(prev_upper + 1, 0) if prev_upper >= 0 else 0
        max_sum += n * upper
        prev_upper = upper
    s = hist.get("sum", 0)
    if buckets and not lo <= s <= max_sum:
        problem(path, f"histogram {name}: sum {s} outside the bucket-implied "
                      f"range [{lo}, {max_sum}]")
    # v5 percentiles: derived from the buckets, so each must be one of the
    # bucket upper bounds and the sequence must be monotone in q.
    quants = [hist.get(q) for q in ("p50", "p95", "p99")]
    if any(q is not None for q in quants):
        if any(q is None for q in quants):
            problem(path, f"histogram {name}: partial percentile set {quants}")
        elif not quants[0] <= quants[1] <= quants[2]:
            problem(path, f"histogram {name}: percentiles not monotone "
                          f"{quants}")
        elif buckets and any(q not in uppers for q in quants):
            problem(path, f"histogram {name}: percentile not a bucket upper "
                          f"bound ({quants} vs {uppers})")


def check_report(path):
    doc = load(path)
    if doc is None:
        return
    if doc.get("schema") != "cbmpi.run_report":
        problem(path, f"schema is {doc.get('schema')!r}, "
                      f"expected 'cbmpi.run_report'")
    if not isinstance(doc.get("version"), int) or doc.get("version") < 1:
        problem(path, f"version is {doc.get('version')!r}, expected int >= 1")

    mode = doc.get("mode")
    if mode == "schedule":
        for key in ["schema", "version", "mode", "job", "cluster", "jobs"]:
            if key not in doc:
                problem(path, f"missing top-level key {key!r}")
        check_schedule(path, doc)
        return
    if mode != "single":
        problem(path, f"mode is {mode!r}, expected 'single' or 'schedule'")

    for key in REQUIRED_TOP_KEYS:
        if key not in doc:
            problem(path, f"missing top-level key {key!r}")

    profile = doc.get("profile", {})
    for key in REQUIRED_PROFILE_KEYS:
        if key not in profile:
            problem(path, f"profile missing key {key!r}")
    check_fraction(path, "profile.comm_fraction",
                   profile.get("comm_fraction", -1))

    result = doc.get("result", {})
    job_time = result.get("job_time_us", -1)
    if not isinstance(job_time, (int, float)) or job_time < 0:
        problem(path, f"result.job_time_us = {job_time!r} is not >= 0")
    rank_times = result.get("rank_times_us", [])
    if rank_times and abs(max(rank_times) - job_time) > 1e-6 * max(job_time, 1):
        problem(path, "result.job_time_us is not the max of rank_times_us")

    metrics = doc.get("metrics", {})
    for hist in metrics.get("histograms", []):
        check_histogram(path, hist)

    # Counter/profile consistency (Table-I path): the ADI3 hot-path counters
    # and the profile's channel table observe the same channel decisions.
    counters = {c.get("name"): c.get("value", 0)
                for c in metrics.get("counters", [])}
    channel_counter_total = sum(v for n, v in counters.items()
                                if n and n.startswith("channel."))
    profile_channel_total = sum(c.get("ops", 0)
                                for c in profile.get("channels", []))
    if counters and channel_counter_total != profile_channel_total:
        problem(path, f"channel.* counters sum to {channel_counter_total}, "
                      f"profile channels sum to {profile_channel_total}")
    if "adi3.eager_sends" in counters or "adi3.rndv_sends" in counters:
        sends = counters.get("adi3.eager_sends", 0) + \
            counters.get("adi3.rndv_sends", 0)
        if sends != profile_channel_total:
            problem(path, f"eager + rndv sends = {sends}, channel ops "
                          f"= {profile_channel_total}")

    spans = doc.get("spans", {})
    by_cat = sum(c.get("count", 0) for c in spans.get("by_category", []))
    if by_cat != spans.get("count", 0):
        problem(path, f"spans.by_category sums to {by_cat}, "
                      f"spans.count says {spans.get('count')}")

    if doc.get("version", 0) >= 2:
        check_recovery(path, doc.get("recovery", {}))
    if doc.get("version", 0) >= 3 and "net" in doc:
        check_net(path, doc["net"])
    if doc.get("version", 0) >= 4 and "reg_cache" in doc:
        check_reg_cache(path, doc["reg_cache"], counters)
    if doc.get("version", 0) >= 5 and "analysis" in doc:
        check_analysis(path, doc["analysis"], "analysis")
    if doc.get("version", 0) >= 6 and "migration" in doc:
        check_migration(path, doc["migration"])


BLAME_CATEGORIES = ["compute", "eager", "rndv", "registration", "contention",
                    "retry", "recovery", "mpi-other", "idle"]


def check_analysis(path, analysis, where):
    """v5 analysis section: the critical-path walk tiles [0, critical_path]
    exactly, so the blame table must sum to the path length; every fraction
    is in [0, 1]; every segment and wait-state time is a non-negative
    virtual-time interval inside the path."""
    cp = analysis.get("critical_path_us", -1)
    if not isinstance(cp, (int, float)) or cp < 0:
        problem(path, f"{where}.critical_path_us = {cp!r} is not >= 0")
        return
    eps = 1e-6 * max(cp, 1.0)
    if analysis.get("end_rank", -1) < 0:
        problem(path, f"{where}.end_rank = {analysis.get('end_rank')!r} "
                      f"is not a rank")
    blames = analysis.get("blame", [])
    if [b.get("category") for b in blames] != BLAME_CATEGORIES:
        problem(path, f"{where}.blame categories are not exactly "
                      f"{BLAME_CATEGORIES}")
    total = 0.0
    for b in blames:
        cat = b.get("category", "?")
        t = b.get("time_us", -1)
        if t < 0:
            problem(path, f"{where}.blame[{cat}].time_us = {t!r} is negative")
        total += max(t, 0)
        check_fraction(path, f"{where}.blame[{cat}].fraction",
                       b.get("fraction", -1))
    if blames and abs(total - cp) > eps:
        problem(path, f"{where}: blame sums to {total}, critical path "
                      f"is {cp} (segments must tile the path)")
    if analysis.get("segments", -1) < 0:
        problem(path, f"{where}.segments is negative")
    for i, seg in enumerate(analysis.get("top_segments", [])):
        b, e = seg.get("begin_us", -1), seg.get("end_us", -1)
        if not -eps <= b < e <= cp + eps:
            problem(path, f"{where}.top_segments[{i}]: [{b}, {e}] not a "
                          f"forward interval inside [0, {cp}]")
        if abs(seg.get("time_us", -1) - (e - b)) > eps:
            problem(path, f"{where}.top_segments[{i}]: time_us "
                          f"{seg.get('time_us')!r} != end - begin")
        if seg.get("category") not in BLAME_CATEGORIES:
            problem(path, f"{where}.top_segments[{i}]: unknown category "
                          f"{seg.get('category')!r}")
    for ws in analysis.get("wait_states", []):
        rank = ws.get("rank", "?")
        for key in ("late_sender_us", "late_receiver_us", "coll_imbalance_us",
                    "contention_us", "registration_us"):
            if ws.get(key, -1) < 0:
                problem(path, f"{where}.wait_states[rank {rank}].{key} "
                              f"is negative")
    for g in analysis.get("coll_groups", []):
        if g.get("calls", 0) < 1:
            problem(path, f"{where}.coll_groups[{g.get('name')!r}]: no calls")
        if g.get("imbalance_us", -1) < 0:
            problem(path, f"{where}.coll_groups[{g.get('name')!r}]: "
                          f"negative imbalance")


def check_net(path, net):
    """v3 net section: emitted only for non-Ideal fabric runs. Utilizations
    are fractions of link capacity, the hop histogram partitions the recorded
    transfers, and congested transfers are a subset of all transfers."""
    transfers = net.get("transfers", 0)
    congested = net.get("congested_transfers", 0)
    if congested < 0 or congested > transfers:
        problem(path, f"net: congested_transfers {congested} outside "
                      f"[0, transfers={transfers}]")
    if net.get("max_factor", 1.0) < 1.0:
        problem(path, f"net: max_factor {net.get('max_factor')!r} < 1")
    check_fraction(path, "net.max_peak_util", net.get("max_peak_util", -1))
    check_fraction(path, "net.mean_util", net.get("mean_util", -1))
    hops = net.get("hop_histogram", [])
    if sum(hops) != transfers:
        problem(path, f"net: hop_histogram sums to {sum(hops)}, "
                      f"transfers says {transfers}")
    if any(h < 0 for h in hops):
        problem(path, "net: negative hop_histogram bucket")
    for link in net.get("link_utils", []):
        lid = link.get("link", "?")
        check_fraction(path, f"net.link_utils[{lid}].peak",
                       link.get("peak", -1))
        check_fraction(path, f"net.link_utils[{lid}].mean",
                       link.get("mean", -1))
        if link.get("mean", 0) > link.get("peak", 0) + 1e-9:
            problem(path, f"net: link {lid} mean util exceeds peak")
    links = net.get("links", 0)
    if len(net.get("link_utils", [])) > links:
        problem(path, f"net: more link_utils rows than links={links}")


def check_reg_cache(path, reg, counters):
    """v4 reg_cache section: emitted only when the registration model is on.
    Byte gauges obey pinned <= peak <= capacity and pinned <= registered
    (entries still pinned at job end are a subset of everything ever
    registered), and the section's lookup counts must agree with the ADI3
    hot-path counters — both observe the same cache lookups."""
    for key in ("capacity_bytes", "hits", "misses", "evictions",
                "pinned_bytes", "peak_pinned_bytes", "registered_bytes"):
        if reg.get(key, -1) < 0:
            problem(path, f"reg_cache.{key} = {reg.get(key)!r} is not >= 0")
    pinned = reg.get("pinned_bytes", 0)
    peak = reg.get("peak_pinned_bytes", 0)
    if pinned > peak:
        problem(path, f"reg_cache: pinned_bytes {pinned} exceeds "
                      f"peak_pinned_bytes {peak}")
    if peak > reg.get("capacity_bytes", 0):
        problem(path, f"reg_cache: peak_pinned_bytes {peak} exceeds "
                      f"capacity_bytes {reg.get('capacity_bytes')}")
    if pinned > reg.get("registered_bytes", 0):
        problem(path, f"reg_cache: pinned_bytes {pinned} exceeds "
                      f"registered_bytes {reg.get('registered_bytes')}")
    if reg.get("misses", 0) == 0 and reg.get("registered_bytes", 0) > 0:
        problem(path, "reg_cache: registered bytes without a single miss")
    for key in ("hits", "misses", "evictions"):
        counter = f"hca.reg_cache.{key}"
        if counter in counters and counters[counter] != reg.get(key, 0):
            problem(path, f"reg_cache.{key} = {reg.get(key)!r} but counter "
                          f"{counter} says {counters[counter]}")


MIGRATION_POLICIES = ("off", "defrag", "evacuate", "colocate")


def check_migration(path, mig):
    """v6 migration section: counters form a funnel (executed moves are the
    accepted proposals that reached their epoch), one record per executed
    move, and each record describes a real container move — a positive
    quiesce round, resume at or after the quiesce, non-negative pause and
    pin-down invalidation, and a pause consistent with the headline total."""
    if mig.get("policy") not in MIGRATION_POLICIES:
        problem(path, f"migration.policy {mig.get('policy')!r} not in "
                      f"{MIGRATION_POLICIES}")
    proposed = mig.get("proposed", 0)
    rejected = mig.get("rejected", 0)
    executed = mig.get("executed", 0)
    for key in ("proposed", "rejected", "executed"):
        if mig.get(key, -1) < 0:
            problem(path, f"migration.{key} is negative")
    if rejected + executed > proposed:
        problem(path, f"migration: rejected {rejected} + executed {executed} "
                      f"exceed proposed {proposed}")
    records = mig.get("records", [])
    if len(records) != executed:
        problem(path, f"migration.executed = {executed} but {len(records)} "
                      f"records listed")
    for key in ("total_pause_us", "predicted_win_us", "predicted_cost_us"):
        if mig.get(key, -1) < 0:
            problem(path, f"migration.{key} is negative")
    pause_total = 0.0
    for i, rec in enumerate(records):
        move = rec.get("move", {})
        if not move.get("ranks"):
            problem(path, f"migration record {i}: empty rank set")
        if move.get("dst_phys_host", -1) < 0:
            problem(path, f"migration record {i}: no destination host")
        if rec.get("quiesce_round", -1) < 1:
            problem(path, f"migration record {i}: quiesce_round "
                          f"{rec.get('quiesce_round')!r} must be >= 1 (ranks "
                          f"drain at a completed round boundary)")
        if rec.get("resume_at_us", -1) < rec.get("quiesce_at_us", 0):
            problem(path, f"migration record {i}: resumed before the quiesce")
        for key in ("snapshot_bytes", "drained_msgs", "pause_us",
                    "pairs_to_local", "pairs_to_remote",
                    "invalidated_reg_entries", "invalidated_reg_bytes"):
            if rec.get(key, -1) < 0:
                problem(path, f"migration record {i}: negative {key}")
        pause_total += max(rec.get("pause_us", 0), 0)
    total = mig.get("total_pause_us", 0)
    if records and abs(pause_total - total) > 1e-6 * max(total, 1.0):
        problem(path, f"migration: record pauses sum to {pause_total}, "
                      f"total_pause_us says {total}")


def check_recovery(path, recovery):
    """v2 single-report recovery section: committed checkpoint events must be
    monotone in both round and virtual time, and the headline count must
    match the event list."""
    events = recovery.get("events", [])
    if recovery.get("checkpoints", -1) != len(events):
        problem(path, f"recovery.checkpoints = {recovery.get('checkpoints')!r}"
                      f" but {len(events)} events listed")
    prev_round, prev_at = -1, -1.0
    for i, ev in enumerate(events):
        rnd, at = ev.get("round", -1), ev.get("at_us", -1)
        if rnd <= prev_round:
            problem(path, f"recovery event {i}: round {rnd} not strictly "
                          f"after round {prev_round}")
        if at <= prev_at:
            problem(path, f"recovery event {i}: at_us {at} not strictly "
                          f"after {prev_at} (checkpoints must be monotone in "
                          f"virtual time)")
        if ev.get("bytes", -1) < 0:
            problem(path, f"recovery event {i}: negative bytes")
        prev_round, prev_at = rnd, at
    if not recovery.get("restored", False):
        if recovery.get("restore_round", 0) != 0:
            problem(path, "recovery.restore_round set without restored=true")


def check_schedule(path, doc):
    cluster = doc.get("cluster", {})
    check_fraction(path, "cluster.utilization", cluster.get("utilization", -1))
    if doc.get("version", 0) >= 6 and "migration" in doc:
        check_migration(path, doc["migration"])
    if doc.get("version", 0) >= 2:
        rec = cluster.get("recovery")
        if not isinstance(rec, dict):
            problem(path, "v2 schedule report missing cluster.recovery")
            rec = {}
        for key in RECOVERY_COUNTERS:
            if rec.get(key, 0) < 0:
                problem(path, f"cluster.recovery.{key} is negative")
        if rec.get("restarts_from_checkpoint", 0) > rec.get("crashes", 0):
            problem(path, "cluster.recovery: more restarts than crashes")
        if rec.get("requeues", 0) > rec.get("crashes", 0):
            problem(path, "cluster.recovery: more requeues than crashes")
    crashed_rows = 0
    for job in doc.get("jobs", []):
        name = job.get("name", "?")
        if job.get("start_us", 0) < job.get("submit_us", 0):
            problem(path, f"job {name}: started before submission")
        if job.get("end_us", 0) < job.get("start_us", 0):
            problem(path, f"job {name}: ended before it started")
        check_fraction(path, f"job {name} intra_host_share",
                       job.get("intra_host_share", -1))
        if doc.get("version", 0) >= 5 and "analysis" in job:
            check_analysis(path, job["analysis"], f"job {name} analysis")
        if doc.get("version", 0) < 2:
            continue
        if job.get("attempt", 0) < 0:
            problem(path, f"job {name}: negative attempt")
        outcome = job.get("outcome")
        if outcome not in JOB_OUTCOMES:
            problem(path, f"job {name}: outcome {outcome!r} not in "
                          f"{JOB_OUTCOMES}")
        crash = job.get("crash")
        if crash is not None:
            crashed_rows += 1
            if crash.get("rank", -1) < 0:
                problem(path, f"job {name}: crash row without a root-cause "
                              f"rank")
            if crash.get("at_us", -1) <= 0:
                problem(path, f"job {name}: crash at_us must be a positive "
                              f"virtual time")
    if doc.get("version", 0) >= 2:
        crashes = doc.get("cluster", {}).get("recovery", {}).get("crashes", 0)
        if crashed_rows > crashes:
            problem(path, f"{crashed_rows} crash rows but cluster.recovery "
                          f"counts only {crashes} crashes")


def check_trace(path):
    doc = load(path)
    if doc is None:
        return
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        problem(path, "missing traceEvents array")
        return

    last_ts = {}      # (pid, tid) -> last ts seen, file order
    open_spans = {}   # (pid, tid) -> stack of (ts, ts + dur, name)
    flow_starts = set()
    flow_finishes = set()
    saw_duration = False
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph not in ("X", "i", "M", "s", "f"):
            problem(path, f"event {i}: unexpected ph {ph!r}")
            continue
        if ph == "M":
            continue
        ts = ev.get("ts", -1)
        if not isinstance(ts, (int, float)) or ts < 0:
            problem(path, f"event {i}: ts = {ts!r} is not >= 0")
            continue
        if ph in ("s", "f"):
            fid = ev.get("id")
            if fid is None:
                problem(path, f"event {i}: flow event without an id")
                continue
            if ph == "s":
                if fid in flow_starts:
                    problem(path, f"event {i}: flow id {fid!r} started twice")
                flow_starts.add(fid)
            else:
                if ev.get("bp") != "e":
                    problem(path, f"event {i}: flow finish without bp='e' "
                                  f"(must bind to the enclosing slice)")
                if fid in flow_finishes:
                    problem(path, f"event {i}: flow id {fid!r} finished twice")
                flow_finishes.add(fid)
            continue
        if ph != "X":
            continue  # instants keep recorder order; only ts >= 0 is claimed
        track = (ev.get("pid", 0), ev.get("tid", 0))
        if ts < last_ts.get(track, 0):
            problem(path, f"event {i}: ts {ts} goes backwards on track {track}")
        last_ts[track] = ts
        saw_duration = True
        dur = ev.get("dur", -1)
        if not isinstance(dur, (int, float)) or dur < 0:
            problem(path, f"event {i}: dur = {dur!r} is not >= 0")
            continue
        if ev.get("pid", 0) >= CHANNEL_PID_BASE:
            continue  # channel tracks interleave transfers; no nesting claim
        # ts and dur are formatted with ~10 significant digits, so two spans
        # sharing a boundary can disagree in the last digit.
        eps = 1e-6 * max(ts + dur, 1.0)
        stack = open_spans.setdefault(track, [])
        while stack and stack[-1][1] <= ts + eps:
            stack.pop()
        if stack and stack[-1][1] < ts + dur - eps:
            problem(path, f"event {i} ({ev.get('name')!r}): [{ts}, {ts + dur}] "
                          f"overlaps open span {stack[-1][2]!r} "
                          f"[{stack[-1][0]}, {stack[-1][1]}] on track {track}")
        stack.append((ts, ts + dur, ev.get("name")))
    if not saw_duration:
        problem(path, "no duration ('X') events found")
    unmatched = flow_finishes - flow_starts
    if unmatched:
        problem(path, f"{len(unmatched)} flow finishes with no matching "
                      f"start (e.g. id {sorted(unmatched)[0]!r})")
    dangling = flow_starts - flow_finishes
    if dangling:
        problem(path, f"{len(dangling)} flow starts never finished "
                      f"(e.g. id {sorted(dangling)[0]!r})")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--report", help="run report JSON to validate")
    parser.add_argument("--trace", help="Perfetto trace JSON to validate")
    parser.add_argument("--expect-migration", action="store_true",
                        help="require the v6 migration section in --report")
    args = parser.parse_args()
    if not args.report and not args.trace:
        parser.error("nothing to check: pass --report and/or --trace")
    if args.report:
        check_report(args.report)
        if args.expect_migration:
            doc = load(args.report)
            if doc is not None and "migration" not in doc:
                problem(args.report, "migration section expected but absent")
    if args.trace:
        check_trace(args.trace)
    for p in problems:
        print(p)
    if not problems:
        checked = [p for p in (args.report, args.trace) if p]
        print(f"ok: {', '.join(checked)}")
    return len(problems)


if __name__ == "__main__":
    sys.exit(main())
