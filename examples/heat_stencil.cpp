// Heat-diffusion stencil: a classic domain-decomposition application on the
// public API. A 2-D plate is split into row slabs; every iteration exchanges
// ghost rows with the z-neighbours (non-blocking pt2pt) and checks global
// convergence with an allreduce. Demonstrates that an unmodified user
// application picks up the locality-aware speedup automatically.
//
//   $ ./heat_stencil [--grid=128] [--iters=200] [--containers=4]
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/options.hpp"
#include "mpi/runtime.hpp"

namespace {

using namespace cbmpi;

struct Outcome {
  Micros time = 0.0;
  double residual = 0.0;
  int iterations = 0;
};

Outcome simulate(int containers, fabric::LocalityPolicy policy, int grid,
                 int max_iters, int procs) {
  mpi::JobConfig config;
  config.deployment = containers == 0
                          ? container::DeploymentSpec::native_hosts(1, procs)
                          : container::DeploymentSpec::containers(1, containers, procs);
  config.policy = policy;

  Outcome outcome;
  mpi::run_job(config, [&](mpi::Process& p) {
    auto& world = p.world();
    const int nranks = world.size();
    const int rows = grid / nranks;  // assume divisible for the demo
    const auto stride = static_cast<std::size_t>(grid);

    // Local slab with two ghost rows; hot left wall as boundary condition.
    std::vector<double> plate((static_cast<std::size_t>(rows) + 2) * stride, 0.0);
    std::vector<double> next = plate;
    for (int i = 0; i < rows + 2; ++i)
      plate[static_cast<std::size_t>(i) * stride] = 100.0;

    const int up = world.rank() > 0 ? world.rank() - 1 : -1;
    const int down = world.rank() + 1 < nranks ? world.rank() + 1 : -1;

    world.barrier();
    p.sync_time();
    const Micros start = p.now();

    int iter = 0;
    double diff = 0.0;
    for (; iter < max_iters; ++iter) {
      // Ghost-row exchange.
      std::vector<mpi::Request> reqs;
      if (up >= 0) {
        reqs.push_back(world.irecv(std::span<double>(plate.data(), stride), up, 1));
        reqs.push_back(world.isend(
            std::span<const double>(plate.data() + stride, stride), up, 2));
      }
      if (down >= 0) {
        const std::size_t last = static_cast<std::size_t>(rows) * stride;
        reqs.push_back(world.irecv(
            std::span<double>(plate.data() + last + stride, stride), down, 2));
        reqs.push_back(world.isend(
            std::span<const double>(plate.data() + last, stride), down, 1));
      }
      world.wait_all(reqs);

      // Jacobi update.
      diff = 0.0;
      for (int i = 1; i <= rows; ++i) {
        for (int j = 1; j + 1 < grid; ++j) {
          const std::size_t c = static_cast<std::size_t>(i) * stride +
                                static_cast<std::size_t>(j);
          next[c] = 0.25 * (plate[c - 1] + plate[c + 1] + plate[c - stride] +
                            plate[c + stride]);
          diff = std::max(diff, std::abs(next[c] - plate[c]));
        }
      }
      plate.swap(next);
      p.compute(static_cast<double>(rows) * grid * 6.0);

      // Converged everywhere?
      diff = world.allreduce_value(diff, mpi::ReduceOp::Max);
      if (diff < 1e-4) break;
    }

    const Micros elapsed = world.allreduce_value(p.now() - start, mpi::ReduceOp::Max);
    if (p.rank() == 0) {
      outcome.time = elapsed;
      outcome.residual = diff;
      outcome.iterations = iter;
    }
  });
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const int grid = static_cast<int>(opts.get_int("grid", 128, "plate dimension"));
  const int iters = static_cast<int>(opts.get_int("iters", 200, "max iterations"));
  const int procs = static_cast<int>(opts.get_int("procs", 16, "MPI processes"));
  const int containers = static_cast<int>(
      opts.get_int("containers", 4, "containers per host (0 = native)"));
  if (opts.finish("2-D heat diffusion with ghost-row exchange")) return 0;

  std::printf("heat stencil: %dx%d plate, %d ranks, %d containers\n\n", grid, grid,
              procs, containers);

  const auto def =
      simulate(containers, fabric::LocalityPolicy::HostnameBased, grid, iters, procs);
  const auto opt =
      simulate(containers, fabric::LocalityPolicy::ContainerAware, grid, iters, procs);
  const auto native =
      simulate(0, fabric::LocalityPolicy::HostnameBased, grid, iters, procs);

  std::printf("default   : %8.2f ms  (%d iterations, residual %.2e)\n",
              to_millis(def.time), def.iterations, def.residual);
  std::printf("proposed  : %8.2f ms  (identical numerics, locality-aware channels)\n",
              to_millis(opt.time));
  std::printf("native    : %8.2f ms\n", to_millis(native.time));
  std::printf("\nproposed vs default: %.1f%% faster; vs native: %.1f%% overhead\n",
              (def.time - opt.time) / def.time * 100.0,
              (opt.time - native.time) / native.time * 100.0);
  return 0;
}
