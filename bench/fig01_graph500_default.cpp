// Figure 1: Graph 500 BFS execution time with the DEFAULT MPI library under
// different container deployment scenarios (Native / 1 / 2 / 4 containers on
// one host, 16 processes, scale 20, edgefactor 16 in the paper — scale is
// reduced by default so the bench runs in seconds; raise with --scale).
//
// Expected shape: Native ≈ 1-Container, then BFS time grows markedly at 2
// and again at 4 containers.
#include "bench_util.hpp"

#include "apps/graph500/bfs.hpp"

using namespace cbmpi;
using namespace cbmpi::bench;

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const int scale = static_cast<int>(opts.get_int("scale", 13, "Graph500 scale (paper: 20)"));
  const int edgefactor = static_cast<int>(opts.get_int("edgefactor", 16, "edges per vertex"));
  const int procs = static_cast<int>(opts.get_int("procs", 16, "MPI processes (paper: 16)"));
  const int nbfs = static_cast<int>(opts.get_int("nbfs", 4, "BFS roots averaged"));
  if (opts.finish("Figure 1: Graph500 BFS time, default MPI, vs container count"))
    return 0;

  print_banner("Figure 1", "Graph 500 BFS, default MPI library",
               "BFS time flat from native to 1 container, rising sharply at 2 "
               "and 4 containers per host");

  const apps::graph500::EdgeListParams params{scale, edgefactor, 1};

  auto bfs_time = [&](int containers) {
    mpi::JobConfig config;
    config.deployment = containers == 0
                            ? container::DeploymentSpec::native_hosts(1, procs)
                            : container::DeploymentSpec::containers(1, containers, procs);
    config.policy = fabric::LocalityPolicy::HostnameBased;
    Micros total = 0.0;
    mpi::run_job(config, [&](mpi::Process& p) {
      const auto graph = apps::graph500::build_graph(p, params);
      const auto roots = apps::graph500::choose_roots(params, nbfs);
      Micros sum = 0.0;
      for (const auto root : roots) sum += apps::graph500::run_bfs(p, graph, root).time;
      if (p.rank() == 0) total = sum / nbfs;
    });
    return total;
  };

  Table table({"scenario", "BFS time (ms)", "vs native"});
  const Micros native = bfs_time(0);
  std::vector<std::pair<std::string, Micros>> rows{{"Native", native}};
  for (int containers : {1, 2, 4})
    rows.emplace_back(std::to_string(containers) + "-Container" +
                          (containers > 1 ? "s" : ""),
                      bfs_time(containers));
  for (const auto& [label, time] : rows)
    table.add_row({label, Table::num(to_millis(time), 3),
                   Table::num(time / native, 2) + "x"});
  table.print(std::cout);

  const Micros one = rows[1].second, two = rows[2].second, four = rows[3].second;
  print_shape_check(one < native * 1.15, "1-container within 15% of native");
  print_shape_check(two > one * 1.3, "2-containers markedly slower than 1");
  print_shape_check(four > two, "4-containers slower than 2");
  return 0;
}
