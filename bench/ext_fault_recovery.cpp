// Extension experiment: job-level fault recovery — crash rate x checkpoint
// interval.
//
// A seeded mix of recoverable jobs (ring / cg / bfs bodies) runs on a small
// virtual cluster while crash faults kill attempts at deterministic virtual
// times. The scheduler requeues crashed jobs with exponential backoff; with
// coordinated checkpointing on, retries resume from the last committed
// snapshot instead of round 0, so the cluster wastes less virtual work and
// pushes more jobs through the same retry budget. A second section makes one
// physical host deterministically flaky (host-crash faults keyed to the
// cluster seed) and shows the blacklist policy routing placements around it.
// Everything — including the v2 run report — must be byte-identical across
// reruns with the same seed.
#include "bench_util.hpp"

#include "common/rng.hpp"
#include "obs/report.hpp"
#include "sched/scheduler.hpp"

using namespace cbmpi;
using namespace cbmpi::bench;

namespace {

/// Seeded mix of recoverable jobs with staggered arrivals. All three bodies
/// implement the save/restore hooks, so every retry can resume.
std::vector<sched::JobSpec> make_job_mix(int jobs, std::uint64_t seed,
                                         double crash_prob) {
  static const char* kBodies[] = {"ring", "cg", "bfs"};
  Xoshiro256 rng(mix64(seed ^ mix64(std::uint64_t{0xfa017})));
  std::vector<sched::JobSpec> mix;
  Micros t = 0.0;
  for (int i = 0; i < jobs; ++i) {
    sched::JobSpec job;
    job.body = kBodies[static_cast<std::size_t>(i) % std::size(kBodies)];
    job.ranks = 4 + 2 * static_cast<int>(rng.below(2));  // 4 or 6
    job.ranks_per_container = 2;
    job.params.rounds = 8 + static_cast<int>(rng.below(4));
    job.submit_time = t;
    job.faults.rank_crash_prob = crash_prob;
    job.faults.crash_horizon = 30.0;
    t += 3.0 + 2.0 * static_cast<double>(rng.below(3));
    mix.push_back(job);
  }
  return mix;
}

sched::SchedulerConfig cluster_of(int hosts, std::uint64_t seed,
                                  Micros checkpoint_interval) {
  sched::SchedulerConfig config;
  config.cluster_hosts = hosts;
  config.host_shape = topo::HostShape{2, 4, true};  // 8 cores per host
  config.policy = sched::PlacementPolicy::LocalityAware;
  config.seed = seed;
  config.max_restarts = 10;
  config.requeue_backoff = 25.0;
  config.blacklist_threshold = 0;  // section 2 turns this on
  config.checkpoint_interval = checkpoint_interval;
  return config;
}

sched::ClusterMetrics run_cell(int hosts, int jobs, std::uint64_t seed,
                               double crash_prob, Micros interval) {
  sched::Scheduler scheduler(cluster_of(hosts, seed, interval));
  for (auto& job : make_job_mix(jobs, seed, crash_prob))
    scheduler.submit(std::move(job));
  scheduler.run();
  return scheduler.metrics();
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const int hosts = static_cast<int>(opts.get_int("hosts", 2, "cluster hosts"));
  const int jobs = static_cast<int>(opts.get_int("jobs", 6, "jobs in the mix"));
  const std::uint64_t seed = declare_seed(opts);
  const std::string json_path = declare_json(opts);
  if (opts.finish("Extension: crash recovery — checkpoint interval sweep")) return 0;

  print_banner("Extension", "crash faults x coordinated checkpoint/restart",
               "coordinated checkpointing turns a crash from 'rerun from "
               "scratch' into 'resume from the last snapshot': less virtual "
               "work lost, more jobs completed inside the same retry budget");

  const std::vector<double> crash_probs = {0.2, 0.4, 0.6};
  const std::vector<Micros> intervals = {0.0, 5.0, 15.0};
  obs::JsonWriter json;
  json.begin_object();
  json.field("bench", "ext_fault_recovery");
  json.field("config", std::to_string(hosts) + " hosts x 8 cores, " +
                           std::to_string(jobs) + " jobs");
  json.field("seed", seed);
  json.key("rows").begin_array();

  Table table({"crash prob", "ckpt (us)", "crashes", "requeues", "resumed",
               "failed", "lost (us)", "completed (us)", "makespan (ms)"});
  // completed/lost virtual work per sweep cell, indexed [prob][interval]
  std::vector<std::vector<sched::ClusterMetrics>> cells;
  for (const double prob : crash_probs) {
    cells.emplace_back();
    for (const Micros interval : intervals) {
      const auto m = run_cell(hosts, jobs, seed, prob, interval);
      cells.back().push_back(m);
      table.add_row({Table::num(prob, 1), Table::num(interval, 0),
                     std::to_string(m.crashes), std::to_string(m.requeues),
                     std::to_string(m.restarts_from_checkpoint),
                     std::to_string(m.jobs_failed),
                     Table::num(m.lost_work_us, 1),
                     Table::num(m.completed_work_us, 1),
                     Table::num(to_millis(m.makespan), 3)});
      json.begin_object();
      // (label, bytes, latency_us) key the row for tools/check_regress.py;
      // the sweep's headline latency is the cell's makespan.
      std::string label = "p";
      label += Table::num(prob, 1);
      label += "/i";
      label += Table::num(interval, 0);
      json.field("label", label);
      json.field("bytes", std::uint64_t{0});
      json.field("latency_us", m.makespan);
      json.field("crash_prob", prob);
      json.field("checkpoint_interval_us", interval);
      json.field("crashes", m.crashes);
      json.field("requeues", m.requeues);
      json.field("restarts_from_checkpoint", m.restarts_from_checkpoint);
      json.field("jobs_failed", m.jobs_failed);
      json.field("lost_work_us", m.lost_work_us);
      json.field("completed_work_us", m.completed_work_us);
      json.field("makespan_us", m.makespan);
      json.end_object();
    }
  }
  json.end_array();
  json.end_object();
  table.print(std::cout);

  // Highest crash rate: checkpointing must bank strictly more completed
  // virtual work than interval = 0 (jobs that would exhaust the retry budget
  // from scratch finish when each retry resumes partway).
  const auto& hot = cells.back();
  bool more_work = true, less_lost = true;
  const bool crashes_happened = hot[0].crashes > 0;
  for (std::size_t i = 1; i < intervals.size(); ++i) {
    if (hot[i].completed_work_us <= hot[0].completed_work_us) more_work = false;
    if (hot[i].restarts_from_checkpoint == 0) more_work = false;
    if (hot[i].lost_work_us >= hot[0].lost_work_us) less_lost = false;
  }
  print_shape_check(crashes_happened, "crash faults actually fired");
  print_shape_check(more_work,
                    "checkpointing completes strictly more virtual work than "
                    "interval=0 under heavy crashes (and retries resume)");
  print_shape_check(less_lost,
                    "checkpointing loses strictly less virtual work to "
                    "crashes than interval=0");

  // --- host blacklisting ----------------------------------------------------
  std::printf("\n--- flaky-host blacklisting ---\n");
  auto config = cluster_of(hosts + 1, seed, 5.0);
  config.blacklist_threshold = 2;
  sched::Scheduler flaky(config);
  for (auto& job : make_job_mix(3 * jobs, seed, 0.0)) {
    // Host-crash eligibility hashes from the *cluster* seed, so the same
    // physical host is flaky for every job and the per-host crash count can
    // actually reach the threshold.
    job.faults.host_crash_prob = 0.6;
    job.faults.crash_horizon = 30.0;
    flaky.submit(std::move(job));
  }
  flaky.run();
  const auto& events = flaky.blacklist_events();
  std::printf("crashes %d, blacklisted hosts %d\n", flaky.metrics().crashes,
              flaky.metrics().blacklisted_hosts);
  bool no_placements_after = !events.empty();
  for (const auto& event : events) {
    std::printf("host %d blacklisted at t=%.2f us after %d crashes\n",
                event.host, event.at, event.crashes);
    for (const auto& record : flaky.jobs())
      if (record.start_time >= event.at)
        for (const auto host : record.hosts)
          if (host == event.host) no_placements_after = false;
  }
  print_shape_check(!events.empty(),
                    "a flaky host crossed the blacklist threshold");
  print_shape_check(no_placements_after,
                    "blacklisted hosts receive no further placements");

  // --- determinism, including the v2 run report -----------------------------
  const auto report_once = [&] {
    sched::Scheduler scheduler(cluster_of(hosts, seed, 5.0));
    for (auto& job : make_job_mix(jobs, seed, 0.5))
      scheduler.submit(std::move(job));
    scheduler.run();
    obs::ReportContext ctx;
    ctx.app = "ext_fault_recovery";
    ctx.deployment = std::to_string(hosts) + "x2x4";
    ctx.policy = "locality-aware";
    ctx.seed = seed;
    ctx.cluster = &scheduler.metrics();
    return obs::schedule_report_json(ctx, scheduler);
  };
  const std::string report = report_once();
  print_shape_check(report == report_once(),
                    "crash-heavy schedule + v2 run report byte-identical "
                    "across reruns");

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    out << json.str() << "\n";
    std::printf("results written to %s\n", json_path.c_str());
  }
  return 0;
}
