#include "sched/cluster_state.hpp"

#include "common/error.hpp"

namespace cbmpi::sched {

ClusterState::ClusterState(const topo::Cluster& cluster) {
  hosts_.reserve(static_cast<std::size_t>(cluster.num_hosts()));
  for (const auto& host : cluster.hosts()) {
    HostCores cores;
    cores.owner.assign(static_cast<std::size_t>(host.shape().total_cores()), -1);
    cores.free = host.shape().total_cores();
    total_cores_ += cores.free;
    hosts_.push_back(std::move(cores));
  }
}

int ClusterState::cores_per_host(topo::HostId host) const {
  CBMPI_REQUIRE(host >= 0 && host < num_hosts(), "no host ", host);
  return static_cast<int>(hosts_[static_cast<std::size_t>(host)].owner.size());
}

int ClusterState::free_count(topo::HostId host) const {
  CBMPI_REQUIRE(host >= 0 && host < num_hosts(), "no host ", host);
  const auto& cores = hosts_[static_cast<std::size_t>(host)];
  return cores.blacklisted ? 0 : cores.free;
}

int ClusterState::total_free() const {
  int total = 0;
  for (const auto& host : hosts_)
    if (!host.blacklisted) total += host.free;
  return total;
}

std::vector<int> ClusterState::free_cores(topo::HostId host) const {
  CBMPI_REQUIRE(host >= 0 && host < num_hosts(), "no host ", host);
  const auto& cores = hosts_[static_cast<std::size_t>(host)];
  if (cores.blacklisted) return {};
  std::vector<int> free;
  for (std::size_t c = 0; c < cores.owner.size(); ++c)
    if (cores.owner[c] < 0) free.push_back(static_cast<int>(c));
  return free;
}

void ClusterState::blacklist(topo::HostId host) {
  CBMPI_REQUIRE(host >= 0 && host < num_hosts(), "no host ", host);
  hosts_[static_cast<std::size_t>(host)].blacklisted = true;
}

bool ClusterState::is_blacklisted(topo::HostId host) const {
  CBMPI_REQUIRE(host >= 0 && host < num_hosts(), "no host ", host);
  return hosts_[static_cast<std::size_t>(host)].blacklisted;
}

int ClusterState::blacklisted_hosts() const {
  int count = 0;
  for (const auto& host : hosts_)
    if (host.blacklisted) ++count;
  return count;
}

int ClusterState::placeable_cores() const {
  int total = 0;
  for (const auto& host : hosts_)
    if (!host.blacklisted) total += static_cast<int>(host.owner.size());
  return total;
}

std::vector<int> ClusterState::claim(topo::HostId host, int count, int job_id) {
  CBMPI_REQUIRE(host >= 0 && host < num_hosts(), "no host ", host);
  CBMPI_REQUIRE(count > 0, "claim needs a positive core count");
  CBMPI_REQUIRE(job_id >= 0, "claim needs a job id");
  auto& cores = hosts_[static_cast<std::size_t>(host)];
  CBMPI_REQUIRE(!cores.blacklisted, "job ", job_id,
                " placed on blacklisted host ", host);
  CBMPI_REQUIRE(count <= cores.free, "job ", job_id, " wants ", count,
                " cores on host ", host, ", only ", cores.free, " free");
  std::vector<int> claimed;
  claimed.reserve(static_cast<std::size_t>(count));
  for (std::size_t c = 0; c < cores.owner.size() && count > 0; ++c) {
    if (cores.owner[c] >= 0) continue;
    cores.owner[c] = job_id;
    --cores.free;
    --count;
    claimed.push_back(static_cast<int>(c));
  }
  return claimed;
}

void ClusterState::release(int job_id) {
  for (auto& cores : hosts_)
    for (auto& owner : cores.owner)
      if (owner == job_id) {
        owner = -1;
        ++cores.free;
      }
}

int ClusterState::owner(topo::HostId host, int core) const {
  CBMPI_REQUIRE(host >= 0 && host < num_hosts(), "no host ", host);
  const auto& owners = hosts_[static_cast<std::size_t>(host)].owner;
  CBMPI_REQUIRE(core >= 0 && core < static_cast<int>(owners.size()), "host ",
                host, " has no core ", core);
  return owners[static_cast<std::size_t>(core)];
}

}  // namespace cbmpi::sched
