file(REMOVE_RECURSE
  "CMakeFiles/topo_container_test.dir/topo_container_test.cpp.o"
  "CMakeFiles/topo_container_test.dir/topo_container_test.cpp.o.d"
  "topo_container_test"
  "topo_container_test.pdb"
  "topo_container_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_container_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
