// Minimal CLI option parser for bench/example binaries.
//
// Accepts "--key=value", "--key value" and boolean "--flag" forms. Unknown
// options raise an error listing what is accepted, so every bench documents
// itself through --help.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cbmpi {

class Options {
 public:
  Options(int argc, const char* const* argv);

  /// Declares an option with a default; returns the parsed value.
  std::string get(const std::string& key, const std::string& def, const std::string& help);
  std::int64_t get_int(const std::string& key, std::int64_t def, const std::string& help);
  double get_double(const std::string& key, double def, const std::string& help);
  bool get_flag(const std::string& key, const std::string& help);

  /// Call after all get*() declarations: handles --help and unknown options.
  /// Returns true if the program should exit (help was printed).
  bool finish(const std::string& program_description);

 private:
  struct Declared {
    std::string key;
    std::string def;
    std::string help;
  };

  std::map<std::string, std::string> given_;
  std::vector<Declared> declared_;
  bool help_requested_ = false;
};

}  // namespace cbmpi
