# Empty compiler generated dependencies file for container_scaling.
# This may be replaced when dependencies are built.
