#include "obs/analysis/analysis.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

#include "common/table.hpp"

namespace cbmpi::obs::analysis {

namespace {

// Comparisons between virtual times that should be equal but passed through
// independent floating-point paths. Smallest modeled cost is ~0.08 us, so a
// much finer tolerance cannot misclassify.
constexpr Micros kEps = 1e-6;

bool is_transfer(const Span& s) {
  return s.cat == SpanCat::Proto && (s.name == "eager" || s.name == "rndv");
}

Micros overlap(const Span& s, Micros lo, Micros hi) {
  return std::max(0.0, std::min(s.end, hi) - std::max(s.begin, lo));
}

/// Everything analyze() indexes out of the sorted span list.
struct Indexes {
  /// Outermost Mpi/Compute/Fault spans per rank, ascending begin.
  std::vector<std::vector<const Span*>> tracks;
  /// Fault "hca-retry" spans nested inside an Mpi span, per rank.
  std::vector<std::vector<const Span*>> retries;
  /// Completed transfers received by each rank, ascending end.
  std::vector<std::vector<const Span*>> recvs;
  /// Rendezvous transfers *sent* by each rank (span.peer), ascending sent_at.
  std::vector<std::vector<const Span*>> rndv_sends;
};

Indexes build_indexes(std::span<const Span> sorted, int nranks) {
  Indexes ix;
  const auto n = static_cast<std::size_t>(nranks);
  ix.tracks.resize(n);
  ix.retries.resize(n);
  ix.recvs.resize(n);
  ix.rndv_sends.resize(n);

  for (const auto& span : sorted) {
    const bool rank_ok = span.rank >= 0 && span.rank < nranks;
    if (is_transfer(span) && rank_ok) {
      ix.recvs[static_cast<std::size_t>(span.rank)].push_back(&span);
      if (span.name == "rndv" && span.peer >= 0 && span.peer < nranks)
        ix.rndv_sends[static_cast<std::size_t>(span.peer)].push_back(&span);
      continue;
    }
    if (!rank_ok) continue;
    if (span.cat != SpanCat::Mpi && span.cat != SpanCat::Compute &&
        span.cat != SpanCat::Fault)
      continue;  // Coll spans nest inside Mpi; used for imbalance only
    auto& track = ix.tracks[static_cast<std::size_t>(span.rank)];
    if (track.empty() || span.begin >= track.back()->end - kEps) {
      track.push_back(&span);
    } else if (span.cat == SpanCat::Fault && span.name == "hca-retry") {
      // Retry backoff charged inside the enclosing MPI call; kept aside so
      // the walk can carve it out of that call's blame.
      ix.retries[static_cast<std::size_t>(span.rank)].push_back(&span);
    }
  }
  // Canonical sort is (begin, end desc, ...); the walk wants recvs by
  // completion time and sends by hand-off time.
  for (auto& v : ix.recvs)
    std::stable_sort(v.begin(), v.end(), [](const Span* a, const Span* b) {
      return a->end < b->end;
    });
  for (auto& v : ix.rndv_sends)
    std::stable_sort(v.begin(), v.end(), [](const Span* a, const Span* b) {
      return a->sent_at < b->sent_at;
    });
  return ix;
}

void classify_wait_states(std::span<const Span> sorted, Analysis& a) {
  const int nranks = a.nranks;
  for (const auto& span : sorted) {
    if (!is_transfer(span) || span.rank < 0 || span.rank >= nranks) continue;
    auto& w = a.wait_states[static_cast<std::size_t>(span.rank)];
    w.contention += std::max(0.0, span.stall);
    w.registration += std::max(0.0, span.reg_stall);
    if (span.posted_at < 0.0 || span.avail_at < 0.0) continue;
    if (span.name == "rndv") {
      // Span begin is the RTS time; posted-vs-RTS order decides which side
      // waited through the handshake.
      if (span.avail_at > span.posted_at + kEps)
        w.late_sender += span.avail_at - span.posted_at;
      else if (span.posted_at > span.avail_at + kEps && span.peer >= 0 &&
               span.peer < nranks)
        a.wait_states[static_cast<std::size_t>(span.peer)].late_receiver +=
            span.posted_at - span.avail_at;
    } else {
      // Eager: the receiver only waited on the sender when availability was
      // the binding term of begin = max(posted, avail, busy).
      if (span.begin <= span.avail_at + kEps &&
          span.avail_at > span.posted_at + kEps)
        w.late_sender += span.avail_at - span.posted_at;
    }
  }

  // Collective imbalance: the i-th Coll span named X on each rank belongs to
  // the same logical collective call; the slowest rank sets the pace and
  // every other rank's (max - own) is imbalance wait.
  std::map<std::pair<std::string, int>, int> occurrence;  // (name, rank) -> i
  std::map<std::pair<std::string, int>,
           std::vector<std::pair<int, Micros>>>
      groups;  // (name, i) -> [(rank, duration)]
  for (const auto& span : sorted) {
    if (span.cat != SpanCat::Coll || span.rank < 0 || span.rank >= nranks)
      continue;
    const int i = occurrence[{span.name, span.rank}]++;
    groups[{span.name, i}].emplace_back(span.rank, span.duration());
  }
  std::map<std::string, CollGroupStat> by_name;
  for (const auto& [key, members] : groups) {
    Micros max_dur = 0.0, sum = 0.0;
    for (const auto& [rank, dur] : members) {
      max_dur = std::max(max_dur, dur);
      sum += dur;
    }
    const Micros avg = sum / static_cast<double>(members.size());
    for (const auto& [rank, dur] : members)
      a.wait_states[static_cast<std::size_t>(rank)].coll_imbalance +=
          max_dur - dur;
    auto& stat = by_name[key.first];
    stat.name = key.first;
    stat.calls += 1;
    stat.imbalance += max_dur - avg;
  }
  for (auto& [name, stat] : by_name) a.coll_groups.push_back(std::move(stat));
}

/// Backward critical-path walk. Starts at the last rank to finish and steps
/// to strictly earlier virtual times, hopping send->recv edges; the emitted
/// segments (reversed at the end) tile [0, critical_path] exactly, so the
/// blame totals sum to the path length.
class Walker {
 public:
  Walker(const Indexes& ix, Analysis& a) : ix_(ix), a_(&a) {}

  void run(int start_rank, Micros end_time) {
    int rank = start_rank;
    Micros t = end_time;
    // Every step emits a nonzero segment ending at t and lowers t to its
    // begin, so this is a pure safety net against float pathologies.
    const std::size_t guard = 16 + 4 * total_spans();
    for (std::size_t step = 0; t > kEps && step < guard; ++step)
      std::tie(rank, t) = advance(rank, t);
    if (t > kEps) emit(rank, 0.0, t, Blame::Idle, "idle");
    std::reverse(rev_.begin(), rev_.end());
    a_->segments = std::move(rev_);
  }

 private:
  std::size_t total_spans() const {
    std::size_t n = 0;
    for (const auto& v : ix_.tracks) n += v.size();
    for (const auto& v : ix_.recvs) n += v.size();
    return n;
  }

  void add_blame(Blame b, Micros amount) {
    if (amount > 0.0) a_->blame[static_cast<std::size_t>(b)] += amount;
  }

  /// Records [lo, t] and charges the whole interval to one category.
  void emit(int rank, Micros lo, Micros hi, Blame b, std::string name) {
    lo = std::max(lo, 0.0);
    if (hi - lo <= 0.0) return;
    add_blame(b, hi - lo);
    rev_.push_back({rank, lo, hi, b, std::move(name)});
  }

  /// Records a transfer interval, carving contention and unhidden
  /// registration out of the protocol's blame.
  void emit_transfer(int rank, Micros lo, Micros hi, const Span& p) {
    lo = std::max(lo, 0.0);
    const Micros len = hi - lo;
    if (len <= 0.0) return;
    const Micros cont = std::min(std::max(p.stall, 0.0), len);
    const Micros reg = std::min(std::max(p.reg_stall, 0.0), len - cont);
    add_blame(Blame::Contention, cont);
    add_blame(Blame::Registration, reg);
    const Blame proto = p.name == "rndv" ? Blame::Rndv : Blame::Eager;
    add_blame(proto, len - cont - reg);
    std::string name = p.name;
    if (!p.note.empty()) name += " " + p.note;
    rev_.push_back({rank, lo, hi, proto, std::move(name)});
  }

  /// Records an MPI-call interval with no transfer evidence, carving nested
  /// retry backoff out of the call's blame.
  void emit_mpi(int rank, Micros lo, Micros hi, const Span& s) {
    lo = std::max(lo, 0.0);
    const Micros len = hi - lo;
    if (len <= 0.0) return;
    Micros retry = 0.0;
    for (const Span* f : ix_.retries[static_cast<std::size_t>(rank)])
      retry += overlap(*f, lo, hi);
    retry = std::min(retry, len);
    add_blame(Blame::Retry, retry);
    add_blame(Blame::MpiOther, len - retry);
    rev_.push_back({rank, lo, hi, Blame::MpiOther, s.name});
  }

  /// Last track span on `rank` beginning strictly before `t`.
  const Span* covering(int rank, Micros t) const {
    const auto& track = ix_.tracks[static_cast<std::size_t>(rank)];
    auto it = std::upper_bound(track.begin(), track.end(), t - kEps,
                               [](Micros v, const Span* s) {
                                 return v < s->begin;
                               });
    return it == track.begin() ? nullptr : *(it - 1);
  }

  /// Latest transfer received by `rank` that completed in (floor, t].
  const Span* best_recv(int rank, Micros t, Micros floor) const {
    const auto& recvs = ix_.recvs[static_cast<std::size_t>(rank)];
    auto it = std::upper_bound(recvs.begin(), recvs.end(), t + kEps,
                               [](Micros v, const Span* s) {
                                 return v < s->end;
                               });
    while (it != recvs.begin()) {
      const Span* p = *(--it);
      if (p->end <= floor + kEps) return nullptr;
      if (p->begin < t) return p;
    }
    return nullptr;
  }

  /// Latest rendezvous sent by `rank` whose RTS was posted in [floor, t) and
  /// whose handshake was still in flight at t (the sender blocked through t).
  const Span* best_rndv_send(int rank, Micros t, Micros floor) const {
    const auto& sends = ix_.rndv_sends[static_cast<std::size_t>(rank)];
    for (auto it = sends.rbegin(); it != sends.rend(); ++it) {
      const Span* q = *it;
      if (q->sent_at >= t) continue;
      if (q->sent_at < floor - kEps) break;
      if (q->end >= t - kEps) return q;
    }
    return nullptr;
  }

  /// One backward step from (rank, t): emits exactly one segment ending at t
  /// and returns the predecessor point in virtual time.
  std::pair<int, Micros> advance(int rank, Micros t) {
    const Span* s = covering(rank, t);
    if (s == nullptr || s->end < t - kEps) {
      // Nothing on this rank's timeline covers t: idle gap back to the
      // previous span's end (or to time zero).
      const Micros lo = s == nullptr ? 0.0 : s->end;
      emit(rank, lo, t, Blame::Idle, "idle");
      return {rank, std::max(lo, 0.0)};
    }
    switch (s->cat) {
      case SpanCat::Compute:
        emit(rank, s->begin, t, Blame::Compute, s->name);
        return {rank, std::max(s->begin, 0.0)};
      case SpanCat::Fault: {
        const Blame b =
            s->name == "hca-retry" ? Blame::Retry : Blame::Recovery;
        emit(rank, s->begin, t, b, s->name);
        return {rank, std::max(s->begin, 0.0)};
      }
      default:
        break;  // Mpi: transfer evidence decides below
    }

    const Span* r = best_recv(rank, t, s->begin);
    const Span* q = best_rndv_send(rank, t, s->begin);
    // Prefer whichever dependency resolved later: a blocked sender resolves
    // at t itself, a received transfer at r->end <= t.
    if (q != nullptr && (r == nullptr || t >= r->end - kEps)) {
      // Sender side of a rendezvous: blocked from its RTS until the
      // receiver finished the pull; resume the walk on the receiver at the
      // moment it posted the matching recv.
      Micros jump = std::max(q->sent_at, s->begin);
      if (q->posted_at >= 0.0) jump = std::min(jump, q->posted_at);
      std::string name = "rndv-wait";
      if (!q->note.empty()) name += " " + q->note;
      emit(rank, jump, t, Blame::Rndv, std::move(name));
      return {q->rank, std::max(jump, 0.0)};
    }
    if (r != nullptr) {
      const Micros lo = std::max(r->begin, s->begin);
      const bool sender_late =
          r->posted_at >= 0.0 && r->avail_at > r->posted_at + kEps &&
          (r->name == "rndv" || r->begin <= r->avail_at + kEps);
      if (sender_late && r->peer >= 0 && r->peer < a_->nranks &&
          r->peer != rank && r->sent_at >= 0.0) {
        // The sender was the bottleneck: extend the transfer segment down
        // to its hand-off time and continue on the sender's timeline.
        const Micros jump = std::min(r->sent_at, lo);
        emit_transfer(rank, jump, t, *r);
        return {r->peer, std::max(jump, 0.0)};
      }
      // Local constraint (posted late or receiver busy): keep walking this
      // rank's own timeline.
      emit_transfer(rank, lo, t, *r);
      return {rank, std::max(lo, 0.0)};
    }
    emit_mpi(rank, s->begin, t, *s);
    return {rank, std::max(s->begin, 0.0)};
  }

  const Indexes& ix_;
  Analysis* a_;
  std::vector<PathSegment> rev_;
};

}  // namespace

const char* to_string(Blame blame) {
  switch (blame) {
    case Blame::Compute: return "compute";
    case Blame::Eager: return "eager";
    case Blame::Rndv: return "rndv";
    case Blame::Registration: return "registration";
    case Blame::Contention: return "contention";
    case Blame::Retry: return "retry";
    case Blame::Recovery: return "recovery";
    case Blame::MpiOther: return "mpi-other";
    case Blame::Idle: return "idle";
  }
  return "?";
}

std::vector<PathSegment> Analysis::top_segments(std::size_t k) const {
  auto sorted = segments;
  std::sort(sorted.begin(), sorted.end(),
            [](const PathSegment& a, const PathSegment& b) {
              if (a.duration() != b.duration())
                return a.duration() > b.duration();
              if (a.begin != b.begin) return a.begin < b.begin;
              return a.rank < b.rank;
            });
  if (sorted.size() > k) sorted.resize(k);
  return sorted;
}

Analysis analyze(std::span<const Span> spans, int nranks,
                 std::span<const Micros> rank_times,
                 const AnalyzeOptions& options) {
  (void)options;
  Analysis a;
  a.nranks = std::max(nranks, 0);
  a.wait_states.resize(static_cast<std::size_t>(a.nranks));
  if (a.nranks == 0) return a;

  std::vector<Span> sorted(spans.begin(), spans.end());
  sort_spans(sorted);

  // The walk starts where the job ended: the last rank to finish (ties go
  // to the lowest rank for determinism).
  std::vector<Micros> ends(static_cast<std::size_t>(a.nranks), 0.0);
  if (!rank_times.empty()) {
    for (std::size_t r = 0; r < ends.size() && r < rank_times.size(); ++r)
      ends[r] = rank_times[r];
  } else {
    for (const auto& span : sorted)
      if (span.rank >= 0 && span.rank < a.nranks)
        ends[static_cast<std::size_t>(span.rank)] =
            std::max(ends[static_cast<std::size_t>(span.rank)], span.end);
  }
  std::size_t end_rank = 0;
  for (std::size_t r = 1; r < ends.size(); ++r)
    if (ends[r] > ends[end_rank]) end_rank = r;
  a.end_rank = static_cast<int>(end_rank);
  a.critical_path = ends[end_rank];

  classify_wait_states(sorted, a);

  const Indexes ix = build_indexes(sorted, a.nranks);
  Walker walker(ix, a);
  walker.run(a.end_rank, a.critical_path);
  return a;
}

void write_analysis(JsonWriter& w, const Analysis& a, std::size_t top_k) {
  w.begin_object();
  w.field("critical_path_us", a.critical_path);
  w.field("end_rank", a.end_rank);
  w.field("segments", static_cast<std::uint64_t>(a.segments.size()));
  w.key("blame").begin_array();
  for (std::size_t i = 0; i < kBlames; ++i) {
    const auto b = static_cast<Blame>(i);
    w.begin_object();
    w.field("category", to_string(b));
    w.field("time_us", a.blame[i]);
    w.field("fraction", a.blame_fraction(b));
    w.end_object();
  }
  w.end_array();
  w.key("top_segments").begin_array();
  for (const auto& seg : a.top_segments(top_k)) {
    w.begin_object();
    w.field("rank", seg.rank);
    w.field("category", to_string(seg.blame));
    w.field("name", seg.name);
    w.field("begin_us", seg.begin);
    w.field("end_us", seg.end);
    w.field("time_us", seg.duration());
    w.end_object();
  }
  w.end_array();
  w.key("wait_states").begin_array();
  for (std::size_t r = 0; r < a.wait_states.size(); ++r) {
    const auto& ws = a.wait_states[r];
    w.begin_object();
    w.field("rank", static_cast<std::int64_t>(r));
    w.field("late_sender_us", ws.late_sender);
    w.field("late_receiver_us", ws.late_receiver);
    w.field("coll_imbalance_us", ws.coll_imbalance);
    w.field("contention_us", ws.contention);
    w.field("registration_us", ws.registration);
    w.end_object();
  }
  w.end_array();
  w.key("coll_groups").begin_array();
  for (const auto& g : a.coll_groups) {
    w.begin_object();
    w.field("name", g.name);
    w.field("calls", g.calls);
    w.field("imbalance_us", g.imbalance);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string analysis_summary(const Analysis& a, std::size_t top_k) {
  std::ostringstream os;
  os << "critical path: " << format_double(a.critical_path)
     << " us, ending on rank " << a.end_rank << " ("
     << a.segments.size() << " segments)\n";

  Table blame({"category", "time (us)", "fraction"});
  for (std::size_t i = 0; i < kBlames; ++i) {
    const auto b = static_cast<Blame>(i);
    if (a.blame[i] <= 0.0) continue;
    blame.add_row({to_string(b), Table::num(a.blame[i], 2),
                   Table::num(a.blame_fraction(b), 3)});
  }
  blame.print(os);

  const auto top = a.top_segments(top_k);
  if (!top.empty()) {
    os << "top " << top.size() << " critical-path segments:\n";
    Table segs({"rank", "category", "name", "begin", "end", "us"});
    for (const auto& seg : top)
      segs.add_row({std::to_string(seg.rank), to_string(seg.blame), seg.name,
                    Table::num(seg.begin, 2), Table::num(seg.end, 2),
                    Table::num(seg.duration(), 2)});
    segs.print(os);
  }

  bool any_wait = false;
  for (const auto& ws : a.wait_states) any_wait = any_wait || ws.total() > 0.0;
  if (any_wait) {
    os << "wait states (us, whole run):\n";
    Table waits({"rank", "late-sender", "late-recv", "coll-imb", "contention",
                 "registration"});
    for (std::size_t r = 0; r < a.wait_states.size(); ++r) {
      const auto& ws = a.wait_states[r];
      waits.add_row({std::to_string(r), Table::num(ws.late_sender, 2),
                     Table::num(ws.late_receiver, 2),
                     Table::num(ws.coll_imbalance, 2),
                     Table::num(ws.contention, 2),
                     Table::num(ws.registration, 2)});
    }
    waits.print(os);
  }
  return os.str();
}

}  // namespace cbmpi::obs::analysis
