# Empty compiler generated dependencies file for fig09_pt2pt_one_sided.
# This may be replaced when dependencies are built.
