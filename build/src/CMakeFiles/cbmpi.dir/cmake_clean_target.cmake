file(REMOVE_RECURSE
  "libcbmpi.a"
)
