// Ablation: collective algorithm choices.
//
//   (a) two-level (leader-based) vs flat algorithms across containers
//   (b) binomial-tree vs van-de-Geijn (scatter + ring allgather) broadcast
//   (c) recursive-doubling vs Rabenseifner (reduce-scatter + allgather)
//       allreduce
//
// These are the design decisions DESIGN.md calls out; the bench shows each
// one earns its keep in its regime (hierarchy for multi-container hosts,
// bandwidth algorithms for large payloads) — mirroring how MVAPICH2 switches
// algorithms by message size.
#include "bench_util.hpp"

#include "apps/osu/microbench.hpp"

using namespace cbmpi;
using namespace cbmpi::bench;

namespace {

Micros collective_time(mpi::JobConfig config, apps::osu::Collective coll, Bytes size,
                       int iters) {
  apps::osu::PairOptions osu_opts;
  osu_opts.iterations = iters;
  osu_opts.warmup = 1;
  double value = 0.0;
  mpi::run_job(config, [&](mpi::Process& p) {
    const double v = apps::osu::collective_latency(p, coll, size, osu_opts);
    if (p.rank() == 0) value = v;
  });
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const int hosts = static_cast<int>(opts.get_int("hosts", 8, "cluster hosts"));
  const int iters = static_cast<int>(opts.get_int("iters", 3, "iterations"));
  if (opts.finish("Ablation: collective algorithm choices")) return 0;

  // ---- (a) two-level vs flat ------------------------------------------------
  // An honest nuance: with block-contiguous rank placement, flat recursive
  // doubling / ring algorithms are already locality-friendly (the low-order
  // exchange rounds stay intra-host), so composing the two-level local phase
  // from the same pt2pt primitives cannot beat them outright. Real MVAPICH2's
  // two-level gains come from dedicated shared-memory collective primitives
  // in the local phase. What this repo reproduces faithfully is the paper's
  // actual comparison — the locality *view* (Def vs Opt in Fig. 10), where
  // both modes run identical algorithms. This ablation documents that the
  // topology term is second-order next to the channel term.
  print_banner("Ablation (a)", "two-level vs flat collectives (locality view fixed)",
               "channel selection, not collective topology, carries the gains");
  {
    mpi::JobConfig base;
    base.deployment = container::DeploymentSpec::containers(hosts, 4, 8);
    base.policy = fabric::LocalityPolicy::ContainerAware;
    auto flat = base;
    flat.tuning.two_level_collectives = false;

    Table table({"collective @ 1K", "flat (us)", "two-level (us)", "delta"});
    double worst_ratio = 1.0;
    for (auto coll : {apps::osu::Collective::Bcast, apps::osu::Collective::Allreduce,
                      apps::osu::Collective::Allgather}) {
      const Micros flat_time = collective_time(flat, coll, 1_KiB, iters);
      const Micros two_level_time = collective_time(base, coll, 1_KiB, iters);
      worst_ratio = std::max(worst_ratio, two_level_time / flat_time);
      table.add_row({apps::osu::to_string(coll), Table::num(flat_time, 1),
                     Table::num(two_level_time, 1),
                     Table::num(percent_better(flat_time, two_level_time), 0) + "%"});
    }
    table.print(std::cout);
    // The channel term: the same collectives, Def vs Opt policy (two-level on).
    auto def = base;
    def.policy = fabric::LocalityPolicy::HostnameBased;
    const Micros def_ag =
        collective_time(def, apps::osu::Collective::Allgather, 1_KiB, iters);
    const Micros opt_ag =
        collective_time(base, apps::osu::Collective::Allgather, 1_KiB, iters);
    std::printf("channel term (allgather @1K, Def vs Opt, both two-level): "
                "%.1f vs %.1f us\n", def_ag, opt_ag);
    print_shape_check(opt_ag < def_ag * 0.8,
                      "locality view dominates (channel term large)");
    print_shape_check(worst_ratio < 2.0,
                      "topology term is second-order (within 2x either way)");
  }

  // ---- (b) bcast: binomial vs van de Geijn ----------------------------------
  std::printf("\n");
  print_banner("Ablation (b)", "broadcast algorithm vs payload size",
               "binomial wins small, scatter+allgather wins large");
  {
    mpi::JobConfig tree;
    tree.deployment = container::DeploymentSpec::native_hosts(hosts, 4);
    tree.tuning.bcast_large_threshold = 1_GiB;  // force binomial everywhere
    auto ring = tree;
    ring.tuning.bcast_large_threshold = 0;  // force van de Geijn everywhere

    Table table({"size", "binomial (us)", "scatter+allgather (us)", "winner"});
    bool small_tree = false, large_ring = false;
    for (const Bytes size : {1_KiB, 16_KiB, 128_KiB, 1_MiB}) {
      const Micros tree_time =
          collective_time(tree, apps::osu::Collective::Bcast, size, iters);
      const Micros ring_time =
          collective_time(ring, apps::osu::Collective::Bcast, size, iters);
      if (size == 1_KiB) small_tree = tree_time < ring_time;
      if (size == 1_MiB) large_ring = ring_time < tree_time;
      table.add_row({format_size(size), Table::num(tree_time, 1),
                     Table::num(ring_time, 1),
                     tree_time < ring_time ? "binomial" : "scatter+allgather"});
    }
    table.print(std::cout);
    print_shape_check(small_tree, "binomial wins at 1K");
    print_shape_check(large_ring, "scatter+allgather wins at 1M");
  }

  // ---- (c) allreduce: recursive doubling vs Rabenseifner ----------------------
  std::printf("\n");
  print_banner("Ablation (c)", "allreduce algorithm vs payload size",
               "recursive doubling wins small, Rabenseifner wins large");
  {
    mpi::JobConfig recdbl;
    recdbl.deployment = container::DeploymentSpec::native_hosts(hosts, 4);
    recdbl.tuning.allreduce_large_threshold = 1_GiB;
    auto raben = recdbl;
    raben.tuning.allreduce_large_threshold = 0;

    Table table({"size", "rec-doubling (us)", "Rabenseifner (us)", "winner"});
    bool small_recdbl = false, large_raben = false;
    for (const Bytes size : {1_KiB, 16_KiB, 128_KiB, 1_MiB}) {
      const Micros recdbl_time =
          collective_time(recdbl, apps::osu::Collective::Allreduce, size, iters);
      const Micros raben_time =
          collective_time(raben, apps::osu::Collective::Allreduce, size, iters);
      if (size == 1_KiB) small_recdbl = recdbl_time < raben_time;
      if (size == 1_MiB) large_raben = raben_time < recdbl_time;
      table.add_row({format_size(size), Table::num(recdbl_time, 1),
                     Table::num(raben_time, 1),
                     recdbl_time < raben_time ? "rec-doubling" : "Rabenseifner"});
    }
    table.print(std::cout);
    print_shape_check(small_recdbl, "recursive doubling wins at 1K");
    print_shape_check(large_raben, "Rabenseifner wins at 1M");
  }
  return 0;
}
