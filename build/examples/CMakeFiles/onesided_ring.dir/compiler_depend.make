# Empty compiler generated dependencies file for onesided_ring.
# This may be replaced when dependencies are built.
