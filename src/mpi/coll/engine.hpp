// The collective-algorithm engine: one per job, consulted by every
// communicator at every collective call site.
//
// The engine separates *what* a collective does (semantics, implemented as
// algorithm templates on Communicator) from *how* it executes (which
// algorithm runs for this message size / rank count / locality shape). It
// owns the job's TuningTable — shipped container defaults, merged with an
// optional `--tuning=<file>` table and CBMPI_*_ALGORITHM env pins — plus the
// channel-layer TuningParams whose thresholds drive the Auto heuristic, and
// the job's containers-per-host figure from the placement.
//
// `choose()` resolves a call site to a concrete algorithm:
//   1. table/env selection (TuningTable::select);
//   2. TwoLevel demoted to Auto when the caller has no usable locality
//      hierarchy (trivial groups, feature disabled, or a sub-phase);
//   3. Auto resolved through the same size/rank heuristics the collectives
//      hard-wired before the engine existed, so an empty table reproduces
//      the legacy behaviour bit-for-bit.
//
// The returned algorithm may still be *downgraded* at the dispatch site for
// datatype/shape reasons the engine cannot see (e.g. Rabenseifner needs a
// power-of-two list and an operation with a zero identity); dispatch records
// the algorithm that actually ran.
#pragma once

#include "common/units.hpp"
#include "fabric/tuning.hpp"
#include "mpi/coll/tuning_table.hpp"
#include "mpi/coll/types.hpp"

namespace cbmpi::coll {

class Engine {
 public:
  /// `cph` is the job's containers-per-host (max over hosts, >= 1), the
  /// locality-shape key of the tuning table.
  Engine(TuningTable table, fabric::TuningParams params, int cph)
      : table_(std::move(table)), params_(params), cph_(cph < 1 ? 1 : cph) {}

  /// Resolves the call site to a concrete algorithm (never Auto; TwoLevel
  /// only when `two_level_available`). `ranks` is the size of the rank list
  /// the collective runs over (sub-phases pass their sub-list size).
  Algo choose(Coll coll, Bytes bytes, int ranks, bool two_level_available) const;

  /// The Auto fallback alone — exposed so benches can display what an empty
  /// table would do.
  Algo heuristic(Coll coll, Bytes bytes, int ranks) const;

  const TuningTable& table() const { return table_; }
  int containers_per_host() const { return cph_; }

 private:
  TuningTable table_;
  fabric::TuningParams params_;
  int cph_;
};

}  // namespace cbmpi::coll
