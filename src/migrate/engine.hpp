// Live-migration engine: runs one job as two segments around a container
// move (DESIGN.md §17).
//
//   segment 1   the job under its original placement, with a quiesce
//               Coordinator installed; at the epoch's round boundary every
//               rank drains, snapshots (checkpoint machinery) and unwinds
//   transfer    the stop-and-copy residue of the image crosses the fabric
//               (src/net/ path latency + rate cap; flat HCA model without a
//               fabric) — the migration pause, charged to virtual time
//   segment 2   the same body resumed from the snapshot under the mutated
//               placement: locality re-detected, channels re-picked, fabric
//               routes and VF shares recomputed, and the moved ranks'
//               pin-down entries invalidated (cold re-registration, visible
//               in the registration blame) while every other rank's cache
//               arrives warm
//
// The two segments are stitched into one JobResult on a shared virtual
// timeline (segment 2 shifted by segment 1's end + the pause), so reports,
// spans and metrics read like a single job that paused and moved. Both
// segments are ordinary deterministic run_job calls, so the whole migration
// reruns bit-identically.
#pragma once

#include <functional>

#include "migrate/plan.hpp"
#include "mpi/runtime.hpp"

namespace cbmpi::migrate {

class Engine {
 public:
  /// The cost gate (DESIGN.md §17): pre-copy schedule, stop-and-copy pause,
  /// cold re-registration, and the predicted locality win over the traffic
  /// still to come. Pure function of its arguments.
  static CostEstimate estimate(const topo::MachineProfile& profile,
                               const fabric::TuningParams& tuning,
                               const CostModel& cost, Bytes image_bytes,
                               int moved_ranks, const TrafficForecast& forecast);

  /// Runs `body` under `config`, executing `plan`'s container move at the
  /// quiesce epoch. Requires a containerized (non-native) job whose body
  /// calls Process::checkpoint each round; a job that finishes before the
  /// epoch simply never migrates (reported as executed = 0).
  static mpi::JobResult run(const mpi::JobConfig& config,
                            const std::function<void(mpi::Process&)>& body,
                            const MigrationPlan& plan);
};

}  // namespace cbmpi::migrate
