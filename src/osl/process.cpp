#include "osl/process.hpp"

// Header-only today; anchor TU kept so the build stays uniform if SimProcess
// grows out-of-line members (e.g. per-process resource accounting).
namespace cbmpi::osl {
static_assert(sizeof(SimProcess) > 0);
}  // namespace cbmpi::osl
