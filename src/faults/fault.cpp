#include "faults/fault.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace cbmpi::faults {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::ShmSegmentFail: return "shm-segment-fail";
    case FaultKind::PrivateIpc: return "private-ipc-namespace";
    case FaultKind::CmaEperm: return "cma-eperm";
    case FaultKind::HcaTransient: return "hca-transient";
    case FaultKind::HcaLinkFlap: return "hca-link-flap";
    case FaultKind::RankCrash: return "rank-crash";
    case FaultKind::ContainerCrash: return "container-crash";
    case FaultKind::HostCrash: return "host-crash";
  }
  return "?";
}

const char* to_string(DegradationKind kind) {
  switch (kind) {
    case DegradationKind::HostnameLocalityFallback: return "hostname-locality-fallback";
    case DegradationKind::IsolatedIpcLocality: return "isolated-ipc-locality";
    case DegradationKind::CmaFallbackToShm: return "cma->shm";
    case DegradationKind::ShmFallbackToHca: return "shm->hca";
  }
  return "?";
}

std::string FaultReport::summary() const {
  std::array<std::uint64_t, kFaultKinds> fault_counts{};
  for (const auto& e : injected)
    ++fault_counts[static_cast<std::size_t>(e.kind)];
  std::array<std::uint64_t, 4> degradation_counts{};
  for (const auto& e : degradations)
    ++degradation_counts[static_cast<std::size_t>(e.kind)];

  std::ostringstream os;
  os << "fault report: " << injected.size() << " faults injected, "
     << degradations.size() << " degradation decisions, " << total_retries()
     << " retries (shm " << shm_retries << " / cma " << cma_retries << " / hca "
     << hca_retries << "), " << time_lost << " us lost to recovery\n";
  for (std::size_t i = 0; i < fault_counts.size(); ++i)
    if (fault_counts[i] > 0)
      os << "  fault " << to_string(static_cast<FaultKind>(i)) << ": "
         << fault_counts[i] << "\n";
  for (std::size_t i = 0; i < degradation_counts.size(); ++i)
    if (degradation_counts[i] > 0)
      os << "  degradation " << to_string(static_cast<DegradationKind>(i)) << ": "
         << degradation_counts[i] << "\n";
  return os.str();
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : plan_(plan), seed_(seed) {
  auto check_prob = [](double p, const char* name) {
    CBMPI_REQUIRE(p >= 0.0 && p <= 1.0, "fault probability ", name,
                  " out of [0, 1]: ", p);
  };
  check_prob(plan_.shm_segment_fail_prob, "shm_segment_fail_prob");
  check_prob(plan_.private_ipc_prob, "private_ipc_prob");
  check_prob(plan_.cma_eperm_prob, "cma_eperm_prob");
  check_prob(plan_.hca_transient_prob, "hca_transient_prob");
  check_prob(plan_.rank_crash_prob, "rank_crash_prob");
  check_prob(plan_.container_crash_prob, "container_crash_prob");
  check_prob(plan_.host_crash_prob, "host_crash_prob");
  CBMPI_REQUIRE(!plan_.crashes_enabled() || plan_.crash_horizon > 0.0,
                "crash_horizon must be positive when crash faults are "
                "enabled, got ",
                plan_.crash_horizon);
  CBMPI_REQUIRE(plan_.hca_link_flap_period >= 0.0 &&
                    plan_.hca_link_flap_duration >= 0.0,
                "link flap period/duration must be non-negative");
  CBMPI_REQUIRE(plan_.hca_link_flap_period == 0.0 ||
                    plan_.hca_link_flap_duration <= plan_.hca_link_flap_period,
                "link flap duration (", plan_.hca_link_flap_duration,
                ") exceeds its period (", plan_.hca_link_flap_period, ")");
}

double FaultInjector::uniform(std::uint64_t site, std::uint64_t a,
                              std::uint64_t b, std::uint64_t c) const {
  return uniform_seeded(seed_, site, a, b, c);
}

double FaultInjector::uniform_seeded(std::uint64_t seed, std::uint64_t site,
                                     std::uint64_t a, std::uint64_t b,
                                     std::uint64_t c) const {
  std::uint64_t h = mix64(seed ^ mix64(site));
  h = mix64(h ^ mix64(a));
  h = mix64(h ^ mix64(b));
  h = mix64(h ^ mix64(c));
  // 53 high bits -> double in [0, 1), same construction as Xoshiro256.
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

namespace {
constexpr std::uint64_t site_key(FaultKind kind) {
  return 0xfa17u * 0x10001u + static_cast<std::uint64_t>(kind);
}
}  // namespace

bool FaultInjector::shm_segment_fails(int rank) const {
  if (plan_.shm_segment_fail_prob <= 0.0) return false;
  return uniform(site_key(FaultKind::ShmSegmentFail),
                 static_cast<std::uint64_t>(rank), 0, 0) <
         plan_.shm_segment_fail_prob;
}

bool FaultInjector::private_ipc(int host, int container_index) const {
  if (plan_.private_ipc_prob <= 0.0) return false;
  return uniform(site_key(FaultKind::PrivateIpc),
                 static_cast<std::uint64_t>(host),
                 static_cast<std::uint64_t>(container_index), 0) <
         plan_.private_ipc_prob;
}

bool FaultInjector::cma_permission_denied(int a, int b) const {
  if (plan_.cma_eperm_prob <= 0.0) return false;
  const auto [lo, hi] = std::minmax(a, b);
  return uniform(site_key(FaultKind::CmaEperm), static_cast<std::uint64_t>(lo),
                 static_cast<std::uint64_t>(hi), 0) < plan_.cma_eperm_prob;
}

FaultInjector::HcaOutcome FaultInjector::hca_attempt(int src, int dst,
                                                     std::uint64_t seq,
                                                     int attempt, Micros at) const {
  if (plan_.hca_link_flap_period > 0.0 && plan_.hca_link_flap_duration > 0.0 &&
      std::fmod(at, plan_.hca_link_flap_period) < plan_.hca_link_flap_duration)
    return HcaOutcome::LinkFlap;
  if (plan_.hca_transient_prob > 0.0 &&
      uniform(site_key(FaultKind::HcaTransient),
              static_cast<std::uint64_t>(src) << 32 |
                  static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)),
              seq, static_cast<std::uint64_t>(attempt)) <
          plan_.hca_transient_prob)
    return HcaOutcome::Transient;
  return HcaOutcome::Ok;
}

std::optional<Micros> FaultInjector::rank_crash_at(int rank) const {
  if (plan_.rank_crash_prob <= 0.0) return std::nullopt;
  const auto site = site_key(FaultKind::RankCrash);
  if (uniform(site, static_cast<std::uint64_t>(rank), 0, 0) >=
      plan_.rank_crash_prob)
    return std::nullopt;
  return plan_.crash_horizon *
         uniform(site, static_cast<std::uint64_t>(rank), 1, 0x717e);
}

std::optional<Micros> FaultInjector::container_crash_at(int host,
                                                        int container_index) const {
  if (plan_.container_crash_prob <= 0.0) return std::nullopt;
  const auto site = site_key(FaultKind::ContainerCrash);
  const auto h = static_cast<std::uint64_t>(host);
  const auto c = static_cast<std::uint64_t>(container_index);
  if (uniform(site, h, c, 0) >= plan_.container_crash_prob) return std::nullopt;
  return plan_.crash_horizon * uniform(site, h, c, 0x717e);
}

std::optional<Micros> FaultInjector::host_crash_at(int physical_host) const {
  if (plan_.host_crash_prob <= 0.0) return std::nullopt;
  const auto site = site_key(FaultKind::HostCrash);
  const auto h = static_cast<std::uint64_t>(physical_host);
  // Eligibility may hash from a cluster-stable seed (host_fault_seed), so a
  // flaky physical host fails job after job; the crash time always hashes
  // from the job seed, so a requeued attempt draws a fresh one.
  const std::uint64_t eligibility_seed =
      plan_.host_fault_seed != 0 ? plan_.host_fault_seed : seed_;
  if (uniform_seeded(eligibility_seed, site, h, 0, 0) >= plan_.host_crash_prob)
    return std::nullopt;
  return plan_.crash_horizon * uniform(site, h, 0, 0x717e);
}

Micros FaultInjector::backoff_delay(int src, int dst, std::uint64_t seq,
                                    int attempt, Micros base, double factor) const {
  const double jitter =
      1.0 + 0.25 * uniform(site_key(FaultKind::HcaLinkFlap) ^ 0x6a77u,
                           static_cast<std::uint64_t>(src) << 32 |
                               static_cast<std::uint64_t>(
                                   static_cast<std::uint32_t>(dst)),
                           seq, static_cast<std::uint64_t>(attempt));
  return base * std::pow(factor, attempt) * jitter;
}

FaultLog::FaultLog(int nranks) : ranks_(static_cast<std::size_t>(nranks)) {
  CBMPI_REQUIRE(nranks > 0, "fault log needs at least one rank");
}

namespace {
/// Per-rank event lists are capped so a high fault rate on a chatty job
/// cannot grow the report without bound; counters stay exact.
constexpr std::size_t kMaxEventsPerRank = 1024;
}  // namespace

void FaultLog::record_fault(int owner_rank, FaultEvent event) {
  auto& slot = ranks_[static_cast<std::size_t>(owner_rank)];
  if (slot.faults.size() < kMaxEventsPerRank) slot.faults.push_back(std::move(event));
}

bool FaultLog::record_degradation(int owner_rank, DegradationEvent event) {
  auto& slot = ranks_[static_cast<std::size_t>(owner_rank)];
  const auto key = std::make_tuple(static_cast<std::uint8_t>(event.kind),
                                   event.rank_a, event.rank_b);
  if (!slot.seen_degradations.insert(key).second) return false;
  slot.degradations.push_back(event);
  return true;
}

void FaultLog::add_retry(int owner_rank, FaultKind kind) {
  auto& slot = ranks_[static_cast<std::size_t>(owner_rank)];
  switch (kind) {
    case FaultKind::ShmSegmentFail: ++slot.shm_retries; break;
    case FaultKind::CmaEperm: ++slot.cma_retries; break;
    case FaultKind::PrivateIpc:
    case FaultKind::HcaTransient:
    case FaultKind::HcaLinkFlap: ++slot.hca_retries; break;
    case FaultKind::RankCrash:
    case FaultKind::ContainerCrash:
    case FaultKind::HostCrash: break;  // crashes are not retried in-job
  }
}

void FaultLog::add_time_lost(int owner_rank, Micros lost) {
  ranks_[static_cast<std::size_t>(owner_rank)].time_lost += lost;
}

FaultReport FaultLog::finalize() const {
  FaultReport report;
  // Fold per-rank slots in rank order: the totals and the concatenation are
  // schedule-independent because each slot was written by one thread only.
  for (const auto& slot : ranks_) {
    report.injected.insert(report.injected.end(), slot.faults.begin(),
                           slot.faults.end());
    report.degradations.insert(report.degradations.end(),
                               slot.degradations.begin(), slot.degradations.end());
    report.shm_retries += slot.shm_retries;
    report.cma_retries += slot.cma_retries;
    report.hca_retries += slot.hca_retries;
    report.time_lost += slot.time_lost;
  }
  std::stable_sort(report.injected.begin(), report.injected.end(),
                   [](const FaultEvent& x, const FaultEvent& y) {
                     return std::tie(x.at, x.rank_a, x.rank_b, x.kind) <
                            std::tie(y.at, y.rank_a, y.rank_b, y.kind);
                   });
  std::stable_sort(report.degradations.begin(), report.degradations.end(),
                   [](const DegradationEvent& x, const DegradationEvent& y) {
                     return std::tie(x.kind, x.rank_a, x.rank_b) <
                            std::tie(y.kind, y.rank_a, y.rank_b);
                   });
  // Both directions of a pair may have recorded the same (normalized)
  // decision; keep one.
  report.degradations.erase(
      std::unique(report.degradations.begin(), report.degradations.end(),
                  [](const DegradationEvent& x, const DegradationEvent& y) {
                    return x.kind == y.kind && x.rank_a == y.rank_a &&
                           x.rank_b == y.rank_b;
                  }),
      report.degradations.end());
  return report;
}

}  // namespace cbmpi::faults
