// Per-rank virtual clock.
//
// Every simulated MPI process owns one VirtualClock. Communication and
// computation advance it through cost models; synchronising operations move
// it forward to match peers (never backward). The clock is read by exactly
// one thread (its owning rank) except in the message-matching path, where a
// matched peer reads a *snapshot* carried inside the message envelope — so no
// atomics are needed here.
#pragma once

#include "common/error.hpp"
#include "common/units.hpp"

namespace cbmpi::sim {

class VirtualClock {
 public:
  Micros now() const { return now_; }

  /// Advances by a non-negative duration.
  void advance(Micros delta) {
    CBMPI_REQUIRE(delta >= 0.0, "clock cannot move backward (delta=", delta, ")");
    now_ += delta;
  }

  /// Moves the clock forward to `t` if `t` is later; no-op otherwise.
  void advance_to(Micros t) {
    if (t > now_) now_ = t;
  }

  void reset() { now_ = 0.0; }

 private:
  Micros now_ = 0.0;
};

}  // namespace cbmpi::sim
