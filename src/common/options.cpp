#include "common/options.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"

namespace cbmpi {

Options::Options(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    CBMPI_REQUIRE(arg.rfind("--", 0) == 0, "unexpected positional argument: ", arg);
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      given_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      given_[arg] = argv[++i];
    } else {
      given_[arg] = "true";  // bare flag
    }
  }
}

std::string Options::get(const std::string& key, const std::string& def,
                         const std::string& help) {
  declared_.push_back({key, def, help});
  const auto it = given_.find(key);
  return it == given_.end() ? def : it->second;
}

std::int64_t Options::get_int(const std::string& key, std::int64_t def,
                              const std::string& help) {
  const std::string v = get(key, std::to_string(def), help);
  return std::strtoll(v.c_str(), nullptr, 10);
}

double Options::get_double(const std::string& key, double def, const std::string& help) {
  const std::string v = get(key, std::to_string(def), help);
  return std::strtod(v.c_str(), nullptr);
}

bool Options::get_flag(const std::string& key, const std::string& help) {
  const std::string v = get(key, "false", help);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

bool Options::finish(const std::string& program_description) {
  for (const auto& [key, value] : given_) {
    bool known = false;
    for (const auto& d : declared_)
      if (d.key == key) known = true;
    if (!known) {
      std::fprintf(stderr, "unknown option --%s (value '%s'); try --help\n", key.c_str(),
                   value.c_str());
      std::exit(2);
    }
  }
  if (help_requested_) {
    std::printf("%s\n\noptions:\n", program_description.c_str());
    for (const auto& d : declared_)
      std::printf("  --%-24s %s (default: %s)\n", d.key.c_str(), d.help.c_str(),
                  d.def.c_str());
    return true;
  }
  return false;
}

}  // namespace cbmpi
