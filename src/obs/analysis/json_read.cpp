#include "obs/analysis/json_read.hpp"

#include <cctype>
#include <cstdlib>

namespace cbmpi::obs::analysis {

namespace {
const JsonValue kNull{};
}

const JsonValue& JsonValue::operator[](const std::string& name) const {
  const auto it = object_.find(name);
  return it == object_.end() ? kNull : it->second;
}

const JsonValue& JsonValue::operator[](std::size_t index) const {
  return index < array_.size() ? array_[index] : kNull;
}

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse(std::string* error) {
    JsonValue value;
    if (!parse_value(value) || (skip_ws(), pos_ != text_.size())) {
      if (error != nullptr)
        *error = failed_.empty()
                     ? "trailing data at byte " + std::to_string(pos_)
                     : failed_;
      return JsonValue{};
    }
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool fail(const std::string& what) {
    if (failed_.empty())
      failed_ = what + " at byte " + std::to_string(pos_);
    return false;
  }

  bool literal(const char* word, std::size_t len) {
    if (text_.compare(pos_, len, word) != 0) return fail("bad literal");
    pos_ += len;
    return true;
  }

  bool parse_string(std::string& out) {
    if (text_[pos_] != '"') return fail("expected string");
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (++pos_ >= text_.size()) break;
        switch (text_[pos_]) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) return fail("truncated \\u escape");
            const unsigned code = static_cast<unsigned>(
                std::strtoul(text_.substr(pos_ + 1, 4).c_str(), nullptr, 16));
            // Reports only ever escape control characters; encode the code
            // point as UTF-8 without surrogate-pair handling.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            pos_ += 4;
            break;
          }
          default: return fail("bad escape");
        }
        ++pos_;
      } else {
        out += c;
        ++pos_;
      }
    }
    return fail("unterminated string");
  }

  bool parse_value(JsonValue& value) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': {
        value.kind_ = JsonValue::Kind::Object;
        ++pos_;
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        while (true) {
          skip_ws();
          std::string key;
          if (!parse_string(key)) return false;
          skip_ws();
          if (pos_ >= text_.size() || text_[pos_] != ':')
            return fail("expected ':'");
          ++pos_;
          if (!parse_value(value.object_[key])) return false;
          skip_ws();
          if (pos_ < text_.size() && text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
          }
          return fail("expected ',' or '}'");
        }
      }
      case '[': {
        value.kind_ = JsonValue::Kind::Array;
        ++pos_;
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        while (true) {
          value.array_.emplace_back();
          if (!parse_value(value.array_.back())) return false;
          skip_ws();
          if (pos_ < text_.size() && text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
          }
          return fail("expected ',' or ']'");
        }
      }
      case '"':
        value.kind_ = JsonValue::Kind::String;
        return parse_string(value.string_);
      case 't':
        value.kind_ = JsonValue::Kind::Bool;
        value.bool_ = true;
        return literal("true", 4);
      case 'f':
        value.kind_ = JsonValue::Kind::Bool;
        value.bool_ = false;
        return literal("false", 5);
      case 'n':
        return literal("null", 4);
      default: {
        const char* start = text_.c_str() + pos_;
        char* end = nullptr;
        value.number_ = std::strtod(start, &end);
        if (end == start) return fail("expected value");
        value.kind_ = JsonValue::Kind::Number;
        pos_ += static_cast<std::size_t>(end - start);
        return true;
      }
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string failed_;
};

JsonValue JsonValue::parse(const std::string& text, std::string* error) {
  return JsonParser(text).parse(error);
}

}  // namespace cbmpi::obs::analysis
