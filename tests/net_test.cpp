// Fabric model tests: fat-tree structure and deterministic routing, the
// max-min link-contention engine's fair-share invariants, SR-IOV VF
// contention through the full runtime, and the bit-identical-rerun claim for
// congested jobs (DESIGN.md §14).
#include <gtest/gtest.h>

#include <mutex>
#include <numeric>
#include <vector>

#include "mpi/runtime.hpp"
#include "net/contention.hpp"
#include "net/fabric.hpp"
#include "net/topology.hpp"
#include "sched/cluster_state.hpp"
#include "sched/placer.hpp"
#include "topo/hardware.hpp"

namespace cbmpi {
namespace {

using container::DeploymentSpec;
using mpi::JobConfig;
using mpi::run_job;

// --- topology ---------------------------------------------------------------

TEST(NetTopology, FatTreeStructure) {
  // k = 4: 4 pods x (2 edge + 2 agg) + 4 cores = 20 switches, 16 hosts max.
  const auto topo = net::Topology::fattree(4, 16, 1.0, 0.5, 0.1);
  EXPECT_EQ(topo.num_hosts(), 16);
  EXPECT_EQ(topo.num_switches(), 20);
  // Duplex links: 16 host-edge + 16 edge-agg + 16 agg-core pairs.
  EXPECT_EQ(topo.num_links(), 96);
  EXPECT_EQ(topo.arity(), 4);

  EXPECT_EQ(net::Topology::min_arity_for(16), 4);
  EXPECT_EQ(net::Topology::min_arity_for(17), 6);
  EXPECT_EQ(net::Topology::min_arity_for(2), 2);
}

TEST(NetTopology, HopClassesAndLatency) {
  const Micros link_lat = 0.425, switch_lat = 0.1;
  const auto topo = net::Topology::fattree(4, 16, 1.0, link_lat, switch_lat);
  EXPECT_EQ(topo.hops(0, 0), 0);
  EXPECT_EQ(topo.hops(0, 1), 2);  // same edge switch
  EXPECT_EQ(topo.hops(0, 2), 4);  // same pod, different edge
  EXPECT_EQ(topo.hops(0, 4), 6);  // different pod
  // path latency = links * link_lat + (links - 1) * switch_lat.
  EXPECT_DOUBLE_EQ(topo.path_latency(0, 1), 2 * link_lat + 1 * switch_lat);
  EXPECT_DOUBLE_EQ(topo.path_latency(0, 2), 4 * link_lat + 3 * switch_lat);
  EXPECT_DOUBLE_EQ(topo.path_latency(0, 4), 6 * link_lat + 5 * switch_lat);
  // Longer routes can only be slower.
  EXPECT_GT(topo.path_latency(0, 4), topo.path_latency(0, 2));
  EXPECT_GT(topo.path_latency(0, 2), topo.path_latency(0, 1));
}

TEST(NetTopology, RoutingIsDeterministic) {
  const auto a = net::Topology::fattree(4, 16, 1.0, 0.5, 0.1);
  const auto b = net::Topology::fattree(4, 16, 1.0, 0.5, 0.1);
  for (int src = 0; src < 16; ++src)
    for (int dst = 0; dst < 16; ++dst) {
      const auto route1 = a.route(src, dst);
      EXPECT_EQ(route1, a.route(src, dst)) << src << "->" << dst;
      EXPECT_EQ(route1, b.route(src, dst)) << src << "->" << dst;
      if (src == dst) {
        EXPECT_TRUE(route1.empty());
      } else {
        EXPECT_EQ(static_cast<int>(route1.size()), a.hops(src, dst));
        // First link leaves the source host, last link enters the target.
        EXPECT_EQ(a.link(route1.front()).from, src);
        EXPECT_EQ(a.link(route1.back()).to, dst);
      }
    }
}

// --- contention engine ------------------------------------------------------

TEST(NetContention, MaxMinThreeFlowCrossTraffic) {
  // A on L0 (cap 10), B on L0+L1, C on L1 (cap 20). Max-min: A = B = 5
  // (L0 saturates), C = 15. Bytes chosen so all three finish at t = 10.
  std::vector<net::Flow> flows;
  flows.push_back({{0, 0}, {0}, 50.0, 0.0, 10.0});
  flows.push_back({{1, 0}, {0, 1}, 50.0, 0.0, 10.0});
  flows.push_back({{2, 0}, {1}, 150.0, 0.0, 20.0});
  const auto result = net::settle(std::move(flows), {10.0, 20.0});

  ASSERT_EQ(result.flows.size(), 3u);
  EXPECT_NEAR(result.flows[0].finish, 10.0, 1e-9);
  EXPECT_NEAR(result.flows[1].finish, 10.0, 1e-9);
  EXPECT_NEAR(result.flows[2].finish, 10.0, 1e-9);
  // factor = elapsed / (bytes / rate_cap).
  EXPECT_NEAR(result.flows[0].factor, 2.0, 1e-9);
  EXPECT_NEAR(result.flows[1].factor, 2.0, 1e-9);
  EXPECT_NEAR(result.flows[2].factor, 4.0 / 3.0, 1e-9);
  // Fair-share invariant: link shares sum to at most capacity.
  EXPECT_LE(result.links[0].peak, 1.0 + 1e-9);
  EXPECT_LE(result.links[1].peak, 1.0 + 1e-9);
  EXPECT_NEAR(result.links[0].peak, 1.0, 1e-9);
  EXPECT_NEAR(result.links[1].peak, 1.0, 1e-9);
}

TEST(NetContention, LoneFlowFactorIsExactlyOne) {
  // Rate-cap-limited, link half idle: the apply pass must reproduce the
  // uncontended cost bit-identically, so the factor is exactly 1.0.
  std::vector<net::Flow> flows;
  flows.push_back({{0, 0}, {0}, 100.0, 0.0, 5.0});
  const auto result = net::settle(std::move(flows), {10.0});
  ASSERT_EQ(result.flows.size(), 1u);
  EXPECT_EQ(result.flows[0].factor, 1.0);
  EXPECT_NEAR(result.flows[0].finish, 20.0, 1e-9);
  EXPECT_NEAR(result.links[0].peak, 0.5, 1e-9);
}

TEST(NetContention, SharesNeverExceedCapacityUnderChurn) {
  // Staggered arrivals over shared links; every instantaneous allocation the
  // engine reports must respect capacity.
  std::vector<net::Flow> flows;
  for (int i = 0; i < 12; ++i) {
    const int seq = i;
    flows.push_back({{i % 4, static_cast<std::uint64_t>(seq)},
                     {i % 3, 3 + (i % 2)},
                     200.0 + 37.0 * i,
                     1.5 * i,
                     6.0});
  }
  const auto result = net::settle(std::move(flows), {10.0, 10.0, 10.0, 15.0, 15.0});
  ASSERT_EQ(result.flows.size(), 12u);
  for (const auto& link : result.links) {
    EXPECT_LE(link.peak, 1.0 + 1e-9);
    EXPECT_LE(link.mean, link.peak + 1e-9);
  }
  for (const auto& flow : result.flows) EXPECT_GE(flow.factor, 1.0);
}

// --- fabric + runtime -------------------------------------------------------

JobConfig cross_host_pair(const std::string& fabric) {
  JobConfig config;
  config.deployment = DeploymentSpec::native_hosts(2, 1);
  config.fabric = net::FabricConfig::parse(fabric);
  return config;
}

void send_one(mpi::Process& p, Bytes bytes, int src, int dst) {
  std::vector<std::uint8_t> buf(bytes);
  if (p.rank() == src)
    p.world().send(std::span<const std::uint8_t>(buf), dst);
  else if (p.rank() == dst)
    p.world().recv(std::span<std::uint8_t>(buf), src);
}

TEST(NetFabric, FlatUncontendedMatchesIdealBitIdentically) {
  // One rndv and one eager transfer, no sharing anywhere: the flat fabric's
  // routed latency and rate caps must reproduce the ideal cost model exactly.
  const auto body = [](mpi::Process& p) {
    send_one(p, 512_KiB, 0, 1);  // rendezvous
    send_one(p, 256, 0, 1);      // eager
  };
  const auto ideal = run_job(cross_host_pair("ideal"), body);
  const auto flat = run_job(cross_host_pair("flat"), body);
  EXPECT_EQ(ideal.job_time, flat.job_time);
  ASSERT_EQ(ideal.rank_times.size(), flat.rank_times.size());
  for (std::size_t r = 0; r < ideal.rank_times.size(); ++r)
    EXPECT_EQ(ideal.rank_times[r], flat.rank_times[r]);
  EXPECT_FALSE(ideal.net.enabled);
  ASSERT_TRUE(flat.net.enabled);
  EXPECT_EQ(flat.net.transfers, 2u);
  EXPECT_EQ(flat.net.congested_transfers, 0u);
  EXPECT_EQ(flat.net.max_factor, 1.0);
}

TEST(NetFabric, TwoStreamsHalveTheSharedUplink) {
  // Ranks 0,1 on host 0 and 2,3 on host 1. One 4 MiB stream vs two
  // concurrent ones through the same host uplink: each should get ~half the
  // bandwidth, so the job takes ~2x as long.
  auto config = [] {
    JobConfig c;
    c.deployment = DeploymentSpec::native_hosts(2, 2);
    c.fabric = net::FabricConfig::parse("flat");
    return c;
  };
  const auto single = run_job(config(), [](mpi::Process& p) {
    send_one(p, 4_MiB, 0, 2);
  });
  const auto both = run_job(config(), [](mpi::Process& p) {
    send_one(p, 4_MiB, 0, 2);
    send_one(p, 4_MiB, 1, 3);
  });
  // Sequential pairs would also take 2x; make the two transfers overlap by
  // checking the congestion engine actually saw them contend.
  const auto overlapped = run_job(config(), [](mpi::Process& p) {
    std::vector<std::uint8_t> buf(4_MiB);
    if (p.rank() < 2)
      p.world().send(std::span<const std::uint8_t>(buf), p.rank() + 2);
    else
      p.world().recv(std::span<std::uint8_t>(buf), p.rank() - 2);
  });
  ASSERT_TRUE(overlapped.net.enabled);
  EXPECT_EQ(overlapped.net.transfers, 2u);
  EXPECT_EQ(overlapped.net.congested_transfers, 2u);
  EXPECT_NEAR(overlapped.net.max_factor, 2.0, 0.1);
  const double ratio = overlapped.job_time / single.job_time;
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 2.6);
  // Aggregate bandwidth is sublinear: two streams are slower than one but
  // (much) faster than running the two transfers back to back with no
  // overlap would be under a per-pair model charged twice.
  EXPECT_GT(both.job_time, single.job_time);
}

TEST(NetFabric, VfLimitSplitsTheHostHca) {
  // Two containers per host provision two VFs on each HCA; --vf-limit=1
  // means the HCA only schedules one at full weight, so every flow runs at
  // half rate even uncontended.
  auto config = [](int vf_limit) {
    JobConfig c;
    c.deployment = DeploymentSpec::containers(2, 2, 2);
    c.fabric = net::FabricConfig::parse("flat");
    c.fabric.vf_limit = vf_limit;
    return c;
  };
  const auto body = [](mpi::Process& p) { send_one(p, 4_MiB, 0, 2); };
  const auto unlimited = run_job(config(0), body);
  const auto limited = run_job(config(1), body);
  const double ratio = limited.job_time / unlimited.job_time;
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 2.3);
}

TEST(NetFabric, CongestedFatTreeRerunIsByteIdentical) {
  // 8 ranks over 4 hosts in one fat-tree pod, two phases of four concurrent
  // 2 MiB streams (0<->4, 1<->5 share host0<->host2 links; 2<->6, 3<->7
  // share host1<->host3). Both runs must agree to the last bit.
  auto config = [] {
    JobConfig c;
    c.deployment = DeploymentSpec::native_hosts(4, 2);
    c.fabric = net::FabricConfig::parse("fattree:4");
    return c;
  };
  const auto body = [](mpi::Process& p) {
    std::vector<std::uint8_t> buf(2_MiB);
    const int peer = p.rank() < 4 ? p.rank() + 4 : p.rank() - 4;
    if (p.rank() < 4) {
      p.world().send(std::span<const std::uint8_t>(buf), peer);
      p.world().recv(std::span<std::uint8_t>(buf), peer);
    } else {
      p.world().recv(std::span<std::uint8_t>(buf), peer);
      p.world().send(std::span<const std::uint8_t>(buf), peer);
    }
  };
  const auto first = run_job(config(), body);
  const auto second = run_job(config(), body);
  EXPECT_EQ(first.job_time, second.job_time);
  ASSERT_EQ(first.rank_times.size(), second.rank_times.size());
  for (std::size_t r = 0; r < first.rank_times.size(); ++r)
    EXPECT_EQ(first.rank_times[r], second.rank_times[r]);

  ASSERT_TRUE(first.net.enabled);
  EXPECT_EQ(first.net.model, net::FabricModel::FatTree);
  EXPECT_EQ(first.net.transfers, 8u);
  EXPECT_GT(first.net.congested_transfers, 0u);
  EXPECT_GT(first.net.max_factor, 1.5);
  // Hop histogram partitions the transfers; these 4 hosts share one pod.
  std::uint64_t histogram_total = 0;
  for (const auto count : first.net.hop_histogram) histogram_total += count;
  EXPECT_EQ(histogram_total, first.net.transfers);
  EXPECT_EQ(second.net.congested_transfers, first.net.congested_transfers);
  for (const auto& link : first.net.link_utils) {
    EXPECT_LE(link.peak, 1.0 + 1e-9);
    EXPECT_LE(link.mean, link.peak + 1e-9);
  }
}

TEST(NetFabric, RecordPassIsFlaggedAndIdealRunsOnce) {
  std::mutex mutex;
  std::vector<bool> probes;
  const auto body = [&](mpi::Process& p) {
    if (p.rank() == 0) {
      const std::scoped_lock lock(mutex);
      probes.push_back(p.fabric_probe());
    }
  };
  JobConfig ideal;
  ideal.deployment = DeploymentSpec::native_hosts(1, 2);
  run_job(ideal, body);
  ASSERT_EQ(probes.size(), 1u);
  EXPECT_FALSE(probes[0]);

  probes.clear();
  JobConfig flat = ideal;
  flat.fabric = net::FabricConfig::parse("flat");
  run_job(flat, body);
  // Non-Ideal fabric runs the body twice: record pass first (flagged), then
  // the apply pass whose results stand.
  ASSERT_EQ(probes.size(), 2u);
  EXPECT_TRUE(probes[0]);
  EXPECT_FALSE(probes[1]);
}

// --- TopologyAware placer ---------------------------------------------------

TEST(NetPlacer, TopologyAwareKeepsJobsWithinFewHops) {
  // Four hosts, two edge pairs: {0,1} and {2,3} are 2 hops apart internally,
  // 6 hops across. Free cores are rigged so the emptiest-first order would
  // pair host 0 with host 2 (cross-pair) while hop proximity pairs 0 with 1.
  const topo::HostShape shape;
  const topo::Cluster cluster(4, shape);
  sched::ClusterState state(cluster);
  const int cores = shape.total_cores();
  state.claim(0, cores - 3, 999);
  state.claim(1, cores - 1, 999);
  state.claim(2, cores - 2, 999);
  state.claim(3, cores - 1, 999);

  std::vector<std::vector<int>> hops(4, std::vector<int>(4, 6));
  for (int h = 0; h < 4; ++h) hops[static_cast<std::size_t>(h)][static_cast<std::size_t>(h)] = 0;
  hops[0][1] = hops[1][0] = 2;
  hops[2][3] = hops[3][2] = 2;

  sched::JobSpec job;
  job.id = 1;
  job.ranks = 5;
  job.ranks_per_container = 0;
  job.traffic = mpi::TrafficMatrix(5, std::vector<double>(5, 1.0));

  const auto locality =
      sched::make_placer(sched::PlacementPolicy::LocalityAware, 42)->place(job, state);
  const auto topo_aware =
      sched::make_placer(sched::PlacementPolicy::TopologyAware, 42, &hops)
          ->place(job, state);
  ASSERT_TRUE(locality.has_value());
  ASSERT_TRUE(topo_aware.has_value());

  const auto hop_cost = [&](const sched::Placement& placement) {
    std::vector<int> host_of(5, -1);
    for (const auto& h : placement.hosts)
      for (const int r : h.ranks) host_of[static_cast<std::size_t>(r)] = h.host;
    long cost = 0;
    for (int a = 0; a < 5; ++a)
      for (int b = a + 1; b < 5; ++b)
        cost += hops[static_cast<std::size_t>(host_of[static_cast<std::size_t>(a)])]
                    [static_cast<std::size_t>(host_of[static_cast<std::size_t>(b)])];
    return cost;
  };
  // Uniform traffic: hop-weighted cost is exactly what TopologyAware should
  // be winning on.
  EXPECT_LT(hop_cost(*topo_aware), hop_cost(*locality));
}

TEST(NetPlacer, PolicyTokensRoundTrip) {
  EXPECT_STREQ(sched::to_string(sched::PlacementPolicy::TopologyAware), "topology");
  EXPECT_EQ(sched::parse_policy("topology"), sched::PlacementPolicy::TopologyAware);
  EXPECT_EQ(sched::parse_policy("topology-aware"),
            sched::PlacementPolicy::TopologyAware);
}

}  // namespace
}  // namespace cbmpi
