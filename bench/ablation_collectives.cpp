// Ablation: collective algorithm choices.
//
//   (a) two-level (leader-based) vs flat algorithms across containers
//   (b) binomial-tree vs van-de-Geijn (scatter + ring allgather) broadcast
//   (c) recursive-doubling vs Rabenseifner (reduce-scatter + allgather)
//       allreduce
//   (d) engine sweep: every algorithm of every collective across
//       {1, 2, 4} containers per host, checked against the shipped
//       container tuning table (does the default pick the winner?)
//
// These are the design decisions DESIGN.md calls out; the bench shows each
// one earns its keep in its regime (hierarchy for multi-container hosts,
// bandwidth algorithms for large payloads) — mirroring how MVAPICH2 switches
// algorithms by message size.
//
// With --autotune the bench runs only the (d) sweep and emits the winners as
// a ready-to-use tuning file (the same format `cbmpirun --tuning=` parses),
// so a new machine profile can regenerate its own table:
//
//   ablation_collectives --autotune > my.tuning
//   cbmpirun --app=cg --tuning=my.tuning
#include "bench_util.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "apps/osu/microbench.hpp"
#include "mpi/coll/engine.hpp"

using namespace cbmpi;
using namespace cbmpi::bench;

namespace {

Micros collective_time(mpi::JobConfig config, apps::osu::Collective coll, Bytes size,
                       int iters) {
  apps::osu::PairOptions osu_opts;
  osu_opts.iterations = iters;
  osu_opts.warmup = 1;
  double value = 0.0;
  mpi::run_job(config, [&](mpi::Process& p) {
    const double v = apps::osu::collective_latency(p, coll, size, osu_opts);
    if (p.rank() == 0) value = v;
  });
  return value;
}

/// Times one engine collective (OSU-style: aligned start, max across ranks,
/// averaged over iterations). `size` is the engine's tuning key for the
/// collective: payload bytes for bcast/reduce/allreduce, per-rank block for
/// allgather, per-peer block for alltoall, ignored for barrier.
Micros engine_collective_time(mpi::JobConfig config, coll::Coll c, Bytes size,
                              int iters) {
  Micros value = 0.0;
  mpi::run_job(config, [&](mpi::Process& p) {
    auto& comm = p.world();
    const auto n = static_cast<std::size_t>(comm.size());
    const Bytes per_rank = std::max<Bytes>(size, 1);
    std::vector<std::byte> mine(per_rank);
    std::vector<std::byte> all(per_rank * n);
    std::vector<std::byte> send_all(per_rank * n);
    std::vector<std::int64_t> red_in(std::max<Bytes>(size / sizeof(std::int64_t), 1));
    std::vector<std::int64_t> red_out(red_in.size());
    auto one = [&] {
      switch (c) {
        case coll::Coll::Barrier:
          comm.barrier();
          break;
        case coll::Coll::Bcast:
          comm.bcast(std::span<std::byte>(mine), 0);
          break;
        case coll::Coll::Reduce:
          comm.reduce(std::span<const std::int64_t>(red_in),
                      std::span<std::int64_t>(red_out), mpi::ReduceOp::Sum, 0);
          break;
        case coll::Coll::Allreduce:
          comm.allreduce(std::span<const std::int64_t>(red_in),
                         std::span<std::int64_t>(red_out), mpi::ReduceOp::Sum);
          break;
        case coll::Coll::Allgather:
          comm.allgather(std::span<const std::byte>(mine), std::span<std::byte>(all));
          break;
        case coll::Coll::Alltoall:
          comm.alltoall(std::span<const std::byte>(send_all),
                        std::span<std::byte>(all));
          break;
        case coll::Coll::Count_:
          break;
      }
    };
    for (int i = 0; i < 2; ++i) one();
    Micros total = 0.0;
    for (int i = 0; i < iters; ++i) {
      p.sync_time();
      const Micros start = p.now();
      one();
      total += comm.allreduce_value(p.now() - start, mpi::ReduceOp::Max);
    }
    if (p.rank() == 0) value = total / static_cast<double>(iters);
  });
  return value;
}

struct SweepPoint {
  coll::Coll coll;
  Bytes size;  ///< engine tuning key (0 for barrier)
};

/// The (collective, size) grid for the (d) sweep and --autotune.
std::vector<SweepPoint> sweep_points() {
  std::vector<SweepPoint> points{{coll::Coll::Barrier, 0}};
  for (const auto c : {coll::Coll::Bcast, coll::Coll::Reduce, coll::Coll::Allreduce,
                       coll::Coll::Allgather, coll::Coll::Alltoall}) {
    for (const Bytes size : {1_KiB, 128_KiB}) points.push_back({c, size});
  }
  return points;
}

/// Sweeps every algorithm of every collective at every containers-per-host
/// shape and checks that the shipped container table picks the winner
/// (within `tolerance` of the best measured time). With `emit_table` the
/// measured winners go to stdout in tuning-file format and everything
/// human-readable moves to stderr, so `--autotune > my.tuning` yields a file
/// cbmpirun can parse as-is.
void engine_sweep(int hosts, int procs, int iters, bool emit_table) {
  std::FILE* info = emit_table ? stderr : stdout;
  const auto shape_check = [info](bool ok, const char* what) {
    std::fprintf(info, "[%s] %s\n", ok ? "SHAPE-OK" : "SHAPE-MISMATCH", what);
  };
  const double tolerance = 1.10;
  Table table({"cph", "collective", "size", "winner", "best (us)", "shipped",
               "shipped (us)", "spread"});
  coll::TuningTable best_of;
  double max_spread = 1.0;
  bool shipped_ok = true;
  for (const int cph : {1, 2, 4}) {
    mpi::JobConfig base;
    base.deployment = container::DeploymentSpec::containers(hosts, cph, procs);
    base.policy = fabric::LocalityPolicy::ContainerAware;
    const int ranks = base.deployment.total_ranks();
    const coll::Engine shipped_engine(coll::TuningTable::container_defaults(),
                                      base.tuning, cph);
    for (const SweepPoint& point : sweep_points()) {
      std::map<coll::Algo, Micros> times;
      for (const coll::Algo algo : coll::algorithms_for(point.coll)) {
        if (algo == coll::Algo::Auto) continue;
        auto config = base;
        config.coll_tuning.set_override(point.coll, algo);
        times[algo] = engine_collective_time(config, point.coll, point.size, iters);
      }
      const auto best = std::min_element(
          times.begin(), times.end(),
          [](const auto& a, const auto& b) { return a.second < b.second; });
      const auto worst = std::max_element(
          times.begin(), times.end(),
          [](const auto& a, const auto& b) { return a.second < b.second; });
      max_spread = std::max(max_spread, worst->second / best->second);
      // What the shipped defaults would run at this point (hierarchy is
      // available in these deployments: every host runs several ranks).
      const coll::Algo shipped = shipped_engine.choose(
          point.coll, point.size, ranks, /*two_level_available=*/true);
      const Micros shipped_time = times.at(shipped);
      shipped_ok = shipped_ok && shipped_time <= best->second * tolerance;
      table.add_row({std::to_string(cph), to_string(point.coll),
                     point.coll == coll::Coll::Barrier ? "-" : format_size(point.size),
                     to_string(best->first), Table::num(best->second, 1),
                     to_string(shipped), Table::num(shipped_time, 1),
                     Table::num(worst->second / best->second, 2) + "x"});
      coll::TuningEntry entry;
      entry.coll = point.coll;
      entry.min_cph = entry.max_cph = cph;
      entry.min_size = entry.max_size = point.size;
      entry.algo = best->first;
      best_of.add(entry);
    }
  }
  if (emit_table) {
    std::ostringstream rendered;
    table.print(rendered);
    std::fputs(rendered.str().c_str(), info);
    std::printf("# best-of table (feed back via cbmpirun --tuning=<file>):\n%s",
                best_of.serialize().c_str());
  } else {
    table.print(std::cout);
  }
  shape_check(max_spread > 1.10,
              "algorithms measurably apart somewhere (spread > 1.10x)");
  shape_check(shipped_ok,
              "shipped container table picks the winner at every swept "
              "point (within 1.10x)");
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const int hosts = static_cast<int>(opts.get_int("hosts", 8, "cluster hosts"));
  const int iters = static_cast<int>(opts.get_int("iters", 3, "iterations"));
  const int sweep_hosts = static_cast<int>(
      opts.get_int("sweep-hosts", 4, "hosts for the (d) engine sweep"));
  const int sweep_procs = static_cast<int>(
      opts.get_int("sweep-procs", 8, "procs per host for the (d) engine sweep"));
  const bool autotune = opts.get_flag(
      "autotune", "run only the engine sweep and emit a best-of tuning file");
  if (opts.finish("Ablation: collective algorithm choices")) return 0;

  if (autotune) {
    std::fprintf(stderr, "=== Autotune — per-size-class algorithm sweep ===\n"
                         "(progress and tables on stderr; the tuning file on "
                         "stdout)\n\n");
    engine_sweep(sweep_hosts, sweep_procs, iters, /*emit_table=*/true);
    return 0;
  }

  // ---- (a) two-level vs flat ------------------------------------------------
  // An honest nuance: with block-contiguous rank placement, flat recursive
  // doubling / ring algorithms are already locality-friendly (the low-order
  // exchange rounds stay intra-host), so composing the two-level local phase
  // from the same pt2pt primitives cannot beat them outright. Real MVAPICH2's
  // two-level gains come from dedicated shared-memory collective primitives
  // in the local phase. What this repo reproduces faithfully is the paper's
  // actual comparison — the locality *view* (Def vs Opt in Fig. 10), where
  // both modes run identical algorithms. This ablation documents that the
  // topology term is second-order next to the channel term.
  print_banner("Ablation (a)", "two-level vs flat collectives (locality view fixed)",
               "channel selection, not collective topology, carries the gains");
  {
    mpi::JobConfig base;
    base.deployment = container::DeploymentSpec::containers(hosts, 4, 8);
    base.policy = fabric::LocalityPolicy::ContainerAware;
    // Pin the hierarchy explicitly: the shipped table picks flat algorithms
    // for some of these points, and this section is about the hierarchy.
    for (const auto c : {coll::Coll::Bcast, coll::Coll::Allreduce,
                         coll::Coll::Allgather})
      base.coll_tuning.set_override(c, coll::Algo::TwoLevel);
    auto flat = base;
    flat.tuning.two_level_collectives = false;  // demotes the pins to Auto

    Table table({"collective @ 1K", "flat (us)", "two-level (us)", "delta"});
    double worst_ratio = 1.0;
    for (auto coll : {apps::osu::Collective::Bcast, apps::osu::Collective::Allreduce,
                      apps::osu::Collective::Allgather}) {
      const Micros flat_time = collective_time(flat, coll, 1_KiB, iters);
      const Micros two_level_time = collective_time(base, coll, 1_KiB, iters);
      worst_ratio = std::max(worst_ratio, two_level_time / flat_time);
      table.add_row({apps::osu::to_string(coll), Table::num(flat_time, 1),
                     Table::num(two_level_time, 1),
                     Table::num(percent_better(flat_time, two_level_time), 0) + "%"});
    }
    table.print(std::cout);
    // The channel term: the same collectives, Def vs Opt policy (two-level on).
    auto def = base;
    def.policy = fabric::LocalityPolicy::HostnameBased;
    const Micros def_ag =
        collective_time(def, apps::osu::Collective::Allgather, 1_KiB, iters);
    const Micros opt_ag =
        collective_time(base, apps::osu::Collective::Allgather, 1_KiB, iters);
    std::printf("channel term (allgather @1K, Def vs Opt, both two-level): "
                "%.1f vs %.1f us\n", def_ag, opt_ag);
    print_shape_check(opt_ag < def_ag * 0.8,
                      "locality view dominates (channel term large)");
    print_shape_check(worst_ratio < 2.0,
                      "topology term is second-order (within 2x either way)");
  }

  // ---- (b) bcast: binomial vs van de Geijn ----------------------------------
  std::printf("\n");
  print_banner("Ablation (b)", "broadcast algorithm vs payload size",
               "binomial wins small, scatter+allgather wins large");
  {
    mpi::JobConfig tree;
    tree.deployment = container::DeploymentSpec::native_hosts(hosts, 4);
    tree.coll_tuning.set_override(coll::Coll::Bcast, coll::Algo::Binomial);
    auto ring = tree;
    ring.coll_tuning.set_override(coll::Coll::Bcast, coll::Algo::VanDeGeijn);

    Table table({"size", "binomial (us)", "scatter+allgather (us)", "winner"});
    bool small_tree = false, large_ring = false;
    for (const Bytes size : {1_KiB, 16_KiB, 128_KiB, 1_MiB}) {
      const Micros tree_time =
          collective_time(tree, apps::osu::Collective::Bcast, size, iters);
      const Micros ring_time =
          collective_time(ring, apps::osu::Collective::Bcast, size, iters);
      if (size == 1_KiB) small_tree = tree_time < ring_time;
      if (size == 1_MiB) large_ring = ring_time < tree_time;
      table.add_row({format_size(size), Table::num(tree_time, 1),
                     Table::num(ring_time, 1),
                     tree_time < ring_time ? "binomial" : "scatter+allgather"});
    }
    table.print(std::cout);
    print_shape_check(small_tree, "binomial wins at 1K");
    print_shape_check(large_ring, "scatter+allgather wins at 1M");
  }

  // ---- (c) allreduce: recursive doubling vs Rabenseifner ----------------------
  std::printf("\n");
  print_banner("Ablation (c)", "allreduce algorithm vs payload size",
               "recursive doubling wins small, Rabenseifner wins large");
  {
    mpi::JobConfig recdbl;
    recdbl.deployment = container::DeploymentSpec::native_hosts(hosts, 4);
    recdbl.coll_tuning.set_override(coll::Coll::Allreduce,
                                    coll::Algo::RecursiveDoubling);
    auto raben = recdbl;
    raben.coll_tuning.set_override(coll::Coll::Allreduce, coll::Algo::Rabenseifner);

    Table table({"size", "rec-doubling (us)", "Rabenseifner (us)", "winner"});
    bool small_recdbl = false, large_raben = false;
    for (const Bytes size : {1_KiB, 16_KiB, 128_KiB, 1_MiB}) {
      const Micros recdbl_time =
          collective_time(recdbl, apps::osu::Collective::Allreduce, size, iters);
      const Micros raben_time =
          collective_time(raben, apps::osu::Collective::Allreduce, size, iters);
      if (size == 1_KiB) small_recdbl = recdbl_time < raben_time;
      if (size == 1_MiB) large_raben = raben_time < recdbl_time;
      table.add_row({format_size(size), Table::num(recdbl_time, 1),
                     Table::num(raben_time, 1),
                     recdbl_time < raben_time ? "rec-doubling" : "Rabenseifner"});
    }
    table.print(std::cout);
    print_shape_check(small_recdbl, "recursive doubling wins at 1K");
    print_shape_check(large_raben, "Rabenseifner wins at 1M");
  }

  // ---- (d) engine sweep: every algorithm everywhere ---------------------------
  std::printf("\n");
  print_banner("Ablation (d)", "engine sweep across containers-per-host",
               "shipped container tuning table picks the measured winner");
  engine_sweep(sweep_hosts, sweep_procs, iters, /*emit_table=*/false);
  return 0;
}
