// Unit tests for the Container Locality Detector — the paper's Sec. IV-B
// mechanism: one byte per rank in host shared memory.
#include <gtest/gtest.h>

#include "container/engine.hpp"
#include "mpi/locality.hpp"
#include "osl/machine.hpp"

namespace cbmpi::mpi {
namespace {

struct Fixture {
  osl::Machine machine{topo::ClusterBuilder().hosts(2).build()};
  container::Engine engine{machine};
  std::vector<std::unique_ptr<osl::SimProcess>> procs;

  osl::SimProcess& container_proc(int host, const std::string& name,
                                  bool share_ipc = true) {
    container::ContainerSpec spec;
    spec.name = name;
    spec.share_host_ipc = share_ipc;
    auto& cont = engine.run(host, spec);
    procs.push_back(engine.spawn(cont, 0));
    return *procs.back();
  }

  osl::SimProcess& native_proc(int host) {
    procs.push_back(engine.spawn_native(host, topo::CoreId{0, 0}));
    return *procs.back();
  }
};

TEST(Locality, PaperFigure6Scenario) {
  // Fig. 6: 8 ranks; ranks 0,1 in container A, rank 4 in B, rank 5 in C, all
  // on host1; ranks 2,3,6,7 on host2. The host1 list must read 1,1,0,0,1,1,0,0.
  Fixture fx;
  ContainerLocalityDetector detector("fig6", 8);
  auto& r0 = fx.container_proc(0, "cont-a");
  auto& r1 = *fx.procs.emplace_back(
      fx.engine.spawn(*fx.engine.containers()[0], 1));  // also container A
  auto& r4 = fx.container_proc(0, "cont-b");
  auto& r5 = fx.container_proc(0, "cont-c");
  auto& r2 = fx.container_proc(1, "cont-d");
  auto& r3 = fx.container_proc(1, "cont-e");
  auto& r6 = fx.container_proc(1, "cont-f");
  auto& r7 = fx.container_proc(1, "cont-g");

  detector.announce(r0, 0);
  detector.announce(r1, 1);
  detector.announce(r2, 2);
  detector.announce(r3, 3);
  detector.announce(r4, 4);
  detector.announce(r5, 5);
  detector.announce(r6, 6);
  detector.announce(r7, 7);

  const auto host1_row = detector.co_resident_row(r0);
  EXPECT_EQ(host1_row, (std::vector<std::uint8_t>{1, 1, 0, 0, 1, 1, 0, 0}));
  const auto host2_row = detector.co_resident_row(r6);
  EXPECT_EQ(host2_row, (std::vector<std::uint8_t>{0, 0, 1, 1, 0, 0, 1, 1}));

  EXPECT_EQ(detector.local_ranks(r5), (std::vector<int>{0, 1, 4, 5}));
  EXPECT_EQ(detector.local_ranks(r2), (std::vector<int>{2, 3, 6, 7}));
}

TEST(Locality, PrivateIpcNamespaceSeesOnlyItself) {
  Fixture fx;
  ContainerLocalityDetector detector("iso", 3);
  auto& a = fx.container_proc(0, "shared-a", true);
  auto& b = fx.container_proc(0, "isolated", false);
  auto& c = fx.container_proc(0, "shared-c", true);
  detector.announce(a, 0);
  detector.announce(b, 1);
  detector.announce(c, 2);
  EXPECT_EQ(detector.local_ranks(a), (std::vector<int>{0, 2}));
  EXPECT_EQ(detector.local_ranks(b), (std::vector<int>{1}));
}

TEST(Locality, NativeAndSharedContainersSeeEachOther) {
  // A native process and a --ipc=host container share the host list.
  Fixture fx;
  ContainerLocalityDetector detector("mix", 2);
  auto& native = fx.native_proc(0);
  auto& cont = fx.container_proc(0, "cont-x", true);
  detector.announce(native, 0);
  detector.announce(cont, 1);
  EXPECT_EQ(detector.local_ranks(native), (std::vector<int>{0, 1}));
  EXPECT_EQ(detector.local_ranks(cont), (std::vector<int>{0, 1}));
}

TEST(Locality, JobTagsIsolateConcurrentJobs) {
  Fixture fx;
  auto& proc = fx.native_proc(0);
  ContainerLocalityDetector job_a("job-a", 4);
  ContainerLocalityDetector job_b("job-b", 4);
  job_a.announce(proc, 2);
  EXPECT_EQ(job_a.local_ranks(proc), (std::vector<int>{2}));
  EXPECT_TRUE(job_b.local_ranks(proc).empty());
}

TEST(Locality, ListUsesOneBytePerRank) {
  // The paper's scalability argument: a one-million-rank job needs a 1 MB
  // list. Verify the segment size is exactly nranks bytes.
  Fixture fx;
  auto& proc = fx.native_proc(0);
  ContainerLocalityDetector detector("size", 1000);
  detector.announce(proc, 0);
  const auto segment = proc.host().shm().find(
      proc.namespaces().get(osl::NamespaceType::Ipc), detector.segment_name());
  ASSERT_NE(segment, nullptr);
  EXPECT_EQ(segment->size(), 1000u);
}

TEST(Locality, DetectionCostScalesGently) {
  ContainerLocalityDetector small("s", 16);
  ContainerLocalityDetector large("l", 1'000'000);
  EXPECT_LT(small.detection_cost(), 1.0);
  EXPECT_LT(large.detection_cost(), 100.0);  // ~63 us for a million ranks
  EXPECT_GT(large.detection_cost(), small.detection_cost());
}

TEST(Locality, AnnounceValidatesRank) {
  Fixture fx;
  auto& proc = fx.native_proc(0);
  ContainerLocalityDetector detector("v", 4);
  EXPECT_THROW(detector.announce(proc, 4), Error);
  EXPECT_THROW(detector.announce(proc, -1), Error);
}

}  // namespace
}  // namespace cbmpi::mpi
