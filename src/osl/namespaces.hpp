// Simulated Linux namespaces.
//
// Containers isolate processes by giving them fresh namespace ids; sharing a
// namespace with the host (docker run --ipc=host --pid=host) means reusing the
// host's id. Only the namespace types that drive the paper's behaviour are
// modelled:
//   * UTS — each container gets a unique hostname, which is what breaks the
//     default MPI runtime's hostname-based locality detection;
//   * IPC — shared-memory segments are only visible within one IPC namespace,
//     so the container list (and SHM channel queues) require --ipc=host;
//   * PID — CMA (process_vm_readv) requires the peer to be addressable in the
//     caller's PID namespace, so the CMA channel requires --pid=host;
//   * NET — carried for completeness (network isolation does not matter to
//     the HCA path because the device is accessed via --privileged).
#pragma once

#include <array>
#include <cstdint>

namespace cbmpi::osl {

enum class NamespaceType : std::uint8_t { Pid = 0, Ipc = 1, Uts = 2, Net = 3 };

inline constexpr std::size_t kNamespaceTypes = 4;

struct NamespaceId {
  std::uint64_t value = 0;

  friend bool operator==(const NamespaceId&, const NamespaceId&) = default;
};

const char* to_string(NamespaceType type);

/// The namespace membership of one process (or one container template).
class NamespaceSet {
 public:
  NamespaceId get(NamespaceType type) const {
    return ids_[static_cast<std::size_t>(type)];
  }

  void set(NamespaceType type, NamespaceId id) {
    ids_[static_cast<std::size_t>(type)] = id;
  }

  bool shares(NamespaceType type, const NamespaceSet& other) const {
    return get(type) == other.get(type);
  }

  friend bool operator==(const NamespaceSet&, const NamespaceSet&) = default;

 private:
  std::array<NamespaceId, kNamespaceTypes> ids_{};
};

}  // namespace cbmpi::osl
