// Scale tests: the runtime must handle the paper's full configuration
// (256 ranks in 64 containers on 16 hosts) functionally and deterministically.
// These are the slowest tests in the suite (a few seconds total on one core).
#include <gtest/gtest.h>

#include "apps/graph500/bfs.hpp"
#include "mpi/locality.hpp"
#include "mpi/runtime.hpp"

namespace cbmpi {
namespace {

using container::DeploymentSpec;
using fabric::ChannelKind;
using fabric::LocalityPolicy;
using mpi::JobConfig;

JobConfig paper_scale(LocalityPolicy policy) {
  JobConfig cfg;
  // The paper's Fig. 10/12 deployment: 16 hosts x 4 containers x 16 procs.
  cfg.deployment = DeploymentSpec::containers(16, 4, 16);
  cfg.policy = policy;
  return cfg;
}

TEST(Scale, CollectivesCorrectAt256Ranks) {
  mpi::run_job(paper_scale(LocalityPolicy::ContainerAware), [](mpi::Process& p) {
    ASSERT_EQ(p.size(), 256);
    const auto sum =
        p.world().allreduce_value<std::int64_t>(p.rank(), mpi::ReduceOp::Sum);
    ASSERT_EQ(sum, 256LL * 255 / 2);

    std::vector<std::int32_t> all(256, -1);
    const std::int32_t mine = p.rank() * 3;
    p.world().allgather(std::span<const std::int32_t>(&mine, 1),
                        std::span<std::int32_t>(all));
    for (int r = 0; r < 256; ++r) ASSERT_EQ(all[static_cast<std::size_t>(r)], r * 3);

    std::vector<std::uint8_t> payload(1024);
    p.world().bcast(std::span<std::uint8_t>(payload), 255);
    p.world().barrier();
  });
}

TEST(Scale, LocalityGroupsAt256Ranks) {
  mpi::run_job(paper_scale(LocalityPolicy::ContainerAware), [](mpi::Process& p) {
    const auto& groups = p.world().locality_groups();
    ASSERT_EQ(groups.group_size, 16);       // whole host co-resident
    ASSERT_EQ(groups.leaders.size(), 16u);  // one leader per host
    ASSERT_TRUE(groups.uniform);
    ASSERT_TRUE(groups.contiguous);
  });
  mpi::run_job(paper_scale(LocalityPolicy::HostnameBased), [](mpi::Process& p) {
    const auto& groups = p.world().locality_groups();
    ASSERT_EQ(groups.group_size, 4);        // container = 4 ranks
    ASSERT_EQ(groups.leaders.size(), 64u);  // one leader per container
  });
}

TEST(Scale, ChannelSplitAt256Ranks) {
  // Neighbour ring over all 256 ranks: under the aware policy, only the 16
  // host-boundary hops ride the HCA.
  const auto result = mpi::run_job(
      paper_scale(LocalityPolicy::ContainerAware), [](mpi::Process& p) {
        std::vector<std::byte> out(512), in(512);
        const int right = (p.rank() + 1) % p.size();
        const int left = (p.rank() + p.size() - 1) % p.size();
        p.world().sendrecv(std::span<const std::byte>(out), right,
                           std::span<std::byte>(in), left, 1);
      });
  EXPECT_EQ(result.profile.total.channel_ops(ChannelKind::Hca), 16u);
  EXPECT_EQ(result.profile.total.channel_ops(ChannelKind::Shm), 240u);
}

TEST(Scale, Graph500At128RanksValidates) {
  JobConfig cfg;
  cfg.deployment = DeploymentSpec::containers(8, 4, 16);  // 128 ranks
  cfg.policy = LocalityPolicy::ContainerAware;
  mpi::run_job(cfg, [](mpi::Process& p) {
    const apps::graph500::EdgeListParams params{12, 8, 5};
    const auto graph = apps::graph500::build_graph(p, params);
    const auto root = apps::graph500::choose_roots(params, 1).front();
    const auto result = apps::graph500::run_bfs(p, graph, root);
    ASSERT_GT(result.visited, 100u);
  });
}

TEST(Scale, DetectionCostStaysTiny) {
  // Init-time detection at 256 ranks must be microseconds, not milliseconds.
  mpi::ContainerLocalityDetector detector("scale", 256);
  EXPECT_LT(detector.detection_cost(), 1.0);
}

}  // namespace
}  // namespace cbmpi
