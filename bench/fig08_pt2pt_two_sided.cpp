// Figure 8: two-sided point-to-point performance between two containers on a
// single host — (a) latency, (b) bandwidth, (c) bi-directional bandwidth —
// for intra-socket and inter-socket placements, comparing the default
// library (Cont-*-Def), the proposed design (Cont-*-Opt) and native.
//
// Expected shape (paper): Opt improves on Def by up to 79% / 191% / 407%
// (latency / bw / bibw) and sits within a few percent of native (e.g. 1 KiB
// intra-socket latency 2.26 us Def vs 0.47 us Opt vs 0.44 us native).
#include "bench_util.hpp"

#include "apps/osu/microbench.hpp"
#include "sim/trace_export.hpp"

using namespace cbmpi;
using namespace cbmpi::bench;

namespace {

enum class Metric { Latency, Bandwidth, BiBandwidth };

struct Measurement {
  double value = 0.0;
  mpi::JobResult result;
};

Measurement measure(const mpi::JobConfig& config, Metric metric, Bytes size,
                    int iters) {
  apps::osu::PairOptions pair;
  pair.iterations = iters;
  Measurement m;
  m.result = mpi::run_job(config, [&](mpi::Process& p) {
    double v = 0.0;
    switch (metric) {
      case Metric::Latency: v = apps::osu::pt2pt_latency(p, size, pair); break;
      case Metric::Bandwidth: v = apps::osu::pt2pt_bandwidth(p, size, pair); break;
      case Metric::BiBandwidth:
        v = apps::osu::pt2pt_bi_bandwidth(p, size, pair);
        break;
    }
    if (p.rank() == 0) m.value = v;
  });
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const auto max_size = static_cast<Bytes>(
      opts.get_int("max-size", static_cast<std::int64_t>(1_MiB), "largest message"));
  const int iters = static_cast<int>(opts.get_int("iters", 8, "iterations per point"));
  const std::uint64_t seed = declare_seed(opts);
  const std::string json_file = declare_json(opts);
  const std::string trace_file = opts.get(
      "trace-out", "", "write a chrome://tracing JSON of one run to this file");
  if (opts.finish("Figure 8: two-sided pt2pt latency/bw/bibw, Def vs Opt vs Native"))
    return 0;

  print_banner("Figure 8", "two-sided point-to-point, 2 containers on 1 host",
               "Opt gains up to 79%/191%/407% over Def (lat/bw/bibw); Opt "
               "within a few % of native");

  struct Panel {
    const char* name;
    Metric metric;
  };
  const Panel panels[] = {{"(a) latency (us)", Metric::Latency},
                          {"(b) bandwidth (MB/s)", Metric::Bandwidth},
                          {"(c) bi-directional bandwidth (MB/s)", Metric::BiBandwidth}};
  const container::SocketPolicy placements[] = {
      container::SocketPolicy::SameSocket, container::SocketPolicy::DistinctSockets};
  const char* placement_names[] = {"intra-socket", "inter-socket"};

  double best_lat_gain = 0, best_bw_gain = 0, best_bibw_gain = 0;
  double lat1k_def = 0, lat1k_opt = 0, lat1k_native = 0;
  JsonRows json("fig08_pt2pt_two_sided", "1 host x 2 containers x 2 procs", seed);

  for (const auto& panel : panels) {
    for (int pl = 0; pl < 2; ++pl) {
      auto modes = make_modes(1, 2, 2, placements[pl]);
      modes.def.seed = modes.opt.seed = modes.native.seed = seed;
      std::printf("-- %s, %s --\n", panel.name, placement_names[pl]);
      Table table({"size", "Cont-Def", "Cont-Opt", "Native", "Opt vs Def"});
      for (const Bytes size : size_sweep(1, max_size)) {
        const double def = measure(modes.def, panel.metric, size, iters).value;
        const double opt = measure(modes.opt, panel.metric, size, iters).value;
        const double native = measure(modes.native, panel.metric, size, iters).value;
        const bool is_lat = panel.metric == Metric::Latency;
        for (const auto& [mode, v] : {std::pair{"def", def}, {"opt", opt},
                                      {"native", native}})
          json.add(std::string(placement_names[pl]) + "/" + mode +
                       (is_lat ? "/latency"
                               : panel.metric == Metric::Bandwidth ? "/bw" : "/bibw"),
                   size, is_lat ? v : 0.0, is_lat ? 0.0 : v);
        double gain;
        if (panel.metric == Metric::Latency) {
          gain = percent_better(def, opt);
          best_lat_gain = std::max(best_lat_gain, gain);
          if (size == 1_KiB && pl == 0) {
            lat1k_def = def;
            lat1k_opt = opt;
            lat1k_native = native;
          }
        } else {
          gain = (opt - def) / def * 100.0;
          auto& best = panel.metric == Metric::Bandwidth ? best_bw_gain : best_bibw_gain;
          best = std::max(best, gain);
        }
        table.add_row({format_size(size), Table::num(def, 2), Table::num(opt, 2),
                       Table::num(native, 2), Table::num(gain, 0) + "%"});
      }
      table.print(std::cout);
      std::printf("\n");
    }
  }

  std::printf("1 KiB intra-socket latency: Def %.2f us, Opt %.2f us, Native %.2f us "
              "(paper: 2.26 / 0.47 / 0.44)\n",
              lat1k_def, lat1k_opt, lat1k_native);
  std::printf("max gains Opt over Def: latency %.0f%%, bw %.0f%%, bibw %.0f%% "
              "(paper: 79%% / 191%% / 407%%)\n",
              best_lat_gain, best_bw_gain, best_bibw_gain);
  print_shape_check(best_lat_gain > 50.0, "large latency gain");
  print_shape_check(best_bw_gain > 100.0, "large bandwidth gain");
  print_shape_check(best_bibw_gain >= best_bw_gain * 0.8,
                    "bi-directional gain at least comparable");
  print_shape_check(lat1k_opt < lat1k_native * 1.25,
                    "Opt within ~25% of native at 1 KiB");

  // Observability must be free in virtual time: rerun one point with the
  // full obs layer (metrics + spans + instant trace) attached and compare
  // job times. The acceptance bar is <5%; the design gives exactly 0%.
  {
    auto modes = make_modes(1, 2, 2, container::SocketPolicy::SameSocket);
    modes.opt.seed = seed;
    const auto plain = measure(modes.opt, Metric::Latency, 1_KiB, iters);
    modes.opt.observe = true;
    modes.opt.record_trace = true;
    const auto observed = measure(modes.opt, Metric::Latency, 1_KiB, iters);
    const double overhead =
        plain.result.job_time == 0.0
            ? 0.0
            : (observed.result.job_time - plain.result.job_time) /
                  plain.result.job_time;
    std::printf("observability overhead: %.2f%% virtual time (%zu spans, %zu "
                "metrics)\n",
                overhead * 100.0, observed.result.spans.size(),
                observed.result.metrics.counters.size() +
                    observed.result.metrics.gauges.size() +
                    observed.result.metrics.histograms.size());
    print_shape_check(overhead < 0.05, "observability costs <5% virtual time");
    if (!trace_file.empty()) {
      std::ofstream(trace_file, std::ios::binary)
          << sim::to_chrome_trace(observed.result.trace);
      std::printf("trace written to %s\n", trace_file.c_str());
    }
  }

  json.write(json_file);
  return 0;
}
