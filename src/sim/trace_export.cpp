#include "sim/trace_export.hpp"

#include <sstream>

#include "obs/json.hpp"

namespace cbmpi::sim {

void append_chrome_events(std::ostream& os, std::span<const TraceEvent> events,
                          bool& first) {
  for (const auto& event : events) {
    if (!first) os << ",";
    first = false;
    // Instant events ("ph":"i") at the event's virtual timestamp; the source
    // rank is the process row so per-rank timelines line up.
    os << "{\"name\":\"" << obs::escape_json(to_string(event.kind));
    if (!event.note.empty()) os << " [" << obs::escape_json(event.note) << "]";
    os << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":" << event.src
       << ",\"tid\":" << event.dst << ",\"ts\":" << event.at
       << ",\"args\":{\"bytes\":" << event.size << ",\"dst\":" << event.dst << "}}";
  }
}

std::string to_chrome_trace(std::span<const TraceEvent> events) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  append_chrome_events(os, events, first);
  os << "],\"displayTimeUnit\":\"ns\"}";
  return os.str();
}

}  // namespace cbmpi::sim
