// Internal per-job shared state: channels, selector, matchers, profiles.
//
// Created by the runtime before rank threads start; immutable topology-wise
// while the job runs. Matchers and profiles are per-rank; channels and the
// selector are shared (internally synchronized where needed).
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <vector>

#include "fabric/cma_channel.hpp"
#include "fabric/hca_channel.hpp"
#include "fabric/selector.hpp"
#include "fabric/shm_channel.hpp"
#include "fabric/tuning.hpp"
#include "faults/fault.hpp"
#include "mpi/coll/engine.hpp"
#include "mpi/matcher.hpp"
#include "net/fabric.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "prof/profile.hpp"
#include "sim/trace.hpp"
#include "topo/calibration.hpp"

namespace cbmpi::migrate {
class Coordinator;
}

namespace cbmpi::mpi {

class CheckpointStore;

/// Shared registry entry of one RMA window: each comm rank's exposed memory
/// plus a lock serializing concurrent remote accesses to it.
struct WindowInfo {
  Bytes elem_size = 1;
  std::vector<std::span<std::byte>> spans;          // indexed by comm rank
  std::vector<std::unique_ptr<std::mutex>> locks;   // per-op serialization
  /// Passive-target epoch locks (MPI_Win_lock): EXCLUSIVE takes the writer
  /// side, SHARED the reader side.
  std::vector<std::unique_ptr<std::shared_mutex>> epoch_locks;
};

struct JobState {
  const topo::MachineProfile* profile = nullptr;
  fabric::TuningParams tuning;

  /// Collective-algorithm engine; the runtime rebuilds it from the job's
  /// tuning table, TuningParams and placement before any rank starts.
  /// (Fully qualified: the member name shadows the `coll` namespace inside
  /// this class scope.)
  cbmpi::coll::Engine coll{cbmpi::coll::TuningTable::container_defaults(),
                           fabric::TuningParams{}, 1};

  std::unique_ptr<fabric::ShmChannel> shm;
  std::unique_ptr<fabric::CmaChannel> cma;
  std::unique_ptr<fabric::HcaChannel> hca;
  std::unique_ptr<fabric::ChannelSelector> selector;

  std::vector<std::unique_ptr<Matcher>> matchers;   // one per world rank
  std::vector<prof::RankProfile> rank_profiles;     // one per world rank

  sim::TraceRecorder* trace = nullptr;              // optional, may be null

  /// Fabric model (all null under FabricModel::Ideal — the flat cost model).
  /// `net_log` is set only during the record pass, `congestion` only during
  /// the apply pass; `rank_phys_host` maps each rank to its cluster-wide
  /// host id and is filled whenever a fabric is attached.
  const net::Fabric* fabric = nullptr;
  net::FlowLog* net_log = nullptr;
  const net::CongestionMap* congestion = nullptr;
  std::vector<int> rank_phys_host;
  bool net_probe = false;  ///< true while the record pass runs

  /// Observability (JobConfig::observe): both null when disabled, so hot
  /// paths pay a single pointer test. Metrics handles are resolved once per
  /// engine; spans carry virtual-time intervals only.
  obs::MetricsRegistry* metrics = nullptr;
  obs::SpanRecorder* spans = nullptr;

  /// Fault injection (null when the job's FaultPlan is empty — the common
  /// case — so the hot paths skip every injection check).
  const faults::FaultInjector* faults = nullptr;
  faults::FaultLog* fault_log = nullptr;            // non-null iff faults set

  /// Crash schedule (empty when no crash-class faults are planned): per rank,
  /// the virtual time its crash fires (infinity = survives), what kind of
  /// unit failure it is, and the rank's (physical) host for the CrashInfo.
  /// Computed once from the placement before rank threads start; each rank
  /// checks its own entry at op boundaries, so detection is deterministic.
  std::vector<Micros> crash_at;
  std::vector<faults::FaultKind> crash_kind;
  std::vector<int> crash_host;

  /// Coordinated checkpoint coordinator (null when checkpointing is off and
  /// the job is not a restore — Process::checkpoint is then a free no-op).
  CheckpointStore* checkpoint = nullptr;

  /// Live-migration quiesce coordinator (JobConfig::quiesce pass-through;
  /// null on every ordinary run).
  migrate::Coordinator* quiesce = nullptr;

  std::mutex windows_mutex;
  std::map<std::uint64_t, std::shared_ptr<WindowInfo>> windows;

  int nranks = 0;
  std::uint64_t seed = 0;

  /// Set when any rank raised; blocking waits observe it and abort too, so a
  /// failing rank cannot deadlock the job.
  std::atomic<bool> aborted{false};

  Matcher& matcher(int world_rank) {
    return *matchers[static_cast<std::size_t>(world_rank)];
  }
  prof::RankProfile& rank_profile(int world_rank) {
    return rank_profiles[static_cast<std::size_t>(world_rank)];
  }
};

}  // namespace cbmpi::mpi
