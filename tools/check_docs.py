#!/usr/bin/env python3
"""Documentation consistency checks, run by the CI `docs` job.

1. Every relative markdown link in the core docs resolves to an existing
   file (anchors and external http(s)/mailto links are skipped).
2. Every directory under src/ is documented in docs/ARCHITECTURE.md.
3. docs/TUNING.md stays in sync with the knobs the code registers: every
   cbmpirun flag and every CBMPI_* env var read anywhere in src/ or tools/
   must be documented, and every flag/env var the doc mentions must still
   exist (no stale rows).
4. Build wiring is consistent: every src/ subdirectory with .cpp files has
   a CMakeLists.txt and an add_subdirectory entry in src/CMakeLists.txt
   (header-only directories, e.g. src/pgas, are exempt from build wiring
   but still need the ARCHITECTURE.md coverage of check 2), and every
   add_subdirectory entry points at a directory that still exists.

Exit status is the number of problems found; each problem is printed as
`file: message` so editors can jump to it.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DOCS = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "docs/ARCHITECTURE.md",
    "docs/TUNING.md",
]

TUNING_DOC = "docs/TUNING.md"

# opts.get("name", ...) / get_int / get_double / get_flag — the name may sit
# on the line after the open paren, so match across whitespace.
FLAG_REG_RE = re.compile(
    r'opts\.get(?:_int|_double|_flag)?\(\s*"([a-z0-9-]+)"')
ENV_VAR_RE = re.compile(r'"(CBMPI_[A-Z0-9_]+)"')
DOC_FLAG_RE = re.compile(r"`--([a-z0-9-]+)(?:=[^`]*)?`")
DOC_ENV_RE = re.compile(r"`(CBMPI_[A-Z0-9_]+)`")

# [text](target) — excludes images' leading "!" handling (images are links
# to files too, so check them the same way).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_FENCE_RE = re.compile(r"^\s*(```|~~~)")


def strip_code_blocks(lines):
    """Yields (lineno, line) for lines outside fenced code blocks."""
    in_fence = False
    for lineno, line in enumerate(lines, start=1):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if not in_fence:
            yield lineno, line


def check_links(doc, problems):
    path = os.path.join(REPO, doc)
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()
    for lineno, line in strip_code_blocks(lines):
        for target in LINK_RE.findall(line):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            rel = target.split("#", 1)[0]  # drop in-page anchor
            if not rel:
                continue
            resolved = os.path.normpath(os.path.join(os.path.dirname(path), rel))
            if not os.path.exists(resolved):
                problems.append(f"{doc}:{lineno}: broken link '{target}'")


def check_architecture_covers_src(problems):
    arch_doc = "docs/ARCHITECTURE.md"
    with open(os.path.join(REPO, arch_doc), encoding="utf-8") as f:
        arch = f.read()
    src = os.path.join(REPO, "src")
    for entry in sorted(os.listdir(src)):
        if not os.path.isdir(os.path.join(src, entry)):
            continue
        if not re.search(rf"src/{re.escape(entry)}\b", arch):
            problems.append(
                f"{arch_doc}: src/{entry} is not documented "
                f"(expected a 'src/{entry}' mention)")


def check_build_coverage(problems):
    """Every src/<dir> holding .cpp sources must be wired into the build:
    its own CMakeLists.txt plus an add_subdirectory(<dir>) in
    src/CMakeLists.txt. Header-only directories need no wiring (the library
    target never compiles them), and stale add_subdirectory entries for
    removed directories are flagged too."""
    src = os.path.join(REPO, "src")
    with open(os.path.join(src, "CMakeLists.txt"), encoding="utf-8") as f:
        wired = set(re.findall(r"add_subdirectory\(\s*([A-Za-z0-9_./-]+)\s*\)",
                               f.read()))
    for entry in sorted(os.listdir(src)):
        subdir = os.path.join(src, entry)
        if not os.path.isdir(subdir):
            continue
        has_cpp = any(name.endswith(".cpp") for name in os.listdir(subdir))
        if not has_cpp:
            continue  # header-only (e.g. src/pgas): nothing to compile
        if not os.path.exists(os.path.join(subdir, "CMakeLists.txt")):
            problems.append(
                f"src/{entry}: has .cpp sources but no CMakeLists.txt")
        if entry not in wired:
            problems.append(
                f"src/CMakeLists.txt: src/{entry} has .cpp sources but no "
                f"add_subdirectory({entry}) entry — its code never builds")
    for entry in sorted(wired):
        if not os.path.isdir(os.path.join(src, entry)):
            problems.append(
                f"src/CMakeLists.txt: add_subdirectory({entry}) points at a "
                f"directory that does not exist (stale)")


def registered_env_vars():
    """CBMPI_* string literals anywhere in src/ or tools/ C++ sources."""
    found = set()
    for root in ("src", "tools"):
        for dirpath, _dirs, files in os.walk(os.path.join(REPO, root)):
            for name in files:
                if not name.endswith((".cpp", ".hpp")):
                    continue
                with open(os.path.join(dirpath, name), encoding="utf-8") as f:
                    found.update(ENV_VAR_RE.findall(f.read()))
    return found


def check_tuning_knobs(problems):
    with open(os.path.join(REPO, "tools", "cbmpirun.cpp"),
              encoding="utf-8") as f:
        flags = set(FLAG_REG_RE.findall(f.read()))
    env_vars = registered_env_vars()
    with open(os.path.join(REPO, TUNING_DOC), encoding="utf-8") as f:
        doc = f.read()
    doc_flags = set(DOC_FLAG_RE.findall(doc))
    doc_env = set(DOC_ENV_RE.findall(doc))

    for flag in sorted(flags - doc_flags):
        problems.append(
            f"{TUNING_DOC}: cbmpirun flag --{flag} is undocumented")
    for flag in sorted(doc_flags - flags):
        problems.append(
            f"{TUNING_DOC}: documents --{flag}, which cbmpirun does not "
            "register (stale)")
    for var in sorted(env_vars - doc_env):
        problems.append(f"{TUNING_DOC}: env var {var} is undocumented")
    for var in sorted(doc_env - env_vars):
        problems.append(
            f"{TUNING_DOC}: documents {var}, which nothing reads (stale)")
    return len(flags), len(env_vars)


def main():
    problems = []
    for doc in DOCS:
        if not os.path.exists(os.path.join(REPO, doc)):
            problems.append(f"{doc}: missing (listed in tools/check_docs.py)")
            continue
        check_links(doc, problems)
    check_architecture_covers_src(problems)
    check_build_coverage(problems)
    nflags, nenv = check_tuning_knobs(problems)
    for problem in problems:
        print(problem)
    if not problems:
        print(f"docs OK: {len(DOCS)} files, all links resolve, "
              "all src/ subsystems documented and build-wired, "
              f"{nflags} flags + {nenv} env vars in sync with {TUNING_DOC}")
    return len(problems)


if __name__ == "__main__":
    sys.exit(main())
