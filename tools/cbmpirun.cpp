// cbmpirun — the mpirun-like front end for the simulated cluster.
//
// Launches any bundled application under a fully described deployment, e.g.:
//
//   cbmpirun --app=graph500 --hosts=4 --containers-per-host=4
//            --procs-per-host=8 --policy=aware --scale=15
//   cbmpirun --app=cg --hosts=2 --procs-per-host=8 --policy=default
//            --isolation=vm --ivshmem
//   cbmpirun --app=osu-latency --containers-per-host=2 --procs-per-host=2
//
// or schedules a whole queue of jobs instead of launching one:
//
//   cbmpirun --schedule=locality --hosts=4 --jobs=12
//
// Prints the application's own result plus the job's mpiP-style profile, so
// it doubles as the interactive exploration tool for the whole system.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "apps/graph500/bfs.hpp"
#include "apps/graph500/validate.hpp"
#include "apps/npb/npb.hpp"
#include "apps/osu/microbench.hpp"
#include "common/options.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "mpi/runtime.hpp"
#include "net/fabric.hpp"
#include "obs/report.hpp"
#include "sched/scheduler.hpp"

namespace {

using namespace cbmpi;

struct LaunchPlan {
  mpi::JobConfig config;
  std::string app;
  int scale = 13;
  Bytes message_size = 1_KiB;
  int iterations = 10;
  bool show_profile = false;
  bool show_metrics = false;
  bool analyze = false;
  std::string policy_name;
  std::string report_file;  ///< --report: run-report JSON destination
  std::string trace_file;   ///< --trace-out: Perfetto trace destination
};

void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  CBMPI_REQUIRE(out.good(), "cannot open output file: ", path);
  out << text;
  CBMPI_REQUIRE(out.good(), "failed writing output file: ", path);
}

/// Observability outputs common to every single-job launch: the run report,
/// the Perfetto trace, and the human metrics summary.
void emit_outputs(const LaunchPlan& plan, const mpi::JobResult& result) {
  if (result.net.enabled)
    std::printf("fabric %s: %llu inter-host transfers, %llu congested, max "
                "slowdown x%.2f, peak link util %.0f%%\n",
                net::to_string(result.net.model),
                static_cast<unsigned long long>(result.net.transfers),
                static_cast<unsigned long long>(result.net.congested_transfers),
                result.net.max_factor, result.net.max_peak_util * 100.0);
  obs::ReportContext ctx;
  ctx.app = plan.app;
  ctx.deployment = plan.config.deployment.label();
  ctx.policy = plan.policy_name;
  ctx.seed = plan.config.seed;
  obs::analysis::Analysis analysis;
  if (plan.analyze) {
    analysis = obs::analysis::analyze(
        result.spans, static_cast<int>(result.rank_times.size()),
        result.rank_times);
    ctx.analysis = &analysis;
    std::fputs(obs::analysis::analysis_summary(analysis).c_str(), stderr);
  }
  if (!plan.report_file.empty()) {
    write_text_file(plan.report_file, obs::run_report_json(ctx, result));
    std::printf("run report written to %s\n", plan.report_file.c_str());
  }
  if (!plan.trace_file.empty()) {
    write_text_file(plan.trace_file,
                    obs::to_perfetto(result.spans, result.trace, ctx.analysis));
    std::printf("trace written to %s (open in ui.perfetto.dev)\n",
                plan.trace_file.c_str());
  }
  if (plan.show_metrics) std::fputs(obs::metrics_summary(result.metrics).c_str(), stdout);
}

int run_graph500(const LaunchPlan& plan) {
  const apps::graph500::EdgeListParams params{plan.scale, 16, plan.config.seed};
  const auto roots = apps::graph500::choose_roots(params, 2);
  bool ok = true;
  const auto result = mpi::run_job(plan.config, [&](mpi::Process& p) {
    const auto graph = apps::graph500::build_graph(p, params);
    for (const auto root : roots) {
      const auto bfs = apps::graph500::run_bfs(p, graph, root);
      const auto report = apps::graph500::validate_bfs(p, graph, bfs);
      // The fabric model's record pass runs the body twice; only the apply
      // pass's lines should reach the terminal.
      if (p.rank() == 0 && !p.fabric_probe()) {
        std::printf("BFS root %llu: %llu vertices, %d levels, %.3f ms — %s\n",
                    static_cast<unsigned long long>(root),
                    static_cast<unsigned long long>(bfs.visited), bfs.levels,
                    to_millis(bfs.time), report.ok ? "VALID" : "INVALID");
        ok = ok && report.ok;
      }
    }
  });
  if (plan.show_profile) std::fputs(result.profile.report().c_str(), stdout);
  emit_outputs(plan, result);
  std::printf("job virtual time: %.3f ms\n", to_millis(result.job_time));
  return ok ? 0 : 1;
}

int run_npb(const LaunchPlan& plan) {
  apps::npb::KernelResult kernel_result;
  const auto result = mpi::run_job(plan.config, [&](mpi::Process& p) {
    apps::npb::KernelResult r;
    const int nranks = p.size();
    if (plan.app == "ep") {
      r = apps::npb::run_ep(p);
    } else if (plan.app == "cg") {
      apps::npb::CgParams params;
      params.grid = std::max(64, nranks);
      r = apps::npb::run_cg(p, params);
    } else if (plan.app == "mg") {
      apps::npb::MgParams params;
      params.nz = std::max(32, 2 * nranks);
      r = apps::npb::run_mg(p, params);
    } else if (plan.app == "ft") {
      apps::npb::FtParams params;
      params.nx = params.nz = std::max(32, nranks);
      params.ny = 8;
      r = apps::npb::run_ft(p, params);
    } else if (plan.app == "lu") {
      apps::npb::LuParams params;
      params.grid = std::max(32, nranks * 4);
      r = apps::npb::run_lu(p, params);
    } else if (plan.app == "is") {
      r = apps::npb::run_is(p);
    }
    if (p.rank() == 0) kernel_result = r;
  });
  std::printf("%s: %.3f ms, checksum %.6g — %s\n", kernel_result.name.c_str(),
              to_millis(kernel_result.time), kernel_result.checksum,
              kernel_result.verified ? "VERIFIED" : "FAILED");
  if (plan.show_profile) std::fputs(result.profile.report().c_str(), stdout);
  emit_outputs(plan, result);
  return kernel_result.verified ? 0 : 1;
}

int run_osu(const LaunchPlan& plan) {
  double value = 0.0;
  const auto result = mpi::run_job(plan.config, [&](mpi::Process& p) {
    apps::osu::PairOptions osu_opts;
    osu_opts.iterations = plan.iterations;
    double v = 0.0;
    if (plan.app == "osu-latency")
      v = apps::osu::pt2pt_latency(p, plan.message_size, osu_opts);
    else if (plan.app == "osu-bw")
      v = apps::osu::pt2pt_bandwidth(p, plan.message_size, osu_opts);
    else if (plan.app == "osu-allreduce")
      v = apps::osu::collective_latency(p, apps::osu::Collective::Allreduce,
                                        plan.message_size, osu_opts);
    if (p.rank() == 0) value = v;
  });
  const char* unit = plan.app == "osu-bw" ? "MB/s" : "us";
  std::printf("%s @ %s: %.3f %s\n", plan.app.c_str(),
              format_size(plan.message_size).c_str(), value, unit);
  if (plan.show_profile) std::fputs(result.profile.report().c_str(), stdout);
  emit_outputs(plan, result);
  return 0;
}

/// Crash/recovery knobs forwarded into schedule mode (all off by default).
struct RecoveryOptions {
  double crash_rate = 0.0;       ///< per-rank crash probability per job
  double host_crash_rate = 0.0;  ///< per-host crash probability per job
  Micros checkpoint_interval = 0.0;
  int max_restarts = 3;
  int blacklist_threshold = 3;
};

/// Live-migration knobs forwarded into schedule mode (off by default).
struct MigrateOptions {
  std::string policy = "off";  ///< off | defrag | evacuate | colocate
  double cost_margin = 1.0;    ///< win must beat cost x margin
  int precopy_rounds = 2;      ///< pre-copy iterations before stop-and-copy
};

/// Multi-job mode: submit a deterministic mix of registry jobs to the
/// cluster scheduler and report the per-job schedule plus cluster metrics.
int run_schedule(const std::string& policy_name, int hosts, int jobs,
                 bool backfill, std::uint64_t seed,
                 const std::string& report_file, const RecoveryOptions& rec,
                 const MigrateOptions& mig, const net::FabricConfig& fabric,
                 bool analyze) {
  const auto policy = sched::parse_policy(policy_name);
  if (!policy) {
    std::fprintf(stderr,
                 "unknown --schedule policy '%s'; use packed | spread | "
                 "random | locality | topology\n",
                 policy_name.c_str());
    return 2;
  }

  sched::SchedulerConfig config;
  config.cluster_hosts = hosts;
  config.policy = *policy;
  config.backfill = backfill;
  config.seed = seed;
  config.checkpoint_interval = rec.checkpoint_interval;
  config.max_restarts = rec.max_restarts;
  config.blacklist_threshold = rec.blacklist_threshold;
  config.fabric = fabric;
  config.observe = analyze;
  try {
    config.migrate_policy = migrate::parse_policy(mig.policy);
  } catch (const Error& e) {
    std::fprintf(stderr, "cbmpirun: %s\n", e.what());
    return 2;
  }
  config.migrate_cost.cost_margin = mig.cost_margin;
  config.migrate_cost.precopy_rounds = mig.precopy_rounds;
  sched::Scheduler scheduler(config);

  const int cores = hosts * config.host_shape.total_cores();
  const auto bodies = mpi::JobBodyRegistry::instance().names();
  Xoshiro256 rng(mix64(seed));
  Micros t = 0.0;
  for (int i = 0; i < jobs; ++i) {
    sched::JobSpec job;
    job.body = bodies[static_cast<std::size_t>(i) % bodies.size()];
    job.ranks = i > 0 && i % 5 == 0
                    ? std::max(4, cores / 2)
                    : 4 + 2 * static_cast<int>(rng.below(3));
    job.ranks_per_container = 4;
    job.params.rounds = 2 + static_cast<int>(rng.below(3));
    job.submit_time = t;
    job.est_runtime = millis(50.0);
    job.faults.rank_crash_prob = rec.crash_rate;
    job.faults.host_crash_prob = rec.host_crash_rate;
    if (rec.crash_rate > 0.0 || rec.host_crash_rate > 0.0)
      job.faults.crash_horizon = 100.0;
    if (i >= jobs / 3) t += 10.0 + 10.0 * static_cast<double>(rng.below(4));
    scheduler.submit(job);
  }

  std::printf("scheduling %d jobs on %d hosts (%d cores), policy %s%s, seed "
              "%llu\n\n",
              jobs, hosts, cores, sched::to_string(*policy),
              backfill ? " + backfill" : "", static_cast<unsigned long long>(seed));

  const bool recovery_on = rec.crash_rate > 0.0 || rec.host_crash_rate > 0.0;
  std::vector<std::string> columns = {"job", "body", "ranks", "hosts",
                                      "submit (us)", "start (us)", "end (us)",
                                      "wait (us)", "intra-host", "backfilled"};
  if (recovery_on) {
    columns.push_back("att");
    columns.push_back("outcome");
  }
  Table table(columns);
  for (const auto& job : scheduler.run()) {
    std::vector<std::string> row = {
        job.spec.name, job.spec.body, std::to_string(job.spec.ranks),
        std::to_string(job.placement.hosts_used),
        Table::num(job.spec.submit_time, 1), Table::num(job.start_time, 1),
        Table::num(job.end_time, 1), Table::num(job.queue_wait(), 1),
        Table::num(job.placement.intra_host_share() * 100.0, 0) + "%",
        job.backfilled ? "yes" : ""};
    if (recovery_on) {
      row.push_back(std::to_string(job.attempt));
      std::string outcome = sched::to_string(job.outcome);
      // Crash root cause, straight from the runtime's CrashInfo: the failing
      // rank and the virtual time (us into the attempt) it died.
      if (job.outcome != sched::JobOutcome::Completed && job.crash.rank >= 0)
        outcome += " (rank " + std::to_string(job.crash.rank) + " at t=" +
                   Table::num(job.crash.at, 1) + ")";
      row.push_back(outcome);
    }
    table.add_row(row);
  }
  table.print(std::cout);

  const auto& metrics = scheduler.metrics();
  std::printf("\nmakespan %.1f us — utilization %.1f%% — mean wait %.1f us "
              "(max %.1f) — %d backfilled\n",
              metrics.makespan, metrics.utilization * 100.0,
              metrics.mean_queue_wait, metrics.max_queue_wait,
              metrics.backfilled_jobs);
  std::printf("placement: %.1f%% of rank pairs intra-host — channel ops: "
              "%llu shm, %llu cma, %llu hca (%.1f%% local)\n",
              metrics.intra_host_pair_share() * 100.0,
              static_cast<unsigned long long>(metrics.shm_ops),
              static_cast<unsigned long long>(metrics.cma_ops),
              static_cast<unsigned long long>(metrics.hca_ops),
              metrics.local_op_share() * 100.0);
  if (recovery_on) {
    std::printf("recovery: %d crashes, %d requeues, %d resumed from "
                "checkpoint, %d checkpoints, %d failed, %d hosts blacklisted "
                "— %.1f us lost / %.1f us completed\n",
                metrics.crashes, metrics.requeues,
                metrics.restarts_from_checkpoint, metrics.checkpoints,
                metrics.jobs_failed, metrics.blacklisted_hosts,
                metrics.lost_work_us, metrics.completed_work_us);
    for (const auto& event : scheduler.blacklist_events())
      std::printf("host %d blacklisted at t=%.1f us after %d crashed "
                  "attempts\n",
                  event.host, event.at, event.crashes);
  }
  if (config.migrate_policy != migrate::MigrationPolicy::Off) {
    std::printf("migration (%s): %d proposed, %d rejected by the cost gate, "
                "%d executed — pause %.1f us, predicted win %.1f us vs cost "
                "%.1f us\n",
                migrate::to_string(config.migrate_policy),
                metrics.migrations_proposed, metrics.migrations_rejected,
                metrics.migrations_executed, metrics.migration_pause_us,
                metrics.migration_win_us, metrics.migration_cost_us);
  }
  std::map<std::string, obs::analysis::Analysis> job_analyses;
  if (analyze) {
    // Per-job critical paths: each job's spans live in their own virtual
    // timeline starting at 0, so each is analyzed independently.
    for (const auto& job : scheduler.jobs()) {
      if (job.result.rank_times.empty()) continue;
      auto analysis = obs::analysis::analyze(
          job.result.spans, static_cast<int>(job.result.rank_times.size()),
          job.result.rank_times);
      std::fprintf(stderr, "--- %s (%s, %d ranks) ---\n", job.spec.name.c_str(),
                   job.spec.body.c_str(), job.spec.ranks);
      std::fputs(obs::analysis::analysis_summary(analysis).c_str(), stderr);
      job_analyses.emplace(job.spec.name, std::move(analysis));
    }
  }
  if (!report_file.empty()) {
    obs::ReportContext ctx;
    ctx.app = "schedule";
    ctx.deployment = std::to_string(hosts) + " hosts";
    ctx.policy = policy_name;
    ctx.seed = seed;
    ctx.cluster = &metrics;
    if (analyze) ctx.job_analyses = &job_analyses;
    write_text_file(report_file, obs::schedule_report_json(ctx, scheduler));
    std::printf("schedule report written to %s\n", report_file.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  LaunchPlan plan;

  plan.app = opts.get("app", "graph500",
                      "graph500 | ep | cg | mg | ft | lu | is | osu-latency | "
                      "osu-bw | osu-allreduce");
  const int hosts = static_cast<int>(opts.get_int("hosts", 1, "number of hosts"));
  const int containers = static_cast<int>(
      opts.get_int("containers-per-host", 2, "containers per host (0 = native)"));
  const int procs = static_cast<int>(
      opts.get_int("procs-per-host", 8, "MPI processes per host"));
  const std::string policy =
      opts.get("policy", "aware", "aware (proposed) | default (hostname-based)");
  const std::string isolation =
      opts.get("isolation", "container", "container | vm");
  const bool ivshmem = opts.get_flag("ivshmem", "attach IVSHMEM (vm only)");
  const bool no_ipc = opts.get_flag("no-ipc-sharing", "drop --ipc=host");
  const bool no_pid = opts.get_flag("no-pid-sharing", "drop --pid=host");
  const bool no_cma = opts.get_flag("no-cma", "disable the CMA channel");
  const bool flat = opts.get_flag("flat-collectives", "disable 2-level collectives");
  const std::string tuning_file = opts.get(
      "tuning", "", "collective tuning file (see DESIGN.md §11 for the format)");
  const std::string fabric_spec = opts.get(
      "fabric", "ideal",
      "fabric model: ideal | flat | fattree[:k] (DESIGN.md §14)");
  const double link_bw = opts.get_double(
      "link-bw", 0.0, "fabric per-link bandwidth in Gb/s, 0 = profile default");
  const int vf_limit = static_cast<int>(opts.get_int(
      "vf-limit", 0,
      "SR-IOV VFs one host HCA schedules at full weight, 0 = unlimited"));
  const std::string reg_cache = opts.get(
      "reg-cache", "off",
      "pin-down cache capacity per rank (e.g. 64M), off = no registration model");
  const double reg_cost = opts.get_double(
      "reg-cost", 1.0, "scale on memory-registration costs (--reg-cache)");
  const std::string rndv_chunk = opts.get(
      "rndv-chunk", "512K",
      "rendezvous pipeline chunk size under --reg-cache (e.g. 512K)");
  plan.scale = static_cast<int>(opts.get_int("scale", 13, "graph500 scale"));
  plan.message_size = static_cast<Bytes>(
      opts.get_int("message-size", 1024, "osu-* message size in bytes"));
  plan.iterations = static_cast<int>(opts.get_int("iters", 10, "osu-* iterations"));
  plan.config.seed = static_cast<std::uint64_t>(opts.get_int("seed", 42, "job seed"));
  plan.show_profile = opts.get_flag("profile", "print the mpiP-style profile");
  plan.show_metrics = opts.get_flag("metrics", "print the metrics registry snapshot");
  plan.analyze = opts.get_flag(
      "analyze",
      "critical-path & wait-state analysis: blame table to stderr, 'analysis' "
      "report section, critical-path trace track (per job with --schedule)");
  plan.report_file =
      opts.get("report", "", "write the versioned run-report JSON to this file");
  plan.trace_file = opts.get(
      "trace-out", "", "write a Perfetto/chrome://tracing JSON to this file");
  const std::string schedule = opts.get(
      "schedule", "",
      "multi-job mode: packed | spread | random | locality | topology placement");
  const int jobs =
      static_cast<int>(opts.get_int("jobs", 12, "jobs to schedule (--schedule)"));
  const bool no_backfill =
      opts.get_flag("no-backfill", "pure FIFO, no EASY backfill (--schedule)");
  RecoveryOptions rec;
  rec.crash_rate = opts.get_double(
      "crash-rate", 0.0, "per-rank crash probability per job (--schedule)");
  rec.host_crash_rate = opts.get_double(
      "host-crash-rate", 0.0, "per-host crash probability per job (--schedule)");
  rec.checkpoint_interval = opts.get_double(
      "checkpoint-interval", 0.0,
      "coordinated checkpoint interval in virtual us, 0 = off (--schedule)");
  rec.max_restarts = static_cast<int>(opts.get_int(
      "max-restarts", 3, "requeue budget per crashed job (--schedule)"));
  rec.blacklist_threshold = static_cast<int>(opts.get_int(
      "blacklist-threshold", 3,
      "crashed attempts before a host is blacklisted, 0 = never (--schedule)"));
  MigrateOptions mig;
  mig.policy = opts.get(
      "migrate", "off",
      "live-migration policy: off | defrag | evacuate | colocate (--schedule)");
  mig.cost_margin = opts.get_double(
      "migrate-cost", 1.0,
      "cost-gate margin: locality win must exceed cost x this (--schedule)");
  mig.precopy_rounds = static_cast<int>(opts.get_int(
      "precopy-rounds", 2,
      "pre-copy iterations before the stop-and-copy pause (--schedule)"));
  if (opts.finish("cbmpirun — launch an application on the simulated "
                  "container/VM cluster"))
    return 0;

  net::FabricConfig fabric;
  try {
    fabric = net::FabricConfig::parse(fabric_spec);
  } catch (const Error& e) {
    std::fprintf(stderr, "cbmpirun: %s\n", e.what());
    return 2;
  }
  fabric.link_bw_gbps = link_bw;
  fabric.vf_limit = vf_limit;
  plan.config.fabric = fabric;

  if (!schedule.empty())
    return run_schedule(schedule, std::max(hosts, 2), jobs, !no_backfill,
                        plan.config.seed, plan.report_file, rec, mig, fabric,
                        plan.analyze);

  // Observability costs nothing in virtual time, so any output flag simply
  // switches it on; --trace-out additionally records the instant events.
  plan.config.observe = plan.show_metrics || plan.analyze ||
                        !plan.report_file.empty() || !plan.trace_file.empty();
  plan.config.record_trace = !plan.trace_file.empty();
  plan.policy_name = policy == "default" ? "default" : "aware";

  if (containers == 0) {
    plan.config.deployment = container::DeploymentSpec::native_hosts(hosts, procs);
  } else if (isolation == "vm") {
    plan.config.deployment =
        container::DeploymentSpec::virtual_machines(hosts, containers, procs, ivshmem);
  } else {
    plan.config.deployment =
        container::DeploymentSpec::containers(hosts, containers, procs);
    plan.config.deployment.share_host_ipc = !no_ipc;
    plan.config.deployment.share_host_pid = !no_pid;
  }
  plan.config.policy = policy == "default" ? fabric::LocalityPolicy::HostnameBased
                                           : fabric::LocalityPolicy::ContainerAware;
  plan.config.tuning.use_cma = !no_cma;
  plan.config.tuning.two_level_collectives = !flat;
  if (reg_cache != "off") {
    try {
      plan.config.tuning.reg_model = true;
      plan.config.tuning.reg_cache_bytes = parse_size(reg_cache);
      plan.config.tuning.reg_cost_scale = reg_cost;
      plan.config.tuning.rndv_chunk = parse_size(rndv_chunk);
    } catch (const Error& e) {
      std::fprintf(stderr, "cbmpirun: %s\n", e.what());
      return 2;
    }
    if (plan.config.tuning.rndv_chunk == 0) {
      std::fprintf(stderr, "cbmpirun: --rndv-chunk must be positive\n");
      return 2;
    }
  }
  if (!tuning_file.empty()) {
    // User entries append after the shipped container defaults, so a file
    // overrides exactly the (collective, size, ranks, cph) regions it names —
    // last match wins. CBMPI_*_ALGORITHM env pins still beat both.
    try {
      plan.config.coll_tuning.merge(coll::TuningTable::load_file(tuning_file));
    } catch (const Error& e) {
      std::fprintf(stderr, "cbmpirun: %s\n", e.what());
      return 2;
    }
  }

  std::printf("cbmpirun: %s on %s, %d ranks, %s runtime\n", plan.app.c_str(),
              plan.config.deployment.label().c_str(),
              plan.config.deployment.total_ranks(),
              policy == "default" ? "default (hostname-based)"
                                  : "locality-aware (proposed)");

  if (plan.app == "graph500") return run_graph500(plan);
  if (plan.app == "ep" || plan.app == "cg" || plan.app == "mg" ||
      plan.app == "ft" || plan.app == "lu" || plan.app == "is")
    return run_npb(plan);
  if (plan.app.rfind("osu-", 0) == 0) return run_osu(plan);
  std::fprintf(stderr, "unknown --app '%s'; try --help\n", plan.app.c_str());
  return 2;
}
