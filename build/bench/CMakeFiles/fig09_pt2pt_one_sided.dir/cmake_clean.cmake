file(REMOVE_RECURSE
  "CMakeFiles/fig09_pt2pt_one_sided.dir/fig09_pt2pt_one_sided.cpp.o"
  "CMakeFiles/fig09_pt2pt_one_sided.dir/fig09_pt2pt_one_sided.cpp.o.d"
  "fig09_pt2pt_one_sided"
  "fig09_pt2pt_one_sided.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_pt2pt_one_sided.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
