// Multi-job control plane vocabulary: what a user submits (JobSpec), what a
// placement achieved (PlacementStats), and what the scheduler reports per
// job (ScheduledJob) and per run (ClusterMetrics).
//
// The paper's result hinges on *where* containers land: co-resident ranks
// win only if the deployment puts them on the same host and the runtime
// detects it. A JobSpec therefore carries everything placement needs —
// rank count, container granularity, namespace flags, a *named* job body
// (serializable via mpi::JobBodyRegistry) and an optional traffic matrix —
// while the scheduler decides hosts and cores.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "fabric/selector.hpp"
#include "faults/fault.hpp"
#include "mpi/job_registry.hpp"
#include "mpi/runtime.hpp"
#include "topo/hardware.hpp"

namespace cbmpi::sched {

struct JobSpec {
  int id = -1;       ///< assigned by the scheduler at submit time
  std::string name;  ///< label for tables; defaults to "job<id>"

  int ranks = 1;                ///< one core per rank
  /// Container granularity: ranks per container on each host. 0 = native
  /// processes (no containers); k = containers of up to k ranks each.
  int ranks_per_container = 4;

  // Docker flags applied to every container of the job.
  bool privileged = true;
  bool share_host_ipc = true;
  bool share_host_pid = true;

  fabric::LocalityPolicy policy = fabric::LocalityPolicy::ContainerAware;

  /// Named app closure from mpi::JobBodyRegistry plus its knobs — the pair
  /// that makes the spec serializable (no std::function in a JobSpec).
  std::string body = "ring";
  mpi::JobBodyParams params{};

  int priority = 0;           ///< breaks submit-time ties; higher runs first
  Micros submit_time = 0.0;   ///< virtual submission time
  /// Walltime estimate driving backfill decisions only (the classic
  /// user-supplied estimate); actual runtime comes from executing the job.
  Micros est_runtime = millis(5.0);

  /// Communication-volume hint for the LocalityAware placer; overrides the
  /// body's registry hint (e.g. a measured matrix from a prior prof run).
  std::optional<mpi::TrafficMatrix> traffic;

  /// Fault plan forwarded into the job's runtime (PR 1 integration).
  faults::FaultPlan faults{};

  /// Coordinated-checkpoint interval forwarded into the runtime. < 0 (the
  /// default) inherits SchedulerConfig::checkpoint_interval; 0 disables
  /// checkpoints for this job; > 0 overrides.
  Micros checkpoint_interval = -1.0;

  // --- scheduler-managed recovery state (not user input) -------------------
  /// Which execution attempt this spec represents: 0 on first submission,
  /// bumped each time the scheduler requeues the job after a crash.
  int attempt = 0;
  /// Committed snapshot carried over from the crashed attempt; the runtime
  /// resumes the body from it (null = run from round 0).
  std::shared_ptr<const mpi::CheckpointData> restore;
};

/// What a concrete placement achieved, before the job even runs. Pair
/// classification mirrors the channel stack: same container -> SHM eligible;
/// same host, different container -> SHM/CMA *iff* namespaces are shared and
/// locality detection works; different hosts -> HCA, always.
struct PlacementStats {
  int hosts_used = 0;
  int intra_container_pairs = 0;
  int intra_host_pairs = 0;  ///< same host, includes intra-container
  int inter_host_pairs = 0;
  /// Traffic-hint weight kept co-resident / total weight (1.0 when the job
  /// has no communication).
  double local_traffic_share = 1.0;

  int total_pairs() const { return intra_host_pairs + inter_host_pairs; }
  double intra_host_share() const {
    return total_pairs() == 0
               ? 1.0
               : static_cast<double>(intra_host_pairs) / total_pairs();
  }
};

/// How one execution attempt ended.
enum class JobOutcome {
  Completed,  ///< ran to completion
  Crashed,    ///< a crash fault killed it; may have been requeued
  Failed,     ///< gave up: retry budget exhausted or unplaceable
};

inline const char* to_string(JobOutcome outcome) {
  switch (outcome) {
    case JobOutcome::Completed: return "completed";
    case JobOutcome::Crashed: return "crashed";
    case JobOutcome::Failed: return "failed";
  }
  return "?";
}

/// Per-attempt outcome record (a job that crashes and restarts contributes
/// one record per attempt, distinguished by `attempt`).
struct ScheduledJob {
  JobSpec spec;
  std::vector<topo::HostId> hosts;  ///< physical hosts used, ascending
  PlacementStats placement;
  bool backfilled = false;  ///< started ahead of a FIFO-earlier blocked job
  int attempt = 0;          ///< copy of spec.attempt, for reports
  JobOutcome outcome = JobOutcome::Completed;
  /// Crash root cause (meaningful when outcome == Crashed): failing rank,
  /// fault kind, physical host and virtual crash time within the attempt.
  faults::CrashInfo crash{};
  /// Virtual work (us, per rank) this attempt inherited from its
  /// predecessor's last committed checkpoint (0 for attempt 0).
  Micros restored_progress = 0.0;
  Micros start_time = 0.0;
  Micros end_time = 0.0;
  mpi::JobResult result;

  Micros queue_wait() const { return start_time - spec.submit_time; }
  Micros runtime() const { return end_time - start_time; }
};

/// Whole-run metrics over one scheduled workload.
struct ClusterMetrics {
  Micros makespan = 0.0;  ///< last completion minus first submission
  /// Claimed core-time / (cluster cores x makespan).
  double utilization = 0.0;
  Micros mean_queue_wait = 0.0;
  Micros max_queue_wait = 0.0;
  int backfilled_jobs = 0;

  // Placement-quality aggregates over all jobs.
  int intra_host_pairs = 0;
  int inter_host_pairs = 0;

  // Actual channel traffic summed over job profiles (Table-I style).
  std::uint64_t shm_ops = 0;
  std::uint64_t cma_ops = 0;
  std::uint64_t hca_ops = 0;

  // Recovery aggregates (the report v2 "recovery" section).
  int crashes = 0;                  ///< attempts killed by a crash fault
  int requeues = 0;                 ///< crashed attempts put back in the queue
  int restarts_from_checkpoint = 0; ///< requeues that resumed from a snapshot
  int checkpoints = 0;              ///< snapshots committed across all attempts
  int jobs_failed = 0;              ///< jobs that gave up (budget / unplaceable)
  int blacklisted_hosts = 0;        ///< hosts removed from placement
  /// Virtual rank-time discarded by crashes: ranks x (crash time - last
  /// committed checkpoint), summed over crashed attempts.
  Micros lost_work_us = 0.0;
  /// Virtual rank-time banked by completed jobs (restored progress plus the
  /// finishing attempt's runtime), for the saved-work shape checks.
  Micros completed_work_us = 0.0;

  // Live-migration aggregates (the report v6 "migration" section); all zero
  // with the policy off.
  int migrations_proposed = 0;
  int migrations_rejected = 0;   ///< proposals the cost gate turned down
  int migrations_executed = 0;
  Micros migration_pause_us = 0.0;
  Micros migration_win_us = 0.0;   ///< predicted locality win, summed
  Micros migration_cost_us = 0.0;  ///< predicted pause + re-reg, summed

  double intra_host_pair_share() const {
    const int total = intra_host_pairs + inter_host_pairs;
    return total == 0 ? 1.0 : static_cast<double>(intra_host_pairs) / total;
  }
  double local_op_share() const {
    const auto total = shm_ops + cma_ops + hca_ops;
    return total == 0 ? 1.0
                      : static_cast<double>(shm_ops + cma_ops) /
                            static_cast<double>(total);
  }
};

}  // namespace cbmpi::sched
