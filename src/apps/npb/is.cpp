// IS: integer bucket sort. Keys are binned by value range, bucket counts are
// exchanged with MPI_Alltoall, keys with MPI_Alltoallv, and each rank sorts
// its bucket locally — NPB IS's all-to-all-dominated profile. Verification:
// local sortedness, global boundary ordering between neighbouring ranks, and
// key-count conservation.
#include "apps/npb/npb.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"

namespace cbmpi::apps::npb {

KernelResult run_is(mpi::Process& p, const IsParams& params) {
  auto& comm = p.world();
  const int nranks = comm.size();
  const int me = comm.rank();
  CBMPI_REQUIRE(params.key_bits > 0 && params.key_bits < 32, "bad key_bits");
  const std::uint32_t key_range = std::uint32_t{1} << params.key_bits;

  // Deterministic local keys.
  std::vector<std::uint32_t> keys(params.keys_per_rank);
  {
    auto rng = p.make_rng(0x15);
    for (auto& key : keys) key = static_cast<std::uint32_t>(rng.below(key_range));
  }

  comm.barrier();
  p.sync_time();
  const Micros start = p.now();

  // Bin keys: bucket r covers [r*range/P, (r+1)*range/P).
  auto bucket_of = [&](std::uint32_t key) {
    return static_cast<int>((static_cast<std::uint64_t>(key) *
                             static_cast<std::uint64_t>(nranks)) /
                            key_range);
  };

  std::vector<int> send_counts(static_cast<std::size_t>(nranks), 0);
  for (const auto key : keys) ++send_counts[static_cast<std::size_t>(bucket_of(key))];
  p.compute(static_cast<double>(keys.size()) * params.ops_per_key);

  std::vector<int> send_displs(static_cast<std::size_t>(nranks), 0);
  for (int r = 1; r < nranks; ++r)
    send_displs[static_cast<std::size_t>(r)] =
        send_displs[static_cast<std::size_t>(r - 1)] +
        send_counts[static_cast<std::size_t>(r - 1)];

  std::vector<std::uint32_t> send_buf(keys.size());
  {
    std::vector<int> cursor = send_displs;
    for (const auto key : keys)
      send_buf[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(bucket_of(key))]++)] = key;
  }
  p.compute(static_cast<double>(keys.size()) * 2.0);

  std::vector<int> recv_counts(static_cast<std::size_t>(nranks), 0);
  comm.alltoall(std::span<const int>(send_counts), std::span<int>(recv_counts));
  std::vector<int> recv_displs(static_cast<std::size_t>(nranks), 0);
  for (int r = 1; r < nranks; ++r)
    recv_displs[static_cast<std::size_t>(r)] =
        recv_displs[static_cast<std::size_t>(r - 1)] +
        recv_counts[static_cast<std::size_t>(r - 1)];
  std::vector<std::uint32_t> bucket(
      static_cast<std::size_t>(recv_displs.back() + recv_counts.back()));

  comm.alltoallv(std::span<const std::uint32_t>(send_buf),
                 std::span<const int>(send_counts), std::span<const int>(send_displs),
                 std::span<std::uint32_t>(bucket), std::span<const int>(recv_counts),
                 std::span<const int>(recv_displs));

  std::sort(bucket.begin(), bucket.end());
  p.compute(static_cast<double>(bucket.size()) * params.ops_per_key * 2.0);

  // --- verification ---------------------------------------------------------
  bool ok = std::is_sorted(bucket.begin(), bucket.end());

  // Boundary order with neighbours: my max <= next rank's min.
  std::uint32_t my_min = bucket.empty() ? key_range : bucket.front();
  std::uint32_t my_max = bucket.empty() ? 0 : bucket.back();
  if (nranks > 1) {
    std::uint32_t prev_max = 0;
    std::vector<mpi::Request> reqs;
    if (me + 1 < nranks)
      reqs.push_back(comm.isend(std::span<const std::uint32_t>(&my_max, 1), me + 1, 31));
    if (me > 0)
      reqs.push_back(comm.irecv(std::span<std::uint32_t>(&prev_max, 1), me - 1, 31));
    comm.wait_all(reqs);
    if (me > 0 && !bucket.empty() && prev_max > my_min) ok = false;
  }

  const auto global_keys = static_cast<std::uint64_t>(comm.allreduce_value(
      static_cast<std::int64_t>(bucket.size()), mpi::ReduceOp::Sum));
  if (global_keys !=
      params.keys_per_rank * static_cast<std::uint64_t>(nranks))
    ok = false;
  const auto all_ok =
      comm.allreduce_value(static_cast<std::int32_t>(ok), mpi::ReduceOp::LogicalAnd);

  KernelResult result;
  result.name = "IS";
  result.time = comm.allreduce_value(p.now() - start, mpi::ReduceOp::Max);
  result.checksum = static_cast<double>(global_keys);
  result.verified = all_ok != 0;
  return result;
}

}  // namespace cbmpi::apps::npb
