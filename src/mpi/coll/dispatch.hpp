// Engine-driven dispatch of the tunable user-level collectives.
//
// Each collective asks the job's coll::Engine for an algorithm, keyed on the
// message size (payload bytes for bcast/reduce/allreduce, per-rank block
// bytes for allgather, per-peer block bytes for alltoall), the communicator
// size, and the job's containers-per-host. TwoLevel routes into the
// leader-based hierarchy over the detected locality groups; its local and
// leader phases re-enter the engine with their sub-list sizes (and no
// further hierarchy) so each phase gets its own size-appropriate flat
// algorithm. The algorithm that actually ran — after any structural
// downgrade inside the primitives — is recorded via note_algo() so selection
// is observable in the rank profile and the trace.
//
// This header is included at the bottom of mpi/communicator.hpp and must not
// be included directly anywhere else.
#pragma once

#include "mpi/communicator.hpp"

namespace cbmpi::mpi {

template <typename T>
void Communicator::bcast(std::span<T> data, int root) {
  const ProfiledCall prof_scope(*engine_, prof::CallKind::Bcast);
  const int tag = begin_collective();
  const Bytes bytes = data.size() * sizeof(T);
  const auto& groups = locality_groups();
  const bool two_level_ok = two_level_enabled() && !groups.trivial();
  const coll::Algo algo =
      coll_engine().choose(coll::Coll::Bcast, bytes, size(), two_level_ok);
  if (algo != coll::Algo::TwoLevel) {
    note_algo(coll::Coll::Bcast, bcast_over(all_ranks(), data, root, tag, algo),
              bytes, prof_scope.start());
    return;
  }
  const int root_leader = groups.leader_of[static_cast<std::size_t>(root)];
  // Phase 1: if the root is not its group's leader, hand the data to it.
  if (root != root_leader) {
    if (rank() == root)
      raw_send(std::span<const T>(data.data(), data.size()), root_leader, tag);
    else if (rank() == root_leader)
      raw_recv(data, root, tag);
  }
  // Phase 2: broadcast across leaders, rooted at the root's leader.
  if (rank() == groups.my_leader)
    bcast_over(groups.leaders, data, position_of(groups.leaders, root_leader),
               tag + 1,
               pick(coll::Coll::Bcast, bytes, static_cast<int>(groups.leaders.size())));
  // Phase 3: each leader broadcasts within its group.
  bcast_over(groups.my_group, data, position_of(groups.my_group, groups.my_leader),
             tag + 2, pick(coll::Coll::Bcast, bytes, groups.group_size));
  note_algo(coll::Coll::Bcast, coll::Algo::TwoLevel, bytes, prof_scope.start());
}

template <typename T>
void Communicator::reduce(std::span<const T> in, std::span<T> out, ReduceOp op,
                          int root) {
  const ProfiledCall prof_scope(*engine_, prof::CallKind::Reduce);
  const int tag = begin_collective();
  const Bytes bytes = in.size() * sizeof(T);
  const auto& groups = locality_groups();
  const bool two_level_ok = two_level_enabled() && !groups.trivial();
  const coll::Algo algo =
      coll_engine().choose(coll::Coll::Reduce, bytes, size(), two_level_ok);
  if (algo != coll::Algo::TwoLevel) {
    note_algo(coll::Coll::Reduce,
              reduce_over(all_ranks(), in, out, op, root, tag, algo), bytes,
              prof_scope.start());
    return;
  }
  // Phase 1: reduce within each group, to its leader (commutative ops, so
  // group-local combination order is free).
  const int root_leader = groups.leader_of[static_cast<std::size_t>(root)];
  const int leader_pos = position_of(groups.my_group, groups.my_leader);
  std::vector<T> local(rank() == groups.my_leader ? in.size() : 0);
  reduce_over(groups.my_group, in, std::span<T>(local), op, leader_pos, tag,
              pick(coll::Coll::Reduce, bytes, groups.group_size));
  // Phase 2: reduce across leaders, to the root's leader.
  if (rank() == groups.my_leader) {
    std::vector<T> global(rank() == root_leader ? in.size() : 0);
    reduce_over(groups.leaders, std::span<const T>(local), std::span<T>(global), op,
                position_of(groups.leaders, root_leader), tag + 4,
                pick(coll::Coll::Reduce, bytes, static_cast<int>(groups.leaders.size())));
    // Phase 3: hand the result from the root's leader to the root.
    if (rank() == root_leader) {
      if (rank() == root) {
        CBMPI_REQUIRE(out.size() >= in.size(), "reduce output buffer too small");
        std::copy(global.begin(), global.end(), out.begin());
      } else {
        raw_send(std::span<const T>(global), root, tag + 8);
      }
    }
  }
  if (rank() == root && root != root_leader)
    raw_recv(out.subspan(0, in.size()), root_leader, tag + 8);
  note_algo(coll::Coll::Reduce, coll::Algo::TwoLevel, bytes, prof_scope.start());
}

template <typename T>
void Communicator::allreduce(std::span<const T> in, std::span<T> out, ReduceOp op) {
  const ProfiledCall prof_scope(*engine_, prof::CallKind::Allreduce);
  const int tag = begin_collective();
  const Bytes bytes = in.size() * sizeof(T);
  const auto& groups = locality_groups();
  const bool two_level_ok = two_level_enabled() && !groups.trivial();
  const coll::Algo algo =
      coll_engine().choose(coll::Coll::Allreduce, bytes, size(), two_level_ok);
  if (algo != coll::Algo::TwoLevel) {
    note_algo(coll::Coll::Allreduce,
              allreduce_over(all_ranks(), in, out, op, tag, algo), bytes,
              prof_scope.start());
    return;
  }
  // Local reduce to the leader, allreduce across leaders, local bcast.
  const int leader_pos = position_of(groups.my_group, groups.my_leader);
  reduce_over(groups.my_group, in, out, op, leader_pos, tag,
              pick(coll::Coll::Reduce, bytes, groups.group_size));
  if (rank() == groups.my_leader) {
    std::vector<T> tmp(out.begin(),
                       out.begin() + static_cast<std::ptrdiff_t>(in.size()));
    allreduce_over(groups.leaders, std::span<const T>(tmp), out, op, tag + 4,
                   pick(coll::Coll::Allreduce, bytes,
                        static_cast<int>(groups.leaders.size())));
  }
  bcast_over(groups.my_group, out.subspan(0, in.size()), leader_pos, tag + 8,
             pick(coll::Coll::Bcast, bytes, groups.group_size));
  note_algo(coll::Coll::Allreduce, coll::Algo::TwoLevel, bytes,
            prof_scope.start());
}

template <typename T>
void Communicator::allgather(std::span<const T> mine, std::span<T> all) {
  const ProfiledCall prof_scope(*engine_, prof::CallKind::Allgather);
  const int tag = begin_collective();
  const auto& groups = locality_groups();
  const std::size_t block = mine.size();
  const Bytes bytes = block * sizeof(T);
  // The hierarchical variant additionally needs uniform contiguous groups so
  // the leader-level exchange lands in rank order.
  const bool two_level_ok = two_level_enabled() && !groups.trivial() &&
                            groups.uniform && groups.contiguous;
  const coll::Algo algo =
      coll_engine().choose(coll::Coll::Allgather, bytes, size(), two_level_ok);
  if (algo != coll::Algo::TwoLevel) {
    note_algo(coll::Coll::Allgather, allgather_over(all_ranks(), mine, all, tag, algo),
              bytes, prof_scope.start());
    return;
  }
  // Two-level with contiguous uniform groups: gather locally to the leader,
  // allgather the concatenated group blocks across leaders, then bcast the
  // full result locally. Group contiguity makes the concatenation land in
  // rank order (each group's block starts at its leader's rank offset).
  const std::size_t group_block = block * static_cast<std::size_t>(groups.group_size);
  if (rank() == groups.my_leader) {
    std::copy(mine.begin(), mine.end(),
              all.begin() +
                  static_cast<std::ptrdiff_t>(block * static_cast<std::size_t>(rank())));
    for (int member : groups.my_group) {
      if (member == rank()) continue;
      raw_recv(
          std::span<T>(all.data() + block * static_cast<std::size_t>(member), block),
          member, tag);
    }
    const std::size_t my_leader_pos =
        static_cast<std::size_t>(position_of(groups.leaders, groups.my_leader));
    std::vector<T> packed(group_block * groups.leaders.size());
    std::copy(all.data() + block * static_cast<std::size_t>(rank()),
              all.data() + block * static_cast<std::size_t>(rank()) + group_block,
              packed.data() + group_block * my_leader_pos);
    allgather_over(groups.leaders,
                   std::span<const T>(packed.data() + group_block * my_leader_pos,
                                      group_block),
                   std::span<T>(packed), tag + 4,
                   pick(coll::Coll::Allgather, group_block * sizeof(T),
                        static_cast<int>(groups.leaders.size())));
    for (std::size_t g = 0; g < groups.leaders.size(); ++g) {
      const std::size_t offset = block * static_cast<std::size_t>(groups.leaders[g]);
      std::copy(packed.begin() + static_cast<std::ptrdiff_t>(group_block * g),
                packed.begin() + static_cast<std::ptrdiff_t>(group_block * (g + 1)),
                all.begin() + static_cast<std::ptrdiff_t>(offset));
    }
  } else {
    raw_send(mine, groups.my_leader, tag);
  }
  bcast_over(groups.my_group, all, position_of(groups.my_group, groups.my_leader),
             tag + 8, pick(coll::Coll::Bcast, all.size() * sizeof(T), groups.group_size));
  note_algo(coll::Coll::Allgather, coll::Algo::TwoLevel, bytes,
            prof_scope.start());
}

template <typename T>
void Communicator::alltoall(std::span<const T> send_data, std::span<T> recv_data) {
  const ProfiledCall prof_scope(*engine_, prof::CallKind::Alltoall);
  const int tag = begin_collective();
  const int n = size();
  const std::size_t block = send_data.size() / static_cast<std::size_t>(n);
  CBMPI_REQUIRE(send_data.size() == block * static_cast<std::size_t>(n) &&
                    recv_data.size() >= send_data.size(),
                "alltoall buffer size mismatch");
  const Bytes bytes = block * sizeof(T);
  const auto my = static_cast<std::size_t>(rank());
  std::copy(send_data.data() + block * my, send_data.data() + block * (my + 1),
            recv_data.data() + block * my);
  // No hierarchical variant (matches the paper: alltoall gains least from
  // locality), so the engine never sees TwoLevel here.
  coll::Algo algo = coll_engine().choose(coll::Coll::Alltoall, bytes, n,
                                         /*two_level_available=*/false);
  if (n > 1) {
    switch (algo) {
      case coll::Algo::Bruck:
        alltoall_bruck(send_data, recv_data, block, tag);
        break;
      case coll::Algo::Spread:
        alltoall_spread(send_data, recv_data, block, tag);
        break;
      default:
        algo = coll::Algo::Pairwise;
        alltoall_pairwise(send_data, recv_data, block, tag);
        break;
    }
  }
  note_algo(coll::Coll::Alltoall, algo, bytes, prof_scope.start());
}

}  // namespace cbmpi::mpi
