// Chrome-trace (chrome://tracing / Perfetto) export of recorded trace events.
//
// Usage:
//   config.record_trace = true;
//   auto result = mpi::run_job(config, body);
//   std::ofstream("job.json") << sim::to_chrome_trace(result.trace);
// then load job.json in chrome://tracing or ui.perfetto.dev. Each rank
// appears as a process row; durations are synthesized as instant events at
// the virtual timestamps.
#pragma once

#include <span>
#include <string>

#include "sim/trace.hpp"

namespace cbmpi::sim {

/// Renders events as a Chrome Trace Event Format JSON array document.
std::string to_chrome_trace(std::span<const TraceEvent> events);

}  // namespace cbmpi::sim
