// Coordinated checkpoint/restart for job bodies.
//
// JobConfig::checkpoint_interval > 0 turns on quiesce-at-barrier snapshots:
// every round, each rank hands its serialized state to
// Process::checkpoint(); the runtime aligns all ranks to one virtual instant
// (the quiesce), makes one *uniform* take/skip decision from the aligned
// time, and commits the snapshot only once every rank has saved — so a
// crash can never leave a torn checkpoint behind. A crashed job rethrown as
// mpi::JobCrashedError carries the last committed CheckpointData; a
// scheduler re-submits the job with JobConfig::restore pointing at it and
// the body resumes from Process::start_round() / restored_state().
//
// Determinism: the take/skip decision is a pure function of the aligned
// virtual time (identical on every rank) and the store's committed history;
// it is memoized per round so the verdict is independent of which rank's
// thread evaluates it first.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <map>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "faults/fault.hpp"

namespace cbmpi::mpi {

/// One committed coordinated snapshot: every rank's opaque state bytes at
/// one aligned virtual instant, after `round` completed body rounds.
struct CheckpointData {
  int round = 0;    ///< completed body rounds at the snapshot
  Micros at = 0.0;  ///< aligned job-local virtual time it was taken
  /// Cumulative virtual work this snapshot preserves across attempts:
  /// (restore snapshot's progress, if any) + `at`.
  Micros progress_us = 0.0;
  std::vector<std::vector<std::uint8_t>> rank_state;  ///< per world rank

  Bytes total_bytes() const;
};

/// Report-friendly record of one committed checkpoint (no payload).
struct CheckpointEvent {
  int round = 0;
  Micros at = 0.0;
  Bytes bytes = 0;
};

/// Per-job checkpoint coordinator, shared by all rank threads.
class CheckpointStore {
 public:
  /// `interval` <= 0 disables new checkpoints (restore-only store).
  CheckpointStore(int nranks, Micros interval,
                  std::shared_ptr<const CheckpointData> restore);

  Micros interval() const { return interval_; }
  bool taking() const { return interval_ > 0.0; }
  /// The snapshot this run resumed from (null for a fresh run).
  const CheckpointData* restore() const { return restore_.get(); }

  /// Uniform take/skip decision for `round` at aligned time `aligned`.
  /// Memoized per round: the first rank to ask computes it, every other rank
  /// reads the same verdict (all callers pass the same `aligned`).
  bool decide(int round, Micros aligned);

  /// Stores one rank's state for a round decide() said `true` for. The
  /// snapshot commits — becomes the restart point — only when the last rank
  /// saves; a rank crashing before its save leaves the previous snapshot in
  /// place, never a torn one.
  void save(int rank, int round, Micros aligned,
            std::vector<std::uint8_t> state);

  /// The best restart point right now: the newest snapshot committed during
  /// this run, else the restore snapshot, else null.
  std::shared_ptr<const CheckpointData> committed() const;

  /// Checkpoints committed during this run, in virtual-time order.
  std::vector<CheckpointEvent> events() const;

  /// Modelled virtual cost of writing `bytes` of state (per rank): a base
  /// latency plus a streaming term. Restore reads cost the same.
  static Micros snapshot_cost(Bytes bytes);

 private:
  const int nranks_;
  const Micros interval_;
  const std::shared_ptr<const CheckpointData> restore_;

  mutable std::mutex mutex_;
  Micros next_due_;
  std::map<int, bool> decisions_;           ///< round -> take?
  std::unique_ptr<CheckpointData> pending_; ///< being written this round
  int pending_saves_ = 0;
  std::shared_ptr<const CheckpointData> committed_;
  std::vector<CheckpointEvent> events_;
};

/// Thrown out of run_job when the root-cause failure was a crash-class
/// fault: carries the CrashInfo plus the last committed checkpoint so a
/// scheduler can requeue the job without losing checkpointed progress.
class JobCrashedError : public faults::CrashedError {
 public:
  JobCrashedError(std::string what, faults::CrashInfo info,
                  std::shared_ptr<const CheckpointData> checkpoint,
                  int checkpoints_committed)
      : faults::CrashedError(std::move(what), info),
        checkpoint_(std::move(checkpoint)),
        checkpoints_committed_(checkpoints_committed) {}

  /// Best restart point (newest committed snapshot, possibly inherited from
  /// a previous attempt); null when the job never checkpointed.
  const std::shared_ptr<const CheckpointData>& checkpoint() const {
    return checkpoint_;
  }
  /// Checkpoints committed during the crashed attempt itself.
  int checkpoints_committed() const { return checkpoints_committed_; }

 private:
  std::shared_ptr<const CheckpointData> checkpoint_;
  int checkpoints_committed_ = 0;
};

}  // namespace cbmpi::mpi
