// Per-host shared memory (/dev/shm emulation).
//
// Segments are keyed by (IPC namespace, name): a process can only open a
// segment created in its own IPC namespace, which is exactly why the paper's
// container list requires containers to share the host's IPC namespace.
//
// ShmSegment offers two access granularities:
//   * lock-free byte ops — the container list protocol writes one byte per
//     rank concurrently with no locks ("the byte is the smallest granularity
//     of memory access without the lock", Sec. IV-B);
//   * bulk read/write — used by the SHM channel's length queue to stage real
//     payload bytes; internally serialized (the channel protocol provides its
//     own ordering, the lock only keeps the simulation free of data races).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "osl/namespaces.hpp"

namespace cbmpi::osl {

class ShmSegment {
 public:
  explicit ShmSegment(Bytes size);

  Bytes size() const { return static_cast<Bytes>(bytes_.size()); }

  /// Lock-free single-byte access (release/acquire so readers see writes
  /// published before a synchronisation point).
  void store_byte(Bytes offset, std::uint8_t value);
  std::uint8_t load_byte(Bytes offset) const;

  /// Bulk staging of payload bytes; offset+data must fit the segment.
  void write(Bytes offset, std::span<const std::byte> data);
  void read(Bytes offset, std::span<std::byte> out) const;

  /// Zeroes the whole segment (lock-free byte stores).
  void clear();

 private:
  std::vector<std::atomic<std::uint8_t>> bytes_;
  mutable std::mutex bulk_mutex_;
};

/// One host's shared-memory registry.
class SharedMemoryManager {
 public:
  /// shm_open(O_CREAT) semantics: returns the existing segment if present
  /// (size must then be compatible, i.e. existing >= requested), otherwise
  /// creates it.
  std::shared_ptr<ShmSegment> open(NamespaceId ipc_ns, const std::string& name,
                                   Bytes size);

  /// Returns nullptr if the segment does not exist in this IPC namespace.
  std::shared_ptr<ShmSegment> find(NamespaceId ipc_ns, const std::string& name) const;

  /// shm_unlink semantics: removes the name; existing handles stay valid.
  void unlink(NamespaceId ipc_ns, const std::string& name);

  std::size_t segment_count() const;

 private:
  using Key = std::pair<std::uint64_t, std::string>;

  mutable std::mutex mutex_;
  std::map<Key, std::shared_ptr<ShmSegment>> segments_;
};

}  // namespace cbmpi::osl
