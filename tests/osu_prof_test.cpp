// Tests for the OSU-style measurement kernels and the mpiP-style profiler.
#include <gtest/gtest.h>

#include "apps/osu/microbench.hpp"
#include "mpi/runtime.hpp"

namespace cbmpi {
namespace {

using namespace apps::osu;
using container::DeploymentSpec;
using fabric::ChannelKind;
using fabric::LocalityPolicy;

mpi::JobConfig pair_config(int containers, LocalityPolicy policy) {
  mpi::JobConfig cfg;
  cfg.deployment = containers == 0 ? DeploymentSpec::native_hosts(1, 2)
                                   : DeploymentSpec::containers(1, containers, 2);
  cfg.policy = policy;
  return cfg;
}

TEST(Osu, LatencyIncreasesWithSize) {
  mpi::run_job(pair_config(0, LocalityPolicy::HostnameBased), [](mpi::Process& p) {
    PairOptions opt;
    opt.iterations = 5;
    const Micros small = pt2pt_latency(p, 8, opt);
    const Micros medium = pt2pt_latency(p, 4_KiB, opt);
    const Micros large = pt2pt_latency(p, 256_KiB, opt);
    if (p.rank() == 0) {
      EXPECT_GT(small, 0.0);
      EXPECT_LT(small, medium);
      EXPECT_LT(medium, large);
    }
  });
}

TEST(Osu, BandwidthSaturatesWithSize) {
  mpi::run_job(pair_config(0, LocalityPolicy::HostnameBased), [](mpi::Process& p) {
    PairOptions opt;
    opt.iterations = 3;
    const double small = pt2pt_bandwidth(p, 64, opt);
    const double large = pt2pt_bandwidth(p, 1_MiB, opt);
    if (p.rank() == 0) {
      EXPECT_GT(large, small);
      EXPECT_GT(large, 1000.0);  // > 1 GB/s through CMA
    }
  });
}

TEST(Osu, BiBandwidthExceedsUni) {
  mpi::run_job(pair_config(0, LocalityPolicy::HostnameBased), [](mpi::Process& p) {
    PairOptions opt;
    opt.iterations = 3;
    const double uni = pt2pt_bandwidth(p, 64_KiB, opt);
    const double bi = pt2pt_bi_bandwidth(p, 64_KiB, opt);
    if (p.rank() == 0) {
      EXPECT_GT(bi, uni);
    }
  });
}

TEST(Osu, MessageRateMatchesBandwidth) {
  mpi::run_job(pair_config(0, LocalityPolicy::HostnameBased), [](mpi::Process& p) {
    PairOptions opt;
    opt.iterations = 3;
    const double bw = pt2pt_bandwidth(p, 128, opt);
    const double rate = pt2pt_message_rate(p, 128, opt);
    if (p.rank() == 0) {
      EXPECT_NEAR(rate, bw / 128.0 * 1e6, rate * 0.2);
    }
  });
}

TEST(Osu, DefaultVsAwareAcrossContainers) {
  // The paper's core pt2pt comparison at test scale: aware beats default by
  // a large factor at 1 KiB across co-resident containers.
  Micros def_lat = 0.0, aware_lat = 0.0;
  mpi::run_job(pair_config(2, LocalityPolicy::HostnameBased), [&](mpi::Process& p) {
    const Micros lat = pt2pt_latency(p, 1_KiB, {});
    if (p.rank() == 0) def_lat = lat;
  });
  mpi::run_job(pair_config(2, LocalityPolicy::ContainerAware), [&](mpi::Process& p) {
    const Micros lat = pt2pt_latency(p, 1_KiB, {});
    if (p.rank() == 0) aware_lat = lat;
  });
  EXPECT_GT(def_lat, aware_lat * 2.5);
}

TEST(Osu, OneSidedLatencyAndBandwidth) {
  mpi::run_job(pair_config(0, LocalityPolicy::HostnameBased), [](mpi::Process& p) {
    PairOptions opt;
    opt.iterations = 5;
    const Micros put_lat = one_sided_latency(p, OneSidedOp::Put, 8, opt);
    const Micros get_lat = one_sided_latency(p, OneSidedOp::Get, 8, opt);
    const double put_bw = one_sided_bandwidth(p, OneSidedOp::Put, 4, opt);
    if (p.rank() == 0) {
      EXPECT_GT(put_lat, 0.0);
      EXPECT_GT(get_lat, 0.0);
      EXPECT_GT(put_bw, 50.0);  // SHM path: ~150 MB/s at 4 B
      EXPECT_LT(put_bw, 400.0);
    }
  });
}

TEST(Osu, OneSidedPaperRatio) {
  // put bw at 4 B: paper reports 15.73 (default) vs 147.99 (opt) MB/s.
  double def_bw = 0.0, aware_bw = 0.0;
  mpi::run_job(pair_config(2, LocalityPolicy::HostnameBased), [&](mpi::Process& p) {
    const double bw = one_sided_bandwidth(p, OneSidedOp::Put, 4, {});
    if (p.rank() == 0) def_bw = bw;
  });
  mpi::run_job(pair_config(2, LocalityPolicy::ContainerAware), [&](mpi::Process& p) {
    const double bw = one_sided_bandwidth(p, OneSidedOp::Put, 4, {});
    if (p.rank() == 0) aware_bw = bw;
  });
  EXPECT_GT(aware_bw / def_bw, 5.0);
  EXPECT_LT(aware_bw / def_bw, 15.0);
}

TEST(Osu, CollectiveLatencies) {
  mpi::JobConfig cfg;
  cfg.deployment = DeploymentSpec::containers(2, 2, 4);
  cfg.policy = LocalityPolicy::ContainerAware;
  mpi::run_job(cfg, [](mpi::Process& p) {
    PairOptions opt;
    opt.iterations = 3;
    for (auto coll : {Collective::Bcast, Collective::Allreduce,
                      Collective::Allgather, Collective::Alltoall}) {
      const Micros lat = collective_latency(p, coll, 1_KiB, opt);
      EXPECT_GT(lat, 0.0) << to_string(coll);
      EXPECT_LT(lat, 1e6) << to_string(coll);
    }
  });
}

TEST(Prof, CountsCallsAndChannels) {
  mpi::JobConfig cfg;
  cfg.deployment = DeploymentSpec::native_hosts(1, 2);
  const auto result = mpi::run_job(cfg, [](mpi::Process& p) {
    std::vector<int> buf(64);
    if (p.rank() == 0)
      p.world().send(std::span<const int>(buf), 1);
    else
      p.world().recv(std::span<int>(buf), 0);
    p.world().barrier();
    p.compute(1000.0);
  });
  const auto& total = result.profile.total;
  EXPECT_EQ(total.call(prof::CallKind::Send).count, 1u);
  EXPECT_EQ(total.call(prof::CallKind::Recv).count, 1u);
  EXPECT_EQ(total.call(prof::CallKind::Barrier).count, 2u);
  EXPECT_GT(total.comm_time(), 0.0);
  EXPECT_GT(total.compute_time(), 0.0);
  EXPECT_GT(result.profile.comm_fraction(), 0.0);
  EXPECT_LT(result.profile.comm_fraction(), 1.0);
  EXPECT_EQ(total.channel_ops(ChannelKind::Shm),
            total.channel_ops(ChannelKind::Shm));
  const std::string report = result.profile.report();
  EXPECT_NE(report.find("MPI_Send"), std::string::npos);
  EXPECT_NE(report.find("communication fraction"), std::string::npos);
}

TEST(Prof, MergeAccumulates) {
  prof::RankProfile a, b;
  a.add_call(prof::CallKind::Send, 2.0);
  b.add_call(prof::CallKind::Send, 3.0);
  a.add_channel_op(ChannelKind::Cma, 100);
  b.add_channel_op(ChannelKind::Cma, 50);
  b.add_compute(7.0);
  a.merge(b);
  EXPECT_EQ(a.call(prof::CallKind::Send).count, 2u);
  EXPECT_DOUBLE_EQ(a.call(prof::CallKind::Send).time, 5.0);
  EXPECT_EQ(a.channel_ops(ChannelKind::Cma), 2u);
  EXPECT_EQ(a.channel_bytes(ChannelKind::Cma), 150u);
  EXPECT_DOUBLE_EQ(a.compute_time(), 7.0);
}

TEST(Prof, CommFractionMatchesBfsStory) {
  // Fig. 3a at test scale: the communication fraction grows when containers
  // split a host under the default policy.
  auto comm_fraction = [&](int containers) {
    mpi::JobConfig cfg;
    cfg.deployment = containers == 0 ? DeploymentSpec::native_hosts(1, 4)
                                     : DeploymentSpec::containers(1, containers, 4);
    cfg.policy = LocalityPolicy::HostnameBased;
    const auto result = mpi::run_job(cfg, [](mpi::Process& p) {
      for (int i = 0; i < 50; ++i) {
        std::vector<std::byte> buf(2_KiB);
        const int peer = p.rank() ^ 1;
        if (p.rank() < peer) {
          p.world().send(std::span<const std::byte>(buf), peer);
          p.world().recv(std::span<std::byte>(buf), peer);
        } else {
          p.world().recv(std::span<std::byte>(buf), peer);
          p.world().send(std::span<const std::byte>(buf), peer);
        }
        p.compute(500.0);
      }
    });
    return result.profile.comm_fraction();
  };
  EXPECT_GT(comm_fraction(4), comm_fraction(0));
}

}  // namespace
}  // namespace cbmpi
