# Empty compiler generated dependencies file for graph500_test.
# This may be replaced when dependencies are built.
