// Extension experiment (paper Sec. II background + refs [27]-[29]):
// container-based vs hypervisor-based virtualization for the same MPI
// workload. Containers with the locality-aware runtime should land closest
// to native; VMs pay the SR-IOV VF overhead inter-host and — without
// IVSHMEM — lose shared memory intra-host entirely. IVSHMEM (the
// MVAPICH2-Virt inter-VM shared-memory device) recovers most of the
// intra-host loss but can never enable CMA across guest kernels.
#include "bench_util.hpp"

#include "apps/graph500/bfs.hpp"

using namespace cbmpi;
using namespace cbmpi::bench;

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const int scale = static_cast<int>(opts.get_int("scale", 13, "Graph500 scale"));
  const int procs = static_cast<int>(opts.get_int("procs", 16, "procs per host"));
  if (opts.finish("Extension: containers vs virtual machines")) return 0;

  print_banner("Extension", "container vs hypervisor virtualization",
               "containers (locality-aware) ~ native; VMs pay SR-IOV + lose "
               "CMA; IVSHMEM recovers the SHM channel only");

  struct Scenario {
    std::string name;
    mpi::JobConfig config;
  };
  std::vector<Scenario> scenarios;
  {
    mpi::JobConfig native;
    native.deployment = container::DeploymentSpec::native_hosts(1, procs);
    scenarios.push_back({"Native", native});

    mpi::JobConfig cont;
    cont.deployment = container::DeploymentSpec::containers(1, 4, procs);
    cont.policy = fabric::LocalityPolicy::ContainerAware;
    scenarios.push_back({"4-Containers (aware)", cont});

    mpi::JobConfig vm;
    vm.deployment = container::DeploymentSpec::virtual_machines(1, 4, procs, false);
    vm.policy = fabric::LocalityPolicy::ContainerAware;
    scenarios.push_back({"4-VMs (SR-IOV)", vm});

    mpi::JobConfig vm_ivshmem;
    vm_ivshmem.deployment =
        container::DeploymentSpec::virtual_machines(1, 4, procs, true);
    vm_ivshmem.policy = fabric::LocalityPolicy::ContainerAware;
    scenarios.push_back({"4-VMs + IVSHMEM", vm_ivshmem});
  }

  const apps::graph500::EdgeListParams params{scale, 16, 1};
  const auto roots = apps::graph500::choose_roots(params, 2);

  Table table({"scenario", "1K latency (us)", "BFS (ms)", "SHM ops", "CMA ops",
               "HCA ops"});
  std::map<std::string, double> bfs_times;
  for (auto& scenario : scenarios) {
    // Ping-pong latency between the first and last rank on the host — these
    // live in *different* containers/VMs whenever the host is split.
    Micros latency = 0.0;
    mpi::run_job(scenario.config, [&](mpi::Process& p) {
      const int peer = p.size() - 1;
      constexpr int kIters = 20;
      std::vector<std::uint8_t> buf(1_KiB);
      p.sync_time();
      const Micros start = p.now();
      for (int i = 0; i < kIters; ++i) {
        if (p.rank() == 0) {
          p.world().send(std::span<const std::uint8_t>(buf), peer, 5);
          p.world().recv(std::span<std::uint8_t>(buf), peer, 5);
        } else if (p.rank() == peer) {
          p.world().recv(std::span<std::uint8_t>(buf), 0, 5);
          p.world().send(std::span<const std::uint8_t>(buf), 0, 5);
        }
      }
      if (p.rank() == 0) latency = (p.now() - start) / (2.0 * kIters);
    });

    Micros bfs = 0.0;
    const auto result = mpi::run_job(scenario.config, [&](mpi::Process& p) {
      const auto graph = apps::graph500::build_graph(p, params);
      Micros sum = 0.0;
      for (const auto root : roots)
        sum += apps::graph500::run_bfs(p, graph, root).time;
      if (p.rank() == 0) bfs = sum / static_cast<double>(roots.size());
    });
    bfs_times[scenario.name] = bfs;
    table.add_row(
        {scenario.name, Table::num(latency, 2), Table::num(to_millis(bfs), 3),
         std::to_string(result.profile.total.channel_ops(fabric::ChannelKind::Shm)),
         std::to_string(result.profile.total.channel_ops(fabric::ChannelKind::Cma)),
         std::to_string(result.profile.total.channel_ops(fabric::ChannelKind::Hca))});
  }
  table.print(std::cout);

  const double native = bfs_times["Native"];
  print_shape_check(bfs_times["4-Containers (aware)"] < native * 1.15,
                    "aware containers within ~15% of native");
  print_shape_check(bfs_times["4-VMs (SR-IOV)"] > bfs_times["4-Containers (aware)"],
                    "bare VMs slower than aware containers");
  print_shape_check(bfs_times["4-VMs + IVSHMEM"] < bfs_times["4-VMs (SR-IOV)"],
                    "IVSHMEM recovers part of the VM loss");
  print_shape_check(
      bfs_times["4-VMs + IVSHMEM"] > bfs_times["4-Containers (aware)"] * 0.90,
      "IVSHMEM VMs do not beat containers meaningfully (no CMA across guests)");
  return 0;
}
