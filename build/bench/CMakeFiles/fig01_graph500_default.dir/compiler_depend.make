# Empty compiler generated dependencies file for fig01_graph500_default.
# This may be replaced when dependencies are built.
