file(REMOVE_RECURSE
  "CMakeFiles/osl_test.dir/osl_test.cpp.o"
  "CMakeFiles/osl_test.dir/osl_test.cpp.o.d"
  "osl_test"
  "osl_test.pdb"
  "osl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
