#include "net/topology.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cbmpi::net {

namespace {
void add_duplex(std::vector<Link>& links, int a, int b, BytesPerMicro bw,
                Micros latency) {
  links.push_back({a, b, bw, latency});
  links.push_back({b, a, bw, latency});
}
}  // namespace

Topology Topology::flat(int hosts, BytesPerMicro link_bw, Micros link_latency,
                        Micros switch_latency) {
  CBMPI_REQUIRE(hosts > 0, "flat topology needs at least one host, got ", hosts);
  CBMPI_REQUIRE(link_bw > 0.0, "link bandwidth must be positive");
  Topology t;
  t.num_hosts_ = hosts;
  t.num_switches_ = 1;
  t.switch_latency_ = switch_latency;
  const int sw = hosts;  // the single crossbar's node id
  for (int h = 0; h < hosts; ++h)
    add_duplex(t.links_, h, sw, link_bw, link_latency);
  t.links_from_.resize(static_cast<std::size_t>(hosts + 1));
  for (int id = 0; id < t.num_links(); ++id)
    t.links_from_[static_cast<std::size_t>(t.links_[static_cast<std::size_t>(id)].from)]
        .push_back(id);
  return t;
}

int Topology::min_arity_for(int hosts) {
  int k = 2;
  while (k * k * k / 4 < hosts) k += 2;
  return k;
}

Topology Topology::fattree(int arity, int hosts, BytesPerMicro link_bw,
                           Micros link_latency, Micros switch_latency) {
  CBMPI_REQUIRE(arity >= 2 && arity % 2 == 0,
                "fat-tree arity must be even and >= 2, got ", arity);
  CBMPI_REQUIRE(hosts > 0, "fat-tree needs at least one host, got ", hosts);
  const int k = arity;
  const int half = k / 2;
  const int capacity = k * k * k / 4;
  CBMPI_REQUIRE(hosts <= capacity, "fat-tree of arity ", k, " holds at most ",
                capacity, " hosts, got ", hosts);

  Topology t;
  t.num_hosts_ = hosts;
  t.arity_ = k;
  t.switch_latency_ = switch_latency;
  t.edge0_ = hosts;
  t.agg0_ = t.edge0_ + k * half;
  t.core0_ = t.agg0_ + k * half;
  t.num_switches_ = 2 * k * half + half * half;

  // Host <-> edge: host h lives in pod h / (k^2/4) under in-pod edge
  // (h % (k^2/4)) / (k/2).
  for (int h = 0; h < hosts; ++h) {
    const int pod = h / (half * half);
    const int edge = (h % (half * half)) / half;
    add_duplex(t.links_, h, t.edge0_ + pod * half + edge, link_bw, link_latency);
  }
  // Edge <-> aggregation: full bipartite within each pod.
  for (int pod = 0; pod < k; ++pod)
    for (int e = 0; e < half; ++e)
      for (int a = 0; a < half; ++a)
        add_duplex(t.links_, t.edge0_ + pod * half + e, t.agg0_ + pod * half + a,
                   link_bw, link_latency);
  // Aggregation <-> core: agg a of every pod connects to core group a
  // (cores [a*k/2, (a+1)*k/2)).
  for (int pod = 0; pod < k; ++pod)
    for (int a = 0; a < half; ++a)
      for (int c = 0; c < half; ++c)
        add_duplex(t.links_, t.agg0_ + pod * half + a, t.core0_ + a * half + c,
                   link_bw, link_latency);

  t.links_from_.resize(static_cast<std::size_t>(t.core0_ + half * half));
  for (int id = 0; id < t.num_links(); ++id)
    t.links_from_[static_cast<std::size_t>(t.links_[static_cast<std::size_t>(id)].from)]
        .push_back(id);
  for (auto& out : t.links_from_)
    std::sort(out.begin(), out.end(), [&](LinkId x, LinkId y) {
      return t.links_[static_cast<std::size_t>(x)].to <
             t.links_[static_cast<std::size_t>(y)].to;
    });
  return t;
}

LinkId Topology::link_between(int from, int to) const {
  for (const LinkId id : links_from_[static_cast<std::size_t>(from)])
    if (links_[static_cast<std::size_t>(id)].to == to) return id;
  CBMPI_REQUIRE(false, "no link between nodes ", from, " and ", to);
  return -1;
}

std::vector<int> Topology::route_nodes(int src_host, int dst_host) const {
  CBMPI_REQUIRE(src_host >= 0 && src_host < num_hosts_, "bad src host ", src_host);
  CBMPI_REQUIRE(dst_host >= 0 && dst_host < num_hosts_, "bad dst host ", dst_host);
  if (src_host == dst_host) return {src_host};

  if (arity_ == 0) {  // flat: host -> crossbar -> host
    return {src_host, num_hosts_, dst_host};
  }

  const int half = arity_ / 2;
  const int src_pod = src_host / (half * half);
  const int dst_pod = dst_host / (half * half);
  const int src_edge = edge0_ + src_pod * half + (src_host % (half * half)) / half;
  const int dst_edge = edge0_ + dst_pod * half + (dst_host % (half * half)) / half;
  if (src_edge == dst_edge) return {src_host, src_edge, dst_host};

  // Destination-based ECMP: the up-path choices are pure functions of the
  // destination host id, so all traffic to one host converges on one
  // deterministic down-path (static forwarding tables).
  const int agg_index = dst_host % half;
  if (src_pod == dst_pod) {
    const int agg = agg0_ + src_pod * half + agg_index;
    return {src_host, src_edge, agg, dst_edge, dst_host};
  }
  const int core = core0_ + agg_index * half + (dst_host / half) % half;
  const int src_agg = agg0_ + src_pod * half + agg_index;
  const int dst_agg = agg0_ + dst_pod * half + agg_index;
  return {src_host, src_edge, src_agg, core, dst_agg, dst_edge, dst_host};
}

std::vector<LinkId> Topology::route(int src_host, int dst_host) const {
  const auto nodes = route_nodes(src_host, dst_host);
  std::vector<LinkId> path;
  path.reserve(nodes.size() - 1);
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i)
    path.push_back(link_between(nodes[i], nodes[i + 1]));
  return path;
}

int Topology::hops(int src_host, int dst_host) const {
  if (src_host == dst_host) return 0;
  if (arity_ == 0) return 2;
  const int half = arity_ / 2;
  const int src_pod = src_host / (half * half);
  const int dst_pod = dst_host / (half * half);
  if (src_pod != dst_pod) return 6;
  const int src_edge = (src_host % (half * half)) / half;
  const int dst_edge = (dst_host % (half * half)) / half;
  return src_edge == dst_edge ? 2 : 4;
}

Micros Topology::path_latency(int src_host, int dst_host) const {
  if (src_host == dst_host) return 0.0;
  const auto path = route(src_host, dst_host);
  Micros total = 0.0;
  for (const LinkId id : path) total += links_[static_cast<std::size_t>(id)].latency;
  total += static_cast<double>(path.size() - 1) * switch_latency_;
  return total;
}

BytesPerMicro Topology::min_path_bw(int src_host, int dst_host) const {
  const auto path = route(src_host, dst_host);
  CBMPI_REQUIRE(!path.empty(), "no fabric path from host to itself");
  BytesPerMicro bw = links_[static_cast<std::size_t>(path.front())].bw;
  for (const LinkId id : path)
    bw = std::min(bw, links_[static_cast<std::size_t>(id)].bw);
  return bw;
}

LinkId Topology::host_uplink(int host) const {
  CBMPI_REQUIRE(host >= 0 && host < num_hosts_, "bad host ", host);
  const auto& out = links_from_[static_cast<std::size_t>(host)];
  CBMPI_REQUIRE(out.size() == 1, "host ", host, " must have exactly one uplink");
  return out.front();
}

LinkId Topology::host_downlink(int host) const {
  const LinkId up = host_uplink(host);
  const auto& link = links_[static_cast<std::size_t>(up)];
  return link_between(link.to, link.from);
}

}  // namespace cbmpi::net
