// Unit tests for the channel cost models and the channel selector — these pin
// down the qualitative shapes the paper's figures depend on.
#include <gtest/gtest.h>

#include "container/engine.hpp"
#include "fabric/cma_channel.hpp"
#include "fabric/hca_channel.hpp"
#include "fabric/selector.hpp"
#include "fabric/shm_channel.hpp"
#include "osl/machine.hpp"

namespace cbmpi::fabric {
namespace {

const topo::MachineProfile kProfile = topo::MachineProfile::chameleon_fdr();

TuningParams tuned() { return TuningParams::container_optimized(); }

double eager_half_latency(const ShmChannel& shm, Bytes size) {
  const auto c = shm.eager_costs(size, true);
  return c.sender + c.delivery + c.receiver;
}

TEST(ShmChannel, SmallMessageLatencyIsSubMicrosecond) {
  const ShmChannel shm(kProfile, tuned());
  EXPECT_LT(eager_half_latency(shm, 1), 0.8);
  EXPECT_GT(eager_half_latency(shm, 1), 0.05);
}

TEST(ShmChannel, CostsMonotoneInSize) {
  const ShmChannel shm(kProfile, tuned());
  double prev = 0.0;
  for (Bytes size : {1ull, 64ull, 1024ull, 4096ull, 8192ull}) {
    const double cost = eager_half_latency(shm, size);
    EXPECT_GE(cost, prev);
    prev = cost;
  }
}

TEST(ShmChannel, InterSocketSlower) {
  const ShmChannel shm(kProfile, tuned());
  EXPECT_GT(shm.eager_costs(4096, false).sender, shm.eager_costs(4096, true).sender);
  EXPECT_GT(shm.eager_costs(1, false).delivery, shm.eager_costs(1, true).delivery);
}

TEST(ShmChannel, SmallerQueueMeansMoreStall) {
  auto small_queue = tuned();
  small_queue.smpi_length_queue = 16_KiB;
  auto big_queue = tuned();
  big_queue.smpi_length_queue = 128_KiB;
  const ShmChannel small(kProfile, small_queue);
  const ShmChannel big(kProfile, big_queue);
  EXPECT_GT(small.eager_costs(64, true).sender, big.eager_costs(64, true).sender);
}

TEST(ShmChannel, OversizedQueuePaysCacheDerate) {
  auto huge_queue = tuned();
  huge_queue.smpi_length_queue = 4_MiB;
  const ShmChannel huge(kProfile, huge_queue);
  const ShmChannel normal(kProfile, tuned());
  EXPECT_GT(huge.eager_costs(4096, true).sender,
            normal.eager_costs(4096, true).sender);
}

TEST(ShmChannel, QueueCellsFollowTuning) {
  const ShmChannel shm(kProfile, tuned());
  EXPECT_DOUBLE_EQ(shm.queue_cells(), 16.0);  // 128K / 8K
}

TEST(ShmChannel, RndvTimesRespectMatchOrdering) {
  const ShmChannel shm(kProfile, tuned());
  const auto early_match = shm.rndv_times(64_KiB, true, 10.0, 5.0);
  const auto late_match = shm.rndv_times(64_KiB, true, 10.0, 50.0);
  EXPECT_GT(late_match.receiver_done, early_match.receiver_done);
  EXPECT_GT(early_match.sender_done, early_match.receiver_done);
}

TEST(ShmChannel, StageMovesBytesThroughQueue) {
  osl::Machine machine(topo::ClusterBuilder().hosts(1).build());
  auto& host = machine.host_os(0);
  osl::SimProcess a(host, host.root_namespaces(), topo::CoreId{0, 0});
  osl::SimProcess b(host, host.root_namespaces(), topo::CoreId{0, 1});
  const ShmChannel shm(kProfile, tuned());
  std::vector<std::byte> data(3000);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::byte>(i % 251);
  std::vector<std::byte> out;
  shm.stage(a, b, 42, data, out);
  EXPECT_EQ(out, data);
  EXPECT_EQ(host.shm().segment_count(), 1u);
}

TEST(ShmChannel, StageRefusedAcrossIpcNamespaces) {
  osl::Machine machine(topo::ClusterBuilder().hosts(1).build());
  auto& host = machine.host_os(0);
  osl::NamespaceSet other = host.root_namespaces();
  other.set(osl::NamespaceType::Ipc, host.make_namespace(osl::NamespaceType::Ipc));
  osl::SimProcess a(host, host.root_namespaces(), topo::CoreId{0, 0});
  osl::SimProcess b(host, other, topo::CoreId{0, 1});
  const ShmChannel shm(kProfile, tuned());
  std::vector<std::byte> data(16);
  std::vector<std::byte> out;
  EXPECT_THROW(shm.stage(a, b, 1, data, out), Error);
}

TEST(CmaChannel, LosesToShmBelow8K_WinsAbove) {
  const ShmChannel shm(kProfile, tuned());
  const CmaChannel cma(kProfile);
  // Below the paper's 8 K optimum the double copy is cheaper than a syscall.
  for (Bytes size : {256ull, 1024ull, 4096ull}) {
    EXPECT_LT(eager_half_latency(shm, size), cma.transfer_cost(size, true))
        << "size " << size;
  }
  // Above it, the single copy wins (this is why SMP_EAGER_SIZE = 8 K).
  for (Bytes size : {16ull * 1024, 64ull * 1024, 1024ull * 1024}) {
    const auto shm_rndv = shm.rndv_times(size, true, 0.0, 0.0);
    const auto cma_rndv = cma.rndv_times(size, true, 0.0, 0.0);
    EXPECT_GT(shm_rndv.receiver_done, cma_rndv.receiver_done) << "size " << size;
  }
}

TEST(CmaChannel, SyscallOverheadDominatesSmall) {
  const CmaChannel cma(kProfile);
  EXPECT_GT(cma.transfer_cost(1, true), 0.3);
  EXPECT_NEAR(cma.transfer_cost(1, true), cma.transfer_cost(64, true), 0.1);
}

TEST(HcaChannel, LoopbackWorseThanShm) {
  const ShmChannel shm(kProfile, tuned());
  const HcaChannel hca(kProfile, tuned());
  for (Bytes size : {1ull, 1024ull, 4096ull}) {
    const auto h = hca.eager_costs(size, true);
    EXPECT_GT(h.sender + h.delivery + h.receiver, eager_half_latency(shm, size))
        << "size " << size;
  }
}

TEST(HcaChannel, PaperLatencyCalibration) {
  // Paper Sec. V-B: 1 KiB intra-socket latency — default (HCA loopback)
  // ~2.26 us vs optimized (SHM) ~0.47 us vs native ~0.44 us. Check our
  // channel models sit in those neighbourhoods (±40%).
  const ShmChannel shm(kProfile, tuned());
  const HcaChannel hca(kProfile, tuned());
  const auto h = hca.eager_costs(1024, true);
  const double hca_latency = h.sender + h.delivery + h.receiver;
  EXPECT_GT(hca_latency, 1.5);
  EXPECT_LT(hca_latency, 3.2);
  const double shm_latency = eager_half_latency(shm, 1024);
  EXPECT_GT(shm_latency, 0.25);
  EXPECT_LT(shm_latency, 0.75);
}

TEST(HcaChannel, RemotePathPaysWireAndSwitch) {
  const HcaChannel hca(kProfile, tuned());
  EXPECT_GT(hca.control_latency(false), hca.control_latency(true));
  EXPECT_GT(hca.eager_costs(1024, false).delivery,
            hca.eager_costs(1024, true).delivery);
  // But remote bandwidth is higher than loopback (full FDR link vs 2x PCIe).
  EXPECT_LT(hca.eager_costs(1_MiB, false).sender, hca.eager_costs(1_MiB, true).sender);
}

TEST(HcaChannel, QueuePairsCreatedLazilyAndDeduplicated) {
  HcaChannel hca(kProfile, tuned());
  EXPECT_EQ(hca.queue_pairs(), 0u);
  hca.ensure_connected(0, 1);
  hca.ensure_connected(1, 0);
  hca.ensure_connected(0, 2);
  EXPECT_EQ(hca.queue_pairs(), 2u);
}

TEST(HcaChannel, RndvBeatsEagerAboveThreshold) {
  // The 17 K eager threshold trade-off: around the threshold the two
  // protocols should be competitive; far above it rendezvous must win.
  const HcaChannel hca(kProfile, tuned());
  const Bytes big = 256_KiB;
  const auto eager = hca.eager_costs(big, false);
  const double eager_total = eager.sender + eager.delivery + eager.receiver;
  const auto rndv = hca.rndv_times(big, false, 0.0, 0.0);
  EXPECT_LT(rndv.receiver_done, eager_total);
}

TEST(OneSided, MessageRateGapMatchesPaperRatio) {
  // Paper: put bandwidth at 4 B — 15.73 MB/s (default/HCA loopback) vs
  // 147.99 MB/s (optimized/SHM): a ~9.4x gap. Check ours is in 6x-13x.
  const ShmChannel shm(kProfile, tuned());
  const HcaChannel hca(kProfile, tuned());
  const double shm_rate = 4.0 / shm.one_sided_costs(4, true).gap;
  const double hca_rate = 4.0 / hca.one_sided_costs(4, true).gap;
  const double ratio = shm_rate / hca_rate;
  EXPECT_GT(ratio, 6.0);
  EXPECT_LT(ratio, 13.0);
}

// ---- selector -------------------------------------------------------------

struct SelectorFixture {
  osl::Machine machine{topo::ClusterBuilder().hosts(2).build()};
  container::Engine engine{machine};
  std::vector<std::unique_ptr<osl::SimProcess>> procs;
  std::vector<RankEndpoint> endpoints;

  void add_container_proc(int host, const std::string& name, bool share_ipc = true,
                          bool share_pid = true, int core = 0) {
    container::ContainerSpec spec;
    spec.name = name;
    spec.share_host_ipc = share_ipc;
    spec.share_host_pid = share_pid;
    spec.cpuset = {core};
    auto& cont = engine.run(host, spec);
    procs.push_back(engine.spawn(cont, 0));
    endpoints.push_back({procs.back().get(), procs.back()->hostname(), true});
  }

  ChannelSelector make(LocalityPolicy policy, TuningParams tuning = tuned()) {
    return ChannelSelector(policy, tuning, endpoints);
  }
};

TEST(Selector, HostnameBasedMisclassifiesCoResidentContainers) {
  SelectorFixture fx;
  fx.add_container_proc(0, "cont-a", true, true, 0);
  fx.add_container_proc(0, "cont-b", true, true, 1);
  auto selector = fx.make(LocalityPolicy::HostnameBased);
  EXPECT_FALSE(selector.co_resident(0, 1));
  const auto d = selector.select(0, 1, 1024);
  EXPECT_EQ(d.channel, ChannelKind::Hca);
  EXPECT_TRUE(d.loopback);  // physically same host -> loopback path
}

TEST(Selector, ContainerAwareUsesDetectedLocality) {
  SelectorFixture fx;
  fx.add_container_proc(0, "cont-a", true, true, 0);
  fx.add_container_proc(0, "cont-b", true, true, 1);
  auto selector = fx.make(LocalityPolicy::ContainerAware);
  selector.set_detected_locality({{1, 1}, {1, 1}});
  EXPECT_TRUE(selector.co_resident(0, 1));
  EXPECT_EQ(selector.select(0, 1, 1024).channel, ChannelKind::Shm);
  EXPECT_EQ(selector.select(0, 1, 64_KiB).channel, ChannelKind::Cma);
}

TEST(Selector, ContainerAwareRequiresDetection) {
  SelectorFixture fx;
  fx.add_container_proc(0, "cont-a", true, true, 0);
  fx.add_container_proc(0, "cont-b", true, true, 1);
  auto selector = fx.make(LocalityPolicy::ContainerAware);
  EXPECT_THROW(selector.co_resident(0, 1), Error);
}

TEST(Selector, EagerThresholdSplitsShmAndCma) {
  SelectorFixture fx;
  fx.add_container_proc(0, "cont-a", true, true, 0);
  fx.add_container_proc(0, "cont-b", true, true, 1);
  auto selector = fx.make(LocalityPolicy::ContainerAware);
  selector.set_detected_locality({{1, 1}, {1, 1}});
  EXPECT_EQ(selector.select(0, 1, 8_KiB - 1).channel, ChannelKind::Shm);
  EXPECT_EQ(selector.select(0, 1, 8_KiB - 1).protocol, Protocol::Eager);
  EXPECT_EQ(selector.select(0, 1, 8_KiB).channel, ChannelKind::Cma);
  EXPECT_EQ(selector.select(0, 1, 8_KiB).protocol, Protocol::Rendezvous);
}

TEST(Selector, CmaDisabledFallsBackToShmRendezvous) {
  SelectorFixture fx;
  fx.add_container_proc(0, "cont-a", true, true, 0);
  fx.add_container_proc(0, "cont-b", true, true, 1);
  auto tuning = tuned();
  tuning.use_cma = false;
  auto selector = fx.make(LocalityPolicy::ContainerAware, tuning);
  selector.set_detected_locality({{1, 1}, {1, 1}});
  const auto d = selector.select(0, 1, 64_KiB);
  EXPECT_EQ(d.channel, ChannelKind::Shm);
  EXPECT_EQ(d.protocol, Protocol::Rendezvous);
}

TEST(Selector, UnsharedPidNamespaceBlocksCma) {
  SelectorFixture fx;
  fx.add_container_proc(0, "cont-a", true, false, 0);
  fx.add_container_proc(0, "cont-b", true, false, 1);
  auto selector = fx.make(LocalityPolicy::ContainerAware);
  selector.set_detected_locality({{1, 1}, {1, 1}});
  EXPECT_EQ(selector.select(0, 1, 64_KiB).channel, ChannelKind::Shm);
}

TEST(Selector, HcaEagerThreshold) {
  SelectorFixture fx;
  fx.add_container_proc(0, "cont-a");
  fx.add_container_proc(1, "cont-c");
  auto selector = fx.make(LocalityPolicy::HostnameBased);
  EXPECT_EQ(selector.select(0, 1, 17_KiB - 1).protocol, Protocol::Eager);
  EXPECT_EQ(selector.select(0, 1, 17_KiB).protocol, Protocol::Rendezvous);
  EXPECT_FALSE(selector.select(0, 1, 1).loopback);
}

TEST(Selector, ForcedChannelOverrides) {
  SelectorFixture fx;
  fx.add_container_proc(0, "cont-a", true, true, 0);
  fx.add_container_proc(0, "cont-b", true, true, 1);
  auto selector = fx.make(LocalityPolicy::HostnameBased);
  selector.force_channel(ChannelKind::Cma);
  EXPECT_EQ(selector.select(0, 1, 4).channel, ChannelKind::Cma);
  EXPECT_EQ(selector.select(0, 1, 4).protocol, Protocol::Rendezvous);
  selector.force_channel(ChannelKind::Shm);
  EXPECT_EQ(selector.select(0, 1, 1_MiB).protocol, Protocol::Rendezvous);
  selector.force_channel(std::nullopt);
  EXPECT_EQ(selector.select(0, 1, 4).channel, ChannelKind::Hca);
}

TEST(Selector, SameSocketDetection) {
  SelectorFixture fx;
  fx.add_container_proc(0, "cont-a", true, true, 0);
  fx.add_container_proc(0, "cont-b", true, true, 1);   // same socket
  fx.add_container_proc(0, "cont-c", true, true, 12);  // other socket
  auto selector = fx.make(LocalityPolicy::HostnameBased);
  EXPECT_TRUE(selector.select(0, 1, 1).same_socket);
  EXPECT_FALSE(selector.select(0, 2, 1).same_socket);
}

TEST(Selector, NativeSameHostnameIsLocal) {
  SelectorFixture fx;
  fx.procs.push_back(fx.engine.spawn_native(0, topo::CoreId{0, 0}));
  fx.endpoints.push_back({fx.procs.back().get(), "host0", true});
  fx.procs.push_back(fx.engine.spawn_native(0, topo::CoreId{0, 1}));
  fx.endpoints.push_back({fx.procs.back().get(), "host0", true});
  auto selector = fx.make(LocalityPolicy::HostnameBased);
  EXPECT_TRUE(selector.co_resident(0, 1));
  EXPECT_EQ(selector.select(0, 1, 100).channel, ChannelKind::Shm);
}

}  // namespace
}  // namespace cbmpi::fabric
