#include "common/log.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace cbmpi::logging {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_mutex;

const char* name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Off: return "OFF  ";
  }
  return "?";
}

/// Runs init_from_env() during static initialization, so CBMPI_LOG_LEVEL
/// takes effect before main() without any call-site cooperation.
const LogLevel g_env_init = init_from_env();
}  // namespace

void set_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel level() { return g_level.load(std::memory_order_relaxed); }

std::optional<LogLevel> parse_level(std::string_view text) {
  std::string lower(text);
  for (char& c : lower) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (lower == "debug") return LogLevel::Debug;
  if (lower == "info") return LogLevel::Info;
  if (lower == "warn" || lower == "warning") return LogLevel::Warn;
  if (lower == "off" || lower == "none") return LogLevel::Off;
  return std::nullopt;
}

LogLevel init_from_env(LogLevel fallback) {
  LogLevel level = fallback;
  if (const char* env = std::getenv("CBMPI_LOG_LEVEL")) {
    if (const auto parsed = parse_level(env)) level = *parsed;
  }
  set_level(level);
  return level;
}

void emit(LogLevel lvl, const std::string& message) {
  const std::scoped_lock lock(g_mutex);
  std::fprintf(stderr, "[cbmpi %s] %s\n", name(lvl), message.c_str());
}

}  // namespace cbmpi::logging
