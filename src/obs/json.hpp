// Minimal streaming JSON writer shared by every machine-readable emitter
// (run reports, Perfetto traces, bench --json output).
//
// Determinism contract: the writer itself imposes no ordering, but number
// formatting is fixed (shortest round-trip via %.17g collapsed to %g-style
// text through a single snprintf call), so two runs that feed identical
// values and key orders produce byte-identical documents. Callers are
// responsible for iterating containers in a deterministic order (sorted
// names, virtual-time order) before writing.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace cbmpi::obs {

/// Escapes `text` for inclusion inside a JSON string literal: quotes,
/// backslashes, and every control character below 0x20 (the common ones as
/// two-character escapes, the rest as \u00XX).
std::string escape_json(std::string_view text);

/// Fixed, locale-independent rendering of a double (no trailing noise for
/// integers, "%.10g" otherwise; NaN/Inf become 0 since JSON has no spelling
/// for them).
std::string format_double(double value);

/// Streaming writer with automatic comma placement. Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("name").value("fig08");
///   w.key("rows").begin_array();
///   ...
///   w.end_array();
///   w.end_object();
///   std::string doc = w.str();
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Writes an object key; must be followed by exactly one value or
  /// container.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(double number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(int number) { return value(static_cast<std::int64_t>(number)); }
  JsonWriter& value(bool boolean);

  /// key + value in one call.
  template <typename T>
  JsonWriter& field(std::string_view name, const T& v) {
    key(name);
    return value(v);
  }

  std::string str() const { return os_.str(); }

 private:
  void separate();

  std::ostringstream os_;
  /// One entry per open container: true once the first element was written.
  std::vector<bool> has_elements_;
  bool after_key_ = false;
};

}  // namespace cbmpi::obs
