// Unit tests for the simulation primitives: virtual clocks, cost models,
// trace recording.
#include <gtest/gtest.h>

#include "sim/clock.hpp"
#include "sim/cost_model.hpp"
#include "sim/trace.hpp"

namespace cbmpi::sim {
namespace {

TEST(Clock, AdvancesMonotonically) {
  VirtualClock clock;
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  clock.advance(1.5);
  clock.advance(0.5);
  EXPECT_DOUBLE_EQ(clock.now(), 2.0);
}

TEST(Clock, AdvanceToNeverGoesBack) {
  VirtualClock clock;
  clock.advance(10.0);
  clock.advance_to(5.0);
  EXPECT_DOUBLE_EQ(clock.now(), 10.0);
  clock.advance_to(12.0);
  EXPECT_DOUBLE_EQ(clock.now(), 12.0);
}

TEST(Clock, NegativeAdvanceThrows) {
  VirtualClock clock;
  EXPECT_THROW(clock.advance(-1.0), Error);
}

TEST(Clock, Reset) {
  VirtualClock clock;
  clock.advance(3.0);
  clock.reset();
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
}

TEST(CostModel, FlatAlphaBeta) {
  const auto model = CostModel::flat(2.0, 100.0);
  EXPECT_DOUBLE_EQ(model.cost(0), 2.0);
  EXPECT_DOUBLE_EQ(model.cost(1000), 2.0 + 10.0);
}

TEST(CostModel, PiecewiseSegments) {
  const CostModel model({{1024, 1.0, 1000.0}, {CostModel::unbounded(), 5.0, 2000.0}});
  EXPECT_DOUBLE_EQ(model.cost(512), 1.0 + 512.0 / 1000.0);
  EXPECT_DOUBLE_EQ(model.cost(2048), 5.0 + 2048.0 / 2000.0);
  // Boundary: size == 1024 belongs to the second segment (upto is exclusive).
  EXPECT_DOUBLE_EQ(model.cost(1024), 5.0 + 1024.0 / 2000.0);
}

TEST(CostModel, EffectiveBandwidthApproachesBeta) {
  const auto model = CostModel::flat(1.0, 500.0);
  EXPECT_LT(model.effective_bandwidth(64), 500.0);
  EXPECT_NEAR(model.effective_bandwidth(10'000'000), 500.0, 5.0);
}

TEST(CostModel, ValidationRejectsBadSegments) {
  EXPECT_THROW(CostModel(std::vector<CostSegment>{}), Error);
  EXPECT_THROW(CostModel(std::vector<CostSegment>{{100, 0.0, 10.0}}),
               Error);  // does not cover all sizes
  EXPECT_THROW(CostModel(std::vector<CostSegment>{
                   {100, 0.0, -1.0}, {CostModel::unbounded(), 0.0, 10.0}}),
               Error);
}

TEST(ComputeModel, LinearInOps) {
  const ComputeModel model{2000.0, 1.0};
  EXPECT_DOUBLE_EQ(model.cost(0.0), 1.0);
  EXPECT_DOUBLE_EQ(model.cost(4000.0), 3.0);
}

TEST(Trace, RecordsAndCounts) {
  TraceRecorder recorder;
  recorder.record({TraceKind::SendEager, 0, 1, 64, 1.0, "SHM"});
  recorder.record({TraceKind::SendRndvRts, 0, 1, 9000, 2.0, "CMA"});
  recorder.record({TraceKind::SendEager, 1, 0, 64, 3.0, "SHM"});
  EXPECT_EQ(recorder.count(TraceKind::SendEager), 2u);
  EXPECT_EQ(recorder.count(TraceKind::SendRndvRts), 1u);
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[1].size, 9000u);
  EXPECT_EQ(events[1].note, "CMA");
}

TEST(Trace, Clear) {
  TraceRecorder recorder;
  recorder.record({TraceKind::Put, 0, 1, 8, 0.0, ""});
  recorder.clear();
  EXPECT_TRUE(recorder.events().empty());
}

TEST(Trace, KindNames) {
  EXPECT_STREQ(to_string(TraceKind::SendEager), "send-eager");
  EXPECT_STREQ(to_string(TraceKind::RecvComplete), "recv-complete");
}

}  // namespace
}  // namespace cbmpi::sim
