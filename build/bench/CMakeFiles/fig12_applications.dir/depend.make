# Empty dependencies file for fig12_applications.
# This may be replaced when dependencies are built.
