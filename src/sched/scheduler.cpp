#include "sched/scheduler.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace cbmpi::sched {

namespace {
constexpr Micros kNever = std::numeric_limits<Micros>::infinity();
}

Scheduler::Scheduler(SchedulerConfig config)
    : config_(config),
      cluster_(config.cluster_hosts, config.host_shape),
      state_(cluster_),
      placer_(make_placer(config.policy, config.seed)) {
  CBMPI_REQUIRE(config.cluster_hosts > 0, "scheduler needs at least one host");
  runner_ = [](const mpi::JobConfig& job_config, const JobSpec& job) {
    return mpi::run_job(job_config, mpi::JobBodyRegistry::instance().make(
                                        job.body, job.params));
  };
}

int Scheduler::submit(JobSpec spec) {
  CBMPI_REQUIRE(!ran_, "scheduler already ran; submit before run()");
  CBMPI_REQUIRE(spec.ranks > 0, "job needs at least one rank");
  CBMPI_REQUIRE(spec.ranks <= state_.total_cores(), "job '", spec.name,
                "' needs ", spec.ranks, " cores, the cluster has ",
                state_.total_cores());
  CBMPI_REQUIRE(spec.ranks_per_container >= 0,
                "ranks_per_container must be >= 0 (0 = native)");
  CBMPI_REQUIRE(spec.submit_time >= 0.0, "submit_time must be >= 0");
  CBMPI_REQUIRE(spec.est_runtime > 0.0, "est_runtime must be positive");
  if (!spec.traffic)
    mpi::JobBodyRegistry::instance().info(spec.body);  // fails fast if unknown
  spec.id = next_id_++;
  if (spec.name.empty()) spec.name = "job" + std::to_string(spec.id);
  pending_.push_back(std::move(spec));
  return pending_.back().id;
}

bool Scheduler::try_start(const JobSpec& job, Micros now, bool backfilled) {
  const auto placement = placer_->place(job, state_);
  if (!placement) return false;

  ScheduledJob record;
  record.spec = job;
  record.backfilled = backfilled;
  record.start_time = now;
  for (const auto& assignment : placement->hosts) {
    const auto claimed = state_.claim(
        assignment.host, static_cast<int>(assignment.ranks.size()), job.id);
    // Placers assign the lowest free cores per host, which is exactly what
    // claim() hands out; a mismatch means the placer raced its own state.
    CBMPI_REQUIRE(claimed == assignment.cores, "placer/state core mismatch on host ",
                  assignment.host, " for job ", job.id);
    record.hosts.push_back(assignment.host);
  }
  record.placement = placement_stats(job, *placement, effective_traffic(job));

  auto job_config = make_job_config(job, *placement, config_.host_shape);
  job_config.tuning = config_.tuning;
  job_config.profile = config_.profile;
  job_config.seed =
      mix64(config_.seed ^ mix64(static_cast<std::uint64_t>(job.id) * 2 + 1));
  record.result = runner_(job_config, job);
  record.end_time = now + record.result.job_time;

  running_.push_back({job.id, record.end_time, job.ranks});
  done_.push_back(std::move(record));
  return true;
}

void Scheduler::reservation_for(int cores_needed, Micros now, Micros* shadow_time,
                                int* spare_cores) const {
  int free = state_.total_free();
  if (free >= cores_needed) {
    *shadow_time = now;
    *spare_cores = free - cores_needed;
    return;
  }
  auto ends = running_;
  std::sort(ends.begin(), ends.end(), [](const Running& a, const Running& b) {
    return a.end_time != b.end_time ? a.end_time < b.end_time
                                    : a.job_id < b.job_id;
  });
  for (const auto& run : ends) {
    free += run.cores;
    if (free >= cores_needed) {
      *shadow_time = run.end_time;
      *spare_cores = free - cores_needed;
      return;
    }
  }
  CBMPI_REQUIRE(false, "queue head needs ", cores_needed,
                " cores but the cluster cannot ever free them");
}

const std::vector<ScheduledJob>& Scheduler::run() {
  CBMPI_REQUIRE(!ran_, "scheduler can only run once");
  ran_ = true;
  if (pending_.empty()) return done_;

  // FIFO order: submit time, then priority (higher first), then submission
  // order (stable sort keeps it).
  std::stable_sort(pending_.begin(), pending_.end(),
                   [](const JobSpec& a, const JobSpec& b) {
                     if (a.submit_time != b.submit_time)
                       return a.submit_time < b.submit_time;
                     return a.priority > b.priority;
                   });

  const Micros first_submit = pending_.front().submit_time;
  Micros now = first_submit;

  while (!pending_.empty() || !running_.empty()) {
    // --- placement pass at `now` -----------------------------------------
    for (;;) {
      std::size_t head = 0;
      while (head < pending_.size() && pending_[head].submit_time > now) ++head;
      if (head == pending_.size()) break;

      if (try_start(pending_[head], now, /*backfilled=*/false)) {
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(head));
        continue;
      }

      // Head is blocked: EASY backfill. Reserve the head's start (shadow
      // time); later jobs may jump the queue only if they are predicted to
      // finish before the reservation or fit in cores the head will not
      // need — so the head's start is never pushed back by a backfill
      // (given honest runtime estimates).
      if (config_.backfill) {
        Micros shadow = kNever;
        int spare = 0;
        reservation_for(pending_[head].ranks, now, &shadow, &spare);
        for (std::size_t i = head + 1; i < pending_.size();) {
          auto& candidate = pending_[i];
          if (candidate.submit_time > now) {
            ++i;
            continue;
          }
          const bool ends_before_shadow = now + candidate.est_runtime <= shadow;
          const bool fits_spare = candidate.ranks <= spare;
          if ((ends_before_shadow || fits_spare) &&
              try_start(candidate, now, /*backfilled=*/true)) {
            if (!ends_before_shadow) spare -= candidate.ranks;
            pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
            continue;
          }
          ++i;
        }
      }
      break;  // head stays blocked until capacity frees up
    }

    // --- advance virtual time to the next event ---------------------------
    Micros next = kNever;
    for (const auto& run : running_) next = std::min(next, run.end_time);
    for (const auto& job : pending_)
      if (job.submit_time > now) next = std::min(next, job.submit_time);
    if (pending_.empty() && running_.empty()) break;
    CBMPI_REQUIRE(next < kNever, "scheduler stuck: jobs queued but no event pending");
    now = std::max(now, next);

    // --- completions at or before `now` -----------------------------------
    for (std::size_t i = 0; i < running_.size();) {
      if (running_[i].end_time <= now) {
        state_.release(running_[i].job_id);
        running_.erase(running_.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }

  // Completion order, deterministic tie-break by id.
  std::sort(done_.begin(), done_.end(),
            [](const ScheduledJob& a, const ScheduledJob& b) {
              return a.end_time != b.end_time ? a.end_time < b.end_time
                                              : a.spec.id < b.spec.id;
            });

  // --- cluster metrics -----------------------------------------------------
  metrics_ = ClusterMetrics{};
  Micros last_end = first_submit;
  double busy_core_time = 0.0;
  for (const auto& job : done_) {
    last_end = std::max(last_end, job.end_time);
    busy_core_time += static_cast<double>(job.spec.ranks) * job.runtime();
    metrics_.mean_queue_wait += job.queue_wait();
    metrics_.max_queue_wait = std::max(metrics_.max_queue_wait, job.queue_wait());
    if (job.backfilled) ++metrics_.backfilled_jobs;
    metrics_.intra_host_pairs += job.placement.intra_host_pairs;
    metrics_.inter_host_pairs += job.placement.inter_host_pairs;
    metrics_.shm_ops += job.result.profile.total.channel_ops(fabric::ChannelKind::Shm);
    metrics_.cma_ops += job.result.profile.total.channel_ops(fabric::ChannelKind::Cma);
    metrics_.hca_ops += job.result.profile.total.channel_ops(fabric::ChannelKind::Hca);
  }
  metrics_.makespan = last_end - first_submit;
  if (!done_.empty())
    metrics_.mean_queue_wait /= static_cast<double>(done_.size());
  if (metrics_.makespan > 0.0)
    metrics_.utilization =
        busy_core_time /
        (static_cast<double>(state_.total_cores()) * metrics_.makespan);
  return done_;
}

void Scheduler::export_metrics(obs::MetricsRegistry& registry) const {
  registry.gauge("sched.makespan_us").set(metrics_.makespan);
  registry.gauge("sched.utilization").set(metrics_.utilization);
  registry.gauge("sched.mean_queue_wait_us").set(metrics_.mean_queue_wait);
  registry.gauge("sched.max_queue_wait_us").set(metrics_.max_queue_wait);
  registry.counter("sched.jobs").add(done_.size());
  registry.counter("sched.backfilled_jobs")
      .add(static_cast<std::uint64_t>(metrics_.backfilled_jobs));
  registry.counter("sched.channel.shm.ops").add(metrics_.shm_ops);
  registry.counter("sched.channel.cma.ops").add(metrics_.cma_ops);
  registry.counter("sched.channel.hca.ops").add(metrics_.hca_ops);
  auto& waits = registry.histogram("sched.queue_wait_us");
  auto& runtimes = registry.histogram("sched.job_runtime_us");
  for (const auto& job : done_) {
    waits.observe(static_cast<std::uint64_t>(job.queue_wait()));
    runtimes.observe(static_cast<std::uint64_t>(job.runtime()));
  }
}

}  // namespace cbmpi::sched
