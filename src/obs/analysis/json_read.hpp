// Minimal recursive-descent JSON reader for the offline analysis tooling
// (tools/cbmpi-analyze). The write side (obs/json.hpp) is streaming-only;
// this is its read-side counterpart: a full-document parse into a value
// tree, sized for run reports and bench --json artifacts, not for
// streaming gigabyte traces.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace cbmpi::obs::analysis {

class JsonValue {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  std::int64_t as_int() const { return static_cast<std::int64_t>(number_); }
  const std::string& as_string() const { return string_; }
  const std::vector<JsonValue>& as_array() const { return array_; }

  /// Object member by key; a shared Null sentinel when absent (so lookups
  /// chain without null checks: doc["job"]["seed"].as_int()).
  const JsonValue& operator[](const std::string& name) const;
  /// Array element by index; Null sentinel when out of range.
  const JsonValue& operator[](std::size_t index) const;

  bool has(const std::string& name) const {
    return object_.find(name) != object_.end();
  }
  std::size_t size() const {
    return kind_ == Kind::Array ? array_.size() : object_.size();
  }

  /// Parses one complete document. On malformed input, `error` (when
  /// non-null) gets a message with byte offset and the result is Null.
  static JsonValue parse(const std::string& text, std::string* error = nullptr);

 private:
  friend class JsonParser;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

}  // namespace cbmpi::obs::analysis
