#include "fabric/shm_channel.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace cbmpi::fabric {

ShmChannel::ShmChannel(const topo::MachineProfile& profile, const TuningParams& tuning)
    : profile_(&profile), tuning_(tuning) {
  CBMPI_REQUIRE(tuning_.smp_eager_size > 0, "SMP_EAGER_SIZE must be positive");
  CBMPI_REQUIRE(tuning_.smpi_length_queue > 0, "SMPI_LENGTH_QUEUE must be positive");
  if (tuning_.smpi_length_queue > profile.llc_friendly_bytes) {
    const double doublings =
        std::log2(static_cast<double>(tuning_.smpi_length_queue) /
                  static_cast<double>(profile.llc_friendly_bytes));
    cache_factor_ = 1.0 + profile.shm_cache_derate * doublings;
  }
}

double ShmChannel::queue_cells() const {
  return std::max(1.0, static_cast<double>(tuning_.smpi_length_queue) /
                           static_cast<double>(tuning_.smp_eager_size));
}

Micros ShmChannel::copy_cost(Bytes size, bool same_socket) const {
  const auto& p = *profile_;
  BytesPerMicro bw = same_socket ? p.memcpy_bw_intra_socket : p.memcpy_bw_inter_socket;
  if (size < p.memcpy_cached_limit) {
    bw *= p.memcpy_cached_boost;  // L2-resident copies fly
  } else {
    bw /= p.shm_bus_contention;  // both copy sides share the memory bus
  }
  return static_cast<double>(size) / bw * cache_factor_;
}

EagerCosts ShmChannel::eager_costs(Bytes size, bool same_socket) const {
  const auto& p = *profile_;
  EagerCosts costs;
  const double cells = queue_cells();
  const Micros stall = p.shm_stall_penalty / (cells * cells);
  const Micros cell = p.shm_cell_overhead * cache_factor_;
  costs.sender = cell + stall + copy_cost(size, same_socket);
  costs.delivery = p.shm_base_latency + (same_socket ? 0.0 : p.inter_socket_hop);
  costs.receiver = cell + copy_cost(size, same_socket);
  return costs;
}

Micros ShmChannel::control_latency(bool same_socket) const {
  const auto& p = *profile_;
  // A header-only message: cell overhead + queue flag propagation.
  return p.shm_cell_overhead + p.shm_base_latency +
         (same_socket ? 0.0 : p.inter_socket_hop);
}

RndvTimes ShmChannel::rndv_times(Bytes size, bool same_socket, Micros rts_sent_at,
                                 Micros match_at) const {
  const auto& p = *profile_;
  const Micros ctrl = control_latency(same_socket);
  const Micros start = std::max(match_at, rts_sent_at + ctrl);

  // Chunked double copy: both copies stream through the memory bus (payloads
  // this large do not stay cache-resident, so no cached-copy boost), each
  // side effectively sees half the copy bandwidth, partially recovered by
  // chunk-level pipelining (shm_copy_overlap).
  const double chunks = std::max(
      1.0, static_cast<double>(size) / static_cast<double>(tuning_.smpi_length_queue));
  const BytesPerMicro stream_bw =
      (same_socket ? p.memcpy_bw_intra_socket : p.memcpy_bw_inter_socket);
  const Micros per_copy = static_cast<double>(size) / stream_bw * cache_factor_;
  const Micros xfer =
      2.0 * per_copy / p.shm_copy_overlap + chunks * 2.0 * p.shm_cell_overhead;

  RndvTimes times;
  times.receiver_done = start + xfer;
  times.sender_done = times.receiver_done + ctrl;  // FIN back to the sender
  return times;
}

OneSidedCosts ShmChannel::one_sided_costs(Bytes size, bool same_socket) const {
  const auto& p = *profile_;
  OneSidedCosts costs;
  costs.gap = std::max(p.shm_pipelined_gap, copy_cost(size, same_socket));
  costs.latency = p.shm_cell_overhead + p.shm_base_latency +
                  copy_cost(size, same_socket) +
                  (same_socket ? 0.0 : p.inter_socket_hop);
  return costs;
}

void ShmChannel::stage(const osl::SimProcess& sender, const osl::SimProcess& receiver,
                       std::uint64_t pair_key, std::span<const std::byte> data,
                       std::vector<std::byte>& out) const {
  CBMPI_REQUIRE(sender.same_host(receiver),
                "SHM channel selected across hosts — selector bug");
  CBMPI_REQUIRE(sender.namespaces().shares(osl::NamespaceType::Ipc, receiver.namespaces()),
                "SHM channel requires a shared IPC namespace (containers must be "
                "started with --ipc=host)");

  auto& shm = sender.host().shm();
  const auto ipc_ns = sender.namespaces().get(osl::NamespaceType::Ipc);
  const std::string name = "cbmpi_shmq_" + std::to_string(pair_key);
  auto queue = shm.open(ipc_ns, name, tuning_.smpi_length_queue);

  // Stage through the bounded queue chunk by chunk: write in, read out. The
  // double copy is real; only its *duration* comes from the cost model.
  const std::size_t prior = out.size();
  out.resize(prior + data.size());
  std::span<std::byte> dst(out.data() + prior, data.size());
  const Bytes chunk_max = tuning_.smpi_length_queue;
  Bytes offset = 0;
  while (offset < data.size()) {
    const Bytes chunk = std::min<Bytes>(chunk_max, data.size() - offset);
    queue->write(0, data.subspan(offset, chunk));
    queue->read(0, dst.subspan(offset, chunk));
    offset += chunk;
  }
}

}  // namespace cbmpi::fabric
