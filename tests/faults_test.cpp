// Fault-injection subsystem tests: graceful degradation of locality detection
// and channel selection, deterministic HCA retry, escalation to abort, and
// the up-front config validation / rank-error context satellites.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstring>
#include <memory>
#include <stdexcept>

#include "common/error.hpp"
#include "mpi/job_registry.hpp"
#include "mpi/runtime.hpp"

namespace cbmpi {
namespace {

using container::DeploymentSpec;
using fabric::ChannelKind;
using fabric::LocalityPolicy;
using faults::DegradationKind;
using faults::FaultKind;
using mpi::JobConfig;
using mpi::run_job;

/// Each rank exchanges `bytes` with its cross-pair peer (rank ^ 1).
auto pairwise_exchange(std::size_t bytes) {
  return [bytes](mpi::Process& p) {
    std::vector<std::uint8_t> buf(bytes);
    const int peer = p.rank() ^ 1;
    if (peer >= p.size()) return;
    if (p.rank() < peer) {
      p.world().send(std::span<const std::uint8_t>(buf), peer);
      p.world().recv(std::span<std::uint8_t>(buf), peer);
    } else {
      p.world().recv(std::span<std::uint8_t>(buf), peer);
      p.world().send(std::span<const std::uint8_t>(buf), peer);
    }
  };
}

bool has_fault(const faults::FaultReport& report, FaultKind kind) {
  return std::any_of(report.injected.begin(), report.injected.end(),
                     [kind](const auto& e) { return e.kind == kind; });
}

bool has_degradation(const faults::FaultReport& report, DegradationKind kind) {
  return std::any_of(report.degradations.begin(), report.degradations.end(),
                     [kind](const auto& e) { return e.kind == kind; });
}

TEST(Faults, DefaultPlanProducesEmptyReportAndIdenticalTimes) {
  JobConfig config;
  config.deployment = DeploymentSpec::containers(1, 2, 4);
  config.policy = LocalityPolicy::ContainerAware;

  const auto plain = run_job(config, pairwise_exchange(4096));
  EXPECT_FALSE(plain.fault_report.any());
  EXPECT_TRUE(plain.fault_report.injected.empty());
  EXPECT_TRUE(plain.fault_report.degradations.empty());
  EXPECT_EQ(plain.fault_report.total_retries(), 0u);
  EXPECT_EQ(plain.fault_report.time_lost, 0.0);

  // A default (all-zero) plan must not perturb virtual time at all.
  JobConfig with_default_plan = config;
  with_default_plan.faults = faults::FaultPlan{};
  const auto again = run_job(with_default_plan, pairwise_exchange(4096));
  EXPECT_EQ(plain.job_time, again.job_time);
  ASSERT_EQ(plain.rank_times.size(), again.rank_times.size());
  for (std::size_t r = 0; r < plain.rank_times.size(); ++r)
    EXPECT_EQ(plain.rank_times[r], again.rank_times[r]);
}

TEST(Faults, ShmSegmentFailureFallsBackToHostnameLocality) {
  JobConfig config;
  config.deployment = DeploymentSpec::containers(1, 2, 2);  // 2 containers x 1
  config.policy = LocalityPolicy::ContainerAware;
  config.faults.shm_segment_fail_prob = 1.0;

  const auto result = run_job(config, pairwise_exchange(1024));
  // Hostname fallback: container hostnames differ, so the cross-container
  // pair loses SHM and rides the HCA loopback.
  EXPECT_EQ(result.profile.total.channel_ops(ChannelKind::Shm), 0u);
  EXPECT_EQ(result.profile.total.channel_ops(ChannelKind::Cma), 0u);
  EXPECT_GE(result.profile.total.channel_ops(ChannelKind::Hca), 2u);
  EXPECT_TRUE(has_fault(result.fault_report, FaultKind::ShmSegmentFail));
  EXPECT_TRUE(has_degradation(result.fault_report,
                              DegradationKind::HostnameLocalityFallback));
  EXPECT_GE(result.fault_report.shm_retries, 2u);
  EXPECT_GT(result.fault_report.time_lost, 0.0);
  EXPECT_GT(result.profile.total.recovery_time(), 0.0);
}

TEST(Faults, PrivateIpcInjectionIsolatesContainers) {
  JobConfig config;
  // 2 containers x 2 procs: ranks 0,1 in cont0 and 2,3 in cont1.
  config.deployment = DeploymentSpec::containers(1, 2, 4);
  config.policy = LocalityPolicy::ContainerAware;
  config.faults.private_ipc_prob = 1.0;

  const auto result = run_job(config, [](mpi::Process& p) {
    std::vector<std::uint8_t> buf(1024);
    // Cross-container pair (1 <-> 2) and within-container pair (0 <-> 1).
    auto exchange = [&](int peer) {
      if (p.rank() < peer) {
        p.world().send(std::span<const std::uint8_t>(buf), peer);
      } else {
        p.world().recv(std::span<std::uint8_t>(buf), peer);
      }
    };
    if (p.rank() == 1) exchange(2);
    if (p.rank() == 2) exchange(1);
    if (p.rank() == 0) exchange(1);
    if (p.rank() == 1) { p.world().recv(std::span<std::uint8_t>(buf), 0); }
  });
  // The detector still finds within-container peers (same private list), but
  // cross-container traffic degrades to the HCA loopback.
  EXPECT_GE(result.profile.total.channel_ops(ChannelKind::Shm), 1u);
  EXPECT_GE(result.profile.total.channel_ops(ChannelKind::Hca), 1u);
  EXPECT_TRUE(has_fault(result.fault_report, FaultKind::PrivateIpc));
  EXPECT_TRUE(
      has_degradation(result.fault_report, DegradationKind::IsolatedIpcLocality));
}

TEST(Faults, CmaEpermFallsBackToShmRendezvous) {
  JobConfig config;
  config.deployment = DeploymentSpec::native_hosts(1, 2);  // shared PID ns
  config.faults.cma_eperm_prob = 1.0;

  const auto result = run_job(config, pairwise_exchange(64 * 1024));
  // 64 KiB is CMA territory; with EPERM injected it must go SHM rendezvous.
  EXPECT_EQ(result.profile.total.channel_ops(ChannelKind::Cma), 0u);
  EXPECT_GE(result.profile.total.channel_ops(ChannelKind::Shm), 2u);
  EXPECT_EQ(result.profile.total.channel_ops(ChannelKind::Hca), 0u);
  EXPECT_TRUE(has_fault(result.fault_report, FaultKind::CmaEperm));
  EXPECT_TRUE(
      has_degradation(result.fault_report, DegradationKind::CmaFallbackToShm));

  // Without injection the same transfer uses CMA — proves the fault did it.
  JobConfig clean = config;
  clean.faults = faults::FaultPlan{};
  const auto baseline = run_job(clean, pairwise_exchange(64 * 1024));
  EXPECT_GE(baseline.profile.total.channel_ops(ChannelKind::Cma), 2u);
}

TEST(Faults, HcaRetryIsDeterministicAcrossRuns) {
  JobConfig config;
  config.deployment = DeploymentSpec::native_hosts(2, 1);
  config.faults.hca_transient_prob = 0.3;
  config.seed = 1234;

  // Enough HCA transfers that a 0.3 per-attempt fault rate is certain to
  // fire many times.
  auto body = [](mpi::Process& p) {
    std::vector<std::uint8_t> buf(32 * 1024);
    for (int i = 0; i < 20; ++i) {
      if (p.rank() == 0) {
        p.world().send(std::span<const std::uint8_t>(buf), 1);
        p.world().recv(std::span<std::uint8_t>(buf), 1);
      } else {
        p.world().recv(std::span<std::uint8_t>(buf), 0);
        p.world().send(std::span<const std::uint8_t>(buf), 0);
      }
    }
  };
  const auto a = run_job(config, body);
  const auto b = run_job(config, body);

  EXPECT_GT(a.fault_report.hca_retries, 0u);
  EXPECT_EQ(a.job_time, b.job_time);
  EXPECT_EQ(a.fault_report.hca_retries, b.fault_report.hca_retries);
  EXPECT_EQ(a.fault_report.time_lost, b.fault_report.time_lost);
  EXPECT_EQ(a.fault_report.injected.size(), b.fault_report.injected.size());
  for (std::size_t i = 0; i < a.fault_report.injected.size(); ++i) {
    EXPECT_EQ(a.fault_report.injected[i].kind, b.fault_report.injected[i].kind);
    EXPECT_EQ(a.fault_report.injected[i].at, b.fault_report.injected[i].at);
  }

  // A different seed draws a different fault pattern (with prob 0.3 over
  // dozens of attempts the patterns essentially never coincide exactly).
  JobConfig other = config;
  other.seed = 99;
  const auto c = run_job(other, body);
  EXPECT_NE(a.fault_report.injected.size() + a.fault_report.hca_retries,
            c.fault_report.injected.size() + c.fault_report.hca_retries);
}

TEST(Faults, HcaRetriesSlowTheJobDownAndAreTraced) {
  JobConfig config;
  config.deployment = DeploymentSpec::native_hosts(2, 1);
  config.record_trace = true;

  JobConfig faulty = config;
  faulty.faults.hca_transient_prob = 0.4;

  auto body = pairwise_exchange(32 * 1024);
  const auto clean = run_job(config, body);
  const auto slow = run_job(faulty, body);

  EXPECT_GT(slow.fault_report.hca_retries, 0u);
  EXPECT_GT(slow.fault_report.time_lost, 0.0);
  EXPECT_GT(slow.job_time, clean.job_time);

  const auto count_kind = [](const auto& trace, sim::TraceKind kind) {
    return std::count_if(trace.begin(), trace.end(),
                         [kind](const auto& e) { return e.kind == kind; });
  };
  EXPECT_EQ(count_kind(clean.trace, sim::TraceKind::Retry), 0);
  EXPECT_EQ(count_kind(clean.trace, sim::TraceKind::FaultInject), 0);
  EXPECT_GT(count_kind(slow.trace, sim::TraceKind::Retry), 0);
  EXPECT_GT(count_kind(slow.trace, sim::TraceKind::FaultInject), 0);
}

TEST(Faults, LinkFlapRetriesThroughDownWindows) {
  JobConfig config;
  config.deployment = DeploymentSpec::native_hosts(2, 1);
  config.faults.hca_link_flap_period = 200.0;
  config.faults.hca_link_flap_duration = 30.0;
  config.tuning.hca_retry_backoff = 8.0;  // escape a 30 us window quickly

  const auto result = run_job(config, pairwise_exchange(16 * 1024));
  // Attempts that land in a down window retry until the link is back.
  EXPECT_TRUE(has_fault(result.fault_report, FaultKind::HcaLinkFlap) ||
              result.fault_report.hca_retries == 0);
  EXPECT_GT(result.job_time, 0.0);
}

TEST(Faults, PersistentHcaFailureEscalatesToAbortWithRankId) {
  JobConfig config;
  config.deployment = DeploymentSpec::native_hosts(2, 1);
  config.faults.hca_transient_prob = 1.0;  // every attempt fails
  config.tuning.hca_max_retries = 3;

  try {
    run_job(config, pairwise_exchange(4096));
    FAIL() << "expected escalation to abort";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
    EXPECT_NE(what.find("abandoned"), std::string::npos) << what;
    EXPECT_NE(what.find("4 attempts"), std::string::npos) << what;
  }
}

TEST(Faults, RankBodyErrorsCarryRankAndTimestamp) {
  JobConfig config;
  config.deployment = DeploymentSpec::native_hosts(1, 2);
  try {
    run_job(config, [](mpi::Process& p) {
      if (p.rank() == 1) throw std::runtime_error("boom");
      p.world().barrier();
    });
    FAIL() << "expected rank failure to propagate";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
    EXPECT_NE(what.find("boom"), std::string::npos) << what;
    EXPECT_NE(what.find("failed at t="), std::string::npos) << what;
    // The bystander's "job aborted" echo must not mask the root cause.
    EXPECT_EQ(what.find("job aborted"), std::string::npos) << what;
  }
}

TEST(Faults, ConfigValidationRejectsBadConfigs) {
  const auto noop = [](mpi::Process&) {};

  JobConfig small_cluster;
  small_cluster.deployment = DeploymentSpec::native_hosts(2, 1);
  small_cluster.cluster_hosts = 1;
  EXPECT_THROW(run_job(small_cluster, noop), Error);

  JobConfig zero_threshold;
  zero_threshold.deployment = DeploymentSpec::native_hosts(1, 1);
  zero_threshold.tuning.smp_eager_size = 0;
  EXPECT_THROW(run_job(zero_threshold, noop), Error);

  JobConfig uneven;
  uneven.deployment = DeploymentSpec::containers(1, 2, 3);  // 3 % 2 != 0
  EXPECT_THROW(run_job(uneven, noop), Error);

  JobConfig bad_retry;
  bad_retry.deployment = DeploymentSpec::native_hosts(1, 1);
  bad_retry.tuning.hca_retry_backoff = 0.0;
  EXPECT_THROW(run_job(bad_retry, noop), Error);
}

TEST(Faults, PlanValidationRejectsBadProbabilities) {
  faults::FaultPlan negative;
  negative.cma_eperm_prob = -0.1;
  EXPECT_THROW(faults::FaultInjector(negative, 1), Error);

  faults::FaultPlan too_big;
  too_big.hca_transient_prob = 1.5;
  EXPECT_THROW(faults::FaultInjector(too_big, 1), Error);

  faults::FaultPlan bad_flap;
  bad_flap.hca_link_flap_period = 10.0;
  bad_flap.hca_link_flap_duration = 20.0;  // down longer than the period
  EXPECT_THROW(faults::FaultInjector(bad_flap, 1), Error);
}

TEST(Faults, InjectorDecisionsArePureFunctionsOfSeedAndSite) {
  faults::FaultPlan plan;
  plan.shm_segment_fail_prob = 0.5;
  plan.cma_eperm_prob = 0.5;
  plan.hca_transient_prob = 0.5;
  const faults::FaultInjector x(plan, 7);
  const faults::FaultInjector y(plan, 7);
  for (int r = 0; r < 64; ++r)
    EXPECT_EQ(x.shm_segment_fails(r), y.shm_segment_fails(r));
  // Pair decisions are symmetric: EPERM hits the pair, not a direction.
  for (int a = 0; a < 16; ++a)
    for (int b = 0; b < 16; ++b)
      EXPECT_EQ(x.cma_permission_denied(a, b), x.cma_permission_denied(b, a));
  for (int attempt = 0; attempt < 8; ++attempt)
    EXPECT_EQ(x.hca_attempt(0, 1, 5, attempt, 100.0),
              y.hca_attempt(0, 1, 5, attempt, 100.0));

  // Backoff grows geometrically; jitter stays within [1, 1.25).
  const Micros d0 = x.backoff_delay(0, 1, 5, 0, 4.0, 2.0);
  const Micros d1 = x.backoff_delay(0, 1, 5, 1, 4.0, 2.0);
  EXPECT_GE(d0, 4.0);
  EXPECT_LT(d0, 5.0);
  EXPECT_GE(d1, 8.0);
  EXPECT_LT(d1, 10.0);
}

TEST(Faults, ReportSummaryCountsEveryKind) {
  JobConfig config;
  config.deployment = DeploymentSpec::containers(1, 2, 2);
  config.policy = LocalityPolicy::ContainerAware;
  config.faults.shm_segment_fail_prob = 1.0;

  const auto result = run_job(config, pairwise_exchange(1024));
  const std::string summary = result.fault_report.summary();
  EXPECT_NE(summary.find("shm-segment-fail"), std::string::npos) << summary;
  EXPECT_NE(summary.find("hostname-locality-fallback"), std::string::npos)
      << summary;
}

// ---- crash faults + coordinated checkpoint/restart -------------------------

/// Recoverable test body: per-rank accumulator evolved deterministically
/// each round, checkpointed as 8 bytes, final value published to `final_out`
/// so tests can compare resumed runs against uninterrupted ones.
mpi::JobBody accumulator_body(int rounds, std::vector<double>* final_out) {
  return [rounds, final_out](mpi::Process& p) {
    double acc = static_cast<double>(p.rank() + 1);
    const auto saved = p.restored_state();
    if (saved.size() == sizeof(double))
      std::memcpy(&acc, saved.data(), sizeof acc);
    for (int round = p.start_round(); round < rounds; ++round) {
      p.compute(50.0);
      double sum = 0.0;
      p.world().allreduce(std::span<const double>(&acc, 1),
                          std::span<double>(&sum, 1), mpi::ReduceOp::Sum);
      acc = acc * 0.5 + sum / p.size();
      std::array<std::uint8_t, sizeof(double)> state;
      std::memcpy(state.data(), &acc, sizeof acc);
      p.checkpoint(round + 1, std::span<const std::uint8_t>(state));
    }
    if (final_out) (*final_out)[static_cast<std::size_t>(p.rank())] = acc;
  };
}

JobConfig crash_config(double rank_crash_prob, Micros horizon) {
  JobConfig config;
  config.deployment = DeploymentSpec::containers(2, 2, 4);
  config.policy = LocalityPolicy::ContainerAware;
  config.faults.rank_crash_prob = rank_crash_prob;
  config.faults.crash_horizon = horizon;
  return config;
}

TEST(Faults, CrashFaultThrowsJobCrashedErrorWithRootCause) {
  auto config = crash_config(1.0, 100.0);  // every rank dies inside 100 us
  try {
    run_job(config, accumulator_body(64, nullptr));
    FAIL() << "expected a crash";
  } catch (const mpi::JobCrashedError& e) {
    EXPECT_TRUE(faults::is_crash(e.info().kind));
    EXPECT_GE(e.info().rank, 0);
    EXPECT_LT(e.info().rank, 8);
    EXPECT_GT(e.info().at, 0.0);
    EXPECT_GE(e.info().host, 0);
    EXPECT_EQ(e.checkpoint(), nullptr);  // checkpointing was off
    const std::string what = e.what();
    EXPECT_NE(what.find("rank "), std::string::npos) << what;
    EXPECT_NE(what.find("t="), std::string::npos) << what;
  }
  // The crash type slots into the existing abort hierarchy.
  EXPECT_THROW(run_job(config, accumulator_body(64, nullptr)), AbortedError);
}

TEST(Faults, CrashRootCauseIsDeterministicAcrossReruns) {
  auto config = crash_config(0.8, 150.0);
  config.seed = 99;
  faults::CrashInfo first{};
  std::string first_what;
  for (int run = 0; run < 3; ++run) {
    try {
      run_job(config, accumulator_body(64, nullptr));
      FAIL() << "expected a crash";
    } catch (const mpi::JobCrashedError& e) {
      if (run == 0) {
        first = e.info();
        first_what = e.what();
        continue;
      }
      EXPECT_EQ(e.info().rank, first.rank);
      EXPECT_EQ(e.info().at, first.at);
      EXPECT_EQ(e.info().kind, first.kind);
      EXPECT_EQ(e.info().host, first.host);
      EXPECT_EQ(std::string(e.what()), first_what);
    }
  }
}

TEST(Faults, CheckpointsCommitMonotonicallyAndCostNothingWhenOff) {
  auto config = crash_config(0.0, 100.0);
  std::vector<double> finals(8, 0.0);

  // interval 0: the body's checkpoint() calls are free no-ops.
  const auto off = run_job(config, accumulator_body(32, &finals));
  EXPECT_TRUE(off.checkpoints.empty());
  EXPECT_FALSE(off.restored);

  JobConfig on = config;
  on.checkpoint_interval = 10.0;  // the 32-round job runs ~65 virtual us
  const auto taken = run_job(on, accumulator_body(32, &finals));
  ASSERT_FALSE(taken.checkpoints.empty());
  for (std::size_t i = 1; i < taken.checkpoints.size(); ++i) {
    EXPECT_GT(taken.checkpoints[i].round, taken.checkpoints[i - 1].round);
    EXPECT_GT(taken.checkpoints[i].at, taken.checkpoints[i - 1].at);
  }
  for (const auto& event : taken.checkpoints)
    EXPECT_EQ(event.bytes, 8u * 8u);  // 8 ranks x 8-byte state
  // Snapshots cost virtual time, so the checkpointed run is slower.
  EXPECT_GT(taken.job_time, off.job_time);
}

TEST(Faults, RestoreResumesFromLastCheckpointAndMatchesUninterruptedRun) {
  constexpr int kRounds = 48;
  std::vector<double> uninterrupted(8, 0.0);
  auto clean = crash_config(0.0, 100.0);
  run_job(clean, accumulator_body(kRounds, &uninterrupted));

  // Crash mid-run with checkpoints on; resume from the carried snapshot.
  auto crashy = crash_config(1.0, 400.0);
  crashy.checkpoint_interval = 10.0;
  std::shared_ptr<const mpi::CheckpointData> snapshot;
  int restore_round = 0;
  try {
    run_job(crashy, accumulator_body(kRounds, nullptr));
    FAIL() << "expected a crash";
  } catch (const mpi::JobCrashedError& e) {
    ASSERT_NE(e.checkpoint(), nullptr) << "no checkpoint committed pre-crash";
    snapshot = e.checkpoint();
    restore_round = snapshot->round;
    EXPECT_GT(restore_round, 0);
    EXPECT_GT(e.checkpoints_committed(), 0);
    EXPECT_EQ(e.info().last_checkpoint, snapshot->at);
  }

  std::vector<double> resumed(8, 0.0);
  JobConfig resume = clean;  // no faults on the retry
  resume.restore = snapshot;
  const auto result = run_job(resume, accumulator_body(kRounds, &resumed));
  EXPECT_TRUE(result.restored);
  EXPECT_EQ(result.restore_round, restore_round);
  EXPECT_GT(result.restore_progress_us, 0.0);
  for (std::size_t r = 0; r < resumed.size(); ++r)
    EXPECT_DOUBLE_EQ(resumed[r], uninterrupted[r]) << "rank " << r;
}

TEST(Faults, CrashScheduleIsAPureFunctionOfSeedAndSite) {
  faults::FaultPlan plan;
  plan.rank_crash_prob = 0.5;
  plan.container_crash_prob = 0.5;
  plan.host_crash_prob = 0.5;
  const faults::FaultInjector x(plan, 11);
  const faults::FaultInjector y(plan, 11);
  for (int r = 0; r < 32; ++r) EXPECT_EQ(x.rank_crash_at(r), y.rank_crash_at(r));
  for (int h = 0; h < 8; ++h) {
    EXPECT_EQ(x.host_crash_at(h), y.host_crash_at(h));
    for (int c = 0; c < 4; ++c)
      EXPECT_EQ(x.container_crash_at(h, c), y.container_crash_at(h, c));
  }
  // Crash times land inside the horizon.
  for (int r = 0; r < 32; ++r)
    if (const auto at = x.rank_crash_at(r)) {
      EXPECT_GT(*at, 0.0);
      EXPECT_LE(*at, plan.crash_horizon);
    }
}

TEST(Faults, HostFaultSeedPinsHostCrashEligibilityAcrossJobSeeds) {
  faults::FaultPlan plan;
  plan.host_crash_prob = 0.4;
  plan.host_fault_seed = 1234;
  const faults::FaultInjector a(plan, 1);  // different job seeds
  const faults::FaultInjector b(plan, 2);
  int eligible = 0;
  for (int h = 0; h < 64; ++h) {
    const bool ha = a.host_crash_at(h).has_value();
    const bool hb = b.host_crash_at(h).has_value();
    EXPECT_EQ(ha, hb) << "host " << h;  // same flaky hosts for every job
    if (ha) ++eligible;
  }
  EXPECT_GT(eligible, 0);
  EXPECT_LT(eligible, 64);
  // But the crash *time* still re-rolls per job seed.
  bool any_time_differs = false;
  for (int h = 0; h < 64; ++h) {
    const auto ta = a.host_crash_at(h);
    const auto tb = b.host_crash_at(h);
    if (ta && tb && *ta != *tb) any_time_differs = true;
  }
  EXPECT_TRUE(any_time_differs);
}

TEST(Faults, PlanValidationRejectsBadCrashConfigs) {
  faults::FaultPlan negative;
  negative.rank_crash_prob = -0.2;
  EXPECT_THROW(faults::FaultInjector(negative, 1), Error);

  faults::FaultPlan bad_horizon;
  bad_horizon.host_crash_prob = 0.5;
  bad_horizon.crash_horizon = 0.0;
  EXPECT_THROW(faults::FaultInjector(bad_horizon, 1), Error);
}

}  // namespace
}  // namespace cbmpi
