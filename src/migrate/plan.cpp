#include "migrate/plan.hpp"

#include "common/error.hpp"

namespace cbmpi::migrate {

const char* to_string(MigrationPolicy policy) {
  switch (policy) {
    case MigrationPolicy::Off: return "off";
    case MigrationPolicy::Defrag: return "defrag";
    case MigrationPolicy::Evacuate: return "evacuate";
    case MigrationPolicy::Colocate: return "colocate";
  }
  return "?";
}

MigrationPolicy parse_policy(const std::string& text) {
  if (text == "off") return MigrationPolicy::Off;
  if (text == "defrag") return MigrationPolicy::Defrag;
  if (text == "evacuate") return MigrationPolicy::Evacuate;
  if (text == "colocate") return MigrationPolicy::Colocate;
  CBMPI_REQUIRE(false, "unknown migration policy '", text,
                "' (expected off|defrag|evacuate|colocate)");
  return MigrationPolicy::Off;  // unreachable
}

}  // namespace cbmpi::migrate
