#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace cbmpi {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::mean() const { return n_ ? mean_ : 0.0; }

double OnlineStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::min() const { return min_; }

double OnlineStats::max() const { return max_; }

namespace {
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}
}  // namespace

Summary Summary::of(std::vector<double> samples) {
  Summary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.count = samples.size();
  s.min = samples.front();
  s.max = samples.back();
  OnlineStats acc;
  for (double x : samples) acc.add(x);
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.median = percentile(samples, 0.5);
  s.p95 = percentile(samples, 0.95);
  s.p99 = percentile(samples, 0.99);
  return s;
}

}  // namespace cbmpi
