# Empty compiler generated dependencies file for fig08_pt2pt_two_sided.
# This may be replaced when dependencies are built.
