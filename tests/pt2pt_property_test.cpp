// Property-style point-to-point tests: payload integrity and ordering across
// the full (message size x channel x deployment) space, plus edge cases
// (zero-size messages, self-sends, many outstanding requests, determinism,
// trace protocol structure).
#include <gtest/gtest.h>

#include <numeric>

#include "mpi/runtime.hpp"

namespace cbmpi {
namespace {

using container::DeploymentSpec;
using fabric::ChannelKind;
using fabric::LocalityPolicy;
using mpi::JobConfig;

struct SweepCase {
  Bytes size;
  int containers;  // 0 = native, -1 = two hosts
  LocalityPolicy policy;
};

std::string sweep_name(const testing::TestParamInfo<SweepCase>& info) {
  const auto& c = info.param;
  std::string name = format_size(c.size);
  if (c.containers == -1) {
    name += "_2hosts";
  } else if (c.containers == 0) {
    name += "_native";
  } else {
    name += "_";
    name += std::to_string(c.containers);
    name += "cont";
  }
  name += c.policy == LocalityPolicy::ContainerAware ? "_aware" : "_default";
  return name;
}

class Pt2PtSweep : public testing::TestWithParam<SweepCase> {
 protected:
  JobConfig config() const {
    const auto& c = GetParam();
    JobConfig cfg;
    if (c.containers == -1)
      cfg.deployment = DeploymentSpec::containers(2, 1, 1);
    else if (c.containers == 0)
      cfg.deployment = DeploymentSpec::native_hosts(1, 2);
    else
      cfg.deployment = DeploymentSpec::containers(1, c.containers, 2);
    cfg.policy = c.policy;
    return cfg;
  }
};

TEST_P(Pt2PtSweep, PayloadSurvivesByteExact) {
  const Bytes size = GetParam().size;
  mpi::run_job(config(), [size](mpi::Process& p) {
    std::vector<std::uint8_t> buf(std::max<Bytes>(size, 1));
    if (p.rank() == 0) {
      for (Bytes i = 0; i < size; ++i)
        buf[i] = static_cast<std::uint8_t>((i * 131 + 17) & 0xFF);
      p.world().send(std::span<const std::uint8_t>(buf.data(), size), 1, 7);
    } else {
      const auto status =
          p.world().recv(std::span<std::uint8_t>(buf.data(), size), 0, 7);
      ASSERT_EQ(status.bytes, size);
      for (Bytes i = 0; i < size; ++i)
        ASSERT_EQ(buf[i], static_cast<std::uint8_t>((i * 131 + 17) & 0xFF))
            << "corrupt byte at " << i;
    }
  });
}

TEST_P(Pt2PtSweep, NonOvertakingPerSenderOrder) {
  const Bytes size = GetParam().size;
  mpi::run_job(config(), [size](mpi::Process& p) {
    constexpr int kMessages = 8;
    if (p.rank() == 0) {
      std::vector<std::vector<std::uint32_t>> bufs;
      std::vector<mpi::Request> reqs;
      for (int m = 0; m < kMessages; ++m) {
        bufs.emplace_back(std::max<Bytes>(size / 4, 1),
                          static_cast<std::uint32_t>(m));
        reqs.push_back(p.world().isend(std::span<const std::uint32_t>(bufs.back()),
                                       1, 4));
      }
      p.world().wait_all(reqs);
    } else {
      std::vector<std::uint32_t> buf(std::max<Bytes>(size / 4, 1));
      for (int m = 0; m < kMessages; ++m) {
        p.world().recv(std::span<std::uint32_t>(buf), 0, 4);
        ASSERT_EQ(buf[0], static_cast<std::uint32_t>(m))
            << "same-tag messages must arrive in send order";
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, Pt2PtSweep,
    testing::Values(
        // eager SHM
        SweepCase{0, 2, LocalityPolicy::ContainerAware},
        SweepCase{1, 2, LocalityPolicy::ContainerAware},
        SweepCase{1_KiB, 2, LocalityPolicy::ContainerAware},
        // CMA rendezvous boundary
        SweepCase{8_KiB - 1, 2, LocalityPolicy::ContainerAware},
        SweepCase{8_KiB, 2, LocalityPolicy::ContainerAware},
        SweepCase{1_MiB, 2, LocalityPolicy::ContainerAware},
        // HCA loopback eager + rendezvous (default policy across containers)
        SweepCase{1_KiB, 2, LocalityPolicy::HostnameBased},
        SweepCase{17_KiB - 1, 2, LocalityPolicy::HostnameBased},
        SweepCase{17_KiB, 2, LocalityPolicy::HostnameBased},
        SweepCase{512_KiB, 2, LocalityPolicy::HostnameBased},
        // inter-host HCA
        SweepCase{1_KiB, -1, LocalityPolicy::ContainerAware},
        SweepCase{256_KiB, -1, LocalityPolicy::ContainerAware},
        // native SHM/CMA
        SweepCase{64, 0, LocalityPolicy::HostnameBased},
        SweepCase{64_KiB, 0, LocalityPolicy::HostnameBased}),
    sweep_name);

TEST(Pt2PtEdge, ZeroByteMessageCarriesTagAndSource) {
  JobConfig cfg;
  cfg.deployment = DeploymentSpec::native_hosts(1, 2);
  mpi::run_job(cfg, [](mpi::Process& p) {
    if (p.rank() == 0) {
      p.world().send(std::span<const int>{}, 1, 9);
    } else {
      const auto status = p.world().recv(std::span<int>{}, mpi::kAnySource, 9);
      EXPECT_EQ(status.source, 0);
      EXPECT_EQ(status.tag, 9);
      EXPECT_EQ(status.bytes, 0u);
    }
  });
}

TEST(Pt2PtEdge, SelfSendViaNonBlocking) {
  JobConfig cfg;
  cfg.deployment = DeploymentSpec::native_hosts(1, 1);
  mpi::run_job(cfg, [](mpi::Process& p) {
    std::vector<int> out(100, 7), in(100, 0);
    auto send_req = p.world().isend(std::span<const int>(out), 0, 3);
    auto recv_req = p.world().irecv(std::span<int>(in), 0, 3);
    p.world().wait(recv_req);
    p.world().wait(send_req);
    EXPECT_EQ(in[50], 7);
  });
}

TEST(Pt2PtEdge, SelfSendLargeRendezvous) {
  JobConfig cfg;
  cfg.deployment = DeploymentSpec::native_hosts(1, 1);
  mpi::run_job(cfg, [](mpi::Process& p) {
    std::vector<std::uint8_t> out(64_KiB, 0xAB), in(64_KiB, 0);
    auto send_req = p.world().isend(std::span<const std::uint8_t>(out), 0, 3);
    auto recv_req = p.world().irecv(std::span<std::uint8_t>(in), 0, 3);
    p.world().wait(recv_req);
    p.world().wait(send_req);
    EXPECT_EQ(in[12345], 0xAB);
  });
}

TEST(Pt2PtEdge, TagsSeparateStreams) {
  JobConfig cfg;
  cfg.deployment = DeploymentSpec::native_hosts(1, 2);
  mpi::run_job(cfg, [](mpi::Process& p) {
    if (p.rank() == 0) {
      p.world().send_value<int>(111, 1, 10);
      p.world().send_value<int>(222, 1, 20);
    } else {
      // Receive the *second* tag first.
      EXPECT_EQ(p.world().recv_value<int>(0, 20), 222);
      EXPECT_EQ(p.world().recv_value<int>(0, 10), 111);
    }
  });
}

TEST(Pt2PtEdge, IprobeSeesPendingWithoutConsuming) {
  JobConfig cfg;
  cfg.deployment = DeploymentSpec::native_hosts(1, 2);
  mpi::run_job(cfg, [](mpi::Process& p) {
    if (p.rank() == 0) {
      p.world().send_value<double>(1.5, 1, 6);
      p.world().barrier();
    } else {
      p.world().barrier();  // message certainly delivered
      const auto peek1 = p.world().iprobe(0, 6);
      ASSERT_TRUE(peek1.has_value());
      EXPECT_EQ(peek1->source, 0);
      EXPECT_EQ(peek1->bytes, sizeof(double));
      const auto peek2 = p.world().iprobe(0, 6);
      ASSERT_TRUE(peek2.has_value()) << "iprobe must not consume";
      EXPECT_DOUBLE_EQ(p.world().recv_value<double>(0, 6), 1.5);
      EXPECT_FALSE(p.world().iprobe(0, 6).has_value());
    }
  });
}

TEST(Pt2PtEdge, ManyOutstandingRequestsDrainCorrectly) {
  JobConfig cfg;
  cfg.deployment = DeploymentSpec::containers(1, 2, 2);
  cfg.policy = LocalityPolicy::ContainerAware;
  mpi::run_job(cfg, [](mpi::Process& p) {
    constexpr int kCount = 200;
    if (p.rank() == 0) {
      std::vector<std::vector<int>> bufs;
      std::vector<mpi::Request> reqs;
      for (int m = 0; m < kCount; ++m) {
        bufs.emplace_back(16, m);
        reqs.push_back(p.world().isend(std::span<const int>(bufs.back()), 1, 2));
      }
      p.world().wait_all(reqs);
    } else {
      std::vector<std::vector<int>> bufs(kCount, std::vector<int>(16));
      std::vector<mpi::Request> reqs;
      for (int m = 0; m < kCount; ++m)
        reqs.push_back(
            p.world().irecv(std::span<int>(bufs[static_cast<std::size_t>(m)]), 0, 2));
      p.world().wait_all(reqs);
      for (int m = 0; m < kCount; ++m)
        ASSERT_EQ(bufs[static_cast<std::size_t>(m)][3], m);
    }
  });
}

TEST(Determinism, VirtualTimeReproducible) {
  auto run_once = [] {
    JobConfig cfg;
    cfg.deployment = DeploymentSpec::containers(1, 2, 4);
    cfg.policy = LocalityPolicy::ContainerAware;
    return mpi::run_job(cfg, [](mpi::Process& p) {
      // Deterministic traffic: fixed-source receives only.
      std::vector<std::uint8_t> buf(4_KiB);
      for (int round = 0; round < 20; ++round) {
        const int peer = p.rank() ^ 1;
        if (p.rank() < peer) {
          p.world().send(std::span<const std::uint8_t>(buf), peer);
          p.world().recv(std::span<std::uint8_t>(buf), peer);
        } else {
          p.world().recv(std::span<std::uint8_t>(buf), peer);
          p.world().send(std::span<const std::uint8_t>(buf), peer);
        }
        p.world().barrier();
      }
    });
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.rank_times.size(), b.rank_times.size());
  for (std::size_t r = 0; r < a.rank_times.size(); ++r)
    EXPECT_DOUBLE_EQ(a.rank_times[r], b.rank_times[r]) << "rank " << r;
}

TEST(Trace, RendezvousEmitsProtocolEvents) {
  JobConfig cfg;
  cfg.deployment = DeploymentSpec::native_hosts(1, 2);
  cfg.record_trace = true;
  const auto result = mpi::run_job(cfg, [](mpi::Process& p) {
    std::vector<std::uint8_t> buf(64_KiB);
    if (p.rank() == 0)
      p.world().send(std::span<const std::uint8_t>(buf), 1);
    else
      p.world().recv(std::span<std::uint8_t>(buf), 0);
  });
  int rts = 0, cts = 0, data = 0;
  for (const auto& event : result.trace) {
    if (event.kind == sim::TraceKind::SendRndvRts) ++rts;
    if (event.kind == sim::TraceKind::RecvRndvCts) ++cts;
    if (event.kind == sim::TraceKind::SendRndvData) ++data;
  }
  EXPECT_EQ(rts, 1);
  EXPECT_EQ(cts, 1);
  EXPECT_EQ(data, 1);
}

TEST(Trace, EagerEmitsSendAndComplete) {
  JobConfig cfg;
  cfg.deployment = DeploymentSpec::native_hosts(1, 2);
  cfg.record_trace = true;
  const auto result = mpi::run_job(cfg, [](mpi::Process& p) {
    if (p.rank() == 0)
      p.world().send_value<int>(5, 1);
    else
      p.world().recv_value<int>(0);
  });
  bool saw_send = false, saw_complete = false;
  for (const auto& event : result.trace) {
    if (event.kind == sim::TraceKind::SendEager) saw_send = true;
    if (event.kind == sim::TraceKind::RecvComplete) saw_complete = true;
  }
  EXPECT_TRUE(saw_send);
  EXPECT_TRUE(saw_complete);
}

}  // namespace
}  // namespace cbmpi
