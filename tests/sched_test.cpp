// Scheduler & placement-engine tests: deterministic placement per policy,
// EASY backfill's no-starvation guarantee, locality-aware co-residence wins,
// end-to-end scheduling through the real runtime under injected faults, and
// the container engine's cpuset accounting the placers rely on.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "container/engine.hpp"
#include "osl/machine.hpp"
#include "sched/scheduler.hpp"
#include "topo/hardware.hpp"

namespace cbmpi {
namespace {

topo::HostShape small_shape() { return topo::HostShape{2, 4, true}; }

sched::JobSpec job_of(int ranks, const std::string& body = "pairs",
                      Micros submit = 0.0) {
  sched::JobSpec job;
  job.ranks = ranks;
  job.ranks_per_container = 2;
  job.body = body;
  job.params.rounds = 2;
  job.submit_time = submit;
  return job;
}

std::vector<std::pair<int, std::vector<int>>> flatten(
    const sched::Placement& placement) {
  std::vector<std::pair<int, std::vector<int>>> out;
  for (const auto& assignment : placement.hosts)
    out.emplace_back(assignment.host, assignment.ranks);
  return out;
}

// ---- placers ---------------------------------------------------------------

TEST(Placer, EveryPolicyIsDeterministicForAFixedSeed) {
  const topo::Cluster cluster(4, small_shape());
  for (const auto policy :
       {sched::PlacementPolicy::Packed, sched::PlacementPolicy::Spread,
        sched::PlacementPolicy::Random, sched::PlacementPolicy::LocalityAware}) {
    auto job = job_of(8, "shift");
    job.id = 3;  // Random derives its stream from (seed, job id)
    const auto a_placer = sched::make_placer(policy, 42);
    const auto b_placer = sched::make_placer(policy, 42);
    sched::ClusterState a_state(cluster), b_state(cluster);
    const auto a = a_placer->place(job, a_state);
    const auto b = b_placer->place(job, b_state);
    ASSERT_TRUE(a.has_value()) << sched::to_string(policy);
    ASSERT_TRUE(b.has_value()) << sched::to_string(policy);
    EXPECT_EQ(flatten(*a), flatten(*b)) << sched::to_string(policy);
    // Probing twice against the same state (as backfill does) must repeat too.
    const auto c = a_placer->place(job, a_state);
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(flatten(*a), flatten(*c)) << sched::to_string(policy);
  }
}

TEST(Placer, PoliciesRefuseWhatCannotFit) {
  const topo::Cluster cluster(2, small_shape());  // 16 cores
  sched::ClusterState state(cluster);
  state.claim(0, 8, /*job_id=*/7);
  state.claim(1, 4, /*job_id=*/7);  // 4 cores left
  for (const auto policy :
       {sched::PlacementPolicy::Packed, sched::PlacementPolicy::Spread,
        sched::PlacementPolicy::Random, sched::PlacementPolicy::LocalityAware}) {
    const auto placer = sched::make_placer(policy, 1);
    EXPECT_FALSE(placer->place(job_of(5), state).has_value())
        << sched::to_string(policy);
    const auto fits = placer->place(job_of(4), state);
    ASSERT_TRUE(fits.has_value()) << sched::to_string(policy);
    int placed = 0;
    for (const auto& assignment : fits->hosts)
      placed += static_cast<int>(assignment.ranks.size());
    EXPECT_EQ(placed, 4);
  }
}

TEST(Placer, LocalityAwareKeepsMorePairsCoResidentThanSpread) {
  // 2 hosts x 8 cores, 8 ranks: spread levels 4+4 by alternating hosts,
  // locality can co-locate everything. "pairs" (i <-> i^1) is the adversarial
  // pattern: the alternation puts every communicating pair on opposite hosts.
  const topo::Cluster cluster(2, small_shape());
  const auto job = job_of(8, "pairs");
  const auto traffic = sched::effective_traffic(job);

  sched::ClusterState spread_state(cluster), aware_state(cluster);
  const auto spread =
      sched::make_placer(sched::PlacementPolicy::Spread, 42)->place(job, spread_state);
  const auto aware = sched::make_placer(sched::PlacementPolicy::LocalityAware, 42)
                         ->place(job, aware_state);
  ASSERT_TRUE(spread.has_value());
  ASSERT_TRUE(aware.has_value());

  const auto spread_stats = sched::placement_stats(job, *spread, traffic);
  const auto aware_stats = sched::placement_stats(job, *aware, traffic);
  EXPECT_GE(aware_stats.intra_host_pairs, spread_stats.intra_host_pairs);
  EXPECT_GE(aware_stats.local_traffic_share, spread_stats.local_traffic_share);
  // On this fixture the win is strict: all 8 ranks fit one host.
  EXPECT_EQ(aware_stats.hosts_used, 1);
  EXPECT_DOUBLE_EQ(aware_stats.local_traffic_share, 1.0);
  EXPECT_LT(spread_stats.local_traffic_share, 1.0);
}

// ---- scheduler -------------------------------------------------------------

/// Canned runner: virtual duration = the job's est_runtime, no simulation.
sched::Scheduler::Runner canned_runner() {
  return [](const mpi::JobConfig&, const sched::JobSpec& job) {
    mpi::JobResult result;
    result.job_time = job.est_runtime;
    return result;
  };
}

TEST(Scheduler, RunsQueueInFifoOrderAndAccountsCapacity) {
  sched::SchedulerConfig config;
  config.cluster_hosts = 1;
  config.host_shape = small_shape();  // 8 cores
  config.policy = sched::PlacementPolicy::Packed;
  sched::Scheduler scheduler(config);
  scheduler.set_runner(canned_runner());

  auto a = job_of(8);
  a.est_runtime = 100.0;
  auto b = job_of(8);
  b.est_runtime = 50.0;
  scheduler.submit(a);
  scheduler.submit(b);
  const auto& done = scheduler.run();
  ASSERT_EQ(done.size(), 2u);
  // Both need the whole host: b must wait for a.
  EXPECT_DOUBLE_EQ(done[0].start_time, 0.0);
  EXPECT_DOUBLE_EQ(done[0].end_time, 100.0);
  EXPECT_DOUBLE_EQ(done[1].start_time, 100.0);
  EXPECT_DOUBLE_EQ(done[1].end_time, 150.0);
  EXPECT_DOUBLE_EQ(scheduler.metrics().makespan, 150.0);
  EXPECT_DOUBLE_EQ(scheduler.metrics().max_queue_wait, 100.0);
}

TEST(Scheduler, BackfillNeverStarvesAFifoEarlierJob) {
  // a holds 6 of 8 cores; b (FIFO head after a) needs all 8; c is narrow and
  // short, fitting the 2 spare cores inside a's shadow. EASY: c may backfill,
  // but b still starts exactly when a ends — the backfill cannot push the
  // reservation back.
  for (const bool backfill : {true, false}) {
    sched::SchedulerConfig config;
    config.cluster_hosts = 1;
    config.host_shape = small_shape();
    config.policy = sched::PlacementPolicy::Packed;
    config.backfill = backfill;
    sched::Scheduler scheduler(config);
    scheduler.set_runner(canned_runner());

    auto a = job_of(6);
    a.est_runtime = 100.0;
    auto b = job_of(8, "pairs", /*submit=*/1.0);
    b.est_runtime = 100.0;
    auto c = job_of(2, "pairs", /*submit=*/2.0);
    c.est_runtime = 10.0;
    const int a_id = scheduler.submit(a);
    const int b_id = scheduler.submit(b);
    const int c_id = scheduler.submit(c);
    scheduler.run();

    const auto find = [&](int id) {
      for (const auto& job : scheduler.jobs())
        if (job.spec.id == id) return job;
      throw Error("job not scheduled");
    };
    EXPECT_DOUBLE_EQ(find(a_id).start_time, 0.0);
    // The guarantee under test: b starts at its reservation either way.
    EXPECT_DOUBLE_EQ(find(b_id).start_time, 100.0);
    if (backfill) {
      EXPECT_TRUE(find(c_id).backfilled);
      EXPECT_DOUBLE_EQ(find(c_id).start_time, 2.0);  // inside a's shadow
      EXPECT_EQ(scheduler.metrics().backfilled_jobs, 1);
    } else {
      EXPECT_FALSE(find(c_id).backfilled);
      EXPECT_DOUBLE_EQ(find(c_id).start_time, 200.0);  // waits behind b
    }
  }
}

TEST(Scheduler, SubmitRejectsImpossibleJobs) {
  sched::SchedulerConfig config;
  config.cluster_hosts = 1;
  config.host_shape = small_shape();
  sched::Scheduler scheduler(config);
  EXPECT_THROW(scheduler.submit(job_of(9)), Error);   // > 8 cores
  EXPECT_THROW(scheduler.submit(job_of(0)), Error);   // no ranks
  auto unknown = job_of(2);
  unknown.body = "no-such-body";
  EXPECT_THROW(scheduler.submit(unknown), Error);
}

TEST(Scheduler, SchedulesThroughRealRuntimeDeterministically) {
  const auto run_once = [](sched::PlacementPolicy policy) {
    sched::SchedulerConfig config;
    config.cluster_hosts = 2;
    config.host_shape = small_shape();
    config.policy = policy;
    config.seed = 7;
    sched::Scheduler scheduler(config);
    scheduler.submit(job_of(4, "ring"));
    scheduler.submit(job_of(6, "allreduce", /*submit=*/1.0));
    scheduler.submit(job_of(8, "shift", /*submit=*/2.0));
    scheduler.run();
    return scheduler.metrics();
  };
  for (const auto policy :
       {sched::PlacementPolicy::Random, sched::PlacementPolicy::LocalityAware}) {
    const auto a = run_once(policy);
    const auto b = run_once(policy);
    EXPECT_DOUBLE_EQ(a.makespan, b.makespan) << sched::to_string(policy);
    EXPECT_EQ(a.shm_ops, b.shm_ops) << sched::to_string(policy);
    EXPECT_EQ(a.cma_ops, b.cma_ops) << sched::to_string(policy);
    EXPECT_EQ(a.hca_ops, b.hca_ops) << sched::to_string(policy);
    EXPECT_GT(a.makespan, 0.0);
  }
}

TEST(Scheduler, CompletesQueueUnderInjectedShmFaults) {
  // PR 1 integration: jobs whose /dev/shm segments fail degrade to hostname
  // locality (losing SHM for some pairs) but the queue still drains and
  // every job completes with a positive virtual runtime.
  sched::SchedulerConfig config;
  config.cluster_hosts = 2;
  config.host_shape = small_shape();
  config.policy = sched::PlacementPolicy::LocalityAware;
  sched::Scheduler scheduler(config);
  faults::FaultPlan faults;
  faults.shm_segment_fail_prob = 0.5;
  faults.cma_eperm_prob = 0.25;
  for (int i = 0; i < 4; ++i) {
    auto job = job_of(4 + 2 * (i % 2), i % 2 == 0 ? "pairs" : "ring",
                      /*submit=*/static_cast<Micros>(i));
    job.faults = faults;
    scheduler.submit(job);
  }
  const auto& done = scheduler.run();
  ASSERT_EQ(done.size(), 4u);
  bool any_fault = false;
  for (const auto& job : done) {
    EXPECT_GT(job.runtime(), 0.0);
    any_fault = any_fault || job.result.fault_report.any();
  }
  EXPECT_TRUE(any_fault);  // at 50% per rank, some rank must have degraded
  EXPECT_GT(scheduler.metrics().makespan, 0.0);
}

// ---- crash recovery: requeue, backoff, blacklist ---------------------------

faults::CrashInfo crash_info(int rank, int host, Micros at) {
  faults::CrashInfo info;
  info.kind = faults::FaultKind::RankCrash;
  info.rank = rank;
  info.host = host;
  info.at = at;
  return info;
}

TEST(SchedulerRecovery, CrashedJobsRequeueWithBackoffUntilSuccess) {
  sched::SchedulerConfig config;
  config.cluster_hosts = 1;
  config.host_shape = small_shape();
  config.policy = sched::PlacementPolicy::Packed;
  config.max_restarts = 3;
  config.requeue_backoff = 50.0;
  config.requeue_backoff_factor = 2.0;
  sched::Scheduler scheduler(config);
  // Crash attempts 0 and 1 at t=20 into the run; attempt 2 completes.
  scheduler.set_runner(
      [](const mpi::JobConfig&, const sched::JobSpec& job) -> mpi::JobResult {
        if (job.attempt < 2)
          throw faults::CrashedError("injected", crash_info(0, 0, 20.0));
        mpi::JobResult result;
        result.job_time = 100.0;
        return result;
      });
  scheduler.submit(job_of(4));
  const auto& done = scheduler.run();

  ASSERT_EQ(done.size(), 3u);  // one record per attempt
  EXPECT_EQ(done[0].attempt, 0);
  EXPECT_EQ(done[0].outcome, sched::JobOutcome::Crashed);
  EXPECT_EQ(done[0].crash.rank, 0);
  EXPECT_EQ(done[0].end_time, done[0].start_time + 20.0);
  EXPECT_EQ(done[1].attempt, 1);
  EXPECT_EQ(done[1].outcome, sched::JobOutcome::Crashed);
  EXPECT_EQ(done[2].attempt, 2);
  EXPECT_EQ(done[2].outcome, sched::JobOutcome::Completed);

  // Exponential backoff gates each resubmission: 50, then 100.
  EXPECT_EQ(done[1].spec.submit_time, done[0].end_time + 50.0);
  EXPECT_EQ(done[2].spec.submit_time, done[1].end_time + 100.0);
  EXPECT_GE(done[1].start_time, done[1].spec.submit_time);
  EXPECT_GE(done[2].start_time, done[2].spec.submit_time);

  const auto& metrics = scheduler.metrics();
  EXPECT_EQ(metrics.crashes, 2);
  EXPECT_EQ(metrics.requeues, 2);
  EXPECT_EQ(metrics.jobs_failed, 0);
  EXPECT_EQ(metrics.blacklisted_hosts, 0);
  // 4 ranks x 20 us thrown away twice (no checkpoints with a canned runner).
  EXPECT_DOUBLE_EQ(metrics.lost_work_us, 2 * 4 * 20.0);
  EXPECT_DOUBLE_EQ(metrics.completed_work_us, 4 * 100.0);
}

TEST(SchedulerRecovery, RetryBudgetExhaustionMarksJobFailed) {
  sched::SchedulerConfig config;
  config.cluster_hosts = 1;
  config.host_shape = small_shape();
  config.policy = sched::PlacementPolicy::Packed;
  config.max_restarts = 1;
  config.blacklist_threshold = 0;  // isolate the budget path
  sched::Scheduler scheduler(config);
  scheduler.set_runner(
      [](const mpi::JobConfig&, const sched::JobSpec&) -> mpi::JobResult {
        throw faults::CrashedError("injected", crash_info(1, 0, 10.0));
      });
  scheduler.submit(job_of(4));
  const auto& done = scheduler.run();

  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].outcome, sched::JobOutcome::Crashed);
  EXPECT_EQ(done[1].outcome, sched::JobOutcome::Failed);
  EXPECT_EQ(done[1].crash.rank, 1);  // crash attribution survives the giving-up
  const auto& metrics = scheduler.metrics();
  EXPECT_EQ(metrics.crashes, 2);
  EXPECT_EQ(metrics.requeues, 1);
  EXPECT_EQ(metrics.jobs_failed, 1);
}

TEST(SchedulerRecovery, BlacklistedHostReceivesNoFurtherPlacements) {
  sched::SchedulerConfig config;
  config.cluster_hosts = 2;  // 8 cores each
  config.host_shape = small_shape();
  config.policy = sched::PlacementPolicy::Packed;  // prefers host 0
  config.max_restarts = 3;
  config.requeue_backoff = 10.0;
  config.blacklist_threshold = 2;
  sched::Scheduler scheduler(config);
  // Any attempt placed on (physical) host 0 crashes there; placements that
  // avoid host 0 complete.
  scheduler.set_runner(
      [](const mpi::JobConfig& job_config, const sched::JobSpec&) -> mpi::JobResult {
        const auto& hosts = job_config.physical_hosts;
        if (std::find(hosts.begin(), hosts.end(), 0) != hosts.end())
          throw faults::CrashedError("injected", crash_info(0, 0, 15.0));
        mpi::JobResult result;
        result.job_time = 40.0;
        return result;
      });
  for (int i = 0; i < 3; ++i)
    scheduler.submit(job_of(4, "pairs", /*submit=*/static_cast<Micros>(i)));
  const auto& done = scheduler.run();

  ASSERT_EQ(scheduler.blacklist_events().size(), 1u);
  const auto& event = scheduler.blacklist_events()[0];
  EXPECT_EQ(event.host, 0);
  EXPECT_EQ(event.crashes, 2);
  EXPECT_EQ(scheduler.metrics().blacklisted_hosts, 1);

  // After the blacklist instant, host 0 never appears in a placement again,
  // and every job still completes (on host 1).
  int completed = 0;
  for (const auto& record : done) {
    if (record.start_time >= event.at) {
      for (const auto host : record.hosts) EXPECT_NE(host, 0);
    }
    if (record.outcome == sched::JobOutcome::Completed) ++completed;
  }
  EXPECT_EQ(completed, 3);
  EXPECT_EQ(scheduler.metrics().jobs_failed, 0);
}

TEST(SchedulerRecovery, ShrunkClusterFailsUnplaceableJobsInsteadOfHanging) {
  sched::SchedulerConfig config;
  config.cluster_hosts = 2;
  config.host_shape = small_shape();
  config.policy = sched::PlacementPolicy::Packed;
  config.max_restarts = 5;
  config.requeue_backoff = 10.0;
  config.blacklist_threshold = 1;
  sched::Scheduler scheduler(config);
  scheduler.set_runner(
      [](const mpi::JobConfig& job_config, const sched::JobSpec&) -> mpi::JobResult {
        const auto& hosts = job_config.physical_hosts;
        if (std::find(hosts.begin(), hosts.end(), 0) != hosts.end())
          throw faults::CrashedError("injected", crash_info(0, 0, 5.0));
        mpi::JobResult result;
        result.job_time = 40.0;
        return result;
      });
  // 12 ranks need both hosts; once host 0 is blacklisted the job can never
  // be placed again and must be failed, not retried forever.
  scheduler.submit(job_of(12));
  const auto& done = scheduler.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].outcome, sched::JobOutcome::Crashed);
  EXPECT_EQ(done[1].outcome, sched::JobOutcome::Failed);
  EXPECT_EQ(scheduler.metrics().jobs_failed, 1);
}

sched::SchedulerConfig crashy_cluster_config() {
  sched::SchedulerConfig config;
  config.cluster_hosts = 2;
  config.host_shape = small_shape();
  config.policy = sched::PlacementPolicy::LocalityAware;
  config.seed = 13;
  config.max_restarts = 6;
  config.requeue_backoff = 25.0;
  config.blacklist_threshold = 0;  // keep both hosts in play
  config.checkpoint_interval = 5.0;
  return config;
}

std::vector<sched::JobSpec> crashy_job_mix() {
  std::vector<sched::JobSpec> jobs;
  for (int i = 0; i < 4; ++i) {
    auto job = job_of(4, i % 2 == 0 ? "ring" : "cg",
                      /*submit=*/static_cast<Micros>(i) * 2.0);
    job.params.rounds = 8;
    job.faults.rank_crash_prob = 0.35;
    job.faults.crash_horizon = 25.0;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

TEST(SchedulerRecovery, CrashRootCauseSurvivesScheduleModeEndToEnd) {
  // Satellite regression: the failing rank + virtual crash time computed by
  // the runtime must surface unchanged in the scheduler's per-attempt record
  // (the cbmpirun --schedule path renders exactly these fields).
  auto config = crashy_cluster_config();
  config.max_restarts = 0;  // no retries: the crash must be terminal
  sched::Scheduler scheduler(config);
  auto job = job_of(4, "ring");
  job.params.rounds = 16;
  job.faults.rank_crash_prob = 1.0;
  job.faults.crash_horizon = 15.0;
  scheduler.submit(job);
  const auto& done = scheduler.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].outcome, sched::JobOutcome::Failed);
  EXPECT_GE(done[0].crash.rank, 0);
  EXPECT_LT(done[0].crash.rank, 4);
  EXPECT_GT(done[0].crash.at, 0.0);
  EXPECT_TRUE(faults::is_crash(done[0].crash.kind));
  EXPECT_EQ(done[0].end_time, done[0].start_time + done[0].crash.at);
}

TEST(SchedulerRecovery, CrashHeavyScheduleIsDeterministicAcrossReruns) {
  struct Outcome {
    std::vector<sched::ScheduledJob> jobs;
    sched::ClusterMetrics metrics;
  };
  const auto run_once = [] {
    sched::Scheduler scheduler(crashy_cluster_config());
    for (auto& job : crashy_job_mix()) scheduler.submit(std::move(job));
    scheduler.run();
    return Outcome{scheduler.jobs(), scheduler.metrics()};
  };
  const auto a = run_once();
  const auto b = run_once();

  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  int crashes_seen = 0;
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    const auto& x = a.jobs[i];
    const auto& y = b.jobs[i];
    EXPECT_EQ(x.spec.id, y.spec.id);
    EXPECT_EQ(x.attempt, y.attempt);
    EXPECT_EQ(x.outcome, y.outcome);
    EXPECT_EQ(x.start_time, y.start_time);
    EXPECT_EQ(x.end_time, y.end_time);
    EXPECT_EQ(x.crash.rank, y.crash.rank);
    EXPECT_EQ(x.crash.at, y.crash.at);
    EXPECT_EQ(x.hosts, y.hosts);
    if (x.outcome == sched::JobOutcome::Crashed) ++crashes_seen;
  }
  EXPECT_GT(crashes_seen, 0) << "fixture never crashed; raise the crash rate";
  EXPECT_EQ(a.metrics.crashes, b.metrics.crashes);
  EXPECT_EQ(a.metrics.requeues, b.metrics.requeues);
  EXPECT_EQ(a.metrics.checkpoints, b.metrics.checkpoints);
  EXPECT_DOUBLE_EQ(a.metrics.makespan, b.metrics.makespan);
  EXPECT_DOUBLE_EQ(a.metrics.lost_work_us, b.metrics.lost_work_us);
  EXPECT_DOUBLE_EQ(a.metrics.completed_work_us, b.metrics.completed_work_us);
  // Most jobs eventually complete; a budget-exhausted Failed is allowed
  // (and must itself be deterministic, which the loop above checked).
  int completed = 0;
  for (const auto& record : a.jobs)
    if (record.outcome == sched::JobOutcome::Completed) ++completed;
  EXPECT_GE(completed, 2);
}

TEST(SchedulerRecovery, CheckpointedRetriesResumeInsteadOfRestarting) {
  // With checkpoints on, a retried attempt inherits committed progress:
  // restored_progress > 0 for some retry, and the cluster banks strictly
  // more completed work than the naive sum of finishing-attempt runtimes.
  sched::Scheduler scheduler(crashy_cluster_config());
  for (auto& job : crashy_job_mix()) scheduler.submit(std::move(job));
  const auto& done = scheduler.run();
  const auto& metrics = scheduler.metrics();
  if (metrics.requeues == 0) GTEST_SKIP() << "fixture produced no crashes";
  EXPECT_GT(metrics.checkpoints, 0);
  bool any_restored = false;
  for (const auto& record : done)
    if (record.restored_progress > 0.0) {
      any_restored = true;
      EXPECT_GT(record.attempt, 0);
    }
  EXPECT_EQ(any_restored, metrics.restarts_from_checkpoint > 0);
}

// ---- container engine cpuset accounting ------------------------------------

container::ContainerSpec cont(const std::string& name, std::vector<int> cpuset) {
  container::ContainerSpec spec;
  spec.name = name;
  spec.cpuset = std::move(cpuset);
  return spec;
}

TEST(Engine, RejectsOverlappingCpusetsOnSameHost) {
  osl::Machine machine(topo::ClusterBuilder().hosts(2).build());
  container::Engine engine(machine);
  engine.run(0, cont("a", {0, 1}));
  EXPECT_THROW(engine.run(0, cont("b", {1, 2})), Error);  // overlaps core 1
  engine.run(0, cont("c", {2, 3}));                       // disjoint: fine
  engine.run(1, cont("d", {0, 1}));  // other host: no conflict
}

TEST(Engine, RejectsMalformedCpusets) {
  osl::Machine machine(topo::ClusterBuilder().hosts(1).build());
  container::Engine engine(machine);
  EXPECT_THROW(engine.run(0, cont("oob", {240})), Error);   // out of range
  EXPECT_THROW(engine.run(0, cont("neg", {-1})), Error);    // negative
  EXPECT_THROW(engine.run(0, cont("dup", {3, 3})), Error);  // duplicate core
}

TEST(Engine, UnpinnedContainersAreExemptFromConflicts) {
  // An empty cpuset means "no pinning" (like docker without --cpuset-cpus):
  // such containers share cores freely, also with pinned ones.
  osl::Machine machine(topo::ClusterBuilder().hosts(1).build());
  container::Engine engine(machine);
  engine.run(0, cont("u1", {}));
  engine.run(0, cont("u2", {}));
  engine.run(0, cont("pinned", {0, 1}));
}

TEST(Engine, FreeCoresReportsUnclaimedCores) {
  osl::Machine machine(
      topo::ClusterBuilder().hosts(1).sockets(2).cores_per_socket(4).build());
  container::Engine engine(machine);
  EXPECT_EQ(engine.free_cores(0), (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  engine.run(0, cont("a", {0, 1}));
  engine.run(0, cont("b", {5}));
  EXPECT_EQ(engine.free_cores(0), (std::vector<int>{2, 3, 4, 6, 7}));
  engine.run(0, cont("unpinned", {}));  // claims nothing
  EXPECT_EQ(engine.free_cores(0), (std::vector<int>{2, 3, 4, 6, 7}));
}

}  // namespace
}  // namespace cbmpi
