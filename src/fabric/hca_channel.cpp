#include "fabric/hca_channel.hpp"

#include <algorithm>

namespace cbmpi::fabric {

void HcaChannel::ensure_connected(int a, int b) {
  const std::scoped_lock lock(mutex_);
  queue_pairs_.insert(std::minmax(a, b));
}

std::size_t HcaChannel::queue_pairs() const {
  const std::scoped_lock lock(mutex_);
  return queue_pairs_.size();
}

BytesPerMicro HcaChannel::injection_bw(bool loopback, bool sriov) const {
  const BytesPerMicro base =
      loopback ? profile_->hca_loopback_bw : profile_->hca_link_bw;
  return sriov ? base * profile_->sriov_bw_derate : base;
}

Micros HcaChannel::control_latency(bool loopback) const {
  const auto& p = *profile_;
  return loopback ? p.hca_loopback_latency
                  : p.hca_wire_latency + p.hca_switch_latency;
}

Micros HcaChannel::delivery_latency(bool loopback,
                                    const net::TransferCtx* ctx) const {
  if (routed(loopback, ctx))
    return fabric_->path_latency(ctx->src_host, ctx->dst_host);
  return control_latency(loopback);
}

BytesPerMicro HcaChannel::payload_bw(bool loopback, bool sriov,
                                     const net::TransferCtx* ctx) const {
  if (routed(loopback, ctx))
    return fabric_->flow_rate_cap(ctx->src_host, ctx->dst_host, sriov);
  return injection_bw(loopback, sriov);
}

double HcaChannel::contention_factor(const net::TransferCtx* ctx) const {
  if (congestion_ == nullptr || ctx == nullptr) return 1.0;
  return congestion_->factor(ctx->key);
}

EagerCosts HcaChannel::eager_costs(Bytes size, bool loopback, bool sriov,
                                   const net::TransferCtx* ctx) const {
  const auto& p = *profile_;
  EagerCosts costs;
  costs.sender = p.hca_post_overhead +
                 static_cast<double>(size) / payload_bw(loopback, sriov, ctx) *
                     contention_factor(ctx);
  costs.delivery =
      delivery_latency(loopback, ctx) + (sriov ? p.sriov_latency_overhead : 0.0);
  // Receiver copies out of the eager ring into the user buffer. On the
  // loopback path the payload also re-crosses the host PCIe/NIC on ingress —
  // the same serialized resource — which is the heart of the intra-host
  // inter-container bottleneck.
  costs.receiver = 0.08 + static_cast<double>(size) / p.hca_eager_copy_bw;
  if (loopback)
    costs.receiver += static_cast<double>(size) / injection_bw(true, sriov);
  return costs;
}

RndvTimes HcaChannel::rndv_times(Bytes size, bool loopback, Micros rts_sent_at,
                                 Micros posted_at, Micros busy_until, bool sriov,
                                 const net::TransferCtx* ctx) const {
  const auto& p = *profile_;
  const Micros trip = p.hca_rndv_trip + delivery_latency(loopback, ctx) +
                      (sriov ? p.sriov_latency_overhead : 0.0);
  const Micros rts_arrive = rts_sent_at + trip;
  const Micros handshake_done = std::max(posted_at, rts_arrive) + trip;
  // Pipelining: if the receiver was still moving the previous payload when
  // this handshake completed, the handshake cost is hidden behind it.
  const Micros cts_at_sender = busy_until > handshake_done
                                   ? busy_until + p.hca_rndv_pipeline_residue
                                   : handshake_done;

  RndvTimes times;
  times.inject_begin = cts_at_sender + p.hca_post_overhead;
  // Zero-copy RDMA write: the sender injects straight from the user buffer,
  // the last byte lands one wire latency after injection completes.
  times.sender_done = cts_at_sender + p.hca_post_overhead +
                      static_cast<double>(size) / payload_bw(loopback, sriov, ctx) *
                          contention_factor(ctx);
  // Loopback ingress re-crosses the host PCIe (see eager_costs); it is part
  // of the serialized receive path. The final control latency is pure wire
  // time and pipelines across back-to-back transfers.
  Micros ingress =
      loopback ? static_cast<double>(size) / injection_bw(true, sriov) : 0.0;
  times.receiver_busy_until = times.sender_done + ingress;
  times.receiver_done = times.receiver_busy_until + delivery_latency(loopback, ctx);
  return times;
}

OneSidedCosts HcaChannel::one_sided_costs(Bytes size, bool loopback, bool sriov,
                                          const net::TransferCtx* ctx) const {
  // One-sided ops take the routed latency and static VF-capped bandwidth but
  // are not fed through the contention engine (no per-op flow identity in
  // the window protocol); documented limitation of the fabric model.
  const auto& p = *profile_;
  const BytesPerMicro bw = payload_bw(loopback, sriov, ctx);
  OneSidedCosts costs;
  costs.gap = std::max(p.hca_pipelined_gap, static_cast<double>(size) / bw);
  costs.latency = p.hca_post_overhead + static_cast<double>(size) / bw +
                  delivery_latency(loopback, ctx) +
                  (sriov ? p.sriov_latency_overhead : 0.0);
  return costs;
}

}  // namespace cbmpi::fabric
