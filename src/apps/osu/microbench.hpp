// OSU-micro-benchmark-style measurement kernels (osu-micro-benchmarks v5.0
// analogues), run inside a job body. All timing is virtual.
//
// Conventions follow the OSU suite:
//   * latency: ping-pong, half round-trip, averaged over iterations;
//   * bandwidth: windowed back-to-back non-blocking sends + one ack;
//   * bi-bandwidth: both directions simultaneously;
//   * message rate: bandwidth harness reporting messages/s;
//   * one-sided latency: put (or get) + flush per iteration;
//   * one-sided bandwidth: window of puts (gets) + one flush;
//   * collective latency: per-iteration barrier-separated operation time,
//     reported as the maximum across ranks (the completion time that
//     matters), averaged over iterations.
//
// Pair benchmarks run between comm ranks 0 and 1; other ranks idle.
#pragma once

#include "common/units.hpp"
#include "mpi/runtime.hpp"
#include "mpi/window.hpp"

namespace cbmpi::apps::osu {

struct PairOptions {
  int warmup = 2;
  int iterations = 20;
  int window = 64;  ///< outstanding ops per bandwidth window
};

/// Two-sided ping-pong latency in us (valid on every participating rank).
Micros pt2pt_latency(mpi::Process& p, Bytes size, const PairOptions& opt = {});

/// Uni-directional bandwidth in MB/s.
double pt2pt_bandwidth(mpi::Process& p, Bytes size, const PairOptions& opt = {});

/// Bi-directional bandwidth in MB/s.
double pt2pt_bi_bandwidth(mpi::Process& p, Bytes size, const PairOptions& opt = {});

/// Messages per second for back-to-back sends of `size`.
double pt2pt_message_rate(mpi::Process& p, Bytes size, const PairOptions& opt = {});

enum class OneSidedOp { Put, Get };

/// One-sided op + flush latency in us.
Micros one_sided_latency(mpi::Process& p, OneSidedOp op, Bytes size,
                         const PairOptions& opt = {});

/// One-sided windowed bandwidth in MB/s.
double one_sided_bandwidth(mpi::Process& p, OneSidedOp op, Bytes size,
                           const PairOptions& opt = {});

enum class Collective { Bcast, Allreduce, Allgather, Alltoall };

const char* to_string(Collective collective);

/// Average (over iterations) of the max-across-ranks collective time, us.
/// `size` is the per-rank message size in bytes (OSU convention).
Micros collective_latency(mpi::Process& p, Collective collective, Bytes size,
                          const PairOptions& opt = {});

}  // namespace cbmpi::apps::osu
