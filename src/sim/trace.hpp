// Event trace recorder (optional, off by default).
//
// Channels and the MPI progress engine emit TraceEvents when a recorder is
// attached to the job; tests use it to assert protocol structure (e.g. "a
// rendezvous transfer emitted RTS, CTS, DATA in order") and benches can dump
// it for debugging. Thread-safe: many ranks append concurrently.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace cbmpi::sim {

enum class TraceKind : std::uint8_t {
  SendEager,
  SendRndvRts,
  SendRndvData,
  RecvRndvCts,
  RecvComplete,
  Put,
  Get,
  Compute,
  ChannelSelect,
  FaultInject,  ///< an injected fault fired at this point
  Retry,        ///< a transfer attempt was retried after a transient fault
  Degrade,      ///< a fallback decision (locality or channel) was taken
  CollAlgo,     ///< a collective resolved to an algorithm ("bcast/binomial")
  NetCongest,   ///< a fabric transfer was slowed by link contention
};

const char* to_string(TraceKind kind);

struct TraceEvent {
  TraceKind kind;
  int src = -1;
  int dst = -1;
  Bytes size = 0;
  Micros at = 0.0;
  std::string note;
};

class TraceRecorder {
 public:
  void record(TraceEvent event);

  /// Snapshot of all events recorded so far, in append order.
  std::vector<TraceEvent> events() const;

  /// Number of events of one kind.
  std::size_t count(TraceKind kind) const;

  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

}  // namespace cbmpi::sim
