#include "fabric/hca_channel.hpp"

#include <algorithm>

namespace cbmpi::fabric {

void HcaChannel::ensure_connected(int a, int b) {
  const std::scoped_lock lock(mutex_);
  queue_pairs_.insert(std::minmax(a, b));
}

std::size_t HcaChannel::queue_pairs() const {
  const std::scoped_lock lock(mutex_);
  return queue_pairs_.size();
}

BytesPerMicro HcaChannel::injection_bw(bool loopback, bool sriov) const {
  const BytesPerMicro base =
      loopback ? profile_->hca_loopback_bw : profile_->hca_link_bw;
  return sriov ? base * profile_->sriov_bw_derate : base;
}

Micros HcaChannel::control_latency(bool loopback) const {
  const auto& p = *profile_;
  return loopback ? p.hca_loopback_latency
                  : p.hca_wire_latency + p.hca_switch_latency;
}

Micros HcaChannel::delivery_latency(bool loopback,
                                    const net::TransferCtx* ctx) const {
  if (routed(loopback, ctx))
    return fabric_->path_latency(ctx->src_host, ctx->dst_host);
  return control_latency(loopback);
}

BytesPerMicro HcaChannel::payload_bw(bool loopback, bool sriov,
                                     const net::TransferCtx* ctx) const {
  if (routed(loopback, ctx))
    return fabric_->flow_rate_cap(ctx->src_host, ctx->dst_host, sriov);
  return injection_bw(loopback, sriov);
}

double HcaChannel::contention_factor(const net::TransferCtx* ctx) const {
  if (congestion_ == nullptr || ctx == nullptr) return 1.0;
  return congestion_->factor(ctx->key);
}

Micros HcaChannel::contention_stall(Bytes size, bool loopback, bool sriov,
                                    const net::TransferCtx* ctx) const {
  if (!routed(loopback, ctx)) return 0.0;
  const double factor = contention_factor(ctx);
  if (factor <= 1.0) return 0.0;
  return static_cast<double>(size) / payload_bw(loopback, sriov, ctx) *
         (factor - 1.0);
}

EagerCosts HcaChannel::eager_costs(Bytes size, bool loopback, bool sriov,
                                   const net::TransferCtx* ctx) const {
  const auto& p = *profile_;
  EagerCosts costs;
  costs.sender = p.hca_post_overhead +
                 static_cast<double>(size) / payload_bw(loopback, sriov, ctx) *
                     contention_factor(ctx);
  costs.delivery =
      delivery_latency(loopback, ctx) + (sriov ? p.sriov_latency_overhead : 0.0);
  // Receiver copies out of the eager ring into the user buffer. On the
  // loopback path the payload also re-crosses the host PCIe/NIC on ingress —
  // the same serialized resource — which is the heart of the intra-host
  // inter-container bottleneck.
  costs.receiver = 0.08 + static_cast<double>(size) / p.hca_eager_copy_bw;
  if (loopback)
    costs.receiver += static_cast<double>(size) / injection_bw(true, sriov);
  return costs;
}

RndvTimes HcaChannel::rndv_times(Bytes size, bool loopback, Micros rts_sent_at,
                                 Micros posted_at, Micros busy_until, bool sriov,
                                 const net::TransferCtx* ctx) const {
  const auto& p = *profile_;
  const Micros trip = p.hca_rndv_trip + delivery_latency(loopback, ctx) +
                      (sriov ? p.sriov_latency_overhead : 0.0);
  const Micros rts_arrive = rts_sent_at + trip;
  const Micros handshake_done = std::max(posted_at, rts_arrive) + trip;
  // Pipelining: if the receiver was still moving the previous payload when
  // this handshake completed, the handshake cost is hidden behind it.
  const Micros cts_at_sender = busy_until > handshake_done
                                   ? busy_until + p.hca_rndv_pipeline_residue
                                   : handshake_done;

  RndvTimes times;
  times.inject_begin = cts_at_sender + p.hca_post_overhead;
  // Zero-copy RDMA write: the sender injects straight from the user buffer,
  // the last byte lands one wire latency after injection completes.
  times.sender_done = cts_at_sender + p.hca_post_overhead +
                      static_cast<double>(size) / payload_bw(loopback, sriov, ctx) *
                          contention_factor(ctx);
  // Loopback ingress re-crosses the host PCIe (see eager_costs); it is part
  // of the serialized receive path. The final control latency is pure wire
  // time and pipelines across back-to-back transfers.
  Micros ingress =
      loopback ? static_cast<double>(size) / injection_bw(true, sriov) : 0.0;
  times.receiver_busy_until = times.sender_done + ingress;
  times.receiver_done = times.receiver_busy_until + delivery_latency(loopback, ctx);
  return times;
}

RndvTimes HcaChannel::rndv_times(Bytes size, bool loopback, Micros rts_sent_at,
                                 Micros posted_at, Micros busy_until, bool sriov,
                                 const net::TransferCtx* ctx,
                                 const RegPlan& reg) const {
  if (!tuning_.reg_model)
    return rndv_times(size, loopback, rts_sent_at, posted_at, busy_until, sriov,
                      ctx);
  const auto& p = *profile_;
  const Micros trip = p.hca_rndv_trip + delivery_latency(loopback, ctx) +
                      (sriov ? p.sriov_latency_overhead : 0.0);
  const Bytes chunk = std::max<Bytes>(tuning_.rndv_chunk, 1);
  const Micros hit_cost = p.hca_reg_cache_hit * tuning_.reg_cost_scale;
  const Bytes first = std::min<Bytes>(size, chunk);
  const Micros send_reg0 =
      (reg.sender_hit ? hit_cost : reg_costs(first).reg) + reg.sender_extra;
  const Micros recv_reg0 =
      (reg.receiver_hit ? hit_cost : reg_costs(first).reg) + reg.receiver_extra;

  const Micros rts_arrive = rts_sent_at + trip;
  // The receiver pins its chunk-0 landing region before it can advertise the
  // destination in the CTS: that pin sits squarely on the critical path.
  RndvTimes times;
  times.recv_reg_begin = std::max(posted_at, rts_arrive);
  times.recv_reg_end = times.recv_reg_begin + recv_reg0;
  const Micros handshake_done = times.recv_reg_end + trip;
  // The sender pins chunk 0 concurrently with the handshake, starting the
  // moment it posted the RTS — a miss only shows when it outlasts the trips.
  const Micros sender_ready = std::max(handshake_done, rts_sent_at + send_reg0);
  const Micros cts_at_sender = busy_until > sender_ready
                                   ? busy_until + p.hca_rndv_pipeline_residue
                                   : sender_ready;

  const BytesPerMicro bw = payload_bw(loopback, sriov, ctx);
  const double cf = contention_factor(ctx);
  times.inject_begin = cts_at_sender + p.hca_post_overhead;
  times.reg_stall = recv_reg0 + std::max(0.0, sender_ready - handshake_done);

  // Chunked injection: while chunk k flows, both endpoints register chunk
  // k+1; each step costs the slower of the two. A cache hit on both sides
  // means everything is already pinned and the pipeline runs at pure RDMA
  // speed.
  Micros t = times.inject_begin;
  const bool pinned_ahead = reg.sender_hit && reg.receiver_hit;
  for (Bytes off = 0; off < size; off += chunk) {
    const Bytes len = std::min<Bytes>(chunk, size - off);
    const Micros xfer = static_cast<double>(len) / bw * cf;
    Micros next_reg = 0.0;
    if (!pinned_ahead && off + chunk < size)
      next_reg = reg_costs(std::min<Bytes>(chunk, size - off - chunk)).reg;
    t += std::max(xfer, next_reg);
    times.reg_stall += std::max(0.0, next_reg - xfer);
  }
  times.sender_done = t;

  const Micros ingress =
      loopback ? static_cast<double>(size) / injection_bw(true, sriov) : 0.0;
  times.receiver_busy_until = times.sender_done + ingress;
  times.receiver_done = times.receiver_busy_until + delivery_latency(loopback, ctx);
  return times;
}

void HcaChannel::init_reg_cache(std::vector<Bytes> per_rank_capacity) {
  if (!tuning_.reg_model) return;
  reg_cache_ = std::make_unique<RegistrationCache>(std::move(per_rank_capacity));
}

RegCosts HcaChannel::reg_costs(Bytes size) const {
  const auto& p = *profile_;
  RegCosts costs;
  costs.reg = (p.hca_reg_base + static_cast<double>(size) / p.hca_reg_bw) *
              tuning_.reg_cost_scale;
  costs.dereg = (p.hca_dereg_base + static_cast<double>(size) / p.hca_dereg_bw) *
                tuning_.reg_cost_scale;
  return costs;
}

HcaChannel::RegLookup HcaChannel::reg_lookup(int rank, std::uint64_t buffer_id,
                                             Bytes size) {
  RegLookup out;
  if (!tuning_.reg_model || reg_cache_ == nullptr) return out;
  const auto& p = *profile_;
  const auto look = reg_cache_->lookup(rank, buffer_id, size);
  out.hit = look.hit;
  out.evictions = look.evictions;
  if (look.evictions > 0)
    out.extra += (p.hca_dereg_base * static_cast<double>(look.evictions) +
                  static_cast<double>(look.evicted_bytes) / p.hca_dereg_bw) *
                 tuning_.reg_cost_scale;
  // A buffer too large to cache is unpinned right after the transfer; the
  // dereg is CPU work of the same rendezvous, charged into its reg window.
  if (!look.cached) out.extra += reg_costs(size).dereg;
  return out;
}

RegCacheStats HcaChannel::reg_cache_stats() const {
  RegCacheStats stats;
  if (!tuning_.reg_model || reg_cache_ == nullptr) return stats;
  stats = reg_cache_->stats();
  stats.enabled = true;
  return stats;
}

OneSidedCosts HcaChannel::one_sided_costs(Bytes size, bool loopback, bool sriov,
                                          const net::TransferCtx* ctx) const {
  // One-sided ops take the routed latency and static VF-capped bandwidth but
  // are not fed through the contention engine (no per-op flow identity in
  // the window protocol); documented limitation of the fabric model.
  const auto& p = *profile_;
  const BytesPerMicro bw = payload_bw(loopback, sriov, ctx);
  OneSidedCosts costs;
  costs.gap = std::max(p.hca_pipelined_gap, static_cast<double>(size) / bw);
  costs.latency = p.hca_post_overhead + static_cast<double>(size) / bw +
                  delivery_latency(loopback, ctx) +
                  (sriov ? p.sriov_latency_overhead : 0.0);
  return costs;
}

}  // namespace cbmpi::fabric
