// Channel selection policy.
//
// This is the decision the whole paper hinges on. For every (src, dst) pair
// the runtime must decide which channel carries the message:
//
//   * HostnameBased (default MVAPICH2 behaviour): peers are "local" iff their
//     hostnames match. Every container has a unique hostname, so co-resident
//     containers are misclassified as remote and fall onto the HCA loopback
//     path — the bottleneck identified in Sec. III.
//
//   * ContainerAware (the paper's design): peers are local iff the Container
//     Locality Detector found them in the same shared-memory container list,
//     which works across containers whenever the host's IPC namespace is
//     shared.
//
// Local traffic is split by SMP_EAGER_SIZE between the SHM eager path and
// the CMA rendezvous path (when the PID namespace is shared); remote traffic
// is split by MV2_IBA_EAGER_THRESHOLD between HCA eager and HCA rendezvous.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fabric/message.hpp"
#include "fabric/tuning.hpp"
#include "faults/fault.hpp"
#include "osl/process.hpp"

namespace cbmpi::fabric {

enum class LocalityPolicy { HostnameBased, ContainerAware };

const char* to_string(LocalityPolicy policy);

/// What the runtime knows about one rank at selection time.
struct RankEndpoint {
  const osl::SimProcess* process = nullptr;
  std::string hostname;         ///< gethostname() inside the rank's container
  bool hca_accessible = true;   ///< container started with --privileged
  bool sriov = false;           ///< HCA reached through an SR-IOV VF (VMs)
};

class ChannelSelector {
 public:
  /// `faults`/`fault_log` are optional: when an injector is present the
  /// selector evaluates the CMA -> SHM -> HCA fallback chain per pair (an
  /// injected CMA EPERM demotes large messages to SHM rendezvous; an injected
  /// /dev/shm failure on either endpoint demotes the pair to the HCA
  /// loopback) and records each degradation decision once.
  ChannelSelector(LocalityPolicy policy, TuningParams tuning,
                  std::vector<RankEndpoint> endpoints,
                  const faults::FaultInjector* faults = nullptr,
                  faults::FaultLog* fault_log = nullptr);

  /// Installs the Container Locality Detector's result (required before the
  /// first select() under ContainerAware). co[i][j] != 0 iff ranks i and j
  /// found each other in the same container list.
  void set_detected_locality(std::vector<std::vector<std::uint8_t>> co_resident);

  struct Decision {
    ChannelKind channel = ChannelKind::Hca;
    Protocol protocol = Protocol::Eager;
    bool same_socket = false;  ///< physical, for SHM/CMA copy costs
    bool loopback = false;     ///< physical, for the HCA path
    bool sriov = false;        ///< either endpoint behind an SR-IOV VF
  };

  Decision select(int src, int dst, Bytes size) const;

  /// Does the policy consider these ranks co-resident?
  bool co_resident(int a, int b) const;

  /// Physical truth, independent of policy.
  bool same_host(int a, int b) const;
  bool same_socket(int a, int b) const;

  /// Forces every selection onto one channel (Fig. 3 channel comparison).
  void force_channel(std::optional<ChannelKind> kind) { forced_ = kind; }

  LocalityPolicy policy() const { return policy_; }
  const TuningParams& tuning() const { return tuning_; }
  int num_ranks() const { return static_cast<int>(endpoints_.size()); }
  const RankEndpoint& endpoint(int rank) const;

  /// Is the pair's SHM path intact (no injected /dev/shm failure on either
  /// endpoint)? Exposed for the runtime's degradation bookkeeping.
  bool shm_usable(int a, int b) const;

 private:
  bool cma_usable(int a, int b) const;
  /// Memoized injector probe: the verdicts are pure functions of (seed,
  /// pair), so each is computed at most once and degraded selection stays
  /// O(1) per pair instead of re-hashing the probes on every message.
  bool cma_denied(int a, int b) const;

  LocalityPolicy policy_;
  TuningParams tuning_;
  std::vector<RankEndpoint> endpoints_;
  std::vector<std::vector<std::uint8_t>> detected_;
  std::optional<ChannelKind> forced_;
  const faults::FaultInjector* faults_;
  faults::FaultLog* fault_log_;

  /// Per-rank /dev/shm verdict, precomputed in the constructor (empty when
  /// no injector): a host-wide /dev/shm fault demotes every pair touching
  /// the rank, and select() must not re-probe it per message.
  std::vector<std::uint8_t> shm_fail_;
  /// Lazy per-pair CMA EPERM verdict: 0 = unknown, 1 = clear, 2 = denied.
  /// Atomic because ranks select concurrently; the probe is pure, so racing
  /// writers store the same value.
  mutable std::unique_ptr<std::atomic<std::uint8_t>[]> cma_memo_;
};

}  // namespace cbmpi::fabric
