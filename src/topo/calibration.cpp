#include "topo/calibration.hpp"

// MachineProfile is an aggregate of constants; this translation unit exists so
// the module has an object file anchor (keeps link layout uniform) and as the
// natural home for future loaders (e.g. reading a profile from JSON).
namespace cbmpi::topo {
static_assert(sizeof(MachineProfile) > 0);
}  // namespace cbmpi::topo
