// Post-run critical-path & wait-state analysis (DESIGN.md §16).
//
// Consumes the deterministic SpanRecorder output of one job and answers
// "which rank/channel/protocol made this job slow" mechanically:
//
//   * reconstructs per-rank virtual-time timelines from the Mpi / Compute /
//     Fault spans, with happens-before edges recovered from the dependency
//     payload on Proto spans (xfer id, posted_at / sent_at / avail_at);
//   * walks the job's critical path backward from the last rank to finish,
//     hopping send->recv edges (eager delivery, rendezvous RTS->done) so the
//     returned segments tile [0, critical_path] exactly;
//   * attributes every path microsecond to one blame category (compute /
//     eager / rndv / registration / contention / retry-backoff /
//     checkpoint-restart / other-MPI / idle);
//   * classifies Scalasca-style wait states per rank: late-sender,
//     late-receiver, collective imbalance (max - avg per Coll span group),
//     HCA link-contention stall (vs. the uncontended fabric time) and
//     registration stall (reg time the rendezvous pipeline could not hide).
//
// Everything is computed from virtual-time payloads over canonically sorted
// spans, so the result — and its JSON rendering in the v5 run report — is
// bit-identical across reruns of the same seed.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "obs/json.hpp"
#include "obs/span.hpp"

namespace cbmpi::obs::analysis {

/// Where a critical-path microsecond went. Order is the fixed emission order
/// of the report's blame table.
enum class Blame : std::uint8_t {
  Compute,       ///< application compute phases
  Eager,         ///< eager protocol: staging, delivery, receiver copy
  Rndv,          ///< rendezvous handshake + payload (net of carve-outs)
  Registration,  ///< pin-down registration time the pipeline could not hide
  Contention,    ///< link-contention stretch vs. the uncontended fabric
  Retry,         ///< HCA transient-fault retry backoff
  Recovery,      ///< checkpoint / restart / crash handling
  MpiOther,      ///< MPI call time with no transfer evidence (overheads)
  Idle,          ///< no span covers the path here (startup, skew)
};

inline constexpr std::size_t kBlames = 9;

const char* to_string(Blame blame);

/// One maximal interval of the critical path on one rank's timeline.
struct PathSegment {
  int rank = -1;
  Micros begin = 0.0;
  Micros end = 0.0;
  Blame blame = Blame::Idle;
  std::string name;  ///< span / transfer label ("MPI_Send", "rndv HCA", ...)

  Micros duration() const { return end - begin; }
};

/// Per-rank wait-state totals, summed over the whole run (not only the
/// critical path).
struct RankWaitStates {
  Micros late_sender = 0.0;     ///< recv posted, data/RTS not yet available
  Micros late_receiver = 0.0;   ///< rndv RTS posted, recv not yet posted
  Micros coll_imbalance = 0.0;  ///< max-duration minus own per Coll group
  Micros contention = 0.0;      ///< link-contention stall on own transfers
  Micros registration = 0.0;    ///< unhidden registration on own transfers

  Micros total() const {
    return late_sender + late_receiver + coll_imbalance + contention +
           registration;
  }
};

/// Aggregated imbalance of one collective (all its Coll span groups).
struct CollGroupStat {
  std::string name;          ///< collective label ("bcast", "allreduce", ...)
  std::uint64_t calls = 0;   ///< number of groups (one per call site x round)
  Micros imbalance = 0.0;    ///< sum over groups of (max - avg) duration
};

struct Analysis {
  int nranks = 0;
  int end_rank = -1;          ///< rank whose finish time ends the path
  Micros critical_path = 0.0; ///< == sum of segment durations
  std::vector<PathSegment> segments;       ///< ascending, tiles [0, end]
  std::array<Micros, kBlames> blame{};     ///< per-category path time
  std::vector<RankWaitStates> wait_states; ///< indexed by rank
  std::vector<CollGroupStat> coll_groups;  ///< sorted by collective name

  double blame_fraction(Blame b) const {
    return critical_path > 0.0
               ? blame[static_cast<std::size_t>(b)] / critical_path
               : 0.0;
  }

  /// The k longest segments, duration-descending (ties break on begin, then
  /// rank — deterministic).
  std::vector<PathSegment> top_segments(std::size_t k) const;
};

struct AnalyzeOptions {
  std::size_t top_k = 10;  ///< segments kept in reports / stderr tables
};

/// Runs the whole analysis. `rank_times` are the per-rank completion times
/// from the JobResult; when empty they are derived from span maxima. Spans
/// may be in any order (they are canonically sorted here).
Analysis analyze(std::span<const Span> spans, int nranks,
                 std::span<const Micros> rank_times,
                 const AnalyzeOptions& options = {});

/// Emits the v5 run-report "analysis" object body (caller writes the key).
void write_analysis(JsonWriter& w, const Analysis& analysis,
                    std::size_t top_k = 10);

/// Human-readable blame table + top segments + per-rank wait states, the
/// cbmpirun --analyze stderr rendering.
std::string analysis_summary(const Analysis& analysis, std::size_t top_k = 10);

}  // namespace cbmpi::obs::analysis
