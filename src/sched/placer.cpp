#include "sched/placer.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace cbmpi::sched {

const char* to_string(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::Packed: return "packed";
    case PlacementPolicy::Spread: return "spread";
    case PlacementPolicy::Random: return "random";
    case PlacementPolicy::LocalityAware: return "locality";
    case PlacementPolicy::TopologyAware: return "topology";
  }
  return "?";
}

std::optional<PlacementPolicy> parse_policy(const std::string& name) {
  if (name == "packed") return PlacementPolicy::Packed;
  if (name == "spread") return PlacementPolicy::Spread;
  if (name == "random") return PlacementPolicy::Random;
  if (name == "locality" || name == "locality-aware")
    return PlacementPolicy::LocalityAware;
  if (name == "topology" || name == "topology-aware")
    return PlacementPolicy::TopologyAware;
  return std::nullopt;
}

mpi::TrafficMatrix effective_traffic(const JobSpec& job) {
  if (job.traffic) {
    CBMPI_REQUIRE(job.traffic->size() == static_cast<std::size_t>(job.ranks),
                  "job '", job.name, "' supplies a ", job.traffic->size(),
                  "-rank traffic matrix for ", job.ranks, " ranks");
    return *job.traffic;
  }
  return mpi::JobBodyRegistry::instance().traffic_hint(job.body, job.ranks,
                                                       job.params);
}

namespace {

std::size_t idx(int i) { return static_cast<std::size_t>(i); }

struct HostFree {
  topo::HostId host = 0;
  int free = 0;
};

/// Hosts with capacity, emptiest first (ties by id — deterministic).
std::vector<HostFree> hosts_by_free(const ClusterState& state) {
  std::vector<HostFree> hosts;
  for (int h = 0; h < state.num_hosts(); ++h)
    if (state.free_count(h) > 0) hosts.push_back({h, state.free_count(h)});
  std::stable_sort(hosts.begin(), hosts.end(),
                   [](const HostFree& a, const HostFree& b) { return a.free > b.free; });
  return hosts;
}

/// Folds a rank->host map into a Placement, claiming the lowest free cores
/// of each host in ascending-rank order.
Placement materialize(const std::vector<int>& rank_host, const ClusterState& state) {
  Placement placement;
  for (int h = 0; h < state.num_hosts(); ++h) {
    HostAssignment assignment;
    assignment.host = h;
    for (int r = 0; r < static_cast<int>(rank_host.size()); ++r)
      if (rank_host[idx(r)] == h) assignment.ranks.push_back(r);
    if (assignment.ranks.empty()) continue;
    const auto free = state.free_cores(h);
    CBMPI_REQUIRE(assignment.ranks.size() <= free.size(),
                  "placement oversubscribes host ", h);
    assignment.cores.assign(free.begin(),
                            free.begin() + static_cast<std::ptrdiff_t>(
                                               assignment.ranks.size()));
    placement.hosts.push_back(std::move(assignment));
  }
  return placement;
}

class PackedPlacer : public Placer {
 public:
  const char* name() const override { return "packed"; }
  std::optional<Placement> place(const JobSpec& job,
                                 const ClusterState& state) const override {
    if (state.total_free() < job.ranks) return std::nullopt;
    std::vector<int> rank_host(idx(job.ranks), -1);
    int next = 0;
    for (const auto& host : hosts_by_free(state)) {
      for (int c = 0; c < host.free && next < job.ranks; ++c)
        rank_host[idx(next++)] = host.host;
      if (next == job.ranks) break;
    }
    return materialize(rank_host, state);
  }
};

class SpreadPlacer : public Placer {
 public:
  const char* name() const override { return "spread"; }
  std::optional<Placement> place(const JobSpec& job,
                                 const ClusterState& state) const override {
    if (state.total_free() < job.ranks) return std::nullopt;
    std::vector<int> remaining(idx(state.num_hosts()), 0);
    for (int h = 0; h < state.num_hosts(); ++h)
      remaining[idx(h)] = state.free_count(h);
    std::vector<int> rank_host(idx(job.ranks), -1);
    for (int r = 0; r < job.ranks; ++r) {
      // Most-free host first levels load across the cluster.
      int best = -1;
      for (int h = 0; h < state.num_hosts(); ++h)
        if (remaining[idx(h)] > 0 &&
            (best < 0 || remaining[idx(h)] > remaining[idx(best)]))
          best = h;
      rank_host[idx(r)] = best;
      --remaining[idx(best)];
    }
    return materialize(rank_host, state);
  }
};

class RandomPlacer : public Placer {
 public:
  explicit RandomPlacer(std::uint64_t seed) : seed_(seed) {}
  const char* name() const override { return "random"; }
  std::optional<Placement> place(const JobSpec& job,
                                 const ClusterState& state) const override {
    if (state.total_free() < job.ranks) return std::nullopt;
    // Seeded per (scheduler seed, job id): probing the same job twice —
    // e.g. a backfill check then the real start — draws the same placement.
    Xoshiro256 rng(mix64(seed_ ^ mix64(static_cast<std::uint64_t>(job.id) +
                                       std::uint64_t{0x5bf03635})));
    std::vector<int> remaining(idx(state.num_hosts()), 0);
    for (int h = 0; h < state.num_hosts(); ++h)
      remaining[idx(h)] = state.free_count(h);
    std::vector<int> rank_host(idx(job.ranks), -1);
    for (int r = 0; r < job.ranks; ++r) {
      std::vector<int> candidates;
      for (int h = 0; h < state.num_hosts(); ++h)
        if (remaining[idx(h)] > 0) candidates.push_back(h);
      const int pick =
          candidates[static_cast<std::size_t>(rng.below(candidates.size()))];
      rank_host[idx(r)] = pick;
      --remaining[idx(pick)];
    }
    return materialize(rank_host, state);
  }

 private:
  std::uint64_t seed_;
};

/// Greedy graph growing over an ordered host list: seed each host's bin with
/// the hottest unplaced rank, then keep pulling in whichever unplaced rank
/// has the most traffic into the bin. Maximizes co-resident pair weight
/// without solving the (NP-hard) balanced partition exactly.
std::vector<int> grow_bins(const JobSpec& job, const mpi::TrafficMatrix& traffic,
                           const std::vector<HostFree>& hosts) {
  std::vector<int> rank_host(idx(job.ranks), -1);
  std::vector<bool> placed(idx(job.ranks), false);
  int unplaced = job.ranks;

  for (const auto& host : hosts) {
    if (unplaced == 0) break;
    const int capacity = std::min(host.free, unplaced);
    std::vector<int> bin;
    for (int slot = 0; slot < capacity; ++slot) {
      int best = -1;
      double best_weight = -1.0;
      for (int r = 0; r < job.ranks; ++r) {
        if (placed[idx(r)]) continue;
        double weight = 0.0;
        if (bin.empty()) {
          for (int peer = 0; peer < job.ranks; ++peer)
            if (!placed[idx(peer)] && peer != r)
              weight += traffic[idx(r)][idx(peer)];
        } else {
          for (const int member : bin) weight += traffic[idx(r)][idx(member)];
        }
        if (weight > best_weight) {
          best_weight = weight;
          best = r;
        }
      }
      bin.push_back(best);
      placed[idx(best)] = true;
      rank_host[idx(best)] = host.host;
      --unplaced;
    }
  }
  return rank_host;
}

class LocalityAwarePlacer : public Placer {
 public:
  const char* name() const override { return "locality"; }
  std::optional<Placement> place(const JobSpec& job,
                                 const ClusterState& state) const override {
    if (state.total_free() < job.ranks) return std::nullopt;
    const auto traffic = effective_traffic(job);
    // Emptiest host first: fewest bins for neighbour-structured traffic.
    return materialize(grow_bins(job, traffic, hosts_by_free(state)), state);
  }
};

class TopologyAwarePlacer : public Placer {
 public:
  explicit TopologyAwarePlacer(std::vector<std::vector<int>> host_hops)
      : hops_(std::move(host_hops)) {}
  const char* name() const override { return "topology"; }
  std::optional<Placement> place(const JobSpec& job,
                                 const ClusterState& state) const override {
    if (state.total_free() < job.ranks) return std::nullopt;
    const auto traffic = effective_traffic(job);
    // Same bin growing as LocalityAware, but the hosts are accreted in hop
    // proximity order instead of free-capacity order: the inter-host traffic
    // that does remain crosses as few switches as the fabric allows.
    return materialize(grow_bins(job, traffic, hosts_by_proximity(state)), state);
  }

 private:
  int hop(int a, int b) const {
    if (a == b) return 0;
    const auto au = idx(a), bu = idx(b);
    if (au >= hops_.size() || bu >= hops_[au].size()) return 0;
    return hops_[au][bu];
  }

  /// Accretes the visiting order: start from the emptiest host, then
  /// repeatedly admit the candidate with the smallest total hop distance to
  /// the hosts already chosen (ties: more free cores, then lower id). The
  /// whole pool is ordered, so a capacity shortfall never strands a rank.
  std::vector<HostFree> hosts_by_proximity(const ClusterState& state) const {
    std::vector<HostFree> pool = hosts_by_free(state);
    if (hops_.empty() || pool.size() <= 1) return pool;

    std::vector<HostFree> chosen;
    chosen.reserve(pool.size());
    chosen.push_back(pool.front());
    pool.erase(pool.begin());

    while (!pool.empty()) {
      std::size_t best = 0;
      long best_dist = -1;
      for (std::size_t c = 0; c < pool.size(); ++c) {
        long dist = 0;
        for (const auto& h : chosen) dist += hop(pool[c].host, h.host);
        if (best_dist < 0 || dist < best_dist ||
            (dist == best_dist && pool[c].free > pool[best].free) ||
            (dist == best_dist && pool[c].free == pool[best].free &&
             pool[c].host < pool[best].host))
          best_dist = dist, best = c;
      }
      chosen.push_back(pool[best]);
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(best));
    }
    return chosen;
  }

  std::vector<std::vector<int>> hops_;
};

}  // namespace

std::unique_ptr<Placer> make_placer(PlacementPolicy policy, std::uint64_t seed,
                                    const std::vector<std::vector<int>>* host_hops) {
  switch (policy) {
    case PlacementPolicy::Packed: return std::make_unique<PackedPlacer>();
    case PlacementPolicy::Spread: return std::make_unique<SpreadPlacer>();
    case PlacementPolicy::Random: return std::make_unique<RandomPlacer>(seed);
    case PlacementPolicy::LocalityAware:
      return std::make_unique<LocalityAwarePlacer>();
    case PlacementPolicy::TopologyAware:
      return std::make_unique<TopologyAwarePlacer>(
          host_hops ? *host_hops : std::vector<std::vector<int>>{});
  }
  CBMPI_REQUIRE(false, "unknown placement policy");
}

PlacementStats placement_stats(const JobSpec& job, const Placement& placement,
                               const mpi::TrafficMatrix& traffic) {
  PlacementStats stats;
  stats.hosts_used = static_cast<int>(placement.hosts.size());

  std::vector<int> host_of(idx(job.ranks), -1);
  std::vector<int> container_of(idx(job.ranks), -1);
  int next_container = 0;
  for (const auto& assignment : placement.hosts) {
    const int rpc = job.ranks_per_container;
    for (std::size_t k = 0; k < assignment.ranks.size(); ++k) {
      const int rank = assignment.ranks[k];
      host_of[idx(rank)] = assignment.host;
      container_of[idx(rank)] =
          rpc > 0 ? next_container + static_cast<int>(k) / rpc : -1;
    }
    if (rpc > 0)
      next_container +=
          (static_cast<int>(assignment.ranks.size()) + rpc - 1) / rpc;
  }

  double local_weight = 0.0, total_weight = 0.0;
  for (int a = 0; a < job.ranks; ++a)
    for (int b = a + 1; b < job.ranks; ++b) {
      const bool same_host = host_of[idx(a)] == host_of[idx(b)];
      if (same_host) {
        ++stats.intra_host_pairs;
        if (container_of[idx(a)] >= 0 &&
            container_of[idx(a)] == container_of[idx(b)])
          ++stats.intra_container_pairs;
      } else {
        ++stats.inter_host_pairs;
      }
      const double weight = traffic[idx(a)][idx(b)];
      total_weight += weight;
      if (same_host) local_weight += weight;
    }
  stats.local_traffic_share =
      total_weight > 0.0 ? local_weight / total_weight : 1.0;
  return stats;
}

mpi::JobConfig make_job_config(const JobSpec& job, const Placement& placement,
                               const topo::HostShape& shape) {
  CBMPI_REQUIRE(!placement.hosts.empty(), "placement uses no hosts");
  const int rpc = job.ranks_per_container;
  CBMPI_REQUIRE(rpc >= 0, "ranks_per_container must be >= 0 (0 = native)");

  mpi::JobConfig config;
  auto& spec = config.deployment;
  spec.privileged = job.privileged;
  spec.share_host_ipc = job.share_host_ipc;
  spec.share_host_pid = job.share_host_pid;
  spec.num_hosts = static_cast<int>(placement.hosts.size());
  config.cluster_hosts = spec.num_hosts;
  config.policy = job.policy;
  config.faults = job.faults;

  container::JobPlacement jp;
  jp.slots.resize(idx(job.ranks));
  jp.host_cpusets.resize(placement.hosts.size());
  std::vector<bool> seen(idx(job.ranks), false);
  int max_ranks_on_host = 0, max_containers_on_host = 0;

  for (std::size_t dense = 0; dense < placement.hosts.size(); ++dense) {
    const auto& assignment = placement.hosts[dense];
    CBMPI_REQUIRE(assignment.ranks.size() == assignment.cores.size(),
                  "host assignment ranks/cores length mismatch");
    CBMPI_REQUIRE(!assignment.ranks.empty(), "empty host assignment");
    max_ranks_on_host =
        std::max(max_ranks_on_host, static_cast<int>(assignment.ranks.size()));
    for (std::size_t k = 0; k < assignment.ranks.size(); ++k) {
      const int rank = assignment.ranks[k];
      CBMPI_REQUIRE(rank >= 0 && rank < job.ranks && !seen[idx(rank)],
                    "rank ", rank, " missing or placed twice");
      seen[idx(rank)] = true;
      container::RankSlot slot;
      slot.host = static_cast<topo::HostId>(dense);
      slot.container_index = rpc > 0 ? static_cast<int>(k) / rpc : -1;
      slot.core_slot = rpc > 0 ? static_cast<int>(k) % rpc : static_cast<int>(k);
      const int flat = assignment.cores[k];
      slot.core = topo::CoreId{flat / shape.cores_per_socket,
                               flat % shape.cores_per_socket};
      jp.slots[idx(rank)] = slot;
    }
    if (rpc > 0) {
      auto& cpusets = jp.host_cpusets[dense];
      for (std::size_t begin = 0; begin < assignment.cores.size(); begin += idx(rpc))
        cpusets.emplace_back(
            assignment.cores.begin() + static_cast<std::ptrdiff_t>(begin),
            assignment.cores.begin() +
                static_cast<std::ptrdiff_t>(
                    std::min(begin + idx(rpc), assignment.cores.size())));
      max_containers_on_host =
          std::max(max_containers_on_host, static_cast<int>(cpusets.size()));
    }
  }
  for (int r = 0; r < job.ranks; ++r)
    CBMPI_REQUIRE(seen[idx(r)], "rank ", r, " not placed on any host");

  // Keep the homogeneous fields roughly meaningful for labels/validation.
  spec.containers_per_host = rpc > 0 ? max_containers_on_host : 0;
  spec.procs_per_host = max_ranks_on_host;
  jp.spec = spec;
  config.placement = std::move(jp);
  return config;
}

}  // namespace cbmpi::sched
