// Message envelopes and rendezvous handshake state.
//
// One Envelope is what a sender deposits into the receiver's matcher. Eager
// envelopes carry the payload (already staged through the channel). A
// rendezvous envelope is the RTS: it carries a shared RndvState pointing at
// the sender's buffer; the *receiver* performs the transfer at match time
// (exactly how CMA works: process_vm_readv is issued by the destination) and
// then reports the sender's completion time back through the state.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/units.hpp"
#include "osl/cma.hpp"

namespace cbmpi::fabric {

enum class ChannelKind : std::uint8_t { Shm = 0, Cma = 1, Hca = 2 };
inline constexpr std::size_t kChannelKinds = 3;

const char* to_string(ChannelKind kind);

enum class Protocol : std::uint8_t { Eager, Rendezvous };

/// Shared sender/receiver state of one rendezvous transfer.
class RndvState {
 public:
  RndvState(std::span<const std::byte> src_view, const osl::SimProcess* sender,
            Micros rts_sent_at)
      : src_view_(src_view), sender_(sender), rts_sent_at_(rts_sent_at) {}

  std::span<const std::byte> source() const { return src_view_; }
  const osl::SimProcess& sender_process() const { return *sender_; }
  Micros rts_sent_at() const { return rts_sent_at_; }

  /// Receiver side: publish the outcome and wake the sender.
  void complete(Micros sender_complete_at, osl::cma::Result result) {
    {
      const std::scoped_lock lock(mutex_);
      sender_complete_at_ = sender_complete_at;
      result_ = result;
      done_ = true;
    }
    cv_.notify_all();
  }

  /// Sender side: block (wall-clock) until the receiver finished the pull;
  /// returns the sender's virtual completion time.
  Micros wait_sender_complete() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return done_; });
    return sender_complete_at_;
  }

  /// Bounded wait; returns true once done. Lets blocked senders poll an
  /// abort flag between waits.
  bool wait_done_for(std::chrono::milliseconds timeout) {
    std::unique_lock lock(mutex_);
    return cv_.wait_for(lock, timeout, [&] { return done_; });
  }

  bool done() const {
    const std::scoped_lock lock(mutex_);
    return done_;
  }

  /// Valid once done(): how the data move went (CMA can be refused).
  osl::cma::Result result() const {
    const std::scoped_lock lock(mutex_);
    return result_;
  }

 private:
  std::span<const std::byte> src_view_;
  const osl::SimProcess* sender_;
  Micros rts_sent_at_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool done_ = false;
  Micros sender_complete_at_ = 0.0;
  osl::cma::Result result_ = osl::cma::Result::Ok;
};

struct Envelope {
  int src = -1;  ///< world rank of the sender
  int dst = -1;  ///< world rank of the receiver
  int tag = 0;
  std::uint64_t comm_id = 0;
  std::uint64_t seq = 0;  ///< per-(src,dst) send order

  ChannelKind channel = ChannelKind::Shm;
  Protocol protocol = Protocol::Eager;
  Bytes size = 0;

  /// Physical path attributes captured at selection time (cost inputs).
  bool same_socket = false;
  bool loopback = false;
  bool sriov = false;
  /// Eager only: receiver-side completion cost, precomputed by the sender.
  Micros receiver_cost = 0.0;

  /// HCA rendezvous under TuningParams::reg_model: outcome of the sender's
  /// pin-down-cache lookup, performed at RTS time and consumed by the
  /// receiver when it builds the RegPlan at match time.
  bool reg_sender_hit = false;
  Micros reg_sender_extra = 0.0;  ///< sender-side eviction/unpin charge

  /// Eager: virtual time at which the payload is available receiver-side.
  /// Rendezvous: virtual time at which the RTS arrives.
  Micros available_at = 0.0;

  /// Sender's clock when the message left its hands: after the eager
  /// staging cost, or at RTS post time for rendezvous. Feeds the
  /// sender->receiver dependency edge on the receiver-side Proto span.
  Micros sent_at = 0.0;

  std::vector<std::byte> payload;    ///< eager only
  std::shared_ptr<RndvState> rndv;   ///< rendezvous only
};

inline const char* to_string(ChannelKind kind) {
  switch (kind) {
    case ChannelKind::Shm: return "SHM";
    case ChannelKind::Cma: return "CMA";
    case ChannelKind::Hca: return "HCA";
  }
  return "?";
}

}  // namespace cbmpi::fabric
