// PGAS example: a distributed histogram built with the GlobalArray layer —
// the programming model the paper lists as future work, running on the
// locality-aware container runtime.
//
// Every rank draws samples and accumulates into a block-distributed global
// histogram with one-sided atomic updates; rank 0 then reads the whole
// histogram with bulk gets.
//
//   $ ./pgas_histogram [--samples=20000] [--bins=32]
#include <cstdio>

#include "common/options.hpp"
#include "mpi/runtime.hpp"
#include "pgas/global_array.hpp"

int main(int argc, char** argv) {
  using namespace cbmpi;

  Options opts(argc, argv);
  const auto samples = static_cast<std::uint64_t>(
      opts.get_int("samples", 20000, "samples per rank"));
  const auto bins =
      static_cast<std::size_t>(opts.get_int("bins", 32, "histogram bins"));
  if (opts.finish("distributed histogram over a PGAS global array")) return 0;

  mpi::JobConfig config;
  config.deployment = container::DeploymentSpec::containers(1, 4, 8);
  config.policy = fabric::LocalityPolicy::ContainerAware;

  mpi::run_job(config, [&](mpi::Process& p) {
    pgas::GlobalArray<std::int64_t> histogram(p.world(), bins, 0);

    auto rng = p.make_rng(0x4157);
    for (std::uint64_t i = 0; i < samples; ++i) {
      // Sum of two uniforms: a triangular distribution over the bins.
      const double x = (rng.uniform() + rng.uniform()) / 2.0;
      histogram.accumulate(static_cast<std::size_t>(x * static_cast<double>(bins)), 1);
    }
    p.compute(static_cast<double>(samples) * 4.0);
    histogram.sync();

    if (p.rank() == 0) {
      std::vector<std::int64_t> all(bins);
      histogram.read_block(0, std::span<std::int64_t>(all));
      std::int64_t total = 0, peak = 0;
      for (const auto count : all) {
        total += count;
        peak = std::max(peak, count);
      }
      std::printf("histogram of %llu samples across %zu bins:\n",
                  static_cast<unsigned long long>(total), bins);
      for (std::size_t b = 0; b < bins; ++b) {
        const int width =
            static_cast<int>(all[b] * 48 / std::max<std::int64_t>(peak, 1));
        std::printf("%3zu |%-48.*s %lld\n", b, width,
                    "################################################",
                    static_cast<long long>(all[b]));
      }
      std::printf("\n(accumulates ran one-sided over SHM/CMA thanks to the "
                  "container locality detector; virtual time %.1f us)\n",
                  p.now());
    }
    histogram.sync();
  });
  return 0;
}
