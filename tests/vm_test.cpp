// Hypervisor-mode tests: VMs with SR-IOV virtual functions and the optional
// IVSHMEM inter-VM shared-memory device (the MVAPICH2-Virt lineage the paper
// builds on, refs [27]-[29]).
#include <gtest/gtest.h>

#include "apps/graph500/bfs.hpp"
#include "mpi/runtime.hpp"

namespace cbmpi {
namespace {

using container::DeploymentSpec;
using fabric::ChannelKind;
using fabric::LocalityPolicy;
using mpi::JobConfig;

TEST(Vm, Labels) {
  EXPECT_EQ(DeploymentSpec::virtual_machines(1, 2, 4, false).label(), "2-VMs");
  EXPECT_EQ(DeploymentSpec::virtual_machines(1, 1, 4, true).label(),
            "1-VM+ivshmem");
}

TEST(Vm, GuestsShareNothingWithHostByDefault) {
  JobConfig config;
  config.deployment = DeploymentSpec::virtual_machines(1, 2, 2, false);
  config.policy = LocalityPolicy::ContainerAware;
  const auto result = mpi::run_job(config, [](mpi::Process& p) {
    std::vector<int> buf(64);
    if (p.rank() == 0)
      p.world().send(std::span<const int>(buf), 1);
    else
      p.world().recv(std::span<int>(buf), 0);
  });
  // Without IVSHMEM the detector cannot see across guest kernels: even the
  // aware runtime must fall back to the (SR-IOV) HCA loopback.
  EXPECT_EQ(result.profile.total.channel_ops(ChannelKind::Shm), 0u);
  EXPECT_EQ(result.profile.total.channel_ops(ChannelKind::Cma), 0u);
  EXPECT_GE(result.profile.total.channel_ops(ChannelKind::Hca), 1u);
}

TEST(Vm, IvshmemEnablesShmButNeverCma) {
  JobConfig config;
  config.deployment = DeploymentSpec::virtual_machines(1, 2, 2, true);
  config.policy = LocalityPolicy::ContainerAware;
  const auto result = mpi::run_job(config, [](mpi::Process& p) {
    std::vector<std::uint8_t> small(1_KiB), large(64_KiB);
    if (p.rank() == 0) {
      p.world().send(std::span<const std::uint8_t>(small), 1);
      p.world().send(std::span<const std::uint8_t>(large), 1);
    } else {
      p.world().recv(std::span<std::uint8_t>(small), 0);
      p.world().recv(std::span<std::uint8_t>(large), 0);
    }
  });
  EXPECT_GE(result.profile.total.channel_ops(ChannelKind::Shm), 2u)
      << "both transfers ride IVSHMEM shared memory (large one as SHM rndv)";
  EXPECT_EQ(result.profile.total.channel_ops(ChannelKind::Cma), 0u)
      << "CMA is impossible across guest kernels";
  EXPECT_EQ(result.profile.total.channel_ops(ChannelKind::Hca), 0u);
}

TEST(Vm, SriovAddsLatencyOverContainerHca) {
  auto pingpong_time = [](JobConfig config) {
    return mpi::run_job(config,
                        [](mpi::Process& p) {
                          std::vector<std::uint8_t> buf(1_KiB);
                          for (int i = 0; i < 50; ++i) {
                            if (p.rank() == 0) {
                              p.world().send(std::span<const std::uint8_t>(buf), 1);
                              p.world().recv(std::span<std::uint8_t>(buf), 1);
                            } else {
                              p.world().recv(std::span<std::uint8_t>(buf), 0);
                              p.world().send(std::span<const std::uint8_t>(buf), 0);
                            }
                          }
                        })
        .job_time;
  };
  // Two environments on two hosts so traffic is genuinely inter-host.
  JobConfig container_cfg;
  container_cfg.deployment = DeploymentSpec::containers(2, 1, 1);
  JobConfig vm_cfg;
  vm_cfg.deployment = DeploymentSpec::virtual_machines(2, 1, 1, false);
  const Micros container_time = pingpong_time(container_cfg);
  const Micros vm_time = pingpong_time(vm_cfg);
  EXPECT_GT(vm_time, container_time * 1.05)
      << "SR-IOV VF path must cost measurably more than the container's "
         "direct (privileged) HCA access";
  EXPECT_LT(vm_time, container_time * 1.6) << "but it stays near-native";
}

TEST(Vm, VmUniqueHostnames) {
  JobConfig config;
  config.deployment = DeploymentSpec::virtual_machines(1, 2, 2, true);
  mpi::run_job(config, [](mpi::Process& p) {
    // Each VM gets its own hostname like a container does.
    const auto& name = p.os().hostname();
    EXPECT_NE(name.find("vm"), std::string::npos);
  });
}

TEST(Vm, Graph500RunsCorrectlyOnVms) {
  // Functional sanity: the whole stack (graph build + BFS) works across VMs
  // with IVSHMEM, producing the same result as containers.
  JobConfig vm_cfg;
  vm_cfg.deployment = DeploymentSpec::virtual_machines(1, 2, 4, true);
  vm_cfg.policy = LocalityPolicy::ContainerAware;
  JobConfig cont_cfg;
  cont_cfg.deployment = DeploymentSpec::containers(1, 2, 4);
  cont_cfg.policy = LocalityPolicy::ContainerAware;

  std::uint64_t vm_visited = 0, cont_visited = 0;
  for (auto [cfg, out] : {std::pair{&vm_cfg, &vm_visited},
                          std::pair{&cont_cfg, &cont_visited}}) {
    mpi::run_job(*cfg, [&](mpi::Process& p) {
      const apps::graph500::EdgeListParams params{9, 8, 11};
      const auto graph = apps::graph500::build_graph(p, params);
      const auto result = apps::graph500::run_bfs(p, graph, 0);
      if (p.rank() == 0) *out = result.visited;
    });
  }
  EXPECT_EQ(vm_visited, cont_visited);
  EXPECT_GT(vm_visited, 0u);
}

}  // namespace
}  // namespace cbmpi
