# Empty compiler generated dependencies file for ext_virtualization_comparison.
# This may be replaced when dependencies are built.
