// Live-migration vocabulary shared by the engine (src/migrate/engine),
// the policies (src/sched/rebalancer) and the reporters (src/obs/report):
// which container moves where, what the move is predicted to cost, and what
// actually happened. Plain data below mpi/ in the layering so JobConfig /
// JobResult can embed it without a cycle.
//
// The cost model (DESIGN.md §17) mirrors classic pre-copy live migration:
// `precopy_rounds` background copies of a geometrically shrinking dirty set
// (`dirty_rate` per round) overlap execution; the final stop-and-copy pause
// transfers only the residue. The gate compares that pause plus the moved
// ranks' cold re-registration cost against the predicted locality win
// (HCA-vs-SHM per-message and per-byte deltas over the traffic still to
// come), scaled by `cost_margin`.
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"

namespace cbmpi::migrate {

/// What the ElasticRebalancer optimizes for. Off is the default everywhere;
/// with Off every number in the simulator stays bit-identical to a build
/// without src/migrate/.
enum class MigrationPolicy : std::uint8_t {
  Off,       ///< never migrate
  Defrag,    ///< absorb a fragmented job's remote container onto a host
             ///< already running the rest of the job
  Evacuate,  ///< move containers off hosts with crash history before the
             ///< next fault kills the whole job
  Colocate,  ///< co-locate the chattiest cross-host rank pair
};

const char* to_string(MigrationPolicy policy);

/// Parses "off" / "defrag" / "evacuate" / "colocate" (the --migrate flag).
/// Throws on anything else.
MigrationPolicy parse_policy(const std::string& text);

/// Knobs of the pre-copy cost model (--migrate-cost, --precopy-rounds).
struct CostModel {
  /// Gate margin: a move is worthwhile only when predicted_win_us >
  /// total_cost_us * cost_margin. >1 = conservative, <1 = eager.
  double cost_margin = 1.0;
  /// Background image copies before the stop-and-copy pause.
  int precopy_rounds = 2;
  /// Fraction of the image re-dirtied during one pre-copy round.
  double dirty_rate = 0.5;
};

/// One container move, in the coordinates of the job's JobPlacement: local
/// (dense) source host id + container index there, destination physical
/// host, the ranks that ride along, and the destination flat core ids
/// (one per moved rank, disjoint from every cpuset already on the host).
struct MoveSpec {
  int src_host = -1;         ///< local host id in the placement
  int container_index = -1;  ///< container on src_host
  int dst_phys_host = -1;    ///< physical host id (cluster coordinates)
  std::vector<int> ranks;    ///< ranks inside the moved container
  std::vector<int> dst_cores;  ///< flat core ids on the destination
};

/// The rebalancer's traffic forecast for the pairs a move would turn local:
/// how many messages and payload bytes they still exchange after the epoch.
struct TrafficForecast {
  std::uint64_t messages = 0;
  Bytes bytes = 0;
};

/// Everything the cost gate computed, kept for the run report so a rejected
/// or executed move can be audited (predicted vs actual).
struct CostEstimate {
  Bytes image_bytes = 0;       ///< container image = moved ranks' state
  int precopy_rounds = 0;
  Bytes stop_copy_bytes = 0;   ///< residue transferred during the pause
  Micros precopy_us = 0.0;     ///< background copy time (overlapped)
  Micros pause_us = 0.0;       ///< snapshot + stop-and-copy + resume
  Micros rereg_us = 0.0;       ///< cold re-registration on the destination
  Micros total_us = 0.0;       ///< pause_us + rereg_us
  Micros predicted_win_us = 0.0;  ///< locality win over the remaining traffic
  bool worthwhile = false;     ///< predicted_win_us > total_us * cost_margin
};

/// One accepted move, handed from the policy layer to the engine.
struct MigrationPlan {
  MigrationPolicy policy = MigrationPolicy::Off;
  MoveSpec move;
  /// Quiesce at the first body-round boundary at or after this virtual time
  /// (and after at least one completed round, so pair state exists to flush).
  Micros epoch = 1.0;
  CostModel cost{};
  CostEstimate estimate{};
  /// Socket geometry used to resolve flat destination core ids into
  /// (socket, core) pins; 0 = the ClusterBuilder default shape.
  int cores_per_socket = 0;
};

/// What one executed migration actually did (run-report v6 `migration`).
struct MigrationRecord {
  MoveSpec move;
  CostEstimate cost;           ///< the gate's prediction, for comparison
  int quiesce_round = -1;      ///< body round at which ranks drained
  Micros quiesce_at = 0.0;     ///< aligned quiesce instant (source segment)
  Micros resume_at = 0.0;      ///< virtual time the job resumed on the dst
  Bytes snapshot_bytes = 0;    ///< image actually snapshotted
  std::uint64_t drained_msgs = 0;  ///< matcher depth summed at the quiesce
  Micros pause_us = 0.0;       ///< actual snapshot + transfer + resume cost
  int pairs_to_local = 0;      ///< rank pairs that became host-local
  int pairs_to_remote = 0;     ///< rank pairs the move pushed off-host
  std::uint64_t invalidated_reg_entries = 0;  ///< pin-down entries dropped
  Bytes invalidated_reg_bytes = 0;
};

/// Per-job migration outcome, embedded in mpi::JobResult and aggregated by
/// the scheduler into ClusterMetrics.
struct MigrationReport {
  bool enabled = false;  ///< a migration engine drove this job
  MigrationPolicy policy = MigrationPolicy::Off;
  int proposed = 0;
  int rejected = 0;  ///< proposals the cost gate turned down
  int executed = 0;
  Micros total_pause_us = 0.0;
  Micros predicted_win_us = 0.0;
  Micros predicted_cost_us = 0.0;
  std::vector<MigrationRecord> records;
};

}  // namespace cbmpi::migrate
