// Fabric topology: hosts, switches, and directed links with per-link
// bandwidth and latency.
//
// Two shapes are supported:
//   * flat    — every host hangs off one crossbar switch (the shape the
//               pre-fabric cost model implicitly assumed);
//   * fattree — a k-ary fat-tree: k pods of k/2 edge + k/2 aggregation
//               switches and (k/2)^2 core switches, k^3/4 host capacity.
//
// Links are *directed* so host ingress and egress are separate contended
// resources — exactly what an SR-IOV HCA multiplexes across container VFs.
// Routing is deterministic and destination-based (the up-path ECMP choice is
// a pure function of the destination host id, mirroring static InfiniBand
// forwarding tables), so a host pair always uses the same links and reruns
// are bit-identical.
#pragma once

#include <vector>

#include "common/units.hpp"

namespace cbmpi::net {

using LinkId = int;

/// One directed cable between two nodes (host or switch).
struct Link {
  int from = -1;  ///< node id
  int to = -1;    ///< node id
  BytesPerMicro bw = 0.0;
  Micros latency = 0.0;
};

class Topology {
 public:
  /// All hosts behind one crossbar switch. Per-link latency is half the
  /// host-to-host wire latency, so the 2-link path reproduces the flat cost
  /// model's wire + one-switch latency exactly.
  static Topology flat(int hosts, BytesPerMicro link_bw, Micros link_latency,
                       Micros switch_latency);

  /// k-ary fat-tree (k even, hosts <= k^3/4). Hosts fill edge switches in
  /// order: host h sits in pod h / (k^2/4) under edge (h % (k^2/4)) / (k/2).
  static Topology fattree(int arity, int hosts, BytesPerMicro link_bw,
                          Micros link_latency, Micros switch_latency);

  /// Smallest even arity whose fat-tree holds `hosts` hosts.
  static int min_arity_for(int hosts);

  int num_hosts() const { return num_hosts_; }
  int num_switches() const { return num_switches_; }
  int num_links() const { return static_cast<int>(links_.size()); }
  int arity() const { return arity_; }  ///< 0 for the flat shape
  const Link& link(LinkId id) const { return links_[static_cast<std::size_t>(id)]; }

  /// Ordered directed link ids from src host to dst host; empty when
  /// src == dst. Deterministic: depends only on (src, dst).
  std::vector<LinkId> route(int src_host, int dst_host) const;

  /// Number of links on the route (0 for src == dst).
  int hops(int src_host, int dst_host) const;

  /// End-to-end latency: per-link latencies plus one switch traversal per
  /// intermediate node.
  Micros path_latency(int src_host, int dst_host) const;

  /// Narrowest link bandwidth along the route.
  BytesPerMicro min_path_bw(int src_host, int dst_host) const;

  /// Uplink (host egress) and downlink (host ingress) of one host.
  LinkId host_uplink(int host) const;
  LinkId host_downlink(int host) const;

  /// Empty placeholder; every real topology comes from flat() / fattree().
  Topology() = default;

 private:
  std::vector<int> route_nodes(int src_host, int dst_host) const;
  LinkId link_between(int from, int to) const;

  int num_hosts_ = 0;
  int num_switches_ = 0;
  int arity_ = 0;  // 0 = flat
  Micros switch_latency_ = 0.0;
  std::vector<Link> links_;
  // links_from_[node] lists outgoing link ids sorted by destination node id.
  std::vector<std::vector<LinkId>> links_from_;

  // Node-id layout (fat-tree): hosts [0, H), then per-pod edge switches,
  // per-pod aggregation switches, then core switches.
  int edge0_ = 0, agg0_ = 0, core0_ = 0;
};

}  // namespace cbmpi::net
