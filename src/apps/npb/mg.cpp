// MG: multigrid V-cycles on a 3-D Poisson problem, slab-partitioned along z.
// Each smoothing/residual step exchanges one boundary plane with each z
// neighbour, and the hierarchy shrinks those planes level by level — the
// latency-sensitive neighbour-exchange profile of NPB MG.
//
// Simplifications vs. the reference: injection restriction and nearest-plane
// prolongation instead of full weighting (keeps the transfer operators local
// given one halo), damped-Jacobi smoothing instead of the reference smoother.
// The residual-norm contraction that verification relies on is preserved.
#include "apps/npb/npb.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace cbmpi::apps::npb {

namespace {

/// One slab-partitioned grid level. Planes are stored with two ghost planes
/// (index 0 and local_nz+1); a plane is ny*nx doubles.
struct Level {
  int nx = 0, ny = 0, nz = 0;  // global dims
  int local_nz = 0;

  std::size_t plane() const {
    return static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny);
  }
  std::size_t padded() const {
    return plane() * static_cast<std::size_t>(local_nz + 2);
  }
  std::size_t interior() const {
    return plane() * static_cast<std::size_t>(local_nz);
  }
};

class MgSolver {
 public:
  MgSolver(mpi::Process& p, const MgParams& params)
      : p_(&p), comm_(&p.world()), params_(params) {
    const int nranks = comm_->size();
    CBMPI_REQUIRE(params.nz % nranks == 0,
                  "MG nz must divide evenly across ranks (nz=", params.nz,
                  ", ranks=", nranks, ")");
    int nx = params.nx, ny = params.ny, nz = params.nz;
    while (true) {
      Level level{nx, ny, nz, nz / nranks};
      levels_.push_back(level);
      if (nx % 2 != 0 || ny % 2 != 0 || nz % 2 != 0) break;
      if (nx / 2 < 4 || ny / 2 < 4 || (nz / 2) % nranks != 0 || nz / 2 < nranks)
        break;
      nx /= 2;
      ny /= 2;
      nz /= 2;
    }
    u_.resize(levels_.size());
    rhs_.resize(levels_.size());
    scratch_.resize(levels_.size());
    for (std::size_t l = 0; l < levels_.size(); ++l) {
      u_[l].assign(levels_[l].padded(), 0.0);
      rhs_[l].assign(levels_[l].padded(), 0.0);
      scratch_[l].assign(levels_[l].padded(), 0.0);
    }
  }

  std::size_t depth() const { return levels_.size(); }

  /// Fills the finest right-hand side deterministically (the stream is
  /// seeded by the rank's slab offset, so the global field is a pure
  /// function of the seed regardless of rank count... per slab).
  void init_rhs(std::uint64_t seed) {
    auto& f = rhs_[0];
    const auto& level = levels_[0];
    const std::uint64_t skip = static_cast<std::uint64_t>(comm_->rank()) *
                               static_cast<std::uint64_t>(level.local_nz) *
                               level.plane();
    auto rng = Xoshiro256(mix64(seed ^ 0x36D6 ^ skip));
    for (std::size_t i = 0; i < level.interior(); ++i)
      f[level.plane() + i] = rng.uniform() - 0.5;
  }

  double residual_norm() {
    compute_residual(0);
    double local = 0.0;
    const auto& level = levels_[0];
    for (std::size_t i = 0; i < level.interior(); ++i) {
      const double v = scratch_[0][level.plane() + i];
      local += v * v;
    }
    return std::sqrt(comm_->allreduce_value(local, mpi::ReduceOp::Sum));
  }

  void vcycle() { vcycle_at(0); }

 private:
  void halo_exchange(std::vector<double>& field, std::size_t l) {
    const auto& level = levels_[l];
    const int nranks = comm_->size();
    const int me = comm_->rank();
    const int up = me > 0 ? me - 1 : -1;
    const int down = me + 1 < nranks ? me + 1 : -1;
    const std::size_t plane = level.plane();
    const std::size_t last = static_cast<std::size_t>(level.local_nz) * plane;

    std::vector<mpi::Request> reqs;
    if (up >= 0) {
      reqs.push_back(comm_->irecv(std::span<double>(field.data(), plane), up, 21));
      reqs.push_back(
          comm_->isend(std::span<const double>(field.data() + plane, plane), up, 22));
    }
    if (down >= 0) {
      reqs.push_back(comm_->irecv(
          std::span<double>(field.data() + last + plane, plane), down, 22));
      reqs.push_back(
          comm_->isend(std::span<const double>(field.data() + last, plane), down, 21));
    }
    comm_->wait_all(reqs);
  }

  /// Damped Jacobi on level l: u <- u + w D^-1 (f - A u).
  void smooth(std::size_t l) {
    compute_residual(l);
    const auto& level = levels_[l];
    constexpr double kDamping = 0.8 / 6.0;
    auto& u = u_[l];
    const auto& r = scratch_[l];
    const std::size_t plane = level.plane();
    for (std::size_t i = 0; i < level.interior(); ++i)
      u[plane + i] += kDamping * r[plane + i];
    p_->compute(static_cast<double>(level.interior()) * 2.0);
  }

  /// scratch <- f - A u (7-point Laplacian, Dirichlet walls in x/y, slab
  /// halos in z).
  void compute_residual(std::size_t l) {
    const auto& level = levels_[l];
    halo_exchange(u_[l], l);
    auto& u = u_[l];
    auto& r = scratch_[l];
    const auto& f = rhs_[l];
    const std::size_t plane = level.plane();
    const auto nx = static_cast<std::size_t>(level.nx);

    for (int z = 1; z <= level.local_nz; ++z) {
      const std::size_t zoff = static_cast<std::size_t>(z) * plane;
      for (int y = 0; y < level.ny; ++y) {
        const std::size_t yoff = zoff + static_cast<std::size_t>(y) * nx;
        for (int x = 0; x < level.nx; ++x) {
          const std::size_t c = yoff + static_cast<std::size_t>(x);
          double au = 6.0 * u[c];
          au -= u[c - plane];  // ghosts cover slab boundaries
          au -= u[c + plane];
          if (y > 0) au -= u[c - nx];
          if (y + 1 < level.ny) au -= u[c + nx];
          if (x > 0) au -= u[c - 1];
          if (x + 1 < level.nx) au -= u[c + 1];
          r[c] = f[c] - au;
        }
      }
    }
    p_->compute(static_cast<double>(level.interior()) * params_.ops_per_cell);
  }

  /// rhs[l+1] <- inject(scratch[l]) — even points of the fine residual.
  void restrict_to(std::size_t l) {
    const auto& fine = levels_[l];
    const auto& coarse = levels_[l + 1];
    auto& dst = rhs_[l + 1];
    const auto& src = scratch_[l];
    const std::size_t fine_plane = fine.plane();
    const std::size_t coarse_plane = coarse.plane();
    for (int z = 0; z < coarse.local_nz; ++z) {
      for (int y = 0; y < coarse.ny; ++y) {
        for (int x = 0; x < coarse.nx; ++x) {
          const std::size_t c = static_cast<std::size_t>(z + 1) * coarse_plane +
                                static_cast<std::size_t>(y) *
                                    static_cast<std::size_t>(coarse.nx) +
                                static_cast<std::size_t>(x);
          const std::size_t fz = static_cast<std::size_t>(2 * z + 1);
          const std::size_t fidx = fz * fine_plane +
                                   static_cast<std::size_t>(2 * y) *
                                       static_cast<std::size_t>(fine.nx) +
                                   static_cast<std::size_t>(2 * x);
          dst[c] = src[fidx];
        }
      }
    }
    std::fill(u_[l + 1].begin(), u_[l + 1].end(), 0.0);
    p_->compute(static_cast<double>(coarse.interior()) * 2.0);
  }

  /// u[l] += prolong(u[l+1]) — nearest-plane/point interpolation.
  void prolong_from(std::size_t l) {
    const auto& fine = levels_[l];
    const auto& coarse = levels_[l + 1];
    auto& dst = u_[l];
    const auto& src = u_[l + 1];
    const std::size_t fine_plane = fine.plane();
    const std::size_t coarse_plane = coarse.plane();
    for (int z = 0; z < fine.local_nz; ++z) {
      for (int y = 0; y < fine.ny; ++y) {
        for (int x = 0; x < fine.nx; ++x) {
          const std::size_t c = static_cast<std::size_t>(z + 1) * fine_plane +
                                static_cast<std::size_t>(y) *
                                    static_cast<std::size_t>(fine.nx) +
                                static_cast<std::size_t>(x);
          const std::size_t sz = static_cast<std::size_t>(z / 2 + 1);
          const std::size_t sidx = sz * coarse_plane +
                                   static_cast<std::size_t>(y / 2) *
                                       static_cast<std::size_t>(coarse.nx) +
                                   static_cast<std::size_t>(x / 2);
          dst[c] += src[sidx];
        }
      }
    }
    p_->compute(static_cast<double>(fine.interior()) * 2.0);
  }

  void vcycle_at(std::size_t l) {
    for (int s = 0; s < params_.smooth_steps; ++s) smooth(l);
    if (l + 1 < levels_.size()) {
      compute_residual(l);
      restrict_to(l);
      vcycle_at(l + 1);
      prolong_from(l);
      for (int s = 0; s < params_.smooth_steps; ++s) smooth(l);
    } else {
      for (int s = 0; s < 4 * params_.smooth_steps; ++s) smooth(l);
    }
  }

  mpi::Process* p_;
  mpi::Communicator* comm_;
  MgParams params_;
  std::vector<Level> levels_;
  std::vector<std::vector<double>> u_, rhs_, scratch_;
};

}  // namespace

KernelResult run_mg(mpi::Process& p, const MgParams& params) {
  auto& comm = p.world();
  MgSolver solver(p, params);
  solver.init_rhs(p.seed());

  comm.barrier();
  p.sync_time();
  const Micros start = p.now();

  const double r0 = solver.residual_norm();
  for (int c = 0; c < params.vcycles; ++c) solver.vcycle();
  const double r1 = solver.residual_norm();

  KernelResult result;
  result.name = "MG";
  result.time = comm.allreduce_value(p.now() - start, mpi::ReduceOp::Max);
  result.checksum = r1;
  result.verified = std::isfinite(r1) && r1 < r0;
  return result;
}

}  // namespace cbmpi::apps::npb
