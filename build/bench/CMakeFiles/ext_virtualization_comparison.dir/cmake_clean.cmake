file(REMOVE_RECURSE
  "CMakeFiles/ext_virtualization_comparison.dir/ext_virtualization_comparison.cpp.o"
  "CMakeFiles/ext_virtualization_comparison.dir/ext_virtualization_comparison.cpp.o.d"
  "ext_virtualization_comparison"
  "ext_virtualization_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_virtualization_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
