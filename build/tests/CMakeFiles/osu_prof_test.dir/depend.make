# Empty dependencies file for osu_prof_test.
# This may be replaced when dependencies are built.
