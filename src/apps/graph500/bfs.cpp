#include "apps/graph500/bfs.hpp"

#include <algorithm>
#include <thread>

#include "common/error.hpp"

namespace cbmpi::apps::graph500 {

namespace {

constexpr int kDataTag = 7;

/// One shipped frontier edge: the target vertex and its proposed parent.
struct Entry {
  std::uint64_t vertex;
  std::uint64_t parent;
};

}  // namespace

BfsResult run_bfs(mpi::Process& p, const DistGraph& graph, std::uint64_t root,
                  const BfsParams& params) {
  auto& comm = p.world();
  const int nranks = comm.size();
  const int me = comm.rank();
  CBMPI_REQUIRE(root < graph.num_global_vertices, "BFS root out of range");

  const std::size_t entries_per_buffer =
      std::max<std::size_t>(1, params.coalesce_bytes / sizeof(Entry));

  BfsResult result;
  result.root = root;
  result.parent.assign(graph.local_vertices(), kUnreached);
  result.level.assign(graph.local_vertices(), -1);

  comm.barrier();
  p.sync_time();
  const Micros start = p.now();

  // Pre-posted wildcard receives (the mpi-simple receive pool).
  std::vector<std::vector<Entry>> recv_bufs(
      static_cast<std::size_t>(params.recv_depth),
      std::vector<Entry>(entries_per_buffer));
  std::vector<mpi::Request> recv_reqs(static_cast<std::size_t>(params.recv_depth));
  if (nranks > 1) {
    for (int b = 0; b < params.recv_depth; ++b)
      recv_reqs[static_cast<std::size_t>(b)] = comm.irecv(
          std::span<Entry>(recv_bufs[static_cast<std::size_t>(b)]), mpi::kAnySource,
          kDataTag);
  }

  // Per-destination coalescing buffers and in-flight sends.
  std::vector<std::vector<Entry>> send_bufs(static_cast<std::size_t>(nranks));
  for (auto& buf : send_bufs) buf.reserve(entries_per_buffer);
  std::vector<std::pair<mpi::Request, std::vector<Entry>>> in_flight;

  std::vector<std::uint64_t> frontier;       // local vertex ids
  std::vector<std::uint64_t> next_frontier;  // local vertex ids
  std::vector<std::int64_t> sent_counts(static_cast<std::size_t>(nranks), 0);
  std::vector<std::int64_t> received_counts(static_cast<std::size_t>(nranks), 0);

  std::uint64_t local_visited = 0;
  std::uint64_t local_scanned = 0;
  int level = 0;

  if (graph.owner(root) == me) {
    const std::uint64_t local_root = graph.to_local(root);
    result.parent[local_root] = root;
    result.level[local_root] = 0;
    frontier.push_back(local_root);
    ++local_visited;
  }

  auto relax = [&](std::uint64_t global_v, std::uint64_t parent, int at_level) {
    const std::uint64_t local = graph.to_local(global_v);
    if (result.parent[local] == kUnreached) {
      result.parent[local] = parent;
      result.level[local] = at_level;
      next_frontier.push_back(local);
      ++local_visited;
    }
  };

  auto prune_sends = [&] {
    std::erase_if(in_flight, [&](auto& pending) { return comm.test(pending.first); });
  };

  // Drain any completed receive buffer; returns true if one was processed.
  auto poll_receives = [&](int at_level) {
    if (nranks <= 1) return false;
    bool any = false;
    for (int b = 0; b < params.recv_depth; ++b) {
      auto& req = recv_reqs[static_cast<std::size_t>(b)];
      if (!comm.test(req)) continue;
      const auto status = req->status;
      const int src = comm.from_world(status.source);
      const auto entries = status.bytes / sizeof(Entry);
      auto& buf = recv_bufs[static_cast<std::size_t>(b)];
      for (std::size_t i = 0; i < entries; ++i)
        relax(buf[i].vertex, buf[i].parent, at_level);
      received_counts[static_cast<std::size_t>(src)] +=
          static_cast<std::int64_t>(entries);
      p.compute(static_cast<double>(entries) * params.ops_per_edge);
      req = comm.irecv(std::span<Entry>(buf), mpi::kAnySource, kDataTag);
      any = true;
    }
    return any;
  };

  auto flush_buffer = [&](int dest) {
    auto& buf = send_bufs[static_cast<std::size_t>(dest)];
    if (buf.empty()) return;
    sent_counts[static_cast<std::size_t>(dest)] +=
        static_cast<std::int64_t>(buf.size());
    std::vector<Entry> shipped = std::move(buf);  // backing store for the isend
    buf.clear();
    buf.reserve(entries_per_buffer);
    auto req =
        comm.isend(std::span<const Entry>(shipped.data(), shipped.size()), dest,
                   kDataTag);
    in_flight.emplace_back(std::move(req), std::move(shipped));
  };

  while (true) {
    // Expand the local frontier.
    for (const std::uint64_t u_local : frontier) {
      const std::uint64_t u_global = graph.to_global(u_local);
      const auto neighbors = graph.neighbors(u_local);
      local_scanned += neighbors.size();
      p.compute(static_cast<double>(neighbors.size()) * params.ops_per_edge);
      for (const std::uint64_t v : neighbors) {
        const int owner = graph.owner(v);
        if (owner == me) {
          relax(v, u_global, level + 1);
        } else {
          auto& buf = send_bufs[static_cast<std::size_t>(owner)];
          buf.push_back({v, u_global});
          if (buf.size() >= entries_per_buffer) flush_buffer(owner);
        }
      }
      poll_receives(level + 1);
      prune_sends();
    }
    // Ship partial buffers.
    for (int dest = 0; dest < nranks; ++dest) flush_buffer(dest);

    if (nranks > 1) {
      // Level termination: exchange per-peer entry counts, then drain until
      // every expected entry arrived.
      std::vector<std::int64_t> expected(static_cast<std::size_t>(nranks), 0);
      comm.alltoall(std::span<const std::int64_t>(sent_counts),
                    std::span<std::int64_t>(expected));
      auto all_received = [&] {
        for (int r = 0; r < nranks; ++r)
          if (received_counts[static_cast<std::size_t>(r)] <
              expected[static_cast<std::size_t>(r)])
            return false;
        return true;
      };
      while (!all_received()) {
        if (!poll_receives(level + 1)) std::this_thread::yield();
      }
      std::fill(sent_counts.begin(), sent_counts.end(), 0);
      std::fill(received_counts.begin(), received_counts.end(), 0);
      while (!in_flight.empty()) {
        prune_sends();
        std::this_thread::yield();
      }
    }

    const auto next_global = comm.allreduce_value(
        static_cast<std::int64_t>(next_frontier.size()), mpi::ReduceOp::Sum);
    frontier.swap(next_frontier);
    next_frontier.clear();
    ++level;
    if (next_global == 0) break;
  }

  // Withdraw the receive pool; no BFS data can be in flight anymore.
  if (nranks > 1)
    for (auto& req : recv_reqs) comm.cancel(req);

  const Micros elapsed = p.now() - start;
  result.time = comm.allreduce_value(elapsed, mpi::ReduceOp::Max);
  result.visited = static_cast<std::uint64_t>(comm.allreduce_value(
      static_cast<std::int64_t>(local_visited), mpi::ReduceOp::Sum));
  result.edges_scanned = static_cast<std::uint64_t>(comm.allreduce_value(
      static_cast<std::int64_t>(local_scanned), mpi::ReduceOp::Sum));
  result.levels = level;
  return result;
}

}  // namespace cbmpi::apps::graph500
