# Empty dependencies file for pgas_histogram.
# This may be replaced when dependencies are built.
