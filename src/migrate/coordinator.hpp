// Quiesce coordinator: the rendezvous point between the migration engine
// and the runtime's coordinated-checkpoint hook (Process::checkpoint).
//
// The engine runs a job as two segments. During the first it installs a
// Coordinator in the JobConfig; every rank's checkpoint() call then asks
// decide() whether this round boundary is the quiesce point. The decision
// is memoized per round, so all ranks — already aligned to one virtual
// instant by the phase barrier, with every in-flight send drained through
// the matcher — give the same answer. On the firing round each rank saves
// its state here and unwinds with QuiesceInterrupt; once all ranks have
// saved, fired() flips and the engine builds the resume segment from the
// captured image.
//
// Determinism: decide() keys on (round, aligned virtual time) only. The
// fabric model's record/apply passes reset the coordinator via
// begin_attempt() and decide independently — exactly like the per-attempt
// CheckpointStore — so the state that survives is always the last (apply)
// pass's, computed from the same virtual times on every rerun.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/units.hpp"

namespace cbmpi::migrate {

/// Thrown by Process::checkpoint on every rank of a quiescing job once its
/// snapshot is saved: a clean unwind of the job body, not a failure. The
/// runtime's root-cause scan ignores it the way it ignores AbortedError.
struct QuiesceInterrupt {};

class Coordinator {
 public:
  /// Quiesce at the first round boundary whose aligned time reaches `epoch`,
  /// after at least `min_rounds` completed rounds.
  explicit Coordinator(Micros epoch, int min_rounds = 1);

  /// Resets captured state for one run_job attempt (fabric record/apply
  /// passes each quiesce from scratch). Called by the runtime before rank
  /// threads start.
  void begin_attempt(int nranks);

  /// Uniform per-round verdict: true exactly once, on the firing round.
  bool decide(int round, Micros aligned);

  /// Deposits one rank's snapshot plus its matcher depth at the aligned
  /// instant (drain evidence: 0 once eager backlogs are consumed).
  void save(int rank, int round, Micros aligned, std::vector<std::uint8_t> state,
            std::uint64_t pending_msgs);

  /// True once every rank of the current attempt has saved.
  bool fired() const;

  Micros epoch() const { return epoch_; }
  int round() const;
  Micros at() const;
  Bytes total_bytes() const;
  std::uint64_t drained_pending() const;
  std::vector<std::vector<std::uint8_t>> take_state();

 private:
  const Micros epoch_;
  const int min_rounds_;

  mutable std::mutex mutex_;
  int nranks_ = 0;
  int saves_ = 0;
  bool fired_ = false;
  int decided_round_ = -1;
  bool verdict_ = false;
  int round_ = -1;
  Micros at_ = 0.0;
  std::uint64_t pending_msgs_ = 0;
  std::vector<std::vector<std::uint8_t>> state_;
};

}  // namespace cbmpi::migrate
