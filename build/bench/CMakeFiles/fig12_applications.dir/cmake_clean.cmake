file(REMOVE_RECURSE
  "CMakeFiles/fig12_applications.dir/fig12_applications.cpp.o"
  "CMakeFiles/fig12_applications.dir/fig12_applications.cpp.o.d"
  "fig12_applications"
  "fig12_applications.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_applications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
