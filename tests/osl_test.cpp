// Unit tests for the simulated OS layer: namespaces, shared memory (with IPC
// namespace scoping), processes, CMA permission semantics.
#include <gtest/gtest.h>

#include "osl/cma.hpp"
#include "osl/machine.hpp"
#include "osl/process.hpp"
#include "topo/hardware.hpp"

namespace cbmpi::osl {
namespace {

Machine make_machine(int hosts = 2) {
  return Machine(topo::ClusterBuilder().hosts(hosts).build());
}

TEST(Namespaces, RootNamespacesDifferAcrossHosts) {
  auto machine = make_machine();
  const auto& a = machine.host_os(0).root_namespaces();
  const auto& b = machine.host_os(1).root_namespaces();
  EXPECT_FALSE(a.shares(NamespaceType::Ipc, b));
  EXPECT_FALSE(a.shares(NamespaceType::Pid, b));
}

TEST(Namespaces, SetAndShare) {
  NamespaceSet a, b;
  a.set(NamespaceType::Ipc, {7});
  b.set(NamespaceType::Ipc, {7});
  b.set(NamespaceType::Pid, {9});
  EXPECT_TRUE(a.shares(NamespaceType::Ipc, b));
  EXPECT_FALSE(a.shares(NamespaceType::Pid, b));
}

TEST(Namespaces, Names) {
  EXPECT_STREQ(to_string(NamespaceType::Ipc), "ipc");
  EXPECT_STREQ(to_string(NamespaceType::Uts), "uts");
}

TEST(Shm, ByteStoresVisible) {
  ShmSegment segment(64);
  segment.store_byte(5, 42);
  EXPECT_EQ(segment.load_byte(5), 42);
  EXPECT_EQ(segment.load_byte(6), 0);
}

TEST(Shm, OutOfRangeThrows) {
  ShmSegment segment(16);
  EXPECT_THROW(segment.store_byte(16, 1), Error);
  EXPECT_THROW(segment.load_byte(99), Error);
}

TEST(Shm, BulkRoundTrip) {
  ShmSegment segment(256);
  std::vector<std::byte> in(100);
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = static_cast<std::byte>(i);
  segment.write(10, in);
  std::vector<std::byte> out(100);
  segment.read(10, out);
  EXPECT_EQ(in, out);
}

TEST(Shm, ClearZeroes) {
  ShmSegment segment(8);
  segment.store_byte(3, 9);
  segment.clear();
  EXPECT_EQ(segment.load_byte(3), 0);
}

TEST(Shm, OpenIsCreateOrAttach) {
  auto machine = make_machine(1);
  auto& shm = machine.host_os(0).shm();
  const NamespaceId ns{100};
  auto a = shm.open(ns, "seg", 64);
  a->store_byte(0, 7);
  auto b = shm.open(ns, "seg", 64);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(b->load_byte(0), 7);
  EXPECT_EQ(shm.segment_count(), 1u);
}

TEST(Shm, SegmentsScopedByIpcNamespace) {
  auto machine = make_machine(1);
  auto& shm = machine.host_os(0).shm();
  auto a = shm.open(NamespaceId{1}, "locality", 8);
  auto b = shm.open(NamespaceId{2}, "locality", 8);
  EXPECT_NE(a.get(), b.get());
  a->store_byte(0, 1);
  EXPECT_EQ(b->load_byte(0), 0);
  EXPECT_EQ(shm.find(NamespaceId{3}, "locality"), nullptr);
}

TEST(Shm, UnlinkRemovesName) {
  auto machine = make_machine(1);
  auto& shm = machine.host_os(0).shm();
  auto a = shm.open(NamespaceId{1}, "x", 8);
  shm.unlink(NamespaceId{1}, "x");
  EXPECT_EQ(shm.find(NamespaceId{1}, "x"), nullptr);
  a->store_byte(0, 5);  // existing handle still usable
  EXPECT_EQ(a->load_byte(0), 5);
}

TEST(Machine, HostnamesResolvePerUtsNamespace) {
  auto machine = make_machine(2);
  auto& host = machine.host_os(0);
  EXPECT_EQ(host.hostname(host.root_namespaces().get(NamespaceType::Uts)), "host0");
  const auto fresh = host.make_namespace(NamespaceType::Uts);
  host.set_hostname(fresh, "container-a");
  EXPECT_EQ(host.hostname(fresh), "container-a");
  EXPECT_THROW(host.hostname(NamespaceId{99999}), Error);
}

TEST(Machine, PidsAreUniquePerHost) {
  auto machine = make_machine(1);
  auto& host = machine.host_os(0);
  const Pid a = host.allocate_pid();
  const Pid b = host.allocate_pid();
  EXPECT_NE(a, b);
}

TEST(Process, HostnameAndBindings) {
  auto machine = make_machine(1);
  auto& host = machine.host_os(0);
  SimProcess proc(host, host.root_namespaces(), topo::CoreId{1, 3});
  EXPECT_EQ(proc.hostname(), "host0");
  EXPECT_EQ(proc.core().socket, 1);
  EXPECT_EQ(proc.core().core, 3);
}

TEST(Process, ComputeAdvancesClock) {
  auto machine = make_machine(1);
  auto& host = machine.host_os(0);
  SimProcess proc(host, host.root_namespaces(), topo::CoreId{0, 0});
  proc.compute(machine.profile().compute_ops_per_micro * 5.0);
  EXPECT_DOUBLE_EQ(proc.clock().now(), 5.0);
}

TEST(Process, SameHostSameSocket) {
  auto machine = make_machine(2);
  auto& h0 = machine.host_os(0);
  auto& h1 = machine.host_os(1);
  SimProcess a(h0, h0.root_namespaces(), topo::CoreId{0, 0});
  SimProcess b(h0, h0.root_namespaces(), topo::CoreId{0, 5});
  SimProcess c(h0, h0.root_namespaces(), topo::CoreId{1, 0});
  SimProcess d(h1, h1.root_namespaces(), topo::CoreId{0, 0});
  EXPECT_TRUE(a.same_host(b));
  EXPECT_TRUE(a.same_socket(b));
  EXPECT_TRUE(a.same_host(c));
  EXPECT_FALSE(a.same_socket(c));
  EXPECT_FALSE(a.same_host(d));
  EXPECT_FALSE(a.same_socket(d));
}

TEST(Cma, AllowedWithinSharedPidNamespace) {
  auto machine = make_machine(1);
  auto& host = machine.host_os(0);
  SimProcess a(host, host.root_namespaces(), topo::CoreId{0, 0});
  SimProcess b(host, host.root_namespaces(), topo::CoreId{0, 1});
  std::vector<std::byte> src(32, std::byte{9});
  std::vector<std::byte> dst(32);
  EXPECT_EQ(cma::read(a, b, dst, src), cma::Result::Ok);
  EXPECT_EQ(dst[31], std::byte{9});
}

TEST(Cma, DeniedAcrossPidNamespaces) {
  auto machine = make_machine(1);
  auto& host = machine.host_os(0);
  NamespaceSet isolated = host.root_namespaces();
  isolated.set(NamespaceType::Pid, host.make_namespace(NamespaceType::Pid));
  SimProcess a(host, host.root_namespaces(), topo::CoreId{0, 0});
  SimProcess b(host, isolated, topo::CoreId{0, 1});
  std::vector<std::byte> buf(8);
  EXPECT_EQ(cma::check(a, b), cma::Result::PermissionDenied);
  EXPECT_EQ(cma::write(a, b, buf, buf), cma::Result::PermissionDenied);
}

TEST(Cma, RemoteHostRefused) {
  auto machine = make_machine(2);
  auto& h0 = machine.host_os(0);
  auto& h1 = machine.host_os(1);
  SimProcess a(h0, h0.root_namespaces(), topo::CoreId{0, 0});
  SimProcess b(h1, h1.root_namespaces(), topo::CoreId{0, 0});
  EXPECT_EQ(cma::check(a, b), cma::Result::RemoteHost);
}

TEST(Cma, WriteDirection) {
  auto machine = make_machine(1);
  auto& host = machine.host_os(0);
  SimProcess a(host, host.root_namespaces(), topo::CoreId{0, 0});
  SimProcess b(host, host.root_namespaces(), topo::CoreId{0, 1});
  std::vector<std::byte> src(4, std::byte{3});
  std::vector<std::byte> dst(4);
  EXPECT_EQ(cma::write(a, b, src, dst), cma::Result::Ok);
  EXPECT_EQ(dst[0], std::byte{3});
}

TEST(Cma, ResultNames) {
  EXPECT_STREQ(cma::to_string(cma::Result::Ok), "ok");
  EXPECT_NE(std::string(cma::to_string(cma::Result::PermissionDenied)).find("EPERM"),
            std::string::npos);
}

}  // namespace
}  // namespace cbmpi::osl
