#include "fabric/cma_channel.hpp"

#include <algorithm>

namespace cbmpi::fabric {

Micros CmaChannel::control_latency(bool same_socket) const {
  const auto& p = *profile_;
  return p.shm_cell_overhead + p.shm_base_latency +
         (same_socket ? 0.0 : p.inter_socket_hop);
}

Micros CmaChannel::transfer_cost(Bytes size, bool same_socket) const {
  const auto& p = *profile_;
  const BytesPerMicro memcpy_bw =
      same_socket ? p.memcpy_bw_intra_socket : p.memcpy_bw_inter_socket;
  const BytesPerMicro bw = memcpy_bw * p.cma_bw_fraction;
  return p.cma_syscall_overhead + static_cast<double>(size) / bw;
}

RndvTimes CmaChannel::rndv_times(Bytes size, bool same_socket, Micros rts_sent_at,
                                 Micros match_at) const {
  const Micros ctrl = control_latency(same_socket);
  const Micros start = std::max(match_at, rts_sent_at + ctrl);
  RndvTimes times;
  times.receiver_done = start + transfer_cost(size, same_socket);
  times.sender_done = times.receiver_done + ctrl;  // FIN notification
  return times;
}

OneSidedCosts CmaChannel::one_sided_costs(Bytes size, bool same_socket) const {
  const auto& p = *profile_;
  OneSidedCosts costs;
  const Micros xfer = transfer_cost(size, same_socket);
  // Syscalls cannot be pipelined away: the gap is the full syscall+copy.
  costs.gap = std::max(p.shm_pipelined_gap, xfer);
  costs.latency = xfer;
  return costs;
}

osl::cma::Result CmaChannel::pull(const osl::SimProcess& receiver, const RndvState& rndv,
                                  std::span<std::byte> dst) const {
  return osl::cma::read(receiver, rndv.sender_process(), dst, rndv.source());
}

}  // namespace cbmpi::fabric
