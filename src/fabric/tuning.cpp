#include "fabric/tuning.hpp"

namespace cbmpi::fabric {
static_assert(TuningParams{}.smp_eager_size == 8_KiB);
static_assert(TuningParams{}.smpi_length_queue == 128_KiB);
static_assert(TuningParams{}.iba_eager_threshold == 17_KiB);
// The registration model defaults off: the pre-cache rendezvous math (and
// every committed baseline number) must reproduce bit-identically.
static_assert(!TuningParams{}.reg_model);
static_assert(TuningParams{}.rndv_chunk == 512_KiB);
}  // namespace cbmpi::fabric
