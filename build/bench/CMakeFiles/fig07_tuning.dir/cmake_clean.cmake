file(REMOVE_RECURSE
  "CMakeFiles/fig07_tuning.dir/fig07_tuning.cpp.o"
  "CMakeFiles/fig07_tuning.dir/fig07_tuning.cpp.o.d"
  "fig07_tuning"
  "fig07_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
