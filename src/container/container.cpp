#include "container/container.hpp"

#include "common/error.hpp"

namespace cbmpi::container {

Container::Container(int id, ContainerSpec spec, osl::HostOs& host)
    : id_(id), spec_(std::move(spec)), host_(&host) {
  CBMPI_REQUIRE(!spec_.name.empty(), "container needs a name");
  const auto& root = host_->root_namespaces();

  // UTS namespace is always fresh: the container owns its hostname.
  const osl::NamespaceId uts = host_->make_namespace(osl::NamespaceType::Uts);
  namespaces_.set(osl::NamespaceType::Uts, uts);
  host_->set_hostname(uts, spec_.name);

  if (spec_.virtual_machine) {
    // A guest kernel: nothing can be shared with the host. The only bridge
    // is the optional IVSHMEM device, which surfaces as a shared IPC
    // namespace between co-resident VMs that attach it.
    namespaces_.set(osl::NamespaceType::Ipc,
                    spec_.ivshmem ? host_->ivshmem_namespace()
                                  : host_->make_namespace(osl::NamespaceType::Ipc));
    namespaces_.set(osl::NamespaceType::Pid,
                    host_->make_namespace(osl::NamespaceType::Pid));
    namespaces_.set(osl::NamespaceType::Net,
                    host_->make_namespace(osl::NamespaceType::Net));
  } else {
    namespaces_.set(osl::NamespaceType::Ipc,
                    spec_.share_host_ipc
                        ? root.get(osl::NamespaceType::Ipc)
                        : host_->make_namespace(osl::NamespaceType::Ipc));
    namespaces_.set(osl::NamespaceType::Pid,
                    spec_.share_host_pid
                        ? root.get(osl::NamespaceType::Pid)
                        : host_->make_namespace(osl::NamespaceType::Pid));
    namespaces_.set(osl::NamespaceType::Net,
                    spec_.share_host_net
                        ? root.get(osl::NamespaceType::Net)
                        : host_->make_namespace(osl::NamespaceType::Net));
  }

  const int total = host_->hardware().shape().total_cores();
  for (int c : spec_.cpuset)
    CBMPI_REQUIRE(c >= 0 && c < total, "cpuset core ", c, " out of range on ",
                  host_->hardware().name());
}

std::string Container::hostname() const {
  return host_->hostname(namespaces_.get(osl::NamespaceType::Uts));
}

topo::CoreId Container::core_for(int slot) const {
  CBMPI_REQUIRE(slot >= 0, "negative core slot");
  if (spec_.cpuset.empty())
    return host_->hardware().core_at(slot % host_->hardware().shape().total_cores());
  const auto idx = static_cast<std::size_t>(slot) % spec_.cpuset.size();
  return host_->hardware().core_at(spec_.cpuset[idx]);
}

}  // namespace cbmpi::container
