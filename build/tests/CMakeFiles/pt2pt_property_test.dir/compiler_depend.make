# Empty compiler generated dependencies file for pt2pt_property_test.
# This may be replaced when dependencies are built.
