// Named, parameterized job bodies — the piece that makes multi-job specs
// serializable. A scheduler (or a config file, or a CLI flag) cannot carry a
// std::function closure, so instead a JobSpec names a body registered here
// and the registry rebuilds the closure from (name, params) at launch time.
//
// Each body also publishes a *communication-volume hint*: a symmetric
// nranks x nranks matrix of relative traffic weight per rank pair, in the
// spirit of a prior `prof` run. The LocalityAware placer maximizes the hint
// weight kept co-resident; bodies with no meaningful structure return a
// uniform matrix, compute-only bodies an all-zero one.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "mpi/runtime.hpp"

namespace cbmpi::mpi {

/// Serializable knobs shared by every registered body.
struct JobBodyParams {
  Bytes message_size = 4_KiB;  ///< payload per exchange
  int rounds = 4;              ///< communication rounds
  double compute_ops = 0.0;    ///< abstract work units per rank per round
};

/// What every rank executes; the closure run_job() hands each rank thread.
using JobBody = std::function<void(Process&)>;
/// Symmetric nranks x nranks relative traffic weight per rank pair.
using TrafficMatrix = std::vector<std::vector<double>>;

/// Everything the registry knows about one named body.
struct JobBodyInfo {
  /// Builds the runnable closure for one launch.
  std::function<JobBody(const JobBodyParams&)> make;
  /// Relative per-pair communication volume for an nranks-rank run.
  std::function<TrafficMatrix(int nranks, const JobBodyParams&)> traffic;
  std::string description;  ///< one line, shown by `cbmpirun --help`-style listings
  /// The body implements the checkpoint hooks (Process::checkpoint /
  /// start_round / restored_state) and can resume from a committed snapshot.
  /// Non-recoverable bodies re-run from round 0 after a crash.
  bool recoverable = false;
};

/// Process-wide registry. Built-in bodies (ring, pairs, shift, allreduce,
/// alltoall, sparse-random, compute) are registered on first access; callers
/// may add their own before submitting jobs that name them.
class JobBodyRegistry {
 public:
  /// The process-wide singleton (built-ins registered on first call).
  static JobBodyRegistry& instance();

  /// Registers (or replaces) a body under `name`.
  void add(const std::string& name, JobBodyInfo info);

  /// Is `name` registered?
  bool contains(const std::string& name) const;
  const JobBodyInfo& info(const std::string& name) const;  ///< throws if unknown

  /// Instantiates the closure for one launch.
  JobBody make(const std::string& name, const JobBodyParams& params) const;

  /// The body's traffic hint for an nranks-rank job.
  TrafficMatrix traffic_hint(const std::string& name, int nranks,
                             const JobBodyParams& params) const;

  std::vector<std::string> names() const;  ///< sorted

 private:
  JobBodyRegistry();

  std::map<std::string, JobBodyInfo> bodies_;
};

}  // namespace cbmpi::mpi
