// Communicator: the user-facing MPI-like API.
//
// Typed point-to-point and collective operations over contiguous spans of
// trivially-copyable elements. Collective algorithms are written once over an
// arbitrary *list* of communicator ranks, which lets the hierarchical
// (two-level, leader-based) variants reuse the flat algorithms: the local
// phase runs over the detected co-resident group, the global phase over the
// group leaders. Which ranks count as "co-resident" comes from the channel
// selector's policy — hostname-based (default) or container-aware (the
// paper's design) — so the benefit of locality awareness flows through both
// point-to-point channel selection and collective topology.
//
// Which algorithm runs for a given call is no longer hard-wired: the six
// tunable collectives (barrier, bcast, reduce, allreduce, allgather,
// alltoall) consult the job's coll::Engine, which resolves (collective,
// message size, rank count, containers-per-host) through the TuningTable —
// see src/mpi/coll/. The available algorithms:
//   barrier     dissemination | flat-tree       (2-level: gather + release)
//   bcast       binomial | flat-tree | van de Geijn (2-level: leaders, local)
//   reduce      binomial | flat-tree (commutative ops)
//               (2-level: local reduce, leader reduce, hand-off to root)
//   allreduce   recursive doubling | Rabenseifner | reduce+bcast
//               (2-level: local reduce, leader allreduce, local bcast)
//   gather      linear to root
//   scatter     linear from root
//   allgather   ring | gather+bcast             (2-level when groups are
//                                                uniform and contiguous)
//   alltoall    pairwise | Bruck | spread (no 2-level variant — consistent
//               with the paper, where alltoall shows the smallest gain)
//   alltoallv   pairwise exchange with per-peer counts
// Algorithms with structural preconditions (power-of-two list, payload at
// least one element per rank, zero-identity reduce op) are downgraded
// deterministically at the dispatch site; the algorithm that actually ran is
// recorded in the rank profile and (when tracing) as a CollAlgo trace event.
//
// Tag discipline: every user-level collective reserves a block of reserved
// tags (same sequence on every rank, because collectives are called in the
// same order); each internal phase uses a fixed offset within the block, so
// ranks that skip a phase (non-leaders) stay tag-consistent with ranks that
// do not.
//
// All internal traffic uses unprofiled "raw" transfers so the mpiP-style
// profile counts user-level MPI calls exactly once.
#pragma once

#include <algorithm>
#include <cstring>
#include <memory>
#include <optional>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "mpi/adi3.hpp"
#include "mpi/coll/types.hpp"
#include "mpi/types.hpp"

namespace cbmpi::coll {
class Engine;
}

namespace cbmpi::mpi {

/// Tags at or above this value are reserved for collective internals.
inline constexpr int kCollectiveTagBase = 1 << 20;

struct CommGroup {
  std::vector<int> world_ranks;            ///< comm rank -> world rank
  std::unordered_map<int, int> to_comm;    ///< world rank -> comm rank

  static std::shared_ptr<const CommGroup> make(std::vector<int> world_ranks);
};

/// Locality structure of one communicator under the active policy.
struct LocalityGroups {
  std::vector<int> my_group;   ///< comm ranks co-resident with me (sorted)
  int my_leader = 0;           ///< smallest rank of my group
  std::vector<int> leaders;    ///< sorted leaders of all groups
  std::vector<int> leader_of;  ///< comm rank -> leader of its group
  bool uniform = false;        ///< all groups have equal size
  bool contiguous = false;     ///< every group is a contiguous rank range
  int group_size = 1;          ///< size of *my* group
  int max_group_size = 1;      ///< size of the largest group

  /// Whether two-level algorithms degenerate to flat ones. Must be a global
  /// property — every rank has to pick the same algorithm — so it looks at
  /// the largest group anywhere, not this rank's own (a placement can leave
  /// one rank alone on a host while other hosts hold full groups).
  bool trivial() const { return max_group_size <= 1 || leaders.size() <= 1; }
};

/// Index of `rank` within a rank list; -1 if absent.
int position_of(const std::vector<int>& list, int rank);

class Communicator {
 public:
  Communicator(Adi3Engine& engine, std::shared_ptr<const CommGroup> group,
               std::uint64_t id);

  int rank() const { return my_rank_; }
  int size() const { return static_cast<int>(group_->world_ranks.size()); }
  std::uint64_t id() const { return id_; }

  int to_world(int comm_rank) const;
  int from_world(int world_rank) const;

  Adi3Engine& engine() { return *engine_; }

  // ---- point-to-point ------------------------------------------------------

  template <typename T>
  void send(std::span<const T> data, int dst, int tag = 0);

  template <typename T>
  Status recv(std::span<T> buffer, int src = kAnySource, int tag = kAnyTag);

  template <typename T>
  Request isend(std::span<const T> data, int dst, int tag = 0);

  template <typename T>
  Request irecv(std::span<T> buffer, int src = kAnySource, int tag = kAnyTag);

  bool test(const Request& request);
  Status wait(const Request& request);
  void wait_all(std::span<const Request> requests);

  /// Blocks until at least one request completes; returns its index
  /// (MPI_Waitany; lowest completed index when several are ready).
  std::size_t wait_any(std::span<const Request> requests);

  /// Non-blocking: index of a completed request, if any (MPI_Testany).
  std::optional<std::size_t> test_any(std::span<const Request> requests);

  /// Non-blocking: true iff every request has completed (MPI_Testall).
  bool test_all(std::span<const Request> requests);

  void cancel(const Request& request) { engine_->cancel(request); }
  std::optional<Status> iprobe(int src = kAnySource, int tag = kAnyTag);

  /// Blocking probe: waits until a matching message is pending and returns
  /// its status without receiving it (MPI_Probe).
  Status probe(int src = kAnySource, int tag = kAnyTag);

  template <typename T>
  void sendrecv(std::span<const T> send_data, int dst, std::span<T> recv_buffer,
                int src, int tag = 0);

  /// Single-value conveniences.
  template <typename T>
  void send_value(const T& value, int dst, int tag = 0);
  template <typename T>
  T recv_value(int src = kAnySource, int tag = kAnyTag);

  // ---- collectives ---------------------------------------------------------

  void barrier();

  template <typename T>
  void bcast(std::span<T> data, int root = 0);

  template <typename T>
  void reduce(std::span<const T> in, std::span<T> out, ReduceOp op, int root = 0);

  template <typename T>
  void allreduce(std::span<const T> in, std::span<T> out, ReduceOp op);

  template <typename T>
  T allreduce_value(T value, ReduceOp op);

  template <typename T>
  void gather(std::span<const T> mine, std::span<T> all, int root = 0);

  template <typename T>
  void allgather(std::span<const T> mine, std::span<T> all);

  template <typename T>
  void scatter(std::span<const T> all, std::span<T> mine, int root = 0);

  template <typename T>
  void alltoall(std::span<const T> send_data, std::span<T> recv_data);

  template <typename T>
  void alltoallv(std::span<const T> send_data, std::span<const int> send_counts,
                 std::span<const int> send_displs, std::span<T> recv_data,
                 std::span<const int> recv_counts, std::span<const int> recv_displs);

  /// Variable-count gather/scatter/allgather (counts/displs in elements,
  /// indexed by communicator rank).
  template <typename T>
  void gatherv(std::span<const T> mine, std::span<T> all, std::span<const int> counts,
               std::span<const int> displs, int root = 0);

  template <typename T>
  void scatterv(std::span<const T> all, std::span<const int> counts,
                std::span<const int> displs, std::span<T> mine, int root = 0);

  template <typename T>
  void allgatherv(std::span<const T> mine, std::span<T> all,
                  std::span<const int> counts, std::span<const int> displs);

  /// MPI_Reduce_scatter_block: `in` holds size() equal blocks; every rank
  /// receives the reduction of its own block.
  template <typename T>
  void reduce_scatter_block(std::span<const T> in, std::span<T> out, ReduceOp op);

  /// Inclusive prefix reduction: out on rank r = reduce of ranks 0..r.
  template <typename T>
  void scan(std::span<const T> in, std::span<T> out, ReduceOp op);

  /// Exclusive prefix reduction: out on rank r = reduce of ranks 0..r-1
  /// (value-initialized on rank 0, as MPI leaves it undefined).
  template <typename T>
  void exscan(std::span<const T> in, std::span<T> out, ReduceOp op);

  template <typename T>
  T scan_value(T value, ReduceOp op);
  template <typename T>
  T exscan_value(T value, ReduceOp op);

  // ---- communicator management ---------------------------------------------

  /// Collective. Ranks passing a negative color receive std::nullopt
  /// (the MPI_COMM_NULL analogue).
  std::optional<Communicator> split(int color, int key);

  Communicator dup();

  /// Locality structure under the active policy; computed lazily, cached.
  const LocalityGroups& locality_groups();

  /// Internal: next window ordinal (same sequence on all ranks).
  std::uint64_t next_window_ordinal() { return next_window_ordinal_++; }

  /// Internal: an unprofiled barrier for window synchronisation.
  void raw_barrier();

 private:
  /// Number of reserved tags per user-level collective call. Each internal
  /// phase gets a stride-4 slice so composite algorithms (e.g. scatter +
  /// ring-allgather inside one bcast phase) have room.
  static constexpr int kSubTags = 16;

  /// Reserves a tag block; returns its base. Same sequence on every rank.
  int begin_collective();

  // Unprofiled raw transfers used by collective internals.
  template <typename T>
  Request raw_isend(std::span<const T> data, int dst, int tag);
  template <typename T>
  Request raw_irecv(std::span<T> buffer, int src, int tag, bool immediate = true);
  template <typename T>
  void raw_send(std::span<const T> data, int dst, int tag);
  template <typename T>
  void raw_recv(std::span<T> buffer, int src, int tag);
  template <typename T>
  void raw_sendrecv(std::span<const T> send_data, int dst, std::span<T> recv_buffer,
                    int src, int tag);

  // Collective algorithms over an arbitrary sorted list of comm ranks; `list`
  // must contain rank() exactly once and be identical on all listed ranks.
  // Each takes the engine-chosen algorithm, downgrades it deterministically
  // when its structural preconditions fail, and returns what actually ran.
  coll::Algo barrier_over(const std::vector<int>& list, int tag, coll::Algo algo);
  template <typename T>
  coll::Algo bcast_over(const std::vector<int>& list, std::span<T> data,
                        int root_pos, int tag, coll::Algo algo);
  template <typename T>
  coll::Algo reduce_over(const std::vector<int>& list, std::span<const T> in,
                         std::span<T> out, ReduceOp op, int root_pos, int tag,
                         coll::Algo algo);
  template <typename T>
  coll::Algo allreduce_over(const std::vector<int>& list, std::span<const T> in,
                            std::span<T> out, ReduceOp op, int tag,
                            coll::Algo algo);
  template <typename T>
  coll::Algo allgather_over(const std::vector<int>& list, std::span<const T> mine,
                            std::span<T> all, int tag, coll::Algo algo);
  // Alltoall bodies (full communicator; `block` elements per peer).
  template <typename T>
  void alltoall_pairwise(std::span<const T> send_data, std::span<T> recv_data,
                         std::size_t block, int tag);
  template <typename T>
  void alltoall_bruck(std::span<const T> send_data, std::span<T> recv_data,
                      std::size_t block, int tag);
  template <typename T>
  void alltoall_spread(std::span<const T> send_data, std::span<T> recv_data,
                       std::size_t block, int tag);
  /// counts/displs indexed by *position* in the list.
  template <typename T>
  void allgatherv_over(const std::vector<int>& list, std::span<const T> mine,
                       std::span<T> all, std::span<const int> counts,
                       std::span<const int> displs, int tag);
  /// van de Geijn large-message broadcast: scatter + ring allgather.
  /// Uses tags [tag, tag+2).
  template <typename T>
  void bcast_vandegeijn_over(const std::vector<int>& list, std::span<T> data,
                             int root_pos, int tag);
  /// Recursive-halving reduce-scatter over a power-of-two list; `in` holds
  /// list.size() equal blocks, `block_out` receives this rank's block.
  template <typename T>
  void reduce_scatter_halving_over(const std::vector<int>& list,
                                   std::span<const T> in, std::span<T> block_out,
                                   ReduceOp op, int tag);
  /// Rabenseifner large-message allreduce over a power-of-two list.
  /// Uses tags [tag, tag+2).
  template <typename T>
  void allreduce_rabenseifner_over(const std::vector<int>& list,
                                   std::span<const T> in, std::span<T> out,
                                   ReduceOp op, int tag);

  std::vector<int> all_ranks() const;
  int position_in(const std::vector<int>& list) const;
  bool two_level_enabled() const;

  /// The job's collective-algorithm engine.
  const coll::Engine& coll_engine() const;
  /// Engine choice for an internal (sub-list) phase: no further hierarchy.
  coll::Algo pick(coll::Coll coll, Bytes bytes, int list_size) const;
  /// Records the algorithm a user-level collective actually ran (profile
  /// counter + CollAlgo trace event when tracing + Coll span when the job
  /// records spans). `begin` is the enclosing call's start time so the span
  /// nests exactly inside the ProfiledCall's Mpi span.
  void note_algo(coll::Coll coll, coll::Algo algo, Bytes bytes, Micros begin);

  Adi3Engine* engine_;
  std::shared_ptr<const CommGroup> group_;
  std::uint64_t id_;
  int my_rank_;
  std::uint64_t next_child_ordinal_ = 0;
  std::uint64_t next_coll_seq_ = 0;
  std::uint64_t next_window_ordinal_ = 0;
  std::optional<LocalityGroups> locality_;
};

/// RAII profiling scope for one user-level MPI call. Doubles as the single
/// instrumentation point for obs: when the job records spans, the destructor
/// emits one Mpi-category span covering the call's virtual-time interval.
class ProfiledCall {
 public:
  ProfiledCall(Adi3Engine& engine, prof::CallKind kind)
      : engine_(&engine), kind_(kind), start_(engine.clock().now()) {}
  ~ProfiledCall() {
    const Micros end = engine_->clock().now();
    engine_->profile().add_call(kind_, end - start_);
    if (engine_->job().spans)
      engine_->job().spans->record({std::string(prof::to_string(kind_)),
                                    obs::SpanCat::Mpi, engine_->world_rank(), -1,
                                    -1, 0, start_, end, {}});
  }
  ProfiledCall(const ProfiledCall&) = delete;
  ProfiledCall& operator=(const ProfiledCall&) = delete;

  /// Call start in virtual time; collective dispatch passes it to note_algo
  /// so the Coll span nests exactly inside this call's Mpi span.
  Micros start() const { return start_; }

 private:
  Adi3Engine* engine_;
  prof::CallKind kind_;
  Micros start_;
};

// ===========================================================================
// implementation
// ===========================================================================

namespace detail {

template <typename T>
std::span<const std::byte> as_bytes_checked(std::span<const T> data) {
  static_assert(std::is_trivially_copyable_v<T>,
                "cbmpi transfers require trivially copyable element types");
  return std::as_bytes(data);
}

template <typename T>
std::span<std::byte> as_writable_bytes_checked(std::span<T> data) {
  static_assert(std::is_trivially_copyable_v<T>,
                "cbmpi transfers require trivially copyable element types");
  return std::as_writable_bytes(data);
}

inline bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

}  // namespace detail

// ---- raw transfers ----------------------------------------------------------

template <typename T>
Request Communicator::raw_isend(std::span<const T> data, int dst, int tag) {
  return engine_->start_send(detail::as_bytes_checked(data), to_world(dst), tag, id_);
}

template <typename T>
Request Communicator::raw_irecv(std::span<T> buffer, int src, int tag,
                                bool immediate) {
  const int src_world = src == kAnySource ? kAnySource : to_world(src);
  return engine_->post_recv(detail::as_writable_bytes_checked(buffer), src_world,
                            tag, id_, immediate);
}

template <typename T>
void Communicator::raw_send(std::span<const T> data, int dst, int tag) {
  engine_->wait(raw_isend(data, dst, tag));
}

template <typename T>
void Communicator::raw_recv(std::span<T> buffer, int src, int tag) {
  engine_->wait(raw_irecv(buffer, src, tag));
}

template <typename T>
void Communicator::raw_sendrecv(std::span<const T> send_data, int dst,
                                std::span<T> recv_buffer, int src, int tag) {
  const Request recv_request = raw_irecv(recv_buffer, src, tag);
  const Request send_request = raw_isend(send_data, dst, tag);
  engine_->wait(recv_request);
  engine_->wait(send_request);
}

// ---- point-to-point -----------------------------------------------------------

template <typename T>
void Communicator::send(std::span<const T> data, int dst, int tag) {
  CBMPI_REQUIRE(tag >= 0 && tag < kCollectiveTagBase, "user tag out of range: ", tag);
  const ProfiledCall prof_scope(*engine_, prof::CallKind::Send);
  raw_send(data, dst, tag);
}

template <typename T>
Status Communicator::recv(std::span<T> buffer, int src, int tag) {
  const ProfiledCall prof_scope(*engine_, prof::CallKind::Recv);
  const Request request = raw_irecv(buffer, src, tag);
  Status status = engine_->wait(request);
  status.source = from_world(status.source);
  return status;
}

template <typename T>
Request Communicator::isend(std::span<const T> data, int dst, int tag) {
  CBMPI_REQUIRE(tag >= 0 && tag < kCollectiveTagBase, "user tag out of range: ", tag);
  const ProfiledCall prof_scope(*engine_, prof::CallKind::Isend);
  return raw_isend(data, dst, tag);
}

template <typename T>
Request Communicator::irecv(std::span<T> buffer, int src, int tag) {
  const ProfiledCall prof_scope(*engine_, prof::CallKind::Irecv);
  return raw_irecv(buffer, src, tag);
}

template <typename T>
void Communicator::sendrecv(std::span<const T> send_data, int dst,
                            std::span<T> recv_buffer, int src, int tag) {
  const ProfiledCall prof_scope(*engine_, prof::CallKind::Send);
  raw_sendrecv(send_data, dst, recv_buffer, src, tag);
}

template <typename T>
void Communicator::send_value(const T& value, int dst, int tag) {
  send(std::span<const T>(&value, 1), dst, tag);
}

template <typename T>
T Communicator::recv_value(int src, int tag) {
  T value{};
  recv(std::span<T>(&value, 1), src, tag);
  return value;
}

// The tunable collective algorithms (the `*_over` primitives and the
// engine-dispatched user-level collectives) live in mpi/coll/algorithms.hpp
// and mpi/coll/dispatch.hpp, included at the end of this header.

template <typename T>
T Communicator::allreduce_value(T value, ReduceOp op) {
  T out{};
  allreduce(std::span<const T>(&value, 1), std::span<T>(&out, 1), op);
  return out;
}

template <typename T>
void Communicator::gather(std::span<const T> mine, std::span<T> all, int root) {
  const ProfiledCall prof_scope(*engine_, prof::CallKind::Gather);
  const int tag = begin_collective();
  const std::size_t block = mine.size();
  if (rank() == root) {
    CBMPI_REQUIRE(all.size() >= block * static_cast<std::size_t>(size()),
                  "gather output buffer too small");
    std::copy(mine.begin(), mine.end(),
              all.begin() +
                  static_cast<std::ptrdiff_t>(block * static_cast<std::size_t>(root)));
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      raw_recv(std::span<T>(all.data() + block * static_cast<std::size_t>(r), block),
               r, tag);
    }
  } else {
    raw_send(mine, root, tag);
  }
}

template <typename T>
void Communicator::scatter(std::span<const T> all, std::span<T> mine, int root) {
  const ProfiledCall prof_scope(*engine_, prof::CallKind::Scatter);
  const int tag = begin_collective();
  const std::size_t block = mine.size();
  if (rank() == root) {
    CBMPI_REQUIRE(all.size() >= block * static_cast<std::size_t>(size()),
                  "scatter input buffer too small");
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      raw_send(
          std::span<const T>(all.data() + block * static_cast<std::size_t>(r), block),
          r, tag);
    }
    std::copy(all.data() + block * static_cast<std::size_t>(root),
              all.data() + block * static_cast<std::size_t>(root) + block, mine.data());
  } else {
    raw_recv(mine, root, tag);
  }
}

template <typename T>
void Communicator::alltoallv(std::span<const T> send_data,
                             std::span<const int> send_counts,
                             std::span<const int> send_displs, std::span<T> recv_data,
                             std::span<const int> recv_counts,
                             std::span<const int> recv_displs) {
  const ProfiledCall prof_scope(*engine_, prof::CallKind::Alltoallv);
  const int tag = begin_collective();
  const int n = size();
  CBMPI_REQUIRE(send_counts.size() == static_cast<std::size_t>(n) &&
                    recv_counts.size() == static_cast<std::size_t>(n) &&
                    send_displs.size() == static_cast<std::size_t>(n) &&
                    recv_displs.size() == static_cast<std::size_t>(n),
                "alltoallv count/displ arrays must have comm-size entries");
  auto send_block = [&](int r) {
    const auto i = static_cast<std::size_t>(r);
    return std::span<const T>(
        send_data.data() + static_cast<std::size_t>(send_displs[i]),
        static_cast<std::size_t>(send_counts[i]));
  };
  auto recv_block = [&](int r) {
    const auto i = static_cast<std::size_t>(r);
    return std::span<T>(recv_data.data() + static_cast<std::size_t>(recv_displs[i]),
                        static_cast<std::size_t>(recv_counts[i]));
  };
  {
    auto src = send_block(rank());
    auto dst = recv_block(rank());
    CBMPI_REQUIRE(dst.size() >= src.size(), "alltoallv self block mismatch");
    std::copy(src.begin(), src.end(), dst.begin());
  }
  const bool pow2 = detail::is_power_of_two(static_cast<std::size_t>(n));
  for (int step = 1; step < n; ++step) {
    const int send_to = pow2 ? (rank() ^ step) : (rank() + step) % n;
    const int recv_from = pow2 ? (rank() ^ step) : (rank() - step + n) % n;
    raw_sendrecv(send_block(send_to), send_to, recv_block(recv_from), recv_from, tag);
  }
}

// ---- v-variants, reduce_scatter, prefix scans -----------------------------------

template <typename T>
void Communicator::gatherv(std::span<const T> mine, std::span<T> all,
                           std::span<const int> counts, std::span<const int> displs,
                           int root) {
  const ProfiledCall prof_scope(*engine_, prof::CallKind::Gatherv);
  const int tag = begin_collective();
  CBMPI_REQUIRE(counts.size() == static_cast<std::size_t>(size()) &&
                    displs.size() == static_cast<std::size_t>(size()),
                "gatherv counts/displs must have comm-size entries");
  if (rank() == root) {
    for (int r = 0; r < size(); ++r) {
      auto slot = std::span<T>(
          all.data() + static_cast<std::size_t>(displs[static_cast<std::size_t>(r)]),
          static_cast<std::size_t>(counts[static_cast<std::size_t>(r)]));
      if (r == root)
        std::copy(mine.begin(), mine.end(), slot.begin());
      else
        raw_recv(slot, r, tag);
    }
  } else {
    raw_send(mine, root, tag);
  }
}

template <typename T>
void Communicator::scatterv(std::span<const T> all, std::span<const int> counts,
                            std::span<const int> displs, std::span<T> mine, int root) {
  const ProfiledCall prof_scope(*engine_, prof::CallKind::Scatterv);
  const int tag = begin_collective();
  CBMPI_REQUIRE(counts.size() == static_cast<std::size_t>(size()) &&
                    displs.size() == static_cast<std::size_t>(size()),
                "scatterv counts/displs must have comm-size entries");
  if (rank() == root) {
    for (int r = 0; r < size(); ++r) {
      auto slot = std::span<const T>(
          all.data() + static_cast<std::size_t>(displs[static_cast<std::size_t>(r)]),
          static_cast<std::size_t>(counts[static_cast<std::size_t>(r)]));
      if (r == root)
        std::copy(slot.begin(), slot.end(), mine.begin());
      else
        raw_send(slot, r, tag);
    }
  } else {
    raw_recv(mine.subspan(0, static_cast<std::size_t>(
                                 counts[static_cast<std::size_t>(rank())])),
             root, tag);
  }
}

template <typename T>
void Communicator::allgatherv(std::span<const T> mine, std::span<T> all,
                              std::span<const int> counts,
                              std::span<const int> displs) {
  const ProfiledCall prof_scope(*engine_, prof::CallKind::AllgatherV);
  const int tag = begin_collective();
  // Flat ring; counts/displs are rank-indexed which equals position-indexed
  // over the all-ranks list.
  allgatherv_over(all_ranks(), mine, all, counts, displs, tag);
}

template <typename T>
void Communicator::reduce_scatter_block(std::span<const T> in, std::span<T> out,
                                        ReduceOp op) {
  const ProfiledCall prof_scope(*engine_, prof::CallKind::ReduceScatter);
  const int tag = begin_collective();
  const int n = size();
  const std::size_t block = in.size() / static_cast<std::size_t>(n);
  CBMPI_REQUIRE(in.size() == block * static_cast<std::size_t>(n) &&
                    out.size() >= block,
                "reduce_scatter_block buffer size mismatch");
  if (detail::is_power_of_two(static_cast<std::size_t>(n)) && n > 1) {
    reduce_scatter_halving_over(all_ranks(), in, out, op, tag);
    return;
  }
  // Fallback: reduce to rank 0, then scatter (uses the tag block's tail).
  std::vector<T> full(rank() == 0 ? in.size() : 0);
  reduce_over(all_ranks(), in, std::span<T>(full), op, 0, tag, coll::Algo::Binomial);
  const int stag = tag + 1;
  if (rank() == 0) {
    for (int r = 1; r < n; ++r)
      raw_send(std::span<const T>(full.data() + block * static_cast<std::size_t>(r),
                                  block),
               r, stag);
    std::copy(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(block),
              out.begin());
  } else {
    raw_recv(out.subspan(0, block), 0, stag);
  }
}

template <typename T>
void Communicator::scan(std::span<const T> in, std::span<T> out, ReduceOp op) {
  const ProfiledCall prof_scope(*engine_, prof::CallKind::Scan);
  const int tag = begin_collective();
  const int n = size();
  CBMPI_REQUIRE(out.size() >= in.size(), "scan output buffer too small");
  std::copy(in.begin(), in.end(), out.begin());
  std::vector<T> partial(in.begin(), in.end());
  std::vector<T> incoming(in.size());
  for (int mask = 1; mask < n; mask <<= 1) {
    const int dst = rank() + mask;
    const int src = rank() - mask;
    const std::vector<T> snapshot = partial;  // value sent this round
    Request send_req;
    if (dst < n) send_req = raw_isend(std::span<const T>(snapshot), dst, tag);
    if (src >= 0) {
      raw_recv(std::span<T>(incoming), src, tag);
      apply_reduce<T>(op, incoming, std::span<T>(partial));
      apply_reduce<T>(op, incoming, out.subspan(0, in.size()));
    }
    if (send_req) engine_->wait(send_req);
  }
}

template <typename T>
void Communicator::exscan(std::span<const T> in, std::span<T> out, ReduceOp op) {
  const ProfiledCall prof_scope(*engine_, prof::CallKind::Exscan);
  const int tag = begin_collective();
  const int n = size();
  CBMPI_REQUIRE(out.size() >= in.size(), "exscan output buffer too small");
  std::fill(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(in.size()), T{});
  std::vector<T> partial(in.begin(), in.end());
  std::vector<T> incoming(in.size());
  bool have_result = false;
  for (int mask = 1; mask < n; mask <<= 1) {
    const int dst = rank() + mask;
    const int src = rank() - mask;
    const std::vector<T> snapshot = partial;
    Request send_req;
    if (dst < n) send_req = raw_isend(std::span<const T>(snapshot), dst, tag);
    if (src >= 0) {
      raw_recv(std::span<T>(incoming), src, tag);
      apply_reduce<T>(op, incoming, std::span<T>(partial));
      if (have_result) {
        apply_reduce<T>(op, incoming, out.subspan(0, in.size()));
      } else {
        std::copy(incoming.begin(), incoming.end(), out.begin());
        have_result = true;
      }
    }
    if (send_req) engine_->wait(send_req);
  }
}

template <typename T>
T Communicator::scan_value(T value, ReduceOp op) {
  T out{};
  scan(std::span<const T>(&value, 1), std::span<T>(&out, 1), op);
  return out;
}

template <typename T>
T Communicator::exscan_value(T value, ReduceOp op) {
  T out{};
  exscan(std::span<const T>(&value, 1), std::span<T>(&out, 1), op);
  return out;
}

}  // namespace cbmpi::mpi

// Template definitions of the tunable collective algorithms and their
// engine-driven dispatch. Included here (not standalone) so every user of
// Communicator sees the definitions; both headers re-include this one, which
// `#pragma once` resolves to a no-op.
#include "mpi/coll/algorithms.hpp"  // IWYU pragma: keep
#include "mpi/coll/dispatch.hpp"    // IWYU pragma: keep
