// Derived datatypes (MPI_Type_vector subset): strided layouts with
// pack/unpack, plus Communicator helpers that transfer a strided region of
// memory as one message (pack - send - unpack, the way MPI implementations
// handle non-contiguous types without RDMA gather support).
//
// The pack/unpack copies advance virtual time like any other memory copy, so
// using a derived datatype is not free — matching real MPI behaviour where
// non-contiguous transfers pay packing costs.
#pragma once

#include <vector>

#include "common/error.hpp"
#include "mpi/communicator.hpp"

namespace cbmpi::mpi {

/// MPI_Type_vector analogue: `count` blocks of `blocklen` elements, block
/// starts `stride` elements apart. stride >= blocklen.
struct VectorLayout {
  std::size_t count = 0;
  std::size_t blocklen = 1;
  std::size_t stride = 1;

  /// Number of elements actually transferred.
  std::size_t elements() const { return count * blocklen; }

  /// Span of memory the layout touches (in elements).
  std::size_t extent() const {
    return count == 0 ? 0 : (count - 1) * stride + blocklen;
  }

  void validate() const {
    CBMPI_REQUIRE(blocklen > 0 && stride >= blocklen,
                  "invalid vector layout: blocklen=", blocklen, " stride=", stride);
  }
};

/// Gathers a strided region into contiguous storage.
template <typename T>
void pack(std::span<const T> source, const VectorLayout& layout, std::span<T> packed) {
  layout.validate();
  CBMPI_REQUIRE(source.size() >= layout.extent(), "pack source too small");
  CBMPI_REQUIRE(packed.size() >= layout.elements(), "pack destination too small");
  std::size_t out = 0;
  for (std::size_t b = 0; b < layout.count; ++b) {
    const T* block = source.data() + b * layout.stride;
    std::copy(block, block + layout.blocklen, packed.data() + out);
    out += layout.blocklen;
  }
}

/// Scatters contiguous storage back into a strided region.
template <typename T>
void unpack(std::span<const T> packed, const VectorLayout& layout,
            std::span<T> destination) {
  layout.validate();
  CBMPI_REQUIRE(packed.size() >= layout.elements(), "unpack source too small");
  CBMPI_REQUIRE(destination.size() >= layout.extent(), "unpack destination too small");
  std::size_t in = 0;
  for (std::size_t b = 0; b < layout.count; ++b) {
    std::copy(packed.data() + in, packed.data() + in + layout.blocklen,
              destination.data() + b * layout.stride);
    in += layout.blocklen;
  }
}

namespace detail {
/// Virtual cost of packing `bytes` through the cache (one extra copy).
inline void charge_pack_cost(Adi3Engine& engine, Bytes bytes) {
  const auto& profile = *engine.job().profile;
  BytesPerMicro bw = profile.memcpy_bw_intra_socket;
  if (bytes < profile.memcpy_cached_limit) bw *= profile.memcpy_cached_boost;
  engine.clock().advance(static_cast<double>(bytes) / bw);
}
}  // namespace detail

/// Sends a strided region as one message (blocking).
template <typename T>
void send_strided(Communicator& comm, std::span<const T> source,
                  const VectorLayout& layout, int dst, int tag = 0) {
  std::vector<T> packed(layout.elements());
  pack(source, layout, std::span<T>(packed));
  detail::charge_pack_cost(comm.engine(), packed.size() * sizeof(T));
  comm.send(std::span<const T>(packed), dst, tag);
}

/// Receives into a strided region (blocking). The incoming message must hold
/// exactly layout.elements() elements.
template <typename T>
Status recv_strided(Communicator& comm, std::span<T> destination,
                    const VectorLayout& layout, int src = kAnySource,
                    int tag = kAnyTag) {
  std::vector<T> packed(layout.elements());
  const Status status = comm.recv(std::span<T>(packed), src, tag);
  CBMPI_REQUIRE(status.count<T>() == layout.elements(),
                "strided receive size mismatch: got ", status.count<T>(),
                " elements, layout needs ", layout.elements());
  detail::charge_pack_cost(comm.engine(), packed.size() * sizeof(T));
  unpack(std::span<const T>(packed), layout, destination);
  return status;
}

// ---- persistent requests (MPI_Send_init / MPI_Recv_init / MPI_Start) -------

/// A reusable communication plan bound to fixed buffer/peer/tag arguments.
/// start() may be called repeatedly; each started operation must complete
/// (wait/test) before the next start(), as in MPI.
class PersistentRequest {
 public:
  enum class Kind { Send, Recv };

  static PersistentRequest send_init(Communicator& comm,
                                     std::span<const std::byte> data, int dst,
                                     int tag) {
    PersistentRequest plan;
    plan.comm_ = &comm;
    plan.kind_ = Kind::Send;
    plan.send_view_ = data;
    plan.peer_ = dst;
    plan.tag_ = tag;
    return plan;
  }

  static PersistentRequest recv_init(Communicator& comm, std::span<std::byte> buffer,
                                     int src, int tag) {
    PersistentRequest plan;
    plan.comm_ = &comm;
    plan.kind_ = Kind::Recv;
    plan.recv_view_ = buffer;
    plan.peer_ = src;
    plan.tag_ = tag;
    return plan;
  }

  /// Starts one operation; returns the active request.
  Request start() {
    CBMPI_REQUIRE(active_ == nullptr || active_->complete,
                  "previous started operation has not completed");
    auto& engine = comm_->engine();
    if (kind_ == Kind::Send) {
      active_ = engine.start_send(send_view_, comm_->to_world(peer_), tag_,
                                  comm_->id());
    } else {
      const int src_world = peer_ == kAnySource ? kAnySource : comm_->to_world(peer_);
      active_ = engine.post_recv(recv_view_, src_world, tag_, comm_->id());
    }
    return active_;
  }

  Kind kind() const { return kind_; }

 private:
  PersistentRequest() = default;

  Communicator* comm_ = nullptr;
  Kind kind_ = Kind::Send;
  std::span<const std::byte> send_view_{};
  std::span<std::byte> recv_view_{};
  int peer_ = 0;
  int tag_ = 0;
  Request active_;
};

/// Typed conveniences mirroring MPI_Send_init / MPI_Recv_init.
template <typename T>
PersistentRequest send_init(Communicator& comm, std::span<const T> data, int dst,
                            int tag = 0) {
  return PersistentRequest::send_init(comm, std::as_bytes(data), dst, tag);
}

template <typename T>
PersistentRequest recv_init(Communicator& comm, std::span<T> buffer,
                            int src = kAnySource, int tag = kAnyTag) {
  return PersistentRequest::recv_init(comm, std::as_writable_bytes(buffer), src, tag);
}

}  // namespace cbmpi::mpi
