// Communicator: the user-facing MPI-like API.
//
// Typed point-to-point and collective operations over contiguous spans of
// trivially-copyable elements. Collective algorithms are written once over an
// arbitrary *list* of communicator ranks, which lets the hierarchical
// (two-level, leader-based) variants reuse the flat algorithms: the local
// phase runs over the detected co-resident group, the global phase over the
// group leaders. Which ranks count as "co-resident" comes from the channel
// selector's policy — hostname-based (default) or container-aware (the
// paper's design) — so the benefit of locality awareness flows through both
// point-to-point channel selection and collective topology.
//
// Algorithms:
//   barrier     dissemination                   (2-level: gather + release)
//   bcast       binomial tree                   (2-level: leaders then local)
//   reduce      binomial tree (commutative ops)
//   allreduce   recursive doubling on power-of-two lists, reduce+bcast else
//               (2-level: local reduce, leader allreduce, local bcast)
//   gather      linear to root
//   scatter     linear from root
//   allgather   ring (bandwidth-optimal)        (2-level when groups are
//                                                uniform and contiguous)
//   alltoall    pairwise exchange (no 2-level variant — consistent with the
//               paper, where alltoall shows the smallest collective gain)
//   alltoallv   pairwise exchange with per-peer counts
//
// Tag discipline: every user-level collective reserves a block of reserved
// tags (same sequence on every rank, because collectives are called in the
// same order); each internal phase uses a fixed offset within the block, so
// ranks that skip a phase (non-leaders) stay tag-consistent with ranks that
// do not.
//
// All internal traffic uses unprofiled "raw" transfers so the mpiP-style
// profile counts user-level MPI calls exactly once.
#pragma once

#include <algorithm>
#include <cstring>
#include <memory>
#include <optional>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "mpi/adi3.hpp"
#include "mpi/types.hpp"

namespace cbmpi::mpi {

/// Tags at or above this value are reserved for collective internals.
inline constexpr int kCollectiveTagBase = 1 << 20;

struct CommGroup {
  std::vector<int> world_ranks;            ///< comm rank -> world rank
  std::unordered_map<int, int> to_comm;    ///< world rank -> comm rank

  static std::shared_ptr<const CommGroup> make(std::vector<int> world_ranks);
};

/// Locality structure of one communicator under the active policy.
struct LocalityGroups {
  std::vector<int> my_group;   ///< comm ranks co-resident with me (sorted)
  int my_leader = 0;           ///< smallest rank of my group
  std::vector<int> leaders;    ///< sorted leaders of all groups
  std::vector<int> leader_of;  ///< comm rank -> leader of its group
  bool uniform = false;        ///< all groups have equal size
  bool contiguous = false;     ///< every group is a contiguous rank range
  int group_size = 1;          ///< size of *my* group
  int max_group_size = 1;      ///< size of the largest group

  /// Whether two-level algorithms degenerate to flat ones. Must be a global
  /// property — every rank has to pick the same algorithm — so it looks at
  /// the largest group anywhere, not this rank's own (a placement can leave
  /// one rank alone on a host while other hosts hold full groups).
  bool trivial() const { return max_group_size <= 1 || leaders.size() <= 1; }
};

/// Index of `rank` within a rank list; -1 if absent.
int position_of(const std::vector<int>& list, int rank);

class Communicator {
 public:
  Communicator(Adi3Engine& engine, std::shared_ptr<const CommGroup> group,
               std::uint64_t id);

  int rank() const { return my_rank_; }
  int size() const { return static_cast<int>(group_->world_ranks.size()); }
  std::uint64_t id() const { return id_; }

  int to_world(int comm_rank) const;
  int from_world(int world_rank) const;

  Adi3Engine& engine() { return *engine_; }

  // ---- point-to-point ------------------------------------------------------

  template <typename T>
  void send(std::span<const T> data, int dst, int tag = 0);

  template <typename T>
  Status recv(std::span<T> buffer, int src = kAnySource, int tag = kAnyTag);

  template <typename T>
  Request isend(std::span<const T> data, int dst, int tag = 0);

  template <typename T>
  Request irecv(std::span<T> buffer, int src = kAnySource, int tag = kAnyTag);

  bool test(const Request& request);
  Status wait(const Request& request);
  void wait_all(std::span<const Request> requests);

  /// Blocks until at least one request completes; returns its index
  /// (MPI_Waitany; lowest completed index when several are ready).
  std::size_t wait_any(std::span<const Request> requests);

  /// Non-blocking: index of a completed request, if any (MPI_Testany).
  std::optional<std::size_t> test_any(std::span<const Request> requests);

  /// Non-blocking: true iff every request has completed (MPI_Testall).
  bool test_all(std::span<const Request> requests);

  void cancel(const Request& request) { engine_->cancel(request); }
  std::optional<Status> iprobe(int src = kAnySource, int tag = kAnyTag);

  /// Blocking probe: waits until a matching message is pending and returns
  /// its status without receiving it (MPI_Probe).
  Status probe(int src = kAnySource, int tag = kAnyTag);

  template <typename T>
  void sendrecv(std::span<const T> send_data, int dst, std::span<T> recv_buffer,
                int src, int tag = 0);

  /// Single-value conveniences.
  template <typename T>
  void send_value(const T& value, int dst, int tag = 0);
  template <typename T>
  T recv_value(int src = kAnySource, int tag = kAnyTag);

  // ---- collectives ---------------------------------------------------------

  void barrier();

  template <typename T>
  void bcast(std::span<T> data, int root = 0);

  template <typename T>
  void reduce(std::span<const T> in, std::span<T> out, ReduceOp op, int root = 0);

  template <typename T>
  void allreduce(std::span<const T> in, std::span<T> out, ReduceOp op);

  template <typename T>
  T allreduce_value(T value, ReduceOp op);

  template <typename T>
  void gather(std::span<const T> mine, std::span<T> all, int root = 0);

  template <typename T>
  void allgather(std::span<const T> mine, std::span<T> all);

  template <typename T>
  void scatter(std::span<const T> all, std::span<T> mine, int root = 0);

  template <typename T>
  void alltoall(std::span<const T> send_data, std::span<T> recv_data);

  template <typename T>
  void alltoallv(std::span<const T> send_data, std::span<const int> send_counts,
                 std::span<const int> send_displs, std::span<T> recv_data,
                 std::span<const int> recv_counts, std::span<const int> recv_displs);

  /// Variable-count gather/scatter/allgather (counts/displs in elements,
  /// indexed by communicator rank).
  template <typename T>
  void gatherv(std::span<const T> mine, std::span<T> all, std::span<const int> counts,
               std::span<const int> displs, int root = 0);

  template <typename T>
  void scatterv(std::span<const T> all, std::span<const int> counts,
                std::span<const int> displs, std::span<T> mine, int root = 0);

  template <typename T>
  void allgatherv(std::span<const T> mine, std::span<T> all,
                  std::span<const int> counts, std::span<const int> displs);

  /// MPI_Reduce_scatter_block: `in` holds size() equal blocks; every rank
  /// receives the reduction of its own block.
  template <typename T>
  void reduce_scatter_block(std::span<const T> in, std::span<T> out, ReduceOp op);

  /// Inclusive prefix reduction: out on rank r = reduce of ranks 0..r.
  template <typename T>
  void scan(std::span<const T> in, std::span<T> out, ReduceOp op);

  /// Exclusive prefix reduction: out on rank r = reduce of ranks 0..r-1
  /// (value-initialized on rank 0, as MPI leaves it undefined).
  template <typename T>
  void exscan(std::span<const T> in, std::span<T> out, ReduceOp op);

  template <typename T>
  T scan_value(T value, ReduceOp op);
  template <typename T>
  T exscan_value(T value, ReduceOp op);

  // ---- communicator management ---------------------------------------------

  /// Collective. Ranks passing a negative color receive std::nullopt
  /// (the MPI_COMM_NULL analogue).
  std::optional<Communicator> split(int color, int key);

  Communicator dup();

  /// Locality structure under the active policy; computed lazily, cached.
  const LocalityGroups& locality_groups();

  /// Internal: next window ordinal (same sequence on all ranks).
  std::uint64_t next_window_ordinal() { return next_window_ordinal_++; }

  /// Internal: an unprofiled barrier for window synchronisation.
  void raw_barrier();

 private:
  /// Number of reserved tags per user-level collective call. Each internal
  /// phase gets a stride-4 slice so composite algorithms (e.g. scatter +
  /// ring-allgather inside one bcast phase) have room.
  static constexpr int kSubTags = 16;

  /// Reserves a tag block; returns its base. Same sequence on every rank.
  int begin_collective();

  // Unprofiled raw transfers used by collective internals.
  template <typename T>
  Request raw_isend(std::span<const T> data, int dst, int tag);
  template <typename T>
  Request raw_irecv(std::span<T> buffer, int src, int tag);
  template <typename T>
  void raw_send(std::span<const T> data, int dst, int tag);
  template <typename T>
  void raw_recv(std::span<T> buffer, int src, int tag);
  template <typename T>
  void raw_sendrecv(std::span<const T> send_data, int dst, std::span<T> recv_buffer,
                    int src, int tag);

  // Collective algorithms over an arbitrary sorted list of comm ranks; `list`
  // must contain rank() exactly once and be identical on all listed ranks.
  void barrier_over(const std::vector<int>& list, int tag);
  template <typename T>
  void bcast_over(const std::vector<int>& list, std::span<T> data, int root_pos,
                  int tag);
  template <typename T>
  void reduce_over(const std::vector<int>& list, std::span<const T> in,
                   std::span<T> out, ReduceOp op, int root_pos, int tag);
  template <typename T>
  void allreduce_over(const std::vector<int>& list, std::span<const T> in,
                      std::span<T> out, ReduceOp op, int tag);
  template <typename T>
  void allgather_over(const std::vector<int>& list, std::span<const T> mine,
                      std::span<T> all, int tag);
  /// counts/displs indexed by *position* in the list.
  template <typename T>
  void allgatherv_over(const std::vector<int>& list, std::span<const T> mine,
                       std::span<T> all, std::span<const int> counts,
                       std::span<const int> displs, int tag);
  /// van de Geijn large-message broadcast: scatter + ring allgather.
  /// Uses tags [tag, tag+2).
  template <typename T>
  void bcast_vandegeijn_over(const std::vector<int>& list, std::span<T> data,
                             int root_pos, int tag);
  /// Recursive-halving reduce-scatter over a power-of-two list; `in` holds
  /// list.size() equal blocks, `block_out` receives this rank's block.
  template <typename T>
  void reduce_scatter_halving_over(const std::vector<int>& list,
                                   std::span<const T> in, std::span<T> block_out,
                                   ReduceOp op, int tag);
  /// Rabenseifner large-message allreduce over a power-of-two list.
  /// Uses tags [tag, tag+2).
  template <typename T>
  void allreduce_rabenseifner_over(const std::vector<int>& list,
                                   std::span<const T> in, std::span<T> out,
                                   ReduceOp op, int tag);

  std::vector<int> all_ranks() const;
  int position_in(const std::vector<int>& list) const;
  bool two_level_enabled() const;

  Adi3Engine* engine_;
  std::shared_ptr<const CommGroup> group_;
  std::uint64_t id_;
  int my_rank_;
  std::uint64_t next_child_ordinal_ = 0;
  std::uint64_t next_coll_seq_ = 0;
  std::uint64_t next_window_ordinal_ = 0;
  std::optional<LocalityGroups> locality_;
};

/// RAII profiling scope for one user-level MPI call.
class ProfiledCall {
 public:
  ProfiledCall(Adi3Engine& engine, prof::CallKind kind)
      : engine_(&engine), kind_(kind), start_(engine.clock().now()) {}
  ~ProfiledCall() {
    engine_->profile().add_call(kind_, engine_->clock().now() - start_);
  }
  ProfiledCall(const ProfiledCall&) = delete;
  ProfiledCall& operator=(const ProfiledCall&) = delete;

 private:
  Adi3Engine* engine_;
  prof::CallKind kind_;
  Micros start_;
};

// ===========================================================================
// implementation
// ===========================================================================

namespace detail {

template <typename T>
std::span<const std::byte> as_bytes_checked(std::span<const T> data) {
  static_assert(std::is_trivially_copyable_v<T>,
                "cbmpi transfers require trivially copyable element types");
  return std::as_bytes(data);
}

template <typename T>
std::span<std::byte> as_writable_bytes_checked(std::span<T> data) {
  static_assert(std::is_trivially_copyable_v<T>,
                "cbmpi transfers require trivially copyable element types");
  return std::as_writable_bytes(data);
}

inline bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

}  // namespace detail

// ---- raw transfers ----------------------------------------------------------

template <typename T>
Request Communicator::raw_isend(std::span<const T> data, int dst, int tag) {
  return engine_->start_send(detail::as_bytes_checked(data), to_world(dst), tag, id_);
}

template <typename T>
Request Communicator::raw_irecv(std::span<T> buffer, int src, int tag) {
  const int src_world = src == kAnySource ? kAnySource : to_world(src);
  return engine_->post_recv(detail::as_writable_bytes_checked(buffer), src_world,
                            tag, id_);
}

template <typename T>
void Communicator::raw_send(std::span<const T> data, int dst, int tag) {
  engine_->wait(raw_isend(data, dst, tag));
}

template <typename T>
void Communicator::raw_recv(std::span<T> buffer, int src, int tag) {
  engine_->wait(raw_irecv(buffer, src, tag));
}

template <typename T>
void Communicator::raw_sendrecv(std::span<const T> send_data, int dst,
                                std::span<T> recv_buffer, int src, int tag) {
  const Request recv_request = raw_irecv(recv_buffer, src, tag);
  const Request send_request = raw_isend(send_data, dst, tag);
  engine_->wait(recv_request);
  engine_->wait(send_request);
}

// ---- point-to-point -----------------------------------------------------------

template <typename T>
void Communicator::send(std::span<const T> data, int dst, int tag) {
  CBMPI_REQUIRE(tag >= 0 && tag < kCollectiveTagBase, "user tag out of range: ", tag);
  const ProfiledCall prof_scope(*engine_, prof::CallKind::Send);
  raw_send(data, dst, tag);
}

template <typename T>
Status Communicator::recv(std::span<T> buffer, int src, int tag) {
  const ProfiledCall prof_scope(*engine_, prof::CallKind::Recv);
  const Request request = raw_irecv(buffer, src, tag);
  Status status = engine_->wait(request);
  status.source = from_world(status.source);
  return status;
}

template <typename T>
Request Communicator::isend(std::span<const T> data, int dst, int tag) {
  CBMPI_REQUIRE(tag >= 0 && tag < kCollectiveTagBase, "user tag out of range: ", tag);
  const ProfiledCall prof_scope(*engine_, prof::CallKind::Isend);
  return raw_isend(data, dst, tag);
}

template <typename T>
Request Communicator::irecv(std::span<T> buffer, int src, int tag) {
  const ProfiledCall prof_scope(*engine_, prof::CallKind::Irecv);
  return raw_irecv(buffer, src, tag);
}

template <typename T>
void Communicator::sendrecv(std::span<const T> send_data, int dst,
                            std::span<T> recv_buffer, int src, int tag) {
  const ProfiledCall prof_scope(*engine_, prof::CallKind::Send);
  raw_sendrecv(send_data, dst, recv_buffer, src, tag);
}

template <typename T>
void Communicator::send_value(const T& value, int dst, int tag) {
  send(std::span<const T>(&value, 1), dst, tag);
}

template <typename T>
T Communicator::recv_value(int src, int tag) {
  T value{};
  recv(std::span<T>(&value, 1), src, tag);
  return value;
}

// ---- collective algorithms over rank lists -------------------------------------

template <typename T>
void Communicator::bcast_over(const std::vector<int>& list, std::span<T> data,
                              int root_pos, int tag) {
  const int m = static_cast<int>(list.size());
  if (m <= 1) return;
  if (data.size() * sizeof(T) >= engine_->job().tuning.bcast_large_threshold &&
      m >= 4 && data.size() >= static_cast<std::size_t>(m)) {
    bcast_vandegeijn_over(list, data, root_pos, tag);
    return;
  }
  const int pos = position_in(list);
  const int vrank = (pos - root_pos + m) % m;

  auto real = [&](int v) { return list[static_cast<std::size_t>((v + root_pos) % m)]; };

  int mask = 1;
  while (mask < m) {
    if (vrank & mask) {
      raw_recv(data, real(vrank - mask), tag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < m)
      raw_send(std::span<const T>(data.data(), data.size()), real(vrank + mask), tag);
    mask >>= 1;
  }
}

template <typename T>
void Communicator::reduce_over(const std::vector<int>& list, std::span<const T> in,
                               std::span<T> out, ReduceOp op, int root_pos, int tag) {
  const int m = static_cast<int>(list.size());
  const int pos = position_in(list);
  const int vrank = (pos - root_pos + m) % m;

  std::vector<T> acc(in.begin(), in.end());
  if (m > 1) {
    auto real = [&](int v) { return list[static_cast<std::size_t>((v + root_pos) % m)]; };
    std::vector<T> incoming(in.size());

    int mask = 1;
    while (mask < m) {
      if (vrank & mask) {
        raw_send(std::span<const T>(acc), real(vrank - mask), tag);
        break;
      }
      const int child = vrank + mask;
      if (child < m) {
        raw_recv(std::span<T>(incoming), real(child), tag);
        apply_reduce<T>(op, incoming, acc);
      }
      mask <<= 1;
    }
  }
  if (vrank == 0) {
    CBMPI_REQUIRE(out.size() >= in.size(), "reduce output buffer too small");
    std::copy(acc.begin(), acc.end(), out.begin());
  }
}

template <typename T>
void Communicator::allreduce_over(const std::vector<int>& list, std::span<const T> in,
                                  std::span<T> out, ReduceOp op, int tag) {
  const int m = static_cast<int>(list.size());
  CBMPI_REQUIRE(out.size() >= in.size(), "allreduce output buffer too small");
  if (m == 1) {
    std::copy(in.begin(), in.end(), out.begin());
    return;
  }
  if (detail::is_power_of_two(static_cast<std::size_t>(m))) {
    // Rabenseifner pads the vector with value-initialized elements, which is
    // only an identity for zero-identity operators.
    const bool zero_identity = op == ReduceOp::Sum || op == ReduceOp::BitOr ||
                               op == ReduceOp::LogicalOr;
    if (zero_identity &&
        in.size() * sizeof(T) >= engine_->job().tuning.allreduce_large_threshold &&
        m >= 4) {
      allreduce_rabenseifner_over(list, in, out, op, tag);
      return;
    }
    const int pos = position_in(list);
    std::vector<T> acc(in.begin(), in.end());
    std::vector<T> incoming(in.size());
    for (int mask = 1; mask < m; mask <<= 1) {
      const int partner = list[static_cast<std::size_t>(pos ^ mask)];
      raw_sendrecv(std::span<const T>(acc), partner, std::span<T>(incoming), partner,
                   tag);
      apply_reduce<T>(op, incoming, acc);
    }
    std::copy(acc.begin(), acc.end(), out.begin());
    return;
  }
  reduce_over(list, in, out, op, 0, tag);
  bcast_over(list, out.subspan(0, in.size()), 0, tag + 1);
}

template <typename T>
void Communicator::allgather_over(const std::vector<int>& list, std::span<const T> mine,
                                  std::span<T> all, int tag) {
  const int m = static_cast<int>(list.size());
  const std::size_t block = mine.size();
  CBMPI_REQUIRE(all.size() >= block * static_cast<std::size_t>(m),
                "allgather output buffer too small");
  const int pos = position_in(list);
  T* const my_slot = all.data() + block * static_cast<std::size_t>(pos);
  if (my_slot != mine.data()) std::copy(mine.begin(), mine.end(), my_slot);
  if (m == 1) return;

  // Ring: in step s we forward the block received in step s-1. Per-sender
  // FIFO matching makes one tag safe for all steps.
  const int right = list[static_cast<std::size_t>((pos + 1) % m)];
  const int left = list[static_cast<std::size_t>((pos - 1 + m) % m)];
  for (int s = 0; s < m - 1; ++s) {
    const std::size_t send_pos = static_cast<std::size_t>((pos - s + m) % m);
    const std::size_t recv_pos = static_cast<std::size_t>((pos - s - 1 + m) % m);
    raw_sendrecv(std::span<const T>(all.data() + block * send_pos, block), right,
                 std::span<T>(all.data() + block * recv_pos, block), left, tag);
  }
}

// ---- user-level collectives -----------------------------------------------------

template <typename T>
void Communicator::bcast(std::span<T> data, int root) {
  const ProfiledCall prof_scope(*engine_, prof::CallKind::Bcast);
  const int tag = begin_collective();
  const auto& groups = locality_groups();
  if (!two_level_enabled() || groups.trivial()) {
    bcast_over(all_ranks(), data, root, tag);
    return;
  }
  const int root_leader = groups.leader_of[static_cast<std::size_t>(root)];
  // Phase 1: if the root is not its group's leader, hand the data to it.
  if (root != root_leader) {
    if (rank() == root)
      raw_send(std::span<const T>(data.data(), data.size()), root_leader, tag);
    else if (rank() == root_leader)
      raw_recv(data, root, tag);
  }
  // Phase 2: broadcast across leaders, rooted at the root's leader.
  if (rank() == groups.my_leader)
    bcast_over(groups.leaders, data, position_of(groups.leaders, root_leader),
               tag + 1);
  // Phase 3: each leader broadcasts within its group.
  bcast_over(groups.my_group, data, position_of(groups.my_group, groups.my_leader),
             tag + 2);
}

template <typename T>
void Communicator::reduce(std::span<const T> in, std::span<T> out, ReduceOp op,
                          int root) {
  const ProfiledCall prof_scope(*engine_, prof::CallKind::Reduce);
  const int tag = begin_collective();
  reduce_over(all_ranks(), in, out, op, root, tag);
}

template <typename T>
void Communicator::allreduce(std::span<const T> in, std::span<T> out, ReduceOp op) {
  const ProfiledCall prof_scope(*engine_, prof::CallKind::Allreduce);
  const int tag = begin_collective();
  const auto& groups = locality_groups();
  if (!two_level_enabled() || groups.trivial()) {
    allreduce_over(all_ranks(), in, out, op, tag);
    return;
  }
  // Local reduce to the leader, allreduce across leaders, local bcast.
  const int leader_pos = position_of(groups.my_group, groups.my_leader);
  reduce_over(groups.my_group, in, out, op, leader_pos, tag);
  if (rank() == groups.my_leader) {
    std::vector<T> tmp(out.begin(),
                       out.begin() + static_cast<std::ptrdiff_t>(in.size()));
    allreduce_over(groups.leaders, std::span<const T>(tmp), out, op, tag + 4);
  }
  bcast_over(groups.my_group, out.subspan(0, in.size()), leader_pos, tag + 8);
}

template <typename T>
T Communicator::allreduce_value(T value, ReduceOp op) {
  T out{};
  allreduce(std::span<const T>(&value, 1), std::span<T>(&out, 1), op);
  return out;
}

template <typename T>
void Communicator::gather(std::span<const T> mine, std::span<T> all, int root) {
  const ProfiledCall prof_scope(*engine_, prof::CallKind::Gather);
  const int tag = begin_collective();
  const std::size_t block = mine.size();
  if (rank() == root) {
    CBMPI_REQUIRE(all.size() >= block * static_cast<std::size_t>(size()),
                  "gather output buffer too small");
    std::copy(mine.begin(), mine.end(),
              all.begin() +
                  static_cast<std::ptrdiff_t>(block * static_cast<std::size_t>(root)));
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      raw_recv(std::span<T>(all.data() + block * static_cast<std::size_t>(r), block),
               r, tag);
    }
  } else {
    raw_send(mine, root, tag);
  }
}

template <typename T>
void Communicator::allgather(std::span<const T> mine, std::span<T> all) {
  const ProfiledCall prof_scope(*engine_, prof::CallKind::Allgather);
  const int tag = begin_collective();
  const auto& groups = locality_groups();
  const std::size_t block = mine.size();
  if (!two_level_enabled() || groups.trivial() || !groups.uniform ||
      !groups.contiguous) {
    allgather_over(all_ranks(), mine, all, tag);
    return;
  }
  // Two-level with contiguous uniform groups: gather locally to the leader,
  // ring-allgather the concatenated group blocks across leaders, then bcast
  // the full result locally. Group contiguity makes the concatenation land
  // in rank order (each group's block starts at its leader's rank offset).
  const std::size_t group_block = block * static_cast<std::size_t>(groups.group_size);
  if (rank() == groups.my_leader) {
    std::copy(mine.begin(), mine.end(),
              all.begin() +
                  static_cast<std::ptrdiff_t>(block * static_cast<std::size_t>(rank())));
    for (int member : groups.my_group) {
      if (member == rank()) continue;
      raw_recv(
          std::span<T>(all.data() + block * static_cast<std::size_t>(member), block),
          member, tag);
    }
    const std::size_t my_leader_pos =
        static_cast<std::size_t>(position_of(groups.leaders, groups.my_leader));
    std::vector<T> packed(group_block * groups.leaders.size());
    std::copy(all.data() + block * static_cast<std::size_t>(rank()),
              all.data() + block * static_cast<std::size_t>(rank()) + group_block,
              packed.data() + group_block * my_leader_pos);
    allgather_over(groups.leaders,
                   std::span<const T>(packed.data() + group_block * my_leader_pos,
                                      group_block),
                   std::span<T>(packed), tag + 4);
    for (std::size_t g = 0; g < groups.leaders.size(); ++g) {
      const std::size_t offset = block * static_cast<std::size_t>(groups.leaders[g]);
      std::copy(packed.begin() + static_cast<std::ptrdiff_t>(group_block * g),
                packed.begin() + static_cast<std::ptrdiff_t>(group_block * (g + 1)),
                all.begin() + static_cast<std::ptrdiff_t>(offset));
    }
  } else {
    raw_send(mine, groups.my_leader, tag);
  }
  bcast_over(groups.my_group, all, position_of(groups.my_group, groups.my_leader),
             tag + 8);
}

template <typename T>
void Communicator::scatter(std::span<const T> all, std::span<T> mine, int root) {
  const ProfiledCall prof_scope(*engine_, prof::CallKind::Scatter);
  const int tag = begin_collective();
  const std::size_t block = mine.size();
  if (rank() == root) {
    CBMPI_REQUIRE(all.size() >= block * static_cast<std::size_t>(size()),
                  "scatter input buffer too small");
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      raw_send(
          std::span<const T>(all.data() + block * static_cast<std::size_t>(r), block),
          r, tag);
    }
    std::copy(all.data() + block * static_cast<std::size_t>(root),
              all.data() + block * static_cast<std::size_t>(root) + block, mine.data());
  } else {
    raw_recv(mine, root, tag);
  }
}

template <typename T>
void Communicator::alltoall(std::span<const T> send_data, std::span<T> recv_data) {
  const ProfiledCall prof_scope(*engine_, prof::CallKind::Alltoall);
  const int tag = begin_collective();
  const int n = size();
  const std::size_t block = send_data.size() / static_cast<std::size_t>(n);
  CBMPI_REQUIRE(send_data.size() == block * static_cast<std::size_t>(n) &&
                    recv_data.size() >= send_data.size(),
                "alltoall buffer size mismatch");
  const auto my = static_cast<std::size_t>(rank());
  std::copy(send_data.data() + block * my, send_data.data() + block * (my + 1),
            recv_data.data() + block * my);
  const bool pow2 = detail::is_power_of_two(static_cast<std::size_t>(n));
  for (int step = 1; step < n; ++step) {
    const int send_to = pow2 ? (rank() ^ step) : (rank() + step) % n;
    const int recv_from = pow2 ? (rank() ^ step) : (rank() - step + n) % n;
    raw_sendrecv(
        std::span<const T>(send_data.data() + block * static_cast<std::size_t>(send_to),
                           block),
        send_to,
        std::span<T>(recv_data.data() + block * static_cast<std::size_t>(recv_from),
                     block),
        recv_from, tag);
  }
}

template <typename T>
void Communicator::alltoallv(std::span<const T> send_data,
                             std::span<const int> send_counts,
                             std::span<const int> send_displs, std::span<T> recv_data,
                             std::span<const int> recv_counts,
                             std::span<const int> recv_displs) {
  const ProfiledCall prof_scope(*engine_, prof::CallKind::Alltoallv);
  const int tag = begin_collective();
  const int n = size();
  CBMPI_REQUIRE(send_counts.size() == static_cast<std::size_t>(n) &&
                    recv_counts.size() == static_cast<std::size_t>(n) &&
                    send_displs.size() == static_cast<std::size_t>(n) &&
                    recv_displs.size() == static_cast<std::size_t>(n),
                "alltoallv count/displ arrays must have comm-size entries");
  auto send_block = [&](int r) {
    const auto i = static_cast<std::size_t>(r);
    return std::span<const T>(
        send_data.data() + static_cast<std::size_t>(send_displs[i]),
        static_cast<std::size_t>(send_counts[i]));
  };
  auto recv_block = [&](int r) {
    const auto i = static_cast<std::size_t>(r);
    return std::span<T>(recv_data.data() + static_cast<std::size_t>(recv_displs[i]),
                        static_cast<std::size_t>(recv_counts[i]));
  };
  {
    auto src = send_block(rank());
    auto dst = recv_block(rank());
    CBMPI_REQUIRE(dst.size() >= src.size(), "alltoallv self block mismatch");
    std::copy(src.begin(), src.end(), dst.begin());
  }
  const bool pow2 = detail::is_power_of_two(static_cast<std::size_t>(n));
  for (int step = 1; step < n; ++step) {
    const int send_to = pow2 ? (rank() ^ step) : (rank() + step) % n;
    const int recv_from = pow2 ? (rank() ^ step) : (rank() - step + n) % n;
    raw_sendrecv(send_block(send_to), send_to, recv_block(recv_from), recv_from, tag);
  }
}

// ---- v-variants, reduce_scatter, prefix scans -----------------------------------

template <typename T>
void Communicator::allgatherv_over(const std::vector<int>& list,
                                   std::span<const T> mine, std::span<T> all,
                                   std::span<const int> counts,
                                   std::span<const int> displs, int tag) {
  const int m = static_cast<int>(list.size());
  const int pos = position_in(list);
  CBMPI_REQUIRE(counts.size() == static_cast<std::size_t>(m) &&
                    displs.size() == static_cast<std::size_t>(m),
                "allgatherv counts/displs must have one entry per position");
  CBMPI_REQUIRE(mine.size() == static_cast<std::size_t>(counts[static_cast<std::size_t>(pos)]),
                "allgatherv input size mismatch");
  T* const my_slot = all.data() + static_cast<std::size_t>(displs[static_cast<std::size_t>(pos)]);
  if (my_slot != mine.data()) std::copy(mine.begin(), mine.end(), my_slot);
  if (m == 1) return;

  const int right = list[static_cast<std::size_t>((pos + 1) % m)];
  const int left = list[static_cast<std::size_t>((pos - 1 + m) % m)];
  for (int s = 0; s < m - 1; ++s) {
    const auto send_pos = static_cast<std::size_t>((pos - s + m) % m);
    const auto recv_pos = static_cast<std::size_t>((pos - s - 1 + m) % m);
    raw_sendrecv(std::span<const T>(all.data() + static_cast<std::size_t>(displs[send_pos]),
                                    static_cast<std::size_t>(counts[send_pos])),
                 right,
                 std::span<T>(all.data() + static_cast<std::size_t>(displs[recv_pos]),
                              static_cast<std::size_t>(counts[recv_pos])),
                 left, tag);
  }
}

template <typename T>
void Communicator::bcast_vandegeijn_over(const std::vector<int>& list,
                                         std::span<T> data, int root_pos, int tag) {
  const int m = static_cast<int>(list.size());
  const int pos = position_in(list);
  const std::size_t n = data.size();
  // Block partition of the payload by position.
  std::vector<int> counts(static_cast<std::size_t>(m));
  std::vector<int> displs(static_cast<std::size_t>(m));
  const std::size_t base = n / static_cast<std::size_t>(m);
  const std::size_t rem = n % static_cast<std::size_t>(m);
  std::size_t offset = 0;
  for (int q = 0; q < m; ++q) {
    const std::size_t c = base + (static_cast<std::size_t>(q) < rem ? 1 : 0);
    counts[static_cast<std::size_t>(q)] = static_cast<int>(c);
    displs[static_cast<std::size_t>(q)] = static_cast<int>(offset);
    offset += c;
  }
  // Scatter phase (linear from the root).
  if (pos == root_pos) {
    for (int q = 0; q < m; ++q) {
      if (q == root_pos) continue;
      raw_send(std::span<const T>(data.data() + static_cast<std::size_t>(
                                                    displs[static_cast<std::size_t>(q)]),
                                  static_cast<std::size_t>(counts[static_cast<std::size_t>(q)])),
               list[static_cast<std::size_t>(q)], tag);
    }
  } else {
    raw_recv(std::span<T>(data.data() + static_cast<std::size_t>(
                                            displs[static_cast<std::size_t>(pos)]),
                          static_cast<std::size_t>(counts[static_cast<std::size_t>(pos)])),
             list[static_cast<std::size_t>(root_pos)], tag);
  }
  // Ring allgather of the blocks completes the broadcast.
  allgatherv_over(list,
                  std::span<const T>(data.data() + static_cast<std::size_t>(
                                                       displs[static_cast<std::size_t>(pos)]),
                                     static_cast<std::size_t>(counts[static_cast<std::size_t>(pos)])),
                  data, counts, displs, tag + 1);
}

template <typename T>
void Communicator::reduce_scatter_halving_over(const std::vector<int>& list,
                                               std::span<const T> in,
                                               std::span<T> block_out, ReduceOp op,
                                               int tag) {
  const int m = static_cast<int>(list.size());
  CBMPI_REQUIRE(detail::is_power_of_two(static_cast<std::size_t>(m)),
                "recursive halving requires a power-of-two list");
  const std::size_t block = in.size() / static_cast<std::size_t>(m);
  CBMPI_REQUIRE(in.size() == block * static_cast<std::size_t>(m) &&
                    block_out.size() >= block,
                "reduce_scatter buffer size mismatch");
  const int pos = position_in(list);

  std::vector<T> acc(in.begin(), in.end());
  std::vector<T> incoming(in.size() / 2 + 1);
  std::size_t start = 0;        // in blocks
  std::size_t count = static_cast<std::size_t>(m);
  for (int mask = m >> 1; mask > 0; mask >>= 1) {
    const int partner = list[static_cast<std::size_t>(pos ^ mask)];
    const std::size_t half = count / 2;
    const bool upper = (pos & mask) != 0;
    const std::size_t keep_start = upper ? start + half : start;
    const std::size_t send_start = upper ? start : start + half;
    raw_sendrecv(std::span<const T>(acc.data() + send_start * block, half * block),
                 partner, std::span<T>(incoming.data(), half * block), partner, tag);
    apply_reduce<T>(op, std::span<const T>(incoming.data(), half * block),
                    std::span<T>(acc.data() + keep_start * block, half * block));
    start = keep_start;
    count = half;
  }
  // After log2(m) rounds this rank holds the reduction of block `pos`.
  std::copy(acc.data() + start * block, acc.data() + (start + 1) * block,
            block_out.data());
}

template <typename T>
void Communicator::allreduce_rabenseifner_over(const std::vector<int>& list,
                                               std::span<const T> in, std::span<T> out,
                                               ReduceOp op, int tag) {
  const int m = static_cast<int>(list.size());
  const std::size_t block =
      (in.size() + static_cast<std::size_t>(m) - 1) / static_cast<std::size_t>(m);
  // Pad to m equal blocks with identity-ish zeros (safe for Sum/Or; Min/Max
  // and Prod fall back to recursive doubling at the dispatch site).
  std::vector<T> padded(block * static_cast<std::size_t>(m), T{});
  std::copy(in.begin(), in.end(), padded.begin());
  std::vector<T> my_block(block);
  reduce_scatter_halving_over(list, std::span<const T>(padded),
                              std::span<T>(my_block), op, tag);
  allgather_over(list, std::span<const T>(my_block), std::span<T>(padded), tag + 1);
  std::copy(padded.begin(), padded.begin() + static_cast<std::ptrdiff_t>(in.size()),
            out.begin());
}

template <typename T>
void Communicator::gatherv(std::span<const T> mine, std::span<T> all,
                           std::span<const int> counts, std::span<const int> displs,
                           int root) {
  const ProfiledCall prof_scope(*engine_, prof::CallKind::Gatherv);
  const int tag = begin_collective();
  CBMPI_REQUIRE(counts.size() == static_cast<std::size_t>(size()) &&
                    displs.size() == static_cast<std::size_t>(size()),
                "gatherv counts/displs must have comm-size entries");
  if (rank() == root) {
    for (int r = 0; r < size(); ++r) {
      auto slot = std::span<T>(
          all.data() + static_cast<std::size_t>(displs[static_cast<std::size_t>(r)]),
          static_cast<std::size_t>(counts[static_cast<std::size_t>(r)]));
      if (r == root)
        std::copy(mine.begin(), mine.end(), slot.begin());
      else
        raw_recv(slot, r, tag);
    }
  } else {
    raw_send(mine, root, tag);
  }
}

template <typename T>
void Communicator::scatterv(std::span<const T> all, std::span<const int> counts,
                            std::span<const int> displs, std::span<T> mine, int root) {
  const ProfiledCall prof_scope(*engine_, prof::CallKind::Scatterv);
  const int tag = begin_collective();
  CBMPI_REQUIRE(counts.size() == static_cast<std::size_t>(size()) &&
                    displs.size() == static_cast<std::size_t>(size()),
                "scatterv counts/displs must have comm-size entries");
  if (rank() == root) {
    for (int r = 0; r < size(); ++r) {
      auto slot = std::span<const T>(
          all.data() + static_cast<std::size_t>(displs[static_cast<std::size_t>(r)]),
          static_cast<std::size_t>(counts[static_cast<std::size_t>(r)]));
      if (r == root)
        std::copy(slot.begin(), slot.end(), mine.begin());
      else
        raw_send(slot, r, tag);
    }
  } else {
    raw_recv(mine.subspan(0, static_cast<std::size_t>(
                                 counts[static_cast<std::size_t>(rank())])),
             root, tag);
  }
}

template <typename T>
void Communicator::allgatherv(std::span<const T> mine, std::span<T> all,
                              std::span<const int> counts,
                              std::span<const int> displs) {
  const ProfiledCall prof_scope(*engine_, prof::CallKind::AllgatherV);
  const int tag = begin_collective();
  // Flat ring; counts/displs are rank-indexed which equals position-indexed
  // over the all-ranks list.
  allgatherv_over(all_ranks(), mine, all, counts, displs, tag);
}

template <typename T>
void Communicator::reduce_scatter_block(std::span<const T> in, std::span<T> out,
                                        ReduceOp op) {
  const ProfiledCall prof_scope(*engine_, prof::CallKind::ReduceScatter);
  const int tag = begin_collective();
  const int n = size();
  const std::size_t block = in.size() / static_cast<std::size_t>(n);
  CBMPI_REQUIRE(in.size() == block * static_cast<std::size_t>(n) &&
                    out.size() >= block,
                "reduce_scatter_block buffer size mismatch");
  if (detail::is_power_of_two(static_cast<std::size_t>(n)) && n > 1) {
    reduce_scatter_halving_over(all_ranks(), in, out, op, tag);
    return;
  }
  // Fallback: reduce to rank 0, then scatter (uses the tag block's tail).
  std::vector<T> full(rank() == 0 ? in.size() : 0);
  reduce_over(all_ranks(), in, std::span<T>(full), op, 0, tag);
  const int stag = tag + 1;
  if (rank() == 0) {
    for (int r = 1; r < n; ++r)
      raw_send(std::span<const T>(full.data() + block * static_cast<std::size_t>(r),
                                  block),
               r, stag);
    std::copy(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(block),
              out.begin());
  } else {
    raw_recv(out.subspan(0, block), 0, stag);
  }
}

template <typename T>
void Communicator::scan(std::span<const T> in, std::span<T> out, ReduceOp op) {
  const ProfiledCall prof_scope(*engine_, prof::CallKind::Scan);
  const int tag = begin_collective();
  const int n = size();
  CBMPI_REQUIRE(out.size() >= in.size(), "scan output buffer too small");
  std::copy(in.begin(), in.end(), out.begin());
  std::vector<T> partial(in.begin(), in.end());
  std::vector<T> incoming(in.size());
  for (int mask = 1; mask < n; mask <<= 1) {
    const int dst = rank() + mask;
    const int src = rank() - mask;
    const std::vector<T> snapshot = partial;  // value sent this round
    Request send_req;
    if (dst < n) send_req = raw_isend(std::span<const T>(snapshot), dst, tag);
    if (src >= 0) {
      raw_recv(std::span<T>(incoming), src, tag);
      apply_reduce<T>(op, incoming, std::span<T>(partial));
      apply_reduce<T>(op, incoming, out.subspan(0, in.size()));
    }
    if (send_req) engine_->wait(send_req);
  }
}

template <typename T>
void Communicator::exscan(std::span<const T> in, std::span<T> out, ReduceOp op) {
  const ProfiledCall prof_scope(*engine_, prof::CallKind::Exscan);
  const int tag = begin_collective();
  const int n = size();
  CBMPI_REQUIRE(out.size() >= in.size(), "exscan output buffer too small");
  std::fill(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(in.size()), T{});
  std::vector<T> partial(in.begin(), in.end());
  std::vector<T> incoming(in.size());
  bool have_result = false;
  for (int mask = 1; mask < n; mask <<= 1) {
    const int dst = rank() + mask;
    const int src = rank() - mask;
    const std::vector<T> snapshot = partial;
    Request send_req;
    if (dst < n) send_req = raw_isend(std::span<const T>(snapshot), dst, tag);
    if (src >= 0) {
      raw_recv(std::span<T>(incoming), src, tag);
      apply_reduce<T>(op, incoming, std::span<T>(partial));
      if (have_result) {
        apply_reduce<T>(op, incoming, out.subspan(0, in.size()));
      } else {
        std::copy(incoming.begin(), incoming.end(), out.begin());
        have_result = true;
      }
    }
    if (send_req) engine_->wait(send_req);
  }
}

template <typename T>
T Communicator::scan_value(T value, ReduceOp op) {
  T out{};
  scan(std::span<const T>(&value, 1), std::span<T>(&out, 1), op);
  return out;
}

template <typename T>
T Communicator::exscan_value(T value, ReduceOp op) {
  T out{};
  exscan(std::span<const T>(&value, 1), std::span<T>(&out, 1), op);
  return out;
}

}  // namespace cbmpi::mpi
