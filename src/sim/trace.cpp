#include "sim/trace.hpp"

namespace cbmpi::sim {

const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::SendEager: return "send-eager";
    case TraceKind::SendRndvRts: return "send-rndv-rts";
    case TraceKind::SendRndvData: return "send-rndv-data";
    case TraceKind::RecvRndvCts: return "recv-rndv-cts";
    case TraceKind::RecvComplete: return "recv-complete";
    case TraceKind::Put: return "put";
    case TraceKind::Get: return "get";
    case TraceKind::Compute: return "compute";
    case TraceKind::ChannelSelect: return "channel-select";
    case TraceKind::FaultInject: return "fault-inject";
    case TraceKind::Retry: return "retry";
    case TraceKind::Degrade: return "degrade";
    case TraceKind::CollAlgo: return "coll-algo";
    case TraceKind::NetCongest: return "net-congest";
  }
  return "?";
}

void TraceRecorder::record(TraceEvent event) {
  const std::scoped_lock lock(mutex_);
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> TraceRecorder::events() const {
  const std::scoped_lock lock(mutex_);
  return events_;
}

std::size_t TraceRecorder::count(TraceKind kind) const {
  const std::scoped_lock lock(mutex_);
  std::size_t n = 0;
  for (const auto& e : events_)
    if (e.kind == kind) ++n;
  return n;
}

void TraceRecorder::clear() {
  const std::scoped_lock lock(mutex_);
  events_.clear();
}

}  // namespace cbmpi::sim
