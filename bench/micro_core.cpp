// google-benchmark microbenchmarks of core primitives, including the
// DESIGN.md ablation: the paper's lock-free byte-list locality detector vs a
// lock-based alternative.
#include <benchmark/benchmark.h>

#include <mutex>

#include "apps/graph500/kronecker.hpp"
#include "container/engine.hpp"
#include "fabric/shm_channel.hpp"
#include "mpi/locality.hpp"
#include "mpi/matcher.hpp"
#include "osl/machine.hpp"

namespace {

using namespace cbmpi;

void BM_MatcherDeliverAndMatch(benchmark::State& state) {
  mpi::Matcher matcher;
  fabric::Envelope env;
  env.src = 1;
  env.dst = 0;
  env.tag = 3;
  env.comm_id = 0;
  for (auto _ : state) {
    matcher.deliver(env);
    auto matched = matcher.try_match(1, 3, 0);
    benchmark::DoNotOptimize(matched);
  }
}
BENCHMARK(BM_MatcherDeliverAndMatch);

void BM_MatcherWildcardScan(benchmark::State& state) {
  const auto depth = static_cast<int>(state.range(0));
  mpi::Matcher matcher;
  for (int i = 0; i < depth; ++i) {
    fabric::Envelope env;
    env.src = i % 7;
    env.dst = 0;
    env.tag = 99;  // never matched below
    env.comm_id = 0;
    matcher.deliver(env);
  }
  for (auto _ : state) {
    auto matched = matcher.try_match(mpi::kAnySource, 3, 0);
    benchmark::DoNotOptimize(matched);
  }
}
BENCHMARK(BM_MatcherWildcardScan)->Arg(4)->Arg(64)->Arg(512);

void BM_ShmByteStoreLoad(benchmark::State& state) {
  osl::ShmSegment segment(4096);
  Bytes i = 0;
  for (auto _ : state) {
    segment.store_byte(i % 4096, 1);
    benchmark::DoNotOptimize(segment.load_byte(i % 4096));
    ++i;
  }
}
BENCHMARK(BM_ShmByteStoreLoad);

void BM_ShmBulkStage(benchmark::State& state) {
  const auto size = static_cast<Bytes>(state.range(0));
  osl::Machine machine(topo::ClusterBuilder().hosts(1).build());
  auto& host = machine.host_os(0);
  osl::SimProcess a(host, host.root_namespaces(), topo::CoreId{0, 0});
  osl::SimProcess b(host, host.root_namespaces(), topo::CoreId{0, 1});
  const fabric::ShmChannel shm(machine.profile(), fabric::TuningParams{});
  std::vector<std::byte> data(size);
  for (auto _ : state) {
    std::vector<std::byte> out;
    shm.stage(a, b, 7, data, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_ShmBulkStage)->Arg(1024)->Arg(8192)->Arg(65536);

// --- detector ablation: byte-list (paper) vs lock-based ---------------------

void BM_DetectorByteList(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  osl::Machine machine(topo::ClusterBuilder().hosts(1).build());
  container::Engine engine(machine);
  container::ContainerSpec spec;
  spec.name = "c";
  auto& cont = engine.run(0, spec);
  auto proc = engine.spawn(cont, 0);
  std::uint64_t tag = 0;
  for (auto _ : state) {
    mpi::ContainerLocalityDetector detector("bm" + std::to_string(tag++), nranks);
    for (int r = 0; r < nranks; ++r) detector.announce(*proc, r);
    auto row = detector.co_resident_row(*proc);
    benchmark::DoNotOptimize(row);
  }
}
BENCHMARK(BM_DetectorByteList)->Arg(16)->Arg(256)->Arg(4096);

/// Lock-based alternative the paper's byte-granularity design avoids: a
/// mutex-guarded membership set.
void BM_DetectorLockBased(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::mutex mutex;
    std::vector<std::uint8_t> list(static_cast<std::size_t>(nranks), 0);
    for (int r = 0; r < nranks; ++r) {
      const std::scoped_lock lock(mutex);
      list[static_cast<std::size_t>(r)] = 1;
    }
    std::vector<std::uint8_t> row;
    {
      const std::scoped_lock lock(mutex);
      row = list;
    }
    benchmark::DoNotOptimize(row);
  }
}
BENCHMARK(BM_DetectorLockBased)->Arg(16)->Arg(256)->Arg(4096);

void BM_KroneckerEdge(benchmark::State& state) {
  const apps::graph500::EdgeListParams params{20, 16, 1};
  std::uint64_t i = 0;
  for (auto _ : state) {
    auto edge = apps::graph500::kronecker_edge(params, i++);
    benchmark::DoNotOptimize(edge);
  }
}
BENCHMARK(BM_KroneckerEdge);

void BM_ShmEagerCostEval(benchmark::State& state) {
  const topo::MachineProfile profile;
  const fabric::ShmChannel shm(profile, fabric::TuningParams{});
  Bytes size = 1;
  for (auto _ : state) {
    auto costs = shm.eager_costs(size, true);
    benchmark::DoNotOptimize(costs);
    size = size % 8192 + 64;
  }
}
BENCHMARK(BM_ShmEagerCostEval);

}  // namespace

BENCHMARK_MAIN();
