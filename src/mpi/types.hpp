// Basic MPI-level types: wildcards, status, reduction operators, requests.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "common/units.hpp"
#include "fabric/message.hpp"

namespace cbmpi::mpi {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

struct Status {
  int source = kAnySource;  ///< communicator-relative source rank
  int tag = kAnyTag;
  Bytes bytes = 0;          ///< received payload size

  template <typename T>
  std::size_t count() const {
    return bytes / sizeof(T);
  }
};

enum class ReduceOp : std::uint8_t { Sum, Prod, Min, Max, LogicalAnd, LogicalOr, BitOr, BitAnd };

/// Applies `op` elementwise: inout[i] = inout[i] (op) in[i].
template <typename T>
void apply_reduce(ReduceOp op, std::span<const T> in, std::span<T> inout) {
  const std::size_t n = std::min(in.size(), inout.size());
  switch (op) {
    case ReduceOp::Sum:
      for (std::size_t i = 0; i < n; ++i) inout[i] = static_cast<T>(inout[i] + in[i]);
      break;
    case ReduceOp::Prod:
      for (std::size_t i = 0; i < n; ++i) inout[i] = static_cast<T>(inout[i] * in[i]);
      break;
    case ReduceOp::Min:
      for (std::size_t i = 0; i < n; ++i) inout[i] = in[i] < inout[i] ? in[i] : inout[i];
      break;
    case ReduceOp::Max:
      for (std::size_t i = 0; i < n; ++i) inout[i] = in[i] > inout[i] ? in[i] : inout[i];
      break;
    case ReduceOp::LogicalAnd:
      for (std::size_t i = 0; i < n; ++i)
        inout[i] = static_cast<T>((inout[i] != T{}) && (in[i] != T{}));
      break;
    case ReduceOp::LogicalOr:
      for (std::size_t i = 0; i < n; ++i)
        inout[i] = static_cast<T>((inout[i] != T{}) || (in[i] != T{}));
      break;
    case ReduceOp::BitOr:
      if constexpr (std::is_integral_v<T>) {
        for (std::size_t i = 0; i < n; ++i) inout[i] = static_cast<T>(inout[i] | in[i]);
      }
      break;
    case ReduceOp::BitAnd:
      if constexpr (std::is_integral_v<T>) {
        for (std::size_t i = 0; i < n; ++i) inout[i] = static_cast<T>(inout[i] & in[i]);
      }
      break;
  }
}

/// Request shared state. A request is produced by isend/irecv and consumed by
/// test/wait on the owning rank's thread; only the rendezvous sub-state is
/// shared with the peer (and is internally synchronized).
struct RequestState {
  enum class Kind : std::uint8_t { SendEager, SendRndv, Recv };

  Kind kind = Kind::SendEager;
  bool complete = false;
  Micros complete_at = 0.0;
  Status status{};  ///< world-relative source; translated by Communicator

  // --- recv bookkeeping -------------------------------------------------
  std::span<std::byte> buffer{};
  int src_world = kAnySource;  ///< world rank or kAnySource
  int tag = kAnyTag;
  std::uint64_t comm_id = 0;
  Micros posted_at = 0.0;

  // --- rendezvous send bookkeeping ---------------------------------------
  std::shared_ptr<fabric::RndvState> rndv;
};

using Request = std::shared_ptr<RequestState>;

}  // namespace cbmpi::mpi
