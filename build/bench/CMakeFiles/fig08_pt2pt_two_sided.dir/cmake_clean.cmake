file(REMOVE_RECURSE
  "CMakeFiles/fig08_pt2pt_two_sided.dir/fig08_pt2pt_two_sided.cpp.o"
  "CMakeFiles/fig08_pt2pt_two_sided.dir/fig08_pt2pt_two_sided.cpp.o.d"
  "fig08_pt2pt_two_sided"
  "fig08_pt2pt_two_sided.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_pt2pt_two_sided.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
