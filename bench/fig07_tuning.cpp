// Figure 7: communication channel parameter tuning for container
// environments.
//   (a) SMP_EAGER_SIZE sweep            — paper optimum: 8 K
//   (b) SMPI_LENGTH_QUEUE sweep         — paper optimum: 128 K
//   (c) MV2_IBA_EAGER_THRESHOLD sweep   — paper optimum: 17 K
//
// (a)/(b) run between two co-resident containers with the locality-aware
// runtime (bandwidth + message rate, as in the paper); (c) runs between two
// hosts (bandwidth around the threshold region).
//
// The sweeps are centred on — and the shape checks compare against — the
// *runtime's* shipped defaults (`fabric::TuningParams{}`), not private
// copies of the paper constants, so this figure cannot silently drift from
// what the library actually ships.
#include "bench_util.hpp"

#include "apps/osu/microbench.hpp"
#include "fabric/tuning.hpp"

using namespace cbmpi;
using namespace cbmpi::bench;

namespace {

double run_pair(const mpi::JobConfig& config, Bytes size, bool message_rate,
                int iters) {
  apps::osu::PairOptions pair;
  pair.iterations = iters;
  double value = 0.0;
  mpi::run_job(config, [&](mpi::Process& p) {
    const double v = message_rate ? apps::osu::pt2pt_message_rate(p, size, pair)
                                  : apps::osu::pt2pt_bandwidth(p, size, pair);
    if (p.rank() == 0) value = v;
  });
  return value;
}

mpi::JobConfig intra_host_config() {
  mpi::JobConfig config;
  config.deployment = container::DeploymentSpec::containers(1, 2, 2);
  config.policy = fabric::LocalityPolicy::ContainerAware;
  return config;
}

mpi::JobConfig inter_host_config() {
  mpi::JobConfig config;
  config.deployment = container::DeploymentSpec::containers(2, 1, 1);
  config.policy = fabric::LocalityPolicy::ContainerAware;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const int iters = static_cast<int>(opts.get_int("iters", 8, "iterations per point"));
  if (opts.finish("Figure 7: SMP_EAGER_SIZE / SMPI_LENGTH_QUEUE / "
                  "MV2_IBA_EAGER_THRESHOLD sweeps"))
    return 0;

  // The shipped channel defaults: the values the paper's Fig. 7 tuned, as
  // the runtime actually carries them.
  const fabric::TuningParams defaults;

  // ---- (a) SMP_EAGER_SIZE --------------------------------------------------
  print_banner("Figure 7(a)", "SMP_EAGER_SIZE sweep",
               "optimal eager/rendezvous switch point at the shipped default (" +
                   format_size(defaults.smp_eager_size) + ")");
  {
    const Bytes d = defaults.smp_eager_size;
    const std::vector<Bytes> settings{d / 4, d / 2, d, 2 * d, 4 * d};
    const std::vector<Bytes> probe_sizes{2_KiB, 4_KiB, 8_KiB, 16_KiB, 32_KiB};
    Table table({"eager size", "bw@4K", "bw@8K", "bw@16K", "mr@4K (Kmsg/s)",
                 "score (avg MB/s)"});
    Bytes best_setting = 0;
    double best_score = 0.0;
    for (const Bytes eager : settings) {
      auto config = intra_host_config();
      config.tuning.smp_eager_size = eager;
      double score = 0.0;
      std::map<Bytes, double> bw;
      for (const Bytes size : probe_sizes) {
        bw[size] = run_pair(config, size, false, iters);
        score += bw[size];
      }
      score /= static_cast<double>(probe_sizes.size());
      const double mr = run_pair(config, 4_KiB, true, iters) / 1000.0;
      if (score > best_score) {
        best_score = score;
        best_setting = eager;
      }
      table.add_row({format_size(eager), Table::num(bw[4_KiB], 1),
                     Table::num(bw[8_KiB], 1), Table::num(bw[16_KiB], 1),
                     Table::num(mr, 1), Table::num(score, 1)});
    }
    table.print(std::cout);
    std::printf("best SMP_EAGER_SIZE: %s\n", format_size(best_setting).c_str());
    print_shape_check(best_setting == defaults.smp_eager_size,
                      "optimum at the shipped default (" +
                          format_size(defaults.smp_eager_size) +
                          ", paper: 8K)");
  }

  // ---- (b) SMPI_LENGTH_QUEUE -------------------------------------------------
  std::printf("\n");
  print_banner("Figure 7(b)", "SMPI_LENGTH_QUEUE sweep",
               "optimal per-pair shared queue size at the shipped default (" +
                   format_size(defaults.smpi_length_queue) + ")");
  {
    const Bytes d = defaults.smpi_length_queue;
    const std::vector<Bytes> settings{d / 8, d / 4, d / 2, d,
                                      2 * d, 4 * d, 8 * d};
    const std::vector<Bytes> probe_sizes{64, 1_KiB, 4_KiB};
    Table table({"length queue", "bw@1K", "bw@4K", "mr@64B (Kmsg/s)",
                 "score (avg MB/s)"});
    Bytes best_setting = 0;
    double best_score = 0.0;
    for (const Bytes queue : settings) {
      auto config = intra_host_config();
      config.tuning.smpi_length_queue = queue;
      double score = 0.0;
      std::map<Bytes, double> bw;
      for (const Bytes size : probe_sizes) {
        bw[size] = run_pair(config, size, false, iters);
        score += bw[size] / static_cast<double>(size);  // normalize sizes
      }
      const double mr = run_pair(config, 64, true, iters) / 1000.0;
      score = score / static_cast<double>(probe_sizes.size()) * 1000.0;
      if (score > best_score) {
        best_score = score;
        best_setting = queue;
      }
      table.add_row({format_size(queue), Table::num(bw[1_KiB], 1),
                     Table::num(bw[4_KiB], 1), Table::num(mr, 1),
                     Table::num(score, 1)});
    }
    table.print(std::cout);
    std::printf("best SMPI_LENGTH_QUEUE: %s\n", format_size(best_setting).c_str());
    print_shape_check(best_setting == defaults.smpi_length_queue,
                      "optimum at the shipped default (" +
                          format_size(defaults.smpi_length_queue) +
                          ", paper: 128K)");
  }

  // ---- (c) MV2_IBA_EAGER_THRESHOLD ---------------------------------------------
  std::printf("\n");
  print_banner("Figure 7(c)", "MV2_IBA_EAGER_THRESHOLD sweep",
               "optimal HCA eager/rendezvous switch point at the shipped "
               "default (" + format_size(defaults.iba_eager_threshold) + ")");
  {
    const Bytes d = defaults.iba_eager_threshold;
    std::vector<Bytes> settings;
    for (Bytes t = d - 4_KiB; t <= d + 2_KiB; t += 1_KiB) settings.push_back(t);
    const std::vector<Bytes> probe_sizes(settings);
    Table table({"threshold", "bw@" + format_size(d - 3_KiB),
                 "bw@" + format_size(d - 1_KiB), "bw@" + format_size(d + 1_KiB),
                 "score (avg MB/s)"});
    Bytes best_setting = 0;
    double best_score = 0.0;
    for (const Bytes threshold : settings) {
      auto config = inter_host_config();
      config.tuning.iba_eager_threshold = threshold;
      double score = 0.0;
      std::map<Bytes, double> bw;
      for (const Bytes size : probe_sizes) {
        bw[size] = run_pair(config, size, false, iters);
        score += bw[size];
      }
      score /= static_cast<double>(probe_sizes.size());
      if (score > best_score) {
        best_score = score;
        best_setting = threshold;
      }
      table.add_row({format_size(threshold), Table::num(bw[d - 3_KiB], 1),
                     Table::num(bw[d - 1_KiB], 1), Table::num(bw[d + 1_KiB], 1),
                     Table::num(score, 1)});
    }
    table.print(std::cout);
    std::printf("best MV2_IBA_EAGER_THRESHOLD: %s\n",
                format_size(best_setting).c_str());
    print_shape_check(best_setting >= d - 1_KiB && best_setting <= d + 1_KiB,
                      "optimum within 1K of the shipped default (" +
                          format_size(d) + ", paper: 17K)");
  }
  return 0;
}
