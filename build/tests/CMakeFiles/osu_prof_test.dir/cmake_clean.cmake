file(REMOVE_RECURSE
  "CMakeFiles/osu_prof_test.dir/osu_prof_test.cpp.o"
  "CMakeFiles/osu_prof_test.dir/osu_prof_test.cpp.o.d"
  "osu_prof_test"
  "osu_prof_test.pdb"
  "osu_prof_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osu_prof_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
