// Virtual-time cluster scheduler: FIFO with EASY-style backfill over a
// shared simulated cluster, executing each placed job through the normal
// cbmpi runtime (mpi::run_job) and folding per-job results into cluster
// metrics (makespan, utilization, queue wait, placement locality).
//
// Deterministic by construction: time is virtual, events are ordered by
// (time, kind, job id), placers are pure functions of (job, state, seed),
// and each job's runtime seed is derived from (scheduler seed, job id) — so
// the same submitted workload reproduces the same schedule, placements and
// job times, run after run.
#pragma once

#include <functional>
#include <vector>

#include "obs/metrics.hpp"
#include "sched/cluster_state.hpp"
#include "sched/job.hpp"
#include "sched/placer.hpp"
#include "topo/calibration.hpp"

namespace cbmpi::sched {

/// Everything a Scheduler needs to know before the first submit. Plain data;
/// copy freely. One config describes one simulated cluster.
struct SchedulerConfig {
  int cluster_hosts = 4;         ///< identical hosts in the cluster
  topo::HostShape host_shape{};  ///< defaults to the paper's 2x12 testbed
  PlacementPolicy policy = PlacementPolicy::LocalityAware;
  bool backfill = true;          ///< EASY backfill; false = pure FIFO
  std::uint64_t seed = 42;       ///< root of every placement / job seed
  fabric::TuningParams tuning{};             ///< forwarded to every job
  topo::MachineProfile profile = topo::MachineProfile::chameleon_fdr();
};

/// The cluster control plane: submit jobs, then run() once to drain the
/// queue in virtual time. Not thread-safe; drive it from one thread.
class Scheduler {
 public:
  explicit Scheduler(SchedulerConfig config);

  /// Queues a job; returns its id. Jobs with equal submit times keep FIFO
  /// order by priority (higher first), then submission order. Throws if the
  /// job can never fit the cluster.
  int submit(JobSpec spec);

  /// Drains the queue: advances virtual time, places and executes every job,
  /// releases capacity at completions. Returns the per-job outcomes, in
  /// completion order. Call once after all submits.
  const std::vector<ScheduledJob>& run();

  /// Completed jobs, in completion order (empty before run()).
  const std::vector<ScheduledJob>& jobs() const { return done_; }
  /// Cluster-wide aggregates (makespan, utilization, waits, channel ops);
  /// meaningful after run().
  const ClusterMetrics& metrics() const { return metrics_; }
  /// The configuration this scheduler was built with (never changes).
  const SchedulerConfig& config() const { return config_; }

  /// Publishes the run's ClusterMetrics plus per-job wait/runtime figures
  /// into an obs::MetricsRegistry (names under "sched."). Call after run().
  void export_metrics(obs::MetricsRegistry& registry) const;

  /// Test seam: replaces mpi::run_job execution (e.g. with a canned-duration
  /// stub). The default runner instantiates the job's named body from the
  /// registry and runs it under the placed JobConfig.
  using Runner = std::function<mpi::JobResult(const mpi::JobConfig&, const JobSpec&)>;
  void set_runner(Runner runner) { runner_ = std::move(runner); }

 private:
  struct Running {
    int job_id = 0;
    Micros end_time = 0.0;
    int cores = 0;
  };

  bool try_start(const JobSpec& job, Micros now, bool backfilled);
  /// Earliest virtual time the blocked queue head could get its cores, plus
  /// how many cores beyond its need will then be free (the backfill window).
  void reservation_for(int cores_needed, Micros now, Micros* shadow_time,
                       int* spare_cores) const;

  SchedulerConfig config_;
  topo::Cluster cluster_;
  ClusterState state_;
  std::unique_ptr<Placer> placer_;
  Runner runner_;

  std::vector<JobSpec> pending_;   ///< submitted, not yet started
  std::vector<Running> running_;
  std::vector<ScheduledJob> done_;
  ClusterMetrics metrics_{};
  int next_id_ = 0;
  bool ran_ = false;
};

}  // namespace cbmpi::sched
