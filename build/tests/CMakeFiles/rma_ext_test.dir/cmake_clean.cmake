file(REMOVE_RECURSE
  "CMakeFiles/rma_ext_test.dir/rma_ext_test.cpp.o"
  "CMakeFiles/rma_ext_test.dir/rma_ext_test.cpp.o.d"
  "rma_ext_test"
  "rma_ext_test.pdb"
  "rma_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rma_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
