// Out-of-band virtual-time barrier.
//
// Used for job init/finalize and for bench phase alignment — NOT for
// MPI_Barrier (which is a real dissemination algorithm over the channels and
// pays their costs). All participants block (wall-clock) until everyone
// arrived, and each receives the maximum virtual time, to which it then
// aligns its clock.
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/units.hpp"

namespace cbmpi::mpi {

class TimeBarrier {
 public:
  explicit TimeBarrier(int participants);

  /// Blocks until all participants arrived; returns the max of their times.
  /// Throws AbortedError if abort_all() was (or is) called while waiting —
  /// a crashed participant can never arrive, so waiters must not hang.
  Micros arrive_and_wait(Micros my_time);

  /// Marks the barrier dead and wakes every waiter; they, and all later
  /// arrivals, throw AbortedError. Called by the runtime's failure path.
  void abort_all();

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int participants_;
  int waiting_ = 0;
  std::uint64_t generation_ = 0;
  Micros current_max_ = 0.0;
  Micros published_max_ = 0.0;
  bool aborted_ = false;
};

}  // namespace cbmpi::mpi
