file(REMOVE_RECURSE
  "CMakeFiles/graph500_test.dir/graph500_test.cpp.o"
  "CMakeFiles/graph500_test.dir/graph500_test.cpp.o.d"
  "graph500_test"
  "graph500_test.pdb"
  "graph500_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph500_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
