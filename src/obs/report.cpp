#include "obs/report.hpp"

#include <array>
#include <sstream>

#include "common/table.hpp"
#include "sim/trace_export.hpp"

namespace cbmpi::obs {

namespace {

void write_profile(JsonWriter& w, const prof::JobProfile& profile) {
  w.key("profile").begin_object();
  w.field("ranks", profile.ranks);
  w.field("comm_fraction", profile.comm_fraction());
  w.field("comm_time_us", profile.total.comm_time());
  w.field("compute_time_us", profile.total.compute_time());
  w.field("recovery_time_us", profile.total.recovery_time());

  w.key("calls").begin_array();
  for (std::size_t i = 0; i < prof::kCallKinds; ++i) {
    const auto kind = static_cast<prof::CallKind>(i);
    const auto& stats = profile.total.call(kind);
    if (stats.count == 0) continue;
    w.begin_object();
    w.field("name", prof::to_string(kind));
    w.field("count", stats.count);
    w.field("time_us", stats.time);
    w.end_object();
  }
  w.end_array();

  w.key("channels").begin_array();
  for (auto kind : {fabric::ChannelKind::Shm, fabric::ChannelKind::Cma,
                    fabric::ChannelKind::Hca}) {
    w.begin_object();
    w.field("name", fabric::to_string(kind));
    w.field("ops", profile.total.channel_ops(kind));
    w.field("bytes", profile.total.channel_bytes(kind));
    w.end_object();
  }
  w.end_array();

  w.key("coll_algos").begin_array();
  for (std::size_t c = 0; c < coll::kColls; ++c) {
    for (std::size_t a = 0; a < coll::kAlgos; ++a) {
      const auto n = profile.total.coll_algo(static_cast<coll::Coll>(c),
                                             static_cast<coll::Algo>(a));
      if (n == 0) continue;
      w.begin_object();
      w.field("collective", coll::to_string(static_cast<coll::Coll>(c)));
      w.field("algorithm", coll::to_string(static_cast<coll::Algo>(a)));
      w.field("calls", n);
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();
}

void write_metrics(JsonWriter& w, const MetricsSnapshot& snapshot) {
  w.key("metrics").begin_object();
  w.key("counters").begin_array();
  for (const auto& [name, value] : snapshot.counters) {
    w.begin_object();
    w.field("name", name);
    w.field("value", value);
    w.end_object();
  }
  w.end_array();
  w.key("gauges").begin_array();
  for (const auto& [name, value] : snapshot.gauges) {
    w.begin_object();
    w.field("name", name);
    w.field("value", value);
    w.end_object();
  }
  w.end_array();
  w.key("histograms").begin_array();
  for (const auto& [name, hist] : snapshot.histograms) {
    w.begin_object();
    w.field("name", name);
    w.field("count", hist.count);
    w.field("sum", hist.sum);
    w.field("p50", hist.percentile(0.50));
    w.field("p95", hist.percentile(0.95));
    w.field("p99", hist.percentile(0.99));
    w.key("buckets").begin_array();
    for (const auto& bucket : hist.buckets) {
      w.begin_object();
      w.field("le", bucket.upper);
      w.field("count", bucket.count);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void write_span_summary(JsonWriter& w, std::span<const Span> spans) {
  std::array<std::uint64_t, kSpanCats> counts{};
  std::array<Micros, kSpanCats> times{};
  for (const auto& span : spans) {
    const auto i = static_cast<std::size_t>(span.cat);
    ++counts[i];
    times[i] += span.duration();
  }
  w.key("spans").begin_object();
  w.field("count", static_cast<std::uint64_t>(spans.size()));
  w.key("by_category").begin_array();
  for (std::size_t i = 0; i < kSpanCats; ++i) {
    if (counts[i] == 0) continue;
    w.begin_object();
    w.field("category", to_string(static_cast<SpanCat>(i)));
    w.field("count", counts[i]);
    w.field("time_us", times[i]);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void write_faults(JsonWriter& w, const faults::FaultReport& report) {
  w.key("faults").begin_object();
  w.field("injected", static_cast<std::uint64_t>(report.injected.size()));
  w.field("degradations", static_cast<std::uint64_t>(report.degradations.size()));
  w.key("retries").begin_object();
  w.field("shm", report.shm_retries);
  w.field("cma", report.cma_retries);
  w.field("hca", report.hca_retries);
  w.end_object();
  w.field("time_lost_us", report.time_lost);
  w.end_object();
}

void write_recovery(JsonWriter& w, const mpi::JobResult& result) {
  w.key("recovery").begin_object();
  w.field("checkpoints", static_cast<std::uint64_t>(result.checkpoints.size()));
  w.field("restored", result.restored);
  w.field("restore_round", result.restore_round);
  w.field("restore_progress_us", result.restore_progress_us);
  w.key("events").begin_array();
  for (const auto& event : result.checkpoints) {
    w.begin_object();
    w.field("round", event.round);
    w.field("at_us", event.at);
    w.field("bytes", event.bytes);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void write_net(JsonWriter& w, const net::NetReport& report) {
  w.key("net").begin_object();
  w.field("model", net::to_string(report.model));
  w.field("arity", report.arity);
  w.field("hosts", report.hosts);
  w.field("switches", report.switches);
  w.field("links", report.links);
  w.field("transfers", report.transfers);
  w.field("congested_transfers", report.congested_transfers);
  w.field("max_factor", report.max_factor);
  w.field("max_peak_util", report.max_peak_util);
  w.field("mean_util", report.mean_util);
  w.key("hop_histogram").begin_array();
  for (const auto count : report.hop_histogram) w.value(count);
  w.end_array();
  w.key("link_utils").begin_array();
  for (const auto& link : report.link_utils) {
    w.begin_object();
    w.field("link", link.link);
    w.field("peak", link.peak);
    w.field("mean", link.mean);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void write_reg_cache(JsonWriter& w, const fabric::RegCacheStats& stats) {
  w.key("reg_cache").begin_object();
  w.field("capacity_bytes", stats.capacity_bytes);
  w.field("hits", stats.hits);
  w.field("misses", stats.misses);
  w.field("evictions", stats.evictions);
  w.field("pinned_bytes", stats.pinned_bytes);
  w.field("peak_pinned_bytes", stats.peak_pinned_bytes);
  w.field("registered_bytes", stats.registered_bytes);
  w.end_object();
}

void write_migration_record(JsonWriter& w, const migrate::MigrationRecord& rec) {
  w.begin_object();
  w.key("move").begin_object();
  w.field("src_host", rec.move.src_host);
  w.field("container", rec.move.container_index);
  w.field("dst_phys_host", rec.move.dst_phys_host);
  w.key("ranks").begin_array();
  for (const int r : rec.move.ranks) w.value(std::int64_t{r});
  w.end_array();
  w.end_object();
  w.field("quiesce_round", rec.quiesce_round);
  w.field("quiesce_at_us", rec.quiesce_at);
  w.field("resume_at_us", rec.resume_at);
  w.field("snapshot_bytes", rec.snapshot_bytes);
  w.field("drained_msgs", rec.drained_msgs);
  w.field("pause_us", rec.pause_us);
  w.field("pairs_to_local", rec.pairs_to_local);
  w.field("pairs_to_remote", rec.pairs_to_remote);
  w.field("invalidated_reg_entries", rec.invalidated_reg_entries);
  w.field("invalidated_reg_bytes", rec.invalidated_reg_bytes);
  w.key("estimate").begin_object();
  w.field("image_bytes", rec.cost.image_bytes);
  w.field("precopy_rounds", rec.cost.precopy_rounds);
  w.field("stop_copy_bytes", rec.cost.stop_copy_bytes);
  w.field("precopy_us", rec.cost.precopy_us);
  w.field("pause_us", rec.cost.pause_us);
  w.field("rereg_us", rec.cost.rereg_us);
  w.field("total_us", rec.cost.total_us);
  w.field("predicted_win_us", rec.cost.predicted_win_us);
  w.field("worthwhile", rec.cost.worthwhile);
  w.end_object();
  w.end_object();
}

/// The v6 "migration" section body, shared by both report flavors. Callers
/// gate emission (single: a migration engine drove the job; schedule: a
/// migration policy was on), so off-policy reports stay byte-identical to
/// v5 documents apart from the version field.
void write_migration(JsonWriter& w, const migrate::MigrationReport& report) {
  w.key("migration").begin_object();
  w.field("policy", migrate::to_string(report.policy));
  w.field("proposed", report.proposed);
  w.field("rejected", report.rejected);
  w.field("executed", report.executed);
  w.field("total_pause_us", report.total_pause_us);
  w.field("predicted_win_us", report.predicted_win_us);
  w.field("predicted_cost_us", report.predicted_cost_us);
  w.key("records").begin_array();
  for (const auto& rec : report.records) write_migration_record(w, rec);
  w.end_array();
  w.end_object();
}

void write_header(JsonWriter& w, const ReportContext& ctx, const char* mode) {
  w.field("schema", "cbmpi.run_report");
  w.field("version", std::int64_t{kRunReportVersion});
  w.field("mode", mode);
  w.key("job").begin_object();
  w.field("app", ctx.app);
  w.field("deployment", ctx.deployment);
  w.field("policy", ctx.policy);
  w.field("seed", ctx.seed);
  w.end_object();
}

}  // namespace

void write_cluster_metrics(JsonWriter& w, const sched::ClusterMetrics& metrics) {
  w.begin_object();
  w.field("makespan_us", metrics.makespan);
  w.field("utilization", metrics.utilization);
  w.field("mean_queue_wait_us", metrics.mean_queue_wait);
  w.field("max_queue_wait_us", metrics.max_queue_wait);
  w.field("backfilled_jobs", metrics.backfilled_jobs);
  w.field("intra_host_pairs", metrics.intra_host_pairs);
  w.field("inter_host_pairs", metrics.inter_host_pairs);
  w.field("intra_host_pair_share", metrics.intra_host_pair_share());
  w.key("channel_ops").begin_object();
  w.field("shm", metrics.shm_ops);
  w.field("cma", metrics.cma_ops);
  w.field("hca", metrics.hca_ops);
  w.end_object();
  w.field("local_op_share", metrics.local_op_share());
  w.key("recovery").begin_object();
  w.field("crashes", metrics.crashes);
  w.field("requeues", metrics.requeues);
  w.field("restarts_from_checkpoint", metrics.restarts_from_checkpoint);
  w.field("checkpoints", metrics.checkpoints);
  w.field("jobs_failed", metrics.jobs_failed);
  w.field("blacklisted_hosts", metrics.blacklisted_hosts);
  w.field("lost_work_us", metrics.lost_work_us);
  w.field("completed_work_us", metrics.completed_work_us);
  w.end_object();
  w.end_object();
}

std::string run_report_json(const ReportContext& ctx, const mpi::JobResult& result) {
  JsonWriter w;
  w.begin_object();
  write_header(w, ctx, "single");

  w.key("result").begin_object();
  w.field("job_time_us", result.job_time);
  w.key("rank_times_us").begin_array();
  for (const Micros t : result.rank_times) w.value(t);
  w.end_array();
  w.field("hca_queue_pairs", static_cast<std::uint64_t>(result.hca_queue_pairs));
  w.end_object();

  write_profile(w, result.profile);
  write_metrics(w, result.metrics);
  {
    auto spans = result.spans;
    sort_spans(spans);
    write_span_summary(w, spans);
  }
  write_faults(w, result.fault_report);
  write_recovery(w, result);
  if (result.net.enabled) write_net(w, result.net);
  if (result.reg_cache.enabled) write_reg_cache(w, result.reg_cache);
  if (result.migration.enabled) write_migration(w, result.migration);
  if (ctx.analysis != nullptr) {
    w.key("analysis");
    analysis::write_analysis(w, *ctx.analysis);
  }
  if (ctx.cluster) {
    w.key("cluster");
    write_cluster_metrics(w, *ctx.cluster);
  }
  w.end_object();
  return w.str();
}

std::string schedule_report_json(const ReportContext& ctx,
                                 const sched::Scheduler& scheduler) {
  JsonWriter w;
  w.begin_object();
  write_header(w, ctx, "schedule");
  w.key("cluster");
  write_cluster_metrics(w, scheduler.metrics());
  if (scheduler.config().migrate_policy != migrate::MigrationPolicy::Off) {
    // Aggregate the per-job migration outcomes into one v6 section; the
    // per-move records ride along so the locality-win-vs-cost story of each
    // executed move is auditable from the schedule report alone.
    migrate::MigrationReport aggregate;
    aggregate.enabled = true;
    aggregate.policy = scheduler.config().migrate_policy;
    const auto& metrics = scheduler.metrics();
    aggregate.proposed = metrics.migrations_proposed;
    aggregate.rejected = metrics.migrations_rejected;
    aggregate.executed = metrics.migrations_executed;
    aggregate.total_pause_us = metrics.migration_pause_us;
    aggregate.predicted_win_us = metrics.migration_win_us;
    aggregate.predicted_cost_us = metrics.migration_cost_us;
    for (const auto& job : scheduler.jobs()) {
      for (const auto& rec : job.result.migration.records)
        aggregate.records.push_back(rec);
    }
    write_migration(w, aggregate);
  }
  w.key("jobs").begin_array();
  for (const auto& job : scheduler.jobs()) {
    w.begin_object();
    w.field("name", job.spec.name);
    w.field("body", job.spec.body);
    w.field("ranks", job.spec.ranks);
    w.field("hosts_used", job.placement.hosts_used);
    w.field("submit_us", job.spec.submit_time);
    w.field("start_us", job.start_time);
    w.field("end_us", job.end_time);
    w.field("queue_wait_us", job.queue_wait());
    w.field("backfilled", job.backfilled);
    w.field("intra_host_share", job.placement.intra_host_share());
    w.field("job_time_us", job.result.job_time);
    w.field("attempt", job.attempt);
    w.field("outcome", sched::to_string(job.outcome));
    if (job.outcome != sched::JobOutcome::Completed && job.crash.rank >= 0) {
      w.key("crash").begin_object();
      w.field("kind", faults::to_string(job.crash.kind));
      w.field("rank", job.crash.rank);
      w.field("host", job.crash.host);
      w.field("at_us", job.crash.at);
      w.field("last_checkpoint_us", job.crash.last_checkpoint);
      w.end_object();
    }
    if (job.restored_progress > 0.0)
      w.field("restored_progress_us", job.restored_progress);
    if (ctx.job_analyses != nullptr) {
      const auto it = ctx.job_analyses->find(job.spec.name);
      if (it != ctx.job_analyses->end()) {
        w.key("analysis");
        analysis::write_analysis(w, it->second);
      }
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string to_perfetto(std::span<const Span> spans,
                        std::span<const sim::TraceEvent> events,
                        const analysis::Analysis* analysis) {
  // Track layout: pid = rank for rank timelines, pid = kChannelPidBase +
  // channel ordinal for per-channel transfer tracks, pid = kPathPid for the
  // computed critical path.
  constexpr int kChannelPidBase = 1000;
  constexpr int kPathPid = 2000;

  std::vector<Span> sorted(spans.begin(), spans.end());
  sort_spans(sorted);

  // Name every track we are about to emit (process_name metadata events).
  std::array<bool, fabric::kChannelKinds> channel_seen{};
  int max_rank = -1;
  for (const auto& span : sorted) {
    if (span.cat == SpanCat::Proto && span.channel >= 0 &&
        span.channel < static_cast<int>(fabric::kChannelKinds))
      channel_seen[static_cast<std::size_t>(span.channel)] = true;
    max_rank = std::max(max_rank, span.rank);
  }
  for (const auto& event : events)
    if (event.src >= 0) max_rank = std::max(max_rank, event.src);

  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  auto meta = [&](int pid, const std::string& name) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"" << escape_json(name) << "\"}}";
  };
  for (int r = 0; r <= max_rank; ++r) meta(r, "rank " + std::to_string(r));
  for (std::size_t c = 0; c < fabric::kChannelKinds; ++c)
    if (channel_seen[c])
      meta(kChannelPidBase + static_cast<int>(c),
           std::string("channel ") +
               fabric::to_string(static_cast<fabric::ChannelKind>(c)));
  if (analysis != nullptr && !analysis->segments.empty())
    meta(kPathPid, "critical path");

  for (const auto& span : sorted) {
    const bool channel_track = span.cat == SpanCat::Proto && span.channel >= 0;
    const int pid = channel_track ? kChannelPidBase + span.channel : span.rank;
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << escape_json(span.name) << "\",\"cat\":\""
       << to_string(span.cat) << "\",\"ph\":\"X\",\"pid\":" << pid
       << ",\"tid\":" << span.rank << ",\"ts\":" << format_double(span.begin)
       << ",\"dur\":" << format_double(span.duration()) << ",\"args\":{\"bytes\":"
       << span.bytes << ",\"peer\":" << span.peer;
    if (!span.note.empty()) os << ",\"note\":\"" << escape_json(span.note) << "\"";
    os << "}}";
    // Flow arrow: sender's hand-off ("s" on the sender's rank track) binds
    // to this receive-side transfer slice ("f", enclosing-slice binding).
    const bool transfer = span.cat == SpanCat::Proto && span.xfer >= 0 &&
                          (span.name == "eager" || span.name == "rndv") &&
                          span.sent_at >= 0.0 && span.peer >= 0;
    if (transfer) {
      os << ",{\"name\":\"xfer\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":"
         << span.xfer << ",\"pid\":" << span.peer << ",\"tid\":" << span.peer
         << ",\"ts\":" << format_double(span.sent_at) << "}";
      os << ",{\"name\":\"xfer\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\","
         << "\"id\":" << span.xfer << ",\"pid\":" << pid << ",\"tid\":"
         << span.rank << ",\"ts\":" << format_double(span.begin) << "}";
    }
  }

  if (analysis != nullptr) {
    // The computed path, one slice per segment, ascending and adjacent —
    // drop zero-width segments so the track stays strictly renderable.
    for (const auto& seg : analysis->segments) {
      if (seg.duration() <= 0.0) continue;
      if (!first) os << ",";
      first = false;
      os << "{\"name\":\"" << escape_json(seg.name) << "\",\"cat\":\""
         << "critical-path\",\"ph\":\"X\",\"pid\":" << kPathPid
         << ",\"tid\":0,\"ts\":" << format_double(seg.begin) << ",\"dur\":"
         << format_double(seg.duration()) << ",\"args\":{\"rank\":" << seg.rank
         << ",\"category\":\"" << analysis::to_string(seg.blame) << "\"}}";
    }
  }

  sim::append_chrome_events(os, events, first);
  os << "],\"displayTimeUnit\":\"ns\"}";
  return os.str();
}

std::string metrics_summary(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "metrics registry (" << snapshot.counters.size() << " counters, "
     << snapshot.gauges.size() << " gauges, " << snapshot.histograms.size()
     << " histograms)\n";
  if (!snapshot.counters.empty()) {
    Table counters({"counter", "value"});
    for (const auto& [name, value] : snapshot.counters)
      counters.add_row({name, std::to_string(value)});
    counters.print(os);
  }
  if (!snapshot.gauges.empty()) {
    Table gauges({"gauge", "value"});
    for (const auto& [name, value] : snapshot.gauges)
      gauges.add_row({name, Table::num(value, 3)});
    gauges.print(os);
  }
  if (!snapshot.histograms.empty()) {
    Table hists({"histogram", "count", "sum", "p50<=", "p95<=", "p99<="});
    for (const auto& [name, hist] : snapshot.histograms)
      hists.add_row({name, std::to_string(hist.count), std::to_string(hist.sum),
                     std::to_string(hist.percentile(0.50)),
                     std::to_string(hist.percentile(0.95)),
                     std::to_string(hist.percentile(0.99))});
    hists.print(os);
  }
  return os.str();
}

}  // namespace cbmpi::obs
