// Extension experiment: job time vs HCA fault rate under both locality
// policies. The locality-aware runtime keeps intra-host traffic on SHM/CMA,
// so it exposes *fewer* transfers to the faulty fabric than the hostname
// default — degradation under faults is flatter, and the retry counts show
// why. A second section demonstrates graceful degradation of the init-time
// paths: private IPC namespaces, /dev/shm failures, and CMA EPERM.
#include "bench_util.hpp"

using namespace cbmpi;
using namespace cbmpi::bench;

namespace {

/// Mixed-size neighbour exchange: eager (2 KiB) + rendezvous (128 KiB)
/// per round, intra- and inter-host traffic.
void mixed_traffic(mpi::Process& p) {
  constexpr int kRounds = 8;
  std::vector<std::uint8_t> small(2_KiB);
  std::vector<std::uint8_t> large(128_KiB);
  const int next = (p.rank() + 1) % p.size();
  const int prev = (p.rank() + p.size() - 1) % p.size();
  for (int round = 0; round < kRounds; ++round) {
    auto s1 = p.world().isend(std::span<const std::uint8_t>(small), next, 1);
    auto s2 = p.world().isend(std::span<const std::uint8_t>(large), next, 2);
    p.world().recv(std::span<std::uint8_t>(small), prev, 1);
    p.world().recv(std::span<std::uint8_t>(large), prev, 2);
    p.world().wait(s1);
    p.world().wait(s2);
    p.world().barrier();
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const int hosts = static_cast<int>(opts.get_int("hosts", 2, "hosts"));
  const int procs = static_cast<int>(opts.get_int("procs", 8, "procs per host"));
  const std::uint64_t seed = declare_seed(opts);
  const std::string json_path = declare_json(opts);
  if (opts.finish("Extension: fault resilience vs locality policy")) return 0;

  print_banner("Extension", "job time vs HCA fault rate",
               "locality-aware channel selection shrinks the HCA fault "
               "surface; retries/backoff degrade job time gracefully instead "
               "of failing the job");

  const auto modes = make_modes(hosts, 2, procs);
  const std::vector<double> fault_rates = {0.0, 0.02, 0.05, 0.10};
  JsonRows rows("ext_fault_resilience",
                std::to_string(hosts) + " hosts x 2 containers x " +
                    std::to_string(procs) + " procs",
                seed);

  Table table({"HCA fault rate", "default (ms)", "aware (ms)", "def retries",
               "aware retries", "def lost (ms)", "aware lost (ms)"});
  std::vector<double> def_times, opt_times;
  std::vector<std::uint64_t> def_retries, opt_retries;
  for (const double rate : fault_rates) {
    mpi::JobConfig def = modes.def;
    mpi::JobConfig opt = modes.opt;
    def.seed = seed;
    opt.seed = seed;
    def.faults.hca_transient_prob = rate;
    opt.faults.hca_transient_prob = rate;

    const auto def_result = mpi::run_job(def, mixed_traffic);
    const auto opt_result = mpi::run_job(opt, mixed_traffic);
    def_times.push_back(def_result.job_time);
    opt_times.push_back(opt_result.job_time);
    def_retries.push_back(def_result.fault_report.hca_retries);
    opt_retries.push_back(opt_result.fault_report.hca_retries);

    rows.add("default,rate=" + Table::num(rate, 2), 0, def_result.job_time, 0.0);
    rows.add("aware,rate=" + Table::num(rate, 2), 0, opt_result.job_time, 0.0);
    table.add_row({Table::num(rate, 2), Table::num(to_millis(def_result.job_time), 3),
                   Table::num(to_millis(opt_result.job_time), 3),
                   std::to_string(def_result.fault_report.hca_retries),
                   std::to_string(opt_result.fault_report.hca_retries),
                   Table::num(to_millis(def_result.fault_report.time_lost), 3),
                   Table::num(to_millis(opt_result.fault_report.time_lost), 3)});
  }
  table.print(std::cout);
  std::printf(
      "slowdown at %.0f%% faults: default %.2fx, aware %.2fx\n\n",
      fault_rates.back() * 100.0, def_times.back() / def_times.front(),
      opt_times.back() / opt_times.front());

  bool monotone = true;
  for (std::size_t i = 1; i < fault_rates.size(); ++i) {
    if (def_times[i] < def_times[i - 1]) monotone = false;
    if (opt_times[i] < opt_times[i - 1]) monotone = false;
  }
  print_shape_check(monotone, "job time non-decreasing with fault rate");
  print_shape_check(opt_times.back() < def_times.back(),
                    "locality-aware stays faster under faults");
  print_shape_check(opt_retries.back() <= def_retries.back(),
                    "locality-aware suffers no more HCA retries than default "
                    "(smaller HCA fault surface)");
  print_shape_check(def_retries.back() > def_retries.front(),
                    "higher fault rate means more retries");

  // --- init-time degradation demo ------------------------------------------
  std::printf("\n--- graceful degradation of init-time paths ---\n");
  mpi::JobConfig clean = modes.opt;
  clean.seed = seed;
  mpi::JobConfig degraded = clean;
  degraded.faults.private_ipc_prob = 0.5;
  degraded.faults.shm_segment_fail_prob = 0.1;
  degraded.faults.cma_eperm_prob = 0.25;
  const auto clean_result = mpi::run_job(clean, mixed_traffic);
  const auto degraded_result = mpi::run_job(degraded, mixed_traffic);
  std::printf("clean job: %.3f ms — degraded job: %.3f ms (%.2fx)\n",
              to_millis(clean_result.job_time), to_millis(degraded_result.job_time),
              degraded_result.job_time / clean_result.job_time);
  std::printf("%s", degraded_result.fault_report.summary().c_str());
  print_shape_check(degraded_result.fault_report.any(),
                    "degraded run reports injected faults and fallbacks");
  print_shape_check(degraded_result.job_time >= clean_result.job_time,
                    "degradation costs time, never correctness");
  rows.write(json_path);
  return 0;
}
