// One-sided halo ring: demonstrates the RMA API (windows, put, accumulate,
// fence) on a ring of ranks, plus a put-throughput probe showing the paper's
// one-sided message-rate gap between the default and locality-aware runtimes.
//
//   $ ./onesided_ring
#include <cstdio>
#include <numeric>

#include "mpi/runtime.hpp"
#include "mpi/window.hpp"

int main() {
  using namespace cbmpi;

  mpi::JobConfig config;
  config.deployment = container::DeploymentSpec::containers(1, 2, 8);
  config.policy = fabric::LocalityPolicy::ContainerAware;

  mpi::run_job(config, [](mpi::Process& p) {
    auto& world = p.world();
    const int n = world.size();
    const int right = (p.rank() + 1) % n;

    // Each rank exposes a window of n slots; everyone deposits its rank into
    // its right neighbour's slot [rank] and accumulates into slot [n-1].
    std::vector<std::int64_t> memory(static_cast<std::size_t>(n) + 1, 0);
    mpi::Window<std::int64_t> window(world, std::span<std::int64_t>(memory));

    window.fence();
    const std::int64_t mine = p.rank();
    window.put(std::span<const std::int64_t>(&mine, 1), right,
               static_cast<std::size_t>(p.rank()));
    const std::int64_t one = 1;
    window.accumulate(std::span<const std::int64_t>(&one, 1), right,
                      static_cast<std::size_t>(n), mpi::ReduceOp::Sum);
    window.fence();

    // After the fence, my window holds my left neighbour's rank and one
    // accumulated token.
    const int left = (p.rank() + n - 1) % n;
    if (memory[static_cast<std::size_t>(left)] != left ||
        memory[static_cast<std::size_t>(n)] != 1) {
      std::printf("rank %d: unexpected window contents!\n", p.rank());
    }

    // Throughput probe: back-to-back 8-byte puts, then one flush.
    constexpr int kPuts = 256;
    p.sync_time();
    const Micros start = p.now();
    for (int i = 0; i < kPuts; ++i)
      window.put(std::span<const std::int64_t>(&mine, 1), right, 0);
    window.flush(right);
    const Micros elapsed = p.now() - start;
    window.fence();

    const double rate = kPuts / elapsed;  // puts per us
    const double max_rate = world.allreduce_value(rate, mpi::ReduceOp::Max);
    if (p.rank() == 0) {
      std::printf("one-sided ring complete on %d ranks\n", n);
      std::printf("8-byte put rate (locality-aware, co-resident): %.2f Mput/s\n",
                  max_rate);
      std::printf("(run with HostnameBased policy to watch this drop ~9x onto "
                  "the HCA loopback)\n");
    }
  });
  return 0;
}
