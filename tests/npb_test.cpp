// NPB kernel tests: every kernel must verify on several rank counts and both
// policies, and the FFT primitive gets its own unit tests.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/npb/npb.hpp"
#include "mpi/runtime.hpp"

namespace cbmpi {
namespace {

using namespace apps::npb;
using container::DeploymentSpec;
using fabric::LocalityPolicy;

TEST(Fft, RoundTripIdentity) {
  std::vector<std::complex<double>> data(64);
  Xoshiro256 rng(5);
  for (auto& v : data) v = {rng.uniform() - 0.5, rng.uniform() - 0.5};
  auto original = data;
  fft_inplace(std::span<std::complex<double>>(data), false);
  fft_inplace(std::span<std::complex<double>>(data), true);
  for (std::size_t i = 0; i < data.size(); ++i)
    EXPECT_NEAR(std::abs(data[i] - original[i]), 0.0, 1e-12);
}

TEST(Fft, DeltaTransformsToConstant) {
  std::vector<std::complex<double>> data(16, 0.0);
  data[0] = 1.0;
  fft_inplace(std::span<std::complex<double>>(data), false);
  for (const auto& v : data) EXPECT_NEAR(std::abs(v - std::complex<double>(1.0)), 0.0, 1e-12);
}

TEST(Fft, ParsevalHolds) {
  std::vector<std::complex<double>> data(128);
  Xoshiro256 rng(9);
  for (auto& v : data) v = {rng.uniform() - 0.5, rng.uniform() - 0.5};
  double time_energy = 0.0;
  for (const auto& v : data) time_energy += std::norm(v);
  fft_inplace(std::span<std::complex<double>>(data), false);
  double freq_energy = 0.0;
  for (const auto& v : data) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(data.size()), time_energy, 1e-9);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> data(12);
  EXPECT_THROW(fft_inplace(std::span<std::complex<double>>(data), false), Error);
}

struct NpbCase {
  int hosts;
  int containers;
  int procs_per_host;
  LocalityPolicy policy;
};

class NpbKernels : public testing::TestWithParam<NpbCase> {
 protected:
  mpi::JobConfig config() const {
    const auto& c = GetParam();
    mpi::JobConfig cfg;
    cfg.deployment =
        c.containers == 0
            ? DeploymentSpec::native_hosts(c.hosts, c.procs_per_host)
            : DeploymentSpec::containers(c.hosts, c.containers, c.procs_per_host);
    cfg.policy = c.policy;
    return cfg;
  }
};

TEST_P(NpbKernels, EpVerifies) {
  mpi::run_job(config(), [](mpi::Process& p) {
    EpParams params;
    params.pairs_per_rank = 1 << 12;
    const auto result = run_ep(p, params);
    EXPECT_TRUE(result.verified);
    EXPECT_GT(result.time, 0.0);
  });
}

TEST_P(NpbKernels, CgConverges) {
  mpi::run_job(config(), [](mpi::Process& p) {
    CgParams params;
    params.grid = 48;
    params.iterations = 10;
    const auto result = run_cg(p, params);
    EXPECT_TRUE(result.verified);
    EXPECT_GT(result.checksum, 0.0);
  });
}

TEST_P(NpbKernels, MgReducesResidual) {
  mpi::run_job(config(), [](mpi::Process& p) {
    MgParams params;
    params.nx = params.ny = 16;
    params.nz = 16;
    params.vcycles = 3;
    const auto result = run_mg(p, params);
    EXPECT_TRUE(result.verified);
  });
}

TEST_P(NpbKernels, FtRoundTripsAndSteps) {
  mpi::run_job(config(), [](mpi::Process& p) {
    FtParams params;
    params.nx = 16;
    params.ny = 8;
    params.nz = 16;
    params.timesteps = 2;
    const auto result = run_ft(p, params);
    EXPECT_TRUE(result.verified);
    EXPECT_TRUE(std::isfinite(result.checksum));
  });
}

TEST_P(NpbKernels, IsSortsGlobally) {
  mpi::run_job(config(), [](mpi::Process& p) {
    IsParams params;
    params.keys_per_rank = 1 << 12;
    const auto result = run_is(p, params);
    EXPECT_TRUE(result.verified);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Deployments, NpbKernels,
    testing::Values(NpbCase{1, 0, 1, LocalityPolicy::HostnameBased},
                    NpbCase{1, 0, 4, LocalityPolicy::HostnameBased},
                    NpbCase{1, 2, 4, LocalityPolicy::HostnameBased},
                    NpbCase{1, 2, 4, LocalityPolicy::ContainerAware},
                    NpbCase{2, 2, 4, LocalityPolicy::ContainerAware}));

TEST(NpbChecksums, IntegerKernelsIdenticalAcrossPolicies) {
  // IS and EP counters are integer-exact, so their checksums must be
  // bit-identical whichever channels carried the traffic.
  auto run_with = [&](LocalityPolicy policy) {
    mpi::JobConfig cfg;
    cfg.deployment = DeploymentSpec::containers(1, 2, 4);
    cfg.policy = policy;
    double is_sum = 0.0;
    mpi::run_job(cfg, [&](mpi::Process& p) {
      IsParams params;
      params.keys_per_rank = 1 << 10;
      const auto result = run_is(p, params);
      if (p.rank() == 0) is_sum = result.checksum;
    });
    return is_sum;
  };
  EXPECT_EQ(run_with(LocalityPolicy::HostnameBased),
            run_with(LocalityPolicy::ContainerAware));
}

TEST(NpbTimes, LocalityAwareNotSlower) {
  // Across co-resident containers, the aware runtime should never lose to
  // the default one on a communication-heavy kernel.
  auto time_with = [&](LocalityPolicy policy) {
    mpi::JobConfig cfg;
    cfg.deployment = DeploymentSpec::containers(1, 4, 4);
    cfg.policy = policy;
    Micros t = 0.0;
    mpi::run_job(cfg, [&](mpi::Process& p) {
      FtParams params;
      params.nx = 16;
      params.ny = 8;
      params.nz = 16;
      params.timesteps = 2;
      const auto result = run_ft(p, params);
      if (p.rank() == 0) t = result.time;
    });
    return t;
  };
  EXPECT_LT(time_with(LocalityPolicy::ContainerAware),
            time_with(LocalityPolicy::HostnameBased));
}

}  // namespace
}  // namespace cbmpi
