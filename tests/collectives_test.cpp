// Collective correctness across rank counts, data sizes, deployments and
// both locality policies — including the hierarchical (two-level) paths.
#include <gtest/gtest.h>

#include <numeric>

#include "mpi/runtime.hpp"

namespace cbmpi {
namespace {

using container::DeploymentSpec;
using fabric::LocalityPolicy;
using mpi::JobConfig;
using mpi::ReduceOp;
using mpi::run_job;

struct CollectiveCase {
  int hosts;
  int containers_per_host;  // 0 = native
  int procs_per_host;
  LocalityPolicy policy;
  bool two_level;
};

std::string case_name(const testing::TestParamInfo<CollectiveCase>& info) {
  const auto& c = info.param;
  std::string name = std::to_string(c.hosts) + "h_" +
                     std::to_string(c.containers_per_host) + "c_" +
                     std::to_string(c.procs_per_host) + "p";
  name += c.policy == LocalityPolicy::ContainerAware ? "_aware" : "_default";
  name += c.two_level ? "_2lvl" : "_flat";
  return name;
}

class Collectives : public testing::TestWithParam<CollectiveCase> {
 protected:
  JobConfig config() const {
    const auto& c = GetParam();
    JobConfig cfg;
    cfg.deployment = c.containers_per_host == 0
                         ? DeploymentSpec::native_hosts(c.hosts, c.procs_per_host)
                         : DeploymentSpec::containers(c.hosts, c.containers_per_host,
                                                      c.procs_per_host);
    cfg.policy = c.policy;
    cfg.tuning.two_level_collectives = c.two_level;
    return cfg;
  }
  int nranks() const { return GetParam().hosts * GetParam().procs_per_host; }
};

TEST_P(Collectives, Barrier) {
  run_job(config(), [](mpi::Process& p) {
    for (int i = 0; i < 3; ++i) p.world().barrier();
  });
}

TEST_P(Collectives, BcastFromEveryRoot) {
  const int n = nranks();
  run_job(config(), [n](mpi::Process& p) {
    for (int root = 0; root < n; ++root) {
      std::vector<int> data(97, p.rank() == root ? root + 1000 : -1);
      p.world().bcast(std::span<int>(data), root);
      for (const int v : data) ASSERT_EQ(v, root + 1000);
    }
  });
}

TEST_P(Collectives, BcastLargePayload) {
  run_job(config(), [](mpi::Process& p) {
    std::vector<std::uint64_t> data(8192);  // 64 KiB -> rendezvous paths
    if (p.rank() == 0)
      for (std::size_t i = 0; i < data.size(); ++i) data[i] = i * 3 + 1;
    p.world().bcast(std::span<std::uint64_t>(data), 0);
    ASSERT_EQ(data[5000], 5000u * 3 + 1);
  });
}

TEST_P(Collectives, ReduceSumAndMax) {
  const int n = nranks();
  run_job(config(), [n](mpi::Process& p) {
    const std::int64_t mine[2] = {p.rank() + 1, 100 - p.rank()};
    std::int64_t out[2] = {0, 0};
    p.world().reduce(std::span<const std::int64_t>(mine, 2),
                     std::span<std::int64_t>(out, 2), ReduceOp::Sum, 0);
    if (p.rank() == 0) {
      ASSERT_EQ(out[0], static_cast<std::int64_t>(n) * (n + 1) / 2);
      ASSERT_EQ(out[1], 100LL * n - static_cast<std::int64_t>(n) * (n - 1) / 2);
    }
    std::int64_t mx = 0;
    const std::int64_t mv = p.rank() * 7;
    p.world().reduce(std::span<const std::int64_t>(&mv, 1),
                     std::span<std::int64_t>(&mx, 1), ReduceOp::Max, 0);
    if (p.rank() == 0) {
      ASSERT_EQ(mx, static_cast<std::int64_t>(n - 1) * 7);
    }
  });
}

TEST_P(Collectives, AllreduceMatchesReducePlusBcast) {
  const int n = nranks();
  run_job(config(), [n](mpi::Process& p) {
    std::vector<std::int64_t> in(33);
    for (std::size_t i = 0; i < in.size(); ++i)
      in[i] = p.rank() * 100 + static_cast<std::int64_t>(i);
    std::vector<std::int64_t> out(33);
    p.world().allreduce(std::span<const std::int64_t>(in),
                        std::span<std::int64_t>(out), ReduceOp::Sum);
    for (std::size_t i = 0; i < out.size(); ++i) {
      const std::int64_t expect =
          static_cast<std::int64_t>(n) * (n - 1) / 2 * 100 +
          static_cast<std::int64_t>(n) * static_cast<std::int64_t>(i);
      ASSERT_EQ(out[i], expect);
    }
    ASSERT_EQ(p.world().allreduce_value<std::int64_t>(1, ReduceOp::Sum), n);
    ASSERT_EQ(p.world().allreduce_value<std::int64_t>(p.rank(), ReduceOp::Min), 0);
  });
}

TEST_P(Collectives, AllgatherOrdersBlocksByRank) {
  const int n = nranks();
  run_job(config(), [n](mpi::Process& p) {
    std::vector<int> mine(5, p.rank());
    std::vector<int> all(5 * static_cast<std::size_t>(n), -1);
    p.world().allgather(std::span<const int>(mine), std::span<int>(all));
    for (int r = 0; r < n; ++r)
      for (int k = 0; k < 5; ++k)
        ASSERT_EQ(all[static_cast<std::size_t>(r) * 5 + static_cast<std::size_t>(k)],
                  r);
  });
}

TEST_P(Collectives, GatherAndScatter) {
  const int n = nranks();
  run_job(config(), [n](mpi::Process& p) {
    const int root = n - 1;
    std::vector<double> mine(3, p.rank() + 0.5);
    std::vector<double> all(static_cast<std::size_t>(3 * n));
    p.world().gather(std::span<const double>(mine), std::span<double>(all), root);
    if (p.rank() == root) {
      for (int r = 0; r < n; ++r) {
        ASSERT_DOUBLE_EQ(all[static_cast<std::size_t>(3 * r)], r + 0.5);
      }
    }

    std::vector<int> chunks(static_cast<std::size_t>(2 * n));
    if (p.rank() == 0)
      std::iota(chunks.begin(), chunks.end(), 0);
    std::vector<int> mine2(2);
    p.world().scatter(std::span<const int>(chunks), std::span<int>(mine2), 0);
    ASSERT_EQ(mine2[0], 2 * p.rank());
    ASSERT_EQ(mine2[1], 2 * p.rank() + 1);
  });
}

TEST_P(Collectives, AlltoallTransposesBlocks) {
  const int n = nranks();
  run_job(config(), [n](mpi::Process& p) {
    std::vector<int> send(static_cast<std::size_t>(n) * 2);
    for (int r = 0; r < n; ++r) {
      send[static_cast<std::size_t>(2 * r)] = p.rank() * 1000 + r;
      send[static_cast<std::size_t>(2 * r + 1)] = -(p.rank() * 1000 + r);
    }
    std::vector<int> recv(send.size());
    p.world().alltoall(std::span<const int>(send), std::span<int>(recv));
    for (int r = 0; r < n; ++r) {
      ASSERT_EQ(recv[static_cast<std::size_t>(2 * r)], r * 1000 + p.rank());
      ASSERT_EQ(recv[static_cast<std::size_t>(2 * r + 1)], -(r * 1000 + p.rank()));
    }
  });
}

TEST_P(Collectives, AlltoallvVariableCounts) {
  const int n = nranks();
  run_job(config(), [n](mpi::Process& p) {
    // Rank r sends r+1 copies of its rank to everyone.
    std::vector<int> send_counts(static_cast<std::size_t>(n), p.rank() + 1);
    std::vector<int> send_displs(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r)
      send_displs[static_cast<std::size_t>(r)] = r * (p.rank() + 1);
    std::vector<int> send_buf(static_cast<std::size_t>(n * (p.rank() + 1)), p.rank());

    std::vector<int> recv_counts(static_cast<std::size_t>(n));
    std::vector<int> recv_displs(static_cast<std::size_t>(n));
    int total = 0;
    for (int r = 0; r < n; ++r) {
      recv_counts[static_cast<std::size_t>(r)] = r + 1;
      recv_displs[static_cast<std::size_t>(r)] = total;
      total += r + 1;
    }
    std::vector<int> recv_buf(static_cast<std::size_t>(total), -1);
    p.world().alltoallv(std::span<const int>(send_buf),
                        std::span<const int>(send_counts),
                        std::span<const int>(send_displs), std::span<int>(recv_buf),
                        std::span<const int>(recv_counts),
                        std::span<const int>(recv_displs));
    for (int r = 0; r < n; ++r)
      for (int k = 0; k <= r; ++k)
        ASSERT_EQ(recv_buf[static_cast<std::size_t>(
                      recv_displs[static_cast<std::size_t>(r)] + k)],
                  r);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Deployments, Collectives,
    testing::Values(
        // native single host
        CollectiveCase{1, 0, 4, LocalityPolicy::HostnameBased, true},
        // 2 containers/host, default policy (groups == containers)
        CollectiveCase{1, 2, 4, LocalityPolicy::HostnameBased, true},
        // 2 containers/host, aware policy (groups == hosts)
        CollectiveCase{1, 2, 4, LocalityPolicy::ContainerAware, true},
        // multi-host, 4 containers/host, both policies, pow2 ranks
        CollectiveCase{2, 4, 4, LocalityPolicy::HostnameBased, true},
        CollectiveCase{2, 4, 4, LocalityPolicy::ContainerAware, true},
        // non-power-of-two rank count exercises the non-pow2 fallbacks
        CollectiveCase{3, 1, 3, LocalityPolicy::ContainerAware, true},
        // flat algorithms (two-level disabled)
        CollectiveCase{2, 2, 4, LocalityPolicy::ContainerAware, false},
        // 16 ranks native across 4 hosts
        CollectiveCase{4, 0, 4, LocalityPolicy::HostnameBased, true}),
    case_name);

TEST(CommSplit, SplitsByColorAndOrdersByKey) {
  mpi::JobConfig config;
  config.deployment = DeploymentSpec::native_hosts(2, 4);
  run_job(config, [](mpi::Process& p) {
    auto& world = p.world();
    // Even/odd split, key reverses order within the evens.
    const int color = p.rank() % 2;
    const int key = color == 0 ? -p.rank() : p.rank();
    auto sub = world.split(color, key);
    ASSERT_TRUE(sub.has_value());
    ASSERT_EQ(sub->size(), 4);
    // Collectives work on the sub-communicator.
    const auto sum = sub->allreduce_value<std::int64_t>(p.rank(), ReduceOp::Sum);
    const std::int64_t expect = color == 0 ? 0 + 2 + 4 + 6 : 1 + 3 + 5 + 7;
    ASSERT_EQ(sum, expect);
    // Key ordering: evens are reversed.
    if (color == 0 && p.rank() == 6) {
      ASSERT_EQ(sub->rank(), 0);
    }
    if (color == 1 && p.rank() == 1) {
      ASSERT_EQ(sub->rank(), 0);
    }
  });
}

TEST(CommSplit, NegativeColorGetsNull) {
  mpi::JobConfig config;
  config.deployment = DeploymentSpec::native_hosts(1, 3);
  run_job(config, [](mpi::Process& p) {
    auto sub = p.world().split(p.rank() == 0 ? -1 : 0, 0);
    ASSERT_EQ(sub.has_value(), p.rank() != 0);
    if (sub) {
      ASSERT_EQ(sub->size(), 2);
    }
  });
}

TEST(CommDup, IndependentTagSpace) {
  mpi::JobConfig config;
  config.deployment = DeploymentSpec::native_hosts(1, 2);
  run_job(config, [](mpi::Process& p) {
    auto dup = p.world().dup();
    ASSERT_NE(dup.id(), p.world().id());
    // A message on the dup is not visible to the world communicator.
    if (p.rank() == 0) {
      const int v = 77;
      dup.send(std::span<const int>(&v, 1), 1, 3);
    } else {
      ASSERT_FALSE(p.world().iprobe(0, 3).has_value());
      int v = 0;
      dup.recv(std::span<int>(&v, 1), 0, 3);
      ASSERT_EQ(v, 77);
    }
  });
}

TEST(LocalityGroups, DefaultPolicyGroupsAreContainers) {
  mpi::JobConfig config;
  config.deployment = DeploymentSpec::containers(1, 2, 4);
  config.policy = LocalityPolicy::HostnameBased;
  run_job(config, [](mpi::Process& p) {
    // wait for groups via a communicator accessor
    auto& groups = p.world().locality_groups();
    ASSERT_EQ(groups.group_size, 2);       // 2 procs per container
    ASSERT_EQ(groups.leaders.size(), 2u);  // one leader per container
    ASSERT_TRUE(groups.uniform);
    ASSERT_TRUE(groups.contiguous);
  });
}

TEST(LocalityGroups, AwarePolicyGroupsAreHosts) {
  mpi::JobConfig config;
  config.deployment = DeploymentSpec::containers(2, 2, 4);
  config.policy = LocalityPolicy::ContainerAware;
  run_job(config, [](mpi::Process& p) {
    auto& groups = p.world().locality_groups();
    ASSERT_EQ(groups.group_size, 4);       // whole host is one group
    ASSERT_EQ(groups.leaders.size(), 2u);  // one leader per host
    ASSERT_TRUE(groups.uniform);
    ASSERT_TRUE(groups.contiguous);
  });
}

}  // namespace
}  // namespace cbmpi
