// Job runtime: builds the simulated cluster, deploys containers, spawns one
// thread per rank, runs the Container Locality Detector, and executes the
// user's per-rank function.
//
//   mpi::JobConfig config;
//   config.deployment = container::DeploymentSpec::containers(1, 2, 16);
//   config.policy = fabric::LocalityPolicy::ContainerAware;
//   auto result = mpi::run_job(config, [](mpi::Process& p) {
//     p.world().barrier();
//     ...
//   });
//   // result.job_time is the virtual makespan.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <span>

#include "common/rng.hpp"
#include "container/deployment.hpp"
#include "fabric/reg_cache.hpp"
#include "fabric/selector.hpp"
#include "faults/fault.hpp"
#include "migrate/plan.hpp"
#include "mpi/checkpoint.hpp"
#include "mpi/coll/tuning_table.hpp"
#include "mpi/communicator.hpp"
#include "mpi/time_barrier.hpp"
#include "net/fabric.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "prof/profile.hpp"
#include "sim/trace.hpp"
#include "topo/calibration.hpp"

namespace cbmpi::migrate {
class Coordinator;
}

namespace cbmpi::mpi {

struct JobConfig {
  container::DeploymentSpec deployment;

  /// Explicit rank->host/container/core placement (scheduler-emitted). When
  /// set it replaces `plan_deployment(deployment)`; the deployment spec then
  /// only contributes container flags (privileged, --ipc=host, --pid=host,
  /// isolation kind). Hosts may carry different rank/container counts.
  std::optional<container::JobPlacement> placement;
  fabric::TuningParams tuning{};

  /// Collective-algorithm selection rules. Ships the paper-derived container
  /// defaults; merge a parsed file over them (`cbmpirun --tuning=<file>`) to
  /// re-tune without a recompile. CBMPI_<COLL>_ALGORITHM env pins are applied
  /// on top at job start and beat every table entry.
  coll::TuningTable coll_tuning = coll::TuningTable::container_defaults();
  fabric::LocalityPolicy policy = fabric::LocalityPolicy::HostnameBased;
  topo::MachineProfile profile = topo::MachineProfile::chameleon_fdr();

  /// Cluster size; 0 means "exactly the hosts the deployment needs".
  int cluster_hosts = 0;

  /// Forces all traffic onto one channel (Fig. 3 experiments).
  std::optional<fabric::ChannelKind> forced_channel;

  /// Fault injection (default: none). Faults are derived deterministically
  /// from `seed`, so the same seed reproduces the same failures, fallbacks,
  /// retry counts, and job time.
  faults::FaultPlan faults{};

  /// Coordinated checkpoints: > 0 asks the runtime to quiesce at body-round
  /// barriers and snapshot registered job-body state roughly every this many
  /// virtual microseconds (Process::checkpoint). 0 (default) = off, and the
  /// checkpoint hooks in job bodies cost nothing.
  Micros checkpoint_interval = 0.0;

  /// Resume from a previous attempt's committed snapshot: bodies see
  /// Process::start_round() / restored_state(), and each rank is charged the
  /// modelled snapshot-read cost at job start (a Fault/"restart" span).
  std::shared_ptr<const CheckpointData> restore;

  /// Job-local host index -> cluster-wide host id (scheduler-filled; empty =
  /// standalone run, local ids are the physical ids). Host-crash eligibility
  /// keys off the physical id so one flaky host misbehaves for every job
  /// placed on it (see FaultPlan::host_fault_seed).
  std::vector<int> physical_hosts;

  /// Fabric model for inter-host HCA traffic. FabricModel::Ideal (default)
  /// keeps the flat per-pair cost model bit-identically. Flat/FatTree route
  /// transfers over an explicit switch topology and run the job twice — a
  /// record pass logging every inter-host payload, then an apply pass with
  /// the settled link-contention factors — so congested runs are still pure
  /// functions of (config, seed) and rerun bit-identically.
  net::FabricConfig fabric{};

  /// Live-migration quiesce hook (engine-installed, never user-set): when
  /// non-null, Process::checkpoint consults it at every round boundary and
  /// the job segment ends with a QuiesceInterrupt on the firing round. Null
  /// on every ordinary run — the added cost is one pointer test.
  migrate::Coordinator* quiesce = nullptr;

  /// Pin-down cache state carried across migration segments
  /// (engine-installed): entries warmed into the fresh cache before rank
  /// threads start, and the final cache exported back at job end.
  std::shared_ptr<fabric::RegCacheWarmState> reg_warm;

  bool record_trace = false;

  /// Attaches the observability layer (obs::MetricsRegistry + span tracing)
  /// to the job: JobResult then carries a metrics snapshot and the recorded
  /// spans. All sampling is in virtual time, so enabling this never changes
  /// job_time and reruns stay bit-identical.
  bool observe = false;
  std::uint64_t seed = 42;
};

struct JobResult {
  Micros job_time = 0.0;           ///< max over ranks of the final clock
  std::vector<Micros> rank_times;  ///< per-rank final virtual clocks
  prof::JobProfile profile;        ///< aggregated over ranks
  std::size_t hca_queue_pairs = 0;
  std::vector<sim::TraceEvent> trace;  ///< empty unless record_trace
  /// Injected faults, degradation decisions, retry counts, recovery time.
  /// Empty when the job's FaultPlan is the default.
  faults::FaultReport fault_report;
  /// Observability (empty unless JobConfig::observe): the job's metrics
  /// registry snapshot and the recorded spans in append order. Feed both to
  /// obs::run_report_json / obs::to_perfetto.
  obs::MetricsSnapshot metrics;
  std::vector<obs::Span> spans;

  /// Fabric model outcome (report v3 "net" section): per-link utilization,
  /// congested-transfer count, hop histogram. `net.enabled` is false under
  /// FabricModel::Ideal.
  net::NetReport net;

  /// Pin-down cache outcome (report v4 "reg_cache" section). `enabled` is
  /// false unless TuningParams::reg_model was on.
  fabric::RegCacheStats reg_cache;

  /// Recovery bookkeeping (report v2 "recovery" section): checkpoints
  /// committed during this run, and what the run resumed from (if anything).
  std::vector<CheckpointEvent> checkpoints;
  bool restored = false;
  int restore_round = 0;
  Micros restore_progress_us = 0.0;

  /// Live-migration outcome (report v6 "migration" section). `enabled` is
  /// false unless a migrate::Engine drove this job.
  migrate::MigrationReport migration;
};

/// The per-rank handle passed to the job body.
class Process {
 public:
  Process(JobState& job, int rank, osl::SimProcess& proc, TimeBarrier& phase_barrier,
          std::shared_ptr<const CommGroup> world_group);

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  int rank() const { return engine_.world_rank(); }
  int size() const { return engine_.job().nranks; }

  Communicator& world() { return world_; }

  /// Advances virtual time by a compute phase of `ops` abstract work units
  /// (profiled as computation for the Fig. 3a breakdown).
  void compute(double ops);

  /// Current virtual time in microseconds (the MPI_Wtime analogue).
  Micros now() const { return os_->clock().now(); }

  /// True while the fabric model's record pass runs (the job body executes
  /// twice under a non-Ideal fabric). Bodies with side effects beyond virtual
  /// time — printing, say — should skip them when this is set; the apply
  /// pass is the run whose results stand.
  bool fabric_probe() const;

  /// Job seed; combine with rank() for per-rank streams.
  std::uint64_t seed() const { return engine_.job().seed; }

  /// Deterministic per-rank RNG.
  Xoshiro256 make_rng(std::uint64_t salt = 0) const;

  /// Out-of-band phase alignment: blocks until all ranks arrive and aligns
  /// every clock to the maximum. For bench iteration boundaries — not an
  /// MPI_Barrier (costs nothing in virtual time beyond the alignment).
  void sync_time();

  /// First body round to execute: 0 for a fresh run, the restore snapshot's
  /// completed-round count when the job resumes from a checkpoint.
  int start_round() const;

  /// This rank's saved state bytes from the restore snapshot (empty span for
  /// a fresh run). Valid for the job's lifetime.
  std::span<const std::uint8_t> restored_state() const;

  /// Coordinated maybe-checkpoint, called by recoverable bodies once per
  /// round with `completed_rounds` rounds done and the rank's serialized
  /// state. Collective: every rank must call it the same number of times.
  /// When checkpointing is off this returns false at the cost of one pointer
  /// test; when on, all ranks quiesce (align clocks), make one uniform
  /// take/skip decision from the aligned time, and on "take" each rank saves
  /// its state and is charged the modelled snapshot cost (Fault/"checkpoint"
  /// span). Returns true when a checkpoint was taken this round.
  bool checkpoint(int completed_rounds, std::span<const std::uint8_t> state);

  Adi3Engine& engine() { return engine_; }
  const osl::SimProcess& os() const { return *os_; }

 private:
  osl::SimProcess* os_;
  Adi3Engine engine_;
  Communicator world_;
  TimeBarrier* phase_barrier_;
};

/// Runs one MPI job in the simulated cluster. Blocks until all ranks finish;
/// exceptions thrown by any rank are rethrown here.
JobResult run_job(const JobConfig& config,
                  const std::function<void(Process&)>& body);

}  // namespace cbmpi::mpi
