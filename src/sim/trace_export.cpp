#include "sim/trace_export.hpp"

#include <sstream>

namespace cbmpi::sim {

namespace {
void append_escaped(std::ostringstream& os, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      default: os << c;
    }
  }
}
}  // namespace

std::string to_chrome_trace(std::span<const TraceEvent> events) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& event : events) {
    if (!first) os << ",";
    first = false;
    // Instant events ("ph":"i") at the event's virtual timestamp; the source
    // rank is the process row so per-rank timelines line up.
    os << "{\"name\":\"";
    append_escaped(os, to_string(event.kind));
    if (!event.note.empty()) {
      os << " [";
      append_escaped(os, event.note);
      os << "]";
    }
    os << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":" << event.src
       << ",\"tid\":" << event.dst << ",\"ts\":" << event.at
       << ",\"args\":{\"bytes\":" << event.size << ",\"dst\":" << event.dst << "}}";
  }
  os << "],\"displayTimeUnit\":\"ns\"}";
  return os.str();
}

}  // namespace cbmpi::sim
