# Empty dependencies file for fig11_graph500_proposed.
# This may be replaced when dependencies are built.
