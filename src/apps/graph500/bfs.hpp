// Distributed BFS — the Graph 500 "MPI-simple" pattern.
//
// Level-synchronized expansion with asynchronous edge shipping inside each
// level: frontier edges destined for remote owners are coalesced into
// fixed-size buffers (default 8 KiB) and shipped with MPI_Isend; incoming
// buffers are drained by polling MPI_Test on pre-posted wildcard receives;
// levels end with an alltoall of message counts plus an MPI_Allreduce on the
// next frontier size. This produces exactly the traffic mix of the paper's
// analysis (Sec. III): full 8 K coalescing buffers ride the CMA/rendezvous
// path, partial flushes and control ride SHM eager, and Table I's channel
// operation counts emerge from the same message stream.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/graph500/graph.hpp"

namespace cbmpi::apps::graph500 {

struct BfsParams {
  Bytes coalesce_bytes = 8_KiB;  ///< remote-edge buffer size (2 u64 per entry)
  int recv_depth = 4;            ///< pre-posted wildcard receive buffers
  double ops_per_edge = 6.0;     ///< modelled compute per scanned edge
};

struct BfsResult {
  std::uint64_t root = 0;
  std::uint64_t visited = 0;       ///< global vertices reached (incl. root)
  std::uint64_t edges_scanned = 0; ///< global adjacency entries examined
  int levels = 0;
  Micros time = 0.0;               ///< max-over-ranks BFS time
  /// parent[local vertex] = global parent id, or ~0ull if unreached.
  std::vector<std::uint64_t> parent;
  /// level[local vertex] = BFS depth, or -1 if unreached.
  std::vector<std::int32_t> level;
};

inline constexpr std::uint64_t kUnreached = ~std::uint64_t{0};

/// Collective: runs one BFS from `root`; all ranks return the same counters
/// (and their local slice of the parent/level arrays).
BfsResult run_bfs(mpi::Process& p, const DistGraph& graph, std::uint64_t root,
                  const BfsParams& params = {});

}  // namespace cbmpi::apps::graph500
