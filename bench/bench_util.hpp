// Shared helpers for the figure/table reproduction benches.
//
// Every bench prints the paper reference it reproduces, the series the paper
// reports, and finishes with a PASS/CHECK line on the qualitative shape so
// EXPERIMENTS.md can quote results directly.
#pragma once

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/options.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "container/deployment.hpp"
#include "mpi/runtime.hpp"
#include "obs/json.hpp"

namespace cbmpi::bench {

inline void print_banner(const std::string& id, const std::string& title,
                         const std::string& paper_claim) {
  std::printf("=== %s — %s ===\n", id.c_str(), title.c_str());
  std::printf("paper: %s\n\n", paper_claim.c_str());
}

inline void print_shape_check(bool ok, const std::string& what) {
  std::printf("[%s] %s\n", ok ? "SHAPE-OK" : "SHAPE-MISMATCH", what.c_str());
}

/// The paper's three library configurations for one deployment.
struct ModeConfigs {
  mpi::JobConfig def;     ///< default MVAPICH2 behaviour (hostname locality)
  mpi::JobConfig opt;     ///< proposed locality-aware design
  mpi::JobConfig native;  ///< no containers (upper bound)
};

inline ModeConfigs make_modes(int hosts, int containers_per_host, int procs_per_host,
                              container::SocketPolicy socket_policy =
                                  container::SocketPolicy::Pack) {
  ModeConfigs modes;
  modes.def.deployment =
      container::DeploymentSpec::containers(hosts, containers_per_host, procs_per_host);
  modes.def.deployment.socket_policy = socket_policy;
  modes.def.policy = fabric::LocalityPolicy::HostnameBased;

  modes.opt = modes.def;
  modes.opt.policy = fabric::LocalityPolicy::ContainerAware;

  modes.native.deployment =
      container::DeploymentSpec::native_hosts(hosts, procs_per_host);
  modes.native.deployment.socket_policy = socket_policy;
  modes.native.policy = fabric::LocalityPolicy::HostnameBased;
  return modes;
}

/// Declares the shared --seed option the ext benches accept. The value feeds
/// every JobConfig / scheduler seed in the bench, so a rerun with the same
/// seed reproduces the run exactly and a different seed gives an independent
/// sample of the same experiment.
inline std::uint64_t declare_seed(Options& opts, std::uint64_t def = 42) {
  return static_cast<std::uint64_t>(opts.get_int(
      "seed", static_cast<std::int64_t>(def),
      "base RNG seed: same seed -> bit-identical rerun"));
}

/// Message-size sweep 1 B .. max (powers of two), OSU-style.
inline std::vector<Bytes> size_sweep(Bytes from, Bytes upto) {
  std::vector<Bytes> sizes;
  for (Bytes s = from; s <= upto; s *= 2) sizes.push_back(s);
  return sizes;
}

inline double percent_better(double baseline, double improved) {
  return (baseline - improved) / baseline * 100.0;
}

/// Declares the shared --json option: path for the machine-readable result
/// document (empty = no JSON output).
inline std::string declare_json(Options& opts) {
  return opts.get("json", "",
                  "write the bench results as JSON to this file");
}

/// Machine-readable bench results: one row per measured point, serialized as
///   {"bench": ..., "config": ..., "seed": ..., "rows":
///    [{"label": ..., "bytes": ..., "latency_us": ..., "bandwidth_mbps": ...}]}
/// Rows are emitted in add() order and numbers use obs::format_double, so a
/// rerun with the same seed writes a byte-identical file.
class JsonRows {
 public:
  JsonRows(std::string bench, std::string config, std::uint64_t seed)
      : bench_(std::move(bench)), config_(std::move(config)), seed_(seed) {}

  /// A measured point. Pass 0 for whichever of latency/bandwidth the panel
  /// does not report.
  void add(const std::string& label, Bytes bytes, double latency_us,
           double bandwidth_mbps) {
    rows_.push_back({label, bytes, latency_us, bandwidth_mbps});
  }

  std::string str() const {
    obs::JsonWriter w;
    w.begin_object();
    w.field("bench", bench_);
    w.field("config", config_);
    w.field("seed", seed_);
    w.key("rows").begin_array();
    for (const auto& row : rows_) {
      w.begin_object();
      w.field("label", row.label);
      w.field("bytes", static_cast<std::uint64_t>(row.bytes));
      w.field("latency_us", row.latency_us);
      w.field("bandwidth_mbps", row.bandwidth_mbps);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    return w.str() + "\n";
  }

  /// Writes the document; no-op when `path` is empty (--json not given).
  void write(const std::string& path) const {
    if (path.empty()) return;
    std::ofstream out(path, std::ios::binary);
    out << str();
    std::printf("results written to %s\n", path.c_str());
  }

 private:
  struct Row {
    std::string label;
    Bytes bytes = 0;
    double latency_us = 0.0;
    double bandwidth_mbps = 0.0;
  };
  std::string bench_;
  std::string config_;
  std::uint64_t seed_;
  std::vector<Row> rows_;
};

}  // namespace cbmpi::bench
