# Empty dependencies file for osl_test.
# This may be replaced when dependencies are built.
