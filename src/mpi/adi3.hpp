// ADI3-like progress engine: byte-level point-to-point protocols.
//
// One engine per rank, driven by that rank's thread. It owns the list of
// posted (pending) receives and implements the eager and rendezvous
// protocols over whichever channel the selector picked.
//
// Progress semantics mirror a single-threaded MPI library without an async
// progress thread: transfers advance only inside MPI calls. Any blocking
// call (and every test) progresses *all* posted receives, not just the one
// being waited on — that is what lets a peer's blocking rendezvous send
// complete while this rank waits on an unrelated request, exactly like a
// real progress engine.
//
// Virtual-time rules:
//   * eager completion  = max(posted_at, available_at) + receiver_cost
//   * rendezvous times come from the channel's rndv_times(rts_sent, posted_at)
// Completion times depend only on post/send times (not on when the thread
// happens to run), which keeps results reproducible.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "mpi/job_state.hpp"
#include "mpi/types.hpp"
#include "osl/process.hpp"

namespace cbmpi::mpi {

class Adi3Engine {
 public:
  Adi3Engine(JobState& job, int world_rank, osl::SimProcess& proc);

  Adi3Engine(const Adi3Engine&) = delete;
  Adi3Engine& operator=(const Adi3Engine&) = delete;

  int world_rank() const { return rank_; }
  osl::SimProcess& process() { return *proc_; }
  sim::VirtualClock& clock() { return proc_->clock(); }
  JobState& job() { return *job_; }
  const JobState& job() const { return *job_; }
  prof::RankProfile& profile() { return job_->rank_profile(rank_); }

  /// Starts a send; the returned request is complete immediately for eager
  /// transfers and completes via the receiver for rendezvous ones. The data
  /// span must stay valid until the request completes.
  Request start_send(std::span<const std::byte> data, int dst_world, int tag,
                     std::uint64_t comm_id);

  /// Posts a receive. The buffer must stay valid until completion.
  /// With immediate=false the engine skips the match attempt against
  /// already-arrived messages at post time; pair with
  /// complete_in_arrival_order().
  Request post_recv(std::span<std::byte> buffer, int src_world, int tag,
                    std::uint64_t comm_id, bool immediate = true);

  /// Completes every receive in `recvs`, processing messages in *virtual*
  /// arrival order (available_at, src, seq) rather than wall-clock arrival
  /// order — the receiver busy chain then serializes identically
  /// run-to-run no matter how sender threads were scheduled. Blocks until
  /// all matching messages have been delivered, so every matching send
  /// must already be started and non-blocking (e.g. alltoall, where each
  /// rank posts all transfers before waiting). Wildcard receives are not
  /// supported here.
  void complete_in_arrival_order(std::span<const Request> recvs);

  /// Non-blocking progress + completion check (MPI_Test).
  bool test(const Request& request);

  /// Blocks until the request completes (MPI_Wait); returns its status.
  Status wait(const Request& request);

  void wait_all(std::span<const Request> requests);

  /// MPI_Cancel analogue for receive requests: withdraws a posted receive
  /// that has not completed. No-op if it already completed.
  void cancel(const Request& request);

  /// MPI_Iprobe: is a matching message pending? (world-relative source)
  std::optional<Status> iprobe(int src_world, int tag, std::uint64_t comm_id);

  /// Crash injection: throws faults::CrashedError once this rank's virtual
  /// clock crosses its scheduled crash time (JobState::crash_at). Checked at
  /// op boundaries (send start, wait completion, compute, phase alignment),
  /// so detection follows the deterministic virtual clock, never wall time.
  /// No-op (one empty-vector test) when no crash faults are planned.
  void check_crash();

 private:
  void check_abort() const;
  [[noreturn]] void raise_crash();
  /// Fault injection: charges the sender for transient HCA failures of this
  /// transfer — bounded retries with exponential backoff and deterministic
  /// jitter — and throws (per-rank abort, failing rank identified) once the
  /// retry budget is exhausted. No-op when no injector is attached.
  void charge_hca_retries(int dst_world, std::uint64_t seq, Bytes size);
  void progress_posted();
  bool try_complete_recv(RequestState& request);
  void complete_eager(RequestState& request, fabric::Envelope& env);
  void complete_rendezvous(RequestState& request, fabric::Envelope& env);
  std::uint64_t queue_pair_key(int dst_world) const;
  /// Fills `ctx` and returns its address when this inter-host HCA transfer
  /// must be routed through the attached fabric; null otherwise (Ideal
  /// model, loopback, or co-located hosts).
  const net::TransferCtx* fabric_ctx(int src_rank, int dst_rank,
                                     std::uint64_t seq, bool loopback,
                                     net::TransferCtx& ctx) const;
  /// NetCongest trace breadcrumb in the apply pass for transfers the settle
  /// step slowed down.
  void trace_congestion(const net::TransferCtx* ctx, int src, int dst,
                        Bytes size, Micros at);

  JobState* job_;
  int rank_;
  osl::SimProcess* proc_;

  /// Observability handles, resolved once at construction when the job has a
  /// metrics registry attached (all null otherwise, so the hot path is one
  /// pointer test). Values are virtual-time-deterministic, so concurrent
  /// atomic bumps still yield bit-identical snapshots.
  struct ObsHandles {
    obs::Counter* eager_sends = nullptr;
    obs::Counter* rndv_sends = nullptr;
    obs::Counter* channel_ops[fabric::kChannelKinds] = {};
    obs::Histogram* msg_size = nullptr;
    /// Post-to-completion time of each receive, in whole virtual
    /// microseconds. Derived from virtual timestamps only — never from queue
    /// occupancy, which depends on wall-clock drain order.
    obs::Histogram* recv_latency = nullptr;
    /// Pin-down cache outcomes (resolved only under TuningParams::reg_model,
    /// so reports without the model stay byte-identical).
    obs::Counter* reg_hits = nullptr;
    obs::Counter* reg_misses = nullptr;
    obs::Counter* reg_evictions = nullptr;
  };
  ObsHandles obs_;

  /// Stable per-rank buffer identity for the pin-down cache: ids are handed
  /// out in this rank's first-use order, a deterministic function of the
  /// rank's program — never of pointer values or thread scheduling.
  std::uint64_t reg_buffer_id(const void* base);
  std::map<const void*, std::uint64_t> reg_buffer_ids_;

  std::uint64_t next_seq_ = 0;
  std::vector<Request> posted_;
  /// Receiver-side copies/pulls serialize on this rank's CPU: the next
  /// incoming payload cannot start processing before the previous one
  /// finished. This is what bounds windowed bandwidth to the per-message
  /// receive cost (instead of letting a window of receives complete in
  /// parallel virtual time).
  Micros recv_busy_until_ = 0.0;
};

}  // namespace cbmpi::mpi
