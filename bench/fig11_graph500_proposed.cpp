// Figure 11: Graph 500 BFS time with the DEFAULT vs the PROPOSED MPI library
// under the Fig. 1 deployment scenarios (Native / 1 / 2 / 4 containers on one
// host, 16 processes).
//
// Expected shape (paper): the proposed design's BFS time stays flat across
// all scenarios at roughly the native level, eliminating the bottleneck that
// makes the default curve climb.
#include "bench_util.hpp"

#include "apps/graph500/bfs.hpp"

using namespace cbmpi;
using namespace cbmpi::bench;

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const int scale = static_cast<int>(opts.get_int("scale", 13, "Graph500 scale (paper: 20)"));
  const int procs = static_cast<int>(opts.get_int("procs", 16, "MPI processes"));
  const int nbfs = static_cast<int>(opts.get_int("nbfs", 8, "BFS roots averaged"));
  if (opts.finish("Figure 11: Graph500 BFS, default vs proposed library")) return 0;

  print_banner("Figure 11", "Graph 500 BFS, default vs proposed design",
               "proposed design keeps BFS time flat (near native) across all "
               "container scenarios");

  const apps::graph500::EdgeListParams params{scale, 16, 1};

  auto bfs_time = [&](int containers, fabric::LocalityPolicy policy) {
    mpi::JobConfig config;
    config.deployment = containers == 0
                            ? container::DeploymentSpec::native_hosts(1, procs)
                            : container::DeploymentSpec::containers(1, containers, procs);
    config.policy = policy;
    Micros total = 0.0;
    mpi::run_job(config, [&](mpi::Process& p) {
      const auto graph = apps::graph500::build_graph(p, params);
      const auto roots = apps::graph500::choose_roots(params, nbfs);
      Micros sum = 0.0;
      for (const auto root : roots) sum += apps::graph500::run_bfs(p, graph, root).time;
      if (p.rank() == 0) total = sum / nbfs;
    });
    return total;
  };

  Table table({"scenario", "Default (ms)", "Proposed (ms)", "Proposed vs Native"});
  const Micros native = bfs_time(0, fabric::LocalityPolicy::HostnameBased);
  table.add_row({"Native", Table::num(to_millis(native), 3),
                 Table::num(to_millis(native), 3), "1.00x"});
  std::vector<Micros> proposed_times;
  for (int containers : {1, 2, 4}) {
    const Micros def = bfs_time(containers, fabric::LocalityPolicy::HostnameBased);
    const Micros opt = bfs_time(containers, fabric::LocalityPolicy::ContainerAware);
    proposed_times.push_back(opt);
    table.add_row({std::to_string(containers) + "-Container" +
                       (containers > 1 ? "s" : ""),
                   Table::num(to_millis(def), 3), Table::num(to_millis(opt), 3),
                   Table::num(opt / native, 2) + "x"});
  }
  table.print(std::cout);

  const Micros worst =
      *std::max_element(proposed_times.begin(), proposed_times.end());
  const Micros best =
      *std::min_element(proposed_times.begin(), proposed_times.end());
  // BFS timing carries ~±10% wildcard-matching noise per run; the paper's
  // "similar across scenarios" claim is checked at a noise-aware 15%.
  print_shape_check(worst < best * 1.15,
                    "proposed BFS time flat across container scenarios (<15% spread)");
  print_shape_check(worst < native * 1.15,
                    "proposed BFS time within 15% of native");
  return 0;
}
