// Extension experiment: live container migration — policy sweep under a
// fragmented schedule.
//
// A seeded mix of recoverable jobs lands on a small cluster under the
// Spread placer, which deliberately fragments each job across hosts. The
// elastic rebalancer then gets one shot per job start: with --migrate=off
// nothing moves (the baseline); defrag folds the stray container back onto
// a host already running the rest of the job; evacuate reacts to crash
// history; colocate chases the chattiest cross-host pair. Every proposal
// passes the pre-copy cost gate — the run report's migration section keeps
// the predicted win vs cost for audit — and the headline check is the
// acceptance shape from DESIGN.md §17: at least one defrag move whose
// predicted locality win exceeds its predicted cost, with the whole
// schedule (migration pauses included) byte-identical across reruns.
#include "bench_util.hpp"

#include "obs/report.hpp"
#include "sched/scheduler.hpp"

using namespace cbmpi;
using namespace cbmpi::bench;

namespace {

/// Recoverable bodies only (ring / cg / bfs): a migrated container resumes
/// from its quiesce snapshot, so the body must implement the restore hook.
std::vector<sched::JobSpec> make_job_mix(int jobs) {
  static const char* kBodies[] = {"ring", "cg", "bfs"};
  std::vector<sched::JobSpec> mix;
  Micros t = 0.0;
  for (int i = 0; i < jobs; ++i) {
    sched::JobSpec job;
    job.body = kBodies[static_cast<std::size_t>(i) % std::size(kBodies)];
    job.ranks = (i % 2 == 0) ? 6 : 4;
    job.ranks_per_container = 2;
    job.params.rounds = 8;
    job.params.message_size = 16_KiB;
    job.submit_time = t;
    t += 15.0;
    mix.push_back(job);
  }
  return mix;
}

sched::SchedulerConfig cluster_of(int hosts, std::uint64_t seed,
                                  migrate::MigrationPolicy policy) {
  sched::SchedulerConfig config;
  config.cluster_hosts = hosts;
  config.host_shape = topo::HostShape{2, 4, true};  // 8 cores per host
  config.policy = sched::PlacementPolicy::Spread;   // fragment on purpose
  config.seed = seed;
  config.migrate_policy = policy;
  return config;
}

sched::ClusterMetrics run_cell(int hosts, int jobs, std::uint64_t seed,
                               migrate::MigrationPolicy policy) {
  sched::Scheduler scheduler(cluster_of(hosts, seed, policy));
  for (auto& job : make_job_mix(jobs)) scheduler.submit(std::move(job));
  scheduler.run();
  return scheduler.metrics();
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const int hosts = static_cast<int>(opts.get_int("hosts", 4, "cluster hosts"));
  const int jobs = static_cast<int>(opts.get_int("jobs", 12, "jobs in the mix"));
  const std::uint64_t seed = declare_seed(opts);
  const std::string json_path = declare_json(opts);
  if (opts.finish("Extension: live container migration — policy sweep")) return 0;

  print_banner("Extension", "live migration x elastic rebalancing policies",
               "a quiesced container move costs a pause plus cold "
               "re-registration but buys SHM/CMA locality for every round "
               "still to come; the cost gate only lets moves through when "
               "the predicted win covers the bill");

  const migrate::MigrationPolicy policies[] = {
      migrate::MigrationPolicy::Off, migrate::MigrationPolicy::Defrag,
      migrate::MigrationPolicy::Evacuate, migrate::MigrationPolicy::Colocate};

  obs::JsonWriter json;
  json.begin_object();
  json.field("bench", "ext_live_migration");
  json.field("config", std::to_string(hosts) + " hosts x 8 cores, " +
                           std::to_string(jobs) + " jobs, spread placement");
  json.field("seed", seed);
  json.key("rows").begin_array();

  Table table({"policy", "proposed", "rejected", "executed", "pause (us)",
               "win (us)", "cost (us)", "makespan (ms)"});
  std::vector<sched::ClusterMetrics> cells;
  for (const auto policy : policies) {
    const auto m = run_cell(hosts, jobs, seed, policy);
    cells.push_back(m);
    table.add_row({migrate::to_string(policy),
                   std::to_string(m.migrations_proposed),
                   std::to_string(m.migrations_rejected),
                   std::to_string(m.migrations_executed),
                   Table::num(m.migration_pause_us, 1),
                   Table::num(m.migration_win_us, 1),
                   Table::num(m.migration_cost_us, 1),
                   Table::num(to_millis(m.makespan), 3)});
    json.begin_object();
    // (label, bytes, latency_us) key the row for tools/check_regress.py.
    json.field("label", migrate::to_string(policy));
    json.field("bytes", std::uint64_t{0});
    json.field("latency_us", m.makespan);
    json.field("migrations_proposed", m.migrations_proposed);
    json.field("migrations_rejected", m.migrations_rejected);
    json.field("migrations_executed", m.migrations_executed);
    json.field("migration_pause_us", m.migration_pause_us);
    json.field("migration_win_us", m.migration_win_us);
    json.field("migration_cost_us", m.migration_cost_us);
    json.field("makespan_us", m.makespan);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  table.print(std::cout);

  const auto& off = cells[0];
  const auto& defrag = cells[1];
  print_shape_check(off.migrations_proposed == 0 && off.migrations_executed == 0,
                    "--migrate=off never proposes, never moves (baseline)");
  print_shape_check(defrag.migrations_executed >= 1,
                    "defrag folds at least one fragmented container back");
  print_shape_check(defrag.migration_win_us > defrag.migration_cost_us,
                    "every executed defrag move cleared the cost gate: summed "
                    "predicted win exceeds summed predicted cost");
  print_shape_check(defrag.migration_pause_us > 0.0,
                    "migration pauses are charged to virtual time");

  // --- determinism, including the v6 migration report section ---------------
  const auto report_once = [&] {
    sched::Scheduler scheduler(
        cluster_of(hosts, seed, migrate::MigrationPolicy::Defrag));
    for (auto& job : make_job_mix(jobs)) scheduler.submit(std::move(job));
    scheduler.run();
    obs::ReportContext ctx;
    ctx.app = "ext_live_migration";
    ctx.deployment = std::to_string(hosts) + "x?x2";
    ctx.policy = "spread";
    ctx.seed = seed;
    ctx.cluster = &scheduler.metrics();
    return obs::schedule_report_json(ctx, scheduler);
  };
  const std::string report = report_once();
  print_shape_check(report == report_once(),
                    "migrating schedule + v6 migration report byte-identical "
                    "across reruns");
  print_shape_check(report.find("\"migration\"") != std::string::npos,
                    "schedule report carries the v6 migration section");

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    out << json.str() << "\n";
    std::printf("results written to %s\n", json_path.c_str());
  }
  return 0;
}
