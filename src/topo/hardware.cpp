#include "topo/hardware.hpp"

namespace cbmpi::topo {

Cluster::Cluster(int num_hosts, HostShape shape) {
  CBMPI_REQUIRE(num_hosts > 0, "cluster needs at least one host");
  CBMPI_REQUIRE(shape.sockets > 0 && shape.cores_per_socket > 0, "invalid host shape");
  hosts_.reserve(static_cast<std::size_t>(num_hosts));
  for (int i = 0; i < num_hosts; ++i)
    hosts_.emplace_back(i, "host" + std::to_string(i), shape);
}

const Host& Cluster::host(HostId id) const {
  CBMPI_REQUIRE(id >= 0 && id < num_hosts(), "host id ", id, " out of range");
  return hosts_[static_cast<std::size_t>(id)];
}

ClusterBuilder& ClusterBuilder::hosts(int n) {
  num_hosts_ = n;
  return *this;
}

ClusterBuilder& ClusterBuilder::sockets(int n) {
  shape_.sockets = n;
  return *this;
}

ClusterBuilder& ClusterBuilder::cores_per_socket(int n) {
  shape_.cores_per_socket = n;
  return *this;
}

ClusterBuilder& ClusterBuilder::hca(bool present) {
  shape_.has_hca = present;
  return *this;
}

Cluster ClusterBuilder::build() const { return Cluster(num_hosts_, shape_); }

}  // namespace cbmpi::topo
