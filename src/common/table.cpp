#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/units.hpp"

namespace cbmpi {

std::string format_size(Bytes n) {
  if (n >= 1_MiB && n % 1_MiB == 0) return std::to_string(n / 1_MiB) + "M";
  if (n >= 1_KiB && n % 1_KiB == 0) return std::to_string(n / 1_KiB) + "K";
  return std::to_string(n);
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  CBMPI_REQUIRE(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  CBMPI_REQUIRE(cells.size() == headers_.size(), "row arity ", cells.size(),
                " != header arity ", headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      if (c == 0)
        os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
      else
        os << std::right << std::setw(static_cast<int>(width[c])) << row[c];
    }
    os << '\n';
  };

  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace cbmpi
