// Tests for derived datatypes (strided vectors), persistent requests, the
// Chrome-trace exporter, and the LU wavefront kernel.
#include <gtest/gtest.h>

#include <numeric>

#include "apps/npb/npb.hpp"
#include "mpi/datatype.hpp"
#include "mpi/runtime.hpp"
#include "sim/trace_export.hpp"

namespace cbmpi {
namespace {

using container::DeploymentSpec;
using fabric::LocalityPolicy;
using mpi::JobConfig;
using mpi::VectorLayout;

TEST(VectorLayout, ExtentAndElements) {
  const VectorLayout layout{4, 3, 10};
  EXPECT_EQ(layout.elements(), 12u);
  EXPECT_EQ(layout.extent(), 33u);
  EXPECT_EQ((VectorLayout{0, 3, 10}).extent(), 0u);
  EXPECT_THROW((VectorLayout{2, 5, 3}).validate(), Error);
}

TEST(VectorLayout, PackUnpackRoundTrip) {
  const VectorLayout layout{3, 2, 5};
  std::vector<int> source(layout.extent());
  std::iota(source.begin(), source.end(), 100);
  std::vector<int> packed(layout.elements());
  mpi::pack(std::span<const int>(source), layout, std::span<int>(packed));
  EXPECT_EQ(packed, (std::vector<int>{100, 101, 105, 106, 110, 111}));

  std::vector<int> restored(layout.extent(), -1);
  mpi::unpack(std::span<const int>(packed), layout, std::span<int>(restored));
  EXPECT_EQ(restored[0], 100);
  EXPECT_EQ(restored[6], 106);
  EXPECT_EQ(restored[11], 111);
  EXPECT_EQ(restored[2], -1);  // gaps untouched
}

TEST(Datatype, StridedSendRecvMovesColumn) {
  // Send column 2 of a 6x8 row-major matrix between ranks.
  JobConfig cfg;
  cfg.deployment = DeploymentSpec::containers(1, 2, 2);
  cfg.policy = LocalityPolicy::ContainerAware;
  mpi::run_job(cfg, [](mpi::Process& p) {
    constexpr int kRows = 6, kCols = 8;
    const VectorLayout column{kRows, 1, kCols};
    if (p.rank() == 0) {
      std::vector<double> matrix(kRows * kCols);
      for (int i = 0; i < kRows; ++i)
        for (int j = 0; j < kCols; ++j)
          matrix[static_cast<std::size_t>(i * kCols + j)] = i * 10 + j;
      mpi::send_strided(p.world(),
                        std::span<const double>(matrix.data() + 2, matrix.size() - 2),
                        column, 1, 3);
    } else {
      std::vector<double> matrix(kRows * kCols, -1.0);
      mpi::recv_strided(p.world(),
                        std::span<double>(matrix.data() + 2, matrix.size() - 2),
                        column, 0, 3);
      for (int i = 0; i < kRows; ++i) {
        EXPECT_DOUBLE_EQ(matrix[static_cast<std::size_t>(i * kCols + 2)], i * 10 + 2);
        EXPECT_DOUBLE_EQ(matrix[static_cast<std::size_t>(i * kCols + 3)], -1.0);
      }
    }
  });
}

TEST(Datatype, StridedSizeMismatchThrows) {
  JobConfig cfg;
  cfg.deployment = DeploymentSpec::native_hosts(1, 2);
  EXPECT_THROW(
      mpi::run_job(cfg,
                   [](mpi::Process& p) {
                     if (p.rank() == 0) {
                       std::vector<int> four(4, 1);
                       p.world().send(std::span<const int>(four), 1, 9);
                     } else {
                       std::vector<int> buffer(100);
                       const VectorLayout expects_six{6, 1, 2};
                       mpi::recv_strided(p.world(), std::span<int>(buffer),
                                         expects_six, 0, 9);
                     }
                   }),
      Error);
}

TEST(Persistent, SendRecvReusedAcrossIterations) {
  JobConfig cfg;
  cfg.deployment = DeploymentSpec::containers(1, 2, 2);
  cfg.policy = LocalityPolicy::ContainerAware;
  mpi::run_job(cfg, [](mpi::Process& p) {
    constexpr int kIters = 12;
    std::vector<int> buffer(64);
    if (p.rank() == 0) {
      auto plan = mpi::send_init(p.world(), std::span<const int>(buffer), 1, 5);
      for (int it = 0; it < kIters; ++it) {
        std::fill(buffer.begin(), buffer.end(), it);
        auto request = plan.start();
        p.world().wait(request);
      }
    } else {
      auto plan = mpi::recv_init(p.world(), std::span<int>(buffer), 0, 5);
      for (int it = 0; it < kIters; ++it) {
        auto request = plan.start();
        p.world().wait(request);
        EXPECT_EQ(buffer[32], it) << "iteration " << it;
      }
    }
  });
}

TEST(Persistent, RestartBeforeCompletionThrows) {
  JobConfig cfg;
  cfg.deployment = DeploymentSpec::native_hosts(1, 2);
  EXPECT_THROW(mpi::run_job(cfg,
                            [](mpi::Process& p) {
                              std::vector<int> buffer(8);
                              if (p.rank() == 1) {
                                auto plan = mpi::recv_init(
                                    p.world(), std::span<int>(buffer), 0, 5);
                                plan.start();
                                plan.start();  // previous not complete
                              } else {
                                p.world().barrier();
                              }
                            }),
               Error);
}

TEST(TraceExport, ProducesLoadableChromeJson) {
  JobConfig cfg;
  cfg.deployment = DeploymentSpec::native_hosts(1, 2);
  cfg.record_trace = true;
  const auto result = mpi::run_job(cfg, [](mpi::Process& p) {
    if (p.rank() == 0)
      p.world().send_value<int>(1, 1);
    else
      p.world().recv_value<int>(0);
    p.compute(100.0);
  });
  const std::string json = sim::to_chrome_trace(result.trace);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("send-eager"), std::string::npos);
  EXPECT_NE(json.find("compute"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  // Balanced braces as a cheap well-formedness check.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(TraceExport, EmptyTraceIsValid) {
  const std::string json = sim::to_chrome_trace({});
  EXPECT_EQ(json, "{\"traceEvents\":[],\"displayTimeUnit\":\"ns\"}");
}

struct LuCase {
  int hosts;
  int containers;
  int procs_per_host;
};

class LuKernel : public testing::TestWithParam<LuCase> {};

TEST_P(LuKernel, WavefrontMatchesSerialReference) {
  const auto& c = GetParam();
  JobConfig cfg;
  cfg.deployment = c.containers == 0
                       ? DeploymentSpec::native_hosts(c.hosts, c.procs_per_host)
                       : DeploymentSpec::containers(c.hosts, c.containers,
                                                    c.procs_per_host);
  cfg.policy = LocalityPolicy::ContainerAware;
  mpi::run_job(cfg, [](mpi::Process& p) {
    apps::npb::LuParams params;
    params.grid = 32;
    params.sweeps = 2;
    const auto result = apps::npb::run_lu(p, params);
    EXPECT_TRUE(result.verified);
    EXPECT_GT(result.time, 0.0);
  });
}

INSTANTIATE_TEST_SUITE_P(Deployments, LuKernel,
                         testing::Values(LuCase{1, 0, 1}, LuCase{1, 0, 4},
                                         LuCase{1, 2, 4}, LuCase{2, 2, 4}));

TEST(LuKernel, PipelineGainsFromLocality) {
  // LU is latency-bound: the locality-aware runtime should beat the default
  // clearly when the pipeline crosses co-resident containers.
  auto run_with = [](LocalityPolicy policy) {
    JobConfig cfg;
    cfg.deployment = DeploymentSpec::containers(1, 4, 4);
    cfg.policy = policy;
    Micros t = 0.0;
    mpi::run_job(cfg, [&](mpi::Process& p) {
      apps::npb::LuParams params;
      params.grid = 32;
      params.sweeps = 2;
      const auto result = apps::npb::run_lu(p, params);
      if (p.rank() == 0) t = result.time;
    });
    return t;
  };
  EXPECT_LT(run_with(LocalityPolicy::ContainerAware),
            run_with(LocalityPolicy::HostnameBased) * 0.7);
}

}  // namespace
}  // namespace cbmpi
