// Container Locality Detector (the paper's core contribution, Sec. IV-B).
//
// A container list lives in host shared memory (/dev/shm/locality). It has
// one byte per global rank — "the byte is the smallest granularity of memory
// access without the lock" — so all co-resident ranks can announce themselves
// concurrently without lock/unlock. During init every rank writes a nonzero
// marker at its own position; after the init barrier every rank scans the
// list it can see. The positions that were written are, by construction,
// exactly the ranks whose processes share this host *and* this IPC namespace
// — which are precisely the peers reachable over SHM/CMA.
//
// Failure modes preserved from the real system:
//   * containers with private IPC namespaces open *different* segments and
//     therefore never detect each other (the fix requires --ipc=host);
//   * ranks on different hosts never see each other's lists.
//
// A lock-based variant is provided for the ablation benchmark.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "osl/process.hpp"
#include "osl/shm.hpp"

namespace cbmpi::mpi {

class ContainerLocalityDetector {
 public:
  /// `job_tag` isolates concurrent jobs' lists from each other.
  ContainerLocalityDetector(std::string job_tag, int nranks);

  /// Marks `rank` present in the list of `proc`'s host+IPC namespace.
  /// Lock-free: one release-store of one byte.
  void announce(const osl::SimProcess& proc, int rank);

  /// Scans the list visible to `proc`: row[j] != 0 iff rank j announced into
  /// the same list (=> co-resident and SHM/CMA-reachable).
  std::vector<std::uint8_t> co_resident_row(const osl::SimProcess& proc) const;

  /// Local ordering: ranks in the same list, ascending (paper: positions in
  /// the container list maintain local ordering). Used by two-level
  /// collectives to pick leaders.
  std::vector<int> local_ranks(const osl::SimProcess& proc) const;

  /// Graceful degradation when a rank's /dev/shm segment open fails (fault
  /// injection, or a real deployment without a usable /dev/shm): the rank
  /// cannot announce or scan, so it falls back to the only locality signal
  /// that needs no shared memory — hostname comparison, exactly what the
  /// default MVAPICH2 runtime uses. row[j] = 1 iff all[j] reports the same
  /// hostname as proc (its own container at worst, never a false positive
  /// across containers since container hostnames are unique).
  std::vector<std::uint8_t> hostname_fallback_row(
      const osl::SimProcess& proc,
      const std::vector<const osl::SimProcess*>& all) const;

  /// Virtual-time cost of the announce+scan protocol for one rank: one byte
  /// store plus a scan of nranks bytes. Tiny by design — 1 M ranks cost ~1 MB
  /// of traversal (the paper's scalability argument).
  Micros detection_cost() const;

  /// Extra cost charged to a degraded rank: the failed open, one retry of
  /// the open, and nranks hostname comparisons.
  Micros fallback_cost() const;

  int nranks() const { return nranks_; }
  const std::string& segment_name() const { return segment_name_; }

 private:
  std::shared_ptr<osl::ShmSegment> list_for(const osl::SimProcess& proc) const;

  std::string segment_name_;
  int nranks_;
};

}  // namespace cbmpi::mpi
