#include "sched/rebalancer.hpp"

#include <algorithm>
#include <cstddef>

#include "common/error.hpp"
#include "mpi/job_registry.hpp"

namespace cbmpi::sched {
namespace {

/// One candidate container: which placement host fragment it lives in and
/// which job ranks it holds (the chunking mirrors make_job_config: each
/// host's rank list is cut into consecutive `ranks_per_container` chunks).
struct Chunk {
  int host_index = -1;       ///< index into placement.hosts
  int container_index = -1;  ///< chunk index within that host
  std::vector<int> ranks;
};

std::vector<Chunk> chunks_on(const Placement& placement, int host_index,
                             int ranks_per_container) {
  std::vector<Chunk> out;
  const auto& ranks = placement.hosts[static_cast<std::size_t>(host_index)].ranks;
  for (std::size_t base = 0; base < ranks.size();
       base += static_cast<std::size_t>(ranks_per_container)) {
    Chunk chunk;
    chunk.host_index = host_index;
    chunk.container_index = static_cast<int>(out.size());
    const auto end =
        std::min(ranks.size(), base + static_cast<std::size_t>(ranks_per_container));
    chunk.ranks.assign(ranks.begin() + static_cast<std::ptrdiff_t>(base),
                       ranks.begin() + static_cast<std::ptrdiff_t>(end));
    out.push_back(std::move(chunk));
  }
  return out;
}

/// Symmetric traffic weight between two ranks; 0 when the hint has no entry.
double weight(const mpi::TrafficMatrix& traffic, int a, int b) {
  const auto ia = static_cast<std::size_t>(a);
  const auto ib = static_cast<std::size_t>(b);
  if (ia >= traffic.size() || ib >= traffic.size()) return 0.0;
  double w = 0.0;
  if (ib < traffic[ia].size()) w += traffic[ia][ib];
  if (ia < traffic[ib].size()) w += traffic[ib][ia];
  return w;
}

/// Net traffic weight the move converts to intra-host: pairs gained on the
/// destination minus pairs lost on the source.
double net_localized_weight(const mpi::TrafficMatrix& traffic,
                            const std::vector<int>& moved,
                            const std::vector<int>& src_stay,
                            const std::vector<int>& dst_ranks) {
  double net = 0.0;
  for (int m : moved) {
    for (int d : dst_ranks) net += weight(traffic, m, d);
    for (int s : src_stay) net -= weight(traffic, m, s);
  }
  return net;
}

}  // namespace

ElasticRebalancer::ElasticRebalancer(migrate::MigrationPolicy policy,
                                     migrate::CostModel cost)
    : policy_(policy), cost_(cost) {}

RebalanceDecision ElasticRebalancer::propose(
    const JobSpec& job, const Placement& placement, const mpi::JobConfig& config,
    const ClusterState& state, const std::vector<int>& host_crashes,
    const topo::HostShape& shape) const {
  RebalanceDecision decision;
  if (policy_ == migrate::MigrationPolicy::Off) return decision;
  // Only containerized jobs can move, only recoverable bodies can snapshot
  // at the quiesce epoch, and only multi-round jobs have traffic left to win.
  if (job.ranks_per_container <= 0) return decision;
  if (!mpi::JobBodyRegistry::instance().info(job.body).recoverable) return decision;
  if (job.params.rounds < 2) return decision;

  const auto traffic = effective_traffic(job);

  // Pick (donor chunk, destination physical host) per policy.
  Chunk moved;
  topo::HostId dst_phys = -1;
  const int nhosts = static_cast<int>(placement.hosts.size());

  const auto crashes_at = [&](topo::HostId host) {
    const auto i = static_cast<std::size_t>(host);
    return i < host_crashes.size() ? host_crashes[i] : 0;
  };
  const auto fits = [&](topo::HostId host, std::size_t need) {
    return !state.is_blacklisted(host) &&
           state.free_count(host) >= static_cast<int>(need);
  };

  switch (policy_) {
    case migrate::MigrationPolicy::Off: return decision;
    case migrate::MigrationPolicy::Defrag: {
      if (nhosts < 2) return decision;
      // Donor: the host fragment with the fewest ranks (ties -> the later
      // host, i.e. the placement's trailing spill). Move its last container
      // (the smallest chunk when the division is uneven).
      int donor = 0;
      for (int h = 1; h < nhosts; ++h) {
        if (placement.hosts[static_cast<std::size_t>(h)].ranks.size() <=
            placement.hosts[static_cast<std::size_t>(donor)].ranks.size()) {
          donor = h;
        }
      }
      auto chunks = chunks_on(placement, donor, job.ranks_per_container);
      if (chunks.empty()) return decision;
      moved = chunks.back();
      // Destination: the job host holding the most ranks that still has the
      // free cores (ties -> lowest physical id).
      int best = -1;
      for (int h = 0; h < nhosts; ++h) {
        if (h == donor) continue;
        const auto& cand = placement.hosts[static_cast<std::size_t>(h)];
        if (!fits(cand.host, moved.ranks.size())) continue;
        if (best < 0 ||
            cand.ranks.size() >
                placement.hosts[static_cast<std::size_t>(best)].ranks.size()) {
          best = h;
        }
      }
      if (best < 0) return decision;
      dst_phys = placement.hosts[static_cast<std::size_t>(best)].host;
      break;
    }
    case migrate::MigrationPolicy::Evacuate: {
      // Donor: the job's first host that has already produced crash faults.
      int donor = -1;
      for (int h = 0; h < nhosts; ++h) {
        if (crashes_at(placement.hosts[static_cast<std::size_t>(h)].host) > 0) {
          donor = h;
          break;
        }
      }
      if (donor < 0) return decision;
      auto chunks = chunks_on(placement, donor, job.ranks_per_container);
      if (chunks.empty()) return decision;
      moved = chunks.back();
      // Destination: prefer a crash-free host the job already occupies (the
      // move then also wins locality); fall back to the lowest-id crash-free
      // host with room anywhere in the cluster.
      int best = -1;
      for (int h = 0; h < nhosts; ++h) {
        if (h == donor) continue;
        const auto& cand = placement.hosts[static_cast<std::size_t>(h)];
        if (crashes_at(cand.host) > 0 || !fits(cand.host, moved.ranks.size()))
          continue;
        if (best < 0 ||
            cand.ranks.size() >
                placement.hosts[static_cast<std::size_t>(best)].ranks.size()) {
          best = h;
        }
      }
      if (best >= 0) {
        dst_phys = placement.hosts[static_cast<std::size_t>(best)].host;
      } else {
        for (topo::HostId host = 0; host < state.num_hosts(); ++host) {
          bool used = false;
          for (const auto& a : placement.hosts) used = used || a.host == host;
          if (used || crashes_at(host) > 0 || !fits(host, moved.ranks.size()))
            continue;
          dst_phys = host;
          break;
        }
        if (dst_phys < 0) return decision;
      }
      break;
    }
    case migrate::MigrationPolicy::Colocate: {
      if (nhosts < 2) return decision;
      // The heaviest cross-host pair in the traffic hint.
      std::vector<int> host_of(static_cast<std::size_t>(job.ranks), -1);
      for (int h = 0; h < nhosts; ++h) {
        for (int r : placement.hosts[static_cast<std::size_t>(h)].ranks) {
          host_of[static_cast<std::size_t>(r)] = h;
        }
      }
      int best_a = -1, best_b = -1;
      double best_w = 0.0;
      for (int a = 0; a < job.ranks; ++a) {
        for (int b = a + 1; b < job.ranks; ++b) {
          if (host_of[static_cast<std::size_t>(a)] ==
              host_of[static_cast<std::size_t>(b)])
            continue;
          const double w = weight(traffic, a, b);
          if (w > best_w) {
            best_w = w;
            best_a = a;
            best_b = b;
          }
        }
      }
      if (best_a < 0) return decision;
      // Move a's container toward b, or b's toward a — whichever destination
      // has the free cores (a-to-b first).
      for (const auto& [mover, target] :
           {std::pair{best_a, best_b}, std::pair{best_b, best_a}}) {
        const int donor = host_of[static_cast<std::size_t>(mover)];
        auto chunks = chunks_on(placement, donor, job.ranks_per_container);
        for (auto& chunk : chunks) {
          if (std::find(chunk.ranks.begin(), chunk.ranks.end(), mover) ==
              chunk.ranks.end())
            continue;
          const auto target_host =
              placement.hosts[static_cast<std::size_t>(
                                  host_of[static_cast<std::size_t>(target)])]
                  .host;
          if (fits(target_host, chunk.ranks.size())) {
            moved = chunk;
            dst_phys = target_host;
          }
          break;
        }
        if (dst_phys >= 0) break;
      }
      if (dst_phys < 0) return decision;
      break;
    }
  }

  const auto& donor_assignment =
      placement.hosts[static_cast<std::size_t>(moved.host_index)];

  // Traffic the move converts to intra-host, over the rounds after the epoch.
  std::vector<int> src_stay;
  for (int r : donor_assignment.ranks) {
    if (std::find(moved.ranks.begin(), moved.ranks.end(), r) ==
        moved.ranks.end())
      src_stay.push_back(r);
  }
  std::vector<int> dst_ranks;
  for (const auto& a : placement.hosts) {
    if (a.host != dst_phys) continue;
    for (int r : a.ranks) dst_ranks.push_back(r);
  }
  const double net_w = net_localized_weight(traffic, moved.ranks, src_stay, dst_ranks);
  if (net_w <= 0.0 && policy_ != migrate::MigrationPolicy::Evacuate) {
    return decision;  // a move that localizes nothing cannot pay for itself
  }

  const int remaining_rounds = std::max(job.params.rounds - 1, 0);
  migrate::TrafficForecast forecast;
  forecast.messages = static_cast<std::uint64_t>(
      2.0 * std::max(net_w, 0.0) * static_cast<double>(remaining_rounds));
  forecast.bytes = forecast.messages * job.params.message_size;

  // Snapshot image: each rank's state parcel is of the order of its working
  // message, the same heuristic CheckpointStore prices snapshots with.
  const auto moved_ranks = static_cast<int>(moved.ranks.size());
  const Bytes image_bytes =
      std::max<Bytes>(job.params.message_size, 1) *
      static_cast<Bytes>(moved_ranks);

  decision.proposed = true;
  auto& plan = decision.plan;
  plan.policy = policy_;
  plan.cost = cost_;
  plan.epoch = 1.0;
  plan.cores_per_socket = shape.cores_per_socket;
  plan.move.src_host = moved.host_index;
  plan.move.container_index = moved.container_index;
  plan.move.dst_phys_host = dst_phys;
  plan.move.ranks = moved.ranks;
  // The scheduler claims exactly these after accepting: claim() hands out
  // the lowest free flat ids, which is precisely free_cores()'s prefix.
  const auto free = state.free_cores(dst_phys);
  CBMPI_REQUIRE(static_cast<int>(free.size()) >= moved_ranks,
                "rebalancer picked a destination without room");
  plan.move.dst_cores.assign(free.begin(), free.begin() + moved_ranks);

  plan.estimate = migrate::Engine::estimate(config.profile, config.tuning, cost_,
                                            image_bytes, moved_ranks, forecast);
  if (policy_ == migrate::MigrationPolicy::Evacuate) {
    // Reliability term: evacuating a crash-prone host saves the expected
    // re-run of the moved ranks' remaining work if the host fails again.
    plan.estimate.predicted_win_us +=
        0.5 * static_cast<double>(moved_ranks) * job.est_runtime;
    plan.estimate.worthwhile =
        plan.estimate.predicted_win_us >
        plan.estimate.total_us * cost_.cost_margin;
  }
  decision.accepted = plan.estimate.worthwhile;
  return decision;
}

}  // namespace cbmpi::sched
