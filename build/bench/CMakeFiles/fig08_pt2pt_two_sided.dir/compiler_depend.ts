# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig08_pt2pt_two_sided.
