# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/osl_test[1]_include.cmake")
include("/root/repo/build/tests/topo_container_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_test[1]_include.cmake")
include("/root/repo/build/tests/locality_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/collectives_test[1]_include.cmake")
include("/root/repo/build/tests/graph500_test[1]_include.cmake")
include("/root/repo/build/tests/npb_test[1]_include.cmake")
include("/root/repo/build/tests/osu_prof_test[1]_include.cmake")
include("/root/repo/build/tests/collectives_ext_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/pgas_test[1]_include.cmake")
include("/root/repo/build/tests/pt2pt_property_test[1]_include.cmake")
include("/root/repo/build/tests/datatype_test[1]_include.cmake")
include("/root/repo/build/tests/rma_ext_test[1]_include.cmake")
include("/root/repo/build/tests/semantics_test[1]_include.cmake")
include("/root/repo/build/tests/scale_test[1]_include.cmake")
