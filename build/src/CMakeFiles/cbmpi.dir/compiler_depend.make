# Empty compiler generated dependencies file for cbmpi.
# This may be replaced when dependencies are built.
