// Live-migration tests: the quiesce protocol drains in-flight traffic at a
// round boundary, the engine's two-segment execution re-detects locality and
// re-picks channels on the destination, pin-down cache entries of moved
// ranks go cold (visible as extra registration misses), the rebalancer
// policies propose sensible moves under the cost gate, and the whole
// subsystem — scheduler included — reruns bit-identically.
#include <gtest/gtest.h>

#include <algorithm>

#include "migrate/coordinator.hpp"
#include "migrate/engine.hpp"
#include "mpi/job_registry.hpp"
#include "obs/report.hpp"
#include "sched/rebalancer.hpp"
#include "sched/scheduler.hpp"

namespace cbmpi {
namespace {

topo::HostShape small_shape() { return topo::HostShape{2, 4, true}; }

/// 6-rank ring over two hosts: ranks {0..3} on host 0, {4,5} fragmented onto
/// host 1 — the classic defrag shape. Containers hold 2 ranks.
sched::Placement two_host_placement() {
  sched::Placement placement;
  placement.hosts.push_back({0, {0, 1, 2, 3}, {0, 1, 2, 3}});
  placement.hosts.push_back({1, {4, 5}, {0, 1}});
  return placement;
}

sched::JobSpec ring_job(int rounds, Bytes message_size) {
  sched::JobSpec job;
  job.id = 1;
  job.body = "ring";
  job.ranks = 6;
  job.ranks_per_container = 2;
  job.params.rounds = rounds;
  job.params.message_size = message_size;
  return job;
}

mpi::JobConfig config_for(const sched::JobSpec& job,
                          const sched::Placement& placement) {
  auto config = sched::make_job_config(job, placement, small_shape());
  config.observe = true;
  config.seed = 42;
  return config;
}

/// Moves host 1's only container (ranks {4,5}) onto host 0, cores {4,5}.
migrate::MigrationPlan defrag_plan() {
  migrate::MigrationPlan plan;
  plan.policy = migrate::MigrationPolicy::Defrag;
  plan.move.src_host = 1;
  plan.move.container_index = 0;
  plan.move.dst_phys_host = 0;
  plan.move.ranks = {4, 5};
  plan.move.dst_cores = {4, 5};
  plan.epoch = 1.0;
  plan.cores_per_socket = small_shape().cores_per_socket;
  return plan;
}

mpi::JobResult run_migrated(const sched::JobSpec& job,
                            const mpi::JobConfig& config,
                            const migrate::MigrationPlan& plan) {
  return migrate::Engine::run(
      config, mpi::JobBodyRegistry::instance().make(job.body, job.params),
      plan);
}

std::string report_of(const mpi::JobResult& result) {
  obs::ReportContext ctx;
  ctx.app = "migrate_test";
  ctx.deployment = "2x?x6";
  ctx.policy = "aware";
  ctx.seed = 42;
  return obs::run_report_json(ctx, result);
}

// ---- engine ----------------------------------------------------------------

TEST(MigrateEngine, QuiesceDrainsAndExecutesTheMove) {
  const auto job = ring_job(6, 16_KiB);
  const auto result = run_migrated(job, config_for(job, two_host_placement()),
                                   defrag_plan());
  ASSERT_EQ(result.migration.executed, 1);
  ASSERT_EQ(result.migration.records.size(), 1u);
  const auto& rec = result.migration.records[0];
  EXPECT_GE(rec.quiesce_round, 1);
  EXPECT_GT(rec.resume_at, rec.quiesce_at);
  EXPECT_GT(rec.pause_us, 0.0);
  // The quiesce happens at a barrier-aligned round boundary, after every
  // in-flight rendezvous completed — a fully drained matcher on every rank.
  EXPECT_EQ(rec.drained_msgs, 0u);
  EXPECT_GT(rec.snapshot_bytes, 0u);
  // Both moved ranks cross the fabric: one Migrate transfer span each, plus
  // a quiesce span per rank.
  const auto migrate_spans = std::count_if(
      result.spans.begin(), result.spans.end(),
      [](const obs::Span& s) { return s.cat == obs::SpanCat::Migrate; });
  EXPECT_GE(migrate_spans, 2);
}

TEST(MigrateEngine, ChannelReselectionMakesMovedPairsLocal) {
  const auto job = ring_job(6, 16_KiB);
  const auto config = config_for(job, two_host_placement());
  const auto plain = mpi::run_job(
      config, mpi::JobBodyRegistry::instance().make(job.body, job.params));
  const auto migrated = run_migrated(job, config, defrag_plan());
  ASSERT_EQ(migrated.migration.executed, 1);
  const auto& rec = migrated.migration.records[0];
  // {4,5} x {0,1,2,3}: eight pairs become host-local, none go remote.
  EXPECT_EQ(rec.pairs_to_local, 8);
  EXPECT_EQ(rec.pairs_to_remote, 0);
  // Post-move rounds run entirely on-host, so the selector re-picks SHM/CMA
  // where the un-migrated run kept hammering the HCA.
  const auto hca_ops = [](const mpi::JobResult& r) {
    return r.profile.total.channel_ops(fabric::ChannelKind::Hca);
  };
  const auto local_ops = [](const mpi::JobResult& r) {
    return r.profile.total.channel_ops(fabric::ChannelKind::Shm) +
           r.profile.total.channel_ops(fabric::ChannelKind::Cma);
  };
  EXPECT_LT(hca_ops(migrated), hca_ops(plain));
  EXPECT_GT(local_ops(migrated), local_ops(plain));
}

TEST(MigrateEngine, MovedRanksReRegisterCold) {
  // Three hosts so remote traffic survives the move: {0,1} stays on host 0
  // while {4,5} folds from host 2 onto host 1. 64 KiB rendezvous payloads
  // keep the pin-down cache hot on every sender.
  auto job = ring_job(6, 64_KiB);
  sched::Placement placement;
  placement.hosts.push_back({0, {0, 1}, {0, 1}});
  placement.hosts.push_back({1, {2, 3}, {0, 1}});
  placement.hosts.push_back({2, {4, 5}, {0, 1}});
  auto config = config_for(job, placement);
  config.tuning.reg_model = true;
  config.tuning.reg_cache_bytes = 64_MiB;

  migrate::MigrationPlan plan;
  plan.policy = migrate::MigrationPolicy::Defrag;
  plan.move.src_host = 2;
  plan.move.container_index = 0;
  plan.move.dst_phys_host = 1;
  plan.move.ranks = {4, 5};
  plan.move.dst_cores = {2, 3};
  plan.cores_per_socket = small_shape().cores_per_socket;

  const auto plain = mpi::run_job(
      config, mpi::JobBodyRegistry::instance().make(job.body, job.params));
  const auto migrated = run_migrated(job, config, plan);
  ASSERT_EQ(migrated.migration.executed, 1);
  const auto& rec = migrated.migration.records[0];
  // The moved ranks' pin-down entries were invalidated at the move...
  EXPECT_GT(rec.invalidated_reg_entries, 0u);
  EXPECT_GT(rec.invalidated_reg_bytes, 0u);
  // ...so their first post-move remote sends re-register (cold misses the
  // un-migrated run never pays), while unmoved ranks arrive warm.
  ASSERT_TRUE(plain.reg_cache.enabled);
  ASSERT_TRUE(migrated.reg_cache.enabled);
  EXPECT_GT(migrated.reg_cache.misses, plain.reg_cache.misses);
}

TEST(MigrateEngine, RerunsAreBitIdentical) {
  const auto job = ring_job(6, 16_KiB);
  const auto config = config_for(job, two_host_placement());
  const auto a = run_migrated(job, config, defrag_plan());
  const auto b = run_migrated(job, config, defrag_plan());
  EXPECT_EQ(a.job_time, b.job_time);
  EXPECT_EQ(a.rank_times, b.rank_times);
  EXPECT_EQ(report_of(a), report_of(b));
}

TEST(MigrateEngine, EpochPastJobEndNeverMigrates) {
  const auto job = ring_job(4, 4_KiB);
  const auto config = config_for(job, two_host_placement());
  auto plan = defrag_plan();
  plan.epoch = 1e9;  // the job finishes long before the epoch
  const auto result = run_migrated(job, config, plan);
  EXPECT_EQ(result.migration.executed, 0);
  EXPECT_TRUE(result.migration.records.empty());
  EXPECT_GT(result.job_time, 0.0);
  // Still deterministic with the never-firing coordinator installed.
  const auto again = run_migrated(job, config, plan);
  EXPECT_EQ(result.job_time, again.job_time);
}

TEST(MigrateEngine, SurvivesAnHcaLinkFlap) {
  auto job = ring_job(8, 16_KiB);
  auto config = config_for(job, two_host_placement());
  config.faults.hca_link_flap_period = 40.0;
  config.faults.hca_link_flap_duration = 5.0;
  const auto a = run_migrated(job, config, defrag_plan());
  ASSERT_EQ(a.migration.executed, 1);
  const auto b = run_migrated(job, config, defrag_plan());
  EXPECT_EQ(report_of(a), report_of(b));
}

TEST(MigrateEngine, CostGateArithmetic) {
  const auto profile = topo::MachineProfile::chameleon_fdr();
  const fabric::TuningParams tuning;
  migrate::CostModel cost;
  // No traffic left to win: never worthwhile.
  const auto idle = migrate::Engine::estimate(profile, tuning, cost, 64_KiB,
                                              2, {0, 0});
  EXPECT_FALSE(idle.worthwhile);
  EXPECT_GT(idle.total_us, 0.0);
  // Plenty of cross-host messages left: the locality win dominates.
  const auto busy = migrate::Engine::estimate(
      profile, tuning, cost, 64_KiB, 2, {100000, 100000 * 16_KiB});
  EXPECT_TRUE(busy.worthwhile);
  EXPECT_GT(busy.predicted_win_us, busy.total_us);
  // More pre-copy rounds shrink the stop-and-copy residue (dirty-page decay).
  migrate::CostModel deep = cost;
  deep.precopy_rounds = cost.precopy_rounds + 3;
  const auto shallow = migrate::Engine::estimate(profile, tuning, cost,
                                                 1_MiB, 2, {0, 0});
  const auto deeper = migrate::Engine::estimate(profile, tuning, deep,
                                                1_MiB, 2, {0, 0});
  EXPECT_LT(deeper.stop_copy_bytes, shallow.stop_copy_bytes);
}

// ---- report ----------------------------------------------------------------

TEST(MigrateReport, V6SectionPresentExactlyWhenEngineRan) {
  const auto job = ring_job(6, 16_KiB);
  const auto config = config_for(job, two_host_placement());
  const auto migrated = run_migrated(job, config, defrag_plan());
  const auto with = report_of(migrated);
  EXPECT_EQ(obs::kRunReportVersion, 6);
  EXPECT_NE(with.find("\"migration\""), std::string::npos);
  EXPECT_NE(with.find("\"pairs_to_local\""), std::string::npos);
  const auto plain = mpi::run_job(
      config, mpi::JobBodyRegistry::instance().make(job.body, job.params));
  EXPECT_EQ(report_of(plain).find("\"migration\""), std::string::npos);
}

// ---- rebalancer policies ---------------------------------------------------

TEST(Rebalancer, EvacuateLeavesTheCrashyHost) {
  const topo::Cluster cluster(3, small_shape());
  sched::ClusterState state(cluster);
  auto job = ring_job(4, 4_KiB);
  job.ranks = 4;
  sched::Placement placement;
  placement.hosts.push_back({0, {0, 1}, {0, 1}});
  placement.hosts.push_back({1, {2, 3}, {0, 1}});
  state.claim(0, 2, job.id);
  state.claim(1, 2, job.id);
  const std::vector<int> crashes = {2, 0, 0};  // host 0 is flaky
  const sched::ElasticRebalancer rebalancer(migrate::MigrationPolicy::Evacuate,
                                            migrate::CostModel{});
  const auto decision =
      rebalancer.propose(job, placement, config_for(job, placement), state,
                         crashes, small_shape());
  ASSERT_TRUE(decision.proposed);
  EXPECT_EQ(decision.plan.move.src_host, 0);
  EXPECT_EQ(decision.plan.move.dst_phys_host, 1);  // crash-free job host
  // The reliability term (expected re-run avoided) makes evacuation pay.
  EXPECT_TRUE(decision.accepted);
}

TEST(Rebalancer, ColocateMovesTheTopTalkers) {
  const topo::Cluster cluster(2, small_shape());
  sched::ClusterState state(cluster);
  auto job = ring_job(4, 4_KiB);
  job.ranks = 4;
  // Explicit traffic hint: ranks 1 and 2 talk heavily across hosts.
  mpi::TrafficMatrix traffic(4, std::vector<double>(4, 0.0));
  traffic[1][2] = 100.0;
  job.traffic = traffic;
  sched::Placement placement;
  placement.hosts.push_back({0, {0, 1}, {0, 1}});
  placement.hosts.push_back({1, {2, 3}, {0, 1}});
  state.claim(0, 2, job.id);
  state.claim(1, 2, job.id);
  const sched::ElasticRebalancer rebalancer(migrate::MigrationPolicy::Colocate,
                                            migrate::CostModel{});
  const auto decision =
      rebalancer.propose(job, placement, config_for(job, placement), state,
                         {0, 0}, small_shape());
  ASSERT_TRUE(decision.proposed);
  // Rank 1's container {0,1} moves to rank 2's host.
  EXPECT_EQ(decision.plan.move.ranks, (std::vector<int>{0, 1}));
  EXPECT_EQ(decision.plan.move.dst_phys_host, 1);
}

TEST(Rebalancer, OffAndNativeJobsNeverPropose) {
  const topo::Cluster cluster(2, small_shape());
  sched::ClusterState state(cluster);
  auto job = ring_job(6, 4_KiB);
  const auto placement = two_host_placement();
  const auto config = config_for(job, placement);
  const sched::ElasticRebalancer off(migrate::MigrationPolicy::Off,
                                     migrate::CostModel{});
  EXPECT_FALSE(off.propose(job, placement, config, state, {0, 0},
                           small_shape()).proposed);
  const sched::ElasticRebalancer defrag(migrate::MigrationPolicy::Defrag,
                                        migrate::CostModel{});
  auto native = job;
  native.ranks_per_container = 0;  // native processes cannot migrate
  EXPECT_FALSE(defrag.propose(native, placement, config, state, {0, 0},
                              small_shape()).proposed);
}

// ---- coordinator -----------------------------------------------------------

TEST(MigrateCoordinator, FiresOncePerAttemptAtTheEpoch) {
  migrate::Coordinator coord(/*epoch=*/5.0);
  coord.begin_attempt(2);
  EXPECT_FALSE(coord.decide(1, 3.0));   // before the epoch
  EXPECT_TRUE(coord.decide(2, 6.0));    // first boundary past it
  EXPECT_TRUE(coord.decide(2, 6.0));    // memoized for the firing round
  coord.save(0, 2, 6.0, {1, 2, 3}, 0);
  EXPECT_FALSE(coord.fired());
  coord.save(1, 2, 6.0, {4}, 2);
  EXPECT_TRUE(coord.fired());
  EXPECT_EQ(coord.round(), 2);
  EXPECT_EQ(coord.at(), 6.0);
  EXPECT_EQ(coord.drained_pending(), 2u);
  EXPECT_FALSE(coord.decide(3, 9.0));   // never fires twice
  const auto state = coord.take_state();
  ASSERT_EQ(state.size(), 2u);
  EXPECT_EQ(state[0], (std::vector<std::uint8_t>{1, 2, 3}));
  // A new attempt (crash recovery re-runs the segment) resets everything.
  coord.begin_attempt(2);
  EXPECT_FALSE(coord.fired());
  EXPECT_TRUE(coord.decide(2, 6.0));
}

// ---- scheduler integration -------------------------------------------------

sched::SchedulerConfig spread_cluster(migrate::MigrationPolicy policy) {
  sched::SchedulerConfig config;
  config.cluster_hosts = 4;
  config.host_shape = small_shape();
  config.policy = sched::PlacementPolicy::Spread;
  config.seed = 42;
  config.migrate_policy = policy;
  return config;
}

std::vector<sched::JobSpec> fragmented_mix() {
  std::vector<sched::JobSpec> mix;
  for (int i = 0; i < 4; ++i) {
    auto job = ring_job(8, 16_KiB);
    job.id = -1;
    job.ranks = 6;
    job.submit_time = 20.0 * i;
    mix.push_back(job);
  }
  return mix;
}

std::string schedule_report(sched::Scheduler& scheduler) {
  obs::ReportContext ctx;
  ctx.app = "migrate_test";
  ctx.deployment = "4 hosts";
  ctx.policy = "spread";
  ctx.seed = 42;
  ctx.cluster = &scheduler.metrics();
  return obs::schedule_report_json(ctx, scheduler);
}

TEST(SchedulerMigration, DefragWinsBeatTheCostOnAFragmentedMix) {
  sched::Scheduler scheduler(spread_cluster(migrate::MigrationPolicy::Defrag));
  for (auto& job : fragmented_mix()) scheduler.submit(std::move(job));
  scheduler.run();
  const auto& metrics = scheduler.metrics();
  EXPECT_GE(metrics.migrations_proposed, 1);
  ASSERT_GE(metrics.migrations_executed, 1);
  // The acceptance shape: the gate only lets wins through, so the summed
  // predicted locality win exceeds the summed predicted cost.
  EXPECT_GT(metrics.migration_win_us, metrics.migration_cost_us);
  EXPECT_GT(metrics.migration_pause_us, 0.0);
  // Every job still completes — migrated jobs release both core sets.
  for (const auto& job : scheduler.jobs())
    EXPECT_EQ(job.outcome, sched::JobOutcome::Completed);
}

TEST(SchedulerMigration, ScheduleRerunsBitIdentically) {
  const auto run_once = [] {
    sched::Scheduler scheduler(
        spread_cluster(migrate::MigrationPolicy::Defrag));
    for (auto& job : fragmented_mix()) scheduler.submit(std::move(job));
    scheduler.run();
    return schedule_report(scheduler);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(SchedulerMigration, OffPolicyEmitsNoMigrationSection) {
  sched::Scheduler scheduler(spread_cluster(migrate::MigrationPolicy::Off));
  for (auto& job : fragmented_mix()) scheduler.submit(std::move(job));
  scheduler.run();
  EXPECT_EQ(scheduler.metrics().migrations_proposed, 0);
  EXPECT_EQ(schedule_report(scheduler).find("\"migration\""),
            std::string::npos);
}

}  // namespace
}  // namespace cbmpi
