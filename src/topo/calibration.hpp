// Calibrated machine profile.
//
// Every performance constant in the simulation lives here, in one struct, so
// that (a) the channel cost models are auditable against the paper's reported
// data points and (b) re-calibration is a one-file change.
//
// Calibration targets (from the paper, ConnectX-3 FDR / 2x E5-2670 testbed):
//   * 1 KiB intra-socket pt2pt latency: default (HCA loopback) 2.26 us,
//     optimized (SHM) 0.47 us, native 0.44 us                     [Sec. V-B]
//   * SHM beats HCA intra-host by up to 77 % (latency) / 111 % (bw) [Fig. 3]
//   * CMA beats SHM above ~8 KiB; loses below (syscall cost)       [Fig. 3]
//   * optimal SMP_EAGER_SIZE 8 K, SMPI_LENGTH_QUEUE 128 K,
//     MV2_IBA_EAGER_THRESHOLD 17 K                                 [Fig. 7]
//   * one-sided put bw at 4 B: 15.73 MB/s default vs 147.99 MB/s
//     optimized vs 155.47 MB/s native (~9.4x message-rate gap)     [Sec. V-B]
#pragma once

#include "common/units.hpp"

namespace cbmpi::topo {

struct MachineProfile {
  // --- memory subsystem -------------------------------------------------
  /// Large-copy bandwidth within a socket (B/us == MB/s decimal-ish).
  BytesPerMicro memcpy_bw_intra_socket = gb_per_s(6.0);
  /// Copy bandwidth crossing the QPI link between sockets.
  BytesPerMicro memcpy_bw_inter_socket = gb_per_s(4.2);
  /// Copies up to memcpy_cached_limit run this factor faster (L1/L2-resident).
  double memcpy_cached_boost = 1.85;
  Bytes memcpy_cached_limit = 8_KiB;
  /// Streaming double-copy traffic (both SHM copy sides share the memory
  /// bus) derates each side's bandwidth by this factor beyond the cached
  /// tier. This creates the sharp SHM/CMA crossover right above 8 KiB that
  /// makes SMP_EAGER_SIZE = 8 K optimal (Fig. 7a).
  double shm_bus_contention = 1.8;
  /// Extra fixed latency for any inter-socket cacheline ping.
  Micros inter_socket_hop = 0.12;
  /// Last-level-cache slice effectively available to one shared queue; queues
  /// larger than this start paying a cache-miss penalty on queue accesses.
  Bytes llc_friendly_bytes = 128_KiB;

  // --- SHM channel (double copy through a shared-memory length queue) ---
  /// Fixed cost of writing/reading one queue cell (pointer bump + flag).
  Micros shm_cell_overhead = 0.11;
  /// Fixed cost of one eager message dispatch (header write + match).
  Micros shm_base_latency = 0.10;
  /// Sender stall penalty factor when the queue has few cells: modelled as
  /// shm_stall_penalty / cells^2 per message (flow-control stalls collapse
  /// quickly once a handful of messages fit).
  Micros shm_stall_penalty = 1.6;
  /// Cache-miss derate per doubling beyond llc_friendly_bytes, applied to
  /// queue copies and per-cell bookkeeping alike.
  double shm_cache_derate = 0.25;
  /// Pipelining gain of the two copies of the double-copy protocol
  /// (1.0 = perfectly serial, 2.0 = perfectly overlapped).
  double shm_copy_overlap = 1.15;
  /// Per-message gap for back-to-back pipelined small ops (message rate).
  Micros shm_pipelined_gap = 0.026;

  // --- CMA channel (single copy via process_vm_readv/writev) ------------
  /// Syscall entry/exit plus page-pinning fixed cost, paid per transfer.
  Micros cma_syscall_overhead = 0.40;
  /// Fraction of memcpy bandwidth CMA achieves (page walk overhead).
  double cma_bw_fraction = 0.92;

  // --- HCA channel (InfiniBand verbs) ------------------------------------
  /// CPU cost of posting one work request.
  Micros hca_post_overhead = 0.30;
  /// Propagation through the NIC + wire one way (inter-host path).
  Micros hca_wire_latency = 0.85;
  /// Store-and-forward latency of the switch (inter-host path only).
  Micros hca_switch_latency = 0.10;
  /// NIC-internal loopback one-way latency (intra-host inter-container path:
  /// data still crosses PCIe down and back up).
  Micros hca_loopback_latency = 0.80;
  /// Effective FDR link bandwidth (56 Gbps minus encoding => ~6 GB/s; we use
  /// the commonly measured ~5.8 GB/s plateau).
  BytesPerMicro hca_link_bw = gb_per_s(5.8);
  /// Loopback effective bandwidth: the payload crosses PCIe twice through
  /// the same DMA engines, serially — so the per-message effective rate is
  /// well under half the link rate. Calibrated against the paper's Fig. 3c
  /// (SHM up to ~111 % higher bandwidth than HCA intra-host).
  BytesPerMicro hca_loopback_bw = gb_per_s(1.9);
  /// Receiver-side copy out of the eager ring into the user buffer.
  BytesPerMicro hca_eager_copy_bw = gb_per_s(5.0);
  /// Per-message gap for pipelined RDMA ops (message rate of one-sided ops).
  Micros hca_pipelined_gap = 0.245;
  /// Fixed per-message cost of the RTS/CTS rendezvous handshake, per trip
  /// (paid in full by an isolated rendezvous transfer).
  Micros hca_rndv_trip = 0.82;
  /// Back-to-back rendezvous transfers overlap their handshakes with the
  /// previous transfer; only this residue stays on the critical path.
  /// Calibrated so the eager/rendezvous throughput crossover sits near the
  /// paper's 17 K optimum for MV2_IBA_EAGER_THRESHOLD (Fig. 7c).
  Micros hca_rndv_pipeline_residue = 0.26;

  // --- memory registration (pin-down) -------------------------------------
  /// Fixed cost of one ibv_reg_mr call (syscall + driver descriptor setup).
  /// Only charged under the registration model (TuningParams::reg_model);
  /// the default model treats registration as free.
  Micros hca_reg_base = 1.2;
  /// Page-pinning throughput: registration cost grows linearly with buffer
  /// size. Calibrated below the FDR link rate so an unpipelined cold-cache
  /// rendezvous pays a significant pin-down tax (the MPICH2-over-IB
  /// observation that motivates the registration cache), while a chunked
  /// pipeline can hide most of it behind the RDMA of the previous chunk.
  BytesPerMicro hca_reg_bw = gb_per_s(8.0);
  /// Fixed cost of one ibv_dereg_mr call (cache eviction, transient unpin).
  Micros hca_dereg_base = 0.4;
  /// Page-unpinning throughput (cheaper than pinning: no page-table walk).
  BytesPerMicro hca_dereg_bw = gb_per_s(32.0);
  /// Pin-down cache hit: one hash lookup instead of a reg_mr call.
  Micros hca_reg_cache_hit = 0.05;

  // --- SR-IOV virtual functions (hypervisor mode) --------------------------
  /// Extra one-way latency when either endpoint reaches the HCA through an
  /// SR-IOV VF (interrupt remapping + VF doorbell path).
  Micros sriov_latency_overhead = 0.35;
  /// VF bandwidth efficiency relative to the physical function.
  double sriov_bw_derate = 0.92;

  // --- compute -----------------------------------------------------------
  /// Abstract work units per microsecond for application kernels.
  double compute_ops_per_micro = 2400.0;

  /// Profile mirroring the Chameleon Cloud testbed used in the paper.
  static MachineProfile chameleon_fdr() { return MachineProfile{}; }
};

}  // namespace cbmpi::topo
