// Machine: the cluster-wide simulated OS state.
//
// One HostOs per topo::Host carries that host's kernel-level state: root
// namespaces, hostname registry (per UTS namespace), shared-memory registry
// (per IPC namespace) and pid allocation. Machine owns all HostOs instances,
// the hardware description and the calibrated profile.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "osl/namespaces.hpp"
#include "osl/shm.hpp"
#include "topo/calibration.hpp"
#include "topo/hardware.hpp"

namespace cbmpi::osl {

using Pid = std::uint64_t;

class Machine;

class HostOs {
 public:
  HostOs(Machine& machine, const topo::Host& host);

  HostOs(const HostOs&) = delete;
  HostOs& operator=(const HostOs&) = delete;

  topo::HostId id() const { return host_->id(); }
  const topo::Host& hardware() const { return *host_; }
  const topo::MachineProfile& profile() const;
  Machine& machine() { return *machine_; }

  /// The namespaces of processes running directly on the host (no container).
  const NamespaceSet& root_namespaces() const { return root_ns_; }

  /// Creates a fresh namespace of the given type on this host.
  NamespaceId make_namespace(NamespaceType type);

  /// The host's inter-VM shared-memory device (IVSHMEM): a PCI BAR the
  /// hypervisor can map into every co-resident guest. Modelled as one extra
  /// IPC namespace per host, lazily created. Guests that attach the device
  /// can open shared segments in it (but still have private PID namespaces,
  /// so CMA remains impossible across VMs).
  NamespaceId ivshmem_namespace();

  /// Hostname as seen from a UTS namespace (sethostname/gethostname pair).
  void set_hostname(NamespaceId uts_ns, std::string name);
  std::string hostname(NamespaceId uts_ns) const;

  SharedMemoryManager& shm() { return shm_; }

  Pid allocate_pid();

 private:
  Machine* machine_;
  const topo::Host* host_;
  NamespaceSet root_ns_;
  SharedMemoryManager shm_;
  std::atomic<Pid> next_pid_{2};  // pid 1 is the host's init

  std::mutex ivshmem_mutex_;
  std::optional<NamespaceId> ivshmem_ns_;

  mutable std::mutex hostnames_mutex_;
  std::map<std::uint64_t, std::string> hostnames_;  // uts ns id -> hostname
};

class Machine {
 public:
  Machine(topo::Cluster cluster,
          topo::MachineProfile profile = topo::MachineProfile::chameleon_fdr());

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  const topo::Cluster& cluster() const { return cluster_; }
  const topo::MachineProfile& profile() const { return profile_; }

  HostOs& host_os(topo::HostId id);
  const HostOs& host_os(topo::HostId id) const;
  int num_hosts() const { return cluster_.num_hosts(); }

  /// Globally-unique namespace id allocation (namespace ids never collide
  /// across hosts, mirroring inode-backed namespace identity on Linux).
  NamespaceId allocate_namespace_id();

 private:
  topo::Cluster cluster_;
  topo::MachineProfile profile_;
  std::atomic<std::uint64_t> next_ns_id_{1};
  std::vector<std::unique_ptr<HostOs>> hosts_;
};

}  // namespace cbmpi::osl
