#!/usr/bin/env python3
"""Documentation consistency checks, run by the CI `docs` job.

1. Every relative markdown link in the core docs resolves to an existing
   file (anchors and external http(s)/mailto links are skipped).
2. Every directory under src/ is documented in docs/ARCHITECTURE.md.

Exit status is the number of problems found; each problem is printed as
`file: message` so editors can jump to it.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DOCS = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "docs/ARCHITECTURE.md",
]

# [text](target) — excludes images' leading "!" handling (images are links
# to files too, so check them the same way).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_FENCE_RE = re.compile(r"^\s*(```|~~~)")


def strip_code_blocks(lines):
    """Yields (lineno, line) for lines outside fenced code blocks."""
    in_fence = False
    for lineno, line in enumerate(lines, start=1):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if not in_fence:
            yield lineno, line


def check_links(doc, problems):
    path = os.path.join(REPO, doc)
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()
    for lineno, line in strip_code_blocks(lines):
        for target in LINK_RE.findall(line):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            rel = target.split("#", 1)[0]  # drop in-page anchor
            if not rel:
                continue
            resolved = os.path.normpath(os.path.join(os.path.dirname(path), rel))
            if not os.path.exists(resolved):
                problems.append(f"{doc}:{lineno}: broken link '{target}'")


def check_architecture_covers_src(problems):
    arch_doc = "docs/ARCHITECTURE.md"
    with open(os.path.join(REPO, arch_doc), encoding="utf-8") as f:
        arch = f.read()
    src = os.path.join(REPO, "src")
    for entry in sorted(os.listdir(src)):
        if not os.path.isdir(os.path.join(src, entry)):
            continue
        if not re.search(rf"src/{re.escape(entry)}\b", arch):
            problems.append(
                f"{arch_doc}: src/{entry} is not documented "
                f"(expected a 'src/{entry}' mention)")


def main():
    problems = []
    for doc in DOCS:
        if not os.path.exists(os.path.join(REPO, doc)):
            problems.append(f"{doc}: missing (listed in tools/check_docs.py)")
            continue
        check_links(doc, problems)
    check_architecture_covers_src(problems)
    for problem in problems:
        print(problem)
    if not problems:
        print(f"docs OK: {len(DOCS)} files, all links resolve, "
              "all src/ subsystems documented")
    return len(problems)


if __name__ == "__main__":
    sys.exit(main())
