#include "mpi/coll/types.hpp"

#include <array>

namespace cbmpi::coll {

const char* to_string(Coll coll) {
  switch (coll) {
    case Coll::Barrier: return "barrier";
    case Coll::Bcast: return "bcast";
    case Coll::Reduce: return "reduce";
    case Coll::Allreduce: return "allreduce";
    case Coll::Allgather: return "allgather";
    case Coll::Alltoall: return "alltoall";
    case Coll::Count_: break;
  }
  return "?";
}

const char* to_string(Algo algo) {
  switch (algo) {
    case Algo::Auto: return "auto";
    case Algo::TwoLevel: return "two_level";
    case Algo::Dissemination: return "dissemination";
    case Algo::FlatTree: return "flat_tree";
    case Algo::Binomial: return "binomial";
    case Algo::VanDeGeijn: return "vandegeijn";
    case Algo::RecursiveDoubling: return "recursive_doubling";
    case Algo::Rabenseifner: return "rabenseifner";
    case Algo::ReduceBcast: return "reduce_bcast";
    case Algo::Ring: return "ring";
    case Algo::GatherBcast: return "gather_bcast";
    case Algo::Pairwise: return "pairwise";
    case Algo::Bruck: return "bruck";
    case Algo::Spread: return "spread";
    case Algo::Count_: break;
  }
  return "?";
}

std::optional<Coll> parse_coll(std::string_view token) {
  for (std::size_t i = 0; i < kColls; ++i) {
    const auto coll = static_cast<Coll>(i);
    if (token == to_string(coll)) return coll;
  }
  return std::nullopt;
}

std::optional<Algo> parse_algo(std::string_view token) {
  for (std::size_t i = 0; i < kAlgos; ++i) {
    const auto algo = static_cast<Algo>(i);
    if (token == to_string(algo)) return algo;
  }
  return std::nullopt;
}

namespace {

constexpr std::array kBarrierAlgos{Algo::Auto, Algo::TwoLevel,
                                   Algo::Dissemination, Algo::FlatTree};
constexpr std::array kBcastAlgos{Algo::Auto, Algo::TwoLevel, Algo::Binomial,
                                 Algo::FlatTree, Algo::VanDeGeijn};
constexpr std::array kReduceAlgos{Algo::Auto, Algo::TwoLevel, Algo::Binomial,
                                  Algo::FlatTree};
constexpr std::array kAllreduceAlgos{Algo::Auto, Algo::TwoLevel,
                                     Algo::RecursiveDoubling, Algo::Rabenseifner,
                                     Algo::ReduceBcast};
constexpr std::array kAllgatherAlgos{Algo::Auto, Algo::TwoLevel, Algo::Ring,
                                     Algo::GatherBcast};
constexpr std::array kAlltoallAlgos{Algo::Auto, Algo::Pairwise, Algo::Bruck,
                                    Algo::Spread};

}  // namespace

std::span<const Algo> algorithms_for(Coll coll) {
  switch (coll) {
    case Coll::Barrier: return kBarrierAlgos;
    case Coll::Bcast: return kBcastAlgos;
    case Coll::Reduce: return kReduceAlgos;
    case Coll::Allreduce: return kAllreduceAlgos;
    case Coll::Allgather: return kAllgatherAlgos;
    case Coll::Alltoall: return kAlltoallAlgos;
    case Coll::Count_: break;
  }
  return {};
}

bool valid_for(Coll coll, Algo algo) {
  for (const Algo a : algorithms_for(coll))
    if (a == algo) return true;
  return false;
}

const char* env_var_for(Coll coll) {
  switch (coll) {
    case Coll::Barrier: return "CBMPI_BARRIER_ALGORITHM";
    case Coll::Bcast: return "CBMPI_BCAST_ALGORITHM";
    case Coll::Reduce: return "CBMPI_REDUCE_ALGORITHM";
    case Coll::Allreduce: return "CBMPI_ALLREDUCE_ALGORITHM";
    case Coll::Allgather: return "CBMPI_ALLGATHER_ALGORITHM";
    case Coll::Alltoall: return "CBMPI_ALLTOALL_ALGORITHM";
    case Coll::Count_: break;
  }
  return "";
}

}  // namespace cbmpi::coll
