// ASCII table writer: the bench harnesses print paper-style rows/series with
// it so EXPERIMENTS.md can quote output verbatim.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace cbmpi {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);

  /// Renders with column alignment; first column left-aligned, rest right.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cbmpi
