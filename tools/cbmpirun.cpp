// cbmpirun — the mpirun-like front end for the simulated cluster.
//
// Launches any bundled application under a fully described deployment, e.g.:
//
//   cbmpirun --app=graph500 --hosts=4 --containers-per-host=4
//            --procs-per-host=8 --policy=aware --scale=15
//   cbmpirun --app=cg --hosts=2 --procs-per-host=8 --policy=default
//            --isolation=vm --ivshmem
//   cbmpirun --app=osu-latency --containers-per-host=2 --procs-per-host=2
//
// Prints the application's own result plus the job's mpiP-style profile, so
// it doubles as the interactive exploration tool for the whole system.
#include <cstdio>
#include <iostream>
#include <map>
#include <string>

#include "apps/graph500/bfs.hpp"
#include "apps/graph500/validate.hpp"
#include "apps/npb/npb.hpp"
#include "apps/osu/microbench.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "mpi/runtime.hpp"

namespace {

using namespace cbmpi;

struct LaunchPlan {
  mpi::JobConfig config;
  std::string app;
  int scale = 13;
  Bytes message_size = 1_KiB;
  int iterations = 10;
  bool show_profile = false;
};

int run_graph500(const LaunchPlan& plan) {
  const apps::graph500::EdgeListParams params{plan.scale, 16, plan.config.seed};
  const auto roots = apps::graph500::choose_roots(params, 2);
  bool ok = true;
  const auto result = mpi::run_job(plan.config, [&](mpi::Process& p) {
    const auto graph = apps::graph500::build_graph(p, params);
    for (const auto root : roots) {
      const auto bfs = apps::graph500::run_bfs(p, graph, root);
      const auto report = apps::graph500::validate_bfs(p, graph, bfs);
      if (p.rank() == 0) {
        std::printf("BFS root %llu: %llu vertices, %d levels, %.3f ms — %s\n",
                    static_cast<unsigned long long>(root),
                    static_cast<unsigned long long>(bfs.visited), bfs.levels,
                    to_millis(bfs.time), report.ok ? "VALID" : "INVALID");
        ok = ok && report.ok;
      }
    }
  });
  if (plan.show_profile) std::fputs(result.profile.report().c_str(), stdout);
  std::printf("job virtual time: %.3f ms\n", to_millis(result.job_time));
  return ok ? 0 : 1;
}

int run_npb(const LaunchPlan& plan) {
  apps::npb::KernelResult kernel_result;
  const auto result = mpi::run_job(plan.config, [&](mpi::Process& p) {
    apps::npb::KernelResult r;
    const int nranks = p.size();
    if (plan.app == "ep") {
      r = apps::npb::run_ep(p);
    } else if (plan.app == "cg") {
      apps::npb::CgParams params;
      params.grid = std::max(64, nranks);
      r = apps::npb::run_cg(p, params);
    } else if (plan.app == "mg") {
      apps::npb::MgParams params;
      params.nz = std::max(32, 2 * nranks);
      r = apps::npb::run_mg(p, params);
    } else if (plan.app == "ft") {
      apps::npb::FtParams params;
      params.nx = params.nz = std::max(32, nranks);
      params.ny = 8;
      r = apps::npb::run_ft(p, params);
    } else if (plan.app == "lu") {
      apps::npb::LuParams params;
      params.grid = std::max(32, nranks * 4);
      r = apps::npb::run_lu(p, params);
    } else if (plan.app == "is") {
      r = apps::npb::run_is(p);
    }
    if (p.rank() == 0) kernel_result = r;
  });
  std::printf("%s: %.3f ms, checksum %.6g — %s\n", kernel_result.name.c_str(),
              to_millis(kernel_result.time), kernel_result.checksum,
              kernel_result.verified ? "VERIFIED" : "FAILED");
  if (plan.show_profile) std::fputs(result.profile.report().c_str(), stdout);
  return kernel_result.verified ? 0 : 1;
}

int run_osu(const LaunchPlan& plan) {
  double value = 0.0;
  mpi::run_job(plan.config, [&](mpi::Process& p) {
    apps::osu::PairOptions osu_opts;
    osu_opts.iterations = plan.iterations;
    double v = 0.0;
    if (plan.app == "osu-latency")
      v = apps::osu::pt2pt_latency(p, plan.message_size, osu_opts);
    else if (plan.app == "osu-bw")
      v = apps::osu::pt2pt_bandwidth(p, plan.message_size, osu_opts);
    else if (plan.app == "osu-allreduce")
      v = apps::osu::collective_latency(p, apps::osu::Collective::Allreduce,
                                        plan.message_size, osu_opts);
    if (p.rank() == 0) value = v;
  });
  const char* unit = plan.app == "osu-bw" ? "MB/s" : "us";
  std::printf("%s @ %s: %.3f %s\n", plan.app.c_str(),
              format_size(plan.message_size).c_str(), value, unit);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  LaunchPlan plan;

  plan.app = opts.get("app", "graph500",
                      "graph500 | ep | cg | mg | ft | lu | is | osu-latency | "
                      "osu-bw | osu-allreduce");
  const int hosts = static_cast<int>(opts.get_int("hosts", 1, "number of hosts"));
  const int containers = static_cast<int>(
      opts.get_int("containers-per-host", 2, "containers per host (0 = native)"));
  const int procs = static_cast<int>(
      opts.get_int("procs-per-host", 8, "MPI processes per host"));
  const std::string policy =
      opts.get("policy", "aware", "aware (proposed) | default (hostname-based)");
  const std::string isolation =
      opts.get("isolation", "container", "container | vm");
  const bool ivshmem = opts.get_flag("ivshmem", "attach IVSHMEM (vm only)");
  const bool no_ipc = opts.get_flag("no-ipc-sharing", "drop --ipc=host");
  const bool no_pid = opts.get_flag("no-pid-sharing", "drop --pid=host");
  const bool no_cma = opts.get_flag("no-cma", "disable the CMA channel");
  const bool flat = opts.get_flag("flat-collectives", "disable 2-level collectives");
  plan.scale = static_cast<int>(opts.get_int("scale", 13, "graph500 scale"));
  plan.message_size = static_cast<Bytes>(
      opts.get_int("message-size", 1024, "osu-* message size in bytes"));
  plan.iterations = static_cast<int>(opts.get_int("iters", 10, "osu-* iterations"));
  plan.config.seed = static_cast<std::uint64_t>(opts.get_int("seed", 42, "job seed"));
  plan.show_profile = opts.get_flag("profile", "print the mpiP-style profile");
  if (opts.finish("cbmpirun — launch an application on the simulated "
                  "container/VM cluster"))
    return 0;

  if (containers == 0) {
    plan.config.deployment = container::DeploymentSpec::native_hosts(hosts, procs);
  } else if (isolation == "vm") {
    plan.config.deployment =
        container::DeploymentSpec::virtual_machines(hosts, containers, procs, ivshmem);
  } else {
    plan.config.deployment =
        container::DeploymentSpec::containers(hosts, containers, procs);
    plan.config.deployment.share_host_ipc = !no_ipc;
    plan.config.deployment.share_host_pid = !no_pid;
  }
  plan.config.policy = policy == "default" ? fabric::LocalityPolicy::HostnameBased
                                           : fabric::LocalityPolicy::ContainerAware;
  plan.config.tuning.use_cma = !no_cma;
  plan.config.tuning.two_level_collectives = !flat;

  std::printf("cbmpirun: %s on %s, %d ranks, %s runtime\n", plan.app.c_str(),
              plan.config.deployment.label().c_str(),
              plan.config.deployment.total_ranks(),
              policy == "default" ? "default (hostname-based)"
                                  : "locality-aware (proposed)");

  if (plan.app == "graph500") return run_graph500(plan);
  if (plan.app == "ep" || plan.app == "cg" || plan.app == "mg" ||
      plan.app == "ft" || plan.app == "lu" || plan.app == "is")
    return run_npb(plan);
  if (plan.app.rfind("osu-", 0) == 0) return run_osu(plan);
  std::fprintf(stderr, "unknown --app '%s'; try --help\n", plan.app.c_str());
  return 2;
}
