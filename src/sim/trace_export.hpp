// Chrome-trace (chrome://tracing / Perfetto) export of recorded trace events.
//
// Usage:
//   config.record_trace = true;
//   auto result = mpi::run_job(config, body);
//   std::ofstream("job.json") << sim::to_chrome_trace(result.trace);
// then load job.json in chrome://tracing or ui.perfetto.dev. Each rank
// appears as a process row; protocol events are instant events ("ph":"i")
// at their virtual timestamps. For the richer duration-span export that
// combines these instants with obs::Span duration tracks, see
// obs::to_perfetto (obs/report.hpp) — it reuses append_chrome_events so the
// two documents render the instant events identically.
#pragma once

#include <ostream>
#include <span>
#include <string>

#include "sim/trace.hpp"

namespace cbmpi::sim {

/// Renders events as a Chrome Trace Event Format JSON array document.
std::string to_chrome_trace(std::span<const TraceEvent> events);

/// Appends the instant-event objects for `events` to an open traceEvents
/// array: comma-separated, `first` tracking whether a separator is needed
/// (shared between this and any objects the caller already wrote). All
/// strings are fully JSON-escaped, including control characters.
void append_chrome_events(std::ostream& os, std::span<const TraceEvent> events,
                          bool& first);

}  // namespace cbmpi::sim
