// Job-scoped metrics registry: named counters, gauges and log2-bucketed
// histograms, sampled in *virtual* time so reruns with the same seed are
// bit-identical.
//
// Concurrency model: many rank threads bump the same instrument
// concurrently. Counters and histograms only ever *add* unsigned integers
// (addition commutes, so the final totals are independent of thread
// interleaving); gauges are set from one thread (usually the runtime at job
// end) or via a monotone max. Instrument lookup takes a mutex — hot paths
// resolve their instruments once (e.g. at engine construction) and keep the
// returned references, which stay valid for the registry's lifetime.
//
// A null registry pointer means "observability off"; every instrumentation
// site guards on that, so disabled jobs pay nothing.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cbmpi::obs {

class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A last-write-wins (or monotone-max) double. Meant for end-of-job summary
/// values (virtual makespan, utilization), not for cross-thread accumulation
/// — double addition does not commute bit-exactly.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void max(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

struct HistogramSnapshot {
  struct Bucket {
    std::uint64_t upper = 0;  ///< largest value this bucket holds (inclusive)
    std::uint64_t count = 0;
  };
  std::uint64_t count = 0;  ///< total observations
  std::uint64_t sum = 0;    ///< sum of observed values
  std::vector<Bucket> buckets;  ///< non-empty buckets, ascending upper bound

  /// Quantile estimate from the log2 buckets: the inclusive upper bound of
  /// the first bucket whose cumulative count reaches ceil(q * count). An
  /// upper bound (within 2x of the true value), monotone in q, and a pure
  /// function of the snapshot — so reports stay byte-identical. 0 when the
  /// histogram is empty.
  std::uint64_t percentile(double q) const;
};

/// Power-of-two histogram over unsigned values (message sizes, queue
/// depths): bucket 0 holds value 0, bucket i >= 1 holds [2^(i-1), 2^i - 1].
class Histogram {
 public:
  void observe(std::uint64_t value) {
    buckets_[static_cast<std::size_t>(bucket_of(value))].fetch_add(
        1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  HistogramSnapshot snapshot() const;

  /// 0 for 0, otherwise std::bit_width (1 + floor(log2 v)).
  static int bucket_of(std::uint64_t value) {
    return static_cast<int>(std::bit_width(value));
  }
  /// Inclusive upper bound of bucket i.
  static std::uint64_t bucket_upper(int index);

  static constexpr int kBuckets = 65;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
};

/// Snapshot of a whole registry, sorted by instrument name — the
/// deterministic form every exporter serializes.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

class MetricsRegistry {
 public:
  /// Finds or creates; the returned reference stays valid for the
  /// registry's lifetime. A name identifies exactly one instrument kind —
  /// asking for a counter named like an existing gauge throws.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  MetricsSnapshot snapshot() const;

 private:
  struct Instrument {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Instrument> instruments_;
};

}  // namespace cbmpi::obs
