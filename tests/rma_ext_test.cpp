// Tests for passive-target RMA (lock/unlock), one-sided atomics
// (fetch_and_add, compare_and_swap), and the request-set / probe additions.
#include <gtest/gtest.h>

#include "mpi/runtime.hpp"
#include "mpi/window.hpp"

namespace cbmpi {
namespace {

using container::DeploymentSpec;
using fabric::LocalityPolicy;
using mpi::JobConfig;
using mpi::LockKind;

JobConfig cfg(int ranks = 4) {
  JobConfig config;
  config.deployment = DeploymentSpec::containers(1, 2, ranks);
  config.policy = LocalityPolicy::ContainerAware;
  return config;
}

TEST(RmaPassive, LockPutUnlockVisibleAfterBarrier) {
  mpi::run_job(cfg(2), [](mpi::Process& p) {
    std::vector<std::int64_t> memory(8, 0);
    mpi::Window<std::int64_t> window(p.world(), std::span<std::int64_t>(memory));
    if (p.rank() == 0) {
      window.lock(LockKind::Exclusive, 1);
      const std::int64_t v = 99;
      window.put(std::span<const std::int64_t>(&v, 1), 1, 3);
      window.unlock(1);
    }
    p.world().barrier();
    if (p.rank() == 1) {
      EXPECT_EQ(memory[3], 99);
    }
    p.world().barrier();
  });
}

TEST(RmaPassive, DoubleLockThrows) {
  EXPECT_THROW(mpi::run_job(cfg(2),
                            [](mpi::Process& p) {
                              std::vector<int> memory(4);
                              mpi::Window<int> window(p.world(),
                                                      std::span<int>(memory));
                              if (p.rank() == 0) {
                                window.lock(LockKind::Shared, 1);
                                window.lock(LockKind::Shared, 1);
                              } else {
                                p.world().barrier();
                              }
                            }),
               Error);
}

TEST(RmaPassive, UnlockWithoutLockThrows) {
  EXPECT_THROW(mpi::run_job(cfg(2),
                            [](mpi::Process& p) {
                              std::vector<int> memory(4);
                              mpi::Window<int> window(p.world(),
                                                      std::span<int>(memory));
                              if (p.rank() == 0)
                                window.unlock(1);
                              else
                                p.world().barrier();
                            }),
               Error);
}

TEST(RmaAtomics, FetchAndAddIsGloballyAtomic) {
  mpi::run_job(cfg(4), [](mpi::Process& p) {
    std::vector<std::int64_t> memory(2, 0);
    mpi::Window<std::int64_t> window(p.world(), std::span<std::int64_t>(memory));
    window.fence();
    // Every rank increments a shared counter on rank 0 many times; the set
    // of fetched "before" values must be exactly {0..4*25-1} with no dupes.
    std::vector<std::int64_t> fetched;
    for (int i = 0; i < 25; ++i) fetched.push_back(window.fetch_and_add(0, 1, 1));
    window.fence();
    if (p.rank() == 0) {
      EXPECT_EQ(memory[1], 100);
    }
    // Local monotonicity of my own fetches.
    for (std::size_t i = 1; i < fetched.size(); ++i)
      EXPECT_GT(fetched[i], fetched[i - 1]);
    // Global uniqueness: gather all fetched values.
    std::vector<std::int64_t> all(100);
    p.world().allgather(std::span<const std::int64_t>(fetched),
                        std::span<std::int64_t>(all));
    std::sort(all.begin(), all.end());
    for (std::int64_t k = 0; k < 100; ++k)
      EXPECT_EQ(all[static_cast<std::size_t>(k)], k) << "duplicate or gap";
    window.fence();
  });
}

TEST(RmaAtomics, CompareAndSwapElectsOneWinner) {
  mpi::run_job(cfg(4), [](mpi::Process& p) {
    std::vector<std::int32_t> memory(1, -1);
    mpi::Window<std::int32_t> window(p.world(), std::span<std::int32_t>(memory));
    window.fence();
    const std::int32_t before = window.compare_and_swap(0, 0, -1, p.rank());
    const int won = before == -1 ? 1 : 0;
    window.fence();
    const auto winners = p.world().allreduce_value(won, mpi::ReduceOp::Sum);
    EXPECT_EQ(winners, 1) << "exactly one rank must win the election";
    if (p.rank() == 0) {
      EXPECT_GE(memory[0], 0);
      EXPECT_LT(memory[0], 4);
    }
    window.fence();
  });
}

TEST(RequestSets, WaitAnyReturnsACompletedIndex) {
  mpi::run_job(cfg(2), [](mpi::Process& p) {
    if (p.rank() == 0) {
      p.compute(5000.0);  // delay so receiver genuinely waits
      p.world().send_value<int>(7, 1, 2);
    } else {
      int a = 0, b = 0;
      std::vector<mpi::Request> reqs;
      reqs.push_back(p.world().irecv(std::span<int>(&a, 1), 0, 1));  // never sent
      reqs.push_back(p.world().irecv(std::span<int>(&b, 1), 0, 2));
      const std::size_t index = p.world().wait_any(reqs);
      EXPECT_EQ(index, 1u);
      EXPECT_EQ(b, 7);
      p.world().cancel(reqs[0]);
    }
  });
}

TEST(RequestSets, TestAllAndTestAny) {
  mpi::run_job(cfg(2), [](mpi::Process& p) {
    if (p.rank() == 0) {
      p.world().send_value<int>(1, 1, 11);
      p.world().send_value<int>(2, 1, 12);
      p.world().barrier();
    } else {
      int a = 0, b = 0;
      std::vector<mpi::Request> reqs;
      reqs.push_back(p.world().irecv(std::span<int>(&a, 1), 0, 11));
      reqs.push_back(p.world().irecv(std::span<int>(&b, 1), 0, 12));
      p.world().barrier();  // both messages now delivered
      EXPECT_TRUE(p.world().test_any(reqs).has_value());
      EXPECT_TRUE(p.world().test_all(reqs));
      EXPECT_EQ(a + b, 3);
    }
  });
}

TEST(RequestSets, BlockingProbeWaitsForMessage) {
  mpi::run_job(cfg(2), [](mpi::Process& p) {
    if (p.rank() == 0) {
      p.compute(2000.0);
      std::vector<double> payload(37, 1.5);
      p.world().send(std::span<const double>(payload), 1, 8);
    } else {
      const auto status = p.world().probe(0, 8);
      EXPECT_EQ(status.source, 0);
      EXPECT_EQ(status.count<double>(), 37u);
      // Size the receive from the probe, like real MPI code does.
      std::vector<double> payload(status.count<double>());
      p.world().recv(std::span<double>(payload), 0, 8);
      EXPECT_DOUBLE_EQ(payload[36], 1.5);
    }
  });
}

}  // namespace
}  // namespace cbmpi
