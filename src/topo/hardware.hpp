// Simulated cluster hardware: hosts with sockets/cores and an InfiniBand HCA,
// connected by a single switch (the paper's testbed: 16 Chameleon nodes,
// 2-socket E5-2670, ConnectX-3 FDR).
//
// This module is pure description — cost numbers live in calibration.hpp and
// behaviour lives in osl/fabric.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace cbmpi::topo {

using HostId = int;

/// A core location within a host.
struct CoreId {
  int socket = 0;
  int core = 0;  ///< index within the socket

  friend bool operator==(const CoreId&, const CoreId&) = default;
};

struct HostShape {
  int sockets = 2;
  int cores_per_socket = 12;
  bool has_hca = true;

  int total_cores() const { return sockets * cores_per_socket; }
};

class Host {
 public:
  Host(HostId id, std::string name, HostShape shape)
      : id_(id), name_(std::move(name)), shape_(shape) {}

  HostId id() const { return id_; }
  const std::string& name() const { return name_; }
  const HostShape& shape() const { return shape_; }

  /// Maps a flat core index [0, total_cores) to (socket, core).
  CoreId core_at(int flat_index) const {
    CBMPI_REQUIRE(flat_index >= 0 && flat_index < shape_.total_cores(),
                  "core index ", flat_index, " out of range on ", name_);
    return CoreId{flat_index / shape_.cores_per_socket,
                  flat_index % shape_.cores_per_socket};
  }

 private:
  HostId id_;
  std::string name_;
  HostShape shape_;
};

/// A flat cluster of identical hosts behind one switch.
class Cluster {
 public:
  Cluster(int num_hosts, HostShape shape);

  int num_hosts() const { return static_cast<int>(hosts_.size()); }
  const Host& host(HostId id) const;
  const std::vector<Host>& hosts() const { return hosts_; }

 private:
  std::vector<Host> hosts_;
};

/// Builder mirroring the paper's testbed by default.
class ClusterBuilder {
 public:
  ClusterBuilder& hosts(int n);
  ClusterBuilder& sockets(int n);
  ClusterBuilder& cores_per_socket(int n);
  ClusterBuilder& hca(bool present);

  Cluster build() const;

 private:
  int num_hosts_ = 16;
  HostShape shape_{};
};

}  // namespace cbmpi::topo
