// Cross Memory Attach (process_vm_readv / process_vm_writev emulation).
//
// A destination process copies memory directly from a source process's
// address space in a single copy. The kernel permits this only when the
// caller can address the target pid — across containers that requires a
// shared PID namespace (and same host, obviously). The *cost* of the syscall
// is modelled by the CMA channel; this module performs the actual data move
// and the permission check.
#pragma once

#include <span>

#include "osl/process.hpp"

namespace cbmpi::osl::cma {

enum class Result {
  Ok,
  PermissionDenied,  ///< EPERM: target not addressable (different PID ns)
  RemoteHost,        ///< ESRCH: pid does not exist on the caller's host
};

const char* to_string(Result result);

/// Is CMA possible between these two processes at all?
Result check(const SimProcess& caller, const SimProcess& target);

/// process_vm_readv: copies from `src` (in `target`'s address space) into
/// `dst` (in `caller`'s). Sizes must match.
Result read(const SimProcess& caller, const SimProcess& target,
            std::span<std::byte> dst, std::span<const std::byte> src);

/// process_vm_writev: copies from `src` (caller) into `dst` (target).
Result write(const SimProcess& caller, const SimProcess& target,
             std::span<const std::byte> src, std::span<std::byte> dst);

}  // namespace cbmpi::osl::cma
