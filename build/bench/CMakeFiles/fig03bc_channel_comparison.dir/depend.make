# Empty dependencies file for fig03bc_channel_comparison.
# This may be replaced when dependencies are built.
