
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/graph500/bfs.cpp" "src/CMakeFiles/cbmpi.dir/apps/graph500/bfs.cpp.o" "gcc" "src/CMakeFiles/cbmpi.dir/apps/graph500/bfs.cpp.o.d"
  "/root/repo/src/apps/graph500/graph.cpp" "src/CMakeFiles/cbmpi.dir/apps/graph500/graph.cpp.o" "gcc" "src/CMakeFiles/cbmpi.dir/apps/graph500/graph.cpp.o.d"
  "/root/repo/src/apps/graph500/kronecker.cpp" "src/CMakeFiles/cbmpi.dir/apps/graph500/kronecker.cpp.o" "gcc" "src/CMakeFiles/cbmpi.dir/apps/graph500/kronecker.cpp.o.d"
  "/root/repo/src/apps/graph500/validate.cpp" "src/CMakeFiles/cbmpi.dir/apps/graph500/validate.cpp.o" "gcc" "src/CMakeFiles/cbmpi.dir/apps/graph500/validate.cpp.o.d"
  "/root/repo/src/apps/npb/cg.cpp" "src/CMakeFiles/cbmpi.dir/apps/npb/cg.cpp.o" "gcc" "src/CMakeFiles/cbmpi.dir/apps/npb/cg.cpp.o.d"
  "/root/repo/src/apps/npb/ep.cpp" "src/CMakeFiles/cbmpi.dir/apps/npb/ep.cpp.o" "gcc" "src/CMakeFiles/cbmpi.dir/apps/npb/ep.cpp.o.d"
  "/root/repo/src/apps/npb/ft.cpp" "src/CMakeFiles/cbmpi.dir/apps/npb/ft.cpp.o" "gcc" "src/CMakeFiles/cbmpi.dir/apps/npb/ft.cpp.o.d"
  "/root/repo/src/apps/npb/is.cpp" "src/CMakeFiles/cbmpi.dir/apps/npb/is.cpp.o" "gcc" "src/CMakeFiles/cbmpi.dir/apps/npb/is.cpp.o.d"
  "/root/repo/src/apps/npb/lu.cpp" "src/CMakeFiles/cbmpi.dir/apps/npb/lu.cpp.o" "gcc" "src/CMakeFiles/cbmpi.dir/apps/npb/lu.cpp.o.d"
  "/root/repo/src/apps/npb/mg.cpp" "src/CMakeFiles/cbmpi.dir/apps/npb/mg.cpp.o" "gcc" "src/CMakeFiles/cbmpi.dir/apps/npb/mg.cpp.o.d"
  "/root/repo/src/apps/osu/microbench.cpp" "src/CMakeFiles/cbmpi.dir/apps/osu/microbench.cpp.o" "gcc" "src/CMakeFiles/cbmpi.dir/apps/osu/microbench.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/CMakeFiles/cbmpi.dir/common/log.cpp.o" "gcc" "src/CMakeFiles/cbmpi.dir/common/log.cpp.o.d"
  "/root/repo/src/common/options.cpp" "src/CMakeFiles/cbmpi.dir/common/options.cpp.o" "gcc" "src/CMakeFiles/cbmpi.dir/common/options.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/cbmpi.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/cbmpi.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/cbmpi.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/cbmpi.dir/common/stats.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/CMakeFiles/cbmpi.dir/common/table.cpp.o" "gcc" "src/CMakeFiles/cbmpi.dir/common/table.cpp.o.d"
  "/root/repo/src/container/container.cpp" "src/CMakeFiles/cbmpi.dir/container/container.cpp.o" "gcc" "src/CMakeFiles/cbmpi.dir/container/container.cpp.o.d"
  "/root/repo/src/container/deployment.cpp" "src/CMakeFiles/cbmpi.dir/container/deployment.cpp.o" "gcc" "src/CMakeFiles/cbmpi.dir/container/deployment.cpp.o.d"
  "/root/repo/src/container/engine.cpp" "src/CMakeFiles/cbmpi.dir/container/engine.cpp.o" "gcc" "src/CMakeFiles/cbmpi.dir/container/engine.cpp.o.d"
  "/root/repo/src/fabric/cma_channel.cpp" "src/CMakeFiles/cbmpi.dir/fabric/cma_channel.cpp.o" "gcc" "src/CMakeFiles/cbmpi.dir/fabric/cma_channel.cpp.o.d"
  "/root/repo/src/fabric/hca_channel.cpp" "src/CMakeFiles/cbmpi.dir/fabric/hca_channel.cpp.o" "gcc" "src/CMakeFiles/cbmpi.dir/fabric/hca_channel.cpp.o.d"
  "/root/repo/src/fabric/selector.cpp" "src/CMakeFiles/cbmpi.dir/fabric/selector.cpp.o" "gcc" "src/CMakeFiles/cbmpi.dir/fabric/selector.cpp.o.d"
  "/root/repo/src/fabric/shm_channel.cpp" "src/CMakeFiles/cbmpi.dir/fabric/shm_channel.cpp.o" "gcc" "src/CMakeFiles/cbmpi.dir/fabric/shm_channel.cpp.o.d"
  "/root/repo/src/fabric/tuning.cpp" "src/CMakeFiles/cbmpi.dir/fabric/tuning.cpp.o" "gcc" "src/CMakeFiles/cbmpi.dir/fabric/tuning.cpp.o.d"
  "/root/repo/src/mpi/adi3.cpp" "src/CMakeFiles/cbmpi.dir/mpi/adi3.cpp.o" "gcc" "src/CMakeFiles/cbmpi.dir/mpi/adi3.cpp.o.d"
  "/root/repo/src/mpi/communicator.cpp" "src/CMakeFiles/cbmpi.dir/mpi/communicator.cpp.o" "gcc" "src/CMakeFiles/cbmpi.dir/mpi/communicator.cpp.o.d"
  "/root/repo/src/mpi/locality.cpp" "src/CMakeFiles/cbmpi.dir/mpi/locality.cpp.o" "gcc" "src/CMakeFiles/cbmpi.dir/mpi/locality.cpp.o.d"
  "/root/repo/src/mpi/matcher.cpp" "src/CMakeFiles/cbmpi.dir/mpi/matcher.cpp.o" "gcc" "src/CMakeFiles/cbmpi.dir/mpi/matcher.cpp.o.d"
  "/root/repo/src/mpi/runtime.cpp" "src/CMakeFiles/cbmpi.dir/mpi/runtime.cpp.o" "gcc" "src/CMakeFiles/cbmpi.dir/mpi/runtime.cpp.o.d"
  "/root/repo/src/mpi/time_barrier.cpp" "src/CMakeFiles/cbmpi.dir/mpi/time_barrier.cpp.o" "gcc" "src/CMakeFiles/cbmpi.dir/mpi/time_barrier.cpp.o.d"
  "/root/repo/src/mpi/window.cpp" "src/CMakeFiles/cbmpi.dir/mpi/window.cpp.o" "gcc" "src/CMakeFiles/cbmpi.dir/mpi/window.cpp.o.d"
  "/root/repo/src/osl/cma.cpp" "src/CMakeFiles/cbmpi.dir/osl/cma.cpp.o" "gcc" "src/CMakeFiles/cbmpi.dir/osl/cma.cpp.o.d"
  "/root/repo/src/osl/machine.cpp" "src/CMakeFiles/cbmpi.dir/osl/machine.cpp.o" "gcc" "src/CMakeFiles/cbmpi.dir/osl/machine.cpp.o.d"
  "/root/repo/src/osl/namespaces.cpp" "src/CMakeFiles/cbmpi.dir/osl/namespaces.cpp.o" "gcc" "src/CMakeFiles/cbmpi.dir/osl/namespaces.cpp.o.d"
  "/root/repo/src/osl/process.cpp" "src/CMakeFiles/cbmpi.dir/osl/process.cpp.o" "gcc" "src/CMakeFiles/cbmpi.dir/osl/process.cpp.o.d"
  "/root/repo/src/osl/shm.cpp" "src/CMakeFiles/cbmpi.dir/osl/shm.cpp.o" "gcc" "src/CMakeFiles/cbmpi.dir/osl/shm.cpp.o.d"
  "/root/repo/src/prof/profile.cpp" "src/CMakeFiles/cbmpi.dir/prof/profile.cpp.o" "gcc" "src/CMakeFiles/cbmpi.dir/prof/profile.cpp.o.d"
  "/root/repo/src/sim/cost_model.cpp" "src/CMakeFiles/cbmpi.dir/sim/cost_model.cpp.o" "gcc" "src/CMakeFiles/cbmpi.dir/sim/cost_model.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/cbmpi.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/cbmpi.dir/sim/trace.cpp.o.d"
  "/root/repo/src/sim/trace_export.cpp" "src/CMakeFiles/cbmpi.dir/sim/trace_export.cpp.o" "gcc" "src/CMakeFiles/cbmpi.dir/sim/trace_export.cpp.o.d"
  "/root/repo/src/topo/calibration.cpp" "src/CMakeFiles/cbmpi.dir/topo/calibration.cpp.o" "gcc" "src/CMakeFiles/cbmpi.dir/topo/calibration.cpp.o.d"
  "/root/repo/src/topo/hardware.cpp" "src/CMakeFiles/cbmpi.dir/topo/hardware.cpp.o" "gcc" "src/CMakeFiles/cbmpi.dir/topo/hardware.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
