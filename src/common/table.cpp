#include "common/table.hpp"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/units.hpp"

namespace cbmpi {

std::string format_size(Bytes n) {
  if (n >= 1_MiB && n % 1_MiB == 0) return std::to_string(n / 1_MiB) + "M";
  if (n >= 1_KiB && n % 1_KiB == 0) return std::to_string(n / 1_KiB) + "K";
  return std::to_string(n);
}

Bytes parse_size(const std::string& text) {
  std::size_t i = 0;
  while (i < text.size() && text[i] >= '0' && text[i] <= '9') ++i;
  CBMPI_REQUIRE(i > 0, "size '", text, "' does not start with digits");
  const Bytes value = std::stoull(text.substr(0, i));
  std::string suffix = text.substr(i);
  for (auto& c : suffix) c = static_cast<char>(std::tolower(c));
  Bytes unit = 1;
  if (!suffix.empty()) {
    switch (suffix[0]) {
      case 'k': unit = 1_KiB; break;
      case 'm': unit = 1_MiB; break;
      case 'g': unit = 1_GiB; break;
      default: CBMPI_REQUIRE(false, "size '", text, "': unknown suffix '", suffix, "'");
    }
    const std::string tail = suffix.substr(1);
    CBMPI_REQUIRE(tail.empty() || tail == "b" || tail == "ib",
                  "size '", text, "': unknown suffix '", suffix, "'");
  }
  CBMPI_REQUIRE(unit == 1 || value <= ~Bytes{0} / unit, "size '", text,
                "' overflows");
  return value * unit;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  CBMPI_REQUIRE(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  CBMPI_REQUIRE(cells.size() == headers_.size(), "row arity ", cells.size(),
                " != header arity ", headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      if (c == 0)
        os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
      else
        os << std::right << std::setw(static_cast<int>(width[c])) << row[c];
    }
    os << '\n';
  };

  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace cbmpi
