// Observability-layer tests: JSON writer correctness (escaping, number
// formatting, structural validity), metrics registry semantics, log2
// histogram bucket boundaries, canonical span ordering and nesting, the
// versioned run report (golden shape, Table-I consistency, byte-identical
// reruns), the Perfetto export, and the zero-virtual-time-overhead
// guarantee.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <limits>
#include <numeric>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "mpi/runtime.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "sched/scheduler.hpp"
#include "sim/trace_export.hpp"

namespace cbmpi {
namespace {

using container::DeploymentSpec;

// ---- a mini JSON validator -------------------------------------------------
// Strict syntactic checker (RFC 8259 subset: no leading zeros enforced, but
// escapes, nesting and separators are). Enough to prove every emitted
// document parses — independently of Python's json module used in CI.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    pos_ = 0;
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') { ++pos_; return true; }
      if (c < 0x20) return false;  // raw control character: invalid
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i)
            if (pos_ + static_cast<std::size_t>(i) >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(
                    text_[pos_ + static_cast<std::size_t>(i)])))
              return false;
          pos_ += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start && std::isdigit(static_cast<unsigned char>(text_[pos_ - 1]));
  }

  bool literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---- deterministic observability job ---------------------------------------
// Blocking-only traffic (ping-pong, collectives, compute): completion order
// equals program order, so rank clocks — and therefore the whole report —
// are a pure function of the seed.

mpi::JobConfig obs_job_config(bool observe) {
  mpi::JobConfig config;
  config.deployment = DeploymentSpec::containers(2, 2, 2);
  config.policy = fabric::LocalityPolicy::ContainerAware;
  config.observe = observe;
  config.seed = 7;
  return config;
}

void obs_job_body(mpi::Process& p) {
  auto& world = p.world();
  std::vector<double> buf(4096);
  p.compute(500.0);
  if (p.rank() == 0) {
    world.send(std::span<const double>(buf), 1, 3);
    world.recv(std::span<double>(buf), 1, 4);
    // A rendezvous-sized message exercises the rndv protocol span.
    std::vector<double> big(64 * 1024);
    world.send(std::span<const double>(big), 1, 5);
  } else if (p.rank() == 1) {
    world.recv(std::span<double>(buf), 0, 3);
    world.send(std::span<const double>(buf), 0, 4);
    std::vector<double> big(64 * 1024);
    world.recv(std::span<double>(big), 0, 5);
  }
  world.barrier();
  std::vector<double> out(buf.size());
  world.allreduce(std::span<const double>(buf), std::span<double>(out),
                  mpi::ReduceOp::Sum);
  world.bcast(std::span<double>(out), 0);
  p.compute(200.0);
}

obs::ReportContext test_context() {
  obs::ReportContext ctx;
  ctx.app = "obs-test";
  ctx.deployment = "2x2x2";
  ctx.policy = "aware";
  ctx.seed = 7;
  return ctx;
}

// ---- JSON writer -----------------------------------------------------------

TEST(ObsJson, EscapesQuotesBackslashesAndControlChars) {
  EXPECT_EQ(obs::escape_json("plain"), "plain");
  EXPECT_EQ(obs::escape_json("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::escape_json("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::escape_json("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(obs::escape_json("\b\f"), "\\b\\f");
  EXPECT_EQ(obs::escape_json(std::string("\x01\x1f", 2)), "\\u0001\\u001f");
}

TEST(ObsJson, FormatDoubleIsFixed) {
  EXPECT_EQ(obs::format_double(0.0), "0");
  EXPECT_EQ(obs::format_double(42.0), "42");
  EXPECT_EQ(obs::format_double(-3.0), "-3");
  EXPECT_EQ(obs::format_double(0.5), "0.5");
  EXPECT_EQ(obs::format_double(std::numeric_limits<double>::quiet_NaN()), "0");
  EXPECT_EQ(obs::format_double(std::numeric_limits<double>::infinity()), "0");
}

TEST(ObsJson, WriterEmitsValidNestedDocument) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("name", "x\"y\\z\n");
  w.field("count", std::uint64_t{7});
  w.field("ratio", 0.25);
  w.field("on", true);
  w.key("rows").begin_array();
  for (int i = 0; i < 3; ++i) {
    w.begin_object();
    w.field("i", i);
    w.end_object();
  }
  w.end_array();
  w.key("empty").begin_array();
  w.end_array();
  w.end_object();
  const std::string doc = w.str();
  EXPECT_TRUE(JsonChecker(doc).valid()) << doc;
  EXPECT_NE(doc.find("\"rows\":[{\"i\":0},{\"i\":1},{\"i\":2}]"), std::string::npos);
}

// ---- metrics ---------------------------------------------------------------

TEST(ObsMetrics, CounterAndGaugeBasics) {
  obs::MetricsRegistry registry;
  auto& c = registry.counter("ops");
  c.add(3);
  c.add(4);
  EXPECT_EQ(c.value(), 7u);
  EXPECT_EQ(&registry.counter("ops"), &c);  // lookup-or-create returns the same

  auto& g = registry.gauge("level");
  g.set(1.5);
  g.set(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 0.5);  // last write wins
}

TEST(ObsMetrics, KindConflictThrows) {
  obs::MetricsRegistry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), Error);
  EXPECT_THROW(registry.histogram("x"), Error);
}

TEST(ObsMetrics, HistogramBucketBoundaries) {
  // bucket 0 = {0}; bucket i >= 1 = [2^(i-1), 2^i - 1].
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0);
  EXPECT_EQ(obs::Histogram::bucket_of(1), 1);
  EXPECT_EQ(obs::Histogram::bucket_of(2), 2);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 2);
  EXPECT_EQ(obs::Histogram::bucket_of(4), 3);
  EXPECT_EQ(obs::Histogram::bucket_of(1023), 10);
  EXPECT_EQ(obs::Histogram::bucket_of(1024), 11);
  EXPECT_EQ(obs::Histogram::bucket_of(std::numeric_limits<std::uint64_t>::max()),
            64);

  EXPECT_EQ(obs::Histogram::bucket_upper(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_upper(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_upper(2), 3u);
  EXPECT_EQ(obs::Histogram::bucket_upper(10), 1023u);
  EXPECT_EQ(obs::Histogram::bucket_upper(64),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(ObsMetrics, HistogramSnapshotSumsMatch) {
  obs::Histogram h;
  const std::uint64_t values[] = {0, 1, 1, 2, 3, 4, 100, 1024};
  std::uint64_t sum = 0;
  for (const auto v : values) {
    h.observe(v);
    sum += v;
  }
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, std::size(values));
  EXPECT_EQ(snap.sum, sum);
  std::uint64_t bucket_total = 0;
  std::uint64_t last_upper = 0;
  for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
    bucket_total += snap.buckets[i].count;
    if (i > 0) {
      EXPECT_GT(snap.buckets[i].upper, last_upper);
    }
    last_upper = snap.buckets[i].upper;
    EXPECT_GT(snap.buckets[i].count, 0u);  // only non-empty buckets emitted
  }
  EXPECT_EQ(bucket_total, snap.count);
}

TEST(ObsMetrics, HistogramPercentilesFromBuckets) {
  // Percentiles come from the log2 buckets: the answer is the upper bound of
  // the first bucket whose cumulative count reaches ceil(q * count).
  obs::Histogram h;
  for (int i = 0; i < 90; ++i) h.observe(1);      // bucket upper 1
  for (int i = 0; i < 9; ++i) h.observe(1000);    // bucket upper 1023
  h.observe(100000);                              // bucket upper 131071
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.percentile(0.50), 1u);
  EXPECT_EQ(snap.percentile(0.90), 1u);     // ceil(0.9*100)=90, first bucket
  EXPECT_EQ(snap.percentile(0.95), 1023u);
  EXPECT_EQ(snap.percentile(0.99), 1023u);
  EXPECT_EQ(snap.percentile(1.00), 131071u);
  EXPECT_EQ(snap.percentile(0.0), 1u);      // clamped to the first value
  EXPECT_EQ(obs::HistogramSnapshot{}.percentile(0.99), 0u);  // empty
  // Monotone in q by construction.
  EXPECT_LE(snap.percentile(0.50), snap.percentile(0.95));
  EXPECT_LE(snap.percentile(0.95), snap.percentile(0.99));
}

TEST(ObsMetrics, SnapshotIsNameSorted) {
  obs::MetricsRegistry registry;
  registry.counter("zeta").add(1);
  registry.counter("alpha").add(1);
  registry.counter("mid").add(1);
  registry.gauge("g2").set(2.0);
  registry.gauge("g1").set(1.0);
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].first, "alpha");
  EXPECT_EQ(snap.counters[1].first, "mid");
  EXPECT_EQ(snap.counters[2].first, "zeta");
  ASSERT_EQ(snap.gauges.size(), 2u);
  EXPECT_EQ(snap.gauges[0].first, "g1");
  EXPECT_EQ(snap.gauges[1].first, "g2");
}

// ---- spans -----------------------------------------------------------------

TEST(ObsSpan, CanonicalSortOrder) {
  std::vector<obs::Span> spans;
  spans.push_back({"inner", obs::SpanCat::Coll, 0, -1, -1, 0, 5.0, 8.0, ""});
  spans.push_back({"outer", obs::SpanCat::Mpi, 0, -1, -1, 0, 5.0, 10.0, ""});
  spans.push_back({"first", obs::SpanCat::Mpi, 1, -1, -1, 0, 1.0, 2.0, ""});
  obs::sort_spans(spans);
  EXPECT_EQ(spans[0].name, "first");           // earliest begin first
  EXPECT_EQ(spans[1].name, "outer");           // same begin: longer span first
  EXPECT_EQ(spans[2].name, "inner");           // (parents precede children)
}

TEST(ObsSpan, RecorderCountsByCategory) {
  obs::SpanRecorder recorder;
  recorder.record({"a", obs::SpanCat::Mpi, 0, -1, -1, 0, 0.0, 1.0, ""});
  recorder.record({"b", obs::SpanCat::Proto, 0, 1, 0, 8, 0.0, 1.0, ""});
  recorder.record({"c", obs::SpanCat::Proto, 1, 0, 0, 8, 1.0, 2.0, ""});
  EXPECT_EQ(recorder.count(), 3u);
  EXPECT_EQ(recorder.count(obs::SpanCat::Proto), 2u);
  EXPECT_EQ(recorder.count(obs::SpanCat::Fault), 0u);
}

// ---- job profile report ----------------------------------------------------

TEST(ObsReport, JobProfileReportGoldenShape) {
  const auto result = mpi::run_job(obs_job_config(false), obs_job_body);
  const std::string report = result.profile.report();
  // mpiP-style sections with the calls this body is guaranteed to make.
  EXPECT_NE(report.find("Send"), std::string::npos);
  EXPECT_NE(report.find("Recv"), std::string::npos);
  EXPECT_NE(report.find("Allreduce"), std::string::npos);
  EXPECT_NE(report.find("Barrier"), std::string::npos);
  const double fraction = result.profile.comm_fraction();
  EXPECT_GE(fraction, 0.0);
  EXPECT_LE(fraction, 1.0);
  EXPECT_GT(result.profile.total.compute_time(), 0.0);
}

// ---- run report ------------------------------------------------------------

TEST(ObsReport, RunReportGoldenShape) {
  const auto result = mpi::run_job(obs_job_config(true), obs_job_body);
  const std::string json = obs::run_report_json(test_context(), result);
  EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);

  for (const char* key :
       {"\"schema\":\"cbmpi.run_report\"", "\"version\":6", "\"mode\":\"single\"",
        "\"job\":", "\"result\":", "\"profile\":", "\"metrics\":", "\"spans\":",
        "\"faults\":", "\"recovery\":", "\"comm_fraction\":", "\"rank_times_us\":",
        "\"counters\":", "\"histograms\":", "\"by_category\":", "\"p50\":",
        "\"p95\":", "\"p99\":"})
    EXPECT_NE(json.find(key), std::string::npos) << key;

  const double fraction = result.profile.comm_fraction();
  EXPECT_GE(fraction, 0.0);
  EXPECT_LE(fraction, 1.0);
}

TEST(ObsReport, ChannelOpCountersMatchTableIPath) {
  // The per-channel counters bumped in the ADI3 hot path must agree with the
  // profile's Table-I channel accounting — same decisions, two observers.
  const auto result = mpi::run_job(obs_job_config(true), obs_job_body);
  std::uint64_t counter_total = 0;
  std::uint64_t eager = 0, rndv = 0;
  for (const auto& [name, value] : result.metrics.counters) {
    if (name.rfind("channel.", 0) == 0) counter_total += value;
    if (name == "adi3.eager_sends") eager = value;
    if (name == "adi3.rndv_sends") rndv = value;
  }
  std::uint64_t profile_total = 0;
  for (const auto kind : {fabric::ChannelKind::Shm, fabric::ChannelKind::Cma,
                          fabric::ChannelKind::Hca})
    profile_total += result.profile.total.channel_ops(kind);
  EXPECT_EQ(counter_total, profile_total);
  EXPECT_GT(profile_total, 0u);
  EXPECT_EQ(eager + rndv, profile_total);
  EXPECT_GT(rndv, 0u);  // the 512 KiB message must have gone rendezvous
}

TEST(ObsReport, ByteIdenticalAcrossReruns) {
  const auto a = mpi::run_job(obs_job_config(true), obs_job_body);
  const auto b = mpi::run_job(obs_job_config(true), obs_job_body);
  EXPECT_EQ(obs::run_report_json(test_context(), a),
            obs::run_report_json(test_context(), b));
  EXPECT_EQ(obs::to_perfetto(a.spans, a.trace), obs::to_perfetto(b.spans, b.trace));
}

TEST(ObsReport, ObserveNeverChangesVirtualTime) {
  const auto off = mpi::run_job(obs_job_config(false), obs_job_body);
  const auto on = mpi::run_job(obs_job_config(true), obs_job_body);
  EXPECT_DOUBLE_EQ(off.job_time, on.job_time);
  ASSERT_EQ(off.rank_times.size(), on.rank_times.size());
  for (std::size_t r = 0; r < off.rank_times.size(); ++r)
    EXPECT_DOUBLE_EQ(off.rank_times[r], on.rank_times[r]);
  EXPECT_FALSE(on.spans.empty());
  EXPECT_FALSE(on.metrics.empty());
  EXPECT_TRUE(off.spans.empty());
  EXPECT_TRUE(off.metrics.empty());
}

TEST(ObsReport, SpansNestProperlyOnRankTracks) {
  auto config = obs_job_config(true);
  config.record_trace = true;
  const auto result = mpi::run_job(config, obs_job_body);

  // Rank-track spans (everything except channel-track Proto spans) must form
  // a proper nesting per rank: in canonical order, a new span either starts
  // after the open one ends or ends within it.
  auto spans = result.spans;
  obs::sort_spans(spans);
  for (int rank = 0; rank < 8; ++rank) {
    std::vector<const obs::Span*> stack;
    for (const auto& span : spans) {
      if (span.rank != rank) continue;
      if (span.cat == obs::SpanCat::Proto && span.channel >= 0) continue;
      while (!stack.empty() && stack.back()->end <= span.begin) stack.pop_back();
      if (!stack.empty()) {
        EXPECT_GE(stack.back()->end, span.end)
            << stack.back()->name << " vs " << span.name << " on rank " << rank;
      }
      stack.push_back(&span);
    }
  }

  // Every Coll span must sit inside an enclosing Mpi span's interval.
  for (const auto& span : spans) {
    if (span.cat != obs::SpanCat::Coll) continue;
    const bool enclosed =
        std::any_of(spans.begin(), spans.end(), [&](const obs::Span& outer) {
          return outer.cat == obs::SpanCat::Mpi && outer.rank == span.rank &&
                 outer.begin <= span.begin && outer.end >= span.end;
        });
    EXPECT_TRUE(enclosed) << span.name;
  }
}

// ---- perfetto / chrome-trace export ----------------------------------------

TEST(ObsTrace, PerfettoDocumentStructure) {
  auto config = obs_job_config(true);
  config.record_trace = true;
  const auto result = mpi::run_job(config, obs_job_body);
  const std::string doc = obs::to_perfetto(result.spans, result.trace);
  EXPECT_TRUE(JsonChecker(doc).valid());
  EXPECT_NE(doc.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);  // duration events
  EXPECT_NE(doc.find("\"ph\":\"M\""), std::string::npos);  // track metadata
  EXPECT_NE(doc.find("\"ph\":\"i\""), std::string::npos);  // instants ride along
  EXPECT_NE(doc.find("\"pid\":1000"), std::string::npos);  // a channel track
  EXPECT_NE(doc.find("rank 0"), std::string::npos);
}

TEST(ObsTrace, ChromeTraceEscapesNastyNotes) {
  std::vector<sim::TraceEvent> events;
  events.push_back({sim::TraceKind::SendEager, 0, 1, 64, 1.0,
                    "quote \" backslash \\ newline \n tab \t"});
  events.push_back({sim::TraceKind::RecvComplete, 1, 0, 64, 2.0,
                    std::string("ctrl \x01\x02\x1f end")});
  const std::string doc = sim::to_chrome_trace(events);
  EXPECT_TRUE(JsonChecker(doc).valid()) << doc;
  EXPECT_NE(doc.find("\\\""), std::string::npos);
  EXPECT_NE(doc.find("\\\\"), std::string::npos);
  EXPECT_NE(doc.find("\\n"), std::string::npos);
  EXPECT_NE(doc.find("\\u0001"), std::string::npos);
  EXPECT_NE(doc.find("\\u001f"), std::string::npos);
  // No raw control characters may survive into the document.
  for (const char c : doc) EXPECT_GE(static_cast<unsigned char>(c), 0x20);
}

TEST(ObsTrace, EmptyInputsStillValid) {
  EXPECT_TRUE(JsonChecker(sim::to_chrome_trace({})).valid());
  EXPECT_TRUE(JsonChecker(obs::to_perfetto({}, {})).valid());
}

// ---- scheduler metrics export ----------------------------------------------

TEST(ObsSched, SchedulerExportsClusterMetrics) {
  sched::SchedulerConfig config;
  config.cluster_hosts = 2;
  config.host_shape = topo::HostShape{2, 4, true};
  sched::Scheduler scheduler(config);
  scheduler.set_runner([](const mpi::JobConfig&, const sched::JobSpec&) {
    mpi::JobResult result;
    result.job_time = 50.0;
    return result;
  });
  sched::JobSpec job;
  job.ranks = 4;
  job.ranks_per_container = 2;
  scheduler.submit(job);
  scheduler.submit(job);
  scheduler.run();

  obs::MetricsRegistry registry;
  scheduler.export_metrics(registry);
  const auto snap = registry.snapshot();

  auto counter = [&](const std::string& name) -> std::uint64_t {
    for (const auto& [n, v] : snap.counters)
      if (n == name) return v;
    ADD_FAILURE() << "missing counter " << name;
    return 0;
  };
  auto has_gauge = [&](const std::string& name) {
    return std::any_of(snap.gauges.begin(), snap.gauges.end(),
                       [&](const auto& g) { return g.first == name; });
  };
  EXPECT_EQ(counter("sched.jobs"), 2u);
  EXPECT_TRUE(has_gauge("sched.makespan_us"));
  EXPECT_TRUE(has_gauge("sched.utilization"));
  EXPECT_TRUE(has_gauge("sched.mean_queue_wait_us"));
  for (const auto& [name, hist] : snap.histograms)
    if (name == "sched.job_runtime_us") {
      EXPECT_EQ(hist.count, 2u);
    }
}

TEST(ObsSched, ScheduleReportGoldenShape) {
  sched::SchedulerConfig config;
  config.cluster_hosts = 2;
  config.host_shape = topo::HostShape{2, 4, true};
  sched::Scheduler scheduler(config);
  scheduler.set_runner([](const mpi::JobConfig&, const sched::JobSpec&) {
    mpi::JobResult result;
    result.job_time = 50.0;
    return result;
  });
  sched::JobSpec job;
  job.ranks = 4;
  job.ranks_per_container = 2;
  scheduler.submit(job);
  scheduler.run();

  auto ctx = test_context();
  ctx.cluster = &scheduler.metrics();
  const std::string json = obs::schedule_report_json(ctx, scheduler);
  EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);
  for (const char* key : {"\"mode\":\"schedule\"", "\"cluster\":", "\"jobs\":",
                          "\"makespan_us\":", "\"channel_ops\":"})
    EXPECT_NE(json.find(key), std::string::npos) << key;
}

// ---- recovery reporting (v2) -----------------------------------------------

void checkpointing_body(mpi::Process& p) {
  auto& world = p.world();
  std::vector<double> buf(16, static_cast<double>(p.rank()));
  std::vector<double> out(buf.size());
  for (int round = p.start_round(); round < 8; ++round) {
    p.compute(100.0);
    world.allreduce(std::span<const double>(buf), std::span<double>(out),
                    mpi::ReduceOp::Sum);
    world.barrier();
    const auto bytes = std::as_bytes(std::span<const double>(buf));
    p.checkpoint(round + 1,
                 std::span<const std::uint8_t>(
                     reinterpret_cast<const std::uint8_t*>(bytes.data()),
                     bytes.size()));
  }
}

TEST(ObsReport, RecoverySectionSerializesCheckpointEvents) {
  auto config = obs_job_config(true);
  config.checkpoint_interval = 5.0;
  const auto result = mpi::run_job(config, checkpointing_body);
  ASSERT_FALSE(result.checkpoints.empty());

  const std::string json = obs::run_report_json(test_context(), result);
  EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);
  for (const char* key :
       {"\"recovery\":", "\"checkpoints\":", "\"restored\":false",
        "\"events\":", "\"round\":", "\"at_us\":", "\"bytes\":"})
    EXPECT_NE(json.find(key), std::string::npos) << key;

  // The recovery section is part of the byte-identical-rerun contract.
  const auto again = mpi::run_job(config, checkpointing_body);
  EXPECT_EQ(json, obs::run_report_json(test_context(), again));
}

TEST(ObsSched, CrashRecoveryScheduleReportIsByteIdenticalAcrossReruns) {
  const auto report_once = [] {
    sched::SchedulerConfig config;
    config.cluster_hosts = 2;
    config.host_shape = topo::HostShape{2, 4, true};
    config.policy = sched::PlacementPolicy::LocalityAware;
    config.seed = 21;
    config.max_restarts = 6;
    config.requeue_backoff = 25.0;
    config.checkpoint_interval = 5.0;
    sched::Scheduler scheduler(config);
    for (int i = 0; i < 3; ++i) {
      sched::JobSpec job;
      job.ranks = 4;
      job.ranks_per_container = 2;
      job.body = i % 2 == 0 ? "ring" : "cg";
      job.params.rounds = 8;
      job.submit_time = static_cast<Micros>(i) * 2.0;
      // Job 0 always crashes early; the rest flip deterministic coins.
      job.faults.rank_crash_prob = i == 0 ? 1.0 : 0.4;
      job.faults.crash_horizon = i == 0 ? 10.0 : 25.0;
      scheduler.submit(job);
    }
    scheduler.run();
    auto ctx = test_context();
    ctx.cluster = &scheduler.metrics();
    return obs::schedule_report_json(ctx, scheduler);
  };
  const std::string a = report_once();
  EXPECT_EQ(a, report_once());

  EXPECT_TRUE(JsonChecker(a).valid()) << a.substr(0, 400);
  // Crash attribution and recovery aggregates actually made it into the
  // document (job 0's guaranteed crash plus its requeued attempts).
  for (const char* key :
       {"\"recovery\":", "\"crashes\":", "\"requeues\":",
        "\"restarts_from_checkpoint\":", "\"lost_work_us\":",
        "\"outcome\":\"crashed\"", "\"crash\":", "\"kind\":", "\"rank\":",
        "\"at_us\":", "\"attempt\":1"})
    EXPECT_NE(a.find(key), std::string::npos) << key;
}

// ---- metrics summary rendering ---------------------------------------------

TEST(ObsReport, MetricsSummaryMentionsEveryInstrument) {
  obs::MetricsRegistry registry;
  registry.counter("ops.total").add(12);
  registry.gauge("load").set(0.75);
  registry.histogram("sizes").observe(100);
  const std::string text = obs::metrics_summary(registry.snapshot());
  EXPECT_NE(text.find("ops.total"), std::string::npos);
  EXPECT_NE(text.find("load"), std::string::npos);
  EXPECT_NE(text.find("sizes"), std::string::npos);
}

}  // namespace
}  // namespace cbmpi
