// MPI semantics coverage: the full reduction-operator matrix over several
// element types, communicator isolation, and a combined integration stress
// program exercising sub-communicators, windows, collectives and pt2pt in
// one job across deployments.
#include <gtest/gtest.h>

#include <numeric>

#include "mpi/runtime.hpp"
#include "mpi/window.hpp"

namespace cbmpi {
namespace {

using container::DeploymentSpec;
using fabric::LocalityPolicy;
using mpi::JobConfig;
using mpi::ReduceOp;

// ---- reduction operator matrix ---------------------------------------------

class ReduceOps : public testing::TestWithParam<ReduceOp> {};

TEST_P(ReduceOps, Int64AgreesWithSerialFold) {
  const ReduceOp op = GetParam();
  JobConfig cfg;
  cfg.deployment = DeploymentSpec::native_hosts(1, 5);  // non-power-of-two
  mpi::run_job(cfg, [op](mpi::Process& p) {
    const int n = p.size();
    auto value_of = [](int rank) {
      return static_cast<std::int64_t>((rank * 7 + 3) % 13 + 1);
    };
    const std::int64_t mine = value_of(p.rank());
    const std::int64_t got = p.world().allreduce_value(mine, op);

    std::int64_t expect = value_of(0);
    for (int r = 1; r < n; ++r) {
      const std::int64_t v[1] = {value_of(r)};
      std::int64_t acc[1] = {expect};
      mpi::apply_reduce<std::int64_t>(op, std::span<const std::int64_t>(v, 1),
                                      std::span<std::int64_t>(acc, 1));
      expect = acc[0];
    }
    ASSERT_EQ(got, expect) << "op " << static_cast<int>(op);
  });
}

INSTANTIATE_TEST_SUITE_P(AllOps, ReduceOps,
                         testing::Values(ReduceOp::Sum, ReduceOp::Prod,
                                         ReduceOp::Min, ReduceOp::Max,
                                         ReduceOp::LogicalAnd, ReduceOp::LogicalOr,
                                         ReduceOp::BitOr, ReduceOp::BitAnd));

TEST(ReduceTypes, FloatAndDoubleAndUnsigned) {
  JobConfig cfg;
  cfg.deployment = DeploymentSpec::native_hosts(1, 4);
  mpi::run_job(cfg, [](mpi::Process& p) {
    const float f = 0.5f * static_cast<float>(p.rank() + 1);
    EXPECT_FLOAT_EQ(p.world().allreduce_value(f, ReduceOp::Sum), 5.0f);
    const double d = 2.0;
    EXPECT_DOUBLE_EQ(p.world().allreduce_value(d, ReduceOp::Prod), 16.0);
    const std::uint64_t u = std::uint64_t{1} << p.rank();
    EXPECT_EQ(p.world().allreduce_value(u, ReduceOp::BitOr), 0b1111u);
    EXPECT_EQ(p.world().allreduce_value(u, ReduceOp::Max), 8u);
  });
}

TEST(ReduceSemantics, FloatSumsConsistentAcrossPoliciesWithinTolerance) {
  // Hierarchical grouping changes the combine order, so floating sums may
  // differ by rounding — but only by rounding.
  auto sum_with = [](LocalityPolicy policy) {
    JobConfig cfg;
    cfg.deployment = DeploymentSpec::containers(1, 2, 8);
    cfg.policy = policy;
    double out = 0.0;
    mpi::run_job(cfg, [&](mpi::Process& p) {
      const double mine = 1.0 / (p.rank() + 3.7);
      const double sum = p.world().allreduce_value(mine, ReduceOp::Sum);
      if (p.rank() == 0) out = sum;
    });
    return out;
  };
  const double a = sum_with(LocalityPolicy::HostnameBased);
  const double b = sum_with(LocalityPolicy::ContainerAware);
  EXPECT_NEAR(a, b, 1e-12);
}

// ---- communicator isolation ---------------------------------------------------

TEST(CommIsolation, SplitCommsRunIndependentCollectives) {
  JobConfig cfg;
  cfg.deployment = DeploymentSpec::containers(2, 2, 4);
  cfg.policy = LocalityPolicy::ContainerAware;
  mpi::run_job(cfg, [](mpi::Process& p) {
    // Split into "even" and "odd" teams that do different numbers of
    // collectives — tags/ids must never cross-match.
    auto team = p.world().split(p.rank() % 2, p.rank());
    ASSERT_TRUE(team.has_value());
    const int rounds = p.rank() % 2 == 0 ? 5 : 3;
    std::int64_t acc = 0;
    for (int i = 0; i < rounds; ++i)
      acc += team->allreduce_value<std::int64_t>(1, ReduceOp::Sum);
    ASSERT_EQ(acc, rounds * team->size());
    // World-level collective afterwards still agrees.
    ASSERT_EQ(p.world().allreduce_value<std::int64_t>(1, ReduceOp::Sum), p.size());
  });
}

TEST(CommIsolation, NestedSplits) {
  JobConfig cfg;
  cfg.deployment = DeploymentSpec::native_hosts(2, 4);
  mpi::run_job(cfg, [](mpi::Process& p) {
    auto half = p.world().split(p.rank() / 4, p.rank());
    ASSERT_TRUE(half.has_value());
    auto quarter = half->split(half->rank() / 2, half->rank());
    ASSERT_TRUE(quarter.has_value());
    ASSERT_EQ(quarter->size(), 2);
    const auto sum = quarter->allreduce_value<std::int64_t>(p.rank(), ReduceOp::Sum);
    // Partner is the adjacent world rank within the same quarter.
    const int base = (p.rank() / 2) * 2;
    ASSERT_EQ(sum, base + base + 1);
  });
}

// ---- integration stress ----------------------------------------------------------

struct StressCase {
  int hosts;
  int containers;
  int procs_per_host;
  LocalityPolicy policy;
};

class IntegrationStress : public testing::TestWithParam<StressCase> {};

TEST_P(IntegrationStress, MixedWorkloadCompletesConsistently) {
  const auto& c = GetParam();
  JobConfig cfg;
  cfg.deployment = c.containers == 0
                       ? DeploymentSpec::native_hosts(c.hosts, c.procs_per_host)
                       : DeploymentSpec::containers(c.hosts, c.containers,
                                                    c.procs_per_host);
  cfg.policy = c.policy;
  mpi::run_job(cfg, [](mpi::Process& p) {
    auto& world = p.world();
    const int n = world.size();

    // Phase 1: ring pt2pt with mixed sizes (eager + rendezvous).
    std::vector<std::uint8_t> big_out(32_KiB, static_cast<std::uint8_t>(p.rank()));
    std::vector<std::uint8_t> big_in(32_KiB);
    const int right = (p.rank() + 1) % n;
    const int left = (p.rank() + n - 1) % n;
    world.sendrecv(std::span<const std::uint8_t>(big_out), right,
                   std::span<std::uint8_t>(big_in), left, 1);
    ASSERT_EQ(big_in[100], static_cast<std::uint8_t>(left));

    // Phase 2: window traffic interleaved with collectives.
    std::vector<std::int64_t> memory(static_cast<std::size_t>(n), 0);
    mpi::Window<std::int64_t> window(world, std::span<std::int64_t>(memory));
    window.fence();
    const std::int64_t mine = p.rank() + 1;
    for (int r = 0; r < n; ++r)
      window.accumulate(std::span<const std::int64_t>(&mine, 1), r,
                        static_cast<std::size_t>(p.rank()), ReduceOp::Sum);
    window.fence();
    // Everyone deposited its rank+1 into slot[rank] of every window.
    for (int r = 0; r < n; ++r)
      ASSERT_EQ(memory[static_cast<std::size_t>(r)], r + 1);

    // Phase 3: collective chain whose result depends on all prior phases.
    std::int64_t local = std::accumulate(memory.begin(), memory.end(), std::int64_t{0});
    const auto total = world.allreduce_value(local, ReduceOp::Sum);
    ASSERT_EQ(total, static_cast<std::int64_t>(n) * n * (n + 1) / 2);

    // Phase 4: prefix scan sanity against the same data.
    const auto prefix = world.scan_value<std::int64_t>(p.rank() + 1, ReduceOp::Sum);
    ASSERT_EQ(prefix, static_cast<std::int64_t>(p.rank() + 1) * (p.rank() + 2) / 2);
    world.barrier();
  });
}

INSTANTIATE_TEST_SUITE_P(
    Deployments, IntegrationStress,
    testing::Values(StressCase{1, 0, 6, LocalityPolicy::HostnameBased},
                    StressCase{1, 3, 6, LocalityPolicy::ContainerAware},
                    StressCase{2, 2, 4, LocalityPolicy::HostnameBased},
                    StressCase{2, 2, 4, LocalityPolicy::ContainerAware},
                    StressCase{4, 4, 4, LocalityPolicy::ContainerAware}));

}  // namespace
}  // namespace cbmpi
