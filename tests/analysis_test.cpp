// Critical-path & wait-state analysis engine (src/obs/analysis, DESIGN.md
// §16): hand-built span DAGs with analytically known critical paths and wait
// states, plus end-to-end runs through the real runtime.
//
// The hand-built scenarios pin the walk semantics exactly — segment tiling,
// blame carve-outs, send->recv hops — so a regression in the engine fails
// with numbers a human can re-derive on paper.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/units.hpp"
#include "mpi/runtime.hpp"
#include "obs/analysis/analysis.hpp"
#include "obs/json.hpp"

namespace cbmpi {
namespace {

using obs::Span;
using obs::SpanCat;
using obs::analysis::AnalyzeOptions;
using obs::analysis::Blame;
using obs::analysis::analyze;

Micros blame_of(const obs::analysis::Analysis& a, Blame b) {
  return a.blame[static_cast<std::size_t>(b)];
}

/// A rank-track span (Mpi / Coll / Compute / Fault).
Span track(const char* name, SpanCat cat, int rank, Micros begin, Micros end) {
  Span s;
  s.name = name;
  s.cat = cat;
  s.rank = rank;
  s.begin = begin;
  s.end = end;
  return s;
}

/// A Proto transfer span with its dependency payload.
Span transfer(const char* name, int rank, int peer, Micros begin, Micros end,
              Micros posted_at, Micros sent_at, Micros avail_at,
              std::int64_t xfer) {
  Span s = track(name, SpanCat::Proto, rank, begin, end);
  s.peer = peer;
  s.channel = 2;  // Hca
  s.bytes = 4096;
  s.posted_at = posted_at;
  s.sent_at = sent_at;
  s.avail_at = avail_at;
  s.xfer = xfer;
  return s;
}

/// Every analysis must satisfy these regardless of input: segments ascending
/// and contiguous, tiling [0, critical_path], blame summing to the path.
void check_tiling(const obs::analysis::Analysis& a) {
  ASSERT_FALSE(a.segments.empty());
  EXPECT_NEAR(a.segments.front().begin, 0.0, 1e-6);
  EXPECT_NEAR(a.segments.back().end, a.critical_path, 1e-6);
  Micros covered = 0.0, blamed = 0.0;
  for (std::size_t i = 0; i < a.segments.size(); ++i) {
    const auto& seg = a.segments[i];
    EXPECT_GT(seg.duration(), 0.0);
    covered += seg.duration();
    if (i > 0) {
      EXPECT_NEAR(seg.begin, a.segments[i - 1].end, 1e-6);
    }
  }
  for (const auto t : a.blame) blamed += t;
  EXPECT_NEAR(covered, a.critical_path, 1e-6);
  EXPECT_NEAR(blamed, a.critical_path, 1e-6);
}

// ---- late-sender pair (eager) ----------------------------------------------
//
// rank 0: compute [0,30], MPI_Send [30,31], hand-off at 30.5
// rank 1: MPI_Recv [5,40]; payload available at 38, processed [38,40]
//
// Critical path (40 us) = 30 compute + 0.5 send overhead + 9.5 eager, and
// rank 1 waited 38-5 = 33 us on the late sender.

std::vector<Span> late_sender_spans() {
  std::vector<Span> spans;
  spans.push_back(track("work", SpanCat::Compute, 0, 0.0, 30.0));
  spans.push_back(track("MPI_Send", SpanCat::Mpi, 0, 30.0, 31.0));
  spans.push_back(track("MPI_Recv", SpanCat::Mpi, 1, 5.0, 40.0));
  spans.push_back(transfer("eager", /*rank=*/1, /*peer=*/0, /*begin=*/38.0,
                           /*end=*/40.0, /*posted=*/5.0, /*sent=*/30.5,
                           /*avail=*/38.0, /*xfer=*/1));
  return spans;
}

TEST(Analysis, LateSenderPairHasKnownPathAndBlame) {
  const auto spans = late_sender_spans();
  const std::vector<Micros> ends = {31.0, 40.0};
  const auto a = analyze(spans, 2, ends);

  EXPECT_EQ(a.end_rank, 1);
  EXPECT_DOUBLE_EQ(a.critical_path, 40.0);
  check_tiling(a);

  // Exactly: compute on 0, send overhead on 0, the transfer charged to the
  // eager protocol from the sender's hand-off.
  ASSERT_EQ(a.segments.size(), 3u);
  EXPECT_EQ(a.segments[0].rank, 0);
  EXPECT_EQ(a.segments[0].blame, Blame::Compute);
  EXPECT_NEAR(a.segments[0].duration(), 30.0, 1e-9);
  EXPECT_EQ(a.segments[1].rank, 0);
  EXPECT_EQ(a.segments[1].blame, Blame::MpiOther);
  EXPECT_EQ(a.segments[1].name, "MPI_Send");
  EXPECT_NEAR(a.segments[1].duration(), 0.5, 1e-9);
  EXPECT_EQ(a.segments[2].rank, 1);
  EXPECT_EQ(a.segments[2].blame, Blame::Eager);
  EXPECT_NEAR(a.segments[2].duration(), 9.5, 1e-9);

  EXPECT_NEAR(blame_of(a, Blame::Compute), 30.0, 1e-9);
  EXPECT_NEAR(blame_of(a, Blame::MpiOther), 0.5, 1e-9);
  EXPECT_NEAR(blame_of(a, Blame::Eager), 9.5, 1e-9);
  EXPECT_DOUBLE_EQ(blame_of(a, Blame::Idle), 0.0);

  // Wait states: only rank 1 waited, on the sender, avail - posted.
  EXPECT_NEAR(a.wait_states[1].late_sender, 33.0, 1e-9);
  EXPECT_DOUBLE_EQ(a.wait_states[0].late_sender, 0.0);
  EXPECT_DOUBLE_EQ(a.wait_states[1].late_receiver, 0.0);
}

TEST(Analysis, InputOrderDoesNotMatter) {
  auto spans = late_sender_spans();
  std::reverse(spans.begin(), spans.end());
  std::swap(spans[0], spans[2]);
  const std::vector<Micros> ends = {31.0, 40.0};
  const auto a = analyze(spans, 2, ends);
  const auto b = analyze(late_sender_spans(), 2, ends);
  ASSERT_EQ(a.segments.size(), b.segments.size());
  for (std::size_t i = 0; i < a.segments.size(); ++i) {
    EXPECT_EQ(a.segments[i].rank, b.segments[i].rank);
    EXPECT_EQ(a.segments[i].blame, b.segments[i].blame);
    EXPECT_DOUBLE_EQ(a.segments[i].begin, b.segments[i].begin);
    EXPECT_DOUBLE_EQ(a.segments[i].end, b.segments[i].end);
  }
}

// ---- contended vs ideal fabric ---------------------------------------------
//
// Same DAG, but the transfer carries 5 us of link-contention stall and 2 us
// of unhidden registration: both are carved out of the eager blame, so the
// contended run shows strictly more contention and strictly less eager time
// than the ideal run — with an identical critical path.

TEST(Analysis, ContentionAndRegistrationCarvedOutOfTransfer) {
  auto contended = late_sender_spans();
  contended[3].stall = 5.0;
  contended[3].reg_stall = 2.0;
  const std::vector<Micros> ends = {31.0, 40.0};
  const auto ideal = analyze(late_sender_spans(), 2, ends);
  const auto hot = analyze(contended, 2, ends);
  check_tiling(hot);

  EXPECT_DOUBLE_EQ(ideal.critical_path, hot.critical_path);
  EXPECT_DOUBLE_EQ(blame_of(ideal, Blame::Contention), 0.0);
  EXPECT_NEAR(blame_of(hot, Blame::Contention), 5.0, 1e-9);
  EXPECT_NEAR(blame_of(hot, Blame::Registration), 2.0, 1e-9);
  EXPECT_NEAR(blame_of(hot, Blame::Eager),
              blame_of(ideal, Blame::Eager) - 7.0, 1e-9);
  EXPECT_NEAR(hot.wait_states[1].contention, 5.0, 1e-9);
  EXPECT_NEAR(hot.wait_states[1].registration, 2.0, 1e-9);
}

// ---- blocked rendezvous sender / late receiver -----------------------------
//
// rank 0: compute [0,10], then MPI_Send blocked [10,35] in a rendezvous
// rank 1: compute [0,12], posts the recv at 12, pull finishes at 35
//
// The walk must hop from the blocked sender to the receiver's timeline: path
// = 10 us compute (rank 1... no: the hop lands on rank 1 at the RTS time) —
// precisely: [0,10] compute on rank 1, [10,35] rndv-wait on rank 0. And the
// RTS (10) preceding the post (12) is 2 us of late-receiver wait charged to
// the *sender*.

TEST(Analysis, BlockedRendezvousSenderHopsToReceiver) {
  std::vector<Span> spans;
  spans.push_back(track("setup", SpanCat::Compute, 0, 0.0, 10.0));
  spans.push_back(track("MPI_Send", SpanCat::Mpi, 0, 10.0, 35.0));
  spans.push_back(track("work", SpanCat::Compute, 1, 0.0, 12.0));
  spans.push_back(track("MPI_Recv", SpanCat::Mpi, 1, 12.0, 35.0));
  Span rndv = transfer("rndv", /*rank=*/1, /*peer=*/0, /*begin=*/10.0,
                       /*end=*/35.0, /*posted=*/12.0, /*sent=*/10.0,
                       /*avail=*/10.0, /*xfer=*/2);
  rndv.bytes = 1u << 20;
  rndv.note = "miss";
  rndv.reg_stall = 3.0;
  spans.push_back(rndv);
  const std::vector<Micros> ends = {35.0, 35.0};
  const auto a = analyze(spans, 2, ends);

  EXPECT_EQ(a.end_rank, 0);  // tie breaks to the lowest rank
  EXPECT_DOUBLE_EQ(a.critical_path, 35.0);
  check_tiling(a);

  ASSERT_EQ(a.segments.size(), 2u);
  EXPECT_EQ(a.segments[0].rank, 1);  // hopped to the receiver
  EXPECT_EQ(a.segments[0].blame, Blame::Compute);
  EXPECT_NEAR(a.segments[0].duration(), 10.0, 1e-9);
  EXPECT_EQ(a.segments[1].rank, 0);
  EXPECT_EQ(a.segments[1].blame, Blame::Rndv);
  EXPECT_EQ(a.segments[1].name, "rndv-wait miss");
  EXPECT_NEAR(a.segments[1].duration(), 25.0, 1e-9);

  // RTS at 10, recv posted at 12: the sender waited on the receiver.
  EXPECT_NEAR(a.wait_states[0].late_receiver, 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(a.wait_states[1].late_receiver, 0.0);
  EXPECT_NEAR(a.wait_states[1].registration, 3.0, 1e-9);
}

// ---- collective imbalance --------------------------------------------------
//
// Two bcast rounds on four ranks. Round 0 durations {10, 4, 6, 8}: max 10,
// avg 7, group imbalance 3; per-rank waits {0, 6, 4, 2}. Round 1 is balanced
// ({5, 5, 5, 5}): adds nothing. Spans are grouped by occurrence index per
// (name, rank), not by time overlap.

TEST(Analysis, CollectiveImbalanceMaxMinusAvgPerGroup) {
  const Micros round0[] = {10.0, 4.0, 6.0, 8.0};
  std::vector<Span> spans;
  for (int r = 0; r < 4; ++r) {
    const Micros d = round0[r];
    spans.push_back(track("MPI_Bcast", SpanCat::Mpi, r, 0.0, d));
    spans.push_back(track("bcast/binomial", SpanCat::Coll, r, 0.0, d));
    spans.push_back(track("MPI_Bcast", SpanCat::Mpi, r, d, d + 5.0));
    spans.push_back(track("bcast/binomial", SpanCat::Coll, r, d, d + 5.0));
  }
  const auto a = analyze(spans, 4, {});

  ASSERT_EQ(a.coll_groups.size(), 1u);
  EXPECT_EQ(a.coll_groups[0].name, "bcast/binomial");
  EXPECT_EQ(a.coll_groups[0].calls, 2u);
  EXPECT_NEAR(a.coll_groups[0].imbalance, 3.0, 1e-9);

  EXPECT_NEAR(a.wait_states[0].coll_imbalance, 0.0, 1e-9);
  EXPECT_NEAR(a.wait_states[1].coll_imbalance, 6.0, 1e-9);
  EXPECT_NEAR(a.wait_states[2].coll_imbalance, 4.0, 1e-9);
  EXPECT_NEAR(a.wait_states[3].coll_imbalance, 2.0, 1e-9);
}

// ---- top_segments ordering -------------------------------------------------

TEST(Analysis, TopSegmentsDurationDescendingAndCapped) {
  const auto a = analyze(late_sender_spans(), 2, std::vector<Micros>{31.0, 40.0});
  const auto top = a.top_segments(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_GE(top[0].duration(), top[1].duration());
  EXPECT_EQ(top[0].blame, Blame::Compute);   // 30 us
  EXPECT_EQ(top[1].blame, Blame::Eager);     // 9.5 us
}

// ---- end-to-end: cold vs warm registration cache ---------------------------

mpi::JobResult reg_run(Bytes cache_bytes) {
  mpi::JobConfig config;
  config.deployment = container::DeploymentSpec::native_hosts(2, 1);
  config.seed = 7;
  config.observe = true;
  config.tuning.reg_model = true;
  config.tuning.reg_cache_bytes = cache_bytes;
  return mpi::run_job(config, [](mpi::Process& p) {
    std::vector<std::uint8_t> buf(1_MiB);
    for (int i = 0; i < 4; ++i) {
      if (p.rank() == 0)
        p.world().send(std::span<const std::uint8_t>(buf), 1);
      else
        p.world().recv(std::span<std::uint8_t>(buf), 0);
    }
  });
}

TEST(Analysis, ColdRegCacheBlamesStrictlyMoreRegistrationThanWarm) {
  const auto cold_job = reg_run(0);
  const auto warm_job = reg_run(64_MiB);
  const auto cold =
      analyze(cold_job.spans, 2, cold_job.rank_times);
  const auto warm =
      analyze(warm_job.spans, 2, warm_job.rank_times);
  check_tiling(cold);
  check_tiling(warm);

  // The acceptance shape: a cold pin-down cache attributes strictly more
  // critical-path time to registration, and the job is strictly slower.
  EXPECT_GT(blame_of(cold, Blame::Registration),
            blame_of(warm, Blame::Registration));
  EXPECT_GT(cold.critical_path, warm.critical_path);
  Micros cold_reg = 0.0, warm_reg = 0.0;
  for (const auto& ws : cold.wait_states) cold_reg += ws.registration;
  for (const auto& ws : warm.wait_states) warm_reg += ws.registration;
  EXPECT_GT(cold_reg, warm_reg);
}

// ---- determinism of the v5 report section ----------------------------------

std::string analysis_json(const mpi::JobResult& result) {
  const auto a = analyze(result.spans, static_cast<int>(result.rank_times.size()),
                         result.rank_times);
  obs::JsonWriter w;
  obs::analysis::write_analysis(w, a);
  return w.str();
}

TEST(Analysis, V5SectionByteIdenticalAcrossReruns) {
  const std::string a = analysis_json(reg_run(0));
  const std::string b = analysis_json(reg_run(0));
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"critical_path_us\":"), std::string::npos);
  EXPECT_NE(a.find("\"blame\":"), std::string::npos);
  EXPECT_NE(a.find("\"registration\""), std::string::npos);
  EXPECT_NE(a.find("\"wait_states\":"), std::string::npos);
}

TEST(Analysis, SummaryRendersBlameAndWaitTables) {
  const auto a = analyze(late_sender_spans(), 2, std::vector<Micros>{31.0, 40.0});
  const std::string s = obs::analysis::analysis_summary(a);
  EXPECT_NE(s.find("critical path: 40 us"), std::string::npos);
  EXPECT_NE(s.find("compute"), std::string::npos);
  EXPECT_NE(s.find("late-sender"), std::string::npos);
}

}  // namespace
}  // namespace cbmpi
