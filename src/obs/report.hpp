// Run-report emitter: serializes one job's profile + metrics + span summary
// + fault report (+ optional scheduler ClusterMetrics) into a single
// versioned JSON document, and renders the Perfetto trace that pairs with
// it.
//
// Determinism: every section is emitted in a fixed order, metrics come from
// a name-sorted MetricsSnapshot, spans are sorted into canonical
// virtual-time order, and numbers use obs::format_double — so the same job
// config and seed produce byte-identical documents (the acceptance test for
// the whole observability layer). The JSON schema is documented in
// DESIGN.md §12 and validated in CI by tools/check_report.py.
#pragma once

#include <map>
#include <span>
#include <string>

#include "mpi/runtime.hpp"
#include "obs/analysis/analysis.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sched/scheduler.hpp"
#include "sim/trace.hpp"

namespace cbmpi::obs {

/// v2: adds the "recovery" section (checkpoints, restarts) to single
/// reports, the cluster "recovery" aggregates and per-job attempt/outcome
/// (+ crash attribution) rows to schedule reports.
/// v3: adds the "net" section (fabric model, per-link peak/mean utilization,
/// congested-transfer count, hop histogram) to single reports run under a
/// non-Ideal fabric; absent under FabricModel::Ideal.
/// v4: adds the "reg_cache" section (pin-down cache capacity, hit/miss/evict
/// counts, pinned-byte gauges) to single reports run with --reg-cache on;
/// absent when the registration model is off.
/// v5: adds p50/p95/p99 percentile fields to every metrics histogram, and —
/// only when the run was analyzed (--analyze) — the "analysis" section
/// (critical-path length, top-k segments, per-category blame, per-rank
/// wait-state table); schedule reports gain the same object per job row.
/// v6: adds the "migration" section. Single reports driven by
/// migrate::Engine get policy, proposal/execution counts, the cost gate's
/// prediction (pause + re-reg vs locality win) and one record per executed
/// move (quiesce round, drained messages, pause, pair locality delta,
/// invalidated pin-down entries); absent without a migration engine.
/// Schedule reports gain the same section whenever a migration policy is
/// on, aggregated across jobs plus per-job records.
inline constexpr int kRunReportVersion = 6;

/// What the emitter cannot read off a JobResult: how the job was launched.
struct ReportContext {
  std::string app;         ///< application / bench label
  std::string deployment;  ///< deployment label (hosts x containers x procs)
  std::string policy;      ///< locality policy name
  std::uint64_t seed = 0;

  /// Optional scheduler aggregates (multi-job runs); emitted as the
  /// "cluster" section when non-null.
  const sched::ClusterMetrics* cluster = nullptr;

  /// Critical-path analysis (--analyze); emitted as the "analysis" section
  /// when non-null.
  const analysis::Analysis* analysis = nullptr;

  /// Schedule mode with --analyze: per-job analyses keyed by job name.
  const std::map<std::string, analysis::Analysis>* job_analyses = nullptr;
};

/// The versioned single-job run report (schema "cbmpi.run_report").
std::string run_report_json(const ReportContext& ctx, const mpi::JobResult& result);

/// Multi-job (scheduler) run report: cluster metrics plus one row per
/// scheduled job. Same schema id, "mode":"schedule".
std::string schedule_report_json(const ReportContext& ctx,
                                 const sched::Scheduler& scheduler);

/// Perfetto / chrome://tracing document: spans become duration events
/// ("ph":"X") on one track per rank plus one per channel; the legacy
/// instant TraceEvents ride along unchanged ("ph":"i"). Transfers carry
/// flow arrows ("ph":"s"/"f") from the sender's hand-off to the receiver's
/// Proto slice. With a non-null `analysis`, its segments are rendered on a
/// dedicated "critical path" track. `spans` may be in any order; they are
/// canonically sorted here.
std::string to_perfetto(std::span<const Span> spans,
                        std::span<const sim::TraceEvent> events,
                        const analysis::Analysis* analysis = nullptr);

/// Human-readable one-screen rendering of a metrics snapshot (cbmpirun
/// --metrics).
std::string metrics_summary(const MetricsSnapshot& snapshot);

/// Emits the ClusterMetrics object body (shared by both report flavors).
void write_cluster_metrics(JsonWriter& w, const sched::ClusterMetrics& metrics);

}  // namespace cbmpi::obs
