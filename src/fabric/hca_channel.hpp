// HCA channel: InfiniBand verbs-level communication.
//
// Paths:
//   * inter-host — NIC injection, wire, one switch hop;
//   * intra-host loopback — the path the default (hostname-based) runtime
//     forces co-resident containers onto: payload crosses PCIe down to the
//     NIC and back up, so both latency and bandwidth are far worse than SHM.
//
// Protocols:
//   * eager (size < MV2_IBA_EAGER_THRESHOLD): sender injects into the
//     receiver's eager ring, receiver pays a copy into the user buffer;
//   * rendezvous: RTS/CTS handshake, then zero-copy RDMA of the payload.
// The threshold trade-off (receiver copy grows with size vs. two extra
// handshake trips) is what produces the Fig. 7(c) optimum near 17 K.
//
// Queue pairs are created lazily per connected process pair, mirroring
// MVAPICH2's on-demand connection management.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include "fabric/channel_costs.hpp"
#include "fabric/reg_cache.hpp"
#include "fabric/tuning.hpp"
#include "net/fabric.hpp"
#include "topo/calibration.hpp"

namespace cbmpi::fabric {

class HcaChannel {
 public:
  HcaChannel(const topo::MachineProfile& profile, const TuningParams& tuning)
      : profile_(&profile), tuning_(tuning) {}

  /// Routes subsequent inter-host cost queries that carry a TransferCtx
  /// through the fabric model: delivery latency becomes the routed path
  /// latency, bandwidth the VF-capped narrowest link, and — when `congestion`
  /// is non-null (apply pass) — each transfer's bandwidth term is stretched
  /// by its settled contention factor. Queries without a ctx (estimates,
  /// loopback, Ideal model) keep the flat cost model bit-for-bit.
  void attach_fabric(const net::Fabric* fabric,
                     const net::CongestionMap* congestion) {
    fabric_ = fabric;
    congestion_ = congestion;
  }

  /// Lazily establishes the queue pair between two world ranks.
  void ensure_connected(int a, int b);

  /// Number of queue pairs created so far.
  std::size_t queue_pairs() const;

  EagerCosts eager_costs(Bytes size, bool loopback, bool sriov = false,
                         const net::TransferCtx* ctx = nullptr) const;

  /// `posted_at` is when the receive was posted; `busy_until` is when the
  /// receiver finished its previous incoming transfer. When the receiver is
  /// transfer-bound (busy_until dominates) the RTS/CTS handshake of this
  /// message overlapped with the previous transfer and only a small residue
  /// remains on the critical path.
  RndvTimes rndv_times(Bytes size, bool loopback, Micros rts_sent_at,
                       Micros posted_at, Micros busy_until = 0.0,
                       bool sriov = false,
                       const net::TransferCtx* ctx = nullptr) const;

  /// Registration-model rendezvous: both endpoints pin their buffers per
  /// `reg`, chunked at TuningParams::rndv_chunk so registration of chunk
  /// k+1 overlaps the RDMA of chunk k. The receiver's chunk-0 pin delays
  /// the CTS; the sender's overlaps the handshake. Falls back to the plain
  /// overload bit-identically when the model is off.
  RndvTimes rndv_times(Bytes size, bool loopback, Micros rts_sent_at,
                       Micros posted_at, Micros busy_until, bool sriov,
                       const net::TransferCtx* ctx, const RegPlan& reg) const;

  OneSidedCosts one_sided_costs(Bytes size, bool loopback, bool sriov = false,
                                const net::TransferCtx* ctx = nullptr) const;

  /// Wire time the settled contention factor adds to `size` bytes on this
  /// routed path vs. the same path uncontended. Purely observational (feeds
  /// the Proto span `stall` field for src/obs/analysis); zero without a
  /// routed ctx or under a factor of 1.
  Micros contention_stall(Bytes size, bool loopback, bool sriov,
                          const net::TransferCtx* ctx) const;

  /// --- pin-down registration model (TuningParams::reg_model) --------------

  bool reg_model() const { return tuning_.reg_model; }

  /// Creates the per-rank pin-down cache; the runtime calls it once before
  /// rank threads start, with capacities already scaled by each host's
  /// SR-IOV VF share. No-op cost-wise when the model is off.
  void init_reg_cache(std::vector<Bytes> per_rank_capacity);

  /// Explicit reg/dereg cost of pinning `size` bytes (profile terms scaled
  /// by TuningParams::reg_cost_scale).
  RegCosts reg_costs(Bytes size) const;

  /// Cache consultation for one endpoint of a rendezvous: mutates `rank`'s
  /// shard (only that rank's thread may call it) and converts any eviction
  /// or transient-unpin work into a virtual-time charge for the RegPlan.
  struct RegLookup {
    bool hit = false;
    std::uint64_t evictions = 0;
    Micros extra = 0.0;  ///< dereg time folded into the reg window
  };
  RegLookup reg_lookup(int rank, std::uint64_t buffer_id, Bytes size);

  const RegistrationCache* reg_cache() const { return reg_cache_.get(); }
  /// Pre-start warming hook for migration-carried registrations; call only
  /// between init_reg_cache() and the first rank-thread lookup.
  RegistrationCache* mutable_reg_cache() { return reg_cache_.get(); }

  /// Job-level outcome; `enabled` is false when the model is off.
  RegCacheStats reg_cache_stats() const;

  /// One-way latency of a header-only control message.
  Micros control_latency(bool loopback) const;

 private:
  BytesPerMicro injection_bw(bool loopback, bool sriov) const;
  /// Fabric-aware variants: fall back to the flat model without a ctx.
  bool routed(bool loopback, const net::TransferCtx* ctx) const {
    return fabric_ != nullptr && ctx != nullptr && !loopback &&
           ctx->src_host != ctx->dst_host;
  }
  Micros delivery_latency(bool loopback, const net::TransferCtx* ctx) const;
  BytesPerMicro payload_bw(bool loopback, bool sriov,
                           const net::TransferCtx* ctx) const;
  double contention_factor(const net::TransferCtx* ctx) const;

  const topo::MachineProfile* profile_;
  TuningParams tuning_;
  const net::Fabric* fabric_ = nullptr;
  const net::CongestionMap* congestion_ = nullptr;
  std::unique_ptr<RegistrationCache> reg_cache_;

  mutable std::mutex mutex_;
  std::set<std::pair<int, int>> queue_pairs_;
};

}  // namespace cbmpi::fabric
