// cbmpi-analyze — offline run-report inspector and differ.
//
//   cbmpi-analyze report.json              # one report: metrics + blame
//   cbmpi-analyze fresh.json base.json     # diff: relative deltas vs base
//
// Reads any v4/v5 "cbmpi.run_report" document (v4 percentiles are derived
// from the histogram buckets). With two reports it prints the relative
// change of every scalar the documents share — e.g. the registration-blame
// delta between a cold and a warm pin-down-cache run:
//
//   analysis.blame.registration_us   812.430   31.207   +2503.4%
//
// Exit status: 0 on success, 2 on usage/parse errors.
#include <cstdio>
#include <string>
#include <vector>

#include "obs/analysis/report_facts.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: cbmpi-analyze <report.json> [baseline.json]\n\n"
          "Prints the comparable scalar facts of one cbmpi run report\n"
          "(critical-path blame, wait states, percentiles, counters), or\n"
          "the relative delta of every scalar two reports share.\n");
      return 0;
    }
    paths.push_back(arg);
  }
  if (paths.empty() || paths.size() > 2) {
    std::fprintf(stderr, "usage: cbmpi-analyze <report.json> [baseline.json]\n");
    return 2;
  }

  using cbmpi::obs::analysis::load_report_facts;
  const auto fresh = load_report_facts(paths[0]);
  if (!fresh.ok) {
    std::fprintf(stderr, "cbmpi-analyze: %s\n", fresh.error.c_str());
    return 2;
  }
  if (paths.size() == 1) {
    std::fputs(cbmpi::obs::analysis::render_report(fresh).c_str(), stdout);
    return 0;
  }
  const auto baseline = load_report_facts(paths[1]);
  if (!baseline.ok) {
    std::fprintf(stderr, "cbmpi-analyze: %s\n", baseline.error.c_str());
    return 2;
  }
  std::fputs(
      cbmpi::obs::analysis::render_diff(fresh, baseline).c_str(), stdout);
  return 0;
}
