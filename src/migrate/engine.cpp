#include "migrate/engine.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "common/error.hpp"
#include "migrate/coordinator.hpp"
#include "topo/hardware.hpp"

namespace cbmpi::migrate {

namespace {

/// Flat-model time for one image chunk over the HCA path (two switch hops,
/// the calibration default when no fabric topology is attached).
Micros flat_transfer_us(const topo::MachineProfile& profile, Bytes bytes) {
  return profile.hca_post_overhead + profile.hca_wire_latency +
         2.0 * profile.hca_switch_latency +
         static_cast<double>(bytes) / profile.hca_link_bw;
}

obs::Span shift_span(obs::Span span, Micros offset) {
  span.begin += offset;
  span.end += offset;
  if (span.posted_at >= 0.0) span.posted_at += offset;
  if (span.sent_at >= 0.0) span.sent_at += offset;
  if (span.avail_at >= 0.0) span.avail_at += offset;
  return span;
}

/// Counters sum, gauges take the resumed segment's value (they are
/// last-state-wins by nature), histograms merge bucket-wise. Rebuilding
/// through std::map keeps every vector name-sorted, as snapshot() does.
obs::MetricsSnapshot merge_metrics(const obs::MetricsSnapshot& a,
                                   const obs::MetricsSnapshot& b) {
  std::map<std::string, std::uint64_t> counters(a.counters.begin(),
                                                a.counters.end());
  for (const auto& [name, value] : b.counters) counters[name] += value;
  std::map<std::string, double> gauges(a.gauges.begin(), a.gauges.end());
  for (const auto& [name, value] : b.gauges) gauges[name] = value;
  std::map<std::string, obs::HistogramSnapshot> histograms(
      a.histograms.begin(), a.histograms.end());
  for (const auto& [name, hist] : b.histograms) {
    auto [it, fresh] = histograms.emplace(name, hist);
    if (fresh) continue;
    auto& merged = it->second;
    merged.count += hist.count;
    merged.sum += hist.sum;
    std::map<std::uint64_t, std::uint64_t> buckets;
    for (const auto& bucket : merged.buckets) buckets[bucket.upper] += bucket.count;
    for (const auto& bucket : hist.buckets) buckets[bucket.upper] += bucket.count;
    merged.buckets.clear();
    for (const auto& [upper, count] : buckets)
      merged.buckets.push_back({upper, count});
  }
  obs::MetricsSnapshot out;
  out.counters.assign(counters.begin(), counters.end());
  out.gauges.assign(gauges.begin(), gauges.end());
  out.histograms.assign(histograms.begin(), histograms.end());
  return out;
}

faults::FaultReport merge_faults(const faults::FaultReport& a,
                                 const faults::FaultReport& b, Micros offset) {
  faults::FaultReport out = a;
  for (faults::FaultEvent event : b.injected) {
    if (event.at > 0.0) event.at += offset;
    out.injected.push_back(std::move(event));
  }
  out.degradations.insert(out.degradations.end(), b.degradations.begin(),
                          b.degradations.end());
  out.shm_retries += b.shm_retries;
  out.cma_retries += b.cma_retries;
  out.hca_retries += b.hca_retries;
  out.time_lost += b.time_lost;
  return out;
}

}  // namespace

CostEstimate Engine::estimate(const topo::MachineProfile& profile,
                              const fabric::TuningParams& tuning,
                              const CostModel& cost, Bytes image_bytes,
                              int moved_ranks, const TrafficForecast& forecast) {
  CBMPI_REQUIRE(moved_ranks > 0, "a move needs at least one rank");
  CBMPI_REQUIRE(cost.precopy_rounds >= 0, "precopy_rounds must be >= 0, got ",
                cost.precopy_rounds);
  CBMPI_REQUIRE(cost.dirty_rate >= 0.0 && cost.dirty_rate <= 1.0,
                "dirty_rate must be in [0, 1], got ", cost.dirty_rate);
  CostEstimate out;
  out.image_bytes = image_bytes;
  out.precopy_rounds = cost.precopy_rounds;
  // Pre-copy: round i re-sends the image fraction dirtied during round i-1;
  // those copies overlap execution, only the residue stops the job.
  double dirty = 1.0;
  for (int i = 0; i < cost.precopy_rounds; ++i) {
    out.precopy_us += flat_transfer_us(
        profile, static_cast<Bytes>(static_cast<double>(image_bytes) * dirty));
    dirty *= cost.dirty_rate;
  }
  out.stop_copy_bytes =
      static_cast<Bytes>(static_cast<double>(image_bytes) * dirty);
  const Bytes per_rank =
      image_bytes / static_cast<Bytes>(std::max(moved_ranks, 1));
  // Pause = snapshot write + stop-and-copy + snapshot read on the far side.
  out.pause_us = 2.0 * mpi::CheckpointStore::snapshot_cost(per_rank) +
                 flat_transfer_us(profile, out.stop_copy_bytes);
  if (tuning.reg_model)
    out.rereg_us = static_cast<double>(moved_ranks) * tuning.reg_cost_scale *
                   (profile.hca_reg_base +
                    static_cast<double>(per_rank) / profile.hca_reg_bw);
  out.total_us = out.pause_us + out.rereg_us;
  // Locality win: every message a formerly-remote pair still exchanges saves
  // the HCA-vs-SHM latency gap, every byte the bandwidth gap.
  const Micros msg_delta = profile.hca_post_overhead + profile.hca_wire_latency +
                           2.0 * profile.hca_switch_latency -
                           profile.shm_base_latency;
  const double byte_delta =
      1.0 / profile.hca_link_bw - 1.0 / profile.memcpy_bw_intra_socket;
  out.predicted_win_us =
      static_cast<double>(forecast.messages) * std::max(msg_delta, 0.0) +
      static_cast<double>(forecast.bytes) * std::max(byte_delta, 0.0);
  out.worthwhile = out.predicted_win_us > out.total_us * cost.cost_margin;
  return out;
}

mpi::JobResult Engine::run(const mpi::JobConfig& config,
                           const std::function<void(mpi::Process&)>& body,
                           const MigrationPlan& plan) {
  const MoveSpec& move = plan.move;
  CBMPI_REQUIRE(config.quiesce == nullptr && !config.reg_warm,
                "migration engines cannot nest");
  CBMPI_REQUIRE(!move.ranks.empty(), "a migration moves at least one rank");
  CBMPI_REQUIRE(move.dst_cores.size() == move.ranks.size(),
                "need one destination core per moved rank (",
                move.dst_cores.size(), " cores for ", move.ranks.size(),
                " ranks)");

  // --- segment 1: original placement, quiesce armed -------------------------
  Coordinator coord(plan.epoch);
  mpi::JobConfig seg1_config = config;
  seg1_config.quiesce = &coord;
  auto warm = std::make_shared<fabric::RegCacheWarmState>();
  if (config.tuning.reg_model) seg1_config.reg_warm = warm;
  // A crash before the quiesce propagates unchanged: the scheduler's normal
  // requeue path handles it and may re-propose the move on the next attempt.
  mpi::JobResult seg1 = mpi::run_job(seg1_config, body);

  MigrationReport report;
  report.enabled = true;
  report.policy = plan.policy;
  report.proposed = 1;
  report.predicted_win_us = plan.estimate.predicted_win_us;
  report.predicted_cost_us = plan.estimate.total_us;

  if (!coord.fired()) {
    // The job finished before the epoch (or its body never checkpoints):
    // there was nothing left to migrate.
    seg1.migration = std::move(report);
    return seg1;
  }

  // --- mutate the placement: move the container ------------------------------
  const int hosts_needed = config.placement ? config.placement->num_hosts()
                                            : config.deployment.num_hosts;
  container::JobPlacement base =
      config.placement
          ? *config.placement
          : container::plan_deployment(
                topo::ClusterBuilder()
                    .hosts(std::max(config.cluster_hosts, hosts_needed))
                    .build(),
                config.deployment);
  if (!base.heterogeneous()) {
    // Normalize to the host_cpusets representation so one host can gain or
    // lose a container.
    std::vector<std::vector<std::vector<int>>> host_cpusets;
    for (int h = 0; h < base.num_hosts(); ++h) {
      std::vector<std::vector<int>> on_host;
      for (int c = 0; c < base.containers_on(h); ++c)
        on_host.push_back(base.cpuset_of(h, c));
      host_cpusets.push_back(std::move(on_host));
    }
    base.host_cpusets = std::move(host_cpusets);
  }

  CBMPI_REQUIRE(move.src_host >= 0 && move.src_host < base.num_hosts(),
                "move source host ", move.src_host, " outside the placement");
  CBMPI_REQUIRE(
      move.container_index >= 0 &&
          move.container_index < base.containers_on(move.src_host),
      "move source container ", move.container_index, " not on host ",
      move.src_host, " (native ranks cannot migrate)");
  for (const int r : move.ranks) {
    CBMPI_REQUIRE(r >= 0 && r < base.total_ranks(), "moved rank ", r,
                  " outside the job");
    const auto& slot = base.slots[static_cast<std::size_t>(r)];
    CBMPI_REQUIRE(slot.host == move.src_host &&
                      slot.container_index == move.container_index,
                  "rank ", r, " is not in the moved container");
  }

  // Destination: an existing local host when the physical id is already part
  // of the job, else a fresh local id appended to the placement.
  std::vector<int> physical = config.physical_hosts;
  auto phys_of = [&](int local) {
    return physical.empty() ? local
                            : physical[static_cast<std::size_t>(local)];
  };
  const int src_phys = phys_of(move.src_host);
  CBMPI_REQUIRE(move.dst_phys_host >= 0 && move.dst_phys_host != src_phys,
                "move destination must be a different physical host");
  int dst_local = -1;
  for (int h = 0; h < base.num_hosts(); ++h)
    if (phys_of(h) == move.dst_phys_host) dst_local = h;
  container::JobPlacement mutated = base;
  if (dst_local < 0) {
    if (physical.empty()) {
      // Standalone job: local ids are physical ids, so growing the placement
      // up to the destination id keeps that identity.
      while (static_cast<int>(mutated.host_cpusets.size()) <=
             move.dst_phys_host)
        mutated.host_cpusets.emplace_back();
      dst_local = move.dst_phys_host;
    } else {
      dst_local = static_cast<int>(mutated.host_cpusets.size());
      mutated.host_cpusets.emplace_back();
      physical.push_back(move.dst_phys_host);
    }
  }

  auto& src_containers =
      mutated.host_cpusets[static_cast<std::size_t>(move.src_host)];
  CBMPI_REQUIRE(move.dst_cores.size() ==
                    src_containers[static_cast<std::size_t>(move.container_index)]
                        .size(),
                "destination cpuset size must match the moved container's");
  src_containers.erase(src_containers.begin() + move.container_index);
  mutated.host_cpusets[static_cast<std::size_t>(dst_local)].push_back(
      move.dst_cores);
  const int new_container =
      static_cast<int>(
          mutated.host_cpusets[static_cast<std::size_t>(dst_local)].size()) -
      1;
  const int cores_per_socket = plan.cores_per_socket > 0
                                   ? plan.cores_per_socket
                                   : topo::HostShape{}.cores_per_socket;
  for (auto& slot : mutated.slots)
    if (slot.host == move.src_host && slot.container_index > move.container_index)
      --slot.container_index;
  for (const int r : move.ranks) {
    auto& slot = mutated.slots[static_cast<std::size_t>(r)];
    slot.host = dst_local;
    slot.container_index = new_container;
    const int flat = move.dst_cores[static_cast<std::size_t>(slot.core_slot)];
    slot.core = topo::CoreId{flat / cores_per_socket, flat % cores_per_socket};
  }

  // --- the stop-and-copy pause ----------------------------------------------
  const Bytes image_bytes = coord.total_bytes();
  double dirty = 1.0;
  for (int i = 0; i < plan.cost.precopy_rounds; ++i) dirty *= plan.cost.dirty_rate;
  const Bytes stop_copy_bytes =
      static_cast<Bytes>(static_cast<double>(image_bytes) * dirty);
  Micros transfer_pause;
  std::unique_ptr<net::Fabric> fabric;
  if (config.fabric.enabled()) {
    // Charge the image over the modelled fabric: the routed path's latency
    // plus its (VF-capped) uncontended rate between the two hosts.
    net::FabricConfig fabric_config = config.fabric;
    if (fabric_config.hosts <= 0)
      fabric_config.hosts = std::max(src_phys, move.dst_phys_host) + 1;
    std::vector<int> vfs(static_cast<std::size_t>(fabric_config.hosts), 1);
    fabric = std::make_unique<net::Fabric>(fabric_config, config.profile,
                                           std::move(vfs));
    transfer_pause =
        fabric->path_latency(src_phys, move.dst_phys_host) +
        static_cast<double>(stop_copy_bytes) /
            fabric->flow_rate_cap(src_phys, move.dst_phys_host, /*sriov=*/true);
  } else {
    transfer_pause = flat_transfer_us(config.profile, stop_copy_bytes);
  }
  const Micros offset = seg1.job_time + transfer_pause;

  // --- segment 2: resume on the destination ---------------------------------
  mpi::JobConfig seg2_config = config;
  seg2_config.placement = mutated;
  seg2_config.physical_hosts = physical;
  seg2_config.cluster_hosts =
      std::max(config.cluster_hosts, mutated.num_hosts());
  auto snapshot = std::make_shared<mpi::CheckpointData>();
  snapshot->round = coord.round();
  snapshot->at = coord.at();
  snapshot->progress_us =
      (config.restore ? config.restore->progress_us : 0.0) + coord.at();
  snapshot->rank_state = coord.take_state();
  seg2_config.restore = snapshot;

  MigrationRecord record;
  record.move = move;
  record.cost = plan.estimate;
  record.quiesce_round = coord.round();
  record.quiesce_at = coord.at();
  record.resume_at = offset;
  record.snapshot_bytes = image_bytes;
  record.drained_msgs = coord.drained_pending();
  if (config.tuning.reg_model) {
    // The moved ranks' registrations die with the source container; their
    // cold re-registration on the destination is the blame delta ISSUE 9's
    // analyzer attributes to the migration.
    for (const int r : move.ranks) {
      if (r >= static_cast<int>(warm->entries.size())) continue;
      auto& entries = warm->entries[static_cast<std::size_t>(r)];
      record.invalidated_reg_entries += entries.size();
      for (const auto& entry : entries)
        record.invalidated_reg_bytes += entry.bytes;
      entries.clear();
    }
    seg2_config.reg_warm = warm;
  }

  mpi::JobResult seg2;
  try {
    seg2 = mpi::run_job(seg2_config, body);
  } catch (const mpi::JobCrashedError& e) {
    // Re-time the crash onto the stitched timeline before rethrowing, so the
    // scheduler's lost-work accounting spans both segments.
    faults::CrashInfo info = e.info();
    info.at += offset;
    if (info.last_checkpoint > 0.0) info.last_checkpoint += offset;
    std::ostringstream os;
    os << e.what() << " (after live migration at t=" << offset << " us)";
    throw mpi::JobCrashedError(os.str(), info, e.checkpoint(),
                               e.checkpoints_committed());
  }

  // --- stitch the two segments into one timeline -----------------------------
  mpi::JobResult out;
  out.job_time = offset + seg2.job_time;
  out.rank_times.reserve(seg2.rank_times.size());
  for (const Micros t : seg2.rank_times) out.rank_times.push_back(offset + t);
  out.profile = seg1.profile;
  out.profile.total.merge(seg2.profile.total);
  for (std::size_t i = 0; i < move.ranks.size(); ++i)
    out.profile.total.add_recovery(transfer_pause);
  out.hca_queue_pairs = seg2.hca_queue_pairs;
  out.trace = std::move(seg1.trace);
  for (sim::TraceEvent event : seg2.trace) {
    event.at += offset;
    out.trace.push_back(std::move(event));
  }
  out.fault_report = merge_faults(seg1.fault_report, seg2.fault_report, offset);
  out.net = seg2.net;
  if (seg1.net.enabled) {
    out.net.transfers += seg1.net.transfers;
    out.net.congested_transfers += seg1.net.congested_transfers;
    out.net.max_factor = std::max(out.net.max_factor, seg1.net.max_factor);
    out.net.max_peak_util = std::max(out.net.max_peak_util, seg1.net.max_peak_util);
  }
  out.reg_cache = seg2.reg_cache;
  if (seg1.reg_cache.enabled) {
    out.reg_cache.hits += seg1.reg_cache.hits;
    out.reg_cache.misses += seg1.reg_cache.misses;
    out.reg_cache.evictions += seg1.reg_cache.evictions;
    out.reg_cache.registered_bytes += seg1.reg_cache.registered_bytes;
    out.reg_cache.peak_pinned_bytes = std::max(seg1.reg_cache.peak_pinned_bytes,
                                               seg2.reg_cache.peak_pinned_bytes);
  }
  out.checkpoints = std::move(seg1.checkpoints);
  for (mpi::CheckpointEvent event : seg2.checkpoints) {
    event.at += offset;
    out.checkpoints.push_back(event);
  }
  // "Restored" describes what the *caller* asked for; the engine's internal
  // resume snapshot is migration bookkeeping, not a crash restart.
  out.restored = config.restore != nullptr;
  if (config.restore) {
    out.restore_round = config.restore->round;
    out.restore_progress_us = config.restore->progress_us;
  }
  if (config.observe) {
    out.spans = std::move(seg1.spans);
    for (const int r : move.ranks)
      out.spans.push_back({"migrate-transfer", obs::SpanCat::Migrate, r, -1, -1,
                           stop_copy_bytes, seg1.job_time, offset,
                           std::string("host ") + std::to_string(src_phys) +
                               " -> " + std::to_string(move.dst_phys_host)});
    for (const obs::Span& span : seg2.spans)
      out.spans.push_back(shift_span(span, offset));
    out.metrics = merge_metrics(seg1.metrics, seg2.metrics);
    for (auto& [name, value] : out.metrics.gauges)
      if (name == "job.virtual_time_us") value = out.job_time;
  }

  // --- locality transitions + the report -------------------------------------
  const int nranks = base.total_ranks();
  auto phys2_of = [&](int local) {
    return physical.empty() ? local
                            : physical[static_cast<std::size_t>(local)];
  };
  for (int i = 0; i < nranks; ++i) {
    for (int j = i + 1; j < nranks; ++j) {
      const bool before =
          phys_of(static_cast<int>(base.slots[static_cast<std::size_t>(i)].host)) ==
          phys_of(static_cast<int>(base.slots[static_cast<std::size_t>(j)].host));
      const bool after =
          phys2_of(static_cast<int>(
              mutated.slots[static_cast<std::size_t>(i)].host)) ==
          phys2_of(static_cast<int>(
              mutated.slots[static_cast<std::size_t>(j)].host));
      if (!before && after) ++record.pairs_to_local;
      if (before && !after) ++record.pairs_to_remote;
    }
  }
  // The stop-the-world interval: the slowest rank's snapshot write + the
  // stop-and-copy transfer + the matching restore read at resume.
  Micros snap_cost = 0.0;
  for (const auto& state : snapshot->rank_state)
    snap_cost = std::max(snap_cost,
                         mpi::CheckpointStore::snapshot_cost(state.size()));
  record.pause_us = 2.0 * snap_cost + transfer_pause;
  report.executed = 1;
  report.total_pause_us = record.pause_us;
  report.records.push_back(std::move(record));
  out.migration = std::move(report);
  return out;
}

}  // namespace cbmpi::migrate
