#include "container/engine.hpp"

namespace cbmpi::container {

Container& Engine::run(topo::HostId host, ContainerSpec spec) {
  auto& host_os = machine_->host_os(host);
  const int id = static_cast<int>(containers_.size());
  containers_.push_back(std::make_unique<Container>(id, std::move(spec), host_os));
  return *containers_.back();
}

std::unique_ptr<osl::SimProcess> Engine::spawn(Container& cont, int core_slot) const {
  return std::make_unique<osl::SimProcess>(cont.host(), cont.namespaces(),
                                           cont.core_for(core_slot));
}

std::unique_ptr<osl::SimProcess> Engine::spawn_native(topo::HostId host,
                                                      topo::CoreId core) const {
  auto& host_os = machine_->host_os(host);
  return std::make_unique<osl::SimProcess>(host_os, host_os.root_namespaces(), core);
}

}  // namespace cbmpi::container
