#include "fabric/tuning.hpp"

namespace cbmpi::fabric {
static_assert(TuningParams{}.smp_eager_size == 8_KiB);
static_assert(TuningParams{}.smpi_length_queue == 128_KiB);
static_assert(TuningParams{}.iba_eager_threshold == 17_KiB);
}  // namespace cbmpi::fabric
