// Link-contention engine: exact max-min fair sharing in virtual time.
//
// Transfers are modelled as fluid flows. At every flow start/finish event the
// engine recomputes the rate of each in-flight flow by progressive filling
// (water-filling): all unfrozen flows grow at the same rate until a link
// saturates or a flow hits its own rate cap, the constrained flows freeze,
// and filling continues with the rest. Between events every flow drains at
// its computed rate.
//
// Determinism: settle() is a pure function of the flow set — flows are
// canonically sorted by (start, key) first, events are processed in virtual
// time, and no wall-clock or iteration-order effect can leak in. The same
// flow set always produces bit-identical finish times.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace cbmpi::net {

/// Identity of one recorded transfer: the sender's (world rank, per-sender
/// sequence number). Unique per job and identical across reruns.
struct FlowKey {
  int src_rank = -1;
  std::uint64_t seq = 0;
  friend bool operator==(const FlowKey& a, const FlowKey& b) {
    return a.src_rank == b.src_rank && a.seq == b.seq;
  }
  friend bool operator<(const FlowKey& a, const FlowKey& b) {
    if (a.src_rank != b.src_rank) return a.src_rank < b.src_rank;
    return a.seq < b.seq;
  }
};

/// One fluid flow: `bytes` injected starting at `start`, traversing the
/// directed links in `path`, never faster than `rate_cap`.
struct Flow {
  FlowKey key;
  std::vector<int> path;  ///< directed LinkIds (may be empty: host-local)
  double bytes = 0.0;
  Micros start = 0.0;
  double rate_cap = 0.0;  ///< bytes/us; must be > 0
};

struct FlowOutcome {
  FlowKey key;
  Micros finish = 0.0;
  /// Contended duration over uncontended duration (bytes / rate_cap); >= 1,
  /// exactly 1.0 when the flow never shared a saturated link.
  double factor = 1.0;
  int hops = 0;
};

/// Per-link utilization as a fraction of capacity: `peak` is the largest
/// instantaneous allocation, `mean` averages over [busy_begin, busy_end].
struct LinkStats {
  double peak = 0.0;
  double mean = 0.0;
};

struct SettleResult {
  std::vector<FlowOutcome> flows;  ///< sorted by key
  std::vector<LinkStats> links;    ///< indexed by LinkId
  Micros busy_begin = 0.0;         ///< earliest flow start
  Micros busy_end = 0.0;           ///< latest flow finish
};

/// Runs the fluid simulation over one job's flows. `link_caps[l]` is link
/// l's capacity in bytes/us; every path entry must index into it.
SettleResult settle(std::vector<Flow> flows, const std::vector<double>& link_caps);

}  // namespace cbmpi::net
