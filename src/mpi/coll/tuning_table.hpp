// TuningTable: declarative algorithm selection for collectives.
//
// A table is an ordered list of entries, each matching a (collective, rank
// count, containers-per-host, message size) region and naming the algorithm
// to run there. Selection scans the entries in order and the *last* match
// wins, so a table reads like a layered config: broad defaults first, narrow
// overrides after. On top of the entries sit per-collective env-var pins
// (`CBMPI_BCAST_ALGORITHM=flat_tree` and friends, in the spirit of the MV2_*
// channel knobs) which beat every file/table entry.
//
// Text format (one entry per line, '#' starts a comment):
//
//   # collective  ranks  containers/host  msg-size   algorithm
//   bcast         *      *                0-64K      binomial
//   bcast         *      *                64K-       vandegeijn
//   allreduce     16-    2-               -32K       two_level
//
// Range syntax for the three numeric fields: `*` (any), `N` (exactly N),
// `A-B` (inclusive), `A-` (at least A), `-B` (at most B). Sizes take K/M/G
// suffixes (powers of 1024). `parse()` rejects malformed lines with their
// line number; `serialize()` emits the same format back (round-trips).
//
// The shipped `container_defaults()` table encodes the paper-derived choices
// for container deployments; `bench/ablation_collectives --autotune` sweeps
// the real algorithms and emits a fresh best-of table in this format.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "mpi/coll/types.hpp"

namespace cbmpi::coll {

/// One selection rule. All bounds are inclusive; the defaults match anything.
struct TuningEntry {
  Coll coll = Coll::Bcast;
  int min_ranks = 0;
  int max_ranks = std::numeric_limits<int>::max();
  int min_cph = 0;                      ///< containers per host (1 = native)
  int max_cph = std::numeric_limits<int>::max();
  Bytes min_size = 0;
  Bytes max_size = std::numeric_limits<Bytes>::max();
  Algo algo = Algo::Auto;

  bool matches(Coll c, Bytes size, int ranks, int cph) const {
    return c == coll && ranks >= min_ranks && ranks <= max_ranks &&
           cph >= min_cph && cph <= max_cph && size >= min_size &&
           size <= max_size;
  }
};

class TuningTable {
 public:
  /// Paper-derived defaults for container deployments: hierarchy wherever
  /// locality groups exist, bandwidth algorithms past the large-message
  /// switch points, Bruck for small alltoalls.
  static TuningTable container_defaults();

  /// Parses the text format above; throws Error naming `origin` and the
  /// 1-based line number on any malformed line.
  static TuningTable parse(const std::string& text,
                           const std::string& origin = "<string>");

  /// Reads and parses a tuning file; throws Error if unreadable or malformed.
  static TuningTable load_file(const std::string& path);

  /// Appends one rule; later rules beat earlier ones.
  void add(TuningEntry entry) { entries_.push_back(entry); }

  /// Appends all of `other`'s entries after ours and adopts its env pins —
  /// i.e. `other` wins wherever both tables speak.
  void merge(const TuningTable& other);

  /// Pins one collective to `algo` regardless of entries (what the env vars
  /// install). Algo::Auto clears the pin.
  void set_override(Coll coll, Algo algo);

  /// Reads the CBMPI_<COLL>_ALGORITHM env vars and installs the pins; throws
  /// Error on an unknown or invalid algorithm name.
  void apply_env();

  /// The algorithm for this call site: env pin if set, else the last matching
  /// entry, else Algo::Auto. `cph` is containers per host (1 = native).
  Algo select(Coll coll, Bytes size, int ranks, int cph) const;

  /// Emits the parseable text form (entries only; pins are env-scoped).
  std::string serialize() const;

  const std::vector<TuningEntry>& entries() const { return entries_; }
  std::optional<Algo> override_for(Coll coll) const;

 private:
  std::vector<TuningEntry> entries_;
  std::optional<Algo> overrides_[kColls]{};
};

}  // namespace cbmpi::coll
