#include "obs/span.hpp"

#include <algorithm>
#include <tuple>

namespace cbmpi::obs {

const char* to_string(SpanCat cat) {
  switch (cat) {
    case SpanCat::Mpi: return "mpi";
    case SpanCat::Coll: return "coll";
    case SpanCat::Proto: return "proto";
    case SpanCat::Compute: return "compute";
    case SpanCat::Fault: return "fault";
    case SpanCat::Migrate: return "migrate";
  }
  return "?";
}

void SpanRecorder::record(Span span) {
  const std::scoped_lock lock(mutex_);
  spans_.push_back(std::move(span));
}

std::vector<Span> SpanRecorder::spans() const {
  const std::scoped_lock lock(mutex_);
  return spans_;
}

std::vector<Span> SpanRecorder::sorted_spans() const {
  auto snapshot = spans();
  sort_spans(snapshot);
  return snapshot;
}

std::size_t SpanRecorder::count() const {
  const std::scoped_lock lock(mutex_);
  return spans_.size();
}

std::size_t SpanRecorder::count(SpanCat cat) const {
  const std::scoped_lock lock(mutex_);
  return static_cast<std::size_t>(
      std::count_if(spans_.begin(), spans_.end(),
                    [cat](const Span& s) { return s.cat == cat; }));
}

void SpanRecorder::clear() {
  const std::scoped_lock lock(mutex_);
  spans_.clear();
}

void sort_spans(std::vector<Span>& spans) {
  std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
    // end sorts descending so an enclosing span precedes its children when
    // they share a begin time; everything after is a deterministic
    // tiebreak over the span's virtual-time payload.
    if (a.begin != b.begin) return a.begin < b.begin;
    if (a.end != b.end) return a.end > b.end;
    if (a.cat != b.cat) return static_cast<int>(a.cat) < static_cast<int>(b.cat);
    if (a.rank != b.rank) return a.rank < b.rank;
    if (a.peer != b.peer) return a.peer < b.peer;
    if (a.name != b.name) return a.name < b.name;
    return a.note < b.note;
  });
}

}  // namespace cbmpi::obs
