// Graph 500 substrate tests: generator determinism, distributed construction,
// BFS correctness + validation, channel-count invariants (the Table I story).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "apps/graph500/bfs.hpp"
#include "apps/graph500/validate.hpp"
#include "mpi/runtime.hpp"

namespace cbmpi {
namespace {

using apps::graph500::BfsParams;
using apps::graph500::BfsResult;
using apps::graph500::build_graph;
using apps::graph500::EdgeListParams;
using apps::graph500::kronecker_edge;
using apps::graph500::kronecker_slice;
using apps::graph500::kUnreached;
using apps::graph500::run_bfs;
using apps::graph500::validate_bfs;
using container::DeploymentSpec;
using fabric::LocalityPolicy;

TEST(Kronecker, DeterministicAndInRange) {
  const EdgeListParams params{10, 16, 7};
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const auto e1 = kronecker_edge(params, i);
    const auto e2 = kronecker_edge(params, i);
    EXPECT_EQ(e1.u, e2.u);
    EXPECT_EQ(e1.v, e2.v);
    EXPECT_LT(e1.u, params.num_vertices());
    EXPECT_LT(e1.v, params.num_vertices());
  }
}

TEST(Kronecker, SeedChangesEdges) {
  const EdgeListParams a{10, 16, 7};
  const EdgeListParams b{10, 16, 8};
  int same = 0;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const auto ea = kronecker_edge(a, i);
    const auto eb = kronecker_edge(b, i);
    if (ea.u == eb.u && ea.v == eb.v) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Kronecker, SliceMatchesPointwise) {
  const EdgeListParams params{8, 8, 3};
  const auto slice = kronecker_slice(params, 100, 120);
  ASSERT_EQ(slice.size(), 20u);
  for (std::size_t i = 0; i < slice.size(); ++i) {
    const auto e = kronecker_edge(params, 100 + i);
    EXPECT_EQ(slice[i].u, e.u);
    EXPECT_EQ(slice[i].v, e.v);
  }
}

TEST(Kronecker, SkewedDegreeDistribution) {
  // R-MAT graphs are skewed: the max degree should far exceed the average.
  const EdgeListParams params{12, 16, 1};
  std::map<std::uint64_t, int> degree;
  for (std::uint64_t i = 0; i < params.num_edges(); ++i) {
    const auto e = kronecker_edge(params, i);
    ++degree[e.u];
    ++degree[e.v];
  }
  int max_degree = 0;
  for (const auto& [v, d] : degree) max_degree = std::max(max_degree, d);
  EXPECT_GT(max_degree, 32 * 4);  // avg degree is 2*16; require >8x skew
}

TEST(DistGraph, EdgeCountConservedAcrossRankCounts) {
  const EdgeListParams params{10, 8, 5};
  std::map<int, std::uint64_t> totals;
  for (int ranks : {1, 2, 4}) {
    mpi::JobConfig config;
    config.deployment = DeploymentSpec::native_hosts(1, ranks);
    std::atomic<std::uint64_t> total{0};
    mpi::run_job(config, [&](mpi::Process& p) {
      const auto graph = build_graph(p, params);
      total += graph.local_edges();
    });
    totals[ranks] = total.load();
  }
  EXPECT_EQ(totals[1], totals[2]);
  EXPECT_EQ(totals[1], totals[4]);
  EXPECT_GT(totals[1], 0u);
}

TEST(DistGraph, AdjacencyIsSymmetric) {
  const EdgeListParams params{8, 8, 2};
  mpi::JobConfig config;
  config.deployment = DeploymentSpec::native_hosts(1, 1);
  mpi::run_job(config, [&](mpi::Process& p) {
    const auto graph = build_graph(p, params);
    std::set<std::pair<std::uint64_t, std::uint64_t>> edges;
    for (std::uint64_t u = 0; u < graph.local_vertices(); ++u)
      for (const auto v : graph.neighbors(u)) edges.insert({graph.to_global(u), v});
    for (const auto& [u, v] : edges)
      EXPECT_TRUE(edges.count({v, u})) << u << "->" << v << " has no reverse";
  });
}

struct BfsCase {
  int hosts;
  int containers;  // per host; 0 = native
  int procs_per_host;
  LocalityPolicy policy;
};

class BfsCorrectness : public testing::TestWithParam<BfsCase> {};

TEST_P(BfsCorrectness, ValidatesAndMatchesSerialCounts) {
  const auto& c = GetParam();
  const EdgeListParams params{9, 8, 11};

  // Reference: single-rank BFS visited count.
  std::uint64_t reference_visited = 0;
  int reference_levels = 0;
  {
    mpi::JobConfig config;
    config.deployment = DeploymentSpec::native_hosts(1, 1);
    mpi::run_job(config, [&](mpi::Process& p) {
      const auto graph = build_graph(p, params);
      const auto result = run_bfs(p, graph, 0);
      reference_visited = result.visited;
      reference_levels = result.levels;
      const auto report = validate_bfs(p, graph, result);
      EXPECT_TRUE(report.ok);
    });
  }
  ASSERT_GT(reference_visited, 1u);

  mpi::JobConfig config;
  config.deployment =
      c.containers == 0
          ? DeploymentSpec::native_hosts(c.hosts, c.procs_per_host)
          : DeploymentSpec::containers(c.hosts, c.containers, c.procs_per_host);
  config.policy = c.policy;
  mpi::run_job(config, [&](mpi::Process& p) {
    const auto graph = build_graph(p, params);
    const auto result = run_bfs(p, graph, 0);
    EXPECT_EQ(result.visited, reference_visited);
    EXPECT_EQ(result.levels, reference_levels);
    const auto report = validate_bfs(p, graph, result);
    EXPECT_TRUE(report.ok) << "bad_levels=" << report.bad_levels
                           << " missing_edges=" << report.missing_edges
                           << " unreached_parents=" << report.unreached_parents;
  });
}

INSTANTIATE_TEST_SUITE_P(
    Deployments, BfsCorrectness,
    testing::Values(BfsCase{1, 0, 4, LocalityPolicy::HostnameBased},
                    BfsCase{1, 2, 4, LocalityPolicy::HostnameBased},
                    BfsCase{1, 2, 4, LocalityPolicy::ContainerAware},
                    BfsCase{1, 4, 4, LocalityPolicy::ContainerAware},
                    BfsCase{2, 2, 4, LocalityPolicy::ContainerAware},
                    BfsCase{2, 0, 3, LocalityPolicy::HostnameBased}));

TEST(Bfs, MultipleRootsReachableSubsets) {
  const EdgeListParams params{9, 8, 11};
  mpi::JobConfig config;
  config.deployment = DeploymentSpec::native_hosts(1, 2);
  mpi::run_job(config, [&](mpi::Process& p) {
    const auto graph = build_graph(p, params);
    for (std::uint64_t root : {0ull, 17ull, 123ull}) {
      const auto result = run_bfs(p, graph, root);
      EXPECT_GE(result.visited, 1u);
      const auto report = validate_bfs(p, graph, result);
      EXPECT_TRUE(report.ok) << "root " << root;
    }
  });
}

TEST(Bfs, TotalTransferOpsInvariantAcrossScenarios) {
  // Table I's key invariant: the *total* number of message transfer
  // operations is the same in every deployment scenario — only the split
  // across channels changes.
  const EdgeListParams params{10, 8, 3};
  std::map<std::string, std::uint64_t> totals;
  std::map<std::string, std::uint64_t> hca_ops;
  for (int containers : {0, 1, 2, 4}) {
    mpi::JobConfig config;
    config.deployment = containers == 0
                            ? DeploymentSpec::native_hosts(1, 8)
                            : DeploymentSpec::containers(1, containers, 8);
    config.policy = LocalityPolicy::HostnameBased;
    // Flat collective algorithms: their internal message count depends only
    // on the rank count, so the total is exactly invariant (two-level
    // algorithms restructure with the locality groups and would shift the
    // total by a few control messages).
    config.tuning.two_level_collectives = false;
    const auto result = mpi::run_job(config, [&](mpi::Process& p) {
      const auto graph = build_graph(p, params);
      run_bfs(p, graph, 0);
    });
    const auto& total = result.profile.total;
    const std::uint64_t ops = total.channel_ops(fabric::ChannelKind::Cma) +
                              total.channel_ops(fabric::ChannelKind::Shm) +
                              total.channel_ops(fabric::ChannelKind::Hca);
    totals[config.deployment.label()] = ops;
    hca_ops[config.deployment.label()] = total.channel_ops(fabric::ChannelKind::Hca);
  }
  EXPECT_EQ(totals["Native"], totals["1-Container"]);
  EXPECT_EQ(totals["Native"], totals["2-Containers"]);
  EXPECT_EQ(totals["Native"], totals["4-Containers"]);
  EXPECT_EQ(hca_ops["Native"], 0u);
  EXPECT_EQ(hca_ops["1-Container"], 0u);
  EXPECT_GT(hca_ops["2-Containers"], 0u);
  EXPECT_GT(hca_ops["4-Containers"], hca_ops["2-Containers"]);
}

TEST(Bfs, LocalityAwareEliminatesSlowdown) {
  // The Fig. 1 vs Fig. 11 story at test scale: default BFS time grows with
  // container count; the locality-aware runtime keeps it near the
  // single-container time.
  const EdgeListParams params{10, 8, 3};
  auto bfs_time = [&](int containers, LocalityPolicy policy) {
    mpi::JobConfig config;
    config.deployment = containers == 0
                            ? DeploymentSpec::native_hosts(1, 8)
                            : DeploymentSpec::containers(1, containers, 8);
    config.policy = policy;
    Micros time = 0.0;
    mpi::run_job(config, [&](mpi::Process& p) {
      const auto graph = build_graph(p, params);
      const auto result = run_bfs(p, graph, 0);
      if (p.rank() == 0) time = result.time;
    });
    return time;
  };
  const Micros native = bfs_time(0, LocalityPolicy::HostnameBased);
  const Micros def4 = bfs_time(4, LocalityPolicy::HostnameBased);
  const Micros opt4 = bfs_time(4, LocalityPolicy::ContainerAware);
  EXPECT_GT(def4, native * 1.5) << "default 4-container case should be much slower";
  EXPECT_LT(opt4, native * 1.2) << "locality-aware should be near native";
}

}  // namespace
}  // namespace cbmpi
