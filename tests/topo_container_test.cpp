// Unit tests for the hardware model and the container runtime / deployment
// planner.
#include <gtest/gtest.h>

#include "container/deployment.hpp"
#include "container/engine.hpp"
#include "osl/machine.hpp"
#include "topo/hardware.hpp"

namespace cbmpi {
namespace {

TEST(Topo, ClusterBuilderDefaultsMatchPaperTestbed) {
  const auto cluster = topo::ClusterBuilder().build();
  EXPECT_EQ(cluster.num_hosts(), 16);
  EXPECT_EQ(cluster.host(0).shape().sockets, 2);
  EXPECT_EQ(cluster.host(0).shape().cores_per_socket, 12);
  EXPECT_EQ(cluster.host(0).shape().total_cores(), 24);
  EXPECT_TRUE(cluster.host(0).shape().has_hca);
  EXPECT_EQ(cluster.host(3).name(), "host3");
}

TEST(Topo, CoreMapping) {
  const auto cluster = topo::ClusterBuilder().hosts(1).build();
  const auto& host = cluster.host(0);
  const auto c0 = host.core_at(0);
  EXPECT_EQ(c0.socket, 0);
  EXPECT_EQ(c0.core, 0);
  const auto c13 = host.core_at(13);
  EXPECT_EQ(c13.socket, 1);
  EXPECT_EQ(c13.core, 1);
  EXPECT_THROW(host.core_at(24), Error);
}

TEST(Topo, CustomShape) {
  const auto cluster =
      topo::ClusterBuilder().hosts(2).sockets(4).cores_per_socket(8).hca(false).build();
  EXPECT_EQ(cluster.host(0).shape().total_cores(), 32);
  EXPECT_FALSE(cluster.host(1).shape().has_hca);
}

namespace {
container::ContainerSpec named(const std::string& name, bool privileged = true) {
  container::ContainerSpec spec;
  spec.name = name;
  spec.privileged = privileged;
  return spec;
}
}  // namespace

TEST(Container, FreshUtsGivesUniqueHostname) {
  osl::Machine machine(topo::ClusterBuilder().hosts(1).build());
  container::Engine engine(machine);
  auto& a = engine.run(0, named("cont-a"));
  auto& b = engine.run(0, named("cont-b"));
  EXPECT_EQ(a.hostname(), "cont-a");
  EXPECT_EQ(b.hostname(), "cont-b");
  EXPECT_FALSE(a.namespaces().shares(osl::NamespaceType::Uts, b.namespaces()));
}

TEST(Container, NamespaceSharingFlags) {
  osl::Machine machine(topo::ClusterBuilder().hosts(1).build());
  container::Engine engine(machine);
  const auto& root = machine.host_os(0).root_namespaces();

  auto& shared = engine.run(0, named("s"));  // defaults share ipc+pid
  EXPECT_TRUE(shared.namespaces().shares(osl::NamespaceType::Ipc, root));
  EXPECT_TRUE(shared.namespaces().shares(osl::NamespaceType::Pid, root));

  container::ContainerSpec isolated_spec;
  isolated_spec.name = "i";
  isolated_spec.share_host_ipc = false;
  isolated_spec.share_host_pid = false;
  auto& isolated = engine.run(0, isolated_spec);
  EXPECT_FALSE(isolated.namespaces().shares(osl::NamespaceType::Ipc, root));
  EXPECT_FALSE(isolated.namespaces().shares(osl::NamespaceType::Pid, root));
}

TEST(Container, PrivilegedControlsHcaAccess) {
  osl::Machine machine(topo::ClusterBuilder().hosts(1).build());
  container::Engine engine(machine);
  auto& priv = engine.run(0, named("p", true));
  auto& unpriv = engine.run(0, named("u", false));
  EXPECT_TRUE(priv.can_access_hca());
  EXPECT_FALSE(unpriv.can_access_hca());
}

TEST(Container, CpusetPinning) {
  osl::Machine machine(topo::ClusterBuilder().hosts(1).build());
  container::Engine engine(machine);
  container::ContainerSpec spec;
  spec.name = "pinned";
  spec.cpuset = {12, 13, 14};  // socket 1 cores
  auto& cont = engine.run(0, spec);
  EXPECT_EQ(cont.core_for(0).socket, 1);
  EXPECT_EQ(cont.core_for(2).core, 2);
  EXPECT_EQ(cont.core_for(3).core, 0);  // wraps
  container::ContainerSpec bad;
  bad.name = "bad";
  bad.cpuset = {99};
  EXPECT_THROW(engine.run(0, bad), Error);
}

TEST(Container, SpawnInheritsNamespaces) {
  osl::Machine machine(topo::ClusterBuilder().hosts(1).build());
  container::Engine engine(machine);
  auto& cont = engine.run(0, named("c"));
  auto proc = engine.spawn(cont, 0);
  EXPECT_EQ(proc->hostname(), "c");
  EXPECT_TRUE(proc->namespaces().shares(osl::NamespaceType::Uts, cont.namespaces()));
  auto native = engine.spawn_native(0, topo::CoreId{0, 0});
  EXPECT_EQ(native->hostname(), "host0");
}

TEST(Deployment, LabelsMatchPaperScenarios) {
  EXPECT_EQ(container::DeploymentSpec::native_hosts(1, 16).label(), "Native");
  EXPECT_EQ(container::DeploymentSpec::containers(1, 1, 16).label(), "1-Container");
  EXPECT_EQ(container::DeploymentSpec::containers(1, 2, 16).label(), "2-Containers");
  EXPECT_EQ(container::DeploymentSpec::containers(1, 4, 16).label(), "4-Containers");
}

TEST(Deployment, BlockDistribution) {
  const auto cluster = topo::ClusterBuilder().hosts(2).build();
  const auto placement = container::plan_deployment(
      cluster, container::DeploymentSpec::containers(2, 2, 4));
  ASSERT_EQ(placement.slots.size(), 8u);
  // Ranks 0..3 on host 0, 4..7 on host 1; two ranks per container.
  EXPECT_EQ(placement.slots[0].host, 0);
  EXPECT_EQ(placement.slots[3].host, 0);
  EXPECT_EQ(placement.slots[4].host, 1);
  EXPECT_EQ(placement.slots[0].container_index, 0);
  EXPECT_EQ(placement.slots[1].container_index, 0);
  EXPECT_EQ(placement.slots[2].container_index, 1);
  EXPECT_EQ(placement.slots[7].container_index, 1);
}

TEST(Deployment, NativeHasNoContainers) {
  const auto cluster = topo::ClusterBuilder().hosts(1).build();
  const auto placement = container::plan_deployment(
      cluster, container::DeploymentSpec::native_hosts(1, 4));
  EXPECT_TRUE(placement.container_cpusets.empty());
  for (const auto& slot : placement.slots) EXPECT_EQ(slot.container_index, -1);
}

TEST(Deployment, PackPolicyGivesDisjointCpusets) {
  const auto cluster = topo::ClusterBuilder().hosts(1).build();
  auto spec = container::DeploymentSpec::containers(1, 4, 16);
  const auto placement = container::plan_deployment(cluster, spec);
  ASSERT_EQ(placement.container_cpusets.size(), 4u);
  std::vector<int> all;
  for (const auto& cpuset : placement.container_cpusets) {
    EXPECT_EQ(cpuset.size(), 4u);
    all.insert(all.end(), cpuset.begin(), cpuset.end());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end())
      << "containers must not share cores";
}

TEST(Deployment, SocketPolicies) {
  const auto cluster = topo::ClusterBuilder().hosts(1).build();

  auto same = container::DeploymentSpec::containers(1, 2, 2);
  same.socket_policy = container::SocketPolicy::SameSocket;
  const auto same_placement = container::plan_deployment(cluster, same);
  EXPECT_EQ(same_placement.slots[0].core.socket, 0);
  EXPECT_EQ(same_placement.slots[1].core.socket, 0);

  auto distinct = container::DeploymentSpec::containers(1, 2, 2);
  distinct.socket_policy = container::SocketPolicy::DistinctSockets;
  const auto distinct_placement = container::plan_deployment(cluster, distinct);
  EXPECT_EQ(distinct_placement.slots[0].core.socket, 0);
  EXPECT_EQ(distinct_placement.slots[1].core.socket, 1);
}

TEST(Deployment, ValidatesInputs) {
  const auto cluster = topo::ClusterBuilder().hosts(1).build();
  EXPECT_THROW(container::plan_deployment(
                   cluster, container::DeploymentSpec::containers(2, 1, 1)),
               Error);  // more hosts than the cluster has
  EXPECT_THROW(container::plan_deployment(
                   cluster, container::DeploymentSpec::containers(1, 3, 4)),
               Error);  // 4 procs do not divide into 3 containers
}

}  // namespace
}  // namespace cbmpi
