file(REMOVE_RECURSE
  "CMakeFiles/fig10_collectives.dir/fig10_collectives.cpp.o"
  "CMakeFiles/fig10_collectives.dir/fig10_collectives.cpp.o.d"
  "fig10_collectives"
  "fig10_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
