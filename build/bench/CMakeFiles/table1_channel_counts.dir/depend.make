# Empty dependencies file for table1_channel_counts.
# This may be replaced when dependencies are built.
