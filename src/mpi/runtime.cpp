#include "mpi/runtime.hpp"

#include <exception>
#include <limits>
#include <numeric>
#include <sstream>
#include <thread>

#include "container/engine.hpp"
#include "migrate/coordinator.hpp"
#include "mpi/locality.hpp"
#include "osl/machine.hpp"
#include "topo/hardware.hpp"

namespace cbmpi::mpi {

Process::Process(JobState& job, int rank, osl::SimProcess& proc,
                 TimeBarrier& phase_barrier,
                 std::shared_ptr<const CommGroup> world_group)
    : os_(&proc),
      engine_(job, rank, proc),
      world_(engine_, std::move(world_group), /*id=*/0),
      phase_barrier_(&phase_barrier) {}

void Process::compute(double ops) {
  const Micros before = os_->clock().now();
  os_->compute(ops);
  engine_.profile().add_compute(os_->clock().now() - before);
  if (engine_.job().trace)
    engine_.job().trace->record({sim::TraceKind::Compute, rank(), rank(),
                                 static_cast<Bytes>(ops), os_->clock().now(), ""});
  if (engine_.job().spans)
    engine_.job().spans->record({"compute", obs::SpanCat::Compute, rank(), -1, -1,
                                 static_cast<Bytes>(ops), before,
                                 os_->clock().now(), ""});
  engine_.check_crash();
}

Xoshiro256 Process::make_rng(std::uint64_t salt) const {
  return Xoshiro256(
      mix64(seed() ^ mix64(salt) ^
            (static_cast<std::uint64_t>(rank()) * std::uint64_t{0x9e3779b97f4a7c15})));
}

void Process::sync_time() {
  const Micros aligned = phase_barrier_->arrive_and_wait(os_->clock().now());
  os_->clock().advance_to(aligned);
  engine_.check_crash();
}

int Process::start_round() const {
  const auto* store = engine_.job().checkpoint;
  return store && store->restore() ? store->restore()->round : 0;
}

std::span<const std::uint8_t> Process::restored_state() const {
  const auto* store = engine_.job().checkpoint;
  if (!store || !store->restore()) return {};
  return store->restore()->rank_state[static_cast<std::size_t>(
      engine_.world_rank())];
}

bool Process::fabric_probe() const { return engine_.job().net_probe; }

bool Process::checkpoint(int completed_rounds, std::span<const std::uint8_t> state) {
  auto* store = engine_.job().checkpoint;
  auto* quiesce = engine_.job().quiesce;
  const bool taking = store && store->taking();
  if (!taking && quiesce == nullptr) return false;
  // Quiesce: align every rank to one virtual instant. All ranks then hold
  // the same `aligned`, so the store's take/skip decision is uniform.
  const Micros aligned = phase_barrier_->arrive_and_wait(os_->clock().now());
  os_->clock().advance_to(aligned);
  // A rank whose crash time lies at or before the aligned instant dies here,
  // before saving — the snapshot for this round then never commits and the
  // previous one stays the restart point (all-or-nothing commit).
  engine_.check_crash();
  if (quiesce != nullptr && quiesce->decide(completed_rounds, aligned)) {
    // Live-migration quiesce: every in-flight send was drained through the
    // matcher before the barrier (the round's receives completed), so the
    // pending depth recorded here is the drain evidence. Snapshot, charge
    // the same cost as a coordinated checkpoint, and unwind the segment.
    const std::uint64_t pending = engine_.job().matcher(rank()).pending();
    quiesce->save(rank(), completed_rounds, aligned,
                  std::vector<std::uint8_t>(state.begin(), state.end()), pending);
    const Micros cost = CheckpointStore::snapshot_cost(state.size());
    os_->clock().advance(cost);
    engine_.profile().add_recovery(cost);
    if (engine_.job().spans)
      engine_.job().spans->record(
          {"migrate-quiesce", obs::SpanCat::Migrate, rank(), -1, -1,
           static_cast<Bytes>(state.size()), aligned, os_->clock().now(),
           "round " + std::to_string(completed_rounds)});
    throw migrate::QuiesceInterrupt{};
  }
  if (!taking) return false;
  if (!store->decide(completed_rounds, aligned)) return false;
  store->save(rank(), completed_rounds, aligned,
              std::vector<std::uint8_t>(state.begin(), state.end()));
  const Micros cost = CheckpointStore::snapshot_cost(state.size());
  os_->clock().advance(cost);
  engine_.profile().add_recovery(cost);
  if (engine_.job().spans)
    engine_.job().spans->record(
        {"checkpoint", obs::SpanCat::Fault, rank(), -1, -1,
         static_cast<Bytes>(state.size()), aligned, os_->clock().now(),
         "round " + std::to_string(completed_rounds)});
  return true;
}

namespace {

/// Fails fast with a clear message on misconfiguration instead of erroring
/// deep in the stack (or silently "fixing" the config).
void validate_config(const JobConfig& config) {
  const auto& spec = config.deployment;
  // An explicit placement bypasses the homogeneous spec shape; it is
  // structurally validated by container::validate_placement instead.
  const int hosts_needed =
      config.placement ? config.placement->num_hosts() : spec.num_hosts;
  if (!config.placement) {
    CBMPI_REQUIRE(spec.num_hosts > 0,
                  "deployment needs at least one host, got num_hosts = ",
                  spec.num_hosts);
    CBMPI_REQUIRE(spec.procs_per_host > 0,
                  "deployment needs at least one process per host, got "
                  "procs_per_host = ",
                  spec.procs_per_host);
    CBMPI_REQUIRE(spec.containers_per_host >= 0,
                  "containers_per_host must be >= 0 (0 = native), got ",
                  spec.containers_per_host);
    if (!spec.native())
      CBMPI_REQUIRE(
          spec.procs_per_host % spec.containers_per_host == 0,
          "procs_per_host (", spec.procs_per_host,
          ") must divide evenly among containers_per_host (",
          spec.containers_per_host, ")");
  }
  CBMPI_REQUIRE(config.cluster_hosts >= 0,
                "cluster_hosts must be >= 0 (0 = exactly what the deployment "
                "needs), got ",
                config.cluster_hosts);
  CBMPI_REQUIRE(config.cluster_hosts == 0 || config.cluster_hosts >= hosts_needed,
                "cluster_hosts (", config.cluster_hosts,
                ") is smaller than the deployment needs (", hosts_needed,
                " hosts)");

  const auto& tuning = config.tuning;
  CBMPI_REQUIRE(tuning.smp_eager_size > 0, "SMP_EAGER_SIZE must be positive");
  CBMPI_REQUIRE(tuning.smpi_length_queue > 0, "SMPI_LENGTH_QUEUE must be positive");
  CBMPI_REQUIRE(tuning.iba_eager_threshold > 0,
                "MV2_IBA_EAGER_THRESHOLD must be positive");
  CBMPI_REQUIRE(tuning.bcast_large_threshold > 0,
                "bcast_large_threshold must be positive");
  CBMPI_REQUIRE(tuning.allreduce_large_threshold > 0,
                "allreduce_large_threshold must be positive");
  CBMPI_REQUIRE(tuning.hca_max_retries >= 0,
                "hca_max_retries must be >= 0, got ", tuning.hca_max_retries);
  CBMPI_REQUIRE(tuning.hca_retry_backoff > 0.0,
                "hca_retry_backoff must be positive, got ",
                tuning.hca_retry_backoff);
  CBMPI_REQUIRE(tuning.hca_retry_backoff_factor >= 1.0,
                "hca_retry_backoff_factor must be >= 1, got ",
                tuning.hca_retry_backoff_factor);
  CBMPI_REQUIRE(tuning.rndv_chunk > 0,
                "rndv_chunk must be positive, got ", tuning.rndv_chunk);
  CBMPI_REQUIRE(tuning.reg_cost_scale >= 0.0,
                "reg_cost_scale must be >= 0, got ", tuning.reg_cost_scale);
}

/// Joins every started rank thread on scope exit. If thread startup itself
/// fails mid-way, siblings are aborted and joined, never abandoned.
class ThreadJoiner {
 public:
  explicit ThreadJoiner(std::vector<std::thread>& threads) : threads_(&threads) {}
  ~ThreadJoiner() {
    for (auto& thread : *threads_)
      if (thread.joinable()) thread.join();
  }
  ThreadJoiner(const ThreadJoiner&) = delete;
  ThreadJoiner& operator=(const ThreadJoiner&) = delete;

 private:
  std::vector<std::thread>* threads_;
};

container::ContainerSpec container_spec_for(const container::DeploymentSpec& spec,
                                            const container::JobPlacement& placement,
                                            topo::HostId host, int index) {
  container::ContainerSpec cont;
  const bool vm = spec.isolation == container::IsolationKind::VirtualMachine;
  cont.name = "host" + std::to_string(host) + (vm ? "-vm" : "-cont") +
              std::to_string(index);
  cont.privileged = spec.privileged;
  cont.share_host_ipc = spec.share_host_ipc;
  cont.share_host_pid = spec.share_host_pid;
  cont.virtual_machine = vm;
  cont.ivshmem = vm && spec.ivshmem;
  cont.cpuset = placement.cpuset_of(host, index);
  return cont;
}

/// Shared state of the fabric model's two deterministic passes. The record
/// pass builds the Fabric (it needs the placement) and fills `log`; between
/// passes the runtime settles the log into `congestion`; the apply pass
/// reads `congestion` only.
struct NetSession {
  net::FabricConfig config;
  std::unique_ptr<net::Fabric> fabric;
  net::FlowLog log;
  net::CongestionMap congestion;
  bool apply = false;
};

JobResult run_job_attempt(const JobConfig& config,
                          const std::function<void(Process&)>& body,
                          NetSession* net);

}  // namespace

JobResult run_job(const JobConfig& config, const std::function<void(Process&)>& body) {
  if (!config.fabric.enabled()) return run_job_attempt(config, body, nullptr);
  // Two-pass congestion refinement: pass 1 records every inter-host HCA
  // payload while running on hop latencies and static VF caps (all pure
  // functions of virtual time); the flow set is then settled by the exact
  // max-min contention engine; pass 2 re-runs the body with each transfer's
  // bandwidth term stretched by its factor. Both passes are deterministic,
  // so congested runs rerun bit-identically. A job that fails (injected
  // crash, rank error) throws out of pass 1 unrefined — crashed attempts
  // never reach the apply pass.
  NetSession net;
  net.config = config.fabric;
  run_job_attempt(config, body, &net);
  net::FabricSettle settled = net.fabric->settle(net.log.take());
  net.congestion = std::move(settled.congestion);
  net.apply = true;
  JobResult result = run_job_attempt(config, body, &net);
  result.net = std::move(settled.report);
  return result;
}

namespace {

JobResult run_job_attempt(const JobConfig& config,
                          const std::function<void(Process&)>& body,
                          NetSession* net) {
  validate_config(config);
  const auto& spec = config.deployment;

  // --- hardware + OS ------------------------------------------------------
  const int hosts_needed =
      config.placement ? config.placement->num_hosts() : spec.num_hosts;
  const int hosts = std::max(config.cluster_hosts, hosts_needed);
  osl::Machine machine(topo::ClusterBuilder().hosts(hosts).build(), config.profile);
  container::Engine engine(machine);
  const auto placement = config.placement
                             ? *config.placement
                             : container::plan_deployment(machine.cluster(), spec);
  container::validate_placement(machine.cluster(), placement);
  const int nranks = placement.total_ranks();
  CBMPI_REQUIRE(nranks > 0, "job needs at least one rank");

  // --- fault injection ------------------------------------------------------
  // Decisions are pure functions of (seed, site), so the same seed injects
  // the same faults run after run. A default plan injects nothing and every
  // hot path skips its checks.
  faults::FaultInjector injector(config.faults, config.seed);
  faults::FaultLog fault_log(nranks);
  const bool inject = injector.enabled();

  // --- containers -----------------------------------------------------------
  // containers[h][c] is container c on host h (empty when native).
  const int place_hosts = placement.num_hosts();
  std::vector<std::vector<container::Container*>> containers(
      static_cast<std::size_t>(place_hosts));
  // ipc_injected[h][c]: the container was forced into a private IPC
  // namespace by fault injection even though the spec asked for --ipc=host.
  std::vector<std::vector<bool>> ipc_injected(
      static_cast<std::size_t>(place_hosts));
  bool any_containers = false;
  for (int h = 0; h < place_hosts; ++h) {
    auto& on_host = containers[static_cast<std::size_t>(h)];
    auto& injected_on_host = ipc_injected[static_cast<std::size_t>(h)];
    for (int c = 0; c < placement.containers_on(h); ++c) {
      auto cont_spec = container_spec_for(spec, placement, h, c);
      const bool force_private_ipc =
          inject && cont_spec.share_host_ipc && injector.private_ipc(h, c);
      if (force_private_ipc) cont_spec.share_host_ipc = false;
      injected_on_host.push_back(force_private_ipc);
      on_host.push_back(&engine.run(h, cont_spec));
      any_containers = true;
    }
  }

  // --- rank processes ---------------------------------------------------------
  std::vector<std::unique_ptr<osl::SimProcess>> processes;
  processes.reserve(static_cast<std::size_t>(nranks));
  std::vector<bool> hca_access(static_cast<std::size_t>(nranks), true);
  std::vector<bool> rank_ipc_injected(static_cast<std::size_t>(nranks), false);
  for (int r = 0; r < nranks; ++r) {
    const auto& slot = placement.slots[static_cast<std::size_t>(r)];
    if (slot.container_index < 0) {
      processes.push_back(engine.spawn_native(slot.host, slot.core));
      hca_access[static_cast<std::size_t>(r)] =
          machine.cluster().host(slot.host).shape().has_hca;
    } else {
      auto* cont = containers[static_cast<std::size_t>(slot.host)]
                             [static_cast<std::size_t>(slot.container_index)];
      processes.push_back(engine.spawn(*cont, slot.core_slot));
      hca_access[static_cast<std::size_t>(r)] = cont->can_access_hca();
      if (ipc_injected[static_cast<std::size_t>(slot.host)]
                      [static_cast<std::size_t>(slot.container_index)]) {
        rank_ipc_injected[static_cast<std::size_t>(r)] = true;
        fault_log.record_fault(
            r, {faults::FaultKind::PrivateIpc, r, -1, 0.0,
                "container " + cont->spec().name +
                    " deployed without --ipc=host (injected)"});
      }
    }
  }

  // --- job state -----------------------------------------------------------
  JobState job;
  job.profile = &machine.profile();
  job.tuning = config.tuning;
  {
    // Locality-shape key for the tuning table: the densest container packing
    // anywhere in the placement (1 = native / one container per host).
    int cph = 1;
    for (int h = 0; h < placement.num_hosts(); ++h)
      cph = std::max(cph, placement.containers_on(h));
    coll::TuningTable table = config.coll_tuning;
    table.apply_env();  // CBMPI_<COLL>_ALGORITHM pins beat every table entry
    job.coll = coll::Engine(std::move(table), config.tuning, cph);
  }
  job.shm = std::make_unique<fabric::ShmChannel>(machine.profile(), config.tuning);
  job.cma = std::make_unique<fabric::CmaChannel>(machine.profile());
  job.hca = std::make_unique<fabric::HcaChannel>(machine.profile(), config.tuning);
  job.nranks = nranks;
  job.seed = config.seed;

  // --- live-migration quiesce ----------------------------------------------
  // Like the per-attempt CheckpointStore below, the coordinator restarts for
  // every attempt: the fabric model's record and apply passes each quiesce
  // from scratch, and the apply pass's snapshot is the one that stands.
  if (config.quiesce != nullptr) {
    config.quiesce->begin_attempt(nranks);
    job.quiesce = config.quiesce;
  }

  // --- fabric model ---------------------------------------------------------
  if (net != nullptr) {
    // Every rank's cluster-wide host id: scheduler-placed jobs see the full
    // cluster's fat-tree through physical_hosts; standalone runs use local
    // ids directly.
    job.rank_phys_host.reserve(static_cast<std::size_t>(nranks));
    int max_phys = hosts - 1;
    for (int r = 0; r < nranks; ++r) {
      const int local = static_cast<int>(placement.slots[static_cast<std::size_t>(r)].host);
      const int phys = config.physical_hosts.empty()
                           ? local
                           : config.physical_hosts[static_cast<std::size_t>(local)];
      job.rank_phys_host.push_back(phys);
      max_phys = std::max(max_phys, phys);
    }
    if (net->fabric == nullptr) {
      // Provisioned VFs per physical host: one per container (native ranks
      // use the physical function, counted as one).
      std::vector<int> vfs(static_cast<std::size_t>(max_phys + 1), 0);
      for (int h = 0; h < place_hosts; ++h) {
        const int phys = config.physical_hosts.empty()
                             ? h
                             : config.physical_hosts[static_cast<std::size_t>(h)];
        vfs[static_cast<std::size_t>(phys)] =
            std::max(placement.containers_on(h), 1);
      }
      net::FabricConfig fabric_config = net->config;
      if (fabric_config.hosts <= 0) fabric_config.hosts = max_phys + 1;
      if (fabric_config.model == net::FabricModel::FatTree)
        CBMPI_REQUIRE(
            fabric_config.hosts <= fabric_config.arity * fabric_config.arity *
                                       fabric_config.arity / 4,
            "fat-tree of arity ", fabric_config.arity, " holds at most ",
            fabric_config.arity * fabric_config.arity * fabric_config.arity / 4,
            " hosts but the cluster has ", fabric_config.hosts,
            " — raise --fabric=fattree:<k> (need k >= ",
            net::Topology::min_arity_for(fabric_config.hosts), ")");
      net->fabric = std::make_unique<net::Fabric>(fabric_config,
                                                  machine.profile(), std::move(vfs));
    }
    job.fabric = net->fabric.get();
    job.net_probe = !net->apply;
    if (net->apply)
      job.congestion = &net->congestion;
    else
      job.net_log = &net->log;
    job.hca->attach_fabric(job.fabric, job.congestion);
  }

  // --- pin-down registration cache -----------------------------------------
  if (config.tuning.reg_model) {
    // Per-rank pinned budget. On an over-committed SR-IOV host every VF gets
    // only its share of the HCA's registration resources, so the budget
    // shrinks by the same vf_share factor that caps the VF's bandwidth.
    std::vector<Bytes> capacity(static_cast<std::size_t>(nranks),
                                config.tuning.reg_cache_bytes);
    if (job.fabric != nullptr)
      for (int r = 0; r < nranks; ++r)
        capacity[static_cast<std::size_t>(r)] = static_cast<Bytes>(
            static_cast<double>(config.tuning.reg_cache_bytes) *
            job.fabric->vf_share(
                job.rank_phys_host[static_cast<std::size_t>(r)]));
    job.hca->init_reg_cache(std::move(capacity));
    // A migration's resume segment starts with the previous segment's cache
    // warm for every rank that did not move (the engine clears the moved
    // ranks' entry lists before handing the carry over).
    if (config.reg_warm && !config.reg_warm->entries.empty()) {
      auto* cache = job.hca->mutable_reg_cache();
      const int carried = std::min(
          nranks, static_cast<int>(config.reg_warm->entries.size()));
      for (int r = 0; r < carried; ++r)
        cache->warm(r, config.reg_warm->entries[static_cast<std::size_t>(r)]);
    }
  }
  if (inject) {
    job.faults = &injector;
    job.fault_log = &fault_log;
  }

  // --- crash schedule -------------------------------------------------------
  // Each rank's effective crash time is the earliest of its own, its
  // container's and its host's scheduled crash — all pure functions of
  // (seed, site), resolved once here so every rerun agrees.
  if (inject && config.faults.crashes_enabled()) {
    constexpr Micros kNever = std::numeric_limits<Micros>::infinity();
    job.crash_at.assign(static_cast<std::size_t>(nranks), kNever);
    job.crash_kind.assign(static_cast<std::size_t>(nranks),
                          faults::FaultKind::RankCrash);
    job.crash_host.assign(static_cast<std::size_t>(nranks), -1);
    for (int r = 0; r < nranks; ++r) {
      const auto& slot = placement.slots[static_cast<std::size_t>(r)];
      const int local_host = static_cast<int>(slot.host);
      const int physical_host =
          config.physical_hosts.empty()
              ? local_host
              : config.physical_hosts[static_cast<std::size_t>(local_host)];
      const auto idx = static_cast<std::size_t>(r);
      job.crash_host[idx] = physical_host;
      auto consider = [&](std::optional<Micros> at, faults::FaultKind kind) {
        if (at && *at < job.crash_at[idx]) {
          job.crash_at[idx] = *at;
          job.crash_kind[idx] = kind;
        }
      };
      // Widest blast radius wins ties: host beats container beats rank.
      consider(injector.rank_crash_at(r), faults::FaultKind::RankCrash);
      if (slot.container_index >= 0)
        consider(injector.container_crash_at(local_host, slot.container_index),
                 faults::FaultKind::ContainerCrash);
      consider(injector.host_crash_at(physical_host),
               faults::FaultKind::HostCrash);
    }
  }

  // --- coordinated checkpoints ---------------------------------------------
  std::unique_ptr<CheckpointStore> checkpoint_store;
  if (config.checkpoint_interval > 0.0 || config.restore) {
    CBMPI_REQUIRE(config.checkpoint_interval >= 0.0,
                  "checkpoint_interval must be >= 0, got ",
                  config.checkpoint_interval);
    checkpoint_store = std::make_unique<CheckpointStore>(
        nranks, config.checkpoint_interval, config.restore);
    job.checkpoint = checkpoint_store.get();
  }

  sim::TraceRecorder recorder;
  if (config.record_trace) job.trace = &recorder;

  obs::MetricsRegistry metrics_registry;
  obs::SpanRecorder span_recorder;
  if (config.observe) {
    job.metrics = &metrics_registry;
    job.spans = &span_recorder;
  }

  const bool vm_mode =
      spec.isolation == container::IsolationKind::VirtualMachine && any_containers;
  std::vector<fabric::RankEndpoint> endpoints;
  endpoints.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    auto& proc = *processes[static_cast<std::size_t>(r)];
    endpoints.push_back(
        {&proc, proc.hostname(), hca_access[static_cast<std::size_t>(r)], vm_mode});
  }
  job.selector = std::make_unique<fabric::ChannelSelector>(
      config.policy, config.tuning, std::move(endpoints),
      inject ? &injector : nullptr, inject ? &fault_log : nullptr);
  job.selector->force_channel(config.forced_channel);

  job.matchers.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) job.matchers.push_back(std::make_unique<Matcher>());
  job.rank_profiles.resize(static_cast<std::size_t>(nranks));

  // Restarted jobs pay the snapshot-read cost up front: each rank is charged
  // for reading its saved state before the body runs (Fault/"restart" span).
  if (config.restore) {
    for (int r = 0; r < nranks; ++r) {
      const auto& state =
          config.restore->rank_state[static_cast<std::size_t>(r)];
      const Micros cost = CheckpointStore::snapshot_cost(state.size());
      auto& proc = *processes[static_cast<std::size_t>(r)];
      proc.clock().advance(cost);
      job.rank_profile(r).add_recovery(cost);
      if (job.spans)
        job.spans->record({"restart", obs::SpanCat::Fault, r, -1, -1,
                           static_cast<Bytes>(state.size()), proc.clock().now() - cost,
                           proc.clock().now(),
                           "resume round " + std::to_string(config.restore->round)});
    }
  }

  // --- container locality detection (init-time, before any communication) --
  // Running the announce/scan protocol for all ranks here is equivalent to
  // each rank doing it before the PMI init barrier, and keeps it
  // deterministic; each rank is charged the modelled detection cost.
  if (config.policy == fabric::LocalityPolicy::ContainerAware) {
    ContainerLocalityDetector detector("job" + std::to_string(config.seed), nranks);
    // A rank whose /dev/shm segment open fails (injected) cannot announce or
    // scan; it degrades to hostname-based locality instead of crashing.
    std::vector<bool> shm_failed(static_cast<std::size_t>(nranks), false);
    for (int r = 0; r < nranks; ++r) {
      if (inject && injector.shm_segment_fails(r)) {
        shm_failed[static_cast<std::size_t>(r)] = true;
        fault_log.record_fault(
            r, {faults::FaultKind::ShmSegmentFail, r, -1, 0.0,
                "/dev/shm open of '" + detector.segment_name() +
                    "' failed (injected)"});
        continue;
      }
      detector.announce(*processes[static_cast<std::size_t>(r)], r);
    }

    std::vector<const osl::SimProcess*> all_procs;
    all_procs.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r)
      all_procs.push_back(processes[static_cast<std::size_t>(r)].get());

    std::vector<std::vector<std::uint8_t>> matrix;
    matrix.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      auto& proc = *processes[static_cast<std::size_t>(r)];
      if (!shm_failed[static_cast<std::size_t>(r)]) {
        matrix.push_back(detector.co_resident_row(proc));
        proc.clock().advance(detector.detection_cost());
        continue;
      }
      matrix.push_back(detector.hostname_fallback_row(proc, all_procs));
      proc.clock().advance(detector.detection_cost() + detector.fallback_cost());
      fault_log.add_retry(r, faults::FaultKind::ShmSegmentFail);
      fault_log.add_time_lost(r, detector.fallback_cost());
      job.rank_profile(r).add_recovery(detector.fallback_cost());
      fault_log.record_degradation(
          r, {faults::DegradationKind::HostnameLocalityFallback, r, -1});
      if (job.trace)
        job.trace->record({sim::TraceKind::Degrade, r, -1, 0, proc.clock().now(),
                           "hostname-locality-fallback"});
      if (job.spans)
        job.spans->record({"locality-fallback", obs::SpanCat::Fault, r, -1, -1, 0,
                           proc.clock().now() - detector.fallback_cost(),
                           proc.clock().now(), "hostname-locality-fallback"});
    }
    // Peers cannot see a degraded rank's (missing) announcement; give them
    // the same hostname-based view of it so the matrix stays symmetric.
    for (int r = 0; r < nranks; ++r) {
      if (!shm_failed[static_cast<std::size_t>(r)]) continue;
      for (int j = 0; j < nranks; ++j)
        if (j != r)
          matrix[static_cast<std::size_t>(j)][static_cast<std::size_t>(r)] =
              matrix[static_cast<std::size_t>(r)][static_cast<std::size_t>(j)];
    }
    // Containers injected with a private IPC namespace detect only their own
    // ranks — the cross-container peers they lost go over the HCA loopback.
    for (int r = 0; r < nranks; ++r) {
      if (!rank_ipc_injected[static_cast<std::size_t>(r)]) continue;
      fault_log.record_degradation(
          r, {faults::DegradationKind::IsolatedIpcLocality, r, -1});
      if (job.trace)
        job.trace->record({sim::TraceKind::Degrade, r, -1, 0,
                           processes[static_cast<std::size_t>(r)]->clock().now(),
                           "isolated-ipc-locality"});
    }
    job.selector->set_detected_locality(std::move(matrix));
  }

  // --- run rank threads ----------------------------------------------------
  auto world_group = [&] {
    std::vector<int> ranks(static_cast<std::size_t>(nranks));
    std::iota(ranks.begin(), ranks.end(), 0);
    return CommGroup::make(std::move(ranks));
  }();

  TimeBarrier phase_barrier(nranks);
  struct RankFailure {
    std::exception_ptr error;
    Micros at = 0.0;
  };
  std::vector<RankFailure> failures(static_cast<std::size_t>(nranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  {
    ThreadJoiner joiner(threads);
    for (int r = 0; r < nranks; ++r) {
      try {
        threads.emplace_back([&, r] {
          try {
            Process process(job, r, *processes[static_cast<std::size_t>(r)],
                            phase_barrier, world_group);
            body(process);
          } catch (...) {
            auto& failure = failures[static_cast<std::size_t>(r)];
            failure.error = std::current_exception();
            failure.at = processes[static_cast<std::size_t>(r)]->clock().now();
            // Unblock peers that may be blocked waiting on this rank — in a
            // matcher wait or at the phase barrier; they will observe the
            // abort and raise. The root cause is rethrown below.
            job.aborted.store(true, std::memory_order_release);
            for (auto& matcher : job.matchers) matcher->poke();
            phase_barrier.abort_all();
          }
        });
      } catch (...) {
        // Thread startup failed: abort the ranks already running so the
        // joiner's joins return, then surface the startup failure.
        job.aborted.store(true, std::memory_order_release);
        for (auto& matcher : job.matchers) matcher->poke();
        phase_barrier.abort_all();
        throw;
      }
    }
  }

  // Rethrow the *root cause*: the earliest-failing rank whose exception is a
  // genuine failure — a crash (CrashedError) or any non-AbortedError — not a
  // bystander's "job aborted" echo.
  const RankFailure* root = nullptr;
  int root_rank = -1;
  bool any_crash = false;
  // A fired quiesce means every rank unwound with QuiesceInterrupt — a clean
  // segment end, not a failure; the bystander pass must not pick one up.
  const bool quiesced = config.quiesce != nullptr && config.quiesce->fired();
  for (int pass = 0; pass < 2 && !root; ++pass) {
    if (pass == 1 && quiesced) break;
    for (int r = 0; r < nranks; ++r) {
      const auto& failure = failures[static_cast<std::size_t>(r)];
      if (!failure.error) continue;
      if (pass == 0) {
        try {
          std::rethrow_exception(failure.error);
        } catch (const faults::CrashedError&) {
          any_crash = true;  // a genuine root cause, handled below
          continue;
        } catch (const AbortedError&) {
          continue;  // secondary casualty, keep looking
        } catch (const migrate::QuiesceInterrupt&) {
          continue;  // clean quiesce unwind, never a root cause
        } catch (...) {
        }
      }
      if (!root || failure.at < root->at) {
        root = &failure;
        root_rank = r;
      }
    }
    if (any_crash) break;  // crash handling below beats the bystander pass
  }
  if (any_crash) {
    // Attribute the crash from the deterministic *schedule*, not from which
    // thread happened to throw first: the earliest scheduled crash over all
    // ranks (ties to the lowest rank). Thread interleaving decides which
    // bystanders abort before noticing their own crash, but never this.
    faults::CrashInfo info;
    for (int r = 0; r < nranks; ++r) {
      const auto idx = static_cast<std::size_t>(r);
      if (job.crash_at[idx] < std::numeric_limits<Micros>::infinity() &&
          (info.rank < 0 || job.crash_at[idx] < info.at)) {
        info.rank = r;
        info.at = job.crash_at[idx];
        info.kind = job.crash_kind[idx];
        info.host = job.crash_host[idx];
      }
    }
    // A genuine non-crash failure that (deterministically) predates the
    // crash stays the root cause.
    if (!(root && root->at < info.at)) {
      std::shared_ptr<const CheckpointData> best;
      int committed = 0;
      if (checkpoint_store) {
        best = checkpoint_store->committed();
        const auto events = checkpoint_store->events();
        committed = static_cast<int>(events.size());
        if (!events.empty()) {
          info.last_checkpoint = events.back().at;
          info.checkpoint_round = events.back().round;
        } else if (config.restore) {
          info.checkpoint_round = config.restore->round;
        }
      }
      std::ostringstream os;
      os << "rank " << info.rank << " failed at t=" << info.at << " us: "
         << faults::to_string(info.kind) << " on host " << info.host
         << " (injected crash)";
      throw JobCrashedError(os.str(), info, std::move(best), committed);
    }
  }
  if (root) {
    std::ostringstream os;
    os << "rank " << root_rank << " failed at t=" << root->at << " us: ";
    try {
      std::rethrow_exception(root->error);
    } catch (const std::exception& e) {
      throw Error(os.str() + e.what());
    } catch (...) {
      throw Error(os.str() + "unknown exception");
    }
  }

  // --- results ---------------------------------------------------------------
  JobResult result;
  result.rank_times.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    const Micros t = processes[static_cast<std::size_t>(r)]->clock().now();
    result.rank_times.push_back(t);
    result.job_time = std::max(result.job_time, t);
    result.profile.merge_rank(job.rank_profiles[static_cast<std::size_t>(r)]);
  }
  result.hca_queue_pairs = job.hca->queue_pairs();
  result.reg_cache = job.hca->reg_cache_stats();
  // Export the final pin-down state for the migration engine's next segment
  // — only from the pass whose results stand (never the record pass).
  if (config.reg_warm && config.tuning.reg_model &&
      (net == nullptr || net->apply))
    config.reg_warm->entries = job.hca->reg_cache()->snapshot_entries();
  if (config.record_trace) result.trace = recorder.events();
  result.fault_report = fault_log.finalize();
  if (checkpoint_store) {
    result.checkpoints = checkpoint_store->events();
    result.restored = config.restore != nullptr;
    if (config.restore) {
      result.restore_round = config.restore->round;
      result.restore_progress_us = config.restore->progress_us;
    }
  }
  if (config.observe) {
    if (checkpoint_store) {
      metrics_registry.counter("recovery.checkpoints")
          .add(static_cast<std::uint64_t>(result.checkpoints.size()));
      if (!result.checkpoints.empty())
        metrics_registry.gauge("recovery.last_checkpoint_us")
            .set(result.checkpoints.back().at);
      if (result.restored) metrics_registry.counter("recovery.restarts").add(1);
    }
    if (result.reg_cache.enabled) {
      metrics_registry.gauge("hca.reg_cache.pinned_bytes")
          .set(static_cast<double>(result.reg_cache.pinned_bytes));
      metrics_registry.gauge("hca.reg_cache.peak_pinned_bytes")
          .set(static_cast<double>(result.reg_cache.peak_pinned_bytes));
    }
    // Job-level summary gauges ride in the same registry the engines fed,
    // so one snapshot carries everything.
    metrics_registry.gauge("job.virtual_time_us").set(result.job_time);
    metrics_registry.gauge("job.comm_fraction").set(result.profile.comm_fraction());
    metrics_registry.counter("job.ranks").add(static_cast<std::uint64_t>(nranks));
    result.metrics = metrics_registry.snapshot();
    result.spans = span_recorder.spans();
  }
  return result;
}

}  // namespace

}  // namespace cbmpi::mpi
