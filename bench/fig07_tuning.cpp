// Figure 7: communication channel parameter tuning for container
// environments.
//   (a) SMP_EAGER_SIZE sweep            — paper optimum: 8 K
//   (b) SMPI_LENGTH_QUEUE sweep         — paper optimum: 128 K
//   (c) MV2_IBA_EAGER_THRESHOLD sweep   — paper optimum: 17 K
//
// (a)/(b) run between two co-resident containers with the locality-aware
// runtime (bandwidth + message rate, as in the paper); (c) runs between two
// hosts (bandwidth around the threshold region).
#include "bench_util.hpp"

#include "apps/osu/microbench.hpp"

using namespace cbmpi;
using namespace cbmpi::bench;

namespace {

double run_pair(const mpi::JobConfig& config, Bytes size, bool message_rate,
                int iters) {
  apps::osu::PairOptions pair;
  pair.iterations = iters;
  double value = 0.0;
  mpi::run_job(config, [&](mpi::Process& p) {
    const double v = message_rate ? apps::osu::pt2pt_message_rate(p, size, pair)
                                  : apps::osu::pt2pt_bandwidth(p, size, pair);
    if (p.rank() == 0) value = v;
  });
  return value;
}

mpi::JobConfig intra_host_config() {
  mpi::JobConfig config;
  config.deployment = container::DeploymentSpec::containers(1, 2, 2);
  config.policy = fabric::LocalityPolicy::ContainerAware;
  return config;
}

mpi::JobConfig inter_host_config() {
  mpi::JobConfig config;
  config.deployment = container::DeploymentSpec::containers(2, 1, 1);
  config.policy = fabric::LocalityPolicy::ContainerAware;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const int iters = static_cast<int>(opts.get_int("iters", 8, "iterations per point"));
  if (opts.finish("Figure 7: SMP_EAGER_SIZE / SMPI_LENGTH_QUEUE / "
                  "MV2_IBA_EAGER_THRESHOLD sweeps"))
    return 0;

  // ---- (a) SMP_EAGER_SIZE --------------------------------------------------
  print_banner("Figure 7(a)", "SMP_EAGER_SIZE sweep",
               "optimal eager/rendezvous switch point at 8K");
  {
    const std::vector<Bytes> settings{2_KiB, 4_KiB, 8_KiB, 16_KiB, 32_KiB};
    const std::vector<Bytes> probe_sizes{2_KiB, 4_KiB, 8_KiB, 16_KiB, 32_KiB};
    Table table({"eager size", "bw@4K", "bw@8K", "bw@16K", "mr@4K (Kmsg/s)",
                 "score (avg MB/s)"});
    Bytes best_setting = 0;
    double best_score = 0.0;
    for (const Bytes eager : settings) {
      auto config = intra_host_config();
      config.tuning.smp_eager_size = eager;
      double score = 0.0;
      std::map<Bytes, double> bw;
      for (const Bytes size : probe_sizes) {
        bw[size] = run_pair(config, size, false, iters);
        score += bw[size];
      }
      score /= static_cast<double>(probe_sizes.size());
      const double mr = run_pair(config, 4_KiB, true, iters) / 1000.0;
      if (score > best_score) {
        best_score = score;
        best_setting = eager;
      }
      table.add_row({format_size(eager), Table::num(bw[4_KiB], 1),
                     Table::num(bw[8_KiB], 1), Table::num(bw[16_KiB], 1),
                     Table::num(mr, 1), Table::num(score, 1)});
    }
    table.print(std::cout);
    std::printf("best SMP_EAGER_SIZE: %s\n", format_size(best_setting).c_str());
    print_shape_check(best_setting == 8_KiB, "optimum at 8K as in the paper");
  }

  // ---- (b) SMPI_LENGTH_QUEUE -------------------------------------------------
  std::printf("\n");
  print_banner("Figure 7(b)", "SMPI_LENGTH_QUEUE sweep",
               "optimal per-pair shared queue size at 128K");
  {
    const std::vector<Bytes> settings{16_KiB, 32_KiB, 64_KiB, 128_KiB,
                                      256_KiB, 512_KiB, 1_MiB};
    const std::vector<Bytes> probe_sizes{64, 1_KiB, 4_KiB};
    Table table({"length queue", "bw@1K", "bw@4K", "mr@64B (Kmsg/s)",
                 "score (avg MB/s)"});
    Bytes best_setting = 0;
    double best_score = 0.0;
    for (const Bytes queue : settings) {
      auto config = intra_host_config();
      config.tuning.smpi_length_queue = queue;
      double score = 0.0;
      std::map<Bytes, double> bw;
      for (const Bytes size : probe_sizes) {
        bw[size] = run_pair(config, size, false, iters);
        score += bw[size] / static_cast<double>(size);  // normalize sizes
      }
      const double mr = run_pair(config, 64, true, iters) / 1000.0;
      score = score / static_cast<double>(probe_sizes.size()) * 1000.0;
      if (score > best_score) {
        best_score = score;
        best_setting = queue;
      }
      table.add_row({format_size(queue), Table::num(bw[1_KiB], 1),
                     Table::num(bw[4_KiB], 1), Table::num(mr, 1),
                     Table::num(score, 1)});
    }
    table.print(std::cout);
    std::printf("best SMPI_LENGTH_QUEUE: %s\n", format_size(best_setting).c_str());
    print_shape_check(best_setting == 128_KiB, "optimum at 128K as in the paper");
  }

  // ---- (c) MV2_IBA_EAGER_THRESHOLD ---------------------------------------------
  std::printf("\n");
  print_banner("Figure 7(c)", "MV2_IBA_EAGER_THRESHOLD sweep (13K-19K)",
               "optimal HCA eager/rendezvous switch point at 17K");
  {
    std::vector<Bytes> settings;
    for (Bytes t = 13_KiB; t <= 19_KiB; t += 1_KiB) settings.push_back(t);
    const std::vector<Bytes> probe_sizes{13_KiB, 14_KiB, 15_KiB, 16_KiB,
                                         17_KiB, 18_KiB, 19_KiB};
    Table table({"threshold", "bw@14K", "bw@16K", "bw@18K", "score (avg MB/s)"});
    Bytes best_setting = 0;
    double best_score = 0.0;
    for (const Bytes threshold : settings) {
      auto config = inter_host_config();
      config.tuning.iba_eager_threshold = threshold;
      double score = 0.0;
      std::map<Bytes, double> bw;
      for (const Bytes size : probe_sizes) {
        bw[size] = run_pair(config, size, false, iters);
        score += bw[size];
      }
      score /= static_cast<double>(probe_sizes.size());
      if (score > best_score) {
        best_score = score;
        best_setting = threshold;
      }
      table.add_row({format_size(threshold), Table::num(bw[14_KiB], 1),
                     Table::num(bw[16_KiB], 1), Table::num(bw[18_KiB], 1),
                     Table::num(score, 1)});
    }
    table.print(std::cout);
    std::printf("best MV2_IBA_EAGER_THRESHOLD: %s\n",
                format_size(best_setting).c_str());
    print_shape_check(best_setting >= 16_KiB && best_setting <= 18_KiB,
                      "optimum in the 16K-18K neighbourhood (paper: 17K)");
  }
  return 0;
}
