# Empty dependencies file for fig07_tuning.
# This may be replaced when dependencies are built.
