// One-sided communication (MPI-3 RMA subset): windows, put/get/accumulate,
// flush and fence synchronisation.
//
// Each op is pipelined: the origin pays the channel's per-op gap immediately
// and records the op's full completion time; flush advances the origin clock
// to the last completion for that target (so `put; flush` costs one op
// latency while N back-to-back puts cost ~N gaps — the message-rate behaviour
// behind the paper's one-sided bandwidth results, Fig. 9). Data lands in the
// target's exposed memory at call time under a per-target lock; epochs must
// be separated by flush/fence as the MPI RMA rules require.
//
// Channel selection is per (origin, target) pair under the active locality
// policy, so the default runtime drives co-resident puts through the HCA
// loopback (15-ish MB/s at 4 B in the paper) while the locality-aware one
// uses shared memory (~148 MB/s).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "mpi/communicator.hpp"

namespace cbmpi::mpi {

/// Byte-level window; the typed Window<T> below is the public face.
enum class LockKind { Shared, Exclusive };

class WindowHandle {
 public:
  /// Collective on `comm`. `local` stays exposed until the window dies.
  WindowHandle(Communicator& comm, std::span<std::byte> local, Bytes elem_size);

  void put_bytes(std::span<const std::byte> src, int target, Bytes byte_offset);
  void get_bytes(std::span<std::byte> dst, int target, Bytes byte_offset);

  /// Atomic read-modify-write on the target memory (MPI_Accumulate core).
  void rmw_bytes(std::span<const std::byte> src, int target, Bytes byte_offset,
                 const std::function<void(std::span<std::byte>,
                                          std::span<const std::byte>)>& combine);

  /// Completes all pending ops to `target` at the origin (MPI_Win_flush).
  void flush(int target);
  void flush_all();

  /// Collective: flush_all + barrier (MPI_Win_fence).
  void fence();

  /// Passive-target epoch (MPI_Win_lock / MPI_Win_unlock): Exclusive blocks
  /// other epochs on the same target; Shared admits concurrent readers.
  /// unlock() completes all ops of the epoch at the origin.
  void lock(LockKind kind, int target);
  void unlock(int target);

  /// Atomic fetch-and-combine: fetches the target bytes into `result`, then
  /// combines `src` into the target (MPI_Get_accumulate core).
  void fetch_rmw_bytes(std::span<const std::byte> src, std::span<std::byte> result,
                       int target, Bytes byte_offset,
                       const std::function<void(std::span<std::byte>,
                                                std::span<const std::byte>)>& combine);

  Communicator& comm() { return *comm_; }

 private:
  fabric::OneSidedCosts account_op(int target, Bytes size, prof::CallKind kind);
  std::span<std::byte> target_span(int target, Bytes byte_offset, Bytes size);

  Communicator* comm_;
  std::shared_ptr<WindowInfo> info_;
  std::vector<Micros> pending_;  ///< per-target last completion time
  std::vector<int> held_;        ///< 0 none, 1 shared, 2 exclusive (per target)
};

template <typename T>
class Window {
 public:
  Window(Communicator& comm, std::span<T> local)
      : handle_(comm, std::as_writable_bytes(local), sizeof(T)) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "window element type must be trivially copyable");
  }

  void put(std::span<const T> src, int target, std::size_t elem_offset) {
    handle_.put_bytes(std::as_bytes(src), target, elem_offset * sizeof(T));
  }

  void get(std::span<T> dst, int target, std::size_t elem_offset) {
    handle_.get_bytes(std::as_writable_bytes(dst), target, elem_offset * sizeof(T));
  }

  void accumulate(std::span<const T> src, int target, std::size_t elem_offset,
                  ReduceOp op) {
    handle_.rmw_bytes(
        std::as_bytes(src), target, elem_offset * sizeof(T),
        [op](std::span<std::byte> dst_bytes, std::span<const std::byte> src_bytes) {
          std::span<T> dst{reinterpret_cast<T*>(dst_bytes.data()),
                           dst_bytes.size() / sizeof(T)};
          std::span<const T> in{reinterpret_cast<const T*>(src_bytes.data()),
                                src_bytes.size() / sizeof(T)};
          apply_reduce<T>(op, in, dst);
        });
  }

  void flush(int target) { handle_.flush(target); }
  void flush_all() { handle_.flush_all(); }
  void fence() { handle_.fence(); }
  void lock(LockKind kind, int target) { handle_.lock(kind, target); }
  void unlock(int target) { handle_.unlock(target); }

  /// Atomic fetch-then-add of one element; returns the value before the add
  /// (MPI_Fetch_and_op with MPI_SUM).
  T fetch_and_add(int target, std::size_t elem_offset, const T& increment) {
    T before{};
    handle_.fetch_rmw_bytes(
        std::as_bytes(std::span<const T>(&increment, 1)),
        std::as_writable_bytes(std::span<T>(&before, 1)), target,
        elem_offset * sizeof(T),
        [](std::span<std::byte> dst_bytes, std::span<const std::byte> src_bytes) {
          apply_reduce<T>(ReduceOp::Sum,
                          std::span<const T>(
                              reinterpret_cast<const T*>(src_bytes.data()), 1),
                          std::span<T>(reinterpret_cast<T*>(dst_bytes.data()), 1));
        });
    return before;
  }

  /// Atomic compare-and-swap of one element; returns the previous value
  /// (MPI_Compare_and_swap).
  T compare_and_swap(int target, std::size_t elem_offset, const T& expected,
                     const T& desired) {
    struct Args {
      T expected, desired;
    } args{expected, desired};
    static_assert(std::is_trivially_copyable_v<Args>);
    T before{};
    handle_.fetch_rmw_bytes(
        std::as_bytes(std::span<const Args>(&args, 1)),
        std::as_writable_bytes(std::span<T>(&before, 1)), target,
        elem_offset * sizeof(T),
        [](std::span<std::byte> dst_bytes, std::span<const std::byte> src_bytes) {
          const auto& a = *reinterpret_cast<const Args*>(src_bytes.data());
          T& value = *reinterpret_cast<T*>(dst_bytes.data());
          if (value == a.expected) value = a.desired;
        });
    return before;
  }

 private:
  WindowHandle handle_;
};

}  // namespace cbmpi::mpi
