// Runtime tuning parameters, named after their MVAPICH2 counterparts.
//
// The paper re-tunes three of these for container environments (Sec. IV-C/D):
//   SMP_EAGER_SIZE          = 8 K   (SHM eager / CMA rendezvous switch point)
//   SMPI_LENGTH_QUEUE       = 128 K (per-pair shared buffer for eager msgs)
//   MV2_IBA_EAGER_THRESHOLD = 17 K  (HCA eager / rendezvous switch point)
#pragma once

#include "common/units.hpp"

namespace cbmpi::fabric {

struct TuningParams {
  /// Messages below this go through the SHM eager path; at or above it they
  /// use the rendezvous protocol (CMA single copy when available).
  Bytes smp_eager_size = 8_KiB;

  /// Size of the shared-memory queue between every pair of co-resident
  /// processes; eager messages are staged through it.
  Bytes smpi_length_queue = 128_KiB;

  /// HCA switch point between eager (receiver-side copy) and rendezvous
  /// (RTS/CTS handshake + zero-copy RDMA).
  Bytes iba_eager_threshold = 17_KiB;

  /// Enables the CMA channel for large intra-host messages.
  bool use_cma = true;

  /// Enables the SHM channel (turning it off forces everything onto HCA,
  /// used by the forced-channel comparison of Fig. 3).
  bool use_shm = true;

  /// Enables two-level (leader-based) collective algorithms on top of the
  /// detected locality groups.
  bool two_level_collectives = true;

  /// Payloads at or above this switch MPI_Bcast from the binomial tree to
  /// the bandwidth-optimal scatter + ring-allgather (van de Geijn) scheme.
  Bytes bcast_large_threshold = 64_KiB;

  /// Payloads at or above this switch MPI_Allreduce from recursive doubling
  /// to Rabenseifner's reduce-scatter + allgather scheme.
  Bytes allreduce_large_threshold = 32_KiB;

  /// Pin-down (memory-registration) model for the HCA rendezvous path. Off
  /// by default: buffer registration costs nothing and the rendezvous math
  /// is bit-identical to the pre-cache model. When on, every rendezvous
  /// endpoint must have its buffer registered — reg/dereg costs come from
  /// the MachineProfile's hca_reg_* terms — and an LRU pin-down cache of
  /// `reg_cache_bytes` pinned capacity per rank amortizes them across
  /// reuses (mirrors MV2_USE_LAZY_MEM_UNREGISTER). Eager transfers stay
  /// copy-based and unregistered, so the eager threshold then trades copy
  /// cost against pin-down cost exactly as in the real stack.
  bool reg_model = false;

  /// Per-rank pinned-bytes capacity of the registration cache. 0 keeps the
  /// model on but caches nothing: every rendezvous registers and
  /// deregisters its buffer (the cold-cache baseline). Hosts that
  /// over-commit SR-IOV VFs shrink each rank's share by the fabric's
  /// vf_share weight.
  Bytes reg_cache_bytes = 64_MiB;

  /// Scale factor on the modeled reg/dereg costs (sensitivity sweeps).
  double reg_cost_scale = 1.0;

  /// Pipelined rendezvous chunk: registration of chunk k+1 overlaps the
  /// RDMA of chunk k (MV2_RNDV_CHUNK analogue). Set it at or above the
  /// message size to force serial register-then-send. Only consulted under
  /// the registration model.
  Bytes rndv_chunk = 512_KiB;

  /// Fault recovery: how many times an HCA transfer is retried after a
  /// transient send/completion failure before the rank aborts. Retry i
  /// backs off hca_retry_backoff * hca_retry_backoff_factor^i (plus
  /// deterministic jitter), charged to the sender's virtual clock.
  int hca_max_retries = 6;
  Micros hca_retry_backoff = 4.0;
  double hca_retry_backoff_factor = 2.0;

  /// Paper defaults for container deployments (Sec. IV-C/D optima).
  static TuningParams container_optimized() { return TuningParams{}; }
};

}  // namespace cbmpi::fabric
