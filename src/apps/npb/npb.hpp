// NAS Parallel Benchmarks — scaled-down but communication-faithful kernels.
//
//   EP  embarrassingly parallel Gaussian-pair tally  (allreduce at the end)
//   CG  conjugate gradient on a 2-D Poisson operator (halo sendrecv + dots)
//   MG  multigrid V-cycles on a 3-D grid             (plane halos per level)
//   FT  3-D FFT time stepping                        (alltoall transposes)
//   IS  integer bucket sort                          (alltoall + alltoallv)
//
// Each kernel runs real arithmetic on real data (results are verifiable) and
// charges modelled compute time so virtual-clock breakdowns behave like the
// paper's (computation identical across deployment scenarios, communication
// varying with the channel mix).
#pragma once

#include <complex>
#include <span>
#include <string>

#include "common/units.hpp"
#include "mpi/runtime.hpp"

namespace cbmpi::apps::npb {

struct KernelResult {
  std::string name;
  Micros time = 0.0;     ///< max-over-ranks kernel time (virtual)
  bool verified = false;
  double checksum = 0.0; ///< kernel-specific figure of merit
};

// ---- EP --------------------------------------------------------------------
struct EpParams {
  std::uint64_t pairs_per_rank = 1 << 14;
  double ops_per_pair = 18.0;
};
KernelResult run_ep(mpi::Process& p, const EpParams& params = {});

// ---- CG --------------------------------------------------------------------
struct CgParams {
  int grid = 64;          ///< global grid is grid x grid (5-point Poisson)
  int iterations = 15;
  double ops_per_row = 12.0;
};
KernelResult run_cg(mpi::Process& p, const CgParams& params = {});

// ---- MG --------------------------------------------------------------------
struct MgParams {
  int nx = 32, ny = 32, nz = 32;  ///< global grid; nz splits across ranks
  int vcycles = 4;
  int smooth_steps = 2;
  double ops_per_cell = 10.0;
};
KernelResult run_mg(mpi::Process& p, const MgParams& params = {});

// ---- FT --------------------------------------------------------------------
struct FtParams {
  int nx = 32, ny = 32, nz = 32;  ///< powers of two; nz splits across ranks
  int timesteps = 3;
  double ops_per_point = 24.0;    ///< per point per FFT pass
};
KernelResult run_ft(mpi::Process& p, const FtParams& params = {});

/// Radix-2 in-place FFT (exposed for unit tests).
void fft_inplace(std::span<std::complex<double>> data, bool inverse);

// ---- LU --------------------------------------------------------------------
struct LuParams {
  int grid = 64;      ///< n x n domain, column blocks across ranks
  int sweeps = 3;     ///< SSOR-style forward sweeps
  double ops_per_cell = 8.0;
};
KernelResult run_lu(mpi::Process& p, const LuParams& params = {});

// ---- IS --------------------------------------------------------------------
struct IsParams {
  std::uint64_t keys_per_rank = 1 << 15;
  int key_bits = 20;
  double ops_per_key = 4.0;
};
KernelResult run_is(mpi::Process& p, const IsParams& params = {});

}  // namespace cbmpi::apps::npb
