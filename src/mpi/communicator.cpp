#include "mpi/communicator.hpp"

#include <numeric>

#include "common/rng.hpp"
#include "mpi/coll/engine.hpp"

namespace cbmpi::mpi {

std::shared_ptr<const CommGroup> CommGroup::make(std::vector<int> world_ranks) {
  auto group = std::make_shared<CommGroup>();
  group->world_ranks = std::move(world_ranks);
  group->to_comm.reserve(group->world_ranks.size());
  for (std::size_t i = 0; i < group->world_ranks.size(); ++i) {
    const bool inserted =
        group->to_comm.emplace(group->world_ranks[i], static_cast<int>(i)).second;
    CBMPI_REQUIRE(inserted, "duplicate world rank in communicator group");
  }
  return group;
}

int position_of(const std::vector<int>& list, int rank) {
  const auto it = std::find(list.begin(), list.end(), rank);
  return it == list.end() ? -1 : static_cast<int>(it - list.begin());
}

Communicator::Communicator(Adi3Engine& engine, std::shared_ptr<const CommGroup> group,
                           std::uint64_t id)
    : engine_(&engine), group_(std::move(group)), id_(id) {
  const auto it = group_->to_comm.find(engine_->world_rank());
  CBMPI_REQUIRE(it != group_->to_comm.end(),
                "rank ", engine_->world_rank(), " is not in this communicator");
  my_rank_ = it->second;
}

int Communicator::to_world(int comm_rank) const {
  CBMPI_REQUIRE(comm_rank >= 0 && comm_rank < size(),
                "communicator rank out of range: ", comm_rank);
  return group_->world_ranks[static_cast<std::size_t>(comm_rank)];
}

int Communicator::from_world(int world_rank) const {
  const auto it = group_->to_comm.find(world_rank);
  CBMPI_REQUIRE(it != group_->to_comm.end(), "world rank ", world_rank,
                " not in communicator");
  return it->second;
}

bool Communicator::test(const Request& request) {
  const ProfiledCall prof_scope(*engine_, prof::CallKind::Test);
  return engine_->test(request);
}

Status Communicator::wait(const Request& request) {
  const ProfiledCall prof_scope(*engine_, prof::CallKind::Wait);
  Status status = engine_->wait(request);
  if (request->kind == RequestState::Kind::Recv && status.source != kAnySource)
    status.source = from_world(status.source);
  return status;
}

void Communicator::wait_all(std::span<const Request> requests) {
  const ProfiledCall prof_scope(*engine_, prof::CallKind::Wait);
  engine_->wait_all(requests);
}

std::size_t Communicator::wait_any(std::span<const Request> requests) {
  CBMPI_REQUIRE(!requests.empty(), "wait_any on an empty request set");
  const ProfiledCall prof_scope(*engine_, prof::CallKind::Wait);
  while (true) {
    const std::uint64_t seen = engine_->job().matcher(engine_->world_rank()).version();
    for (std::size_t i = 0; i < requests.size(); ++i)
      if (engine_->test(requests[i])) return i;
    engine_->job().matcher(engine_->world_rank()).wait_past(seen);
    if (engine_->job().aborted.load(std::memory_order_acquire))
      throw AbortedError("job aborted: another rank raised an error");
  }
}

std::optional<std::size_t> Communicator::test_any(std::span<const Request> requests) {
  const ProfiledCall prof_scope(*engine_, prof::CallKind::Test);
  for (std::size_t i = 0; i < requests.size(); ++i)
    if (engine_->test(requests[i])) return i;
  return std::nullopt;
}

bool Communicator::test_all(std::span<const Request> requests) {
  const ProfiledCall prof_scope(*engine_, prof::CallKind::Test);
  bool all = true;
  for (const auto& request : requests)
    all = engine_->test(request) && all;
  return all;
}

Status Communicator::probe(int src, int tag) {
  const ProfiledCall prof_scope(*engine_, prof::CallKind::Probe);
  const int src_world = src == kAnySource ? kAnySource : to_world(src);
  while (true) {
    const std::uint64_t seen = engine_->job().matcher(engine_->world_rank()).version();
    auto status = engine_->iprobe(src_world, tag, id_);
    if (status) {
      status->source = from_world(status->source);
      return *status;
    }
    engine_->job().matcher(engine_->world_rank()).wait_past(seen);
    if (engine_->job().aborted.load(std::memory_order_acquire))
      throw AbortedError("job aborted: another rank raised an error");
  }
}

std::optional<Status> Communicator::iprobe(int src, int tag) {
  const ProfiledCall prof_scope(*engine_, prof::CallKind::Probe);
  const int src_world = src == kAnySource ? kAnySource : to_world(src);
  auto status = engine_->iprobe(src_world, tag, id_);
  if (status) status->source = from_world(status->source);
  return status;
}

int Communicator::begin_collective() {
  constexpr std::uint64_t kEpochs =
      (std::uint64_t{1} << 30) / static_cast<std::uint64_t>(kSubTags);
  const auto epoch = next_coll_seq_++ % kEpochs;
  return kCollectiveTagBase + static_cast<int>(epoch * kSubTags);
}

std::vector<int> Communicator::all_ranks() const {
  std::vector<int> list(static_cast<std::size_t>(size()));
  std::iota(list.begin(), list.end(), 0);
  return list;
}

int Communicator::position_in(const std::vector<int>& list) const {
  const int pos = position_of(list, my_rank_);
  CBMPI_REQUIRE(pos >= 0, "rank ", my_rank_, " not in collective rank list");
  return pos;
}

bool Communicator::two_level_enabled() const {
  return engine_->job().tuning.two_level_collectives;
}

const coll::Engine& Communicator::coll_engine() const { return engine_->job().coll; }

coll::Algo Communicator::pick(coll::Coll coll, Bytes bytes, int list_size) const {
  return coll_engine().choose(coll, bytes, list_size,
                              /*two_level_available=*/false);
}

void Communicator::note_algo(coll::Coll coll, coll::Algo algo, Bytes bytes,
                             Micros begin) {
  engine_->profile().add_coll_algo(coll, algo);
  if (engine_->job().trace) {
    engine_->job().trace->record(
        {sim::TraceKind::CollAlgo, engine_->world_rank(), -1, bytes,
         engine_->clock().now(),
         std::string(coll::to_string(coll)) + "/" + coll::to_string(algo)});
  }
  if (engine_->job().spans)
    engine_->job().spans->record(
        {std::string(coll::to_string(coll)), obs::SpanCat::Coll,
         engine_->world_rank(), -1, -1, bytes, begin, engine_->clock().now(),
         coll::to_string(algo)});
}

coll::Algo Communicator::barrier_over(const std::vector<int>& list, int tag,
                                      coll::Algo algo) {
  const int m = static_cast<int>(list.size());
  if (m <= 1) return algo;
  const int pos = position_in(list);
  std::uint8_t token = 1;

  if (algo == coll::Algo::FlatTree) {
    // Linear through the list head: gather tokens at tag, release at tag+1.
    std::uint8_t incoming = 0;
    if (pos == 0) {
      for (int q = 1; q < m; ++q)
        raw_recv(std::span<std::uint8_t>(&incoming, 1),
                 list[static_cast<std::size_t>(q)], tag);
      for (int q = 1; q < m; ++q)
        raw_send(std::span<const std::uint8_t>(&token, 1),
                 list[static_cast<std::size_t>(q)], tag + 1);
    } else {
      raw_send(std::span<const std::uint8_t>(&token, 1), list[0], tag);
      raw_recv(std::span<std::uint8_t>(&incoming, 1), list[0], tag + 1);
    }
    return algo;
  }

  // Dissemination: log2(m) rounds; distances are distinct modulo m, so one
  // tag per round pair is unnecessary — but rounds reuse partners only with
  // distinct distances, so a single tag is safe under per-sender FIFO.
  for (int dist = 1; dist < m; dist <<= 1) {
    const int to = list[static_cast<std::size_t>((pos + dist) % m)];
    const int from = list[static_cast<std::size_t>((pos - dist % m + m) % m)];
    std::uint8_t incoming = 0;
    raw_sendrecv(std::span<const std::uint8_t>(&token, 1), to,
                 std::span<std::uint8_t>(&incoming, 1), from, tag);
  }
  return coll::Algo::Dissemination;
}

void Communicator::barrier() {
  const ProfiledCall prof_scope(*engine_, prof::CallKind::Barrier);
  const int tag = begin_collective();
  const auto& groups = locality_groups();
  const bool two_level_ok = two_level_enabled() && !groups.trivial();
  const coll::Algo algo =
      coll_engine().choose(coll::Coll::Barrier, 0, size(), two_level_ok);
  if (algo != coll::Algo::TwoLevel) {
    note_algo(coll::Coll::Barrier, barrier_over(all_ranks(), tag, algo), 0,
              prof_scope.start());
    return;
  }
  // Local gather to the leader, leader barrier, local release.
  std::uint8_t token = 1;
  if (rank() == groups.my_leader) {
    std::uint8_t incoming = 0;
    for (int member : groups.my_group) {
      if (member == rank()) continue;
      raw_recv(std::span<std::uint8_t>(&incoming, 1), member, tag);
    }
    barrier_over(groups.leaders, tag + 4,
                 pick(coll::Coll::Barrier, 0, static_cast<int>(groups.leaders.size())));
    for (int member : groups.my_group) {
      if (member == rank()) continue;
      raw_send(std::span<const std::uint8_t>(&token, 1), member, tag + 8);
    }
  } else {
    raw_send(std::span<const std::uint8_t>(&token, 1), groups.my_leader, tag);
    std::uint8_t incoming = 0;
    raw_recv(std::span<std::uint8_t>(&incoming, 1), groups.my_leader, tag + 8);
  }
  note_algo(coll::Coll::Barrier, coll::Algo::TwoLevel, 0, prof_scope.start());
}

void Communicator::raw_barrier() {
  barrier_over(all_ranks(), begin_collective(), coll::Algo::Dissemination);
}

const LocalityGroups& Communicator::locality_groups() {
  if (locality_) return *locality_;

  const auto& selector = *engine_->job().selector;
  const int n = size();
  LocalityGroups groups;
  groups.leader_of.resize(static_cast<std::size_t>(n));

  // leader_of[j] = smallest comm rank co-resident with j. With homogeneous
  // detection co-residency is transitive (same hostname / same container
  // list) and this is already a partition — but fault degradation can mix
  // container-aware and hostname-fallback rows in one job, breaking
  // transitivity (j~k and k~i without j~i). Grouping must then still be a
  // partition that every rank derives identically, or ranks disagree about
  // who gathers whom and the collective deadlocks.
  for (int j = 0; j < n; ++j) {
    int leader = j;
    for (int k = 0; k < n; ++k) {
      if (selector.co_resident(to_world(j), to_world(k))) {
        leader = k;
        break;  // ranks scanned ascending: first hit is the minimum
      }
    }
    groups.leader_of[static_cast<std::size_t>(j)] = leader;
  }
  // Path-compress leader chains (leader_of[j] <= j, so chains strictly
  // descend and terminate) into that partition. Under a non-transitive
  // matrix a member may reach its leader over a non-co-resident (HCA) link;
  // that costs time, never correctness.
  for (int j = 0; j < n; ++j) {
    int leader = groups.leader_of[static_cast<std::size_t>(j)];
    while (groups.leader_of[static_cast<std::size_t>(leader)] != leader)
      leader = groups.leader_of[static_cast<std::size_t>(leader)];
    groups.leader_of[static_cast<std::size_t>(j)] = leader;
  }

  const int mine = groups.leader_of[static_cast<std::size_t>(my_rank_)];
  for (int j = 0; j < n; ++j)
    if (groups.leader_of[static_cast<std::size_t>(j)] == mine)
      groups.my_group.push_back(j);
  groups.my_leader = mine;  // == my_group.front(): a leader leads itself
  groups.group_size = static_cast<int>(groups.my_group.size());

  std::vector<int> group_sizes(static_cast<std::size_t>(n), 0);
  for (int j = 0; j < n; ++j) {
    const int leader = groups.leader_of[static_cast<std::size_t>(j)];
    if (leader == j) groups.leaders.push_back(j);
    ++group_sizes[static_cast<std::size_t>(leader)];
  }
  for (const int size : group_sizes)
    groups.max_group_size = std::max(groups.max_group_size, size);

  groups.uniform = true;
  for (int leader : groups.leaders)
    if (group_sizes[static_cast<std::size_t>(leader)] !=
        group_sizes[static_cast<std::size_t>(groups.leaders.front())])
      groups.uniform = false;

  // Contiguity: each group occupies the rank range [leader, leader + size).
  groups.contiguous = true;
  for (int j = 0; j < n; ++j) {
    const int leader = groups.leader_of[static_cast<std::size_t>(j)];
    if (j - leader >= group_sizes[static_cast<std::size_t>(leader)])
      groups.contiguous = false;
  }

  locality_ = std::move(groups);
  return *locality_;
}

std::optional<Communicator> Communicator::split(int color, int key) {
  const int tag = begin_collective();
  const std::uint64_t ordinal = next_child_ordinal_++;

  struct Triple {
    int color;
    int key;
    int comm_rank;
  };
  const Triple mine{color, key, my_rank_};
  std::vector<Triple> all(static_cast<std::size_t>(size()));
  allgather_over(all_ranks(), std::span<const Triple>(&mine, 1), std::span<Triple>(all),
                 tag, coll::Algo::Ring);

  if (color < 0) return std::nullopt;

  std::vector<Triple> members;
  for (const auto& t : all)
    if (t.color == color) members.push_back(t);
  std::sort(members.begin(), members.end(), [](const Triple& a, const Triple& b) {
    return std::tie(a.key, a.comm_rank) < std::tie(b.key, b.comm_rank);
  });

  std::vector<int> world_ranks;
  world_ranks.reserve(members.size());
  for (const auto& t : members) world_ranks.push_back(to_world(t.comm_rank));

  std::uint64_t child_id = mix64(id_ ^ mix64(ordinal));
  child_id = mix64(child_id ^ static_cast<std::uint64_t>(color));
  return Communicator(*engine_, CommGroup::make(std::move(world_ranks)), child_id);
}

Communicator Communicator::dup() {
  const std::uint64_t ordinal = next_child_ordinal_++;
  // Collective by contract; no data exchange needed — the id derivation is
  // deterministic and identical on all ranks.
  const std::uint64_t child_id = mix64(id_ ^ mix64(ordinal ^ 0x5bd1e995ULL));
  return Communicator(*engine_, group_, child_id);
}

}  // namespace cbmpi::mpi
