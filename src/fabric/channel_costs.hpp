// Cost structures shared by all channels.
#pragma once

#include "common/units.hpp"

namespace cbmpi::fabric {

/// Cost decomposition of one eager transfer.
struct EagerCosts {
  /// Added to the sender's clock (staging copy, descriptor post, stalls).
  /// The bandwidth term lives here: back-to-back sends serialize on it,
  /// which is what produces realistic windowed-bandwidth behaviour.
  Micros sender = 0.0;
  /// Pure latency from send completion until the payload is visible at the
  /// receiver (queue flag propagation / wire time).
  Micros delivery = 0.0;
  /// Added to the receiver's clock at completion (copy-out of the queue or
  /// eager ring into the user buffer).
  Micros receiver = 0.0;
};

/// Completion times of one rendezvous transfer, computed at match time from
/// the RTS send time and the receiver-side match time.
struct RndvTimes {
  Micros receiver_done = 0.0;
  Micros sender_done = 0.0;
  /// When the receiver's serialized resource (CPU copy engine / PCIe) frees
  /// up — excludes trailing pure-latency terms. 0 means "same as
  /// receiver_done".
  Micros receiver_busy_until = 0.0;
  /// When the sender starts injecting the payload (CTS received, descriptor
  /// posted). The fabric model records the flow from this instant.
  Micros inject_begin = 0.0;
};

/// Cost of one pipelined one-sided op (put/get) within an epoch.
struct OneSidedCosts {
  /// Minimum spacing between back-to-back ops (message-rate limit).
  Micros gap = 0.0;
  /// Full completion latency of a single op (used by flush / latency tests).
  Micros latency = 0.0;
};

}  // namespace cbmpi::fabric
