// Span-based tracing: begin/end intervals in virtual time, upgrading the
// instant-only sim::TraceEvent stream to something Perfetto renders as
// duration tracks.
//
// Span taxonomy (DESIGN.md §12):
//   Mpi      one user-level MPI call (name = "MPI_Send", ...), rank track
//   Coll     a collective resolved to an algorithm ("bcast/binomial"),
//            nested inside its Mpi span, rank track
//   Proto    one transfer's protocol interval (eager processing window or
//            the rendezvous RTS->done handshake), channel track
//   Compute  a Process::compute phase, rank track
//   Fault    recovery time (retry backoff, locality fallback), rank track
//   Migrate  live-migration time (quiesce snapshot, image transfer, resume),
//            rank track
//
// Recorder appends are thread-safe; append order across rank threads is
// wall-clock noise, so exporters call sorted_spans() which orders by
// (begin, end desc, cat, rank, peer, name, note) — a total order over the
// deterministic virtual-time payload, making exports bit-identical across
// reruns.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace cbmpi::obs {

enum class SpanCat : std::uint8_t { Mpi, Coll, Proto, Compute, Fault, Migrate };

inline constexpr std::size_t kSpanCats = 6;

const char* to_string(SpanCat cat);

struct Span {
  std::string name;
  SpanCat cat = SpanCat::Mpi;
  int rank = -1;     ///< the rank whose timeline this span belongs to
  int peer = -1;     ///< other side of a transfer, -1 when not a transfer
  int channel = -1;  ///< fabric::ChannelKind ordinal for Proto spans, -1 else
  Bytes bytes = 0;
  Micros begin = 0.0;
  Micros end = 0.0;
  std::string note;

  // Dependency payload for the analysis engine (src/obs/analysis). All of
  // these are trailing defaulted fields so the 9-field aggregate inits in
  // existing code and tests keep compiling, and none of them participate in
  // the canonical sort — they are derived from the same virtual-time state
  // the sort keys already pin down.
  std::int64_t xfer = -1;   ///< transfer id (src<<32 | seq) linking the
                            ///< sender's hand-off to the receiver's Proto
                            ///< span; -1 when the span is not a transfer
  Micros posted_at = -1.0;  ///< receiver posted the matching recv (-1 n/a)
  Micros sent_at = -1.0;    ///< sender handed the message to the fabric
  Micros avail_at = -1.0;   ///< payload (eager) / RTS (rndv) visible at
                            ///< the receiver
  Micros stall = 0.0;       ///< link-contention time added vs uncontended
  Micros reg_stall = 0.0;   ///< registration time the rndv pipeline could
                            ///< not hide

  Micros duration() const { return end - begin; }
};

class SpanRecorder {
 public:
  void record(Span span);

  /// Snapshot in append order (wall-clock dependent; tests only).
  std::vector<Span> spans() const;

  /// Snapshot in the canonical deterministic order used by every exporter.
  std::vector<Span> sorted_spans() const;

  std::size_t count() const;
  std::size_t count(SpanCat cat) const;

  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<Span> spans_;
};

/// Canonical exporter order: (begin asc, end desc, cat, rank, peer, name,
/// note) — outer spans sort before the spans they contain.
void sort_spans(std::vector<Span>& spans);

}  // namespace cbmpi::obs
