// Tests for the PGAS global-array layer (the paper's future-work model).
#include <gtest/gtest.h>

#include <numeric>

#include "pgas/global_array.hpp"
#include "mpi/runtime.hpp"

namespace cbmpi {
namespace {

using container::DeploymentSpec;
using fabric::ChannelKind;
using fabric::LocalityPolicy;
using mpi::JobConfig;

JobConfig four_ranks(LocalityPolicy policy = LocalityPolicy::ContainerAware) {
  JobConfig cfg;
  cfg.deployment = DeploymentSpec::containers(1, 2, 4);
  cfg.policy = policy;
  return cfg;
}

TEST(GlobalArray, OwnershipAndLocalViews) {
  mpi::run_job(four_ranks(), [](mpi::Process& p) {
    pgas::GlobalArray<int> array(p.world(), 10);
    // ceil(10/4) = 3: ranks own [0,3) [3,6) [6,9) [9,10).
    EXPECT_EQ(array.owner_of(0), 0);
    EXPECT_EQ(array.owner_of(5), 1);
    EXPECT_EQ(array.owner_of(9), 3);
    const std::size_t expected_size =
        p.rank() == 3 ? 1u : 3u;
    EXPECT_EQ(array.local().size(), expected_size);
    EXPECT_EQ(array.local_begin(), static_cast<std::size_t>(p.rank()) * 3);
    array.sync();
  });
}

TEST(GlobalArray, WriteThenReadAcrossRanks) {
  mpi::run_job(four_ranks(), [](mpi::Process& p) {
    pgas::GlobalArray<std::int64_t> array(p.world(), 16);
    // Every rank writes its rank into element (rank+1) % 16 * ... scattered.
    array.write(static_cast<std::size_t>((p.rank() * 5 + 2) % 16), p.rank() + 100);
    array.sync();
    // Everyone reads everything back.
    for (int r = 0; r < p.size(); ++r) {
      const auto value = array.read(static_cast<std::size_t>((r * 5 + 2) % 16));
      EXPECT_EQ(value, r + 100);
    }
    array.sync();
  });
}

TEST(GlobalArray, AccumulateIsAtomicAcrossRanks) {
  mpi::run_job(four_ranks(), [](mpi::Process& p) {
    pgas::GlobalArray<std::int64_t> array(p.world(), 4, 0);
    // All ranks accumulate into the same element.
    for (int i = 0; i < 10; ++i) array.accumulate(2, 1);
    array.sync();
    EXPECT_EQ(array.read(2), 4 * 10);
    array.sync();
  });
}

TEST(GlobalArray, BlockTransfersSpanOwners) {
  mpi::run_job(four_ranks(), [](mpi::Process& p) {
    pgas::GlobalArray<int> array(p.world(), 20, -1);
    if (p.rank() == 0) {
      std::vector<int> data(12);
      std::iota(data.begin(), data.end(), 50);
      array.write_block(4, std::span<const int>(data));  // spans ranks 0..3
    }
    array.sync();
    std::vector<int> readback(12, 0);
    array.read_block(4, std::span<int>(readback));
    for (int k = 0; k < 12; ++k) EXPECT_EQ(readback[static_cast<std::size_t>(k)], 50 + k);
    array.sync();
  });
}

TEST(GlobalArray, OutOfRangeThrows) {
  mpi::run_job(four_ranks(), [](mpi::Process& p) {
    pgas::GlobalArray<int> array(p.world(), 8);
    EXPECT_THROW(array.read(8), Error);
    EXPECT_THROW(array.write(100, 1), Error);
    array.sync();
  });
}

TEST(GlobalArray, InheritsLocalityAwareChannels) {
  // The same PGAS program, two policies: the aware one must avoid the HCA.
  auto hca_ops = [](LocalityPolicy policy) {
    const auto result = mpi::run_job(four_ranks(policy), [](mpi::Process& p) {
      pgas::GlobalArray<double> array(p.world(), 64);
      for (std::size_t i = 0; i < 64; ++i)
        if (array.owner_of(i) != p.rank()) array.write(i, 1.0);
      array.sync();
    });
    return result.profile.total.channel_ops(ChannelKind::Hca);
  };
  EXPECT_GT(hca_ops(LocalityPolicy::HostnameBased), 0u);
  EXPECT_EQ(hca_ops(LocalityPolicy::ContainerAware), 0u);
}

}  // namespace
}  // namespace cbmpi
