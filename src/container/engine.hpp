// Container engine (docker-run analogue) and native process spawning.
//
// The Engine owns the containers it starts; processes are returned to the
// caller (the MPI launcher owns rank processes for the duration of a job).
#pragma once

#include <memory>
#include <vector>

#include "container/container.hpp"
#include "osl/process.hpp"

namespace cbmpi::container {

class Engine {
 public:
  explicit Engine(osl::Machine& machine) : machine_(&machine) {}

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Starts a container on a host (docker run). Rejects cpuset entries that
  /// are out of range, repeated within the spec, or already pinned by another
  /// container on the same host (containers never share cores — the paper
  /// pins disjoint cpusets to avoid competition). Containers with an empty
  /// cpuset (all host cores, docker's default) are exempt from the conflict
  /// check, like real docker.
  Container& run(topo::HostId host, ContainerSpec spec);

  /// Flat core indices on `host` not pinned by any container's explicit
  /// cpuset, in ascending order. The scheduler's capacity queries and cpuset
  /// carving build on this.
  std::vector<int> free_cores(topo::HostId host) const;

  /// Spawns a process inside a container, pinned to the slot-th cpuset core.
  std::unique_ptr<osl::SimProcess> spawn(Container& cont, int core_slot) const;

  /// Spawns a process directly on the host (native, root namespaces).
  std::unique_ptr<osl::SimProcess> spawn_native(topo::HostId host,
                                                topo::CoreId core) const;

  osl::Machine& machine() const { return *machine_; }
  const std::vector<std::unique_ptr<Container>>& containers() const {
    return containers_;
  }

 private:
  osl::Machine* machine_;
  std::vector<std::unique_ptr<Container>> containers_;
};

}  // namespace cbmpi::container
