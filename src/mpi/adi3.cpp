#include "mpi/adi3.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "common/error.hpp"

namespace cbmpi::mpi {

namespace {
/// CPU cost of posting an RTS descriptor.
constexpr Micros kRtsPostOverhead = 0.10;

/// Job-unique transfer id: seq is per-sender-engine, so (src, seq) names one
/// message. Links the sender's hand-off to the receiver-side Proto span for
/// the analysis engine and Perfetto flow arrows.
std::int64_t transfer_id(const fabric::Envelope& env) {
  return (static_cast<std::int64_t>(env.src) << 32) |
         static_cast<std::int64_t>(env.seq & 0xffffffffu);
}
}  // namespace

// A note on MPI_Test/MPI_Iprobe time: an idle poll advances *no* virtual
// time. A wall-clock polling loop may spin thousands of times waiting for a
// peer thread to be scheduled, and charging each spin would couple virtual
// time to host scheduling noise. The true waiting cost is captured exactly
// once, by the advance_to() jump to the request's completion time — which the
// profiler attributes to the MPI_Test/MPI_Wait call that observed completion,
// just like mpiP attributes polling time in the real library.

Adi3Engine::Adi3Engine(JobState& job, int world_rank, osl::SimProcess& proc)
    : job_(&job), rank_(world_rank), proc_(&proc) {
  CBMPI_REQUIRE(world_rank >= 0 && world_rank < job.nranks, "bad world rank");
  if (job.metrics != nullptr) {
    obs_.eager_sends = &job.metrics->counter("adi3.eager_sends");
    obs_.rndv_sends = &job.metrics->counter("adi3.rndv_sends");
    for (std::size_t c = 0; c < fabric::kChannelKinds; ++c)
      obs_.channel_ops[c] = &job.metrics->counter(
          std::string("channel.") +
          fabric::to_string(static_cast<fabric::ChannelKind>(c)) + ".ops");
    obs_.msg_size = &job.metrics->histogram("adi3.message_bytes");
    obs_.recv_latency = &job.metrics->histogram("adi3.recv_latency_us");
    if (job.tuning.reg_model) {
      obs_.reg_hits = &job.metrics->counter("hca.reg_cache.hits");
      obs_.reg_misses = &job.metrics->counter("hca.reg_cache.misses");
      obs_.reg_evictions = &job.metrics->counter("hca.reg_cache.evictions");
    }
  }
}

std::uint64_t Adi3Engine::reg_buffer_id(const void* base) {
  return reg_buffer_ids_.try_emplace(base, reg_buffer_ids_.size())
      .first->second;
}

std::uint64_t Adi3Engine::queue_pair_key(int dst_world) const {
  return static_cast<std::uint64_t>(rank_) * static_cast<std::uint64_t>(job_->nranks) +
         static_cast<std::uint64_t>(dst_world);
}

const net::TransferCtx* Adi3Engine::fabric_ctx(int src_rank, int dst_rank,
                                               std::uint64_t seq, bool loopback,
                                               net::TransferCtx& ctx) const {
  if (job_->fabric == nullptr || loopback) return nullptr;
  ctx.src_host = job_->rank_phys_host[static_cast<std::size_t>(src_rank)];
  ctx.dst_host = job_->rank_phys_host[static_cast<std::size_t>(dst_rank)];
  if (ctx.src_host == ctx.dst_host) return nullptr;
  ctx.key = {src_rank, seq};
  return &ctx;
}

void Adi3Engine::trace_congestion(const net::TransferCtx* ctx, int src, int dst,
                                  Bytes size, Micros at) {
  if (ctx == nullptr || job_->congestion == nullptr || job_->trace == nullptr)
    return;
  const double factor = job_->congestion->factor(ctx->key);
  if (factor <= 1.0) return;
  std::ostringstream os;
  os << "x" << factor << " over " << job_->fabric->hops(ctx->src_host, ctx->dst_host)
     << " hops";
  job_->trace->record({sim::TraceKind::NetCongest, src, dst, size, at, os.str()});
}

Request Adi3Engine::start_send(std::span<const std::byte> data, int dst_world, int tag,
                               std::uint64_t comm_id) {
  CBMPI_REQUIRE(dst_world >= 0 && dst_world < job_->nranks,
                "send to invalid rank ", dst_world);
  check_crash();
  const Bytes size = data.size();
  const auto decision = job_->selector->select(rank_, dst_world, size);
  profile().add_channel_op(decision.channel, size);
  if (obs_.msg_size != nullptr) {
    obs_.msg_size->observe(size);
    obs_.channel_ops[static_cast<std::size_t>(decision.channel)]->add(1);
    (decision.protocol == fabric::Protocol::Eager ? obs_.eager_sends
                                                  : obs_.rndv_sends)
        ->add(1);
  }
  const std::uint64_t seq = next_seq_++;
  if (decision.channel == fabric::ChannelKind::Hca) {
    job_->hca->ensure_connected(rank_, dst_world);
    // Transient send/completion failures (injected) retry here, before the
    // successful attempt's cost is charged; the backoff time lands on the
    // sender's clock and therefore delays available_at for the receiver.
    charge_hca_retries(dst_world, seq, size);
  }

  fabric::Envelope env;
  env.src = rank_;
  env.dst = dst_world;
  env.tag = tag;
  env.comm_id = comm_id;
  env.seq = seq;
  env.channel = decision.channel;
  env.protocol = decision.protocol;
  env.size = size;
  env.same_socket = decision.same_socket;
  env.loopback = decision.loopback;
  env.sriov = decision.sriov;

  auto request = std::make_shared<RequestState>();

  if (decision.protocol == fabric::Protocol::Eager) {
    fabric::EagerCosts costs;
    switch (decision.channel) {
      case fabric::ChannelKind::Shm: {
        costs = job_->shm->eager_costs(size, decision.same_socket);
        const auto* peer = job_->selector->endpoint(dst_world).process;
        job_->shm->stage(*proc_, *peer, queue_pair_key(dst_world), data, env.payload);
        break;
      }
      case fabric::ChannelKind::Hca: {
        net::TransferCtx ctx;
        const auto* ctxp = fabric_ctx(rank_, dst_world, seq, decision.loopback, ctx);
        costs = job_->hca->eager_costs(size, decision.loopback, decision.sriov, ctxp);
        if (ctxp != nullptr && job_->net_log != nullptr)
          // Injection starts after the descriptor post; the sender-side
          // bandwidth term runs from there.
          job_->net_log->record({ctx.key, ctx.src_host, ctx.dst_host, size,
                                 clock().now() + job_->profile->hca_post_overhead,
                                 decision.sriov});
        trace_congestion(ctxp, rank_, dst_world, size, clock().now());
        env.payload.assign(data.begin(), data.end());
        break;
      }
      case fabric::ChannelKind::Cma:
        // The selector never routes eager traffic onto CMA.
        CBMPI_REQUIRE(false, "eager protocol on CMA channel — selector bug");
    }
    clock().advance(costs.sender);
    env.sent_at = clock().now();
    env.available_at = clock().now() + costs.delivery;
    env.receiver_cost = costs.receiver;

    if (job_->trace)
      job_->trace->record({sim::TraceKind::SendEager, rank_, dst_world, size,
                           clock().now(), fabric::to_string(decision.channel)});

    request->kind = RequestState::Kind::SendEager;
    request->complete = true;
    request->complete_at = clock().now();
    job_->matcher(dst_world).deliver(std::move(env));
    return request;
  }

  // Rendezvous: post the RTS carrying a view of the user buffer; the
  // receiver performs the transfer and reports our completion time back.
  clock().advance(kRtsPostOverhead);
  if (decision.channel == fabric::ChannelKind::Hca && job_->hca->reg_model()) {
    // Sender-side pin-down lookup at RTS time. The pin itself overlaps the
    // CTS handshake inside rndv_times; only the outcome rides the envelope.
    const auto look =
        job_->hca->reg_lookup(rank_, reg_buffer_id(data.data()), size);
    env.reg_sender_hit = look.hit;
    env.reg_sender_extra = look.extra;
    if (obs_.reg_hits != nullptr) {
      (look.hit ? obs_.reg_hits : obs_.reg_misses)->add(1);
      if (look.evictions > 0) obs_.reg_evictions->add(look.evictions);
    }
  }
  auto rndv = std::make_shared<fabric::RndvState>(data, proc_, clock().now());
  env.sent_at = clock().now();
  env.available_at = clock().now();
  env.rndv = rndv;

  if (job_->trace)
    job_->trace->record({sim::TraceKind::SendRndvRts, rank_, dst_world, size,
                         clock().now(), fabric::to_string(decision.channel)});

  request->kind = RequestState::Kind::SendRndv;
  request->rndv = std::move(rndv);
  job_->matcher(dst_world).deliver(std::move(env));
  return request;
}

Request Adi3Engine::post_recv(std::span<std::byte> buffer, int src_world, int tag,
                              std::uint64_t comm_id, bool immediate) {
  auto request = std::make_shared<RequestState>();
  request->kind = RequestState::Kind::Recv;
  request->buffer = buffer;
  request->src_world = src_world;
  request->tag = tag;
  request->comm_id = comm_id;
  request->posted_at = clock().now();
  posted_.push_back(request);
  if (immediate) {
    // A matching message may already be waiting in the unexpected queue.
    try_complete_recv(*request);
    if (request->complete)
      posted_.erase(std::remove(posted_.begin(), posted_.end(), request),
                    posted_.end());
  }
  return request;
}

void Adi3Engine::complete_in_arrival_order(std::span<const Request> recvs) {
  std::vector<RequestState*> pending;
  pending.reserve(recvs.size());
  for (const auto& request : recvs) {
    CBMPI_REQUIRE(request != nullptr && request->kind == RequestState::Kind::Recv,
                  "complete_in_arrival_order needs receive requests");
    CBMPI_REQUIRE(request->src_world != kAnySource,
                  "complete_in_arrival_order cannot order wildcard receives");
    if (!request->complete) pending.push_back(request.get());
  }

  // Phase 1: collect every envelope without completing anything — which
  // messages have arrived at any instant is wall-clock noise.
  std::vector<std::optional<fabric::Envelope>> matched(pending.size());
  std::size_t remaining = pending.size();
  while (remaining > 0) {
    check_abort();
    const std::uint64_t seen = job_->matcher(rank_).version();
    bool any = false;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      if (matched[i]) continue;
      auto env = job_->matcher(rank_).try_match(pending[i]->src_world,
                                                pending[i]->tag,
                                                pending[i]->comm_id);
      if (env) {
        matched[i] = std::move(env);
        --remaining;
        any = true;
      }
    }
    if (!any && remaining > 0) job_->matcher(rank_).wait_past(seen);
  }

  // Phase 2: process in virtual arrival order, so the receiver busy chain
  // is a pure function of the envelopes' timestamps.
  std::vector<std::size_t> order(pending.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto& ea = *matched[a];
    const auto& eb = *matched[b];
    if (ea.available_at != eb.available_at) return ea.available_at < eb.available_at;
    if (ea.src != eb.src) return ea.src < eb.src;
    return ea.seq < eb.seq;
  });
  for (const std::size_t i : order) {
    RequestState& request = *pending[i];
    if (matched[i]->protocol == fabric::Protocol::Eager)
      complete_eager(request, *matched[i]);
    else
      complete_rendezvous(request, *matched[i]);
    posted_.erase(std::remove_if(posted_.begin(), posted_.end(),
                                 [&](const Request& r) { return r.get() == &request; }),
                  posted_.end());
  }
}

void Adi3Engine::complete_eager(RequestState& request, fabric::Envelope& env) {
  CBMPI_REQUIRE(env.size <= request.buffer.size(),
                "message truncation: incoming ", env.size, " bytes into ",
                request.buffer.size(), "-byte receive buffer");
  if (env.size > 0)
    std::memcpy(request.buffer.data(), env.payload.data(), env.size);
  const Micros start =
      std::max({request.posted_at, env.available_at, recv_busy_until_});
  request.complete_at = start + env.receiver_cost;
  recv_busy_until_ = request.complete_at;
  request.status = Status{env.src, env.tag, env.size};
  request.complete = true;
  if (job_->trace)
    job_->trace->record({sim::TraceKind::RecvComplete, env.src, rank_, env.size,
                         request.complete_at, fabric::to_string(env.channel)});
  if (job_->spans) {
    obs::Span span{"eager", obs::SpanCat::Proto, rank_, env.src,
                   static_cast<int>(env.channel), env.size, start,
                   request.complete_at, fabric::to_string(env.channel)};
    span.xfer = transfer_id(env);
    span.posted_at = request.posted_at;
    span.sent_at = env.sent_at;
    span.avail_at = env.available_at;
    if (env.channel == fabric::ChannelKind::Hca) {
      net::TransferCtx ctx;
      const auto* ctxp = fabric_ctx(env.src, rank_, env.seq, env.loopback, ctx);
      span.stall =
          job_->hca->contention_stall(env.size, env.loopback, env.sriov, ctxp);
    }
    job_->spans->record(std::move(span));
  }
  if (obs_.recv_latency != nullptr)
    obs_.recv_latency->observe(
        static_cast<std::uint64_t>(request.complete_at - request.posted_at));
}

void Adi3Engine::complete_rendezvous(RequestState& request, fabric::Envelope& env) {
  CBMPI_REQUIRE(env.size <= request.buffer.size(),
                "message truncation: incoming ", env.size, " bytes into ",
                request.buffer.size(), "-byte receive buffer");
  auto& rndv = *env.rndv;
  std::span<std::byte> dst = request.buffer.subspan(0, env.size);

  // Back-to-back rendezvous pulls serialize on the receiving CPU/NIC.
  const Micros match_at = std::max(request.posted_at, recv_busy_until_);
  (void)match_at;

  fabric::RndvTimes times{};
  auto result = osl::cma::Result::Ok;
  switch (env.channel) {
    case fabric::ChannelKind::Cma:
      times = job_->cma->rndv_times(env.size, env.same_socket, env.available_at,
                                    match_at);
      result = job_->cma->pull(*proc_, rndv, dst);
      CBMPI_REQUIRE(result == osl::cma::Result::Ok,
                    "CMA transfer failed: ", osl::cma::to_string(result),
                    " — containers must share the host PID namespace "
                    "(--pid=host) for the CMA channel");
      break;
    case fabric::ChannelKind::Shm:
      times = job_->shm->rndv_times(env.size, env.same_socket, env.available_at,
                                    match_at);
      if (env.size > 0) std::memcpy(dst.data(), rndv.source().data(), env.size);
      break;
    case fabric::ChannelKind::Hca: {
      net::TransferCtx ctx;
      const auto* ctxp = fabric_ctx(env.src, rank_, env.seq, env.loopback, ctx);
      if (job_->hca->reg_model()) {
        fabric::RegPlan plan;
        plan.sender_hit = env.reg_sender_hit;
        plan.sender_extra = env.reg_sender_extra;
        const auto look =
            job_->hca->reg_lookup(rank_, reg_buffer_id(dst.data()), env.size);
        plan.receiver_hit = look.hit;
        plan.receiver_extra = look.extra;
        if (obs_.reg_hits != nullptr) {
          (look.hit ? obs_.reg_hits : obs_.reg_misses)->add(1);
          if (look.evictions > 0) obs_.reg_evictions->add(look.evictions);
        }
        times = job_->hca->rndv_times(env.size, env.loopback, env.available_at,
                                      request.posted_at, recv_busy_until_,
                                      env.sriov, ctxp, plan);
        if (job_->spans) {
          // Receiver-side pin window: it gates the CTS, so it renders right
          // at the front of the enclosing "rndv" span.
          obs::Span reg{"rndv-reg", obs::SpanCat::Proto, rank_, env.src,
                        static_cast<int>(env.channel), env.size,
                        times.recv_reg_begin, times.recv_reg_end,
                        look.hit ? "hit" : "miss"};
          reg.xfer = transfer_id(env);
          job_->spans->record(std::move(reg));
        }
      } else {
        times = job_->hca->rndv_times(env.size, env.loopback, env.available_at,
                                      request.posted_at, recv_busy_until_,
                                      env.sriov, ctxp);
      }
      if (ctxp != nullptr && job_->net_log != nullptr)
        job_->net_log->record({ctx.key, ctx.src_host, ctx.dst_host, env.size,
                               times.inject_begin, env.sriov});
      trace_congestion(ctxp, env.src, rank_, env.size, times.inject_begin);
      if (env.size > 0) std::memcpy(dst.data(), rndv.source().data(), env.size);
      break;
    }
  }

  request.complete_at = times.receiver_done;
  recv_busy_until_ = times.receiver_busy_until > 0.0 ? times.receiver_busy_until
                                                     : times.receiver_done;
  request.status = Status{env.src, env.tag, env.size};
  request.complete = true;
  rndv.complete(times.sender_done, result);

  if (job_->trace) {
    job_->trace->record({sim::TraceKind::RecvRndvCts, rank_, env.src, 0,
                         request.posted_at, fabric::to_string(env.channel)});
    job_->trace->record({sim::TraceKind::SendRndvData, env.src, rank_, env.size,
                         times.receiver_done, fabric::to_string(env.channel)});
  }
  if (job_->spans) {
    // The whole handshake: RTS availability through receiver-side
    // completion, on the channel's track.
    obs::Span span{"rndv", obs::SpanCat::Proto, rank_, env.src,
                   static_cast<int>(env.channel), env.size, env.available_at,
                   times.receiver_done, fabric::to_string(env.channel)};
    span.xfer = transfer_id(env);
    span.posted_at = request.posted_at;
    span.sent_at = env.sent_at;
    span.avail_at = env.available_at;
    span.reg_stall = times.reg_stall;
    if (env.channel == fabric::ChannelKind::Hca) {
      net::TransferCtx ctx;
      const auto* ctxp = fabric_ctx(env.src, rank_, env.seq, env.loopback, ctx);
      span.stall =
          job_->hca->contention_stall(env.size, env.loopback, env.sriov, ctxp);
    }
    job_->spans->record(std::move(span));
  }
  if (obs_.recv_latency != nullptr)
    obs_.recv_latency->observe(
        static_cast<std::uint64_t>(request.complete_at - request.posted_at));
}

bool Adi3Engine::try_complete_recv(RequestState& request) {
  if (request.complete) return true;
  auto env = job_->matcher(rank_).try_match(request.src_world, request.tag,
                                            request.comm_id);
  if (!env) return false;
  if (env->protocol == fabric::Protocol::Eager)
    complete_eager(request, *env);
  else
    complete_rendezvous(request, *env);
  return true;
}

void Adi3Engine::progress_posted() {
  auto it = posted_.begin();
  while (it != posted_.end()) {
    if (try_complete_recv(**it))
      it = posted_.erase(it);
    else
      ++it;
  }
}

bool Adi3Engine::test(const Request& request) {
  CBMPI_REQUIRE(request != nullptr, "test on null request");
  switch (request->kind) {
    case RequestState::Kind::SendEager:
      break;  // complete since start_send
    case RequestState::Kind::SendRndv:
      if (!request->complete && request->rndv->done()) {
        request->complete_at = request->rndv->wait_sender_complete();
        request->complete = true;
      }
      break;
    case RequestState::Kind::Recv:
      progress_posted();
      break;
  }
  if (request->complete) clock().advance_to(request->complete_at);
  return request->complete;
}

Status Adi3Engine::wait(const Request& request) {
  CBMPI_REQUIRE(request != nullptr, "wait on null request");
  switch (request->kind) {
    case RequestState::Kind::SendEager:
      break;
    case RequestState::Kind::SendRndv:
      while (!request->complete) {
        check_abort();
        if (request->rndv->wait_done_for(std::chrono::milliseconds(20))) {
          request->complete_at = request->rndv->wait_sender_complete();
          request->complete = true;
        }
        // While blocked in a rendezvous send, keep progressing posted
        // receives so head-to-head large transfers cannot deadlock the way
        // a progress-less implementation would.
        progress_posted();
      }
      break;
    case RequestState::Kind::Recv: {
      while (!request->complete) {
        check_abort();
        const std::uint64_t seen = job_->matcher(rank_).version();
        progress_posted();
        if (request->complete) break;
        job_->matcher(rank_).wait_past(seen);
      }
      break;
    }
  }
  clock().advance_to(request->complete_at);
  check_crash();
  return request->status;
}

void Adi3Engine::charge_hca_retries(int dst_world, std::uint64_t seq, Bytes size) {
  const auto* inj = job_->faults;
  if (inj == nullptr) return;
  const auto& tuning = job_->tuning;
  for (int attempt = 0;; ++attempt) {
    const auto outcome = inj->hca_attempt(rank_, dst_world, seq, attempt, clock().now());
    if (outcome == faults::FaultInjector::HcaOutcome::Ok) return;

    const auto kind = outcome == faults::FaultInjector::HcaOutcome::LinkFlap
                          ? faults::FaultKind::HcaLinkFlap
                          : faults::FaultKind::HcaTransient;
    job_->fault_log->record_fault(
        rank_, {kind, rank_, dst_world, clock().now(), to_string(kind)});
    if (job_->trace)
      job_->trace->record({sim::TraceKind::FaultInject, rank_, dst_world, size,
                           clock().now(), to_string(kind)});

    if (attempt >= tuning.hca_max_retries) {
      std::ostringstream os;
      os << "rank " << rank_ << ": HCA transfer to rank " << dst_world
         << " abandoned after " << (attempt + 1) << " attempts ("
         << to_string(kind) << " at t=" << clock().now() << " us)";
      throw Error(os.str());
    }

    const Micros delay =
        inj->backoff_delay(rank_, dst_world, seq, attempt, tuning.hca_retry_backoff,
                           tuning.hca_retry_backoff_factor);
    clock().advance(delay);
    profile().add_recovery(delay);
    job_->fault_log->add_retry(rank_, kind);
    job_->fault_log->add_time_lost(rank_, delay);
    if (job_->trace)
      job_->trace->record({sim::TraceKind::Retry, rank_, dst_world, size,
                           clock().now(), "HCA"});
    if (job_->spans)
      job_->spans->record({"hca-retry", obs::SpanCat::Fault, rank_, dst_world, -1,
                           size, clock().now() - delay, clock().now(),
                           to_string(kind)});
  }
}

void Adi3Engine::check_abort() const {
  if (job_->aborted.load(std::memory_order_acquire))
    throw AbortedError("job aborted: another rank raised an error");
}

void Adi3Engine::check_crash() {
  if (job_->crash_at.empty()) return;
  if (clock().now() < job_->crash_at[static_cast<std::size_t>(rank_)]) return;
  raise_crash();
}

void Adi3Engine::raise_crash() {
  const auto idx = static_cast<std::size_t>(rank_);
  const auto kind = job_->crash_kind[idx];
  const int host = job_->crash_host[idx];
  // Report the *scheduled* crash time, not the detection instant: the unit
  // died at its planned virtual time; this rank merely noticed at the next
  // op boundary. Scheduled times are pure functions of the seed, so the
  // report is identical run after run.
  const Micros when = job_->crash_at[idx];
  if (job_->fault_log)
    job_->fault_log->record_fault(
        rank_, {kind, rank_, -1, when,
                std::string(to_string(kind)) + " on host " +
                    std::to_string(host) + " (injected)"});
  if (job_->trace)
    job_->trace->record(
        {sim::TraceKind::FaultInject, rank_, -1, 0, when, to_string(kind)});
  if (job_->spans)
    job_->spans->record({"crash", obs::SpanCat::Fault, rank_, -1, -1, 0, when,
                         when, to_string(kind)});
  std::ostringstream os;
  os << "rank " << rank_ << " crashed at t=" << when << " us ("
     << to_string(kind) << " on host " << host << ", injected)";
  faults::CrashInfo info;
  info.kind = kind;
  info.rank = rank_;
  info.host = host;
  info.at = when;
  throw faults::CrashedError(os.str(), info);
}

void Adi3Engine::wait_all(std::span<const Request> requests) {
  for (const auto& request : requests) wait(request);
}

void Adi3Engine::cancel(const Request& request) {
  CBMPI_REQUIRE(request != nullptr, "cancel on null request");
  CBMPI_REQUIRE(request->kind == RequestState::Kind::Recv,
                "only receive requests can be cancelled");
  posted_.erase(std::remove(posted_.begin(), posted_.end(), request), posted_.end());
}

std::optional<Status> Adi3Engine::iprobe(int src_world, int tag,
                                         std::uint64_t comm_id) {
  progress_posted();
  return job_->matcher(rank_).peek(src_world, tag, comm_id);
}

}  // namespace cbmpi::mpi
