// Deployment scenarios: how a job's ranks map onto hosts, containers, cores.
//
// Mirrors the paper's experiment matrix: "native", "1 container per host",
// "2 containers per host", "4 containers per host", with containers pinned to
// disjoint cores, optionally forced onto the same or different sockets (the
// intra-/inter-socket cases of Fig. 8).
#pragma once

#include <string>
#include <vector>

#include "topo/hardware.hpp"

namespace cbmpi::container {

enum class IsolationKind {
  Container,        ///< namespaces + cgroups (lightweight, the paper's focus)
  VirtualMachine,   ///< hypervisor guests with SR-IOV HCA access
};

enum class SocketPolicy {
  Pack,              ///< fill socket 0 first, then socket 1, ...
  SameSocket,        ///< force all containers onto socket 0
  DistinctSockets,   ///< container i on socket i % sockets
};

struct DeploymentSpec {
  int num_hosts = 1;
  int containers_per_host = 1;  ///< 0 = native (no containers)
  int procs_per_host = 1;       ///< must divide evenly among containers
  SocketPolicy socket_policy = SocketPolicy::Pack;

  // Docker options applied to every container.
  bool privileged = true;
  bool share_host_ipc = true;
  bool share_host_pid = true;

  // Hypervisor mode (ignored when containers_per_host == 0).
  IsolationKind isolation = IsolationKind::Container;
  bool ivshmem = false;  ///< attach the inter-VM shared-memory device

  bool native() const { return containers_per_host == 0; }
  int total_ranks() const { return num_hosts * procs_per_host; }
  int procs_per_container() const {
    return native() ? procs_per_host : procs_per_host / containers_per_host;
  }

  /// Scenario label for bench tables ("Native", "2-Containers", "2-VMs"...).
  std::string label() const;

  // Convenience constructors for the paper's scenarios.
  static DeploymentSpec native_hosts(int hosts, int procs_per_host);
  static DeploymentSpec containers(int hosts, int containers_per_host,
                                   int procs_per_host);
  static DeploymentSpec virtual_machines(int hosts, int vms_per_host,
                                         int procs_per_host, bool with_ivshmem);
};

/// Where one rank lives.
struct RankSlot {
  topo::HostId host = 0;
  int container_index = -1;  ///< index within the host's containers; -1 native
  int core_slot = 0;         ///< which cpuset slot within the container
  topo::CoreId core;         ///< resolved physical core
};

struct JobPlacement {
  DeploymentSpec spec;
  std::vector<RankSlot> slots;  ///< indexed by rank (block distribution)
  /// cpuset (flat core indices) for each container on a host, same for all
  /// hosts; empty when native.
  std::vector<std::vector<int>> container_cpusets;
  /// Heterogeneous placements (scheduler-emitted): cpusets per host, indexed
  /// [host][container]. When non-empty this overrides `container_cpusets`
  /// and the spec's homogeneous per-host counts; hosts may then carry
  /// different container/rank counts (e.g. a 6-rank job split 4+2).
  std::vector<std::vector<std::vector<int>>> host_cpusets;

  bool heterogeneous() const { return !host_cpusets.empty(); }
  int total_ranks() const { return static_cast<int>(slots.size()); }

  /// Hosts the placement spans (dense ids 0..num_hosts()-1).
  int num_hosts() const {
    return heterogeneous() ? static_cast<int>(host_cpusets.size())
                           : spec.num_hosts;
  }

  /// Containers deployed on one host (0 when the placement is native there).
  int containers_on(topo::HostId host) const;

  /// The cpuset of container `index` on `host`.
  const std::vector<int>& cpuset_of(topo::HostId host, int index) const;
};

/// Computes the rank->slot mapping. Ranks are block-distributed: ranks
/// [h*P, (h+1)*P) live on host h; within a host, consecutive ranks fill
/// container 0 first (matching mpirun's default grouping).
JobPlacement plan_deployment(const topo::Cluster& cluster, const DeploymentSpec& spec);

/// Structural validation shared by the homogeneous and scheduler-driven
/// paths: every slot's host/container/core must exist in the cluster and the
/// placement, and container cpusets on one host must be in-range and
/// pairwise disjoint. Throws `Error` with the offending entry otherwise.
void validate_placement(const topo::Cluster& cluster, const JobPlacement& placement);

}  // namespace cbmpi::container
