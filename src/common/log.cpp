#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace cbmpi::logging {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_mutex;

const char* name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Off: return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel level() { return g_level.load(std::memory_order_relaxed); }

void emit(LogLevel lvl, const std::string& message) {
  const std::scoped_lock lock(g_mutex);
  std::fprintf(stderr, "[cbmpi %s] %s\n", name(lvl), message.c_str());
}

}  // namespace cbmpi::logging
