// Extension experiment: fabric topology and link contention (src/net).
//
// The paper's testbed hides the switch fabric behind one flat per-pair cost;
// this bench turns on the explicit fat-tree model and checks the three
// qualitative shapes it must produce:
//
//   1. hop sensitivity — the same pt2pt exchange gets slower as the two
//      hosts move from the same edge switch to the same pod to different
//      pods, for every swept arity;
//   2. congestion — piling concurrent streams onto one host pair leaves the
//      aggregate bandwidth roughly flat (the shared uplink is the
//      bottleneck), so per-stream bandwidth collapses ~1/N;
//   3. placement — the TopologyAware placer never loses to LocalityAware on
//      a multi-host job mix once the fabric charges for hop distance and
//      link sharing.
//
// Everything is virtual-time deterministic: the same seed writes a
// byte-identical --json document.
#include "bench_util.hpp"

#include "net/fabric.hpp"
#include "net/topology.hpp"
#include "sched/scheduler.hpp"

using namespace cbmpi;
using namespace cbmpi::bench;

namespace {

/// One cross-host exchange between physical hosts `src` and `dst` of a
/// `cluster`-host fat-tree; returns the virtual job time.
Micros timed_pair(int arity, int cluster, int dst_host, Bytes bytes,
                  std::uint64_t seed) {
  mpi::JobConfig config;
  config.deployment = container::DeploymentSpec::native_hosts(2, 1);
  config.fabric = net::FabricConfig::parse("fattree");
  config.fabric.arity = arity;
  config.fabric.hosts = cluster;
  config.physical_hosts = {0, dst_host};
  config.seed = seed;
  const auto result = mpi::run_job(config, [&](mpi::Process& p) {
    std::vector<std::uint8_t> buf(bytes);
    if (p.rank() == 0)
      p.world().send(std::span<const std::uint8_t>(buf), 1);
    else
      p.world().recv(std::span<std::uint8_t>(buf), 0);
  });
  return result.job_time;
}

/// `streams` concurrent 4 MiB sends between one host pair; returns the
/// aggregate bandwidth in MB/s.
double aggregate_bw(int streams, std::uint64_t seed) {
  const Bytes bytes = 4_MiB;
  mpi::JobConfig config;
  config.deployment = container::DeploymentSpec::native_hosts(2, streams);
  config.fabric = net::FabricConfig::parse("flat");
  config.seed = seed;
  const auto result = mpi::run_job(config, [&](mpi::Process& p) {
    std::vector<std::uint8_t> buf(bytes);
    const int n = p.size() / 2;
    if (p.rank() < n)
      p.world().send(std::span<const std::uint8_t>(buf), p.rank() + n);
    else
      p.world().recv(std::span<std::uint8_t>(buf), p.rank() - n);
  });
  const double total = static_cast<double>(bytes) * streams;
  return total / result.job_time;  // bytes/us == MB/s
}

/// Job mix for the placement comparison: wide jobs that must span hosts,
/// with message sizes big enough that the fabric model dominates.
std::vector<sched::JobSpec> placement_mix(int jobs, std::uint64_t seed) {
  static const char* kBodies[] = {"ring", "pairs", "allreduce", "alltoall"};
  Xoshiro256 rng(mix64(seed ^ mix64(std::uint64_t{0xfab51c})));
  std::vector<sched::JobSpec> mix;
  Micros t = 0.0;
  for (int i = 0; i < jobs; ++i) {
    sched::JobSpec job;
    job.body = kBodies[static_cast<std::size_t>(i) % std::size(kBodies)];
    // Mixed widths fragment the free-core distribution as jobs drain, which
    // is exactly where emptiest-first host order starts hopping across pods.
    job.ranks = i % 3 == 0 ? 4 : 8 + 4 * static_cast<int>(rng.below(3));
    job.ranks_per_container = 4;
    job.params.message_size = 64_KiB << rng.below(3);  // 64..256 KiB
    job.params.rounds = 2 + static_cast<int>(rng.below(2));
    job.submit_time = t;
    job.est_runtime = millis(50.0);
    if (i >= jobs / 4) t += 5.0 + 5.0 * static_cast<double>(rng.below(3));
    mix.push_back(job);
  }
  return mix;
}

Micros makespan_under(sched::PlacementPolicy policy, int hosts, int jobs,
                      std::uint64_t seed) {
  sched::SchedulerConfig config;
  config.cluster_hosts = hosts;
  config.host_shape = topo::HostShape{2, 4, true};  // 8-core hosts: jobs span
  config.policy = policy;
  config.seed = seed;
  config.fabric = net::FabricConfig::parse("fattree:4");
  sched::Scheduler scheduler(config);
  for (const auto& job : placement_mix(jobs, seed)) scheduler.submit(job);
  scheduler.run();
  return scheduler.metrics().makespan;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const int jobs = static_cast<int>(opts.get_int("jobs", 12, "jobs in the placement mix"));
  const std::uint64_t seed = declare_seed(opts);
  const std::string json_path = declare_json(opts);
  if (opts.finish("Extension: fat-tree topology, link contention, SR-IOV VF "
                  "sharing (src/net)"))
    return 0;

  print_banner("Extension", "network contention on an explicit fat-tree fabric",
               "container HPC clouds share the IB fabric: hop distance, link "
               "contention and SR-IOV VF multiplexing all tax the flat-model "
               "numbers, and topology-aware placement claws the loss back");

  JsonRows json("ext_network_contention", "fattree arity sweep + contention",
                seed);

  // --- 1. hop sensitivity across arities ------------------------------------
  std::printf("pt2pt 64 KiB exchange vs hop distance (virtual us):\n");
  Table hop_table({"arity", "same edge (2 hops)", "same pod (4 hops)",
                   "cross pod (6 hops)"});
  bool hops_monotone = true;
  for (const int arity : {4, 8}) {
    const int pod = arity * arity / 4;
    const int cluster = arity * arity * arity / 4;
    const Micros edge = timed_pair(arity, cluster, 1, 64_KiB, seed);
    const Micros intra_pod = timed_pair(arity, cluster, arity / 2, 64_KiB, seed);
    const Micros cross_pod = timed_pair(arity, cluster, pod, 64_KiB, seed);
    hops_monotone = hops_monotone && edge < intra_pod && intra_pod < cross_pod;
    hop_table.add_row({std::to_string(arity), Table::num(edge, 3),
                       Table::num(intra_pod, 3), Table::num(cross_pod, 3)});
    const std::string prefix = "k=" + std::to_string(arity) + " ";
    json.add(prefix + "2hops", 64_KiB, edge, 0.0);
    json.add(prefix + "4hops", 64_KiB, intra_pod, 0.0);
    json.add(prefix + "6hops", 64_KiB, cross_pod, 0.0);
  }
  hop_table.print(std::cout);
  print_shape_check(hops_monotone,
                    "more hops => higher pt2pt latency at every arity");

  // --- 2. congestion: concurrent streams over one host pair -----------------
  std::printf("\nconcurrent 4 MiB streams between one host pair:\n");
  Table cong_table({"streams", "aggregate (MB/s)", "per stream (MB/s)"});
  std::vector<double> agg;
  for (const int streams : {1, 2, 4, 8}) {
    agg.push_back(aggregate_bw(streams, seed));
    cong_table.add_row({std::to_string(streams), Table::num(agg.back(), 1),
                        Table::num(agg.back() / streams, 1)});
    json.add("streams" + std::to_string(streams), 4_MiB, 0.0, agg.back());
  }
  cong_table.print(std::cout);
  // The uplink is the bottleneck: aggregate stays roughly flat (sublinear in
  // stream count), instead of scaling 8x as the flat model would claim.
  const bool sublinear = agg[3] < 2.0 * agg[0] && agg[1] < 1.5 * agg[0];
  print_shape_check(sublinear,
                    "aggregate bandwidth sublinear in stream count (shared "
                    "uplink, not 8 independent pipes)");

  // --- 3. TopologyAware vs LocalityAware placement --------------------------
  std::printf("\nplacement policies on a %d-job multi-host mix (16 hosts, "
              "fattree:4):\n", jobs);
  const Micros locality =
      makespan_under(sched::PlacementPolicy::LocalityAware, 16, jobs, seed);
  const Micros topology =
      makespan_under(sched::PlacementPolicy::TopologyAware, 16, jobs, seed);
  Table place_table({"policy", "makespan (ms)"});
  place_table.add_row({"locality", Table::num(to_millis(locality), 3)});
  place_table.add_row({"topology", Table::num(to_millis(topology), 3)});
  place_table.print(std::cout);
  json.add("locality_makespan", 0, locality, 0.0);
  json.add("topology_makespan", 0, topology, 0.0);
  print_shape_check(topology <= locality * 1.02,
                    "TopologyAware makespan <= LocalityAware (within 2%) on "
                    "the multi-host mix");

  // --- determinism ----------------------------------------------------------
  const Micros rerun =
      makespan_under(sched::PlacementPolicy::TopologyAware, 16, jobs, seed);
  print_shape_check(rerun == topology,
                    "congested fat-tree schedule bit-identical across reruns");

  json.write(json_path);
  return 0;
}
