// SHM channel: user-space shared-memory communication between co-resident
// processes (double copy through a per-pair length queue).
//
// Eager protocol: the sender copies the message into the pair's shared queue
// (a real osl::ShmSegment — opening it fails across IPC namespaces, which is
// the enforcement point for the paper's namespace-sharing precondition) and
// the receiver copies it out. Cost model highlights:
//   * each message pays a fixed cell overhead on both sides;
//   * the sender pays a stall penalty inversely proportional to the number of
//     queue cells (small SMPI_LENGTH_QUEUE => frequent flow-control stalls);
//   * queues larger than the LLC-friendly size pay a cache-miss derate —
//     together these give the Fig. 7(b) optimum at 128 K;
//   * the double copy halves streaming bandwidth (both copies share the
//     memory bus), partially recovered by pipelining overlap.
#pragma once

#include <span>
#include <vector>

#include "fabric/channel_costs.hpp"
#include "fabric/tuning.hpp"
#include "osl/process.hpp"
#include "osl/shm.hpp"
#include "topo/calibration.hpp"

namespace cbmpi::fabric {

class ShmChannel {
 public:
  ShmChannel(const topo::MachineProfile& profile, const TuningParams& tuning);

  EagerCosts eager_costs(Bytes size, bool same_socket) const;

  /// Rendezvous over SHM (used when CMA is disabled): pipelined chunked
  /// double copy. Returns completion times given RTS send time and the
  /// receiver's match time.
  RndvTimes rndv_times(Bytes size, bool same_socket, Micros rts_sent_at,
                       Micros match_at) const;

  OneSidedCosts one_sided_costs(Bytes size, bool same_socket) const;

  /// Latency of a small control message (RTS/CTS/FIN riding the queue).
  Micros control_latency(bool same_socket) const;

  /// Stages `data` through the pair's shared queue segment and appends it to
  /// `out`. Both processes must share an IPC namespace on the same host
  /// (throws cbmpi::Error otherwise — the caller is expected to have selected
  /// channels correctly).
  void stage(const osl::SimProcess& sender, const osl::SimProcess& receiver,
             std::uint64_t pair_key, std::span<const std::byte> data,
             std::vector<std::byte>& out) const;

  /// Number of queue cells implied by the current tuning.
  double queue_cells() const;

 private:
  /// One-side copy cost of `size` bytes (cache-tiered, cache derate applied).
  Micros copy_cost(Bytes size, bool same_socket) const;

  const topo::MachineProfile* profile_;
  TuningParams tuning_;
  double cache_factor_ = 1.0;  ///< >= 1; derate from oversized queues
};

}  // namespace cbmpi::fabric
